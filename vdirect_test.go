package vdirect

import (
	"strings"
	"testing"
)

func TestNewSystemAllModes(t *testing.T) {
	for _, mode := range []Mode{Native, DirectSegment, BaseVirtualized, DualDirect, VMMDirect, GuestDirect} {
		s, err := NewSystem(Config{Mode: mode, GuestMemory: 64 << 20})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// Guest-segment modes report their pre-segment configuration
		// until a primary region exists.
		if mode == DirectSegment || mode == GuestDirect || mode == DualDirect {
			if _, err := s.CreatePrimaryRegion(8 << 20); err != nil {
				t.Fatalf("%v: primary region: %v", mode, err)
			}
		}
		if got := s.Mode(); got != mode {
			t.Errorf("mode = %v, want %v", got, mode)
		}
	}
}

func TestSystemAccessRoundTrip(t *testing.T) {
	s, err := NewSystem(Config{Mode: BaseVirtualized, GuestMemory: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Map(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	hpa1, cycles, err := s.Access(base + 0x123)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Error("cold access charged zero cycles")
	}
	hpa2, cycles2, err := s.Access(base + 0x456)
	if err != nil {
		t.Fatal(err)
	}
	if cycles2 != 0 {
		t.Error("L1-hit access charged cycles")
	}
	if hpa2-hpa1 != 0x456-0x123 {
		t.Error("same-page accesses landed on different frames")
	}
	st := s.Stats()
	if st.Accesses != 3 { // retry after the demand fault re-translates
		t.Logf("accesses = %d (fault retry included)", st.Accesses)
	}
	s.ResetStats()
	if s.Stats().Accesses != 0 {
		t.Error("ResetStats failed")
	}
}

func TestSystemDualDirectZeroWalks(t *testing.T) {
	s, err := NewSystem(Config{Mode: DualDirect, GuestMemory: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.CreatePrimaryRegion(32 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, enabled := s.GuestSegment(); !enabled {
		t.Fatal("guest segment disabled")
	}
	if _, _, _, enabled := s.VMMSegment(); !enabled {
		t.Fatal("VMM segment disabled")
	}
	s.ResetStats()
	for off := uint64(0); off < 1<<20; off += 4096 {
		if _, _, err := s.Access(base + off); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.WalkMemRefs != 0 {
		t.Errorf("Dual Direct made %d walk references", st.WalkMemRefs)
	}
	if st.ZeroDWalks == 0 {
		t.Error("no 0D walks recorded")
	}
}

func TestSystemPrimaryRegionWrongMode(t *testing.T) {
	s, err := NewSystem(Config{Mode: BaseVirtualized, GuestMemory: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreatePrimaryRegion(8 << 20); err != ErrNoSegment {
		t.Errorf("err = %v, want ErrNoSegment", err)
	}
}

func TestSystemMapEagerAndFree(t *testing.T) {
	s, err := NewSystem(Config{Mode: Native, GuestMemory: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(0x40000000)
	if err := s.MapEager(base, 4<<20, Page2M); err != nil {
		t.Fatal(err)
	}
	if _, cycles, err := s.Access(base); err != nil || cycles == 0 {
		t.Fatalf("eager access: cycles=%d err=%v", cycles, err)
	}
	// 2M mappings cannot be freed page-wise in this façade.
	if err := s.Free(base, 4096); err == nil {
		t.Error("freeing inside a 2M mapping should fail")
	}
	// 4K region frees fine.
	b2, _ := s.Map(64 << 10)
	if _, _, err := s.Access(b2); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(b2, 64<<10); err != nil {
		t.Fatal(err)
	}
}

func TestSystemSelfBalloonFlow(t *testing.T) {
	s, err := NewSystem(Config{Mode: GuestDirect, GuestMemory: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if n := s.FragmentGuestMemory(0.6, 42); n == 0 {
		t.Fatal("fragmentation injected nothing")
	}
	if _, err := s.CreatePrimaryRegion(16 << 20); err == nil {
		t.Fatal("primary region backed despite fragmentation")
	}
	if _, err := s.SelfBalloon(16 << 20); err != nil {
		t.Fatal(err)
	}
	if err := s.RetryPrimaryRegion(); err != nil {
		t.Fatal(err)
	}
	if s.Mode() != GuestDirect {
		t.Errorf("mode = %v after self-balloon", s.Mode())
	}
}

func TestSystemEscapeBadPages(t *testing.T) {
	s, err := NewSystem(Config{Mode: DualDirect, GuestMemory: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.CreatePrimaryRegion(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	gBase, _, gOff, _ := s.GuestSegment()
	_ = gBase
	badGPA := base + gOff + 0x5000 // gPA of an in-segment page
	if err := s.EscapeBadPages([]uint64{badGPA}); err != nil {
		t.Fatal(err)
	}
	// Accesses must still succeed (through the escape path).
	if _, _, err := s.Access(base + 0x5123); err != nil {
		t.Fatal(err)
	}
	if s.Stats().EscapeTaken == 0 {
		t.Error("escape filter never took")
	}
}

func TestRunCell(t *testing.T) {
	res, err := RunCell("gups", "4K+4K", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead <= 0 || res.Accesses == 0 {
		t.Errorf("result = %+v", res)
	}
	if _, err := RunCell("gups", "bogus", ScaleSmall); err == nil {
		t.Error("bogus config accepted")
	}
	if _, err := RunCell("bogus", "4K", ScaleSmall); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestWorkloadsList(t *testing.T) {
	names := Workloads()
	if len(names) != 11 {
		t.Errorf("workloads = %v", names)
	}
	if !WorkloadExists("graph500") || WorkloadExists("doom") {
		t.Error("WorkloadExists wrong")
	}
}

func TestTables(t *testing.T) {
	if !strings.Contains(TableII(), "Dual Direct") {
		t.Error("Table II content")
	}
	if !strings.Contains(TableIII(), "compaction") {
		t.Error("Table III content")
	}
}

func TestReproduceFigure13Small(t *testing.T) {
	out, err := Figure13(ScaleSmall, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "normalized") {
		t.Errorf("figure 13 output:\n%s", out)
	}
}

func TestReproduceAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole evaluation at small scale")
	}
	rep, err := ReproduceAll(ScaleSmall, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"figure1", "figure11", "figure12", "sectionVIII", "breakdown",
		"tableIV", "figure13", "shadow", "sharing", "energy", "tableII", "tableIII"}
	if len(rep.Sections) != len(want) {
		t.Fatalf("sections = %d, want %d", len(rep.Sections), len(want))
	}
	for i, name := range want {
		if rep.Sections[i].Name != name {
			t.Errorf("section %d = %q, want %q", i, rep.Sections[i].Name, name)
		}
		if rep.Sections[i].Text == "" {
			t.Errorf("section %q empty", name)
		}
		if rep.Sections[i].CSV == "" {
			t.Errorf("section %q has no CSV", name)
		}
	}
	if len(rep.String()) < 1000 {
		t.Error("report suspiciously short")
	}
}
