package vdirect

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
)

// TestExamplesSmoke builds and runs every binary under examples/,
// asserting a zero exit status and non-empty output. The examples
// double as the package's tutorial, so a refactor that breaks their
// compilation or makes one crash must fail the suite, not wait for a
// reader to notice. Skipped under -short: each example is a real
// simulation run.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full simulations; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no example programs found under examples/")
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), dir)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", dir))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build: %v\n%s", err, out)
			}
			out, err := exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
