// Command walkprof analyzes a walk-sample file — the simulated
// BadgerTrap output any binary writes with -samples (see -sample for
// the period). It reconstructs where translation cost went from the
// samples alone: per-scheme and per-cell/tenant attribution with
// period-scaled estimates, exact miss-cost percentiles, top-N hot
// pages, and the address-space heatmap; -flame additionally writes the
// profile as collapsed stacks for standard flamegraph tooling
// (flamegraph.pl, inferno, speedscope).
//
// Usage:
//
//	paperbench -scale medium -samples walks.jsonl   # collect
//	walkprof walks.jsonl                            # analyze
//	walkprof -top 40 walks.jsonl                    # more hot pages
//	walkprof -flame walks.folded walks.jsonl        # + flamegraph input
//	walkprof -json walks.jsonl                      # summary as JSON
//
// The sample file is versioned; walkprof rejects files written by a
// different schema rather than misreading them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vdirect/internal/telemetry"
	"vdirect/internal/telemetry/walkprof"
)

func main() {
	// Package walkprof errors already carry the "walkprof:" prefix, so
	// errors print unadorned; locally built ones add it themselves.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		top     = flag.Int("top", 20, "hot pages to list in the top-N table")
		flame   = flag.String("flame", "", "write the profile as collapsed stacks (cell;scheme;class;region weight) to this path")
		jsonOut = flag.Bool("json", false, "print the aggregate summary as JSON instead of tables")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: walkprof [flags] samples.jsonl\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("walkprof"))
		return nil
	}
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("walkprof: expected exactly one sample file, got %d arguments", flag.NArg())
	}

	d, err := walkprof.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}

	if *flame != "" {
		if err := os.WriteFile(*flame, []byte(walkprof.Collapsed(d)), 0o644); err != nil {
			return fmt.Errorf("walkprof: writing collapsed stacks: %w", err)
		}
		fmt.Fprintf(os.Stderr, "walkprof: wrote collapsed stacks to %s\n", *flame)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(walkprof.Summarize(d))
	}
	fmt.Print(walkprof.Report(d, *top))
	return nil
}
