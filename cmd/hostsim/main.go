// Command hostsim runs one whole-host consolidation cell — N guest
// VMs, each with its own kernel and tenants, contending for a single
// shared host physical memory under the policy engine's churn — and
// prints the per-guest report: mode mixture, translation overhead,
// owner-accounted footprint, policy-op counters, and the host's
// fragmentation state.
//
// With -sweep it instead sweeps density 1..N on a fixed host size and
// prints the fragmentation-knee table `paperbench -only host` emits.
// Output is byte-identical at any -shards.
//
// Usage:
//
//	hostsim                           # 4 guests, gups, auto-sized host
//	hostsim -guests 8 -hostmb 280     # squeeze 8 guests into 280MB
//	hostsim -sweep -guests 8          # density sweep with the knee
//	hostsim -workload memcached -ops 100000 -shards 4
package main

import (
	"flag"
	"fmt"
	"os"

	"vdirect/internal/addr"
	"vdirect/internal/experiments"
	"vdirect/internal/host"
	"vdirect/internal/telemetry"
	"vdirect/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hostsim:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		guests  = flag.Int("guests", 4, "consolidation density: VMs to admit (sweep: deepest step)")
		tenants = flag.Int("tenants", 2, "processes per guest")
		wl      = flag.String("workload", "gups", "Table V workload every tenant runs")
		memMB   = flag.Int("mem", 8, "per-tenant primary region size in MB")
		ops     = flag.Int("ops", 50000, "per-tenant trace length")
		hostMB  = flag.Uint64("hostmb", 0, "host physical memory in MB (0 = auto-size for -guests)")
		seed    = flag.Uint64("seed", 42, "policy engine seed")
		shards  = flag.Int("shards", 1, "replay shard goroutines; output is identical at any value")
		sweep   = flag.Bool("sweep", false, "sweep density 1..-guests on a fixed host instead of one cell")
	)
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if tf.Version {
		fmt.Println(telemetry.VersionString("hostsim"))
		return nil
	}
	sess, err := tf.Start("hostsim", map[string]string{
		"guests":   fmt.Sprint(*guests),
		"workload": *wl,
		"sweep":    fmt.Sprint(*sweep),
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(retErr); retErr == nil {
			retErr = err
		}
	}()

	if !workload.Exists(*wl) {
		return fmt.Errorf("unknown workload %q", *wl)
	}
	cfg := host.Config{
		Guests:          *guests,
		TenantsPerGuest: *tenants,
		Workload:        *wl,
		WL:              workload.Config{Seed: 1, MemoryMB: *memMB, Ops: *ops},
		HostMemory:      *hostMB << 20,
		GuestHeadroom:   32 << 20,
		BalloonFloor:    8 << 20,
		Seed:            *seed,
		Shards:          *shards,
	}

	if *sweep {
		return runSweep(cfg)
	}
	s, err := host.NewSim(cfg)
	if err != nil {
		return err
	}
	res, err := s.Run()
	if err != nil {
		return err
	}
	fmt.Println(experiments.HostTable([]host.Result{res}).Render())
	fmt.Println(experiments.HostGuestTable(res).Render())
	return nil
}

// runSweep reruns the cell at every density 1..cfg.Guests over one
// fixed host size, the shape of the paperbench host section. Densities
// run serially; each reuses cfg with only Guests (and, when auto-
// sized, the knee-placing host size) changed.
func runSweep(cfg host.Config) error {
	maxDensity := cfg.Guests
	if cfg.HostMemory == 0 {
		// Same knee placement as the paperbench study: about 5/8 of the
		// deepest density fits Dual Direct.
		probe := cfg
		probe.Guests = 1
		gs := probe.GuestSize()
		knee := maxDensity * 5 / 8
		if knee < 1 {
			knee = 1
		}
		cfg.HostMemory = addr.AlignUp(uint64(knee)*gs+gs/2+(16<<20), addr.PageSize4K)
	}
	rows := make([]host.Result, 0, maxDensity)
	for d := 1; d <= maxDensity; d++ {
		c := cfg
		c.Guests = d
		c.Name = "" // re-derive the cell label per density
		if c.Shards > d {
			c.Shards = d
		}
		s, err := host.NewSim(c)
		if err != nil {
			return fmt.Errorf("density %d: %w", d, err)
		}
		res, err := s.Run()
		if err != nil {
			return fmt.Errorf("density %d: %w", d, err)
		}
		rows = append(rows, res)
	}
	fmt.Println(experiments.HostTable(rows).Render())
	fmt.Println(experiments.HostGuestTable(rows[len(rows)-1]).Render())
	return nil
}
