// Command paperbench regenerates the paper's evaluation: every figure
// and table of §VIII and §IX, printed as text tables (and optionally
// written to files).
//
// Simulation cells fan out across cores (-j, default GOMAXPROCS) with
// progress on stderr; output is byte-identical at any -j because every
// cell owns a private simulation stack, per-cell RNG seeds depend only
// on the cell's spec, and results are emitted in a fixed order.
//
// Usage:
//
//	paperbench                       # everything at medium scale, all cores
//	paperbench -scale full           # the EXPERIMENTS.md setting
//	paperbench -j 1                  # serial run (same bytes, slower)
//	paperbench -only figure11,shadow # a subset
//	paperbench -out results/         # also write one file per section
//	paperbench -cpuprofile cpu.pb    # profile the replay hot path
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"vdirect"
)

func main() {
	var (
		scaleName  = flag.String("scale", "medium", "simulation scale: small|medium|full")
		only       = flag.String("only", "", "comma-separated section subset (figure1,figure11,figure12,figure13,sectionVIII,breakdown,tableIV,shadow,sharing,energy,tableII,tableIII)")
		outDir     = flag.String("out", "", "directory to write per-section files into")
		trials     = flag.Int("fig13-trials", 30, "trials per escape-filter point")
		jobs       = flag.Int("j", 0, "max concurrently simulated cells (0 = GOMAXPROCS); output is identical at any -j")
		quiet      = flag.Bool("quiet", false, "suppress the cells-done progress line on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a post-run heap profile to this file (go tool pprof)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	var scale vdirect.Scale
	switch *scaleName {
	case "small":
		scale = vdirect.ScaleSmall
	case "medium":
		scale = vdirect.ScaleMedium
	case "full":
		scale = vdirect.ScaleFull
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}

	opts := vdirect.Options{Parallelism: *jobs, Fig13Trials: *trials}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsimulating: %d/%d cells", done, total)
		}
	}
	start := time.Now()
	report, err := vdirect.ReproduceAllOpts(scale, opts)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		fatal(err)
	}
	for _, sec := range report.Sections {
		if len(want) > 0 && !want[sec.Name] {
			continue
		}
		fmt.Println(sec.Text)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, sec.Name+".txt")
			if err := os.WriteFile(path, []byte(sec.Text), 0o644); err != nil {
				fatal(err)
			}
			if sec.CSV != "" {
				csvPath := filepath.Join(*outDir, sec.Name+".csv")
				if err := os.WriteFile(csvPath, []byte(sec.CSV), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
	fmt.Printf("— paperbench completed in %s at %s scale —\n",
		time.Since(start).Round(time.Second), *scaleName)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
