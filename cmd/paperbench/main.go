// Command paperbench regenerates the paper's evaluation: every figure
// and table of §VIII and §IX, printed as text tables (and optionally
// written to files).
//
// Simulation cells fan out across cores (-j, default GOMAXPROCS) with
// progress on stderr; output is byte-identical at any -j because every
// cell owns a private simulation stack, per-cell RNG seeds depend only
// on the cell's spec, and results are emitted in a fixed order.
//
// Usage:
//
//	paperbench                       # everything at medium scale, all cores
//	paperbench -scale full           # the EXPERIMENTS.md setting
//	paperbench -j 1                  # serial run (same bytes, slower)
//	paperbench -only figure11,shadow # a subset
//	paperbench -out results/         # also write one file per section
//	paperbench -cpuprofile cpu.pb    # profile the replay hot path
//	paperbench -trace run.json -manifest run-manifest.json
//	                                 # Chrome trace + run manifest
//	paperbench -histograms           # per-walk telemetry histograms
//	paperbench -sample 64 -samples walks.jsonl
//	                                 # 1-in-64 walk sampling, analyzed
//	                                 # offline with cmd/walkprof
//	paperbench -only walkprof        # walk-level attribution section
//	                                 # (auto-enables sampling)
//	paperbench -only host -shards 4  # whole-host consolidation-density
//	                                 # sweep (fragmentation knee and
//	                                 # escape-filter cost)
//	paperbench -listen :8080         # live /metrics, /snapshot,
//	                                 # /walkprof, /debug/pprof/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"vdirect"
	"vdirect/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		scaleName  = flag.String("scale", "medium", "simulation scale: small|medium|full")
		only       = flag.String("only", "", "comma-separated section subset (figure1,figure11,figure12,figure13,sectionVIII,breakdown,tableIV,shadow,sharing,energy,tableII,tableIII; naming consolidation, schemes, host, or walkprof also enables that extension study)")
		shards     = flag.Int("shards", 1, "intra-cell shard goroutines for the consolidation and host studies; output is identical at any value")
		density    = flag.Int("density", 8, "host study's maximum consolidation density (guests at the deepest sweep step)")
		outDir     = flag.String("out", "", "directory to write per-section files into")
		trials     = flag.Int("fig13-trials", 30, "trials per escape-filter point")
		jobs       = flag.Int("j", 0, "max concurrently simulated cells (0 = GOMAXPROCS); output is identical at any -j")
		quiet      = flag.Bool("quiet", false, "suppress the cells-done progress line on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a post-run heap profile to this file (go tool pprof)")
		histograms = flag.Bool("histograms", false, "print per-walk telemetry histograms (refs and cycles per mode) after the report")
	)
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if tf.Version {
		fmt.Println(telemetry.VersionString("paperbench"))
		return nil
	}

	var scale vdirect.Scale
	switch *scaleName {
	case "small":
		scale = vdirect.ScaleSmall
	case "medium":
		scale = vdirect.ScaleMedium
	case "full":
		scale = vdirect.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}

	// The histogram section needs telemetry live even when no -trace or
	// -manifest path was given; the walkprof section likewise needs
	// sampling on even when no -sample/-samples flag asked for it.
	tf.Force = tf.Force || *histograms
	if want["walkprof"] && tf.Sample == 0 && tf.SamplesOut == "" {
		tf.Sample = 64
	}
	sess, err := tf.Start("paperbench", map[string]string{
		"scale":        *scaleName,
		"j":            fmt.Sprint(*jobs),
		"fig13-trials": fmt.Sprint(*trials),
		"only":         *only,
	})
	if err != nil {
		return err
	}
	defer func() {
		// The manifest records the run's error, so Close comes after
		// retErr settles; its own failure surfaces unless one is already
		// being reported.
		if err := sess.Close(retErr); retErr == nil {
			retErr = err
		}
	}()

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); retErr == nil {
			retErr = err
		}
	}()

	opts := vdirect.Options{
		Parallelism:   *jobs,
		Fig13Trials:   *trials,
		Consolidation: want["consolidation"],
		Schemes:       want["schemes"],
		Walkprof:      want["walkprof"],
		Host:          want["host"],
		HostDensity:   *density,
		Shards:        *shards,
	}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsimulating: %d/%d cells", done, total)
		}
	}
	start := time.Now()
	report, err := vdirect.ReproduceAllOpts(scale, opts)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	for _, sec := range report.Sections {
		if len(want) > 0 && !want[sec.Name] {
			continue
		}
		fmt.Println(sec.Text)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, sec.Name+".txt")
			if err := os.WriteFile(path, []byte(sec.Text), 0o644); err != nil {
				return err
			}
			if sec.CSV != "" {
				csvPath := filepath.Join(*outDir, sec.Name+".csv")
				if err := os.WriteFile(csvPath, []byte(sec.CSV), 0o644); err != nil {
					return err
				}
			}
		}
	}
	if *histograms {
		fmt.Println(telemetry.Default().Snapshot().
			HistogramTable("telemetry — per-walk distributions").Render())
	}
	fmt.Printf("— paperbench completed in %s at %s scale —\n",
		time.Since(start).Round(time.Second), *scaleName)
	return nil
}

// startProfiles begins CPU profiling and arranges the heap profile.
// Callers run the returned stop via defer, so both profiles flush and
// close even when the run fails midway — os.Exit never intervenes.
func startProfiles(cpu, mem string) (stop func() error, err error) {
	var cpuF *os.File
	if cpu != "" {
		cpuF, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() error {
		var first error
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				first = err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
