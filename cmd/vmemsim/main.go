// Command vmemsim runs workloads under translation configurations and
// prints the translation statistics — the simulator's equivalent of
// perf-instrumented runs from the paper's methodology (§VII).
//
// Both -workload and -config accept comma-separated lists; the full
// workload × config grid is simulated, fanned across cores (-j, default
// GOMAXPROCS). Output order and every counter are identical at any -j:
// each cell owns a private simulation stack and derives its RNG seeds
// from the cell spec alone.
//
// Usage:
//
//	vmemsim -workload graph500 -config 4K+VD -scale medium
//	vmemsim -workload graph500,gups -config 4K,4K+4K,DD -j 4
//	vmemsim -workload gups -trace run.json -manifest run.manifest.json
//	vmemsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vdirect"
	"vdirect/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmemsim:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		workloadName = flag.String("workload", "gups", "workload(s) to run, comma-separated (see -list)")
		config       = flag.String("config", "4K+4K", `configuration label(s), comma-separated: 4K|2M|1G|THP|DS|A+B|A+VD|A+GD|A+FL|DD`)
		scaleName    = flag.String("scale", "medium", "simulation scale: small|medium|full")
		jobs         = flag.Int("j", 0, "max concurrently simulated cells (0 = GOMAXPROCS); output is identical at any -j")
		list         = flag.Bool("list", false, "list workloads and exit")
	)
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if tf.Version {
		fmt.Println(telemetry.VersionString("vmemsim"))
		return nil
	}
	if *list {
		for _, n := range vdirect.Workloads() {
			fmt.Println(n)
		}
		return nil
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	workloads := splitList(*workloadName)
	configs := splitList(*config)
	if len(workloads) == 0 {
		return fmt.Errorf("-workload list is empty (see -list)")
	}
	if len(configs) == 0 {
		return fmt.Errorf("-config list is empty")
	}

	sess, err := tf.Start("vmemsim", map[string]string{
		"workload": *workloadName,
		"config":   *config,
		"scale":    *scaleName,
		"j":        fmt.Sprint(*jobs),
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(retErr); retErr == nil {
			retErr = err
		}
	}()

	rows, err := vdirect.RunCells(workloads, configs, scale, *jobs)
	if err != nil {
		return err
	}
	for i, row := range rows {
		if i > 0 {
			fmt.Println()
		}
		printCell(row)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

func printCell(row vdirect.FigureRow) {
	res := row.Result
	st := res.Stats
	fmt.Printf("workload            %s\n", row.Workload)
	fmt.Printf("configuration       %s (%v)\n", row.Config, res.Spec.Mode)
	fmt.Printf("measured accesses   %d\n", res.Accesses)
	fmt.Printf("translation overhead %.2f%%\n", res.Overhead*100)
	fmt.Printf("walk cycles         %d\n", res.WalkCycles)
	fmt.Printf("ideal cycles        %.0f\n", res.IdealCycles)
	fmt.Println()
	fmt.Printf("L1 TLB   hits %-12d misses %d\n", st.L1Hits, st.L1Misses)
	fmt.Printf("L2 TLB   hits %-12d misses %d\n", st.L2Hits, st.L2Misses)
	fmt.Printf("walks    %-12d 0D walks %d\n", st.Walks, st.ZeroDWalks)
	fmt.Printf("walk memory references  %d\n", st.WalkMemRefs)
	fmt.Printf("segment checks          %d\n", st.SegmentChecks)
	fmt.Printf("nested TLB  hits %-8d misses %d  walks %d\n",
		st.NestedTLBHits, st.NestedTLBMisses, st.NestedWalks)
	fmt.Printf("escape filter probes %-6d taken %d\n", st.EscapeProbes, st.EscapeTaken)
	fmt.Printf("miss classes  both=%d vmm-only=%d guest-only=%d neither=%d\n",
		st.MissBoth, st.MissVMMOnly, st.MissGuestOnly, st.MissNeither)
}

func parseScale(s string) (vdirect.Scale, error) {
	switch s {
	case "small":
		return vdirect.ScaleSmall, nil
	case "medium":
		return vdirect.ScaleMedium, nil
	case "full":
		return vdirect.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}
