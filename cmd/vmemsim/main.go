// Command vmemsim runs one workload under one translation configuration
// and prints the translation statistics — the simulator's equivalent of
// a single perf-instrumented run from the paper's methodology (§VII).
//
// Usage:
//
//	vmemsim -workload graph500 -config 4K+VD -scale medium
//	vmemsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"vdirect"
)

func main() {
	var (
		workloadName = flag.String("workload", "gups", "workload to run (see -list)")
		config       = flag.String("config", "4K+4K", `configuration label: 4K|2M|1G|THP|DS|A+B|A+VD|A+GD|DD`)
		scaleName    = flag.String("scale", "medium", "simulation scale: small|medium|full")
		list         = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range vdirect.Workloads() {
			fmt.Println(n)
		}
		return
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	res, err := vdirect.RunCell(*workloadName, *config, scale)
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	fmt.Printf("workload            %s\n", *workloadName)
	fmt.Printf("configuration       %s (%v)\n", *config, res.Spec.Mode)
	fmt.Printf("measured accesses   %d\n", res.Accesses)
	fmt.Printf("translation overhead %.2f%%\n", res.Overhead*100)
	fmt.Printf("walk cycles         %d\n", res.WalkCycles)
	fmt.Printf("ideal cycles        %.0f\n", res.IdealCycles)
	fmt.Println()
	fmt.Printf("L1 TLB   hits %-12d misses %d\n", st.L1Hits, st.L1Misses)
	fmt.Printf("L2 TLB   hits %-12d misses %d\n", st.L2Hits, st.L2Misses)
	fmt.Printf("walks    %-12d 0D walks %d\n", st.Walks, st.ZeroDWalks)
	fmt.Printf("walk memory references  %d\n", st.WalkMemRefs)
	fmt.Printf("segment checks          %d\n", st.SegmentChecks)
	fmt.Printf("nested TLB  hits %-8d misses %d  walks %d\n",
		st.NestedTLBHits, st.NestedTLBMisses, st.NestedWalks)
	fmt.Printf("escape filter probes %-6d taken %d\n", st.EscapeProbes, st.EscapeTaken)
	fmt.Printf("miss classes  both=%d vmm-only=%d guest-only=%d neither=%d\n",
		st.MissBoth, st.MissVMMOnly, st.MissGuestOnly, st.MissNeither)
}

func parseScale(s string) (vdirect.Scale, error) {
	switch s {
	case "small":
		return vdirect.ScaleSmall, nil
	case "medium":
		return vdirect.ScaleMedium, nil
	case "full":
		return vdirect.ScaleFull, nil
	}
	return 0, fmt.Errorf("vmemsim: unknown scale %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmemsim:", err)
	os.Exit(1)
}
