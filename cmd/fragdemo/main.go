// Command fragdemo narrates the paper's fragmentation remedies (§IV):
// self-ballooning on a fragmented guest, I/O-gap reclamation, and host
// memory compaction unlocking the Table III mode transition from Guest
// Direct to Dual Direct.
package main

import (
	"flag"
	"fmt"
	"os"

	"vdirect"
	"vdirect/internal/addr"
	"vdirect/internal/guestos"
	"vdirect/internal/physmem"
	"vdirect/internal/telemetry"
	"vdirect/internal/trace"
	"vdirect/internal/vmm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fragdemo:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if tf.Version {
		fmt.Println(telemetry.VersionString("fragdemo"))
		return nil
	}
	sess, err := tf.Start("fragdemo", nil)
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(retErr); retErr == nil {
			retErr = err
		}
	}()

	demos := []struct {
		name string
		f    func() error
	}{
		{"self-balloon", selfBalloonDemo},
		{"io-gap", ioGapDemo},
		{"compaction", compactionDemo},
	}
	for _, d := range demos {
		span := telemetry.StartSpan("section", d.name)
		err := d.f()
		span.End()
		if err != nil {
			return err
		}
	}
	return nil
}

// selfBalloonDemo shows Figure 9: contiguous guest physical memory from
// fragmented free memory, without compaction.
func selfBalloonDemo() error {
	fmt.Println("== Self-ballooning (Figure 9) ==")
	s, err := vdirect.NewSystem(vdirect.Config{Mode: vdirect.GuestDirect, GuestMemory: 256 << 20})
	if err != nil {
		return err
	}
	taken := s.FragmentGuestMemory(0.6, 7)
	fmt.Printf("fragmented guest memory: %d scattered frames allocated\n", taken)
	if _, err := s.CreatePrimaryRegion(64 << 20); err == nil {
		return fmt.Errorf("expected fragmentation to block the guest segment")
	}
	fmt.Println("guest segment creation failed as expected: no contiguous 64MB run")
	base, err := s.SelfBalloon(64 << 20)
	if err != nil {
		return err
	}
	fmt.Printf("self-balloon: pinned 64MB of scattered pages, hotplugged contiguous gPA range at %#x\n", base)
	if err := s.RetryPrimaryRegion(); err != nil {
		return err
	}
	b, l, _, _ := s.GuestSegment()
	fmt.Printf("guest segment live: [%#x, %#x) — mode is now %v\n\n", b, l, s.Mode())
	return nil
}

// ioGapDemo shows §IV "Reclaiming I/O gap memory" on a 6GB guest.
func ioGapDemo() error {
	fmt.Println("== I/O gap reclamation (§IV, §VI.C) ==")
	host := vmm.NewHost(8 << 30)
	vm, err := host.CreateVM(vmm.VMConfig{
		Name: "guest", MemorySize: 6 << 30, IOGap: true, NestedPageSize: addr.Page4K,
	})
	if err != nil {
		return err
	}
	kernel := guestos.NewKernel(vm.GuestMem, vm)
	start, length := kernel.Mem.LargestFreeRun()
	fmt.Printf("before: largest contiguous run %#x bytes at %#x (split by the 3-4GB I/O gap)\n",
		length<<12, physmem.FrameToAddr(start))
	newRange, err := kernel.ReclaimIOGap(256 << 20)
	if err != nil {
		return err
	}
	start, length = kernel.Mem.LargestFreeRun()
	fmt.Printf("unplugged low memory above 256MB, hotplugged %#x bytes at %#x\n",
		newRange.Size, newRange.Start)
	fmt.Printf("after: largest contiguous run %#x bytes at %#x — one segment now covers it\n\n",
		length<<12, physmem.FrameToAddr(start))
	return nil
}

// compactionDemo shows the Table III transition: fragmented host blocks
// the VMM segment; compaction unblocks it and the VM moves from Guest
// Direct toward Dual Direct.
func compactionDemo() error {
	fmt.Println("== Host compaction enabling Dual Direct (Table III) ==")
	host := vmm.NewHost(512 << 20)
	rng := trace.NewRand(11)
	junk := host.Mem.FragmentRandomly(0.3, rng.Uint64n)
	vm, err := host.CreateVM(vmm.VMConfig{
		Name: "vm", MemorySize: 128 << 20, NestedPageSize: addr.Page4K,
	})
	if err != nil {
		return err
	}
	// Free every other junk frame: the survivors pin fragmentation in
	// place, so no contiguous 128MB run exists anywhere.
	for i, f := range junk {
		if i%2 == 0 {
			continue
		}
		if err := host.Mem.FreeFrame(f); err != nil {
			return err
		}
	}
	if _, err := vm.TryEnableVMMSegment(); err == nil {
		fmt.Println("(host happened to have a contiguous run; no compaction needed)")
		return nil
	}
	fmt.Println("VMM segment creation failed: host fragmented — running in Guest Direct")
	moved, err := host.Compact()
	if err != nil {
		return err
	}
	fmt.Printf("compaction daemon relocated %d frames and repaired the nested page table\n", moved)
	seg, err := vm.TryEnableVMMSegment()
	if err != nil {
		return err
	}
	fmt.Printf("VMM segment live: %v — Dual Direct now possible\n", seg)
	return nil
}
