// Command tracestat characterizes workload traces: footprint, page-
// level locality, read/write mix, and allocation churn. It is the tool
// used to validate that each Table V generator reproduces its
// namesake's memory behaviour.
//
// Usage:
//
//	tracestat                       # all workloads, default sizing
//	tracestat -workload graph500 -mem 512 -ops 1000000
package main

import (
	"flag"
	"fmt"
	"os"

	"vdirect/internal/addr"
	"vdirect/internal/replay"
	"vdirect/internal/stats"
	"vdirect/internal/telemetry"
	"vdirect/internal/trace"
	"vdirect/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		name = flag.String("workload", "", "single workload (default: all)")
		mem  = flag.Int("mem", 256, "working-set MB")
		ops  = flag.Int("ops", 500000, "accesses to generate")
		seed = flag.Uint64("seed", 1, "trace seed")
	)
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if tf.Version {
		fmt.Println(telemetry.VersionString("tracestat"))
		return nil
	}

	names := workload.Names()
	if *name != "" {
		if !workload.Exists(*name) {
			return fmt.Errorf("unknown workload %q", *name)
		}
		names = []string{*name}
	}

	sess, err := tf.Start("tracestat", map[string]string{
		"workload": *name,
		"mem":      fmt.Sprint(*mem),
		"ops":      fmt.Sprint(*ops),
		"seed":     fmt.Sprint(*seed),
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := sess.Close(retErr); retErr == nil {
			retErr = err
		}
	}()

	t := stats.NewTable("Workload trace characteristics",
		"workload", "class", "CPI", "footprint", "accesses",
		"uniq 4K pages", "pages/1K acc", "writes", "allocs", "stack frac")
	for _, n := range names {
		if err := characterize(t, n, *seed, *mem, *ops); err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
	}
	fmt.Print(t.Render())
	return nil
}

// characterize streams one workload's trace through counting hooks —
// observation-only, never materialized as a whole — and appends its row.
func characterize(t *stats.Table, n string, seed uint64, mem, ops int) error {
	span := telemetry.StartSpan("cell", n)
	defer span.End()
	w := workload.New(n, workload.Config{Seed: seed, MemoryMB: mem, Ops: ops})
	var (
		writes, allocs, stack uint64
		pages                 = map[uint64]struct{}{}
	)
	eng := replay.New(w, replay.Hooks{
		Access: func(ev trace.Event) error {
			pages[uint64(ev.VA)>>addr.PageShift4K] = struct{}{}
			if ev.Write {
				writes++
			}
			if uint64(ev.VA) >= workload.StackBase && uint64(ev.VA) < workload.StackBase+workload.StackSize {
				stack++
			}
			return nil
		},
		Alloc: func(ev trace.Event) error {
			allocs++
			return nil
		},
	}, replay.Config{})
	if err := eng.Run(); err != nil {
		return err
	}
	accesses := eng.Counts().Accesses
	t.AddRow(n, w.Class().String(),
		fmt.Sprintf("%.2f", w.BaseCPI()),
		fmt.Sprintf("%dMB", w.PrimaryRegion().Size>>20),
		fmt.Sprint(accesses),
		fmt.Sprint(len(pages)),
		fmt.Sprintf("%.2f", float64(len(pages))/float64(accesses)*1000),
		stats.Percent(float64(writes)/float64(accesses)),
		fmt.Sprint(allocs),
		stats.Percent(float64(stack)/float64(accesses)))
	return nil
}
