// Command tracestat characterizes workload traces: footprint, page-
// level locality, read/write mix, and allocation churn. It is the tool
// used to validate that each Table V generator reproduces its
// namesake's memory behaviour.
//
// Usage:
//
//	tracestat                       # all workloads, default sizing
//	tracestat -workload graph500 -mem 512 -ops 1000000
package main

import (
	"flag"
	"fmt"
	"os"

	"vdirect/internal/addr"
	"vdirect/internal/replay"
	"vdirect/internal/stats"
	"vdirect/internal/trace"
	"vdirect/internal/workload"
)

func main() {
	var (
		name = flag.String("workload", "", "single workload (default: all)")
		mem  = flag.Int("mem", 256, "working-set MB")
		ops  = flag.Int("ops", 500000, "accesses to generate")
		seed = flag.Uint64("seed", 1, "trace seed")
	)
	flag.Parse()

	names := workload.Names()
	if *name != "" {
		if !workload.Exists(*name) {
			fmt.Fprintf(os.Stderr, "tracestat: unknown workload %q\n", *name)
			os.Exit(1)
		}
		names = []string{*name}
	}

	t := stats.NewTable("Workload trace characteristics",
		"workload", "class", "CPI", "footprint", "accesses",
		"uniq 4K pages", "pages/1K acc", "writes", "allocs", "stack frac")
	for _, n := range names {
		w := workload.New(n, workload.Config{Seed: *seed, MemoryMB: *mem, Ops: *ops})
		var (
			writes, allocs, stack uint64
			pages                 = map[uint64]struct{}{}
		)
		// Observation-only replay: the trace streams block-wise through
		// counting hooks, never materialized as a whole.
		eng := replay.New(w, replay.Hooks{
			Access: func(ev trace.Event) error {
				pages[uint64(ev.VA)>>addr.PageShift4K] = struct{}{}
				if ev.Write {
					writes++
				}
				if uint64(ev.VA) >= workload.StackBase && uint64(ev.VA) < workload.StackBase+workload.StackSize {
					stack++
				}
				return nil
			},
			Alloc: func(ev trace.Event) error {
				allocs++
				return nil
			},
		}, replay.Config{})
		if err := eng.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %s: %v\n", n, err)
			os.Exit(1)
		}
		accesses := eng.Counts().Accesses
		t.AddRow(n, w.Class().String(),
			fmt.Sprintf("%.2f", w.BaseCPI()),
			fmt.Sprintf("%dMB", w.PrimaryRegion().Size>>20),
			fmt.Sprint(accesses),
			fmt.Sprint(len(pages)),
			fmt.Sprintf("%.2f", float64(len(pages))/float64(accesses)*1000),
			stats.Percent(float64(writes)/float64(accesses)),
			fmt.Sprint(allocs),
			stats.Percent(float64(stack)/float64(accesses)))
	}
	fmt.Print(t.Render())
}
