module vdirect

go 1.22
