package vdirect

import (
	"fmt"
	"strings"

	"vdirect/internal/experiments"
	"vdirect/internal/host"
	"vdirect/internal/sched"
	"vdirect/internal/telemetry"
	"vdirect/internal/telemetry/walkprof"
	"vdirect/internal/workload"
)

// Scale selects simulation sizing for the evaluation harness.
type Scale = experiments.Scale

// Scales: ScaleSmall for quick checks, ScaleMedium for benchmarks,
// ScaleFull for the numbers recorded in EXPERIMENTS.md.
const (
	ScaleSmall  = experiments.Small
	ScaleMedium = experiments.Medium
	ScaleFull   = experiments.Full
)

// CellResult is one simulated workload × configuration cell.
type CellResult = experiments.Result

// FigureData bundles an experiment's rows with table renderers.
type FigureData = experiments.Figure

// Workloads returns the Table V workload names (plus the §IX.A
// tlbstress microbenchmark).
func Workloads() []string { return workload.Names() }

// WorkloadExists reports whether name is a known workload.
func WorkloadExists(name string) bool { return workload.Exists(name) }

// RunCell simulates one workload under one configuration label (e.g.
// "4K+2M", "DD", "4K+VD" — see ParseConfig in internal/experiments).
func RunCell(workloadName, config string, scale Scale) (CellResult, error) {
	spec, err := experiments.ParseConfig(config)
	if err != nil {
		return CellResult{}, err
	}
	if !workload.Exists(workloadName) {
		return CellResult{}, fmt.Errorf("vdirect: unknown workload %q", workloadName)
	}
	class := workload.New(workloadName, workload.Config{MemoryMB: 1, Ops: 1}).Class()
	spec.Workload = workloadName
	spec.WL = scale.WLConfig(class, 1)
	return experiments.Run(spec)
}

// FigureRow is one workload × config cell of a grid run.
type FigureRow = experiments.Row

// RunCells simulates every workload × config cell, fanning independent
// cells across up to parallelism cores (0 means GOMAXPROCS). Rows come
// back in workload-major order with identical contents at any
// parallelism.
func RunCells(workloads, configs []string, scale Scale, parallelism int) ([]FigureRow, error) {
	for _, w := range workloads {
		if !workload.Exists(w) {
			return nil, fmt.Errorf("vdirect: unknown workload %q", w)
		}
	}
	return experiments.RunGridOpts(sched.Config{Parallelism: parallelism}, workloads, configs, scale, 1)
}

// Figure1 regenerates the paper's motivation figure.
func Figure1(scale Scale) (FigureData, error) { return experiments.Figure1(scale) }

// Figure11 regenerates the big-memory evaluation figure.
func Figure11(scale Scale) (FigureData, error) { return experiments.Figure11(scale) }

// Figure12 regenerates the compute-workload evaluation figure.
func Figure12(scale Scale) (FigureData, error) { return experiments.Figure12(scale) }

// Figure13 regenerates the escape-filter study (trials per point; the
// paper uses 30).
func Figure13(scale Scale, trials int) (string, error) {
	points, err := experiments.Figure13(scale, trials, nil)
	if err != nil {
		return "", err
	}
	return experiments.Figure13Table(points).Render(), nil
}

// TableII renders the qualitative mode-tradeoff table.
func TableII() string { return experiments.TableII().Render() }

// TableIII renders the fragmented-system mode policy table.
func TableIII() string { return experiments.TableIII().Render() }

// Report is the full evaluation: every figure and study, rendered.
type Report struct {
	Sections []ReportSection
}

// ReportSection is one named block of the evaluation report.
type ReportSection struct {
	Name string
	Text string
	// CSV holds the section's data in machine-readable form, when the
	// section is tabular.
	CSV string
}

// String renders the whole report.
func (r Report) String() string {
	var b strings.Builder
	for _, s := range r.Sections {
		b.WriteString(s.Text)
		b.WriteByte('\n')
	}
	return b.String()
}

// Options configures a full reproduction run.
type Options struct {
	// Parallelism bounds concurrently simulated cells across all
	// sections; 0 means GOMAXPROCS, 1 forces strictly serial
	// execution. Output is byte-identical at any setting: every cell
	// owns a private simulation stack with seeds derived from its spec,
	// and results are assembled in a fixed order.
	Parallelism int
	// Fig13Trials is the escape-filter study's trials per point (the
	// paper uses 30; 0 means 30).
	Fig13Trials int
	// Progress, when non-nil, is called — serialized — as simulation
	// cells complete; total grows as sections register their cells.
	Progress func(done, total int)
	// Consolidation adds the multi-tenant consolidation study to the
	// report. Off by default: it is an extension section, and leaving it
	// out keeps the default report stable.
	Consolidation bool
	// Schemes adds the translation-schemes section: the registry's
	// closed-form cost table and the measured flattened-nested-walk
	// comparison. Off by default for the same reason as Consolidation.
	Schemes bool
	// Shards is the consolidation study's intra-cell parallelism: its
	// tenants are partitioned across this many goroutines (0 or 1 =
	// serial). Results are byte-identical at any setting.
	Shards int
	// Walkprof appends the walk-level attribution section, rendered from
	// the samples the active walkprof profile collected across every
	// section's cells. It requires sampling to be enabled (the -sample /
	// -samples flags, or walkprof.Enable); with sampling off the section
	// says so instead of rendering empty tables.
	Walkprof bool
	// Host adds the whole-host consolidation-density study: N guest VMs
	// over one shared host memory, swept over density on a fixed host
	// size, reporting the fragmentation knee and escape-filter cost.
	// Off by default like the other extension sections. Shards also
	// applies: each density cell's guests replay across that many
	// goroutines.
	Host bool
	// HostDensity is the host study's maximum consolidation density
	// (0 means 8 guests).
	HostDensity int
}

// ReproduceAll runs the complete evaluation at the given scale —
// everything EXPERIMENTS.md records — using every core. At ScaleFull
// this takes several minutes; fig13Trials controls the escape-filter
// study's cost (the paper uses 30 trials per point).
func ReproduceAll(scale Scale, fig13Trials int) (Report, error) {
	return ReproduceAllOpts(scale, Options{Fig13Trials: fig13Trials})
}

// ReproduceAllOpts runs the complete evaluation with explicit scheduler
// options. Independent sections run concurrently and each fans its
// cells into one shared worker pool, so at most opts.Parallelism cells
// simulate at any instant machine-wide.
func ReproduceAllOpts(scale Scale, opts Options) (Report, error) {
	trials := opts.Fig13Trials
	if trials <= 0 {
		trials = 30
	}
	cfg := sched.Config{Limiter: sched.NewLimiter(opts.Parallelism)}
	if opts.Progress != nil {
		cfg.Progress = telemetry.NewProgress(opts.Progress)
	}
	// section wraps a report section's task in a telemetry span so the
	// trace shows one lane per concurrently running section (inert when
	// no telemetry run is active).
	section := func(name string, f func() error) func() error {
		return func() error {
			span := telemetry.StartSpan("section", name)
			defer span.End()
			return f()
		}
	}

	var (
		fig1, fig11, fig12 experiments.Figure
		breakdown          []experiments.BreakdownRow
		models             []experiments.ModelRow
		points             []experiments.Fig13Point
		shadow             []experiments.ShadowResult
		sharing            []experiments.SharingResult
		consolidation      []experiments.ConsolidationResult
		flatRows           []experiments.FlatRow
		hostRows           []host.Result
	)
	tasks := []func() error{}
	if opts.Host {
		density := opts.HostDensity
		if density <= 0 {
			density = 8
		}
		tasks = append(tasks, section("host", func() (err error) {
			hostRows, err = experiments.HostStudy(cfg, scale, "gups", density, opts.Shards)
			return
		}))
	}
	if opts.Schemes {
		tasks = append(tasks, section("schemes", func() (err error) {
			flatRows, err = experiments.SchemesStudy(cfg, scale, workload.BigMemoryNames())
			return
		}))
	}
	if opts.Consolidation {
		tenants := map[Scale]int{ScaleSmall: 2, ScaleMedium: 4, ScaleFull: 8}[scale]
		tasks = append(tasks, section("consolidation", func() (err error) {
			consolidation, err = experiments.ConsolidationStudy(scale,
				[]string{"gups", "memcached"}, tenants, opts.Shards)
			return
		}))
	}
	err := sched.Tasks(append(tasks,
		section("figure1", func() (err error) { fig1, err = experiments.Figure1Opts(cfg, scale); return }),
		section("figure11", func() (err error) { fig11, err = experiments.Figure11Opts(cfg, scale); return }),
		section("figure12", func() (err error) { fig12, err = experiments.Figure12Opts(cfg, scale); return }),
		section("breakdown", func() (err error) {
			breakdown, err = experiments.BreakdownOpts(cfg, scale,
				append([]string{"tlbstress"}, workload.BigMemoryNames()...))
			return
		}),
		section("tableIV", func() (err error) {
			models, err = experiments.TableIVValidationOpts(cfg, scale, workload.BigMemoryNames())
			return
		}),
		section("figure13", func() (err error) { points, err = experiments.Figure13Opts(cfg, scale, trials, nil); return }),
		section("shadow", func() (err error) {
			shadow, err = experiments.ShadowStudyOpts(cfg, scale,
				append(append([]string{}, workload.BigMemoryNames()...), workload.ComputeNames()...))
			return
		}),
		section("sharing", func() (err error) { sharing, err = experiments.SharingStudyOpts(cfg, 128, 0.03, 0.01); return }),
	)...)
	if err != nil {
		return Report{}, err
	}

	// Assembly order is fixed regardless of section completion order.
	var rep Report
	type tabler interface {
		Render() string
		CSV() string
	}
	add := func(name string, t tabler) {
		rep.Sections = append(rep.Sections, ReportSection{Name: name, Text: t.Render(), CSV: t.CSV()})
	}
	add("figure1", fig1.Grid())
	add("figure11", fig11.Grid())
	add("figure12", fig12.Grid())
	add("sectionVIII", experiments.SectionVIII(append(fig11.Rows, fig12.Rows...)))
	add("breakdown", experiments.BreakdownTable(breakdown))
	add("tableIV", experiments.ModelTable(models))
	add("figure13", experiments.Figure13Table(points))
	add("shadow", experiments.ShadowTable(shadow))
	add("sharing", experiments.SharingTable(sharing))
	add("energy", experiments.EnergyTable(experiments.Energy(append(fig11.Rows, fig12.Rows...))))
	add("tableII", experiments.TableII())
	add("tableIII", experiments.TableIII())
	if opts.Consolidation {
		add("consolidation", experiments.ConsolidationTable(consolidation))
	}
	if opts.Host {
		hostT := experiments.HostTable(hostRows)
		text := hostT.Render()
		if len(hostRows) > 0 {
			text += "\n" + experiments.HostGuestTable(hostRows[len(hostRows)-1]).Render()
		}
		rep.Sections = append(rep.Sections, ReportSection{
			Name: "host", Text: text, CSV: hostT.CSV()})
	}
	if opts.Schemes {
		flatT := experiments.FlattenedTable(flatRows)
		rep.Sections = append(rep.Sections, ReportSection{
			Name: "schemes",
			Text: experiments.SchemeCostTable().Render() + "\n" + flatT.Render(),
			CSV:  flatT.CSV(),
		})
	}
	if opts.Walkprof {
		rep.Sections = append(rep.Sections, walkprofSection())
	}
	return rep, nil
}

// walkprofSection renders the walk-level attribution report from the
// samples every completed cell committed to the active profile. Ordering
// inside the dump is canonical, so the section is byte-identical at any
// parallelism or shard count.
func walkprofSection() ReportSection {
	p := walkprof.Enabled()
	if p == nil {
		return ReportSection{
			Name: "walkprof",
			Text: "walkprof: sampling not enabled (use -sample N or -samples FILE)\n",
		}
	}
	d := p.Snapshot()
	schemeT, _ := walkprof.AttributionTables(d)
	return ReportSection{
		Name: "walkprof",
		Text: walkprof.Report(d, 20),
		CSV:  schemeT.CSV(),
	}
}
