package vdirect

import (
	"fmt"
	"strings"

	"vdirect/internal/experiments"
	"vdirect/internal/workload"
)

// Scale selects simulation sizing for the evaluation harness.
type Scale = experiments.Scale

// Scales: ScaleSmall for quick checks, ScaleMedium for benchmarks,
// ScaleFull for the numbers recorded in EXPERIMENTS.md.
const (
	ScaleSmall  = experiments.Small
	ScaleMedium = experiments.Medium
	ScaleFull   = experiments.Full
)

// CellResult is one simulated workload × configuration cell.
type CellResult = experiments.Result

// FigureData bundles an experiment's rows with table renderers.
type FigureData = experiments.Figure

// Workloads returns the Table V workload names (plus the §IX.A
// tlbstress microbenchmark).
func Workloads() []string { return workload.Names() }

// WorkloadExists reports whether name is a known workload.
func WorkloadExists(name string) bool { return workload.Exists(name) }

// RunCell simulates one workload under one configuration label (e.g.
// "4K+2M", "DD", "4K+VD" — see ParseConfig in internal/experiments).
func RunCell(workloadName, config string, scale Scale) (CellResult, error) {
	spec, err := experiments.ParseConfig(config)
	if err != nil {
		return CellResult{}, err
	}
	if !workload.Exists(workloadName) {
		return CellResult{}, fmt.Errorf("vdirect: unknown workload %q", workloadName)
	}
	class := workload.New(workloadName, workload.Config{MemoryMB: 1, Ops: 1}).Class()
	spec.Workload = workloadName
	spec.WL = scale.WLConfig(class, 1)
	return experiments.Run(spec)
}

// Figure1 regenerates the paper's motivation figure.
func Figure1(scale Scale) (FigureData, error) { return experiments.Figure1(scale) }

// Figure11 regenerates the big-memory evaluation figure.
func Figure11(scale Scale) (FigureData, error) { return experiments.Figure11(scale) }

// Figure12 regenerates the compute-workload evaluation figure.
func Figure12(scale Scale) (FigureData, error) { return experiments.Figure12(scale) }

// Figure13 regenerates the escape-filter study (trials per point; the
// paper uses 30).
func Figure13(scale Scale, trials int) (string, error) {
	points, err := experiments.Figure13(scale, trials, nil)
	if err != nil {
		return "", err
	}
	return experiments.Figure13Table(points).Render(), nil
}

// TableII renders the qualitative mode-tradeoff table.
func TableII() string { return experiments.TableII().Render() }

// TableIII renders the fragmented-system mode policy table.
func TableIII() string { return experiments.TableIII().Render() }

// Report is the full evaluation: every figure and study, rendered.
type Report struct {
	Sections []ReportSection
}

// ReportSection is one named block of the evaluation report.
type ReportSection struct {
	Name string
	Text string
	// CSV holds the section's data in machine-readable form, when the
	// section is tabular.
	CSV string
}

// String renders the whole report.
func (r Report) String() string {
	var b strings.Builder
	for _, s := range r.Sections {
		b.WriteString(s.Text)
		b.WriteByte('\n')
	}
	return b.String()
}

// ReproduceAll runs the complete evaluation at the given scale —
// everything EXPERIMENTS.md records. At ScaleFull this takes several
// minutes; fig13Trials controls the escape-filter study's cost (the
// paper uses 30 trials per point).
func ReproduceAll(scale Scale, fig13Trials int) (Report, error) {
	var rep Report
	type tabler interface {
		Render() string
		CSV() string
	}
	add := func(name string, t tabler) {
		rep.Sections = append(rep.Sections, ReportSection{Name: name, Text: t.Render(), CSV: t.CSV()})
	}

	fig1, err := experiments.Figure1(scale)
	if err != nil {
		return rep, err
	}
	add("figure1", fig1.Grid())

	fig11, err := experiments.Figure11(scale)
	if err != nil {
		return rep, err
	}
	add("figure11", fig11.Grid())

	fig12, err := experiments.Figure12(scale)
	if err != nil {
		return rep, err
	}
	add("figure12", fig12.Grid())

	add("sectionVIII", experiments.SectionVIII(append(fig11.Rows, fig12.Rows...)))

	breakdown, err := experiments.Breakdown(scale,
		append([]string{"tlbstress"}, workload.BigMemoryNames()...))
	if err != nil {
		return rep, err
	}
	add("breakdown", experiments.BreakdownTable(breakdown))

	models, err := experiments.TableIVValidation(scale, workload.BigMemoryNames())
	if err != nil {
		return rep, err
	}
	add("tableIV", experiments.ModelTable(models))

	points, err := experiments.Figure13(scale, fig13Trials, nil)
	if err != nil {
		return rep, err
	}
	add("figure13", experiments.Figure13Table(points))

	shadow, err := experiments.ShadowStudy(scale,
		append(append([]string{}, workload.BigMemoryNames()...), workload.ComputeNames()...))
	if err != nil {
		return rep, err
	}
	add("shadow", experiments.ShadowTable(shadow))

	sharing, err := experiments.SharingStudy(128, 0.03, 0.01)
	if err != nil {
		return rep, err
	}
	add("sharing", experiments.SharingTable(sharing))

	add("energy", experiments.EnergyTable(experiments.Energy(append(fig11.Rows, fig12.Rows...))))
	add("tableII", experiments.TableII())
	add("tableIII", experiments.TableIII())
	return rep, nil
}
