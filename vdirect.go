// Package vdirect is a simulation library reproducing "Efficient Memory
// Virtualization: Reducing Dimensionality of Nested Page Walks" (Gandhi,
// Basu, Hill, Swift — MICRO 2014).
//
// It models the paper's proposed hardware — two levels of direct-segment
// registers wired into an x86-64 TLB/page-walk pipeline, plus a 256-bit
// escape filter — together with the software stack the proposal needs: a
// guest OS with primary regions, self-ballooning and memory hotplug, and
// a KVM-style VMM with nested page tables, host compaction, page sharing
// and shadow paging.
//
// The package offers two levels of use:
//
//   - System: build one virtual machine in any of the six translation
//     modes and drive memory accesses through the simulated MMU, with
//     cycle and event accounting.
//   - Experiments: regenerate every figure and table of the paper's
//     evaluation (see Figure1, Figure11, RunCell, ...).
//
// All simulation is deterministic: identical inputs give identical
// event counts.
package vdirect

import (
	"errors"
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/guestos"
	"vdirect/internal/mmu"
	"vdirect/internal/segment"
	"vdirect/internal/vmm"
)

// Mode selects one of the paper's translation modes (Figure 3).
type Mode = mmu.Mode

// The six paper translation modes, plus post-paper schemes. Any name
// in SchemeNames is a valid Config.Mode.
const (
	// Native is unvirtualized 1D paging (up to 4 references per walk).
	Native = mmu.ModeNative
	// DirectSegment is the unvirtualized direct-segment mode (§III.D).
	DirectSegment = mmu.ModeDirectSegment
	// BaseVirtualized is the hardware-assisted 2D nested walk (≤24
	// references).
	BaseVirtualized = mmu.ModeBaseVirtualized
	// DualDirect uses segments in both dimensions: a 0D walk (§III.A).
	DualDirect = mmu.ModeDualDirect
	// VMMDirect flattens the nested dimension with a VMM segment: a 1D
	// walk with no guest changes (§III.B).
	VMMDirect = mmu.ModeVMMDirect
	// GuestDirect flattens the guest dimension with a guest segment,
	// keeping nested paging for VMM services (§III.C).
	GuestDirect = mmu.ModeGuestDirect
	// FlatNested is the post-paper flattened-nested-page-table scheme:
	// interior guest levels resolve through VMM-maintained flat host
	// tables, collapsing the 24-reference 2D walk to 12 with no segment
	// registers at all.
	FlatNested = mmu.ModeFlatNested
)

// SchemeNames returns every registered translation scheme's name,
// sorted — the valid values for Config.Mode.
func SchemeNames() []string { return mmu.SchemeNames() }

// PageSize selects an x86-64 page size.
type PageSize = addr.PageSize

// Supported page sizes.
const (
	Page4K = addr.Page4K
	Page2M = addr.Page2M
	Page1G = addr.Page1G
)

// Stats exposes the MMU event counters (the simulator's perf counters).
type Stats = mmu.Stats

// HardwareConfig exposes the simulated TLB/walker parameters.
type HardwareConfig = mmu.Config

// Config describes a System.
type Config struct {
	// Mode is the translation mode to operate in.
	Mode Mode
	// GuestMemory is the guest physical memory size in bytes (or the
	// machine size for native modes). Default 256 MiB.
	GuestMemory uint64
	// NestedPage is the page size the VMM backs guest memory with.
	// Default 4K.
	NestedPage PageSize
	// Hardware overrides TLB geometry and latencies (zero = the
	// paper's Table VI machine).
	Hardware HardwareConfig
	// HostMemory is the host physical size for virtualized modes.
	// Default: guest memory + 50% + 256 MiB.
	HostMemory uint64
}

// System is one simulated machine: hardware MMU plus the guest OS (and,
// when virtualized, the VMM and host) needed to run it.
type System struct {
	cfg    Config
	mmu    *mmu.MMU
	kernel *guestos.Kernel
	proc   *guestos.Process
	host   *vmm.Host
	vm     *vmm.VM
}

// ErrNoSegment is returned when a segment operation is invoked in a
// mode that does not use that segment.
var ErrNoSegment = errors.New("vdirect: mode does not use this segment")

// NewSystem builds a machine in the configured mode with one process.
// The stack is assembled from the scheme's own Requirements — which
// register sets to program, whether backing must be contiguous, whether
// the VMM maintains flattened nested tables — so any registered scheme
// builds here by name.
func NewSystem(cfg Config) (*System, error) {
	scheme, err := mmu.SchemeByName(string(cfg.Mode))
	if err != nil {
		return nil, err
	}
	req := scheme.Requirements()
	if cfg.GuestMemory == 0 {
		cfg.GuestMemory = 256 << 20
	}
	if cfg.GuestMemory%addr.PageSize4K != 0 {
		return nil, fmt.Errorf("vdirect: guest memory %#x not 4K aligned", cfg.GuestMemory)
	}
	s := &System{cfg: cfg, mmu: mmu.New(cfg.Hardware)}

	if req.Virtualized {
		hostSize := cfg.HostMemory
		if hostSize == 0 {
			hostSize = cfg.GuestMemory + cfg.GuestMemory/2 + 256<<20
		}
		s.host = vmm.NewHost(hostSize)
		vm, err := s.host.CreateVM(vmm.VMConfig{
			Name:              "vm0",
			MemorySize:        cfg.GuestMemory,
			NestedPageSize:    cfg.NestedPage,
			ContiguousBacking: req.ContiguousBacking,
		})
		if err != nil {
			return nil, err
		}
		s.vm = vm
		s.kernel = guestos.NewKernel(vm.GuestMem, vm)
		s.mmu.SetNestedPageTable(vm.NPT)
		s.mmu.SetFlatNested(req.FlattenedNested)
		if req.VMMSegment {
			seg, err := vm.TryEnableVMMSegment()
			if err != nil {
				return nil, err
			}
			s.mmu.SetVMMSegment(seg)
		}
	} else {
		mem := guestosMemory(cfg.GuestMemory)
		s.kernel = guestos.NewKernel(mem, nil)
	}

	proc, err := s.kernel.CreateProcess("main")
	if err != nil {
		return nil, err
	}
	s.proc = proc
	s.mmu.SetGuestPageTable(proc.PT)

	// Guest-segment modes get a segment when a primary region is
	// created (CreatePrimaryRegion); nothing to do yet.
	if got := s.mmu.Mode(); !modeCompatible(got, cfg.Mode) {
		return nil, fmt.Errorf("vdirect: built mode %v for requested %v", got, cfg.Mode)
	}
	return s, nil
}

// modeCompatible allows guest-segment modes to report their segment-less
// configuration until a primary region exists.
func modeCompatible(got, want Mode) bool {
	if got == want {
		return true
	}
	switch want {
	case DirectSegment:
		return got == Native
	case GuestDirect:
		return got == BaseVirtualized
	case DualDirect:
		return got == VMMDirect
	}
	return false
}

// Mode returns the mode the hardware currently operates in (derived
// from register state, as in the proposal).
func (s *System) Mode() Mode { return s.mmu.Mode() }

// Stats returns the accumulated MMU counters.
func (s *System) Stats() Stats { return s.mmu.Stats() }

// ResetStats zeroes the counters (typically after warmup).
func (s *System) ResetStats() { s.mmu.ResetStats() }

// Map reserves size bytes of virtual address space, demand-paged at 4K.
func (s *System) Map(size uint64) (uint64, error) {
	return s.proc.MMap(size)
}

// MapAt reserves [base, base+size) of virtual address space.
func (s *System) MapAt(base, size uint64) error {
	return s.proc.MMapAt(addr.Range{Start: base, Size: size})
}

// MapEager maps the region with pages of the given size immediately,
// as big-memory applications requesting explicit page sizes do.
func (s *System) MapEager(base, size uint64, ps PageSize) error {
	if err := s.proc.MMapAt(addr.Range{Start: base, Size: size}); err != nil {
		return err
	}
	return s.proc.MapRegion(addr.Range{Start: base, Size: size}, ps)
}

// CreatePrimaryRegion reserves a primary region of the given size and
// backs it with a guest direct segment (DirectSegment, GuestDirect and
// DualDirect modes). It returns the region's base address.
func (s *System) CreatePrimaryRegion(size uint64) (uint64, error) {
	if !s.requirements().GuestSegment {
		return 0, ErrNoSegment
	}
	r, err := s.proc.CreatePrimaryRegion(size)
	if err != nil {
		return 0, err
	}
	s.mmu.SetGuestSegment(s.proc.Seg)
	return r.Start, nil
}

// Access translates one data reference, servicing demand-paging faults
// the way the guest kernel would. It returns the host physical address
// and the translation cycles charged.
func (s *System) Access(va uint64) (hpa uint64, cycles uint64, err error) {
	for attempt := 0; attempt < 3; attempt++ {
		res, fault := s.mmu.Translate(va)
		if fault == nil {
			return res.HPA, res.Cycles, nil
		}
		if fault.Kind != mmu.FaultGuest {
			return 0, 0, fault
		}
		if err := s.proc.HandleFault(fault.Addr); err != nil {
			return 0, 0, err
		}
	}
	return 0, 0, fmt.Errorf("vdirect: access at %#x keeps faulting", va)
}

// Free unmaps the 4K pages of the range and invalidates the TLBs.
func (s *System) Free(base, size uint64) error {
	r := addr.Range{Start: base, Size: size}
	if err := s.proc.Unmap(r); err != nil {
		return err
	}
	for va := r.Start; va < r.End(); va += addr.PageSize4K {
		s.mmu.InvalidatePage(va, addr.Page4K)
	}
	return nil
}

// EscapeBadPages marks guest-segment-covered physical pages as faulty,
// inserts them into the escape filter, and remaps them through paging
// (§V). Only meaningful once a primary region exists.
func (s *System) EscapeBadPages(gpas []uint64) error {
	filter := s.mmu.GuestEscapeFilter()
	if s.requirements().VMMSegment {
		filter = s.mmu.VMMEscapeFilter()
	}
	_, err := s.proc.EscapeBadPages(gpas, func(pfn uint64) { filter.Insert(pfn) })
	return err
}

// requirements returns the configured scheme's Requirements. The mode
// was validated against the registry in NewSystem.
func (s *System) requirements() mmu.Requirements {
	scheme, err := mmu.SchemeByName(string(s.cfg.Mode))
	if err != nil {
		return mmu.Requirements{}
	}
	return scheme.Requirements()
}

// GuestSegment returns the current guest segment registers' coverage
// (zero range when disabled).
func (s *System) GuestSegment() (base, limit, offset uint64, enabled bool) {
	r := s.mmu.GuestSegment()
	return r.Base, r.Limit, r.Offset, r.Enabled()
}

// VMMSegment returns the current VMM segment registers' coverage.
func (s *System) VMMSegment() (base, limit, offset uint64, enabled bool) {
	r := s.mmu.VMMSegment()
	return r.Base, r.Limit, r.Offset, r.Enabled()
}

// SelfBalloon runs the paper's self-ballooning protocol (§IV): balloon
// out scattered free guest frames and hotplug the same amount back as
// one contiguous guest physical range. Virtualized modes only.
func (s *System) SelfBalloon(size uint64) (base uint64, err error) {
	r, err := s.kernel.SelfBalloon(size, nil)
	if err != nil {
		return 0, err
	}
	return r.Start, nil
}

// RetryPrimaryRegion re-attempts backing the primary region with a
// contiguous range (after SelfBalloon or compaction).
func (s *System) RetryPrimaryRegion() error {
	if err := s.proc.BackPrimaryRegion(); err != nil {
		return err
	}
	s.mmu.SetGuestSegment(s.proc.Seg)
	return nil
}

// FragmentGuestMemory scatters allocations over frac of free guest
// frames (fragmentation injection for demos and tests). Returns the
// number of frames taken.
func (s *System) FragmentGuestMemory(frac float64, seed uint64) int {
	rng := newSeededPicker(seed)
	return len(s.kernel.Mem.FragmentRandomly(frac, rng))
}

// Kernel, VM and Host expose the underlying models for advanced use —
// the examples use them to demonstrate ballooning, compaction, sharing
// and shadow paging directly.
func (s *System) Kernel() *guestos.Kernel { return s.kernel }

// Process returns the system's (single) process.
func (s *System) Process() *guestos.Process { return s.proc }

// VM returns the virtual machine (nil for native modes).
func (s *System) VM() *vmm.VM { return s.vm }

// Host returns the host machine (nil for native modes).
func (s *System) Host() *vmm.Host { return s.host }

// MMU returns the simulated translation hardware.
func (s *System) MMU() *mmu.MMU { return s.mmu }

// Disabled segment helper re-exported for callers programming registers
// directly through MMU().
var DisabledSegment = segment.Disabled
