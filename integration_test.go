package vdirect

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/guestos"
	"vdirect/internal/mmu"
	"vdirect/internal/vmm"
)

// TestGuardPageTripsThroughMMU exercises the §V guard-page extension
// end to end: an armed page inside a Dual Direct segment escapes to
// paging, finds no PTE, and faults — which the kernel recognizes as a
// guard hit instead of demand-paging it.
func TestGuardPageTripsThroughMMU(t *testing.T) {
	s, err := NewSystem(Config{Mode: DualDirect, GuestMemory: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.CreatePrimaryRegion(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	guard := base + 0x200000
	err = s.Process().GuardPages([]uint64{guard}, func(vaPFN, paPFN uint64) {
		// A guard on a guest page uses the guest-level filter (the §V
		// both-levels extension), so the escape lands in the guest
		// page table — which has no PTE, tripping the guard.
		s.MMU().GuestEscapeFilter().Insert(vaPFN)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Non-guard neighbours translate 0D as usual.
	if _, _, err := s.Access(guard + 0x1000); err != nil {
		t.Fatal(err)
	}
	// The guard page faults — and the raw MMU fault (not the Access
	// façade, which would demand-page) is recognizable as a guard hit.
	_, fault := s.MMU().Translate(guard + 4)
	if fault == nil {
		t.Fatal("guard page translated")
	}
	if !s.Process().GuardPageHit(guard + 4) {
		t.Error("kernel did not recognize the guard hit")
	}
}

// TestEndToEndModeTransition walks a VM through the full Table III
// big-memory path: fragmented guest AND host, self-ballooning to get a
// guest segment (Guest Direct), then host compaction to add the VMM
// segment (Dual Direct) — with translations verified at each stage.
func TestEndToEndModeTransition(t *testing.T) {
	host := vmm.NewHost(512 << 20)

	// Fragment the host before the VM exists.
	junk := host.Mem.FragmentRandomly(0.3, seededPicker(5))
	vm, err := host.CreateVM(vmm.VMConfig{
		Name: "vm", MemorySize: 128 << 20, NestedPageSize: addr.Page4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range junk {
		if i%2 == 1 {
			host.Mem.FreeFrame(f)
		}
	}
	kernel := guestos.NewKernel(vm.GuestMem, vm)
	kernel.Mem.FragmentRandomly(0.5, seededPicker(6))
	proc, err := kernel.CreateProcess("bigmem")
	if err != nil {
		t.Fatal(err)
	}

	hw := mmu.New(mmu.Config{})
	hw.SetGuestPageTable(proc.PT)
	hw.SetNestedPageTable(vm.NPT)
	if hw.Mode() != mmu.ModeBaseVirtualized {
		t.Fatalf("stage 0 mode = %v", hw.Mode())
	}

	// Stage 1: guest fragmented → primary region backing fails →
	// self-balloon → Guest Direct.
	if err := proc.CreatePrimaryRegionAt(addr.Range{Start: 1 << 30, Size: 32 << 20}); err != guestos.ErrFragmented {
		t.Fatalf("stage 1 precondition: %v", err)
	}
	if _, err := kernel.SelfBalloon(32<<20, seededPicker(7)); err != nil {
		t.Fatal(err)
	}
	if err := proc.BackPrimaryRegion(); err != nil {
		t.Fatal(err)
	}
	hw.SetGuestSegment(proc.Seg)
	if hw.Mode() != mmu.ModeGuestDirect {
		t.Fatalf("stage 1 mode = %v", hw.Mode())
	}
	res, fault := hw.Translate(1<<30 + 0x5123)
	if fault != nil {
		t.Fatalf("stage 1 translate: %v", fault)
	}
	wantGPA := proc.Seg.Translate(1<<30 + 0x5123)
	if gotHPA, _, ok := vm.NPT.Translate(wantGPA); !ok || gotHPA != res.HPA {
		t.Fatalf("stage 1 wrong translation: %#x", res.HPA)
	}

	// Stage 2: host fragmented → VMM segment fails → compaction →
	// Dual Direct.
	if _, err := vm.TryEnableVMMSegment(); err == nil {
		t.Skip("host accidentally had a contiguous run; compaction path not exercised")
	}
	if _, err := host.Compact(); err != nil {
		t.Fatal(err)
	}
	hw.InvalidateNested() // compaction remapped frames
	seg, err := vm.TryEnableVMMSegment()
	if err != nil {
		t.Fatal(err)
	}
	hw.SetVMMSegment(seg)
	if hw.Mode() != mmu.ModeDualDirect {
		t.Fatalf("stage 2 mode = %v", hw.Mode())
	}
	hw.ResetStats()
	for off := uint64(0); off < 1<<20; off += 4096 {
		if _, fault := hw.Translate(1<<30 + off); fault != nil {
			t.Fatalf("stage 2 translate: %v", fault)
		}
	}
	st := hw.Stats()
	if st.WalkMemRefs != 0 {
		t.Errorf("Dual Direct made %d walk references after transition", st.WalkMemRefs)
	}
	// Cross-check: segment translation equals the nested table's view.
	gpa := proc.Seg.Translate(1 << 30)
	hpaSeg := seg.Translate(gpa)
	hpaNPT, _, ok := vm.NPT.Translate(gpa)
	if !ok || hpaSeg != hpaNPT {
		t.Errorf("segment/nPT disagree: %#x vs %#x", hpaSeg, hpaNPT)
	}
}

// TestHardwareVsEmulationEquivalence cross-validates the paper's §VI.B
// prototype strategy: segment emulation by dynamically computed PTEs
// must produce exactly the translations segment hardware produces.
func TestHardwareVsEmulationEquivalence(t *testing.T) {
	build := func(emulate bool) (*mmu.MMU, *guestos.Process) {
		mem := guestosMemory(128 << 20)
		kernel := guestos.NewKernel(mem, nil)
		proc, err := kernel.CreateProcess("p")
		if err != nil {
			t.Fatal(err)
		}
		proc.EmulateSegment = emulate
		if err := proc.CreatePrimaryRegionAt(addr.Range{Start: 1 << 30, Size: 8 << 20}); err != nil {
			t.Fatal(err)
		}
		hw := mmu.New(mmu.Config{})
		hw.SetGuestPageTable(proc.PT)
		if !emulate {
			hw.SetGuestSegment(proc.Seg)
		}
		return hw, proc
	}
	hwReal, procReal := build(false)
	hwEmul, procEmul := build(true)
	// Same fresh kernels allocate the same backing, so translations
	// must agree address by address.
	if procReal.Seg != procEmul.Seg {
		t.Fatalf("backing diverged: %v vs %v", procReal.Seg, procEmul.Seg)
	}
	for off := uint64(0); off < 4<<20; off += 4096 {
		va := 1<<30 + off + 7
		r1, f1 := hwReal.Translate(va)
		if f1 != nil {
			t.Fatalf("hardware fault at %#x", va)
		}
		var r2 mmu.Result
		for {
			var f2 *mmu.Fault
			r2, f2 = hwEmul.Translate(va)
			if f2 == nil {
				break
			}
			if err := procEmul.HandleFault(f2.Addr); err != nil {
				t.Fatal(err)
			}
		}
		if r1.HPA != r2.HPA {
			t.Fatalf("hardware %#x != emulation %#x at va %#x", r1.HPA, r2.HPA, va)
		}
	}
	// Hardware does it without page-table references; emulation pays
	// for walks — the §VI.B caveat ("does not provide any performance
	// improvement without new hardware").
	if hwReal.Stats().WalkMemRefs != 0 {
		t.Error("segment hardware performed walks")
	}
	if hwEmul.Stats().WalkMemRefs == 0 {
		t.Error("emulation performed no walks")
	}
}

func seededPicker(seed uint64) func(n uint64) uint64 { return newSeededPicker(seed) }
