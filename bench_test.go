// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation. Each regenerates its experiment at Medium scale
// and logs the resulting table (run with -v to see them); cmd/paperbench
// produces the Full-scale numbers recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package vdirect

import (
	"testing"

	"vdirect/internal/experiments"
	"vdirect/internal/sched"
	"vdirect/internal/workload"
)

// benchScale keeps `go test -bench=.` tractable; paperbench -scale full
// is the reference run.
const benchScale = ScaleMedium

// BenchmarkTableI_Translate characterizes the per-translation cost of
// each mode's L1-miss path — the Table I / Table II state machines.
func BenchmarkTableI_Translate(b *testing.B) {
	cases := []struct {
		name string
		mode Mode
	}{
		{"Native_1D", Native},
		{"DirectSegment_0D", DirectSegment},
		{"BaseVirtualized_2D", BaseVirtualized},
		{"DualDirect_0D", DualDirect},
		{"VMMDirect_1D", VMMDirect},
		{"GuestDirect_1D", GuestDirect},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s, err := NewSystem(Config{Mode: c.mode, GuestMemory: 256 << 20})
			if err != nil {
				b.Fatal(err)
			}
			var base uint64
			segmented := c.mode == DirectSegment || c.mode == GuestDirect || c.mode == DualDirect
			if segmented {
				base, err = s.CreatePrimaryRegion(64 << 20)
			} else {
				base = 0x40000000
				err = s.MapEager(base, 64<<20, Page4K)
			}
			if err != nil {
				b.Fatal(err)
			}
			// Touch every page once so software state is warm; the TLBs
			// still miss constantly (64MB ≫ reach), which is the point.
			for off := uint64(0); off < 64<<20; off += 4096 {
				if _, _, err := s.Access(base + off); err != nil {
					b.Fatal(err)
				}
			}
			s.ResetStats()
			b.ResetTimer()
			var addr uint64
			for i := 0; i < b.N; i++ {
				addr = (addr + 4096*63) % (64 << 20)
				if _, _, err := s.Access(base + addr); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := s.Stats()
			if st.Accesses > 0 {
				b.ReportMetric(float64(st.WalkMemRefs)/float64(st.Accesses), "refs/access")
				b.ReportMetric(float64(st.WalkCycles)/float64(st.Accesses), "cyc/access")
			}
		})
	}
}

// BenchmarkRunGridSerial and BenchmarkRunGridParallel measure the
// experiment scheduler's scaling on a figure-sized grid: identical
// cells, Parallelism 1 vs all cores. Their ratio is the core-count
// speedup EXPERIMENTS.md records (≈1× on single-core hosts).
func BenchmarkRunGridSerial(b *testing.B)   { benchRunGrid(b, 1) }
func BenchmarkRunGridParallel(b *testing.B) { benchRunGrid(b, 0) }

func benchRunGrid(b *testing.B, parallelism int) {
	wls := workload.BigMemoryNames()
	configs := []string{"4K", "4K+4K", "DD", "4K+VD", "4K+GD"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGridOpts(
			sched.Config{Parallelism: parallelism}, wls, configs, benchScale, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", fig.Grid().Render())
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure11(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", fig.Grid().Render())
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure12(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", fig.Grid().Render())
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure13(benchScale, 5, []int{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.Figure13Table(points).Render())
		}
	}
}

func BenchmarkSectionVIII(b *testing.B) {
	configs := []string{"4K", "4K+4K", "2M", "2M+2M", "1G", "1G+1G"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunGrid(workload.BigMemoryNames(), configs, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.SectionVIII(rows).Render())
		}
	}
}

func BenchmarkBreakdownIXA(b *testing.B) {
	wls := append([]string{"tlbstress"}, workload.BigMemoryNames()...)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Breakdown(benchScale, wls)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.BreakdownTable(rows).Render())
		}
	}
}

func BenchmarkTableIVModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIVValidation(benchScale, workload.BigMemoryNames())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.ModelTable(rows).Render())
		}
	}
}

func BenchmarkShadowPagingIXD(b *testing.B) {
	wls := []string{"memcached", "omnetpp", "canneal", "graph500", "streamcluster"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ShadowStudy(benchScale, wls)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.ShadowTable(rows).Render())
		}
	}
}

func BenchmarkPageSharingIXE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SharingStudy(128, 0.03, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.SharingTable(rows).Render())
		}
	}
}

func BenchmarkEnergyIXB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunGrid([]string{"graph500", "gups"},
			[]string{"4K+4K", "DD", "4K+VD", "4K+GD"}, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.EnergyTable(experiments.Energy(rows)).Render())
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := TableII()
		if i == 0 {
			b.Logf("\n%s", out)
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := TableIII()
		if i == 0 {
			b.Logf("\n%s", out)
		}
	}
}

// BenchmarkMultiprogram quantifies context-switch costs with segment
// save/restore under flush-on-switch vs ASID-tagged TLBs (extension).
func BenchmarkMultiprogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MultiprogramStudy(benchScale, []string{"memcached"}, 5000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.MultiprogramTable(rows).Render())
		}
	}
}
