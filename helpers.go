package vdirect

import (
	"vdirect/internal/physmem"
	"vdirect/internal/trace"
)

// guestosMemory builds the physical memory for native systems.
func guestosMemory(size uint64) *physmem.Memory {
	return physmem.New(physmem.Config{Name: "machine", Size: size})
}

// newSeededPicker adapts the deterministic PRNG to the picker signature
// fragmentation injection uses.
func newSeededPicker(seed uint64) func(n uint64) uint64 {
	r := trace.NewRand(seed)
	return r.Uint64n
}
