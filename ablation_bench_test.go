// Ablation benchmarks for the simulator's design choices: what each
// hardware structure contributes to the measured behaviour. These back
// the DESIGN.md claims that the paging-structure caches and the shared
// nested TLB are load-bearing for the reproduction.
package vdirect

import (
	"testing"

	"vdirect/internal/experiments"
	"vdirect/internal/mmu"
	"vdirect/internal/tlb"
	"vdirect/internal/workload"
)

func runAblation(b *testing.B, wl, label string, hw mmu.Config) experiments.Result {
	b.Helper()
	spec, err := experiments.ParseConfig(label)
	if err != nil {
		b.Fatal(err)
	}
	spec.Workload = wl
	class := workload.New(wl, workload.Config{MemoryMB: 1, Ops: 1}).Class()
	spec.WL = experiments.Medium.WLConfig(class, 1)
	spec.MMU = hw
	res, err := experiments.Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationPWC quantifies the paging-structure caches: without
// them every walk pays its full reference count, which is how the raw
// 24-vs-4 headline numbers become visible in cycle terms.
func BenchmarkAblationPWC(b *testing.B) {
	for _, c := range []struct {
		name    string
		disable bool
	}{{"with-PWC", false}, {"without-PWC", true}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runAblation(b, "gups", "4K+4K", mmu.Config{DisablePWC: c.disable})
				refsPerWalk := float64(res.Stats.WalkMemRefs) / float64(res.Stats.Walks)
				b.ReportMetric(refsPerWalk, "refs/walk")
				b.ReportMetric(res.Overhead*100, "overhead%")
			}
		})
	}
}

// BenchmarkAblationNestedTLB isolates the shared nested TLB: disabling
// it removes both the caching benefit (walks get longer) and the
// capacity erosion (guest misses stop inflating) — the §IX.A tradeoff.
func BenchmarkAblationNestedTLB(b *testing.B) {
	for _, c := range []struct {
		name    string
		disable bool
	}{{"shared-nested-TLB", false}, {"no-nested-TLB", true}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runAblation(b, "tlbstress", "4K+4K", mmu.Config{DisableNestedTLB: c.disable})
				b.ReportMetric(float64(res.Stats.Walks), "walks")
				b.ReportMetric(float64(res.Stats.NestedWalks), "nested-walks")
				b.ReportMetric(res.Overhead*100, "overhead%")
			}
		})
	}
}

// BenchmarkAblationSegmentCheckCost sweeps Δ, the base-bound check
// cost. The paper assumes 1 cycle per check (Δ_VD = 5, Δ_GD = 1); the
// sweep shows the conclusions are insensitive to the exact value.
func BenchmarkAblationSegmentCheckCost(b *testing.B) {
	for _, delta := range []uint64{1, 5, 20} {
		b.Run(checkName(delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runAblation(b, "gups", "4K+VD", mmu.Config{SegmentCheckCycles: delta})
				b.ReportMetric(res.Overhead*100, "overhead%")
			}
		})
	}
}

func checkName(d uint64) string {
	switch d {
	case 1:
		return "delta-1cyc"
	case 5:
		return "delta-5cyc"
	default:
		return "delta-20cyc"
	}
}

// BenchmarkAblationL2Capacity sweeps the shared L2 TLB size, moving
// the capacity cliff the tlbstress microbenchmark sits on.
func BenchmarkAblationL2Capacity(b *testing.B) {
	for _, c := range []struct {
		name    string
		entries int
	}{{"L2-256", 256}, {"L2-512-TableVI", 512}, {"L2-2048", 2048}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runAblation(b, "tlbstress", "4K+4K", mmu.Config{L2Entries: c.entries, L2Ways: 4})
				b.ReportMetric(float64(res.Stats.Walks), "walks")
				b.ReportMetric(res.Overhead*100, "overhead%")
			}
		})
	}
}

// BenchmarkAblationL1Geometry compares the Table VI L1 against a
// doubled one, showing the proposal's gains do not depend on a starved
// first level.
func BenchmarkAblationL1Geometry(b *testing.B) {
	double := tlb.Geometry{Entries4K: 128, Ways4K: 4, Entries2M: 64, Ways2M: 4, Entries1G: 8, Ways1G: 8}
	for _, c := range []struct {
		name string
		geo  tlb.Geometry
	}{{"TableVI-L1", tlb.SandyBridgeL1}, {"double-L1", double}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := runAblation(b, "graph500", "4K+4K", mmu.Config{L1: c.geo})
				dd := runAblation(b, "graph500", "DD", mmu.Config{L1: c.geo})
				b.ReportMetric(base.Overhead*100, "base-overhead%")
				b.ReportMetric(dd.Overhead*100, "DD-overhead%")
			}
		})
	}
}

// BenchmarkAblationFilterSize sweeps the escape filter's size with 16
// bad pages in Dual Direct: smaller filters saturate and push healthy
// pages onto the paging path; the paper's 256 bits suffice.
func BenchmarkAblationFilterSize(b *testing.B) {
	for _, c := range []struct {
		name string
		bits int
	}{{"64-bit", 64}, {"256-bit-paper", 256}, {"1024-bit", 1024}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, err := experiments.ParseConfig("DD")
				if err != nil {
					b.Fatal(err)
				}
				spec.Workload = "gups"
				spec.WL = experiments.Medium.WLConfig(workload.BigMemory, 1)
				spec.MMU = mmu.Config{EscapeFilterBits: c.bits}
				spec.BadPages = 16
				spec.BadPageSeed = 7
				res, err := experiments.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Overhead*100, "overhead%")
				b.ReportMetric(float64(res.Stats.EscapeTaken), "escapes")
			}
		})
	}
}
