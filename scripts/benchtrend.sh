#!/usr/bin/env sh
# Per-PR performance trajectory point. Runs the three headline hot-path
# benches best-of-5 and writes results/BENCH_<label>.json so future PRs
# can see the perf curve instead of re-deriving it from git archaeology:
#
#   - gups_events_per_sec:   BenchmarkCellBlock's events/sec metric —
#                            the number the 10M/sec roadmap item tracks
#   - translate_block_ns_op: BenchmarkTranslateBlock (one 4096-event
#                            TLB-friendly block through the MMU)
#   - host_quantum_ms:       BenchmarkHostQuantum (one consolidated-
#                            host policy quantum, 4 guests)
#
# Usage: scripts/benchtrend.sh [label]   (default label: 10, this PR)
#
# Best-of-5 is the same noise-robust statistic benchgate.sh uses; on a
# shared runner any single run can eat a scheduling spike. Numbers from
# different hosts are not comparable — the trajectory is only a trend
# when recorded on the same class of runner.
set -eu
cd "$(dirname "$0")/.."

label=${1:-10}
out=results/BENCH_$label.json
mkdir -p results

# best PKG BENCH BENCHTIME FIELD -> best (minimum) value of FIELD over
# count=5, where FIELD is the unit suffix as printed by go test
# ("ns/op", "events/sec", ...). For events/sec the maximum is the best;
# pass MODE=max.
best() {
    pkg=$1 bench=$2 benchtime=$3 field=$4 mode=${5:-min}
    go test -run '^$' -bench "^$bench\$" -benchtime "$benchtime" -count 5 "$pkg" \
        | awk -v f="$field" -v mode="$mode" '
            $1 ~ /^Benchmark/ {
                for (i = 2; i < NF; i++) if ($(i + 1) == f) {
                    v = $i + 0
                    if (best == "" || (mode == "min" ? v < best : v > best)) best = v
                }
            }
            END { if (best == "") exit 1; print best }'
}

echo "benchtrend: recording trajectory point $out (best-of-5 per bench)"
gups=$(best ./internal/replay/ BenchmarkCellBlock 10x events/sec max)
tblk=$(best ./internal/mmu/ BenchmarkTranslateBlock 200x ns/op)
hostq=$(best ./internal/host/ BenchmarkHostQuantum 5x ns/op)
host_ms=$(awk -v n="$hostq" 'BEGIN{printf "%.2f", n / 1000000}')

cat > "$out" <<EOF
{
  "pr": "$label",
  "gups_events_per_sec": $gups,
  "translate_block_ns_op": $tblk,
  "host_quantum_ms": $host_ms
}
EOF
cat "$out"
