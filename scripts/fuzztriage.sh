#!/usr/bin/env sh
# Fuzz-campaign triage for the translation differential oracle.
#
# Nightly `go test -fuzz FuzzTranslationDiff ./internal/oracle` runs
# leave their coverage-expanding inputs in the build cache's fuzz
# corpus (already minimized by the fuzz engine before being written).
# This script promotes those artifacts into the checked-in seed corpus
# so every future `go test` replays them deterministically:
#
#   1. decode each candidate's `go test fuzz v1` encoding to raw op
#      bytes and dedupe by content hash — against the checked-in corpus
#      and among the candidates themselves (the same interesting input
#      often appears under several cache names across campaigns);
#   2. re-encode canonically and stage it in the corpus under a
#      content-addressed name (fuzz-<sha256 prefix>);
#   3. replay it through the oracle differential test. Inputs that pass
#      stay promoted; inputs that FAIL are moved to
#      internal/oracle/testdata/quarantine/ for manual triage — a
#      failing artifact is a real divergence and must become a fix plus
#      a named seed, not silently join the regression corpus.
#
# Usage: scripts/fuzztriage.sh [artifact-dir ...]
# With no arguments, triages the local build cache's fuzz corpus.
# Exits nonzero if any candidate was quarantined.
set -eu
cd "$(dirname "$0")/.."

corpus=internal/oracle/testdata/fuzz/FuzzTranslationDiff
quarantine=internal/oracle/testdata/quarantine

if [ $# -gt 0 ]; then
    dirs=$*
else
    dirs="$(go env GOCACHE)/fuzz/vdirect/internal/oracle/FuzzTranslationDiff"
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# codec decodes `go test fuzz v1` []byte corpus files to raw bytes and
# re-encodes raw bytes canonically, so hashing sees content, not quoting.
mkdir "$work/codec"
cat > "$work/codec/main.go" <<'EOF'
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	data, err := os.ReadFile(os.Args[2])
	if err != nil {
		fatal(err)
	}
	switch os.Args[1] {
	case "decode":
		lines := strings.Split(string(data), "\n")
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			fatal(fmt.Errorf("%s: not a go test fuzz v1 file", os.Args[2]))
		}
		body := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		raw, err := strconv.Unquote(body)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", os.Args[2], err))
		}
		os.Stdout.WriteString(raw)
	case "encode":
		fmt.Printf("go test fuzz v1\n[]byte(%q)\n", data)
	default:
		fatal(fmt.Errorf("usage: codec decode|encode file"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "codec:", err)
	os.Exit(1)
}
EOF

codec() {
    go run "$work/codec/main.go" "$@"
}

# Hashes of raw op streams already in the corpus (or staged this run).
seen=$work/seen
: > "$seen"
for f in "$corpus"/*; do
    [ -f "$f" ] || continue
    codec decode "$f" > "$work/raw" 2>/dev/null || continue
    sha256sum < "$work/raw" | cut -c1-64 >> "$seen"
done

promoted=0 duplicates=0 quarantined=0
for dir in $dirs; do
    [ -d "$dir" ] || { echo "fuzztriage: no artifact dir $dir, skipping"; continue; }
    for f in "$dir"/*; do
        [ -f "$f" ] || continue
        codec decode "$f" > "$work/raw" 2>/dev/null || {
            echo "fuzztriage: skipping $f (not a fuzz corpus file)"
            continue
        }
        sha=$(sha256sum < "$work/raw" | cut -c1-64)
        if grep -q "^$sha\$" "$seen"; then
            duplicates=$((duplicates + 1))
            continue
        fi
        echo "$sha" >> "$seen"
        name=fuzz-$(printf '%s' "$sha" | cut -c1-12)
        codec encode "$work/raw" > "$corpus/$name"
        if go test ./internal/oracle -run "^FuzzTranslationDiff\$/^$name\$" > "$work/replay" 2>&1; then
            echo "fuzztriage: promoted $name (from $f)"
            promoted=$((promoted + 1))
        else
            mkdir -p "$quarantine"
            mv "$corpus/$name" "$quarantine/$name"
            echo "fuzztriage: QUARANTINED $name (from $f) — replay failed:" >&2
            tail -n 20 "$work/replay" >&2
            quarantined=$((quarantined + 1))
        fi
    done
done

echo "fuzztriage: $promoted promoted, $duplicates duplicate(s) skipped, $quarantined quarantined"
[ "$quarantined" -eq 0 ]
