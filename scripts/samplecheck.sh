#!/usr/bin/env sh
# Sampling non-perturbation gate: walk sampling is observation, and
# observation must not change the experiment. The full medium
# paperbench report — stdout and every per-section -out file — must be
# byte-identical with 1-in-64 sampling on and off. Only the trailing
# wall-clock line is stripped from stdout before comparing; everything
# the report states about the simulation must match exactly. The
# collected sample file must then survive a cmd/walkprof round trip:
# schema accepted, every table rendered, collapsed stacks written.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/paperbench" ./cmd/paperbench
go build -o "$tmp/walkprof" ./cmd/walkprof

"$tmp/paperbench" -scale medium -quiet -out "$tmp/off" \
    | grep -v '^— paperbench completed' > "$tmp/off.txt"
"$tmp/paperbench" -scale medium -quiet -out "$tmp/on" \
    -sample 64 -samples "$tmp/walks.jsonl" \
    | grep -v '^— paperbench completed' > "$tmp/on.txt"

if ! cmp -s "$tmp/off.txt" "$tmp/on.txt"; then
    echo "samplecheck: medium paperbench stdout differs with sampling on" >&2
    diff "$tmp/off.txt" "$tmp/on.txt" >&2 || true
    exit 1
fi
if ! diff -r "$tmp/off" "$tmp/on" >/dev/null; then
    echo "samplecheck: medium paperbench -out files differ with sampling on" >&2
    diff -r "$tmp/off" "$tmp/on" >&2 || true
    exit 1
fi

if ! [ -s "$tmp/walks.jsonl" ]; then
    echo "samplecheck: sampling produced no sample file" >&2
    exit 1
fi
"$tmp/walkprof" -top 10 -flame "$tmp/walks.folded" "$tmp/walks.jsonl" > "$tmp/report.txt"
if ! [ -s "$tmp/report.txt" ] || ! [ -s "$tmp/walks.folded" ]; then
    echo "samplecheck: walkprof produced an empty report or flame file" >&2
    exit 1
fi

echo "samplecheck: report identical with sampling on; walkprof round trip OK"
