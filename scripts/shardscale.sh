#!/usr/bin/env sh
# Shard-scaling measurement for the whole-host consolidation cell.
# Runs one hostsim cell (4 guests x 2 tenants of gups) at -shards
# 1/2/4/8, times each with best-of-3 wall clock, verifies the report
# is byte-identical at every shard count (the determinism contract
# hostcheck.sh gates), and prints a markdown scaling table for
# EXPERIMENTS.md.
#
# Shard goroutines only buy throughput when there are cores to run
# them, so on hosts with fewer than 4 CPUs the measurement would just
# quote scheduler noise as "scaling"; the script skips with a notice
# instead. That is the honest answer the ROADMAP carryover asks for:
# shard throughput may only be quoted from a host that can actually
# run the shards in parallel.
set -eu
cd "$(dirname "$0")/.."

procs=${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}
if [ "$procs" -lt 4 ]; then
    echo "shardscale: skipped — GOMAXPROCS=$procs < 4; shard scaling needs a multi-core host"
    exit 0
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/hostsim" ./cmd/hostsim

# One cell, sized so the serial run takes a few seconds: enough work
# for the per-shard goroutines to amortize their fork/join.
run() { "$tmp/hostsim" -guests 4 -tenants 2 -workload gups -ops 200000 -shards "$1"; }

best_ms() {
    sh=$1
    best=""
    for i in 1 2 3; do
        start=$(date +%s%N)
        run "$sh" > "$tmp/out-$sh.txt"
        end=$(date +%s%N)
        ms=$(( (end - start) / 1000000 ))
        if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
    done
    echo "$best"
}

echo "shardscale: GOMAXPROCS=$procs, best-of-3 wall clock per shard count"
echo
echo "| -shards | best wall (ms) | speedup |"
echo "|---------|----------------|---------|"
base=""
for sh in 1 2 4 8; do
    ms=$(best_ms "$sh")
    if [ "$sh" = 1 ]; then
        base=$ms
        speedup="1.00x"
    else
        if ! cmp -s "$tmp/out-1.txt" "$tmp/out-$sh.txt"; then
            echo "shardscale: report differs between -shards 1 and -shards $sh" >&2
            exit 1
        fi
        speedup=$(awk -v b="$base" -v m="$ms" 'BEGIN{printf "%.2fx", b/m}')
    fi
    echo "| $sh | $ms | $speedup |"
done
echo
echo "shardscale: reports byte-identical across -shards 1/2/4/8"
