#!/usr/bin/env sh
# Coverage regression gate for the translation-critical packages: each
# package listed in scripts/coverage_baseline.txt must keep at least its
# recorded statement coverage. New code in these packages ships with
# tests or with an explicitly reviewed baseline change — the differential
# oracle only checks behaviour that the suite actually reaches.
set -eu
cd "$(dirname "$0")/.."
status=0
while read -r pkg floor; do
    case "$pkg" in "" | \#*) continue ;; esac
    out=$(go test -cover "$pkg")
    pct=$(printf '%s\n' "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "covergate: no coverage reported for $pkg:" >&2
        printf '%s\n' "$out" >&2
        status=1
        continue
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN{exit !(p+0 >= f+0)}'; then
        echo "covergate: $pkg $pct% >= $floor%"
    else
        echo "covergate: $pkg coverage $pct% fell below the $floor% baseline" >&2
        status=1
    fi
done <scripts/coverage_baseline.txt
exit $status
