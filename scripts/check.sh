#!/usr/bin/env sh
# The repo's check gate. The experiment harness is concurrent (see
# internal/sched), so the race detector runs on every change: any
# shared mutable state between simulation cells is a bug. The replay
# equivalence suite additionally pins the block streaming path to the
# per-event shim — byte-identical Result/Stats — before the full tests.
# The telemetry-overhead bench runs in short mode (3 iterations) as a
# smoke test that the instrumented hot path still builds and runs; the
# recorded overhead comparison lives in EXPERIMENTS.md.
# The differential-oracle seeds (and the minimized fuzz corpora under
# testdata/) run first: any translation or walk-cost divergence between
# the production stack and internal/oracle's reference model fails fast,
# before the long suites. covergate.sh then holds the translation-
# critical packages to their recorded statement-coverage floors, and
# benchgate.sh holds the cell-throughput and TLB-probe benchmarks to
# within 15% of their recorded ns/op baselines.
set -eu
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
set -x
go vet ./...
go build ./...
go test -race ./internal/oracle/...
go test -run Equivalence -race ./internal/replay/...
go test -race ./...
go test -run '^$' -bench 'TelemetryOverhead' -benchtime 3x ./internal/replay/
sh scripts/covergate.sh
sh scripts/benchgate.sh
