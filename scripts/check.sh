#!/usr/bin/env sh
# The repo's check gate. The experiment harness is concurrent (see
# internal/sched), so the race detector runs on every change: any
# shared mutable state between simulation cells is a bug.
set -eu
cd "$(dirname "$0")/.."
set -x
go vet ./...
go build ./...
go test -race ./...
