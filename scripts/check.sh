#!/usr/bin/env sh
# The repo's check gate. The experiment harness is concurrent (see
# internal/sched), so the race detector runs on every change: any
# shared mutable state between simulation cells is a bug. The replay
# equivalence suite additionally pins the block streaming path to the
# per-event shim — byte-identical Result/Stats — before the full tests.
# The telemetry-overhead bench runs in short mode (3 iterations) as a
# smoke test that the instrumented hot path still builds and runs — it
# covers both the run-active and the walk-sampling-enabled paths; the
# recorded overhead comparison lives in EXPERIMENTS.md.
# samplecheck.sh then asserts observation does not perturb the
# experiment: the full medium paperbench report is byte-identical with
# 1-in-64 walk sampling on and off, and cmd/walkprof round-trips the
# collected sample file. hostcheck.sh does the same for scheduling:
# the whole-host consolidation sweep (stdout and sample file) is
# byte-identical across -j {1,8} x -shards {1,4}.
# The scheme exhaustiveness lint and conformance suite run first: every
# Mode constant in internal/mmu/scheme.go must have a fixture in the
# conformance suite, and every registered scheme must pass it, before
# anything expensive starts. The differential-oracle seeds (and the
# minimized fuzz corpora under testdata/) come next: any translation or
# walk-cost divergence between the production stack and
# internal/oracle's reference model fails fast, before the long suites.
# covergate.sh then holds the translation-critical packages to their
# recorded statement-coverage floors, and benchgate.sh holds the
# cell-throughput and TLB-probe benchmarks to within 10% of their
# recorded ns/op baselines.
set -eu
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# Exhaustiveness lint: a scheme constant without a conformance fixture
# means a registered scheme the suite never exercises. The suite itself
# catches schemes registered under new names at runtime; this catches
# the constant-declared ones without running any Go.
for mode in $(sed -n 's/^\t\(Mode[A-Za-z0-9]*\)[ \t]*Mode = .*/\1/p' internal/mmu/scheme.go); do
    if ! grep -q "^[[:space:]]*$mode: {" internal/mmu/scheme_test.go; then
        echo "check: $mode has no conformanceFixtures entry in internal/mmu/scheme_test.go" >&2
        exit 1
    fi
done

set -x
go vet ./...
go build ./...
go test -run 'TestSchemeConformance|TestSchemeRegistry' ./internal/mmu/
go test -race ./internal/oracle/...
go test -run Equivalence -race ./internal/replay/...
go test -race ./...
go test -run '^$' -bench 'TelemetryOverhead' -benchtime 3x ./internal/replay/
sh scripts/samplecheck.sh
sh scripts/hostcheck.sh
sh scripts/covergate.sh
sh scripts/benchgate.sh
