#!/usr/bin/env sh
# Benchmark regression gate for the translation hot path. Three
# benches stand guard: BenchmarkCellBlock (a full simulation cell on
# the block path — the number the paper-scale runs live on),
# BenchmarkSetAssocLookupHit (the TLB probe itself, the innermost
# loop), and BenchmarkTelemetryOverheadSampledOn (the same full cell
# with 1-in-64 walk sampling enabled, so the sampler's hot-path cost
# can't creep), and BenchmarkHostQuantum (a whole consolidated-host
# cell — four guests admitted, replayed, and churned over one shared
# physical memory — guarding the host layer's end-to-end cost).
# Each runs count=5 with a fixed iteration count and the BEST run is
# compared against scripts/bench_baseline.json — min-of-N is the noise-
# robust statistic on shared runners, where a single run can eat a
# scheduling spike. A bench more than BENCHGATE_TOLERANCE percent
# (default 10; re-recorded on a quiet host, so the margin is tight)
# slower than its recorded ns/op fails the gate.
set -eu
cd "$(dirname "$0")/.."

baseline=scripts/bench_baseline.json
tolerance=${BENCHGATE_TOLERANCE:-10}
status=0

# read_baseline NAME -> recorded ns/op from the flat baseline JSON.
read_baseline() {
    sed -n 's/.*"'"$1"'": *\([0-9.]*\).*/\1/p' "$baseline"
}

# gate NAME PKG BENCHTIME
gate() {
    name=$1
    pkg=$2
    benchtime=$3
    base=$(read_baseline "$name")
    if [ -z "$base" ]; then
        echo "benchgate: no baseline entry for $name in $baseline" >&2
        status=1
        return
    fi
    out=$(go test -run '^$' -bench "^$name\$" -benchtime "$benchtime" -count 5 "$pkg")
    best=$(printf '%s\n' "$out" | awk '$1 ~ /^Benchmark/ {print $3}' | sort -g | head -n 1)
    if [ -z "$best" ]; then
        echo "benchgate: $name produced no ns/op:" >&2
        printf '%s\n' "$out" >&2
        status=1
        return
    fi
    if awk -v b="$best" -v f="$base" -v t="$tolerance" \
        'BEGIN{exit !(b <= f * (1 + t / 100))}'; then
        echo "benchgate: $name $best ns/op within ${tolerance}% of baseline $base"
    else
        echo "benchgate: $name $best ns/op is more than ${tolerance}% over baseline $base ns/op" >&2
        status=1
    fi
}

gate BenchmarkCellBlock ./internal/replay/ 10x
gate BenchmarkSetAssocLookupHit ./internal/tlb/ 2000000x
gate BenchmarkTelemetryOverheadSampledOn ./internal/replay/ 10x
gate BenchmarkHostQuantum ./internal/host/ 5x
exit $status
