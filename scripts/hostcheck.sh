#!/usr/bin/env sh
# Host determinism gate: the whole-host consolidation-density sweep
# must be byte-identical however it is scheduled. The host section
# fans cells across -j workers and shards each cell's guest replay
# across -shards goroutines; neither knob may leak into the report or
# into the collected walk samples. Every (-j, -shards) combination of
# {1,8}x{1,4} must produce the same stdout (only the trailing
# wall-clock line stripped) and the same encoded sample file as the
# serial run.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/paperbench" ./cmd/paperbench

for j in 1 8; do
    for sh in 1 4; do
        "$tmp/paperbench" -scale small -quiet -only host \
            -j "$j" -shards "$sh" \
            -sample 64 -samples "$tmp/walks-$j-$sh.jsonl" \
            | grep -v '^— paperbench completed' > "$tmp/out-$j-$sh.txt"
    done
done

for j in 1 8; do
    for sh in 1 4; do
        [ "$j" = 1 ] && [ "$sh" = 1 ] && continue
        if ! cmp -s "$tmp/out-1-1.txt" "$tmp/out-$j-$sh.txt"; then
            echo "hostcheck: host section stdout differs at -j $j -shards $sh" >&2
            diff "$tmp/out-1-1.txt" "$tmp/out-$j-$sh.txt" >&2 || true
            exit 1
        fi
        if ! cmp -s "$tmp/walks-1-1.jsonl" "$tmp/walks-$j-$sh.jsonl"; then
            echo "hostcheck: host sample file differs at -j $j -shards $sh" >&2
            exit 1
        fi
    done
done

if ! [ -s "$tmp/walks-1-1.jsonl" ]; then
    echo "hostcheck: host run produced no walk samples" >&2
    exit 1
fi

echo "hostcheck: host sweep byte-identical across -j {1,8} x -shards {1,4}"
