// Bigmemory: the paper's headline scenario — a memcached-style
// key-value store in a VM. Compares base virtualized translation with
// the three proposed modes on the same trace, printing the overheads
// Figure 11 plots.
package main

import (
	"fmt"
	"log"

	"vdirect"
)

func main() {
	fmt.Println("memcached-style workload, one VM, four translation configurations")
	fmt.Println()
	configs := []struct {
		label string
		note  string
	}{
		{"4K+4K", "base virtualized: 2D walks, up to 24 references"},
		{"4K+VD", "VMM Direct: VMM segment flattens gPA→hPA (no guest changes)"},
		{"4K+GD", "Guest Direct: guest segment flattens gVA→gPA (VMM keeps nested paging)"},
		{"DD", "Dual Direct: both dimensions flattened — 0D walks"},
	}
	var baseline float64
	for i, c := range configs {
		res, err := vdirect.RunCell("memcached", c.label, vdirect.ScaleSmall)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = res.Overhead
		}
		speedof := ""
		if i > 0 && res.Overhead > 0 {
			speedof = fmt.Sprintf("  (%.0fx less than base)", baseline/res.Overhead)
		}
		fmt.Printf("%-6s overhead %6.2f%%  walks %-8d refs/walk %.1f%s\n",
			c.label, res.Overhead*100, res.Stats.Walks,
			refsPerWalk(res), speedof)
		fmt.Printf("       %s\n", c.note)
	}
}

func refsPerWalk(res vdirect.CellResult) float64 {
	if res.Stats.Walks == 0 {
		return 0
	}
	return float64(res.Stats.WalkMemRefs) / float64(res.Stats.Walks)
}
