// Fragmentation: a long-running VM whose guest physical memory is
// fragmented cannot create a guest direct segment — until the paper's
// self-ballooning (Figure 9) manufactures a contiguous range out of the
// scattered free pages, without any memory compaction.
package main

import (
	"fmt"
	"log"

	"vdirect"
)

func main() {
	s, err := vdirect.NewSystem(vdirect.Config{
		Mode:        vdirect.GuestDirect,
		GuestMemory: 512 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A long-lived guest: free memory is scattered all over.
	taken := s.FragmentGuestMemory(0.55, 2026)
	fmt.Printf("guest memory fragmented: %d frames allocated at random positions\n", taken)

	// The big-memory app asks for a 128MB primary region.
	if _, err := s.CreatePrimaryRegion(128 << 20); err == nil {
		log.Fatal("unexpected: segment created despite fragmentation")
	}
	fmt.Println("guest segment creation failed (no contiguous run) — falling back to paging")

	// Self-balloon: pin 128MB of the scattered free pages, hand them to
	// the VMM, and receive one fresh contiguous gPA range by hotplug.
	base, err := s.SelfBalloon(128 << 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-balloon complete: contiguous guest physical range at %#x\n", base)

	if err := s.RetryPrimaryRegion(); err != nil {
		log.Fatal(err)
	}
	segBase, segLimit, _, _ := s.GuestSegment()
	fmt.Printf("guest segment live over [%#x, %#x); mode: %v\n", segBase, segLimit, s.Mode())

	// Prove it: touch the primary region and count walk references —
	// the guest dimension is now a single addition.
	prim := segBase
	s.ResetStats()
	for off := uint64(0); off < 32<<20; off += 4096 {
		if _, _, err := s.Access(prim + off); err != nil {
			log.Fatal(err)
		}
	}
	st := s.Stats()
	fmt.Printf("after segment: %d walks made %d references (%.1f per walk — nested dimension only)\n",
		st.Walks, st.WalkMemRefs, float64(st.WalkMemRefs)/float64(st.Walks))
}
