// Quickstart: build a virtualized system, touch memory, and watch the
// 2D page walk disappear when the mode changes to Dual Direct.
package main

import (
	"fmt"
	"log"

	"vdirect"
)

func main() {
	// A VM with hardware-assisted nested paging (today's baseline).
	base2d, err := vdirect.NewSystem(vdirect.Config{
		Mode:        vdirect.BaseVirtualized,
		GuestMemory: 128 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	region, err := base2d.Map(16 << 20)
	if err != nil {
		log.Fatal(err)
	}
	touch(base2d, region)
	st := base2d.Stats()
	fmt.Printf("Base virtualized: %d walks, %d page-table references (%.1f refs/walk)\n",
		st.Walks, st.WalkMemRefs, float64(st.WalkMemRefs)/float64(st.Walks))

	// The same accesses under Dual Direct: both dimensions flattened by
	// segment registers — a 0D walk.
	dd, err := vdirect.NewSystem(vdirect.Config{
		Mode:        vdirect.DualDirect,
		GuestMemory: 128 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	prim, err := dd.CreatePrimaryRegion(16 << 20)
	if err != nil {
		log.Fatal(err)
	}
	touch(dd, prim)
	st = dd.Stats()
	fmt.Printf("Dual Direct:      %d walks, %d page-table references, %d zero-dimension translations\n",
		st.Walks, st.WalkMemRefs, st.ZeroDWalks)
}

// touch strides across the region, forcing one translation per page.
func touch(s *vdirect.System, base uint64) {
	for off := uint64(0); off < 16<<20; off += 4096 {
		if _, _, err := s.Access(base + off); err != nil {
			log.Fatal(err)
		}
	}
}
