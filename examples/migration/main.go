// Migration: why Guest Direct keeps nested page tables. A VM mapped by
// a VMM segment is pinned to one host range and cannot live-migrate;
// the same VM under Guest Direct (guest segment + nested paging)
// migrates with iterative pre-copy driven by nested-table dirty bits.
package main

import (
	"fmt"
	"log"

	"vdirect/internal/addr"
	"vdirect/internal/vmm"
)

func main() {
	src := vmm.NewHost(512 << 20)
	dst := vmm.NewHost(512 << 20)
	vm, err := src.CreateVM(vmm.VMConfig{
		Name: "bigmem", MemorySize: 128 << 20,
		NestedPageSize: addr.Page4K, ContiguousBacking: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Dual Direct configuration: VMM segment live → migration refused.
	if _, err := vm.TryEnableVMMSegment(); err != nil {
		log.Fatal(err)
	}
	if _, _, err := src.Migrate(vm, dst, nil, 16, 8); err != vmm.ErrSegmentPinned {
		log.Fatalf("expected pinning, got %v", err)
	}
	fmt.Println("Dual Direct: VMM segment pins guest memory — live migration refused")

	// Transition to Guest Direct: drop the VMM segment; nested paging
	// carries translation while the guest segment keeps walks at 1D.
	vm.DisableVMMSegment()
	fmt.Println("switched to Guest Direct (VMM segment disabled, nested paging active)")

	// The guest keeps running during pre-copy, dirtying pages; the
	// nested table's dirty bits track them per pass.
	for i := uint64(0); i < 4096; i++ {
		if err := vm.MarkDirty((i * 37 % 32768) << 12); err != nil {
			log.Fatal(err)
		}
	}
	migrated, rep, err := src.Migrate(vm, dst, nil, 16, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-copy passes: %d (pages per pass: %v)\n", rep.Passes(), rep.PassPages)
	fmt.Printf("stop-and-copy downtime: %d pages\n", rep.DowntimePages)
	fmt.Printf("total page copies: %d\n", rep.TotalCopied)

	// The destination VM is fully backed.
	missing := 0
	for gpa := uint64(0); gpa < 128<<20; gpa += addr.PageSize4K {
		if _, _, ok := migrated.NPT.Translate(gpa); !ok {
			missing++
		}
	}
	fmt.Printf("destination backing check: %d missing pages\n", missing)
}
