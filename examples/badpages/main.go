// Badpages: a single faulty physical page would normally forbid a
// multi-gigabyte direct segment. The escape filter (§V) lets the faulty
// pages escape to conventional paging while the rest of the segment
// keeps its 0D translation.
package main

import (
	"fmt"
	"log"

	"vdirect"
)

func main() {
	s, err := vdirect.NewSystem(vdirect.Config{
		Mode:        vdirect.DualDirect,
		GuestMemory: 512 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	base, err := s.CreatePrimaryRegion(128 << 20)
	if err != nil {
		log.Fatal(err)
	}
	_, _, gOff, _ := s.GuestSegment()

	// 16 pages inside the segment develop hard faults — the paper's
	// pessimistic case.
	var bad []uint64
	for i := uint64(0); i < 16; i++ {
		gva := base + (i*7919+13)*4096%(128<<20)
		bad = append(bad, gva+gOff) // the backing gPA
	}
	if err := s.EscapeBadPages(bad); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("escaped %d faulty pages through the 256-bit filter\n", len(bad))

	// Touch the whole region: escaped pages take the paging path, all
	// others keep the 0D segment path.
	s.ResetStats()
	for off := uint64(0); off < 128<<20; off += 4096 {
		if _, _, err := s.Access(base + off); err != nil {
			log.Fatal(err)
		}
	}
	st := s.Stats()
	pages := uint64(128 << 20 / 4096)
	// An escaping page probes the filter twice: once at the 0D check
	// and once inside the walk's nested translation.
	escapedPages := st.EscapeTaken / 2
	fmt.Printf("touched %d pages: %d translated 0D, %d escaped to paging\n",
		pages, st.ZeroDWalks, escapedPages)
	fpRate := float64(escapedPages-16) / float64(pages)
	fmt.Printf("false-positive rate: %.4f%% (paper: near zero for a 256-bit filter at 16 pages)\n",
		fpRate*100)
	fmt.Printf("walk cycles spent on escapes: %d — negligible next to the segment's savings\n",
		st.WalkCycles)
}
