// Modeswitch: walks the Table III policy — which translation mode to
// run now and which to transition to as fragmentation remedies
// (self-ballooning, host compaction) complete — and then performs one
// of the transitions live on a simulated host.
package main

import (
	"fmt"
	"log"
	"strings"

	"vdirect"
	"vdirect/internal/addr"
	"vdirect/internal/trace"
	"vdirect/internal/vmm"
)

func main() {
	fmt.Println("Table III policy:")
	fmt.Println(strings.TrimRight(vdirect.TableIII(), "\n"))
	fmt.Println()

	// Live transition: big-memory workload, host fragmented.
	plan := vmm.PlanModes(vmm.BigMemory, vmm.FragState{HostFragmented: true})
	fmt.Printf("scenario: big-memory VM on a fragmented host\n")
	fmt.Printf("policy: start in %v, converge to %v via %v\n\n",
		plan.Initial, plan.Final, plan.Techniques)

	host := vmm.NewHost(1 << 30)
	rng := trace.NewRand(3)
	junk := host.Mem.FragmentRandomly(0.3, rng.Uint64n)
	vm, err := host.CreateVM(vmm.VMConfig{
		Name: "bigmem", MemorySize: 256 << 20, NestedPageSize: addr.Page4K,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range junk {
		if i%2 == 1 {
			host.Mem.FreeFrame(f)
		}
	}

	if _, err := vm.TryEnableVMMSegment(); err != nil {
		fmt.Println("phase 1: VMM segment unavailable → run Guest Direct (guest segment + nested paging)")
	} else {
		fmt.Println("phase 1: host had room; Dual Direct immediately")
		return
	}

	moved, err := host.Compact()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: compaction daemon relocated %d frames in the background\n", moved)

	seg, err := vm.TryEnableVMMSegment()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 3: VMM segment %v programmed → mode is now %v\n", seg, plan.Final)
}
