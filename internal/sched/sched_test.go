package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vdirect/internal/telemetry"
)

func TestRunCollectsInOrder(t *testing.T) {
	for _, parallelism := range []int{1, 4, 16} {
		got, err := Run(Config{Parallelism: parallelism}, 100, func(i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // shuffle completion order
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", parallelism, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("p=%d: result[%d] = %d", parallelism, i, v)
			}
		}
	}
}

func TestRunZeroCells(t *testing.T) {
	got, err := Run(Config{}, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRunFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	_, err := Run(Config{Parallelism: 2}, 100, func(i int) (int, error) {
		executed.Add(1)
		if i == 5 {
			return 0, fmt.Errorf("cell %d: %w", i, boom)
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Cancellation must stop the pool long before all 100 cells run;
	// allow generous slack for cells already in flight.
	if n := executed.Load(); n >= 50 {
		t.Errorf("%d cells executed after first error", n)
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	// Serial execution must report exactly the error a serial loop
	// would have stopped at.
	_, err := Run(Config{Parallelism: 1}, 10, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "cell 3 failed" {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedLimiterBoundsConcurrency(t *testing.T) {
	lim := NewLimiter(2)
	var inFlight, maxInFlight atomic.Int64
	cell := func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			max := maxInFlight.Load()
			if cur <= max || maxInFlight.CompareAndSwap(max, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i, nil
	}
	// Two pools submitting concurrently share the two slots.
	err := Tasks(
		func() error { _, err := Run(Config{Limiter: lim}, 20, cell); return err },
		func() error { _, err := Run(Config{Limiter: lim}, 20, cell); return err },
	)
	if err != nil {
		t.Fatal(err)
	}
	if m := maxInFlight.Load(); m > 2 {
		t.Errorf("max in-flight cells = %d with a 2-slot limiter", m)
	}
}

func TestProgressAggregatesAcrossPools(t *testing.T) {
	var mu sync.Mutex
	var lastDone, lastTotal int
	pr := telemetry.NewProgress(func(done, total int) {
		mu.Lock()
		lastDone, lastTotal = done, total
		mu.Unlock()
	})
	cfg := Config{Parallelism: 4, Progress: pr}
	err := Tasks(
		func() error { _, err := Run(cfg, 10, func(i int) (int, error) { return i, nil }); return err },
		func() error { _, err := Run(cfg, 15, func(i int) (int, error) { return i, nil }); return err },
	)
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != 25 || lastTotal != 25 {
		t.Errorf("final progress = %d/%d, want 25/25", lastDone, lastTotal)
	}
}

func TestTasksReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	err := Tasks(
		func() error { time.Sleep(2 * time.Millisecond); return errA },
		func() error { return errors.New("b") },
		func() error { return nil },
	)
	if err != errA {
		t.Fatalf("err = %v, want task-order first error", err)
	}
}

func TestNilProgressSafe(t *testing.T) {
	var pr *telemetry.Progress
	pr.Expect(3)
	pr.Finish()
	if _, err := Run(Config{Parallelism: 2}, 5, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecordsCellSpans(t *testing.T) {
	run := telemetry.StartRun("sched-test", nil, true)
	defer run.Stop()
	_, err := Run(Config{Parallelism: 2, SpanName: func(i int) string {
		return fmt.Sprintf("cell-%d", i)
	}}, 6, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Tracer().Len(); got != 6 {
		t.Errorf("traced %d cell spans, want 6", got)
	}
	if got := len(run.Timings()); got != 6 {
		t.Errorf("manifest has %d cell timings, want 6", got)
	}
}

func TestRunShardedDeterministicAcrossShards(t *testing.T) {
	// Peers of different lengths: totals and per-peer step counts must
	// be identical at any shard count.
	run := func(shards int) ([]int, int) {
		const n = 7
		steps := make([]int, n)
		rounds := 0
		err := RunSharded(shards, n, func(i int) (bool, error) {
			steps[i]++
			return steps[i] > i, nil // peer i needs i+1 rounds
		}, func(round int) error {
			rounds++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return steps, rounds
	}
	ref, refRounds := run(1)
	for _, shards := range []int{2, 4, 16} {
		got, rounds := run(shards)
		if rounds != refRounds {
			t.Fatalf("shards=%d: %d rounds, want %d", shards, rounds, refRounds)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("shards=%d: peer %d stepped %d times, want %d", shards, i, got[i], ref[i])
			}
		}
	}
}

func TestRunShardedLowestPeerErrorWins(t *testing.T) {
	errs := []error{nil, errors.New("peer1"), nil, errors.New("peer3")}
	for _, shards := range []int{1, 2, 4} {
		err := RunSharded(shards, 4, func(i int) (bool, error) {
			return true, errs[i]
		}, nil)
		if err != errs[1] {
			t.Fatalf("shards=%d: err = %v, want lowest-peer error %v", shards, err, errs[1])
		}
	}
}

func TestRunShardedBarrierError(t *testing.T) {
	wantErr := errors.New("barrier")
	var stepped atomic.Int64
	err := RunSharded(2, 4, func(i int) (bool, error) {
		stepped.Add(1)
		return false, nil
	}, func(round int) error {
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if got := stepped.Load(); got != 4 {
		t.Fatalf("stepped %d peers before barrier error, want 4", got)
	}
}

func TestRunShardedEmpty(t *testing.T) {
	if err := RunSharded(4, 0, func(int) (bool, error) {
		t.Fatal("step called with n=0")
		return true, nil
	}, nil); err != nil {
		t.Fatal(err)
	}
}
