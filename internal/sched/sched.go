// Package sched is the parallel experiment scheduler: a bounded worker
// pool that fans independent simulation cells across cores while
// keeping output bit-for-bit deterministic. Every cell builds a private
// simulation stack and derives its RNG seeds from its Spec alone, so
// execution order cannot change any result; Run therefore collects
// results by cell index and returns them in submission order, making a
// parallel run byte-identical to a serial one.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"vdirect/internal/telemetry"
)

// Config controls how a Run executes.
type Config struct {
	// Parallelism bounds concurrently executing cells. 0 means
	// runtime.GOMAXPROCS(0); 1 reproduces strictly serial execution.
	Parallelism int
	// Limiter, when non-nil, shares one concurrency budget across
	// several Run calls (the sections of a full reproduction submit to
	// the same Limiter); Parallelism is then ignored.
	Limiter *Limiter
	// Progress, when non-nil, receives cell registration and completion
	// events for live reporting.
	Progress *telemetry.Progress
	// SpanName, when non-nil, names the telemetry span wrapped around
	// cell i. It is only consulted while a telemetry run is active, so
	// the closure costs nothing otherwise.
	SpanName func(i int) string
}

// workers returns the effective worker count for n cells.
func (c Config) workers(n int) int {
	p := c.Parallelism
	if c.Limiter != nil {
		p = c.Limiter.capacity
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	return p
}

// Limiter is a counting semaphore shared by concurrent Run calls so
// that their combined in-flight cells never exceed its capacity.
type Limiter struct {
	capacity int
	slots    chan struct{}
}

// NewLimiter builds a limiter admitting parallelism concurrent cells
// (0 or negative means runtime.GOMAXPROCS(0)).
func NewLimiter(parallelism int) *Limiter {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Limiter{capacity: parallelism, slots: make(chan struct{}, parallelism)}
}

func (l *Limiter) acquire() { l.slots <- struct{}{} }
func (l *Limiter) release() { <-l.slots }

// Run executes fn(i) for every i in [0, n) on a bounded worker pool and
// returns the results indexed by i — the same order a serial loop would
// produce. The first error (lowest cell index among those observed)
// cancels all not-yet-started cells and is returned; with Parallelism 1
// this is exactly the error a serial loop would stop at.
func Run[T any](cfg Config, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	cfg.Progress.Expect(n)
	var (
		next     atomic.Int64
		canceled atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	workers := cfg.workers(n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || canceled.Load() {
					return
				}
				if cfg.Limiter != nil {
					cfg.Limiter.acquire()
				}
				// The span brackets the cell's execution, not its wait
				// for a limiter slot, so trace rows show simulation
				// time rather than queueing.
				var span telemetry.Span
				if cfg.SpanName != nil && telemetry.Active() {
					span = telemetry.StartSpan("cell", cfg.SpanName(i))
				}
				res, err := fn(i)
				span.End()
				if cfg.Limiter != nil {
					cfg.Limiter.release()
				}
				if err != nil {
					canceled.Store(true)
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
				results[i] = res
				cfg.Progress.Finish()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// RunSharded advances n peers in quantum lockstep across shard
// goroutines: each round, shard s calls step(i) once for every live
// peer i with i%shards == s, shards running concurrently; when every
// shard finishes the round, barrier(round) (if non-nil) runs serially
// on the coordinator. The loop continues until every peer has reported
// done or an error occurs.
//
// Determinism contract: a peer is stepped by exactly one goroutine per
// round and rounds are separated by a full join, so peer-private state
// (including caller-side per-peer accumulators indexed by peer) never
// races and results are identical at any shard count. On error the
// lowest-numbered failing peer of the round wins — the same error a
// serial loop stepping peers in order would stop at. The barrier is the
// serial seam: host-global mutations (policy churn, shared-resource
// ops) belong there, never in step.
func RunSharded(shards, n int, step func(peer int) (done bool, err error), barrier func(round int) error) error {
	if n == 0 {
		return nil
	}
	if shards <= 0 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	done := make([]bool, n)
	remaining := n
	for round := 0; remaining > 0; round++ {
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			errIdx   = n
			firstErr error
		)
		wg.Add(shards)
		for s := 0; s < shards; s++ {
			go func(s int) {
				defer wg.Done()
				for i := s; i < n; i += shards {
					if done[i] {
						continue
					}
					d, err := step(i)
					if err != nil {
						errMu.Lock()
						if i < errIdx {
							errIdx, firstErr = i, err
						}
						errMu.Unlock()
						done[i] = true
						continue
					}
					if d {
						done[i] = true
					}
				}
			}(s)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		remaining = 0
		for _, d := range done {
			if !d {
				remaining++
			}
		}
		if barrier != nil {
			if err := barrier(round); err != nil {
				return err
			}
		}
	}
	return nil
}

// Tasks runs the given functions concurrently — one goroutine each —
// and returns the error of the lowest-indexed task that failed. Tasks
// are coarse units (whole report sections) and are deliberately not
// charged against any Limiter: each task is expected to submit its own
// cells through Run with a shared Limiter, which is where the
// machine-wide concurrency bound lives.
func Tasks(tasks ...func() error) error {
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for i, task := range tasks {
		go func(i int, task func() error) {
			defer wg.Done()
			errs[i] = task()
		}(i, task)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
