// Package perfmodel implements the paper's evaluation methodology
// (§VII): the linear models of Table IV that predict page-walk cycles
// for each proposed mode from quantities measured on base systems, and
// the execution-time overhead metric of §VIII.
//
// The paper measures Mn, Cn, Cv with perf counters and classifies TLB
// misses with BadgerTrap; this reproduction measures the same
// quantities from the simulator, applies the same models, and — unlike
// the paper, which could not build the hardware — cross-validates the
// models against direct simulation of each mode.
package perfmodel

import "fmt"

// Paper constants: Δ is the cost of base-bound checks added to a native
// walk (§VII, "we use 1 cycle per base-bound check").
const (
	// DeltaVD is Δ for VMM Direct: 5 checks per walk.
	DeltaVD = 5.0
	// DeltaGD is Δ for Guest Direct: 1 check per walk.
	DeltaGD = 1.0
	// FlatRefRatio is the flattened nested walk's reference count
	// relative to the base 2D walk for 4K-on-4K translation (12/24):
	// interior guest levels cost one flat-table reference instead of a
	// nested translation plus the entry read.
	FlatRefRatio = 12.0 / 24.0
)

// Inputs are the per-workload measurements the models consume.
type Inputs struct {
	// Mn is the number of TLB misses in the native run.
	Mn float64
	// Cn is page-walk cycles per TLB miss, native.
	Cn float64
	// Cv is page-walk cycles per TLB miss, base virtualized (2D walk).
	Cv float64
	// FDS is the fraction of native misses inside the direct segment.
	FDS float64
	// FVD is the fraction of misses translated only by the VMM segment.
	FVD float64
	// FGD is the fraction of misses translated only by the guest
	// segment.
	FGD float64
	// FDD is the fraction of misses inside both segments.
	FDD float64
}

// DirectSegment predicts total walk cycles for unvirtualized direct
// segments: Cn·(1−F_DS)·Mn.
func (in Inputs) DirectSegment() float64 {
	return in.Cn * (1 - in.FDS) * in.Mn
}

// VMMDirect predicts walk cycles for VMM Direct:
// [(Cn+Δ_VD)·F_VD + Cv·(1−F_VD)]·Mn.
func (in Inputs) VMMDirect() float64 {
	return ((in.Cn+DeltaVD)*in.FVD + in.Cv*(1-in.FVD)) * in.Mn
}

// GuestDirect predicts walk cycles for Guest Direct:
// [(Cn+Δ_GD)·F_GD + Cv·(1−F_GD)]·Mn.
func (in Inputs) GuestDirect() float64 {
	return ((in.Cn+DeltaGD)*in.FGD + in.Cv*(1-in.FGD)) * in.Mn
}

// DualDirect predicts walk cycles for Dual Direct:
// [(Cn+Δ_VD)·F_VD + (Cn+Δ_GD)·F_GD + Cv·(1−F_GD−F_VD−F_DD)]·Mn.
// Misses covered by both segments (F_DD) cost zero.
func (in Inputs) DualDirect() float64 {
	return ((in.Cn+DeltaVD)*in.FVD +
		(in.Cn+DeltaGD)*in.FGD +
		in.Cv*(1-in.FGD-in.FVD-in.FDD)) * in.Mn
}

// BaseVirtualized is the measured 2D baseline: Cv·Mn. (The paper's
// models scale from native miss counts.)
func (in Inputs) BaseVirtualized() float64 { return in.Cv * in.Mn }

// Native is the measured native baseline: Cn·Mn.
func (in Inputs) Native() float64 { return in.Cn * in.Mn }

// FlatNested predicts walk cycles for flattened nested page tables:
// Cv·(12/24)·Mn. Every miss keeps the 2D walk structure, but the
// interior guest levels collapse to single flat references, halving the
// 4K-on-4K reference count.
func (in Inputs) FlatNested() float64 { return in.Cv * FlatRefRatio * in.Mn }

// ByName evaluates the model for a translation scheme's registry name —
// the same names the mmu scheme registry keys on — so drivers select
// models and schemes with one string.
func (in Inputs) ByName(name string) (float64, error) {
	switch name {
	case "Native":
		return in.Native(), nil
	case "DirectSegment":
		return in.DirectSegment(), nil
	case "BaseVirtualized":
		return in.BaseVirtualized(), nil
	case "VMMDirect":
		return in.VMMDirect(), nil
	case "GuestDirect":
		return in.GuestDirect(), nil
	case "DualDirect":
		return in.DualDirect(), nil
	case "FlatNested":
		return in.FlatNested(), nil
	}
	return 0, fmt.Errorf("perfmodel: no Table IV model for scheme %q", name)
}

// Overhead is the §VIII execution-time overhead metric:
// (T_E − T_2Mideal) / T_2Mideal, where T_E = T_ideal + walk cycles and
// T_2Mideal is the ideal (translation-free) execution time.
func Overhead(walkCycles, idealCycles float64) float64 {
	if idealCycles <= 0 {
		return 0
	}
	return walkCycles / idealCycles
}

// RelativeError compares a model prediction against a direct
// simulation, |model − sim| / sim, used by the Table IV validation.
func RelativeError(model, sim float64) float64 {
	if sim == 0 {
		if model == 0 {
			return 0
		}
		return 1
	}
	d := model - sim
	if d < 0 {
		d = -d
	}
	return d / sim
}
