package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDirectSegmentModel(t *testing.T) {
	in := Inputs{Mn: 1000, Cn: 50, FDS: 0.99}
	// 1% of 1000 misses still walk at 50 cycles.
	if got := in.DirectSegment(); !almostEq(got, 50*0.01*1000) {
		t.Errorf("DirectSegment = %g", got)
	}
	// F_DS = 1 eliminates everything.
	in.FDS = 1
	if got := in.DirectSegment(); got != 0 {
		t.Errorf("full coverage = %g", got)
	}
}

func TestVMMDirectModel(t *testing.T) {
	in := Inputs{Mn: 1000, Cn: 50, Cv: 150, FVD: 1}
	// Full coverage: every miss costs Cn + 5.
	if got := in.VMMDirect(); !almostEq(got, 55*1000) {
		t.Errorf("VMMDirect full = %g", got)
	}
	in.FVD = 0
	if got := in.VMMDirect(); !almostEq(got, 150*1000) {
		t.Errorf("VMMDirect none = %g (should be base virtualized)", got)
	}
	in.FVD = 0.5
	if got := in.VMMDirect(); !almostEq(got, (0.5*55+0.5*150)*1000) {
		t.Errorf("VMMDirect half = %g", got)
	}
}

func TestGuestDirectModel(t *testing.T) {
	in := Inputs{Mn: 2000, Cn: 40, Cv: 160, FGD: 0.9}
	want := (0.9*41 + 0.1*160) * 2000
	if got := in.GuestDirect(); !almostEq(got, want) {
		t.Errorf("GuestDirect = %g, want %g", got, want)
	}
}

func TestDualDirectModel(t *testing.T) {
	// All misses in both segments: zero cycles.
	in := Inputs{Mn: 1000, Cn: 50, Cv: 150, FDD: 1}
	if got := in.DualDirect(); got != 0 {
		t.Errorf("DualDirect full = %g", got)
	}
	// Mixed coverage.
	in = Inputs{Mn: 1000, Cn: 50, Cv: 150, FDD: 0.7, FVD: 0.1, FGD: 0.1}
	want := (55*0.1 + 51*0.1 + 150*0.1) * 1000
	if got := in.DualDirect(); !almostEq(got, want) {
		t.Errorf("DualDirect mixed = %g, want %g", got, want)
	}
}

func TestModeOrderingProperty(t *testing.T) {
	// For any measurement with Cv > Cn (always true of 2D walks) and
	// identical coverage f in every mode, the ordering must be
	// DualDirect <= GuestDirect <= VMMDirect <= BaseVirtualized.
	f := func(mnSeed, cnSeed, cvSeed uint16, fSeed uint8) bool {
		in := Inputs{
			Mn: float64(mnSeed) + 1,
			Cn: float64(cnSeed%200) + 10,
		}
		in.Cv = in.Cn*2 + float64(cvSeed%500) // Cv > Cn
		cov := float64(fSeed) / 255
		dd := Inputs{Mn: in.Mn, Cn: in.Cn, Cv: in.Cv, FDD: cov}
		gd := Inputs{Mn: in.Mn, Cn: in.Cn, Cv: in.Cv, FGD: cov}
		vd := Inputs{Mn: in.Mn, Cn: in.Cn, Cv: in.Cv, FVD: cov}
		return dd.DualDirect() <= gd.GuestDirect()+1e-9 &&
			gd.GuestDirect() <= vd.VMMDirect()+1e-9 &&
			vd.VMMDirect() <= in.BaseVirtualized()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverhead(t *testing.T) {
	if Overhead(50, 100) != 0.5 {
		t.Error("Overhead wrong")
	}
	if Overhead(50, 0) != 0 {
		t.Error("zero ideal should yield 0")
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Error("RelativeError wrong")
	}
	if RelativeError(90, 100) != 0.1 {
		t.Error("RelativeError not symmetric in sign")
	}
	if RelativeError(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
	if RelativeError(5, 0) != 1 {
		t.Error("nonzero/0 should be 1")
	}
}

func TestNativeBaseline(t *testing.T) {
	in := Inputs{Mn: 100, Cn: 30, Cv: 90}
	if in.Native() != 3000 || in.BaseVirtualized() != 9000 {
		t.Error("baselines wrong")
	}
}
