package experiments

import (
	"reflect"
	"testing"
)

// TestConsolidationDeterminism runs the study serially and sharded and
// requires identical results: the tenant partition must not leak into
// the aggregate. Under -race this also exercises the shard goroutines
// for data races.
func TestConsolidationDeterminism(t *testing.T) {
	base, err := ConsolidationStudy(Small, []string{"gups"}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 8} {
		got, err := ConsolidationStudy(Small, []string{"gups"}, 3, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("shards=%d: results differ\nserial:  %+v\nsharded: %+v", shards, base, got)
		}
	}
}

// TestConsolidationOrdering pins the row layout the report section
// depends on: workload-major, config-minor, constant tenant count.
func TestConsolidationOrdering(t *testing.T) {
	rows, err := ConsolidationStudy(Small, []string{"gups", "memcached"}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{
		{"gups", "4K+4K"}, {"gups", "DD"},
		{"memcached", "4K+4K"}, {"memcached", "DD"},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if r.Workload != want[i][0] || r.Config != want[i][1] {
			t.Errorf("row %d = %s/%s, want %s/%s", i, r.Workload, r.Config, want[i][0], want[i][1])
		}
		if r.Tenants != 2 {
			t.Errorf("row %d tenants = %d, want 2", i, r.Tenants)
		}
		if r.Accesses == 0 {
			t.Errorf("row %d simulated no accesses", i)
		}
		if r.WorstTenant < r.Overhead {
			t.Errorf("row %d worst tenant %v below aggregate %v", i, r.WorstTenant, r.Overhead)
		}
	}
	// Nested paging must cost more than Dual Direct for the same
	// workload — the study's reason to exist.
	if rows[0].Overhead <= rows[1].Overhead {
		t.Errorf("gups 4K+4K overhead %v not above DD %v", rows[0].Overhead, rows[1].Overhead)
	}
	// The table renders without panicking and mentions every workload.
	text := ConsolidationTable(rows).Render()
	if text == "" {
		t.Fatal("empty table")
	}
}
