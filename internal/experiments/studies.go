// Section VIII and IX studies: cost of virtualization, the §IX.A
// performance breakdown, Table IV model validation, the shadow-paging
// alternative (§IX.D), content-based page sharing (§IX.E), and the
// qualitative Tables II and III.

package experiments

import (
	"fmt"

	"vdirect/internal/perfmodel"
	"vdirect/internal/sched"
	"vdirect/internal/stats"
	"vdirect/internal/vmm"
	"vdirect/internal/workload"
)

// SectionVIII summarizes the cost-of-virtualization observations from
// figure rows: how much virtualization multiplies translation overhead
// and how much large pages recover.
func SectionVIII(rows []Row) *stats.Table {
	t := stats.NewTable("Section VIII — cost of virtualization",
		"workload", "4K", "4K+4K", "virt/native", "2M", "2M+2M", "1G", "1G+1G")
	// One map over the rows instead of a scan per cell; the first row
	// for a (workload, config) pair wins, as the scan did.
	overheads := make(map[[2]string]float64, len(rows))
	for _, r := range rows {
		key := [2]string{r.Workload, r.Config}
		if _, ok := overheads[key]; !ok {
			overheads[key] = r.Overhead
		}
	}
	get := func(wl, cfg string) (float64, bool) {
		v, ok := overheads[[2]string{wl, cfg}]
		return v, ok
	}
	var ratios []float64
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Workload] {
			continue
		}
		seen[r.Workload] = true
		n4, ok1 := get(r.Workload, "4K")
		v4, ok2 := get(r.Workload, "4K+4K")
		if !ok1 || !ok2 {
			continue
		}
		cell := func(cfg string) string {
			if v, ok := get(r.Workload, cfg); ok {
				return fmt.Sprintf("%.1f", v*100)
			}
			return "-"
		}
		ratio := 0.0
		if n4 > 0 {
			ratio = v4 / n4
			ratios = append(ratios, ratio)
		}
		t.AddRow(r.Workload,
			fmt.Sprintf("%.1f", n4*100), fmt.Sprintf("%.1f", v4*100),
			fmt.Sprintf("%.2fx", ratio),
			cell("2M"), cell("2M+2M"), cell("1G"), cell("1G+1G"))
	}
	if len(ratios) > 0 {
		t.AddRow("GEOMEAN", "", "", fmt.Sprintf("%.2fx", stats.GeoMean(ratios)),
			"", "", "", "")
	}
	return t
}

// BreakdownRow is one workload of the §IX.A analysis.
type BreakdownRow struct {
	Workload string
	// Mn, Mv: TLB misses (walk invocations) native vs virtualized;
	// Inflation = Mv/Mn, the shared-L2 capacity-erosion effect.
	Mn, Mv    uint64
	Inflation float64
	// Cn, Cv: page-walk cycles per miss; CvOverCn is the paper's
	// "average cycles per TLB miss grows with virtualization" factor.
	Cn, Cv   float64
	CvOverCn float64
	// VDPerMissVsNative and GDPerMissVsNative: cycles per miss in VMM
	// Direct / Guest Direct relative to native (paper: +13%, +3%).
	VDPerMissVsNative float64
	GDPerMissVsNative float64
	// DDL2MissReduction is the fraction of L2 TLB misses Dual Direct
	// eliminates (paper: ~99.9%).
	DDL2MissReduction float64
}

// modeConfigs are the five configurations the §IX.A breakdown and the
// Table IV validation both measure per workload.
var modeConfigs = []string{"4K", "4K+4K", "4K+VD", "4K+GD", "DD"}

// runModeGrid simulates modeConfigs for every workload through the
// scheduler and returns one config→Result map per workload.
func runModeGrid(cfg sched.Config, scale Scale, workloads []string) ([]map[string]Result, error) {
	rows, err := RunGridOpts(cfg, workloads, modeConfigs, scale, 1)
	if err != nil {
		return nil, err
	}
	out := make([]map[string]Result, len(workloads))
	for i := range workloads {
		results := make(map[string]Result, len(modeConfigs))
		for _, r := range rows[i*len(modeConfigs) : (i+1)*len(modeConfigs)] {
			results[r.Config] = r.Result
		}
		out[i] = results
	}
	return out, nil
}

// Breakdown reproduces the §IX.A analysis for the given workloads.
func Breakdown(scale Scale, workloads []string) ([]BreakdownRow, error) {
	return BreakdownOpts(sched.Config{}, scale, workloads)
}

// BreakdownOpts is Breakdown under an explicit scheduler configuration.
func BreakdownOpts(cfg sched.Config, scale Scale, workloads []string) ([]BreakdownRow, error) {
	grids, err := runModeGrid(cfg, scale, workloads)
	if err != nil {
		return nil, err
	}
	var out []BreakdownRow
	for i, wl := range workloads {
		results := grids[i]
		nat, virt := results["4K"], results["4K+4K"]
		vd, gd, dd := results["4K+VD"], results["4K+GD"], results["DD"]
		perMiss := func(r Result) float64 {
			handled := r.Stats.Walks + r.Stats.ZeroDWalks
			if handled == 0 {
				return 0
			}
			return float64(r.WalkCycles) / float64(handled)
		}
		row := BreakdownRow{
			Workload: wl,
			Mn:       nat.Stats.Walks,
			Mv:       virt.Stats.Walks,
			Cn:       perMiss(nat),
			Cv:       perMiss(virt),
		}
		if row.Mn > 0 {
			row.Inflation = float64(row.Mv) / float64(row.Mn)
		}
		if row.Cn > 0 {
			row.CvOverCn = row.Cv / row.Cn
			row.VDPerMissVsNative = perMiss(vd) / row.Cn
			row.GDPerMissVsNative = perMiss(gd) / row.Cn
		}
		if virt.Stats.L2Misses > 0 {
			row.DDL2MissReduction = 1 - float64(dd.Stats.L2Misses)/float64(virt.Stats.L2Misses)
		}
		out = append(out, row)
	}
	return out, nil
}

// BreakdownTable renders the §IX.A analysis.
func BreakdownTable(rows []BreakdownRow) *stats.Table {
	t := stats.NewTable("Section IX.A — performance breakdown",
		"workload", "Mn", "Mv", "Mv/Mn", "Cn", "Cv", "Cv/Cn",
		"VD/miss vs native", "GD/miss vs native", "DD L2-miss cut")
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprint(r.Mn), fmt.Sprint(r.Mv), fmt.Sprintf("%.2fx", r.Inflation),
			fmt.Sprintf("%.1f", r.Cn), fmt.Sprintf("%.1f", r.Cv),
			fmt.Sprintf("%.2fx", r.CvOverCn),
			fmt.Sprintf("%.2fx", r.VDPerMissVsNative),
			fmt.Sprintf("%.2fx", r.GDPerMissVsNative),
			stats.Percent(r.DDL2MissReduction))
	}
	return t
}

// ModelRow is one workload of the Table IV validation: the paper's
// linear model versus direct simulation of each mode.
type ModelRow struct {
	Workload string
	Inputs   perfmodel.Inputs
	// Predicted and Simulated walk cycles per mode label.
	Predicted map[string]float64
	Simulated map[string]float64
}

// TableIVValidation measures model inputs (Mn, Cn, Cv, F_*) from
// simulation and compares the Table IV predictions against directly
// simulated mode cycles. The residual quantifies what the paper's model
// leaves out — chiefly TLB-miss inflation, which it acknowledges.
func TableIVValidation(scale Scale, workloads []string) ([]ModelRow, error) {
	return TableIVValidationOpts(sched.Config{}, scale, workloads)
}

// TableIVValidationOpts is TableIVValidation under an explicit
// scheduler configuration.
func TableIVValidationOpts(cfg sched.Config, scale Scale, workloads []string) ([]ModelRow, error) {
	grids, err := runModeGrid(cfg, scale, workloads)
	if err != nil {
		return nil, err
	}
	var out []ModelRow
	for i, wl := range workloads {
		results := grids[i]
		nat, base := results["4K"], results["4K+4K"]
		vd, gd, dd := results["4K+VD"], results["4K+GD"], results["DD"]
		frac := func(part uint64, r Result) float64 {
			total := r.Stats.MissBoth + r.Stats.MissVMMOnly + r.Stats.MissGuestOnly + r.Stats.MissNeither
			if total == 0 {
				return 0
			}
			return float64(part) / float64(total)
		}
		common := perfmodel.Inputs{
			Mn: float64(nat.Stats.Walks),
			Cn: stats.Ratio(float64(nat.WalkCycles), float64(nat.Stats.Walks)),
			Cv: stats.Ratio(float64(base.WalkCycles), float64(base.Stats.Walks)),
		}
		// Each model takes its coverage fractions from its own mode's
		// miss classification — they form one disjoint partition per
		// configuration, exactly as the BadgerTrap classification of
		// §VII partitions the misses of the run being modeled.
		vdIn, gdIn, ddIn := common, common, common
		vdIn.FVD = frac(vd.Stats.MissVMMOnly, vd)
		gdIn.FGD = frac(gd.Stats.MissGuestOnly, gd)
		ddIn.FDD = frac(dd.Stats.MissBoth, dd)
		ddIn.FVD = frac(dd.Stats.MissVMMOnly, dd)
		ddIn.FGD = frac(dd.Stats.MissGuestOnly, dd)
		out = append(out, ModelRow{
			Workload: wl,
			Inputs:   ddIn,
			Predicted: map[string]float64{
				"4K+VD": vdIn.VMMDirect(),
				"4K+GD": gdIn.GuestDirect(),
				"DD":    ddIn.DualDirect(),
			},
			Simulated: map[string]float64{
				"4K+VD": float64(vd.WalkCycles),
				"4K+GD": float64(gd.WalkCycles),
				"DD":    float64(dd.WalkCycles),
			},
		})
	}
	return out, nil
}

// ModelTable renders the Table IV validation.
func ModelTable(rows []ModelRow) *stats.Table {
	t := stats.NewTable("Table IV — linear model vs direct simulation (walk cycles)",
		"workload", "mode", "model", "simulated", "rel err")
	for _, r := range rows {
		for _, mode := range []string{"4K+VD", "4K+GD", "DD"} {
			t.AddRow(r.Workload, mode,
				fmt.Sprintf("%.3g", r.Predicted[mode]),
				fmt.Sprintf("%.3g", r.Simulated[mode]),
				stats.Percent(perfmodel.RelativeError(r.Predicted[mode], r.Simulated[mode])))
		}
	}
	return t
}

// SharingResult is one VM pair of the §IX.E study.
type SharingResult struct {
	PairA, PairB string
	Report       vmm.SharingReport
}

// SharingStudy reproduces §IX.E: co-schedule pairs of big-memory VMs
// and measure how much memory content-based sharing reclaims. Guest
// pages are assigned content hashes: a small fraction are OS code/zero
// pages identical across VMs; workload data is unique per VM, as the
// paper observed ("the bulk of memory is for data structures unique to
// the workload").
func SharingStudy(vmMB uint64, osFrac, zeroFrac float64) ([]SharingResult, error) {
	return SharingStudyOpts(sched.Config{}, vmMB, osFrac, zeroFrac)
}

// SharingStudyOpts is SharingStudy under an explicit scheduler
// configuration; each VM pair is one independent cell (its own host).
func SharingStudyOpts(cfg sched.Config, vmMB uint64, osFrac, zeroFrac float64) ([]SharingResult, error) {
	wls := workload.BigMemoryNames()
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < len(wls); i++ {
		for j := i; j < len(wls); j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	if cfg.SpanName == nil {
		cfg.SpanName = func(k int) string {
			return "share " + wls[pairs[k].i] + "+" + wls[pairs[k].j]
		}
	}
	return sched.Run(cfg, len(pairs), func(k int) (SharingResult, error) {
		i, j := pairs[k].i, pairs[k].j
		host := vmm.NewHost(vmMB * 3 << 20)
		vmA, err := host.CreateVM(vmm.VMConfig{Name: wls[i], MemorySize: vmMB << 20, NestedPageSize: 0})
		if err != nil {
			return SharingResult{}, err
		}
		vmB, err := host.CreateVM(vmm.VMConfig{Name: wls[j], MemorySize: vmMB << 20, NestedPageSize: 0})
		if err != nil {
			return SharingResult{}, err
		}
		pages := (vmMB << 20) >> 12
		osPages := uint64(float64(pages) * osFrac)
		zeroPages := uint64(float64(pages) * zeroFrac)
		fill := func(vm *vmm.VM, salt uint64) {
			for p := uint64(0); p < pages; p++ {
				gpa := p << 12
				switch {
				case p < osPages:
					vm.SetPageContent(gpa, 0xC0DE0000+p) // same distro in both VMs
				case p < osPages+zeroPages:
					vm.SetPageContent(gpa, 1) // zero page
				default:
					vm.SetPageContent(gpa, (salt<<32)|p) // unique data
				}
			}
		}
		fill(vmA, uint64(i)+100)
		fill(vmB, uint64(j)+200)
		rep, err := host.ScanAndShare([]*vmm.VM{vmA, vmB})
		if err != nil {
			return SharingResult{}, err
		}
		return SharingResult{PairA: wls[i], PairB: wls[j], Report: rep}, nil
	})
}

// SharingTable renders the §IX.E study.
func SharingTable(rows []SharingResult) *stats.Table {
	t := stats.NewTable("Section IX.E — content-based page sharing savings",
		"VM pair", "scanned pages", "saved frames", "saved %")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%s + %s", r.PairA, r.PairB),
			fmt.Sprint(r.Report.ScannedPages),
			fmt.Sprint(r.Report.SavedFrames),
			stats.Percent(r.Report.SavedFraction()))
	}
	return t
}

// TableII renders the qualitative mode-tradeoff table.
func TableII() *stats.Table {
	t := stats.NewTable("Table II — tradeoffs among virtualized modes",
		"property", "Base Virtualized", "Dual Direct", "VMM Direct", "Guest Direct")
	caps := vmm.AllCapabilities()
	row := func(name string, get func(vmm.Capabilities) string) {
		cells := []string{name}
		for _, c := range caps {
			cells = append(cells, get(c))
		}
		t.AddRow(cells...)
	}
	yn := func(b bool) string {
		if b {
			return "required"
		}
		return "none"
	}
	row("page walk dimensions", func(c vmm.Capabilities) string { return c.WalkDims })
	row("memory accesses/walk", func(c vmm.Capabilities) string { return fmt.Sprint(c.MemAccesses) })
	row("base-bound checks", func(c vmm.Capabilities) string { return fmt.Sprint(c.BaseBoundChecks) })
	row("guest OS modifications", func(c vmm.Capabilities) string { return yn(c.GuestOSMods) })
	row("VMM modifications", func(c vmm.Capabilities) string { return yn(c.VMMMods) })
	row("application category", func(c vmm.Capabilities) string { return c.AppCategory })
	row("page sharing", func(c vmm.Capabilities) string { return c.PageSharing.String() })
	row("ballooning", func(c vmm.Capabilities) string { return c.Ballooning.String() })
	row("guest swapping", func(c vmm.Capabilities) string { return c.GuestSwapping.String() })
	row("VMM swapping", func(c vmm.Capabilities) string { return c.VMMSwapping.String() })
	return t
}

// TableIII renders the fragmented-system mode policy.
func TableIII() *stats.Table {
	t := stats.NewTable("Table III — modes utilized in fragmented systems",
		"applications", "VM state", "initial mode", "final mode", "techniques")
	cases := []struct {
		class workload.Class
		frag  vmm.FragState
		state string
	}{
		{workload.BigMemory, vmm.FragState{HostFragmented: true}, "host fragmented"},
		{workload.BigMemory, vmm.FragState{GuestFragmented: true}, "guest fragmented"},
		{workload.BigMemory, vmm.FragState{HostFragmented: true, GuestFragmented: true}, "host+guest fragmented"},
		{workload.Compute, vmm.FragState{HostFragmented: true}, "host fragmented"},
		{workload.Compute, vmm.FragState{GuestFragmented: true}, "guest fragmented"},
		{workload.Compute, vmm.FragState{HostFragmented: true, GuestFragmented: true}, "host+guest fragmented"},
	}
	for _, c := range cases {
		class := vmm.BigMemory
		if c.class == workload.Compute {
			class = vmm.Compute
		}
		p := vmm.PlanModes(class, c.frag)
		tech := "-"
		if len(p.Techniques) > 0 {
			tech = fmt.Sprint(p.Techniques)
		}
		t.AddRow(c.class.String(), c.state, p.Initial.String(), p.Final.String(), tech)
	}
	return t
}

// EnergyRow is the §IX.B dynamic-energy proxy for one configuration:
// event counts weighted by per-structure access energy, normalized to
// the base virtualized configuration.
type EnergyRow struct {
	Workload string
	Config   string
	Relative float64
}

// Energy derives the §IX.B discussion from figure rows: a translation
// dynamic-energy proxy of weighted structure accesses. Weights are
// relative access energies (L2 TLB probe 4, page-walk memory reference
// 8, segment comparator 0.5); the L1 probe is identical in every
// configuration and omitted.
func Energy(rows []Row) []EnergyRow {
	proxy := func(r Result) float64 {
		s := r.Stats
		l2Probes := s.L2Hits + s.L2Misses + s.NestedTLBHits + s.NestedTLBMisses
		return 4*float64(l2Probes) + 8*float64(s.WalkMemRefs) + 0.5*float64(s.SegmentChecks)
	}
	base := map[string]float64{}
	for _, r := range rows {
		if r.Config == "4K+4K" {
			base[r.Workload] = proxy(r.Result)
		}
	}
	var out []EnergyRow
	for _, r := range rows {
		if !r.Result.Spec.Mode.Virtualized() {
			continue
		}
		b := base[r.Workload]
		if b == 0 {
			continue
		}
		out = append(out, EnergyRow{Workload: r.Workload, Config: r.Config, Relative: proxy(r.Result) / b})
	}
	return out
}

// EnergyTable renders the §IX.B proxy.
func EnergyTable(rows []EnergyRow) *stats.Table {
	t := stats.NewTable("Section IX.B — translation dynamic-energy proxy (vs 4K+4K)",
		"workload", "config", "relative energy")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Config, fmt.Sprintf("%.3f", r.Relative))
	}
	return t
}
