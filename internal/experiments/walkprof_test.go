package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"vdirect/internal/sched"
	"vdirect/internal/telemetry/walkprof"
	"vdirect/internal/workload"
)

// sampledGridBytes runs a small grid with walk sampling enabled at the
// given period and returns the encoded sample file — the byte-exact
// artifact the determinism contract is stated over.
func sampledGridBytes(t *testing.T, parallelism int, period uint64) []byte {
	t.Helper()
	p := walkprof.Enable(period)
	defer p.Stop()
	_, err := RunGridOpts(sched.Config{Parallelism: parallelism},
		[]string{"gups", "memcached"}, []string{"4K+4K", "DD", "4K+VD"}, Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Snapshot()
	if d.NumSamples() == 0 {
		t.Fatal("sampling enabled but no samples collected")
	}
	var buf bytes.Buffer
	if err := walkprof.Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWalkSamplingDeterministicAcrossParallelism is satellite S3's grid
// half: the same seed and cell set must yield byte-identical sample
// streams whether cells run serially or fanned across eight workers.
// The stride sampler is cell-private state driven only by that cell's
// miss stream, and the dump orders cells canonically, so worker
// scheduling has nowhere to leak in.
func TestWalkSamplingDeterministicAcrossParallelism(t *testing.T) {
	serial := sampledGridBytes(t, 1, 16)
	parallel := sampledGridBytes(t, 8, 16)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("sample files differ between -j1 (%d bytes) and -j8 (%d bytes)",
			len(serial), len(parallel))
	}
}

// sampledConsolidationBytes is the sharded-cell counterpart: tenants
// partitioned across shard goroutines, samplers tenant-private.
func sampledConsolidationBytes(t *testing.T, shards int) []byte {
	t.Helper()
	p := walkprof.Enable(16)
	defer p.Stop()
	if _, err := ConsolidationStudy(Small, []string{"gups"}, 4, shards); err != nil {
		t.Fatal(err)
	}
	d := p.Snapshot()
	if d.NumSamples() == 0 {
		t.Fatal("sampling enabled but no samples collected")
	}
	var buf bytes.Buffer
	if err := walkprof.Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWalkSamplingDeterministicAcrossShards is satellite S3's shard
// half: the consolidation study's intra-cell partitioning (1, 2, 4
// shard goroutines) must not change a single sample byte.
func TestWalkSamplingDeterministicAcrossShards(t *testing.T) {
	base := sampledConsolidationBytes(t, 1)
	for _, shards := range []int{2, 4} {
		if got := sampledConsolidationBytes(t, shards); !bytes.Equal(base, got) {
			t.Errorf("shards=%d: sample file differs from serial (%d vs %d bytes)",
				shards, len(got), len(base))
		}
	}
}

// TestWalkSamplingDoesNotPerturbResults runs the same grid with
// sampling off and on and requires identical Results: observation must
// not change the experiment. (The MMU-level counterpart checks raw
// Stats; this covers the whole harness path including warmup resets.)
func TestWalkSamplingDoesNotPerturbResults(t *testing.T) {
	wls := []string{"gups"}
	configs := []string{"4K+4K", "DD"}
	plain, err := RunGridOpts(sched.Config{Parallelism: 1}, wls, configs, Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := walkprof.Enable(walkprof.DefaultPeriod)
	defer p.Stop()
	sampled, err := RunGridOpts(sched.Config{Parallelism: 1}, wls, configs, Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, sampled) {
		t.Fatalf("results differ with sampling on:\noff: %+v\non:  %+v", plain, sampled)
	}
}

// TestWalkSamplingAccuracy is the acceptance bound: period-scaled
// estimates from 1-in-64 samples must reproduce the cell's aggregate
// walk refs and cycles within sampling error (25% on a Small gups
// cell; the estimator is unbiased, so error shrinks with trace length).
func TestWalkSamplingAccuracy(t *testing.T) {
	p := walkprof.Enable(walkprof.DefaultPeriod)
	defer p.Stop()
	spec, err := ParseConfig("4K+4K")
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload = "gups"
	spec.WL = Small.WLConfig(workload.BigMemory, 1)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Snapshot()
	schemes, _ := walkprof.Attribution(d)
	if len(schemes) == 0 {
		t.Fatal("no samples attributed")
	}
	var estRefs, estCycles uint64
	for _, a := range schemes {
		estRefs += a.EstRefs(d.Period)
		estCycles += a.EstCycles(d.Period)
	}
	within := func(name string, est, actual uint64) {
		t.Helper()
		if actual == 0 {
			t.Fatalf("%s: aggregate is zero", name)
		}
		ratio := float64(est) / float64(actual)
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("%s: estimate %d vs actual %d (ratio %.3f outside [0.75,1.25])",
				name, est, actual, ratio)
		}
	}
	within("walk refs", estRefs, res.Stats.WalkMemRefs)
	within("walk cycles", estCycles, res.WalkCycles)
}
