// Whole-host consolidation-density study (extension): one fixed host,
// swept over consolidation density. Every density is an independent
// cell — its own physical memory, VMM, guests, policy engine — so the
// cells fan across the scheduler's worker pool like any figure grid,
// while each cell's guests additionally shard across goroutines via
// the host layer's own RunSharded phase. Both axes of parallelism are
// presentation-only: rows come back byte-identical at any -j and any
// -shards.
//
// The modeled question extends §VI.A/§VIII to machine scale: admitting
// guests Dual Direct requires a boot-time contiguous host run, so as
// density rises on a fixed host the allocator eventually cannot carve
// one more — the fragmentation knee — and late guests fall back to
// Base Virtualized paging, ballooning earlier tenants to fit. Past the
// knee the report shows the two costs the paper predicts: nested-walk
// overhead for the fallback guests, and escape-filter traffic for the
// direct guests whose segments host services (ballooning, retirement)
// have punched holes in.

package experiments

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/host"
	"vdirect/internal/sched"
	"vdirect/internal/stats"
	"vdirect/internal/workload"
)

// hostWL sizes one tenant's trace per scale. The host study multiplies
// every cell by density × tenants, so tenants stay smaller than the
// single-cell figures at the same scale.
func hostWL(scale Scale) workload.Config {
	switch scale {
	case Small:
		return workload.Config{Seed: 1, MemoryMB: 8, Ops: 12000}
	case Full:
		return workload.Config{Seed: 1, MemoryMB: 16, Ops: 200000}
	default:
		return workload.Config{Seed: 1, MemoryMB: 8, Ops: 50000}
	}
}

// hostStudyConfig builds the density-d cell configuration. The host
// size is fixed across the sweep — that is the experiment — and chosen
// so the knee lands inside it: about 5/8 of maxDensity guests fit
// Dual Direct, and the remainder must fall back and balloon.
func hostStudyConfig(wl string, scale Scale, density, maxDensity, shards int) host.Config {
	cfg := host.Config{
		Guests:          density,
		TenantsPerGuest: 2,
		Workload:        wl,
		WL:              hostWL(scale),
		GuestHeadroom:   32 << 20,
		BalloonFloor:    8 << 20,
		Seed:            uint64(density),
		Shards:          shards,
	}
	gs := cfg.GuestSize()
	knee := maxDensity * 5 / 8
	if knee < 1 {
		knee = 1
	}
	cfg.HostMemory = addr.AlignUp(uint64(knee)*gs+gs/2+(16<<20), addr.PageSize4K)
	return cfg
}

// HostStudy sweeps consolidation density 1..maxDensity on one fixed
// host size for the given workload. Densities are independent cells
// scheduled through cfg's worker pool; within a cell, guests replay
// across `shards` goroutines. Rows are identical at any parallelism
// or shard count.
func HostStudy(cfg sched.Config, scale Scale, wl string, maxDensity, shards int) ([]host.Result, error) {
	if maxDensity <= 0 {
		maxDensity = 8
	}
	if shards <= 0 {
		shards = 1
	}
	if !workload.Exists(wl) {
		return nil, fmt.Errorf("experiments: unknown workload %q", wl)
	}
	if cfg.SpanName == nil {
		cfg.SpanName = func(i int) string { return fmt.Sprintf("host %s d=%d", wl, i+1) }
	}
	return sched.Run(cfg, maxDensity, func(i int) (host.Result, error) {
		density := i + 1
		sh := shards
		if sh > density {
			sh = density
		}
		s, err := host.NewSim(hostStudyConfig(wl, scale, density, maxDensity, sh))
		if err != nil {
			return host.Result{}, fmt.Errorf("experiments: host density %d: %w", density, err)
		}
		res, err := s.Run()
		if err != nil {
			return host.Result{}, fmt.Errorf("experiments: host density %d: %w", density, err)
		}
		return res, nil
	})
}

// HostTable renders the density sweep: one row per density, with the
// fragmentation-knee coordinates (direct admissions, still-creatable
// direct reservations, free-space shape) and the two per-density
// costs (aggregate overhead, escape-filter traffic).
func HostTable(rows []host.Result) *stats.Table {
	t := stats.NewTable("Host consolidation — fragmentation knee and escape cost vs density",
		"density", "direct", "creatable", "free MB", "largest run MB", "frag idx",
		"overhead", "worst guest", "esc probes", "esc taken", "escaped pages")
	for _, r := range rows {
		escaped := 0
		for _, g := range r.Guests {
			escaped += g.EscapedPages
		}
		t.AddRow(fmt.Sprint(r.Density), fmt.Sprint(r.DirectGuests), fmt.Sprint(r.Creatable),
			fmt.Sprint(r.Frag.FreeFrames>>8), fmt.Sprint(r.Frag.LargestRun>>8),
			fmt.Sprintf("%.3f", r.Frag.FragIndex),
			stats.Percent(r.Overhead), stats.Percent(r.WorstGuest),
			fmt.Sprint(r.EscapeProbes), fmt.Sprint(r.EscapeTaken), fmt.Sprint(escaped))
	}
	return t
}

// HostGuestTable renders the per-guest detail of one density cell —
// normally the sweep's densest row, where the policy tug-of-war and
// mode mixture are strongest.
func HostGuestTable(r host.Result) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Host consolidation — per-guest detail at density %d", r.Density),
		"guest", "mode", "accesses", "overhead", "owner MB", "balloons",
		"hotplugs", "retires", "shared", "cow", "migrations", "escaped")
	for _, g := range r.Guests {
		t.AddRow(fmt.Sprint(g.Guest), g.Mode.String(),
			fmt.Sprint(g.Accesses), stats.Percent(g.Overhead),
			fmt.Sprint(g.OwnerFrames>>8),
			fmt.Sprint(g.Balloons), fmt.Sprint(g.Hotplugs), fmt.Sprint(g.Retires),
			fmt.Sprint(g.SharedIn), fmt.Sprint(g.CoWBreaks), fmt.Sprint(g.Migrations),
			fmt.Sprint(g.EscapedPages))
	}
	return t
}
