package experiments

import (
	"strings"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/mmu"
	"vdirect/internal/workload"
)

func TestParseConfig(t *testing.T) {
	cases := []struct {
		label  string
		mode   mmu.Mode
		guest  addr.PageSize
		nested addr.PageSize
	}{
		{"4K", mmu.ModeNative, addr.Page4K, addr.Page4K},
		{"2M", mmu.ModeNative, addr.Page2M, addr.Page4K},
		{"1G", mmu.ModeNative, addr.Page1G, addr.Page4K},
		{"THP", mmu.ModeNative, addr.Page2M, addr.Page4K},
		{"DS", mmu.ModeDirectSegment, addr.Page4K, addr.Page4K},
		{"4K+4K", mmu.ModeBaseVirtualized, addr.Page4K, addr.Page4K},
		{"4K+2M", mmu.ModeBaseVirtualized, addr.Page4K, addr.Page2M},
		{"2M+1G", mmu.ModeBaseVirtualized, addr.Page2M, addr.Page1G},
		{"THP+2M", mmu.ModeBaseVirtualized, addr.Page2M, addr.Page2M},
		{"DD", mmu.ModeDualDirect, addr.Page4K, addr.Page4K},
		{"4K+VD", mmu.ModeVMMDirect, addr.Page4K, addr.Page4K},
		{"THP+VD", mmu.ModeVMMDirect, addr.Page2M, addr.Page4K},
		{"4K+GD", mmu.ModeGuestDirect, addr.Page4K, addr.Page4K},
	}
	for _, c := range cases {
		s, err := ParseConfig(c.label)
		if err != nil {
			t.Errorf("%s: %v", c.label, err)
			continue
		}
		if s.Mode != c.mode || s.GuestPage != c.guest || s.NestedPage != c.nested {
			t.Errorf("%s: got mode=%v guest=%v nested=%v", c.label, s.Mode, s.GuestPage, s.NestedPage)
		}
		if s.Label != c.label {
			t.Errorf("%s: label = %q", c.label, s.Label)
		}
	}
	for _, bad := range []string{"", "7K", "4K+9G", "4K+2M+1G", "XX"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}

func TestConfigListsParse(t *testing.T) {
	for _, lists := range [][]string{Figure1Configs(), Figure11Configs(), Figure12Configs()} {
		for _, label := range lists {
			if _, err := ParseConfig(label); err != nil {
				t.Errorf("figure config %q does not parse: %v", label, err)
			}
		}
	}
}

func TestScaleConfigs(t *testing.T) {
	for _, s := range []Scale{Small, Medium, Full} {
		for _, class := range []workload.Class{workload.BigMemory, workload.Compute} {
			cfg := s.WLConfig(class, 7)
			if cfg.Seed != 7 || cfg.MemoryMB == 0 || cfg.Ops == 0 {
				t.Errorf("%v/%v config = %+v", s, class, cfg)
			}
		}
	}
	if Small.WLConfig(workload.BigMemory, 1).MemoryMB >= Full.WLConfig(workload.BigMemory, 1).MemoryMB {
		t.Error("scales not ordered")
	}
	if Small.String() != "small" || Medium.String() != "medium" || Full.String() != "full" {
		t.Error("scale strings")
	}
}

// runSmall is a helper running one cell at Small scale.
func runSmall(t *testing.T, wl, label string) Result {
	t.Helper()
	spec, err := ParseConfig(label)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload = wl
	class := workload.New(wl, workload.Config{MemoryMB: 1, Ops: 1}).Class()
	spec.WL = Small.WLConfig(class, 1)
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("%s/%s: %v", wl, label, err)
	}
	return res
}

func TestRunAllModesAllWorkloads(t *testing.T) {
	// Every workload must run under every headline mode without error.
	for _, wl := range workload.Names() {
		for _, label := range []string{"4K", "DS", "4K+4K", "DD", "4K+VD", "4K+GD"} {
			res := runSmall(t, wl, label)
			if res.Accesses == 0 {
				t.Errorf("%s/%s: zero measured accesses", wl, label)
			}
		}
	}
}

func TestModeOrderingHolds(t *testing.T) {
	// The paper's headline ordering on a TLB-hostile workload:
	// base virtualized ≫ native ≈ VMM Direct ≈ Guest Direct ≫ Dual Direct.
	native := runSmall(t, "gups", "4K").Overhead
	virt := runSmall(t, "gups", "4K+4K").Overhead
	vd := runSmall(t, "gups", "4K+VD").Overhead
	gd := runSmall(t, "gups", "4K+GD").Overhead
	dd := runSmall(t, "gups", "DD").Overhead
	ds := runSmall(t, "gups", "DS").Overhead

	if virt < native*1.5 {
		t.Errorf("virtualization multiplier too small: native %.3f, virt %.3f", native, virt)
	}
	if vd > native*1.4 || gd > native*1.4 {
		t.Errorf("direct modes not near native: native %.3f, VD %.3f, GD %.3f", native, vd, gd)
	}
	if dd > native*0.2 {
		t.Errorf("Dual Direct not near zero: %.3f vs native %.3f", dd, native)
	}
	if ds > native*0.2 {
		t.Errorf("Direct Segment not near zero: %.3f vs native %.3f", ds, native)
	}
}

func TestLargePagesReduceOverhead(t *testing.T) {
	o4k := runSmall(t, "gups", "4K+4K").Overhead
	r2m := runSmall(t, "gups", "2M+2M").Overhead
	if r2m >= o4k {
		t.Errorf("2M+2M (%.3f) not better than 4K+4K (%.3f)", r2m, o4k)
	}
}

func TestBadPagesRaiseOverheadSlightly(t *testing.T) {
	spec, _ := ParseConfig("DD")
	spec.Workload = "gups"
	spec.WL = Small.WLConfig(workload.BigMemory, 1)
	clean, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.BadPages = 16
	spec.BadPageSeed = 3
	bad, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Stats.EscapeTaken == 0 {
		t.Error("no escapes with 16 bad pages")
	}
	ratio := bad.ExecutionCycles() / clean.ExecutionCycles()
	if ratio < 1.0-1e-6 {
		t.Errorf("bad pages sped things up: %.4f", ratio)
	}
	// Small scale concentrates accesses, so allow a loose 10% bound; the
	// paper's <0.1% claim is checked at Full scale in EXPERIMENTS.md.
	if ratio > 1.10 {
		t.Errorf("16 bad pages cost %.1f%%, filter not working", (ratio-1)*100)
	}
}

func TestBadPagesRequireVMMSegment(t *testing.T) {
	spec, _ := ParseConfig("4K+4K")
	spec.Workload = "gups"
	spec.WL = Small.WLConfig(workload.BigMemory, 1)
	spec.BadPages = 4
	if _, err := Run(spec); err == nil {
		t.Fatal("bad-page study without a VMM segment succeeded")
	}
}

func TestFigure1Small(t *testing.T) {
	fig, err := Figure1(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3*len(Figure1Configs()) {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	out := fig.Table().Render()
	if !strings.Contains(out, "graph500") || !strings.Contains(out, "DD") {
		t.Error("table missing content")
	}
	grid := fig.Grid().Render()
	if !strings.Contains(grid, "4K+4K") {
		t.Error("grid missing config column")
	}
}

func TestFigure13Small(t *testing.T) {
	points, err := Figure13(Small, 3, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(workload.BigMemoryNames())*2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Normalized.N != 3 {
			t.Errorf("%s/%d: n = %d", p.Workload, p.BadPages, p.Normalized.N)
		}
		if p.Normalized.Mean < 0.99 || p.Normalized.Mean > 1.25 {
			t.Errorf("%s/%d: normalized %.4f out of band", p.Workload, p.BadPages, p.Normalized.Mean)
		}
	}
	out := Figure13Table(points).Render()
	if !strings.Contains(out, "bad pages") {
		t.Error("figure 13 table missing header")
	}
}

func TestBreakdownSmall(t *testing.T) {
	rows, err := Breakdown(Small, []string{"tlbstress", "gups"})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BreakdownRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// The microbenchmark demonstrates TLB-miss inflation from shared
	// nested entries (§IX.A: 1.29-1.62× for real workloads).
	ts := byName["tlbstress"]
	if ts.Inflation < 1.15 {
		t.Errorf("tlbstress miss inflation = %.2fx, expected clear capacity erosion", ts.Inflation)
	}
	// 2D walks cost more per miss.
	if ts.CvOverCn < 1.3 || byName["gups"].CvOverCn < 1.3 {
		t.Errorf("Cv/Cn too low: %v", rows)
	}
	// Dual Direct eliminates nearly all L2 TLB misses.
	if byName["gups"].DDL2MissReduction < 0.99 {
		t.Errorf("DD L2 miss reduction = %.4f, want ~99.9%%", byName["gups"].DDL2MissReduction)
	}
	if !strings.Contains(BreakdownTable(rows).Render(), "Mv/Mn") {
		t.Error("breakdown table header")
	}
}

func TestTableIVValidationSmall(t *testing.T) {
	rows, err := TableIVValidation(Small, []string{"gups"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Inputs.Mn == 0 || r.Inputs.Cn == 0 || r.Inputs.Cv <= r.Inputs.Cn {
		t.Errorf("inputs implausible: %+v", r.Inputs)
	}
	// GUPS Dual Direct coverage should be near-total; the DD run's own
	// classification partitions misses, so FVD/FGD are residual there.
	if r.Inputs.FDD < 0.9 {
		t.Errorf("fractions low: %+v", r.Inputs)
	}
	if r.Inputs.FDD+r.Inputs.FVD+r.Inputs.FGD > 1.0+1e-9 {
		t.Errorf("fractions not a partition: %+v", r.Inputs)
	}
	// The model and simulation should agree on ordering: DD ≪ GD ≤ VD.
	if !(r.Predicted["DD"] < r.Predicted["4K+GD"] && r.Predicted["4K+GD"] <= r.Predicted["4K+VD"]) {
		t.Errorf("model ordering wrong: %+v", r.Predicted)
	}
	if !strings.Contains(ModelTable(rows).Render(), "rel err") {
		t.Error("model table header")
	}
}

func TestSectionVIIITable(t *testing.T) {
	rows, err := RunGrid([]string{"gups"}, []string{"4K", "4K+4K", "2M", "2M+2M"}, Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := SectionVIII(rows).Render()
	if !strings.Contains(out, "GEOMEAN") || !strings.Contains(out, "gups") {
		t.Errorf("section VIII table:\n%s", out)
	}
}

func TestShadowStudySmall(t *testing.T) {
	rows, err := ShadowStudy(Small, []string{"memcached", "streamcluster"})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ShadowResult{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	mc, sc := byName["memcached"], byName["streamcluster"]
	// The churny workload must pay visibly more for shadow paging than
	// the static one (§IX.D's two categories).
	if mc.Exits == 0 {
		t.Fatal("memcached took no exits under shadow paging")
	}
	if mc.ShadowSlowdown <= sc.ShadowSlowdown {
		t.Errorf("shadow slowdowns: memcached %.4f <= streamcluster %.4f",
			mc.ShadowSlowdown, sc.ShadowSlowdown)
	}
	// VMM Direct must not suffer from allocation churn.
	if mc.VMMDirectSlowdown > mc.ShadowSlowdown && mc.ShadowSlowdown > 0.02 {
		t.Errorf("VMM Direct (%.4f) worse than shadow (%.4f) for churny workload",
			mc.VMMDirectSlowdown, mc.ShadowSlowdown)
	}
	if !strings.Contains(ShadowTable(rows).Render(), "shadow") {
		t.Error("shadow table header")
	}
}

func TestSharingStudy(t *testing.T) {
	rows, err := SharingStudy(64, 0.03, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // C(4,2)+4 pairs of big-memory workloads
		t.Fatalf("pairs = %d", len(rows))
	}
	for _, r := range rows {
		frac := r.Report.SavedFraction()
		// The paper's claim: sharing saves <3% for big-memory pairs
		// (our content model gives OS pages 3% + zero 1% across two
		// VMs, so savings land under ~2.5%).
		if frac <= 0 || frac > 0.03 {
			t.Errorf("%s+%s: saved %.4f outside (0, 3%%]", r.PairA, r.PairB, frac)
		}
	}
	if !strings.Contains(SharingTable(rows).Render(), "saved %") {
		t.Error("sharing table header")
	}
}

func TestQualitativeTables(t *testing.T) {
	t2 := TableII().Render()
	for _, want := range []string{"Dual Direct", "0D", "24", "unrestricted"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	t3 := TableIII().Render()
	for _, want := range []string{"big-memory", "GuestDirect", "DualDirect", "compaction"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
}

func TestEnergyProxy(t *testing.T) {
	rows, err := RunGrid([]string{"gups"}, []string{"4K+4K", "DD", "4K+VD"}, Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	energy := Energy(rows)
	rel := map[string]float64{}
	for _, e := range energy {
		rel[e.Config] = e.Relative
	}
	if rel["4K+4K"] != 1.0 {
		t.Errorf("baseline not 1.0: %v", rel)
	}
	// §IX.B expectation: the new modes reduce translation dynamic
	// energy relative to the base virtualized design.
	if rel["DD"] >= 1.0 || rel["4K+VD"] >= 1.0 {
		t.Errorf("direct modes not cheaper: %v", rel)
	}
	if !strings.Contains(EnergyTable(energy).Render(), "relative energy") {
		t.Error("energy table header")
	}
}

func TestMultiprogramStudy(t *testing.T) {
	rows, err := MultiprogramStudy(Small, []string{"gups"}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Switches == 0 {
		t.Fatal("no context switches")
	}
	// Tagged switches can only help: entries survive timeslices.
	if r.ASIDOverhead > r.FlushOverhead+1e-9 {
		t.Errorf("ASID (%.4f) worse than flush (%.4f)", r.ASIDOverhead, r.FlushOverhead)
	}
	if !strings.Contains(MultiprogramTable(rows).Render(), "ASID") {
		t.Error("table header")
	}
}
