// Package experiments drives the simulator to regenerate every figure
// and table of the paper's evaluation (§VIII, §IX). Each experiment
// returns typed rows plus a rendered table, so both the paperbench CLI
// and the benchmark harness print the same data.
package experiments

import (
	"fmt"
	"strings"

	"vdirect/internal/addr"
	"vdirect/internal/mmu"
	"vdirect/internal/workload"
)

// Spec describes one simulation cell: a workload under one translation
// configuration.
type Spec struct {
	// Workload is a Table V workload name.
	Workload string
	// WL sizes the workload trace.
	WL workload.Config
	// Mode selects the translation mode.
	Mode mmu.Mode
	// GuestPage is the page size the guest OS maps the primary region
	// with (paging-based modes; ignored when a guest segment covers it).
	GuestPage addr.PageSize
	// NestedPage is the page size the VMM backs guest memory with
	// (virtualized modes).
	NestedPage addr.PageSize
	// Label is the figure bar label ("4K+2M", "DD", ...).
	Label string
	// WarmupFrac is the fraction of the trace run before statistics
	// reset; default 0.2.
	WarmupFrac float64
	// BadPages inserts this many faulty host pages inside the VMM
	// segment, escaped through the filter (Figure 13).
	BadPages int
	// BadPageSeed varies the random bad-page set across trials.
	BadPageSeed uint64
	// MMU overrides hardware parameters (zero = defaults).
	MMU mmu.Config
}

// ParseConfig turns a figure bar label into a Spec skeleton. Labels:
//
//	"4K" "2M" "1G" "THP"      native paging at that page size
//	"DS"                      unvirtualized direct segment
//	"A+B"                     guest page A over nested page B (A,B in
//	                          4K/2M/1G/THP), base virtualized
//	"A+VD"                    VMM Direct with guest page A
//	"A+GD"                    Guest Direct (guest segment; A used for
//	                          non-primary mappings)
//	"DD"                      Dual Direct
//	"A+FL"                    flattened nested page tables with guest
//	                          page A (4K nested pages)
func ParseConfig(label string) (Spec, error) {
	s := Spec{Label: label, GuestPage: addr.Page4K, NestedPage: addr.Page4K}
	page := func(tok string) (addr.PageSize, error) {
		switch tok {
		case "4K":
			return addr.Page4K, nil
		case "2M", "THP":
			return addr.Page2M, nil
		case "1G":
			return addr.Page1G, nil
		}
		return 0, fmt.Errorf("experiments: bad page token %q in %q", tok, label)
	}
	switch label {
	case "DS":
		s.Mode = mmu.ModeDirectSegment
		return s, nil
	case "DD":
		s.Mode = mmu.ModeDualDirect
		return s, nil
	}
	parts := strings.Split(label, "+")
	switch len(parts) {
	case 1:
		p, err := page(parts[0])
		if err != nil {
			return Spec{}, err
		}
		s.Mode = mmu.ModeNative
		s.GuestPage = p
		return s, nil
	case 2:
		p, err := page(parts[0])
		if err != nil {
			return Spec{}, err
		}
		s.GuestPage = p
		switch parts[1] {
		case "VD":
			s.Mode = mmu.ModeVMMDirect
		case "GD":
			s.Mode = mmu.ModeGuestDirect
		case "FL":
			s.Mode = mmu.ModeFlatNested
		default:
			np, err := page(parts[1])
			if err != nil {
				return Spec{}, err
			}
			s.Mode = mmu.ModeBaseVirtualized
			s.NestedPage = np
		}
		return s, nil
	}
	return Spec{}, fmt.Errorf("experiments: cannot parse config %q", label)
}

// Scale selects how large the simulations run.
type Scale int

// Scales: Small keeps unit tests fast; Medium suits testing.B benches;
// Full is the paperbench setting whose outputs EXPERIMENTS.md records.
const (
	Small Scale = iota
	Medium
	Full
)

// WLConfig returns the workload sizing for a scale and workload class.
func (s Scale) WLConfig(class workload.Class, seed uint64) workload.Config {
	switch s {
	case Small:
		return workload.Config{Seed: seed, MemoryMB: 24, Ops: 50000}
	case Medium:
		return workload.Config{Seed: seed, MemoryMB: 96, Ops: 250000}
	default:
		if class == workload.BigMemory {
			// The paper runs 60-75GB datasets; 6GB preserves the
			// working-set : TLB-reach regime at ~1/12 scale and spans
			// more 1GB pages than the 4-entry 1GB TLB holds, so every
			// page size experiences pressure as in the paper.
			return workload.Config{Seed: seed, MemoryMB: 6144, Ops: 1200000}
		}
		return workload.Config{Seed: seed, MemoryMB: 384, Ops: 1000000}
	}
}

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	default:
		return "full"
	}
}

// Figure11Configs are the big-memory figure's bars: four native
// configurations and nine virtualized ones.
func Figure11Configs() []string {
	return []string{
		"4K", "2M", "1G", "DS",
		"4K+4K", "4K+2M", "4K+1G", "2M+2M", "2M+1G", "1G+1G",
		"DD", "4K+VD", "4K+GD",
	}
}

// Figure12Configs are the compute figure's bars; compute workloads use
// THP rather than explicit huge pages (§VIII) and suit VMM Direct
// (Table II: Dual/Guest Direct target big-memory applications).
func Figure12Configs() []string {
	return []string{
		"4K", "THP",
		"4K+4K", "4K+2M", "THP+2M", "THP+1G",
		"4K+VD", "THP+VD",
	}
}

// Figure1Configs are the motivation figure's bars.
func Figure1Configs() []string {
	return []string{"4K", "4K+4K", "4K+2M", "4K+1G", "DD", "4K+VD"}
}
