// Consolidation study (extension): a consolidated host runs many
// independent VMs, and the simulator can exploit that independence. Each
// tenant owns a complete private stack — host memory, VM, guest kernel,
// process, MMU, replay engine — so tenants never share mutable state and
// the study can partition them across shard goroutines via
// sched.RunSharded: shards advance their tenants one scheduling quantum
// at a time and meet at a barrier, with statistics accumulated in
// tenant-indexed cells each written only by the owning shard, making
// the aggregate byte-identical at any shard count: the totals are sums
// of per-tenant values that each depend only on that tenant's seed.
//
// The modeled result is the paper's consolidation argument in §VIII:
// nested paging's overhead compounds as tenants multiply, while Dual
// Direct holds per-tenant overhead near zero.

package experiments

import (
	"fmt"

	"vdirect/internal/mmu"
	"vdirect/internal/perfmodel"
	"vdirect/internal/replay"
	"vdirect/internal/sched"
	"vdirect/internal/stats"
	"vdirect/internal/telemetry/walkprof"
	"vdirect/internal/trace"
	"vdirect/internal/workload"
)

// ConsolidationQuantum is the scheduling quantum, in accesses, between
// shard barriers. It only sets how often shards synchronize and merge;
// simulated results are identical at any value.
const ConsolidationQuantum = 1 << 16

// ConsolidationResult aggregates one workload × mode cell over all
// tenants.
type ConsolidationResult struct {
	Workload string
	Config   string
	Tenants  int
	// Accesses and WalkCycles summed over tenants, in tenant order.
	Accesses   uint64
	WalkCycles uint64
	// Overhead is the aggregate translation overhead across tenants.
	Overhead float64
	// WorstTenant is the highest single-tenant overhead — the noisy-
	// neighbour view.
	WorstTenant float64
}

// shardStats holds tenant-indexed statistics cells. Each cell is
// written only by the shard goroutine that owns the tenant (see
// sched.RunSharded's determinism contract), so plain increments are
// race-free and the totals never depend on shard scheduling.
type shardStats struct {
	accesses   []uint64 // by tenant
	walkCycles []uint64 // by tenant
}

func newShardStats(tenants int) *shardStats {
	return &shardStats{
		accesses:   make([]uint64, tenants),
		walkCycles: make([]uint64, tenants),
	}
}

// tenant is one VM's private simulation stack plus its replay cursor.
type tenant struct {
	env    *env
	eng    *replay.Engine
	cycles uint64 // walk cycles accumulated by the access hook
}

// ConsolidationStudy simulates `tenants` independent VMs per workload ×
// config cell, partitioned across `shards` goroutines (shard s owns
// tenants i with i%shards == s). Results are identical for any shards
// ≥ 1; shards only sets host-side parallelism.
func ConsolidationStudy(scale Scale, workloads []string, tenants, shards int) ([]ConsolidationResult, error) {
	if tenants <= 0 {
		tenants = 4
	}
	if shards <= 0 {
		shards = 1
	}
	if shards > tenants {
		shards = tenants
	}
	var out []ConsolidationResult
	for _, wl := range workloads {
		for _, config := range []string{"4K+4K", "DD"} {
			res, err := runConsolidation(wl, config, scale, tenants, shards)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
		}
	}
	return out, nil
}

func runConsolidation(wl, config string, scale Scale, tenants, shards int) (ConsolidationResult, error) {
	spec, err := ParseConfig(config)
	if err != nil {
		return ConsolidationResult{}, err
	}
	spec.Workload = wl
	class := workload.New(wl, workload.Config{MemoryMB: 1, Ops: 1}).Class()

	// Build every tenant stack serially, in tenant order: construction
	// allocates from per-tenant hosts, so this is determinism hygiene
	// (and keeps build errors ordered), not a correctness requirement.
	// Walk sampling, when enabled, gives each tenant its own sampler —
	// tenant-private state driven only by that tenant's access stream, so
	// samples are identical at any shard count; streams commit in tenant
	// order after the run.
	prof := walkprof.Enabled()
	ts := make([]*tenant, tenants)
	samplers := make([]*walkprof.Sampler, tenants)
	for i := range ts {
		s := spec
		s.WL = scale.WLConfig(class, uint64(i+1))
		w := workload.New(wl, s.WL)
		e, err := build(s, w)
		if err != nil {
			return ConsolidationResult{}, fmt.Errorf("experiments: consolidation tenant %d: %w", i, err)
		}
		if got := e.m.Mode(); got != s.Mode {
			return ConsolidationResult{}, fmt.Errorf("experiments: consolidation built mode %v, wanted %v", got, s.Mode)
		}
		if prof != nil {
			samplers[i] = prof.Sampler(wl+"/"+config, i, s.WL.Seed)
			e.m.SetWalkSampler(samplers[i])
		}
		t := &tenant{env: e}
		t.eng = replay.New(w, replay.Hooks{
			AccessBlock: func(evs []trace.Event) (int, error) {
				return consolidationBlock(t, evs)
			},
		}, replay.Config{})
		ts[i] = t
	}

	// Quantum-stepped execution: each round, every shard advances each
	// of its live tenants by one quantum, entirely within tenant-private
	// state (sched.RunSharded supplies the barrier discipline).
	agg := newShardStats(tenants)
	err = sched.RunSharded(shards, tenants, func(i int) (bool, error) {
		t := ts[i]
		before := t.cycles
		n, more, err := t.eng.Step(ConsolidationQuantum)
		if err != nil {
			return true, fmt.Errorf("experiments: consolidation tenant %d: %w", i, err)
		}
		agg.accesses[i] += uint64(n)
		agg.walkCycles[i] += t.cycles - before
		return !more, nil
	}, nil)
	if err != nil {
		return ConsolidationResult{}, err
	}

	if prof != nil {
		for _, s := range samplers {
			prof.Commit(s)
		}
	}

	cpi := workload.New(wl, scale.WLConfig(class, 1)).BaseCPI()
	res := ConsolidationResult{Workload: wl, Config: config, Tenants: tenants}
	worst := 0.0
	for i := 0; i < tenants; i++ {
		res.Accesses += agg.accesses[i]
		res.WalkCycles += agg.walkCycles[i]
		o := perfmodel.Overhead(float64(agg.walkCycles[i]), float64(agg.accesses[i])*cpi)
		if o > worst {
			worst = o
		}
	}
	res.Overhead = perfmodel.Overhead(float64(res.WalkCycles), float64(res.Accesses)*cpi)
	res.WorstTenant = worst
	return res, nil
}

// consolidationBlock is the per-tenant access hook: translate the block
// through the tenant's private MMU, servicing demand-paging faults from
// its private kernel. Identical protocol to translateBlock, plus cycle
// accounting the study reads per quantum.
func consolidationBlock(t *tenant, evs []trace.Event) (int, error) {
	e := t.env
	done, attempt := 0, 0
	for {
		cyc0 := e.m.Stats().WalkCycles
		n, fault := e.m.TranslateBlock(evs[done:], nil)
		t.cycles += e.m.Stats().WalkCycles - cyc0
		done += n
		if fault == nil {
			return done, nil
		}
		if n > 0 {
			attempt = 0 // a new event is faulting
		}
		attempt++
		if fault.Kind != mmu.FaultGuest {
			return done, fmt.Errorf("experiments: unexpected nested fault at gPA %#x", fault.Addr)
		}
		if err := e.proc.HandleFault(fault.Addr); err != nil {
			return done, fmt.Errorf("experiments: fault at %#x: %w", fault.Addr, err)
		}
		if attempt >= 3 {
			return done, fmt.Errorf("experiments: access at %#x still faulting after service", uint64(evs[done].VA))
		}
	}
}

// ConsolidationTable renders the study.
func ConsolidationTable(rows []ConsolidationResult) *stats.Table {
	t := stats.NewTable("Consolidation — aggregate translation overhead across tenants",
		"workload", "config", "tenants", "accesses", "overhead", "worst tenant")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Config, fmt.Sprint(r.Tenants), fmt.Sprint(r.Accesses),
			stats.Percent(r.Overhead), stats.Percent(r.WorstTenant))
	}
	return t
}
