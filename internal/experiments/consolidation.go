// Consolidation study (extension): a consolidated host runs many
// independent VMs, and the simulator can exploit that independence. Each
// tenant owns a complete private stack — host memory, VM, guest kernel,
// process, MMU, replay engine — so tenants never share mutable state and
// the study can partition them across shard goroutines. Shards advance
// their tenants one scheduling quantum at a time and meet at a barrier
// where per-shard statistics merge in fixed tenant order, making the
// aggregate byte-identical at any shard count: the totals are sums of
// per-tenant values that each depend only on that tenant's seed.
//
// The modeled result is the paper's consolidation argument in §VIII:
// nested paging's overhead compounds as tenants multiply, while Dual
// Direct holds per-tenant overhead near zero.

package experiments

import (
	"fmt"
	"sync"

	"vdirect/internal/mmu"
	"vdirect/internal/perfmodel"
	"vdirect/internal/replay"
	"vdirect/internal/stats"
	"vdirect/internal/telemetry/walkprof"
	"vdirect/internal/trace"
	"vdirect/internal/workload"
)

// ConsolidationQuantum is the scheduling quantum, in accesses, between
// shard barriers. It only sets how often shards synchronize and merge;
// simulated results are identical at any value.
const ConsolidationQuantum = 1 << 16

// ConsolidationResult aggregates one workload × mode cell over all
// tenants.
type ConsolidationResult struct {
	Workload string
	Config   string
	Tenants  int
	// Accesses and WalkCycles summed over tenants, in tenant order.
	Accesses   uint64
	WalkCycles uint64
	// Overhead is the aggregate translation overhead across tenants.
	Overhead float64
	// WorstTenant is the highest single-tenant overhead — the noisy-
	// neighbour view.
	WorstTenant float64
}

// shardStats is a telemetry.Local-style statistics shard: one per shard
// goroutine, plain (non-atomic) increments on the simulation path, and
// folded into the cell aggregate only at quantum barriers by the
// coordinator. Tenant-indexed so the merge order never depends on shard
// scheduling.
type shardStats struct {
	accesses   []uint64 // by tenant
	walkCycles []uint64 // by tenant
}

func newShardStats(tenants int) *shardStats {
	return &shardStats{
		accesses:   make([]uint64, tenants),
		walkCycles: make([]uint64, tenants),
	}
}

// tenant is one VM's private simulation stack plus its replay cursor.
type tenant struct {
	env    *env
	eng    *replay.Engine
	cycles uint64 // walk cycles accumulated by the access hook
	done   bool
}

// ConsolidationStudy simulates `tenants` independent VMs per workload ×
// config cell, partitioned across `shards` goroutines (shard s owns
// tenants i with i%shards == s). Results are identical for any shards
// ≥ 1; shards only sets host-side parallelism.
func ConsolidationStudy(scale Scale, workloads []string, tenants, shards int) ([]ConsolidationResult, error) {
	if tenants <= 0 {
		tenants = 4
	}
	if shards <= 0 {
		shards = 1
	}
	if shards > tenants {
		shards = tenants
	}
	var out []ConsolidationResult
	for _, wl := range workloads {
		for _, config := range []string{"4K+4K", "DD"} {
			res, err := runConsolidation(wl, config, scale, tenants, shards)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
		}
	}
	return out, nil
}

func runConsolidation(wl, config string, scale Scale, tenants, shards int) (ConsolidationResult, error) {
	spec, err := ParseConfig(config)
	if err != nil {
		return ConsolidationResult{}, err
	}
	spec.Workload = wl
	class := workload.New(wl, workload.Config{MemoryMB: 1, Ops: 1}).Class()

	// Build every tenant stack serially, in tenant order: construction
	// allocates from per-tenant hosts, so this is determinism hygiene
	// (and keeps build errors ordered), not a correctness requirement.
	// Walk sampling, when enabled, gives each tenant its own sampler —
	// tenant-private state driven only by that tenant's access stream, so
	// samples are identical at any shard count; streams commit in tenant
	// order after the run.
	prof := walkprof.Enabled()
	ts := make([]*tenant, tenants)
	samplers := make([]*walkprof.Sampler, tenants)
	for i := range ts {
		s := spec
		s.WL = scale.WLConfig(class, uint64(i+1))
		w := workload.New(wl, s.WL)
		e, err := build(s, w)
		if err != nil {
			return ConsolidationResult{}, fmt.Errorf("experiments: consolidation tenant %d: %w", i, err)
		}
		if got := e.m.Mode(); got != s.Mode {
			return ConsolidationResult{}, fmt.Errorf("experiments: consolidation built mode %v, wanted %v", got, s.Mode)
		}
		if prof != nil {
			samplers[i] = prof.Sampler(wl+"/"+config, i, s.WL.Seed)
			e.m.SetWalkSampler(samplers[i])
		}
		t := &tenant{env: e}
		t.eng = replay.New(w, replay.Hooks{
			AccessBlock: func(evs []trace.Event) (int, error) {
				return consolidationBlock(t, evs)
			},
		}, replay.Config{})
		ts[i] = t
	}

	// Quantum-stepped execution: each round, every shard advances each
	// of its live tenants by one quantum, entirely within tenant-private
	// state. At the barrier the coordinator folds the shard statistics
	// into the aggregate in tenant order.
	agg := newShardStats(tenants)
	locals := make([]*shardStats, shards)
	for s := range locals {
		locals[s] = newShardStats(tenants)
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	remaining := tenants
	for remaining > 0 {
		wg.Add(shards)
		for s := 0; s < shards; s++ {
			go func(s int) {
				defer wg.Done()
				local := locals[s]
				for i := s; i < tenants; i += shards {
					t := ts[i]
					if t.done {
						continue
					}
					before := t.cycles
					n, more, err := t.eng.Step(ConsolidationQuantum)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("experiments: consolidation tenant %d: %w", i, err)
						}
						errMu.Unlock()
						t.done = true
						continue
					}
					local.accesses[i] += uint64(n)
					local.walkCycles[i] += t.cycles - before
					if !more {
						t.done = true
					}
				}
			}(s)
		}
		wg.Wait()
		if firstErr != nil {
			return ConsolidationResult{}, firstErr
		}
		// Barrier merge, tenant order: shard locals drain into the
		// aggregate and reset for the next quantum.
		for i := 0; i < tenants; i++ {
			l := locals[i%shards]
			agg.accesses[i] += l.accesses[i]
			agg.walkCycles[i] += l.walkCycles[i]
			l.accesses[i], l.walkCycles[i] = 0, 0
		}
		remaining = 0
		for _, t := range ts {
			if !t.done {
				remaining++
			}
		}
	}

	if prof != nil {
		for _, s := range samplers {
			prof.Commit(s)
		}
	}

	cpi := workload.New(wl, scale.WLConfig(class, 1)).BaseCPI()
	res := ConsolidationResult{Workload: wl, Config: config, Tenants: tenants}
	worst := 0.0
	for i := 0; i < tenants; i++ {
		res.Accesses += agg.accesses[i]
		res.WalkCycles += agg.walkCycles[i]
		o := perfmodel.Overhead(float64(agg.walkCycles[i]), float64(agg.accesses[i])*cpi)
		if o > worst {
			worst = o
		}
	}
	res.Overhead = perfmodel.Overhead(float64(res.WalkCycles), float64(res.Accesses)*cpi)
	res.WorstTenant = worst
	return res, nil
}

// consolidationBlock is the per-tenant access hook: translate the block
// through the tenant's private MMU, servicing demand-paging faults from
// its private kernel. Identical protocol to translateBlock, plus cycle
// accounting the study reads per quantum.
func consolidationBlock(t *tenant, evs []trace.Event) (int, error) {
	e := t.env
	done, attempt := 0, 0
	for {
		cyc0 := e.m.Stats().WalkCycles
		n, fault := e.m.TranslateBlock(evs[done:], nil)
		t.cycles += e.m.Stats().WalkCycles - cyc0
		done += n
		if fault == nil {
			return done, nil
		}
		if n > 0 {
			attempt = 0 // a new event is faulting
		}
		attempt++
		if fault.Kind != mmu.FaultGuest {
			return done, fmt.Errorf("experiments: unexpected nested fault at gPA %#x", fault.Addr)
		}
		if err := e.proc.HandleFault(fault.Addr); err != nil {
			return done, fmt.Errorf("experiments: fault at %#x: %w", fault.Addr, err)
		}
		if attempt >= 3 {
			return done, fmt.Errorf("experiments: access at %#x still faulting after service", uint64(evs[done].VA))
		}
	}
}

// ConsolidationTable renders the study.
func ConsolidationTable(rows []ConsolidationResult) *stats.Table {
	t := stats.NewTable("Consolidation — aggregate translation overhead across tenants",
		"workload", "config", "tenants", "accesses", "overhead", "worst tenant")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Config, fmt.Sprint(r.Tenants), fmt.Sprint(r.Accesses),
			stats.Percent(r.Overhead), stats.Percent(r.WorstTenant))
	}
	return t
}
