package experiments

import (
	"reflect"
	"strings"
	"testing"

	"vdirect/internal/sched"
	"vdirect/internal/workload"
)

// TestRunGridDeterministicAcrossParallelism is the harness's core
// guarantee: fanning cells across workers changes nothing — same row
// order, same counters, bit-for-bit.
func TestRunGridDeterministicAcrossParallelism(t *testing.T) {
	wls := []string{"gups", "memcached"}
	configs := []string{"4K", "4K+4K", "DD", "4K+VD"}
	serial, err := RunGridOpts(sched.Config{Parallelism: 1}, wls, configs, Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunGridOpts(sched.Config{Parallelism: 8}, wls, configs, Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel rows differ from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestFigure13DeterministicAcrossParallelism checks the trial-level
// fan-out: per-trial bad-page seeds must be derived exactly as the
// serial loop derived them.
func TestFigure13DeterministicAcrossParallelism(t *testing.T) {
	serial, err := Figure13Opts(sched.Config{Parallelism: 1}, Small, 2, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure13Opts(sched.Config{Parallelism: 8}, Small, 2, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("figure 13 points differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestRunGridFirstErrorCancels exercises error propagation through the
// pool: a failing cell stops the grid and surfaces its error.
func TestRunGridFirstErrorCancels(t *testing.T) {
	_, err := RunGridOpts(sched.Config{Parallelism: 4},
		[]string{"gups"}, []string{"4K", "BOGUS", "DD"}, Small, 1)
	if err == nil {
		t.Fatal("grid with an unparsable config succeeded")
	}
	if !strings.Contains(err.Error(), "BOGUS") {
		t.Errorf("error does not name the failing cell: %v", err)
	}
}

// TestWarmupRoundingToZeroMeasuresWholeTrace covers the replay edge
// case: a warmup fraction that rounds to zero accesses must reset stats
// before the loop (the in-loop seen == warmupAt reset can never fire)
// and measure every access.
func TestWarmupRoundingToZeroMeasuresWholeTrace(t *testing.T) {
	spec, err := ParseConfig("4K")
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload = "gups"
	spec.WL = Small.WLConfig(workload.BigMemory, 1)
	spec.WarmupFrac = 1e-12 // rounds to 0 accesses, distinct from the 0 = default sentinel
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.New("gups", spec.WL).AccessCount()
	if res.Accesses != want {
		t.Errorf("measured %d accesses, want the whole trace (%d)", res.Accesses, want)
	}
	if res.Overhead <= 0 {
		t.Errorf("overhead = %v with stats reset before the loop", res.Overhead)
	}
}
