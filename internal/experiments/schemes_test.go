package experiments

import (
	"strings"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/mmu"
	"vdirect/internal/perfmodel"
	"vdirect/internal/sched"
)

func TestParseConfigFlatNested(t *testing.T) {
	spec, err := ParseConfig("4K+FL")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != mmu.ModeFlatNested {
		t.Errorf("mode = %v, want FlatNested", spec.Mode)
	}
	if spec.GuestPage != addr.Page4K || spec.NestedPage != addr.Page4K {
		t.Errorf("pages = %v/%v, want 4K/4K", spec.GuestPage, spec.NestedPage)
	}
}

func TestSchemeCostTableListsEveryScheme(t *testing.T) {
	rendered := SchemeCostTable().Render()
	for _, name := range mmu.SchemeNames() {
		if !strings.Contains(rendered, name) {
			t.Errorf("scheme cost table missing registered scheme %q", name)
		}
	}
}

// TestFlatNestedCollapsesWalkCost pins the end-to-end dimensionality
// collapse: on walker-only hardware a gups trace pays exactly the
// closed-form 24 references per 2D walk and exactly 12 flattened —
// the experiment-level counterpart of the oracle's per-walk checks.
func TestFlatNestedCollapsesWalkCost(t *testing.T) {
	rows, err := SchemesStudy(sched.Config{}, Small, []string{"gups"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Base.Stats.Walks == 0 || r.Base.Stats.Walks != r.Flat.Stats.Walks {
		t.Fatalf("walks: base %d, flat %d", r.Base.Stats.Walks, r.Flat.Stats.Walks)
	}
	if got, want := r.Base.Stats.WalkMemRefs, 24*r.Base.Stats.Walks; got != want {
		t.Errorf("base refs = %d, want %d (24/walk)", got, want)
	}
	if got, want := r.Flat.Stats.WalkMemRefs, 12*r.Flat.Stats.Walks; got != want {
		t.Errorf("flat refs = %d, want %d (12/walk)", got, want)
	}
	if r.Flat.WalkCycles >= r.Base.WalkCycles {
		t.Errorf("flat walk cycles %d not below base %d", r.Flat.WalkCycles, r.Base.WalkCycles)
	}
}

// TestTableIVModelByName keeps the by-name model dispatch aligned with
// the method set: every registered scheme has a Table IV model, and the
// named dispatch returns the same value as the direct call.
func TestTableIVModelByName(t *testing.T) {
	in := perfInputs()
	direct := map[string]float64{
		"Native":          in.Native(),
		"DirectSegment":   in.DirectSegment(),
		"BaseVirtualized": in.BaseVirtualized(),
		"VMMDirect":       in.VMMDirect(),
		"GuestDirect":     in.GuestDirect(),
		"DualDirect":      in.DualDirect(),
		"FlatNested":      in.FlatNested(),
	}
	for _, name := range mmu.SchemeNames() {
		got, err := in.ByName(name)
		if err != nil {
			t.Errorf("scheme %q has no Table IV model: %v", name, err)
			continue
		}
		if got != direct[name] {
			t.Errorf("ByName(%q) = %g, direct call = %g", name, got, direct[name])
		}
	}
	if _, err := in.ByName("NoSuchScheme"); err == nil {
		t.Error("ByName accepted an unknown scheme name")
	}
}

// TestSchemesStudyDeterministic holds the study to the repo-wide rule:
// identical rows at any parallelism.
func TestSchemesStudyDeterministic(t *testing.T) {
	wls := []string{"gups"}
	serial, err := SchemesStudy(sched.Config{Parallelism: 1}, Small, wls)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SchemesStudy(sched.Config{Parallelism: 4}, Small, wls)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs across parallelism: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

// perfInputs builds representative nonzero model inputs so the by-name
// dispatch check exercises every term.
func perfInputs() perfmodel.Inputs {
	return perfmodel.Inputs{Mn: 1000, Cn: 40, Cv: 170, FDS: 0.9, FVD: 0.8, FGD: 0.85, FDD: 0.75}
}
