// The simulation runner: builds the full stack for one Spec (host, VM,
// guest kernel, process, MMU), replays the workload trace through it,
// and reports the paper's metrics.

package experiments

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/guestos"
	"vdirect/internal/mmu"
	"vdirect/internal/perfmodel"
	"vdirect/internal/physmem"
	"vdirect/internal/replay"
	"vdirect/internal/telemetry"
	"vdirect/internal/telemetry/walkprof"
	"vdirect/internal/trace"
	"vdirect/internal/vmm"
	"vdirect/internal/workload"
)

// Result reports one simulation cell.
type Result struct {
	Spec Spec
	// Accesses counted after warmup.
	Accesses uint64
	// IdealCycles is Accesses × BaseCPI — the translation-free time.
	IdealCycles float64
	// WalkCycles is the measured TLB-miss handling time.
	WalkCycles uint64
	// Overhead is WalkCycles / IdealCycles (§VIII metric).
	Overhead float64
	// Stats are the raw MMU counters after warmup.
	Stats mmu.Stats
}

// ExecutionCycles returns the modeled total execution time.
func (r Result) ExecutionCycles() float64 {
	return r.IdealCycles + float64(r.WalkCycles)
}

// env is the assembled simulation stack for one run.
type env struct {
	w      workload.Workload
	m      *mmu.MMU
	kernel *guestos.Kernel
	proc   *guestos.Process
	host   *vmm.Host
	vm     *vmm.VM
}

// Run simulates one Spec end to end.
func Run(spec Spec) (Result, error) {
	return RunWorkload(spec, workload.New(spec.Workload, spec.WL))
}

// RunWorkload is Run with a caller-supplied workload instance. The
// golden equivalence tests use it to replay the same spec through the
// block streaming path and the per-event Next shim; it also lets
// callers drive custom (e.g. file-backed) traces through the harness.
func RunWorkload(spec Spec, w workload.Workload) (Result, error) {
	if spec.WarmupFrac == 0 {
		spec.WarmupFrac = 0.2
	}
	e, err := build(spec, w)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: building %s/%s: %w", spec.Workload, spec.Label, err)
	}
	if got := e.m.Mode(); got != spec.Mode {
		return Result{}, fmt.Errorf("experiments: built mode %v, wanted %v", got, spec.Mode)
	}
	return replayRun(spec, e)
}

// build assembles the stack for a spec. What the stack must provide —
// virtualization, segment registers, contiguous backing, flattened
// nested tables — comes from the scheme's own Requirements, so a new
// registered scheme runs here without touching the builder.
func build(spec Spec, w workload.Workload) (*env, error) {
	scheme, err := mmu.SchemeByName(string(spec.Mode))
	if err != nil {
		return nil, err
	}
	req := scheme.Requirements()
	prim := w.PrimaryRegion()

	// Guest physical sizing: the primary region's backing (rounded up
	// to whole guest pages, plus one spare so an aligned run exists
	// above the kernel's low allocations) plus head room for page
	// tables, stack, churn chunks, and bad-page replacement frames.
	backing := addr.AlignUp(prim.Size, spec.GuestPage.Bytes()) + spec.GuestPage.Bytes()
	guestSize := addr.AlignUp(backing+160<<20, spec.NestedPage.Bytes())

	e := &env{w: w, m: mmu.New(spec.MMU)}

	if !req.Virtualized {
		mem := physmem.New(physmem.Config{Name: "machine", Size: guestSize})
		e.kernel = guestos.NewKernel(mem, nil)
	} else {
		hostSize := addr.AlignUp(guestSize+guestSize/4+spec.NestedPage.Bytes()+256<<20, addr.PageSize4K)
		e.host = vmm.NewHost(hostSize)
		vm, err := e.host.CreateVM(vmm.VMConfig{
			Name:              spec.Workload,
			MemorySize:        guestSize,
			NestedPageSize:    spec.NestedPage,
			ContiguousBacking: req.ContiguousBacking,
		})
		if err != nil {
			return nil, err
		}
		e.vm = vm
		e.kernel = guestos.NewKernel(vm.GuestMem, vm)
		e.m.SetNestedPageTable(vm.NPT)
		e.m.SetFlatNested(req.FlattenedNested)
	}

	proc, err := e.kernel.CreateProcess(w.Name())
	if err != nil {
		return nil, err
	}
	e.proc = proc
	e.m.SetGuestPageTable(proc.PT)

	// VMM dimension.
	if req.VMMSegment {
		seg, err := e.vm.TryEnableVMMSegment()
		if err != nil {
			return nil, err
		}
		e.m.SetVMMSegment(seg)
	}

	// Guest dimension: segment or paging over the primary region.
	if req.GuestSegment {
		if err := proc.CreatePrimaryRegionAt(prim); err != nil {
			return nil, err
		}
		e.m.SetGuestSegment(proc.Seg)
	} else {
		if err := proc.MMapAt(prim); err != nil {
			return nil, err
		}
		if err := proc.MapRegion(prim, spec.GuestPage); err != nil {
			return nil, err
		}
	}

	// Stack and churn arenas are ordinary paged regions.
	for _, r := range w.StaticRegions() {
		if r == prim {
			continue
		}
		if err := proc.MMapAt(r); err != nil {
			return nil, err
		}
	}
	// Pre-touch the stack (hot from process start).
	if err := proc.Prefault(addr.Range{Start: workload.StackBase, Size: 32 << 10}); err != nil {
		return nil, err
	}

	if spec.BadPages > 0 {
		if err := injectBadPages(spec, e); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// injectBadPages models hard-faulted host pages inside the VMM segment
// (Figure 13): each is added to the escape filter and its gPA remapped
// through nested paging to a healthy frame.
func injectBadPages(spec Spec, e *env) error {
	seg := e.m.VMMSegment()
	if !seg.Enabled() {
		return fmt.Errorf("experiments: bad-page study needs a VMM segment (mode %v)", spec.Mode)
	}
	// Bad pages land inside the primary region's backing — the memory
	// the workload actually touches.
	target := e.proc.Seg.TargetRange() // gPA range of the guest segment
	if target.Empty() {
		target = addr.Range{Start: 0, Size: e.vm.GuestMem.Size()}
	}
	rng := trace.NewRand(spec.BadPageSeed ^ 0xBAD)
	picked := make(map[uint64]bool, spec.BadPages)
	for len(picked) < spec.BadPages {
		gpa := addr.PageBase(target.Start+rng.Uint64n(target.Size), addr.Page4K)
		if picked[gpa] {
			continue
		}
		picked[gpa] = true
		e.m.VMMEscapeFilter().Insert(gpa >> addr.PageShift4K)
		f, err := e.host.Mem.AllocFrame()
		if err != nil {
			return fmt.Errorf("experiments: healthy replacement frame: %w", err)
		}
		if err := e.vm.NPT.Remap(gpa, physmem.FrameToAddr(f)); err != nil {
			return err
		}
	}
	return nil
}

// replayRun streams the trace through the MMU via the replay engine,
// servicing faults like the OS would, with statistics reset at the
// warmup boundary. The warmup point comes from the workload's analytic
// access count, so the trace is traversed exactly once. Alloc events
// need no hook: pages fault in on first touch.
func replayRun(spec Spec, e *env) (Result, error) {
	total := e.w.AccessCount()
	warmupAt := uint64(float64(total) * spec.WarmupFrac)
	e.w.Reset()

	// Telemetry (all inert when no run is active): a per-cell walk probe
	// collects every measured walk's refs/cycles into goroutine-local
	// shards, and the warmup/measure phases each get a trace span. The
	// probe is reset at the warmup boundary alongside the MMU counters so
	// the histograms describe exactly the measured interval.
	var probe *telemetry.WalkProbe
	if telemetry.Active() {
		probe = &telemetry.WalkProbe{}
		e.m.SetWalkProbe(probe)
	}
	cellName := spec.Workload + "/" + spec.Label
	// Walk sampling (walkprof) rides the same seam: a per-cell sampler
	// owned by this goroutine, seeded from the workload spec alone so the
	// sample stream is identical at any -j / -shards setting, committed
	// to the profile once at completion.
	var sampler *walkprof.Sampler
	prof := walkprof.Enabled()
	if prof != nil {
		sampler = prof.Sampler(cellName, 0, spec.WL.Seed)
		e.m.SetWalkSampler(sampler)
	}
	warmSpan := telemetry.StartSpan("replay", cellName+" warmup")
	var measSpan telemetry.Span

	eng := replay.New(e.w, replay.Hooks{
		AccessBlock: func(evs []trace.Event) (int, error) {
			return translateBlock(e, evs)
		},
		Free: func(ev trace.Event) error {
			r := addr.Range{Start: uint64(ev.VA), Size: ev.Size}
			if err := e.proc.Unmap(r); err != nil {
				return fmt.Errorf("experiments: free at %#x: %w", ev.VA, err)
			}
			for va := r.Start; va < r.End(); va += addr.PageSize4K {
				e.m.InvalidatePage(va, addr.Page4K)
			}
			return nil
		},
		Warmup: func() {
			e.m.ResetStats()
			if probe != nil {
				probe.Reset()
			}
			if sampler != nil {
				sampler.Reset()
			}
			warmSpan.End()
			measSpan = telemetry.StartSpan("replay", cellName+" measure")
		},
	}, replay.Config{WarmupAccesses: warmupAt})
	if err := eng.Run(); err != nil {
		return Result{}, err
	}
	measSpan.End()

	measured := eng.Counts().Measured
	st := e.m.Stats()
	ideal := float64(measured) * e.w.BaseCPI()
	res := Result{
		Spec:        spec,
		Accesses:    measured,
		IdealCycles: ideal,
		WalkCycles:  st.WalkCycles,
		Overhead:    perfmodel.Overhead(float64(st.WalkCycles), ideal),
		Stats:       st,
	}
	if probe != nil {
		// One merge (a handful of atomic adds) per completed cell — the
		// only point where this cell's telemetry touches shared state.
		reg := telemetry.Default()
		mode := spec.Mode.String()
		reg.Histogram("walk.refs." + mode).Merge(&probe.Refs)
		reg.Histogram("walk.cycles." + mode).Merge(&probe.Cycles)
		reg.Counter("cells").Inc()
		reg.Counter("accesses.measured").Add(measured)
		reg.Counter("tlb.l2.evictions").Add(e.m.L2Evictions())
	}
	if sampler != nil {
		prof.Commit(sampler)
	}
	return res, nil
}

// translate runs one access through the MMU, handling demand-paging
// faults the way the guest kernel would.
func translate(e *env, va uint64) error {
	for attempt := 0; attempt < 3; attempt++ {
		_, fault := e.m.Translate(va)
		if fault == nil {
			return nil
		}
		if fault.Kind != mmu.FaultGuest {
			return fmt.Errorf("experiments: unexpected nested fault at gPA %#x", fault.Addr)
		}
		if err := e.proc.HandleFault(fault.Addr); err != nil {
			return fmt.Errorf("experiments: fault at %#x: %w", fault.Addr, err)
		}
	}
	return fmt.Errorf("experiments: access at %#x still faulting after service", va)
}

// translateBlock is the batch form of translate: one MMU.TranslateBlock
// call per fault-free run, with the same demand-paging protocol per
// faulting event (service and retry, up to 3 attempts — each attempt
// re-counting the access, exactly as the per-event retry loop did).
func translateBlock(e *env, evs []trace.Event) (int, error) {
	done, attempt := 0, 0
	for {
		n, fault := e.m.TranslateBlock(evs[done:], nil)
		done += n
		if fault == nil {
			return done, nil
		}
		if n > 0 {
			attempt = 0 // a new event is faulting
		}
		attempt++
		if fault.Kind != mmu.FaultGuest {
			return done, fmt.Errorf("experiments: unexpected nested fault at gPA %#x", fault.Addr)
		}
		if err := e.proc.HandleFault(fault.Addr); err != nil {
			return done, fmt.Errorf("experiments: fault at %#x: %w", fault.Addr, err)
		}
		if attempt >= 3 {
			return done, fmt.Errorf("experiments: access at %#x still faulting after service", uint64(evs[done].VA))
		}
	}
}
