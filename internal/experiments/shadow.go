// The shadow-paging study (§IX.D): shadow paging eliminates the 2D walk
// by letting hardware walk a VMM-maintained gVA→hPA shadow table, but
// every guest page-table change costs a VM exit. The study compares
// each workload's shadow-paging slowdown (vs native) against VMM
// Direct's, reproducing the paper's split between allocation-heavy
// workloads (memcached, GemsFDTD, omnetpp, canneal) and static ones.

package experiments

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/guestos"
	"vdirect/internal/mmu"
	"vdirect/internal/replay"
	"vdirect/internal/sched"
	"vdirect/internal/stats"
	"vdirect/internal/trace"
	"vdirect/internal/vmm"
	"vdirect/internal/workload"
)

// ShadowResult compares shadow paging and VMM Direct for one workload.
type ShadowResult struct {
	Workload string
	// ShadowSlowdown is (T_shadow − T_native) / T_native.
	ShadowSlowdown float64
	// VMMDirectSlowdown is (T_vd − T_native) / T_native.
	VMMDirectSlowdown float64
	// Exits is the number of VM exits shadow paging took (post-warmup).
	Exits uint64
}

// ShadowStudy runs the §IX.D comparison for the given workloads.
func ShadowStudy(scale Scale, workloads []string) ([]ShadowResult, error) {
	return ShadowStudyOpts(sched.Config{}, scale, workloads)
}

// ShadowStudyOpts is ShadowStudy under an explicit scheduler
// configuration. The native, VMM Direct and shadow runs of each
// workload are three independent cells.
func ShadowStudyOpts(cfg sched.Config, scale Scale, workloads []string) ([]ShadowResult, error) {
	// outcome carries whichever of the two run types a cell performed.
	type outcome struct {
		res    Result
		shadow shadowOutcome
	}
	type cell struct {
		wl    string
		label string // "4K", "4K+VD", or "" for the shadow run
	}
	var cells []cell
	for _, wl := range workloads {
		cells = append(cells, cell{wl, "4K"}, cell{wl, "4K+VD"}, cell{wl, ""})
	}
	if cfg.SpanName == nil {
		cfg.SpanName = func(i int) string {
			if cells[i].label == "" {
				return cells[i].wl + " shadow"
			}
			return cells[i].wl + " " + cells[i].label
		}
	}
	runs, err := sched.Run(cfg, len(cells), func(i int) (outcome, error) {
		c := cells[i]
		class := workload.New(c.wl, workload.Config{MemoryMB: 1, Ops: 1}).Class()
		wlCfg := scale.WLConfig(class, 1)
		if c.label == "" {
			sh, err := runShadow(c.wl, wlCfg)
			return outcome{shadow: sh}, err
		}
		spec, err := ParseConfig(c.label)
		if err != nil {
			return outcome{}, err
		}
		spec.Workload = c.wl
		spec.WL = wlCfg
		res, err := Run(spec)
		return outcome{res: res}, err
	})
	if err != nil {
		return nil, err
	}
	out := make([]ShadowResult, 0, len(workloads))
	for i, wl := range workloads {
		nat, vd, sh := runs[3*i].res, runs[3*i+1].res, runs[3*i+2].shadow
		tn := nat.ExecutionCycles()
		out = append(out, ShadowResult{
			Workload:          wl,
			ShadowSlowdown:    (sh.total - tn) / tn,
			VMMDirectSlowdown: (vd.ExecutionCycles() - tn) / tn,
			Exits:             sh.exits,
		})
	}
	return out, nil
}

type shadowOutcome struct {
	total float64 // ideal + walk + exit cycles
	exits uint64
}

// runShadow replays a workload under shadow paging: a native-mode MMU
// walks the shadow table; shadow misses and guest PT updates exit to
// the VMM.
func runShadow(wl string, wlCfg workload.Config) (shadowOutcome, error) {
	w := workload.New(wl, wlCfg)
	prim := w.PrimaryRegion()
	guestSize := addr.AlignUp(prim.Size+160<<20, addr.PageSize4K)
	hostSize := addr.AlignUp(guestSize+guestSize/4+256<<20, addr.PageSize4K)

	host := vmm.NewHost(hostSize)
	vm, err := host.CreateVM(vmm.VMConfig{Name: wl, MemorySize: guestSize, NestedPageSize: addr.Page4K})
	if err != nil {
		return shadowOutcome{}, err
	}
	kernel := guestos.NewKernel(vm.GuestMem, vm)
	proc, err := kernel.CreateProcess(wl)
	if err != nil {
		return shadowOutcome{}, err
	}
	sh, err := vm.NewShadowContext()
	if err != nil {
		return shadowOutcome{}, err
	}

	// Hardware sees only the shadow table: a 1D native walk.
	m := mmu.New(mmu.Config{})
	m.SetGuestPageTable(sh.Shadow)

	// Guest mappings: the primary region is paged at 4K (shadow paging
	// is the software baseline; no segments).
	if err := proc.MMapAt(prim); err != nil {
		return shadowOutcome{}, err
	}
	if err := proc.MapRegion(prim, addr.Page4K); err != nil {
		return shadowOutcome{}, err
	}
	for _, r := range w.StaticRegions() {
		if r == prim {
			continue
		}
		if err := proc.MMapAt(r); err != nil {
			return shadowOutcome{}, err
		}
	}
	if err := proc.Prefault(addr.Range{Start: workload.StackBase, Size: 32 << 10}); err != nil {
		return shadowOutcome{}, err
	}

	// Pre-sync the shadow table for everything already mapped: those
	// one-time first-touch syncs are startup cost, amortized to nothing
	// over the paper's long executions. Post-warmup exits then measure
	// steady-state behaviour — guest page-table churn — which is the
	// §IX.D differentiator.
	var syncErr error
	proc.PT.VisitLeaves(func(va, pa uint64, s addr.PageSize) bool {
		if err := sh.SyncPage(proc.PT, va); err != nil {
			syncErr = err
			return false
		}
		return true
	})
	if syncErr != nil {
		return shadowOutcome{}, syncErr
	}

	total := w.AccessCount()
	warmupAt := uint64(float64(total) * 0.2)
	w.Reset()

	// The warmup hook snapshots the pre-warmup VM exits alongside the
	// stats reset: those (plus the pre-sync exits above) are startup
	// cost, excluded from the steady-state measurement.
	var exitsAtWarmup uint64
	eng := replay.New(w, replay.Hooks{
		AccessBlock: func(evs []trace.Event) (int, error) {
			done, attempt := 0, 0
			for {
				n, fault := m.TranslateBlock(evs[done:], nil)
				done += n
				if fault == nil {
					return done, nil
				}
				if n > 0 {
					attempt = 0 // a new event is faulting
				}
				attempt++
				// One VM exit handles the whole fault: the VMM fields
				// the guest fault, updates the guest PT if needed, and
				// syncs the shadow entry.
				va := uint64(evs[done].VA)
				if _, _, mapped := proc.PT.Translate(va); !mapped {
					if err := proc.HandleFault(va); err != nil {
						return done, err
					}
				}
				if err := sh.SyncPage(proc.PT, va); err != nil {
					return done, err
				}
				if attempt >= 4 {
					return done, fmt.Errorf("experiments: shadow access at %#x stuck", va)
				}
			}
		},
		Free: func(ev trace.Event) error {
			r := addr.Range{Start: uint64(ev.VA), Size: ev.Size}
			if err := proc.Unmap(r); err != nil {
				return err
			}
			for va := r.Start; va < r.End(); va += addr.PageSize4K {
				// Each guest PTE clear traps and invalidates shadow state.
				if err := sh.InvalidatePage(va, addr.Page4K); err != nil {
					return err
				}
				m.InvalidatePage(va, addr.Page4K)
			}
			return nil
		},
		Warmup: func() {
			m.ResetStats()
			exitsAtWarmup, _ = sh.Exits()
		},
	}, replay.Config{WarmupAccesses: warmupAt})
	if err := eng.Run(); err != nil {
		return shadowOutcome{}, err
	}
	measured := eng.Counts().Measured
	exits, exitCycles := sh.Exits()
	exits -= exitsAtWarmup
	exitCycles -= exitsAtWarmup * vmm.DefaultExitCycles
	ideal := float64(measured) * w.BaseCPI()
	return shadowOutcome{
		total: ideal + float64(m.Stats().WalkCycles) + float64(exitCycles),
		exits: exits,
	}, nil
}

// ShadowTable renders the §IX.D comparison.
func ShadowTable(rows []ShadowResult) *stats.Table {
	t := stats.NewTable("Section IX.D — shadow paging vs VMM Direct (slowdown vs native)",
		"workload", "shadow", "VMM Direct", "exits")
	for _, r := range rows {
		t.AddRow(r.Workload, stats.Percent(r.ShadowSlowdown),
			stats.Percent(r.VMMDirectSlowdown), fmt.Sprint(r.Exits))
	}
	return t
}
