// Telemetry non-interference: the observability layer may watch the
// simulation but never change it. These tests pin the two guarantees the
// harness documents — identical results with telemetry on vs off, and
// identical metric snapshots at any scheduler parallelism.

package experiments

import (
	"reflect"
	"testing"

	"vdirect/internal/sched"
	"vdirect/internal/telemetry"
)

func gridRows(t *testing.T, parallelism int) []Row {
	t.Helper()
	rows, err := RunGridOpts(sched.Config{Parallelism: parallelism},
		[]string{"gups", "graph500"}, []string{"4K", "4K+4K", "DD"}, Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	baseline := gridRows(t, 1)

	run := telemetry.StartRun("test", nil, true)
	traced := gridRows(t, 4)
	run.Stop()

	if !reflect.DeepEqual(baseline, traced) {
		t.Fatal("rows differ between telemetry-off -j1 and telemetry-on -j4")
	}
	if run.Tracer().Len() == 0 {
		t.Error("no spans traced for a 6-cell grid")
	}
	if len(run.Timings()) != 6 {
		t.Errorf("manifest timings = %d, want 6 cells", len(run.Timings()))
	}
}

func TestTelemetryCollectsWalkMetrics(t *testing.T) {
	run := telemetry.StartRun("test", nil, false)
	defer run.Stop()
	gridRows(t, 2)
	s := telemetry.Default().Snapshot()

	if s.Counters["cells"] != 6 {
		t.Errorf("cells counter = %d, want 6", s.Counters["cells"])
	}
	if s.Counters["replay.events"] == 0 {
		t.Error("replay.events counter empty")
	}
	if s.Counters["accesses.measured"] == 0 {
		t.Error("accesses.measured counter empty")
	}
	for _, name := range []string{
		"walk.refs.Native", "walk.cycles.Native",
		"walk.refs.BaseVirtualized", "walk.cycles.BaseVirtualized",
		"walk.refs.DualDirect", "walk.cycles.DualDirect",
	} {
		if s.Histograms[name].Count == 0 {
			t.Errorf("histogram %s empty", name)
		}
	}
	// Native 1D walks take at most 4 page-table references.
	if max := s.Histograms["walk.refs.Native"].Max; max > 4 {
		t.Errorf("native walk max refs = %d, want <= 4", max)
	}
	// 2D walks may take up to 24.
	if max := s.Histograms["walk.refs.BaseVirtualized"].Max; max > 24 {
		t.Errorf("2D walk max refs = %d, want <= 24", max)
	}
}

func TestTelemetrySnapshotDeterministicAcrossParallelism(t *testing.T) {
	snap := func(parallelism int) telemetry.Snapshot {
		run := telemetry.StartRun("test", nil, false)
		defer run.Stop()
		gridRows(t, parallelism)
		s := telemetry.Default().Snapshot()
		// Progress gauges are scheduler state, not simulation metrics;
		// they are identical here anyway, but exclude them on principle.
		s.Gauges = nil
		return s
	}
	if s1, s8 := snap(1), snap(8); !reflect.DeepEqual(s1, s8) {
		t.Errorf("metric snapshots differ between -j1 and -j8:\n%+v\nvs\n%+v", s1, s8)
	}
}
