// Multiprogramming study (extension): the paper's proposal requires
// guest segment registers to be switched with the process (§III). This
// study runs two big-memory processes round-robin in one VM and
// measures what context switching costs under the 2014-era flush-on-
// switch TLBs versus ASID/PCID-tagged ones — in both cases with each
// process's direct segment following it on and off the core.

package experiments

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/guestos"
	"vdirect/internal/mmu"
	"vdirect/internal/replay"
	"vdirect/internal/stats"
	"vdirect/internal/trace"
	"vdirect/internal/vmm"
	"vdirect/internal/workload"
)

// MultiprogramResult compares switching policies for one workload.
type MultiprogramResult struct {
	Workload string
	Quantum  int
	// FlushOverhead and ASIDOverhead are translation overheads under
	// flush-on-switch and tagged context switches.
	FlushOverhead float64
	ASIDOverhead  float64
	Switches      uint64
}

// MultiprogramStudy time-slices two instances of the workload (distinct
// seeds, Dual Direct segments each) with the given quantum in accesses.
func MultiprogramStudy(scale Scale, workloads []string, quantum int) ([]MultiprogramResult, error) {
	var out []MultiprogramResult
	for _, wl := range workloads {
		res := MultiprogramResult{Workload: wl, Quantum: quantum}
		for _, tagged := range []bool{false, true} {
			overhead, switches, err := runMultiprogram(wl, scale, quantum, tagged)
			if err != nil {
				return nil, err
			}
			if tagged {
				res.ASIDOverhead = overhead
			} else {
				res.FlushOverhead = overhead
			}
			res.Switches = switches
		}
		out = append(out, res)
	}
	return out, nil
}

func runMultiprogram(wl string, scale Scale, quantum int, tagged bool) (float64, uint64, error) {
	class := workload.New(wl, workload.Config{MemoryMB: 1, Ops: 1}).Class()
	cfgA := scale.WLConfig(class, 1)
	cfgB := scale.WLConfig(class, 2)
	wA := workload.New(wl, cfgA)
	wB := workload.New(wl, cfgB)

	prim := wA.PrimaryRegion()
	// Two processes, each with its own segment-backed primary region.
	guestSize := addr.AlignUp(2*prim.Size+320<<20, addr.PageSize4K)
	hostSize := addr.AlignUp(guestSize+guestSize/4+256<<20, addr.PageSize4K)
	host := vmm.NewHost(hostSize)
	vm, err := host.CreateVM(vmm.VMConfig{
		Name: wl, MemorySize: guestSize,
		NestedPageSize: addr.Page4K, ContiguousBacking: true,
	})
	if err != nil {
		return 0, 0, err
	}
	kernel := guestos.NewKernel(vm.GuestMem, vm)
	hw := mmu.New(mmu.Config{})
	hw.SetNestedPageTable(vm.NPT)
	seg, err := vm.TryEnableVMMSegment()
	if err != nil {
		return 0, 0, err
	}
	hw.SetVMMSegment(seg)

	build := func(w workload.Workload) (*guestos.Process, error) {
		p, err := kernel.CreateProcess(w.Name())
		if err != nil {
			return nil, err
		}
		if err := p.CreatePrimaryRegionAt(w.PrimaryRegion()); err != nil {
			return nil, err
		}
		for _, r := range w.StaticRegions() {
			if r == w.PrimaryRegion() {
				continue
			}
			if err := p.MMapAt(r); err != nil {
				return nil, err
			}
		}
		return p, nil
	}
	pA, err := build(wA)
	if err != nil {
		return 0, 0, err
	}
	pB, err := build(wB)
	if err != nil {
		return 0, 0, err
	}
	sched := guestos.NewScheduler(kernel, []*guestos.Process{pA, pB})
	sched.UseASID = tagged

	// Interleave the two traces, switching every quantum accesses. Each
	// process is one replay engine stepped a quantum at a time; the
	// Alloc/Free hooks stay nil — churn events pass through untranslated,
	// exactly as the study always treated them (its TLBs are flushed or
	// retagged wholesale at every switch).
	var accesses uint64
	var cycles uint64
	cpi := wA.BaseCPI()
	mkEngine := func(w workload.Workload, p *guestos.Process) *replay.Engine {
		// Per-engine result buffer: the study needs per-access walk
		// cycles, which the batch path returns without a closure call.
		out := make([]mmu.Result, replay.DefaultBlockSize)
		return replay.New(w, replay.Hooks{
			AccessBlock: func(evs []trace.Event) (int, error) {
				if len(evs) > len(out) {
					out = make([]mmu.Result, len(evs))
				}
				done, attempt := 0, 0
				for {
					n, fault := hw.TranslateBlock(evs[done:], out[done:])
					for _, r := range out[done : done+n] {
						cycles += r.Cycles
					}
					done += n
					if fault == nil {
						return done, nil
					}
					if n > 0 {
						attempt = 0 // a new event is faulting
					}
					attempt++
					if fault.Kind != mmu.FaultGuest {
						return done, fault
					}
					if err := p.HandleFault(fault.Addr); err != nil {
						return done, err
					}
					if attempt >= 3 {
						return done, fmt.Errorf("experiments: multiprogram access stuck at %#x", uint64(evs[done].VA))
					}
				}
			},
		}, replay.Config{})
	}
	engines := []*replay.Engine{mkEngine(wA, pA), mkEngine(wB, pB)}
	done := make([]bool, len(engines))
	for !done[0] || !done[1] {
		for i, eng := range engines {
			if done[i] {
				continue
			}
			if err := sched.SwitchTo(i, hw); err != nil {
				return 0, 0, err
			}
			n, more, err := eng.Step(quantum)
			if err != nil {
				return 0, 0, err
			}
			accesses += uint64(n)
			if !more {
				done[i] = true
			}
		}
	}
	ideal := float64(accesses) * cpi
	return float64(cycles) / ideal, sched.Switches(), nil
}

// MultiprogramTable renders the study.
func MultiprogramTable(rows []MultiprogramResult) *stats.Table {
	t := stats.NewTable("Multiprogramming — context-switch cost, flush vs ASID (Dual Direct)",
		"workload", "quantum", "switches", "flush overhead", "ASID overhead")
	for _, r := range rows {
		t.AddRow(r.Workload, fmt.Sprint(r.Quantum), fmt.Sprint(r.Switches),
			stats.Percent(r.FlushOverhead), stats.Percent(r.ASIDOverhead))
	}
	return t
}
