// The translation-schemes study (extension section): the scheme
// registry's closed-form cost table, plus a measured before/after
// comparison of the base 2D nested walk against flattened nested page
// tables. The measured half runs on walker-only hardware — paging-
// structure caches and the nested TLB disabled — so every walk pays its
// scheme's full dimensionality and the per-walk reference counts land
// exactly on the closed forms (with the caches on, both walkers skip to
// the leaf almost every time and the dimensionality difference hides).

package experiments

import (
	"fmt"

	"vdirect/internal/mmu"
	"vdirect/internal/sched"
	"vdirect/internal/stats"
	"vdirect/internal/workload"
)

// SchemeCostTable renders every registered scheme's closed-form walk
// cost at the canonical 4K-nested operating points: an uncovered 4K
// access, an uncovered 2M-guest access, and (where the scheme's
// segments can cover at all) a fully covered access. The rows come from
// the registry, so a newly registered scheme appears without touching
// this file.
func SchemeCostTable() *stats.Table {
	t := stats.NewTable("Translation schemes — closed-form walk cost (4K nested pages)",
		"scheme", "2D", "refs 4K", "checks 4K", "refs 2M-guest", "refs covered", "checks covered")
	for _, s := range mmu.Schemes() {
		req := s.Requirements()
		ge, ve := req.GuestSegment, req.VMMSegment
		uncovered := s.WalkCost(mmu.CostInput{
			GuestLevels: 4, NestedLevels: 4,
			GuestSegEnabled: ge, VMMSegEnabled: ve,
		})
		huge := s.WalkCost(mmu.CostInput{
			GuestLevels: 3, NestedLevels: 4,
			GuestSegEnabled: ge, VMMSegEnabled: ve,
		})
		covRefs, covChecks := "-", "-"
		if ge || ve {
			covered := s.WalkCost(mmu.CostInput{
				GuestLevels: 4, NestedLevels: 4,
				GuestCovered: ge, VMMCovered: ve,
				GuestSegEnabled: ge, VMMSegEnabled: ve,
			})
			covRefs, covChecks = fmt.Sprint(covered.Refs), fmt.Sprint(covered.Checks)
		}
		virt := "no"
		if s.Virtualized() {
			virt = "yes"
		}
		t.AddRow(string(s.Name()), virt,
			fmt.Sprint(uncovered.Refs), fmt.Sprint(uncovered.Checks),
			fmt.Sprint(huge.Refs), covRefs, covChecks)
	}
	return t
}

// FlatRow is one workload of the flattened-nested-walk comparison:
// the same trace through Base Virtualized and FlatNested stacks on
// walker-only hardware.
type FlatRow struct {
	Workload string
	Base     Result // 4K+4K, base 2D walker
	Flat     Result // 4K+FL, flattened walker
}

// schemeStudyHardware strips the walk-acceleration caches so measured
// per-walk costs equal the closed-form table (TLBs stay, so only real
// misses walk).
func schemeStudyHardware() mmu.Config {
	return mmu.Config{DisablePWC: true, DisableNestedTLB: true}
}

// SchemesStudy measures the flattened-nested-walk comparison for each
// workload through the scheduler's worker pool.
func SchemesStudy(cfg sched.Config, scale Scale, workloads []string) ([]FlatRow, error) {
	labels := []string{"4K+4K", "4K+FL"}
	type cell struct{ wl, label string }
	cells := make([]cell, 0, len(workloads)*len(labels))
	for _, wl := range workloads {
		for _, label := range labels {
			cells = append(cells, cell{wl, label})
		}
	}
	if cfg.SpanName == nil {
		cfg.SpanName = func(i int) string { return cells[i].wl + " " + cells[i].label + " walker-only" }
	}
	runs, err := sched.Run(cfg, len(cells), func(i int) (Result, error) {
		wl, label := cells[i].wl, cells[i].label
		spec, err := ParseConfig(label)
		if err != nil {
			return Result{}, err
		}
		class := workload.New(wl, workload.Config{MemoryMB: 1, Ops: 1}).Class()
		spec.Workload = wl
		spec.WL = scale.WLConfig(class, 1)
		spec.MMU = schemeStudyHardware()
		res, err := Run(spec)
		if err != nil {
			return Result{}, fmt.Errorf("experiments: schemes study %s/%s: %w", wl, label, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]FlatRow, len(workloads))
	for i, wl := range workloads {
		rows[i] = FlatRow{Workload: wl, Base: runs[2*i], Flat: runs[2*i+1]}
	}
	return rows, nil
}

// FlattenedTable renders the measured before/after comparison.
func FlattenedTable(rows []FlatRow) *stats.Table {
	t := stats.NewTable("Flattened nested walks — measured on walker-only hardware (4K guest, 4K nested)",
		"workload", "refs/walk 2D", "refs/walk flat", "walk cycles 2D", "walk cycles flat",
		"cycle reduction", "overhead 2D", "overhead flat")
	perWalk := func(r Result) float64 {
		if r.Stats.Walks == 0 {
			return 0
		}
		return float64(r.Stats.WalkMemRefs) / float64(r.Stats.Walks)
	}
	for _, r := range rows {
		reduction := 0.0
		if r.Base.WalkCycles > 0 {
			reduction = 1 - float64(r.Flat.WalkCycles)/float64(r.Base.WalkCycles)
		}
		t.AddRow(r.Workload,
			fmt.Sprintf("%.2f", perWalk(r.Base)), fmt.Sprintf("%.2f", perWalk(r.Flat)),
			fmt.Sprint(r.Base.WalkCycles), fmt.Sprint(r.Flat.WalkCycles),
			stats.Percent(reduction),
			stats.Percent(r.Base.Overhead), stats.Percent(r.Flat.Overhead))
	}
	return t
}
