// Figure drivers: one function per figure in the paper's evaluation.

package experiments

import (
	"fmt"

	"vdirect/internal/stats"
	"vdirect/internal/workload"
)

// Row is one bar of a figure: a workload under one configuration.
type Row struct {
	Workload string
	Config   string
	// Overhead is the address-translation overhead (§VIII metric).
	Overhead float64
	Result   Result
}

// Figure bundles an experiment's rows with a rendered table.
type Figure struct {
	ID    string
	Title string
	Rows  []Row
}

// Table renders the figure as fixed-width text, one row per bar.
func (f Figure) Table() *stats.Table {
	t := stats.NewTable(fmt.Sprintf("%s — %s", f.ID, f.Title),
		"workload", "config", "overhead", "walks", "walk-refs", "cyc/walk")
	for _, r := range f.Rows {
		cycPerWalk := 0.0
		if r.Result.Stats.Walks > 0 {
			cycPerWalk = float64(r.Result.WalkCycles) / float64(r.Result.Stats.Walks)
		}
		t.AddRow(r.Workload, r.Config, stats.Percent(r.Overhead),
			fmt.Sprint(r.Result.Stats.Walks),
			fmt.Sprint(r.Result.Stats.WalkMemRefs),
			fmt.Sprintf("%.1f", cycPerWalk))
	}
	return t
}

// Grid renders the figure as a workload × config matrix of overheads,
// the shape of the paper's bar charts.
func (f Figure) Grid() *stats.Table {
	var configs []string
	seenC := map[string]bool{}
	var wls []string
	seenW := map[string]bool{}
	for _, r := range f.Rows {
		if !seenC[r.Config] {
			seenC[r.Config] = true
			configs = append(configs, r.Config)
		}
		if !seenW[r.Workload] {
			seenW[r.Workload] = true
			wls = append(wls, r.Workload)
		}
	}
	cols := append([]string{"workload"}, configs...)
	t := stats.NewTable(fmt.Sprintf("%s — %s (overhead %%)", f.ID, f.Title), cols...)
	for _, w := range wls {
		row := []string{w}
		for _, c := range configs {
			cell := "-"
			for _, r := range f.Rows {
				if r.Workload == w && r.Config == c {
					cell = fmt.Sprintf("%.1f", r.Overhead*100)
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

// RunGrid simulates every workload × config cell.
func RunGrid(workloads, configs []string, scale Scale, seed uint64) ([]Row, error) {
	var rows []Row
	for _, wl := range workloads {
		class := workload.New(wl, workload.Config{MemoryMB: 1, Ops: 1}).Class()
		for _, label := range configs {
			spec, err := ParseConfig(label)
			if err != nil {
				return nil, err
			}
			spec.Workload = wl
			spec.WL = scale.WLConfig(class, seed)
			res, err := Run(spec)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", wl, label, err)
			}
			rows = append(rows, Row{Workload: wl, Config: label, Overhead: res.Overhead, Result: res})
		}
	}
	return rows, nil
}

// Figure1 regenerates the motivation preview: graph500, memcached and
// GUPS under native 4K, three virtualized paging configurations, and
// the proposed Dual Direct and VMM Direct modes.
func Figure1(scale Scale) (Figure, error) {
	rows, err := RunGrid([]string{"graph500", "memcached", "gups"}, Figure1Configs(), scale, 1)
	return Figure{ID: "Figure 1", Title: "virtual memory overheads preview", Rows: rows}, err
}

// Figure11 regenerates the big-memory evaluation: four workloads under
// four native and nine virtualized configurations.
func Figure11(scale Scale) (Figure, error) {
	rows, err := RunGrid(workload.BigMemoryNames(), Figure11Configs(), scale, 1)
	return Figure{ID: "Figure 11", Title: "big-memory workload overheads", Rows: rows}, err
}

// Figure12 regenerates the compute-workload evaluation with THP
// configurations.
func Figure12(scale Scale) (Figure, error) {
	rows, err := RunGrid(workload.ComputeNames(), Figure12Configs(), scale, 1)
	return Figure{ID: "Figure 12", Title: "compute workload overheads", Rows: rows}, err
}

// Fig13Point is one point of the escape-filter study: mean normalized
// execution time and its 95% confidence interval over the trials.
type Fig13Point struct {
	Workload   string
	BadPages   int
	Normalized stats.Summary
}

// Figure13 regenerates the escape-filter study: each big-memory
// workload runs in Dual Direct mode with 1-16 faulty pages placed at
// `trials` different random locations (the paper uses 30), and reports
// execution time normalized to Dual Direct with no bad pages.
func Figure13(scale Scale, trials int, badCounts []int) ([]Fig13Point, error) {
	if trials <= 0 {
		trials = 30
	}
	if len(badCounts) == 0 {
		badCounts = []int{1, 2, 4, 8, 16}
	}
	var points []Fig13Point
	for _, wl := range workload.BigMemoryNames() {
		base, err := ParseConfig("DD")
		if err != nil {
			return nil, err
		}
		base.Workload = wl
		base.WL = scale.WLConfig(workload.BigMemory, 1)
		clean, err := Run(base)
		if err != nil {
			return nil, fmt.Errorf("experiments: clean DD for %s: %w", wl, err)
		}
		cleanT := clean.ExecutionCycles()
		for _, n := range badCounts {
			samples := make([]float64, 0, trials)
			for trial := 0; trial < trials; trial++ {
				spec := base
				spec.BadPages = n
				spec.BadPageSeed = uint64(trial + 1)
				res, err := Run(spec)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s with %d bad pages: %w", wl, n, err)
				}
				samples = append(samples, res.ExecutionCycles()/cleanT)
			}
			points = append(points, Fig13Point{
				Workload:   wl,
				BadPages:   n,
				Normalized: stats.Summarize(samples),
			})
		}
	}
	return points, nil
}

// Figure13Table renders the escape-filter study.
func Figure13Table(points []Fig13Point) *stats.Table {
	t := stats.NewTable("Figure 13 — normalized execution time with bad pages (Dual Direct)",
		"workload", "bad pages", "normalized time", "95% CI", "slowdown %")
	for _, p := range points {
		t.AddRow(p.Workload, fmt.Sprint(p.BadPages),
			fmt.Sprintf("%.5f", p.Normalized.Mean),
			fmt.Sprintf("±%.5f", p.Normalized.CI),
			fmt.Sprintf("%.3f", (p.Normalized.Mean-1)*100))
	}
	return t
}
