// Figure drivers: one function per figure in the paper's evaluation.

package experiments

import (
	"fmt"

	"vdirect/internal/sched"
	"vdirect/internal/stats"
	"vdirect/internal/workload"
)

// Row is one bar of a figure: a workload under one configuration.
type Row struct {
	Workload string
	Config   string
	// Overhead is the address-translation overhead (§VIII metric).
	Overhead float64
	Result   Result
}

// Figure bundles an experiment's rows with a rendered table.
type Figure struct {
	ID    string
	Title string
	Rows  []Row
}

// Table renders the figure as fixed-width text, one row per bar.
func (f Figure) Table() *stats.Table {
	t := stats.NewTable(fmt.Sprintf("%s — %s", f.ID, f.Title),
		"workload", "config", "overhead", "walks", "walk-refs", "cyc/walk")
	for _, r := range f.Rows {
		cycPerWalk := 0.0
		if r.Result.Stats.Walks > 0 {
			cycPerWalk = float64(r.Result.WalkCycles) / float64(r.Result.Stats.Walks)
		}
		t.AddRow(r.Workload, r.Config, stats.Percent(r.Overhead),
			fmt.Sprint(r.Result.Stats.Walks),
			fmt.Sprint(r.Result.Stats.WalkMemRefs),
			fmt.Sprintf("%.1f", cycPerWalk))
	}
	return t
}

// Grid renders the figure as a workload × config matrix of overheads,
// the shape of the paper's bar charts.
func (f Figure) Grid() *stats.Table {
	var configs []string
	seenC := map[string]bool{}
	var wls []string
	seenW := map[string]bool{}
	for _, r := range f.Rows {
		if !seenC[r.Config] {
			seenC[r.Config] = true
			configs = append(configs, r.Config)
		}
		if !seenW[r.Workload] {
			seenW[r.Workload] = true
			wls = append(wls, r.Workload)
		}
	}
	// One map lookup per cell instead of a scan over all rows; the
	// first row for a (workload, config) pair wins, as the scan did.
	overheads := make(map[[2]string]float64, len(f.Rows))
	for _, r := range f.Rows {
		key := [2]string{r.Workload, r.Config}
		if _, ok := overheads[key]; !ok {
			overheads[key] = r.Overhead
		}
	}
	cols := append([]string{"workload"}, configs...)
	t := stats.NewTable(fmt.Sprintf("%s — %s (overhead %%)", f.ID, f.Title), cols...)
	for _, w := range wls {
		row := []string{w}
		for _, c := range configs {
			cell := "-"
			if o, ok := overheads[[2]string{w, c}]; ok {
				cell = fmt.Sprintf("%.1f", o*100)
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

// RunGrid simulates every workload × config cell with the default
// scheduler configuration (all cores).
func RunGrid(workloads, configs []string, scale Scale, seed uint64) ([]Row, error) {
	return RunGridOpts(sched.Config{}, workloads, configs, scale, seed)
}

// RunGridOpts simulates every workload × config cell, fanning cells
// across the scheduler's worker pool. Each cell builds a fully private
// stack and derives its seeds from (workload, scale, seed) alone, so
// rows come back identical — same order, same counters — at any
// parallelism.
func RunGridOpts(cfg sched.Config, workloads, configs []string, scale Scale, seed uint64) ([]Row, error) {
	type cell struct{ wl, label string }
	cells := make([]cell, 0, len(workloads)*len(configs))
	for _, wl := range workloads {
		for _, label := range configs {
			cells = append(cells, cell{wl, label})
		}
	}
	if cfg.SpanName == nil {
		cfg.SpanName = func(i int) string { return cells[i].wl + " " + cells[i].label }
	}
	return sched.Run(cfg, len(cells), func(i int) (Row, error) {
		wl, label := cells[i].wl, cells[i].label
		spec, err := ParseConfig(label)
		if err != nil {
			return Row{}, err
		}
		class := workload.New(wl, workload.Config{MemoryMB: 1, Ops: 1}).Class()
		spec.Workload = wl
		spec.WL = scale.WLConfig(class, seed)
		res, err := Run(spec)
		if err != nil {
			return Row{}, fmt.Errorf("experiments: %s/%s: %w", wl, label, err)
		}
		return Row{Workload: wl, Config: label, Overhead: res.Overhead, Result: res}, nil
	})
}

// Figure1 regenerates the motivation preview: graph500, memcached and
// GUPS under native 4K, three virtualized paging configurations, and
// the proposed Dual Direct and VMM Direct modes.
func Figure1(scale Scale) (Figure, error) { return Figure1Opts(sched.Config{}, scale) }

// Figure1Opts is Figure1 under an explicit scheduler configuration.
func Figure1Opts(cfg sched.Config, scale Scale) (Figure, error) {
	rows, err := RunGridOpts(cfg, []string{"graph500", "memcached", "gups"}, Figure1Configs(), scale, 1)
	return Figure{ID: "Figure 1", Title: "virtual memory overheads preview", Rows: rows}, err
}

// Figure11 regenerates the big-memory evaluation: four workloads under
// four native and nine virtualized configurations.
func Figure11(scale Scale) (Figure, error) { return Figure11Opts(sched.Config{}, scale) }

// Figure11Opts is Figure11 under an explicit scheduler configuration.
func Figure11Opts(cfg sched.Config, scale Scale) (Figure, error) {
	rows, err := RunGridOpts(cfg, workload.BigMemoryNames(), Figure11Configs(), scale, 1)
	return Figure{ID: "Figure 11", Title: "big-memory workload overheads", Rows: rows}, err
}

// Figure12 regenerates the compute-workload evaluation with THP
// configurations.
func Figure12(scale Scale) (Figure, error) { return Figure12Opts(sched.Config{}, scale) }

// Figure12Opts is Figure12 under an explicit scheduler configuration.
func Figure12Opts(cfg sched.Config, scale Scale) (Figure, error) {
	rows, err := RunGridOpts(cfg, workload.ComputeNames(), Figure12Configs(), scale, 1)
	return Figure{ID: "Figure 12", Title: "compute workload overheads", Rows: rows}, err
}

// Fig13Point is one point of the escape-filter study: mean normalized
// execution time and its 95% confidence interval over the trials.
type Fig13Point struct {
	Workload   string
	BadPages   int
	Normalized stats.Summary
}

// Figure13 regenerates the escape-filter study: each big-memory
// workload runs in Dual Direct mode with 1-16 faulty pages placed at
// `trials` different random locations (the paper uses 30), and reports
// execution time normalized to Dual Direct with no bad pages.
func Figure13(scale Scale, trials int, badCounts []int) ([]Fig13Point, error) {
	return Figure13Opts(sched.Config{}, scale, trials, badCounts)
}

// Figure13Opts is Figure13 under an explicit scheduler configuration.
// Every trial is an independent cell — the clean baseline and all
// trials of all workloads run concurrently — and per-trial bad-page
// seeds are derived from the trial index exactly as the serial loop
// derived them, so the summary statistics are unchanged.
func Figure13Opts(cfg sched.Config, scale Scale, trials int, badCounts []int) ([]Fig13Point, error) {
	if trials <= 0 {
		trials = 30
	}
	if len(badCounts) == 0 {
		badCounts = []int{1, 2, 4, 8, 16}
	}
	wls := workload.BigMemoryNames()
	type cell struct {
		wl    string
		bad   int // 0 is the clean baseline
		trial int
	}
	cells := make([]cell, 0, len(wls)*(1+len(badCounts)*trials))
	for _, wl := range wls {
		cells = append(cells, cell{wl: wl})
		for _, n := range badCounts {
			for trial := 0; trial < trials; trial++ {
				cells = append(cells, cell{wl: wl, bad: n, trial: trial})
			}
		}
	}
	if cfg.SpanName == nil {
		cfg.SpanName = func(i int) string {
			c := cells[i]
			if c.bad == 0 {
				return c.wl + " DD clean"
			}
			return fmt.Sprintf("%s DD bad=%d trial=%d", c.wl, c.bad, c.trial)
		}
	}
	runs, err := sched.Run(cfg, len(cells), func(i int) (Result, error) {
		c := cells[i]
		spec, err := ParseConfig("DD")
		if err != nil {
			return Result{}, err
		}
		spec.Workload = c.wl
		spec.WL = scale.WLConfig(workload.BigMemory, 1)
		if c.bad > 0 {
			spec.BadPages = c.bad
			spec.BadPageSeed = uint64(c.trial + 1)
		}
		res, err := Run(spec)
		if err != nil {
			if c.bad == 0 {
				return Result{}, fmt.Errorf("experiments: clean DD for %s: %w", c.wl, err)
			}
			return Result{}, fmt.Errorf("experiments: %s with %d bad pages: %w", c.wl, c.bad, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	// Aggregate in cell order: per workload, the clean baseline then
	// badCounts × trials.
	points := make([]Fig13Point, 0, len(wls)*len(badCounts))
	i := 0
	for _, wl := range wls {
		cleanT := runs[i].ExecutionCycles()
		i++
		for _, n := range badCounts {
			samples := make([]float64, 0, trials)
			for trial := 0; trial < trials; trial++ {
				samples = append(samples, runs[i].ExecutionCycles()/cleanT)
				i++
			}
			points = append(points, Fig13Point{
				Workload:   wl,
				BadPages:   n,
				Normalized: stats.Summarize(samples),
			})
		}
	}
	return points, nil
}

// Figure13Table renders the escape-filter study.
func Figure13Table(points []Fig13Point) *stats.Table {
	t := stats.NewTable("Figure 13 — normalized execution time with bad pages (Dual Direct)",
		"workload", "bad pages", "normalized time", "95% CI", "slowdown %")
	for _, p := range points {
		t.AddRow(p.Workload, fmt.Sprint(p.BadPages),
			fmt.Sprintf("%.5f", p.Normalized.Mean),
			fmt.Sprintf("±%.5f", p.Normalized.CI),
			fmt.Sprintf("%.3f", (p.Normalized.Mean-1)*100))
	}
	return t
}
