package trace

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vdirect/internal/addr"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/1000", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestUint64nRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n(17) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	r.Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(123)
	z := NewZipf(r, 1000, 0.99)
	const draws = 200000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		k := z.Rank()
		if k >= 1000 {
			t.Fatalf("rank %d out of range", k)
		}
		counts[k]++
	}
	// Rank 0 should dominate: with s=0.99 over 1000 items its mass is
	// roughly 1/H ≈ 13%; allow a broad band.
	if frac := float64(counts[0]) / draws; frac < 0.08 || frac > 0.25 {
		t.Errorf("rank-0 mass = %.3f, want ~0.13", frac)
	}
	// Monotone-ish decay: top decile should hold the majority of mass.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if frac := float64(top) / draws; frac < 0.5 {
		t.Errorf("top-decile mass = %.3f, want > 0.5", frac)
	}
}

func TestZipfRatioMatchesLaw(t *testing.T) {
	// P(rank 0)/P(rank 1) should approximate 2^s.
	r := NewRand(77)
	s := 1.2
	z := NewZipf(r, 100, s)
	var c0, c1 int
	for i := 0; i < 500000; i++ {
		switch z.Rank() {
		case 0:
			c0++
		case 1:
			c1++
		}
	}
	got := float64(c0) / float64(c1)
	want := math.Pow(2, s)
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("rank0/rank1 = %.3f, want ~%.3f", got, want)
	}
}

func TestZipfPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(NewRand(1), 0, 1.1)
}

func TestSliceRoundTrip(t *testing.T) {
	evs := []Event{
		{Kind: Access, VA: 0x1000},
		{Kind: Alloc, VA: 0x2000, Size: 0x3000},
		{Kind: Access, VA: 0x4fff, Write: true},
	}
	s := NewSlice("demo", evs)
	if s.Name() != "demo" || s.Len() != 3 {
		t.Fatalf("slice meta wrong: %s %d", s.Name(), s.Len())
	}
	ws := s.WorkingSet()
	if ws.Start != 0x1000 || ws.End() != 0x5000 {
		t.Errorf("WorkingSet = %v, want [0x1000, 0x5000)", ws)
	}
	var got []Event
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, ev)
	}
	if len(got) != 3 || got[2].Write != true {
		t.Errorf("replay = %+v", got)
	}
	s.Reset()
	if ev, ok := s.Next(); !ok || ev.VA != 0x1000 {
		t.Error("Reset did not rewind")
	}
}

func TestSliceEmpty(t *testing.T) {
	s := NewSlice("empty", nil)
	if _, ok := s.Next(); ok {
		t.Error("empty slice produced an event")
	}
	if !s.WorkingSet().Empty() {
		t.Error("empty slice has non-empty working set")
	}
}

func TestCollect(t *testing.T) {
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = Event{Kind: Access, VA: addr.GVA(i * 4096)}
	}
	src := NewSlice("src", evs)
	c, err := Collect(src, 4)
	if c.Len() != 4 {
		t.Errorf("Collect(max=4) len = %d", c.Len())
	}
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("Collect(max=4) err = %v, want ErrTruncated", err)
	}
	src.Reset()
	c, err = Collect(src, 0)
	if err != nil {
		t.Errorf("Collect(all) err = %v", err)
	}
	if c.Len() != 10 {
		t.Errorf("Collect(all) len = %d", c.Len())
	}
	// An exact-length max is not a truncation.
	src.Reset()
	c, err = Collect(src, 10)
	if err != nil || c.Len() != 10 {
		t.Errorf("Collect(max=len) = %d events, err %v", c.Len(), err)
	}
}

func TestNextBlockMatchesNext(t *testing.T) {
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = Event{Kind: Access, VA: addr.GVA(i * 4096)}
	}
	a, b := NewSlice("a", evs), NewSlice("b", evs)
	buf := make([]Event, 3)
	var blocked []Event
	for {
		n := a.NextBlock(buf)
		if n == 0 {
			break
		}
		blocked = append(blocked, buf[:n]...)
	}
	for i := 0; ; i++ {
		ev, ok := b.Next()
		if !ok {
			if i != len(blocked) {
				t.Fatalf("NextBlock yielded %d events, Next %d", len(blocked), i)
			}
			break
		}
		if blocked[i] != ev {
			t.Fatalf("event %d: NextBlock %+v vs Next %+v", i, blocked[i], ev)
		}
	}
	// The two APIs share one cursor: Reset rewinds both.
	a.Reset()
	if ev, ok := a.Next(); !ok || ev.VA != 0 {
		t.Error("Next after Reset did not rewind the block cursor")
	}
	if n := a.NextBlock(buf); n != 3 || buf[0].VA != 0x1000 {
		t.Errorf("NextBlock after Next = %d events starting %#x", n, buf[0].VA)
	}
}

func TestKindString(t *testing.T) {
	if Access.String() != "access" || Alloc.String() != "alloc" || Free.String() != "free" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestRandStatisticalUniformity(t *testing.T) {
	// Chi-square-ish sanity over 16 buckets.
	f := func(seed uint64) bool {
		r := NewRand(seed)
		var buckets [16]int
		const n = 16000
		for i := 0; i < n; i++ {
			buckets[r.Uint64n(16)]++
		}
		for _, c := range buckets {
			if c < n/16-300 || c > n/16+300 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
