// Package trace defines the memory-access trace abstraction connecting
// workload generators to the MMU simulator, plus the deterministic
// random-number machinery (xorshift64*, Zipf) every generator shares.
//
// The paper instruments real executions with BadgerTrap to observe each
// DTLB miss; here the workloads themselves emit every data reference so
// the simulator can observe all of them, not a sampled subset.
package trace

import (
	"errors"
	"fmt"
	"math"

	"vdirect/internal/addr"
)

// Kind distinguishes the events a workload can emit.
type Kind uint8

const (
	// Access is a data memory reference at a guest virtual address.
	Access Kind = iota
	// Alloc reports that the workload mapped new memory (an mmap/brk),
	// used by the shadow-paging study: each allocation dirties the guest
	// page table and would force shadow-page-table maintenance.
	Alloc
	// Free reports an unmap event.
	Free
)

// Event is one element of a workload's trace.
type Event struct {
	Kind Kind
	// VA is the guest virtual address touched (Access) or the start of
	// the region mapped/unmapped (Alloc/Free).
	VA addr.GVA
	// Size is the region size for Alloc/Free; unused for Access.
	Size uint64
	// Write marks store accesses; reads and writes translate the same
	// way but the distinction feeds the page-sharing CoW study.
	Write bool
}

// Generator produces a deterministic stream of events. Generators are
// restartable: Reset returns them to the initial state so that the same
// instance can be replayed under many MMU configurations.
//
// Next is the compatibility shim for one-event-at-a-time consumers;
// hot paths should detect BlockGenerator and pull events in blocks.
type Generator interface {
	// Name identifies the workload (e.g. "graph500").
	Name() string
	// Next returns the next event. ok is false when the trace is done.
	Next() (ev Event, ok bool)
	// Reset rewinds the generator to the start of its trace.
	Reset()
	// WorkingSet returns the span of guest virtual memory the trace
	// touches, used to size primary regions and direct segments.
	WorkingSet() addr.Range
}

// BlockGenerator is the streaming fast path: generators that can fill a
// caller-owned buffer with many events per call, amortizing interface
// dispatch out of the replay hot loop. NextBlock and Next share one
// read cursor — mixing them is safe and Reset rewinds both.
type BlockGenerator interface {
	Generator
	// NextBlock copies up to len(buf) events into buf and returns how
	// many were written; 0 means the trace is exhausted (like ok=false
	// from Next). It never returns 0 with events remaining when
	// len(buf) > 0.
	NextBlock(buf []Event) int
}

// FillBlock fills buf from g, using the block fast path when g
// implements BlockGenerator and falling back to per-event Next calls
// otherwise. It returns the number of events written; 0 means the
// trace is exhausted (when len(buf) > 0).
func FillBlock(g Generator, buf []Event) int {
	if bg, ok := g.(BlockGenerator); ok {
		return bg.NextBlock(buf)
	}
	n := 0
	for n < len(buf) {
		ev, ok := g.Next()
		if !ok {
			break
		}
		buf[n] = ev
		n++
	}
	return n
}

// Rand is a deterministic xorshift64* PRNG. It is intentionally not
// math/rand so that traces are stable across Go releases and so the
// generator can be embedded without locking.
type Rand struct{ state uint64 }

// NewRand creates a PRNG; a zero seed is remapped to a fixed constant
// because xorshift has an all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint64n returns a value uniform in [0, n). n must be positive.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("trace: Uint64n(0)")
	}
	return r.Uint64() % n
}

// Intn returns a value uniform in [0, n).
func (r *Rand) Intn(n int) int { return int(r.Uint64n(uint64(n))) }

// Float64 returns a value uniform in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a random permutation of [0, n), Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s, the access skew of key-value workloads like memcached.
// It uses the rejection-inversion method of Hörmann & Derflinger, the
// same approach as math/rand's Zipf but self-contained and stable.
type Zipf struct {
	r                *Rand
	n                float64
	s                float64
	oneMinusS        float64
	oneOverOneMinusS float64
	hIntegralX1      float64
	hIntegralN       float64
	sDiv             float64
}

// NewZipf creates a Zipf sampler over n items with exponent s > 0, s != 1
// handled via the generalized harmonic integral.
func NewZipf(r *Rand, n uint64, s float64) *Zipf {
	if n == 0 {
		panic("trace: NewZipf with n=0")
	}
	z := &Zipf{r: r, n: float64(n), s: s}
	z.oneMinusS = 1 - s
	z.oneOverOneMinusS = 1 / z.oneMinusS
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(z.n + 0.5)
	z.sDiv = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.s)*logX) * logX
}

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1/3.0-x*0.25))
}

// helper2 computes expm1(x)/x with a series near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1/3.0)*(1+x*0.25))
}

// Rank draws the next sample in [0, n), rank 0 most popular.
func (z *Zipf) Rank() uint64 {
	for {
		u := z.hIntegralN + z.r.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.sDiv || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}

// Slice is an in-memory trace, convenient for tests and for replaying a
// fixed event sequence under several configurations.
type Slice struct {
	name     string
	evs      []Event
	pos      int
	ws       addr.Range
	accesses uint64
}

// NewSlice builds a replayable trace from events. The working set is the
// tight bounding range over all event addresses.
func NewSlice(name string, evs []Event) *Slice {
	s := &Slice{name: name, evs: evs}
	if len(evs) > 0 {
		lo, hi := uint64(math.MaxUint64), uint64(0)
		for _, e := range evs {
			if e.Kind == Access {
				s.accesses++
			}
			v := uint64(e.VA)
			end := v + 1
			if e.Kind != Access && e.Size > 0 {
				end = v + e.Size
			}
			if v < lo {
				lo = v
			}
			if end > hi {
				hi = end
			}
		}
		s.ws = addr.Range{Start: lo, Size: hi - lo}
	}
	return s
}

// Name implements Generator.
func (s *Slice) Name() string { return s.name }

// Next implements Generator.
func (s *Slice) Next() (Event, bool) {
	if s.pos >= len(s.evs) {
		return Event{}, false
	}
	ev := s.evs[s.pos]
	s.pos++
	return ev, true
}

// NextBlock implements BlockGenerator: it copies a run of events into
// buf and advances the shared cursor, one call per ~len(buf) events
// instead of one interface call per event.
func (s *Slice) NextBlock(buf []Event) int {
	n := copy(buf, s.evs[s.pos:])
	s.pos += n
	return n
}

// Reset implements Generator.
func (s *Slice) Reset() { s.pos = 0 }

// WorkingSet implements Generator.
func (s *Slice) WorkingSet() addr.Range { return s.ws }

// Len returns the number of events in the trace.
func (s *Slice) Len() int { return len(s.evs) }

// AccessCount returns how many Access events the full trace holds,
// independent of the read cursor. The harness uses it to place the
// warmup boundary without a counting replay.
func (s *Slice) AccessCount() uint64 { return s.accesses }

// ErrTruncated reports that Collect hit its max before the generator
// was exhausted, so the returned Slice is a prefix of the full trace.
var ErrTruncated = errors.New("trace: collection truncated at max events")

// Collect drains up to max events from g into a Slice (all events when
// max <= 0). When the generator still holds events past max, Collect
// returns the truncated Slice together with an error wrapping
// ErrTruncated, so callers can no longer mistake a prefix for the full
// trace. It is primarily a test helper but also powers trace caching
// in the experiment harness.
func Collect(g Generator, max int) (*Slice, error) {
	var evs []Event
	buf := make([]Event, 1024)
	for {
		want := buf
		if max > 0 && max-len(evs) < len(buf) {
			want = buf[:max-len(evs)]
		}
		n := FillBlock(g, want)
		if n == 0 {
			break
		}
		evs = append(evs, want[:n]...)
		if max > 0 && len(evs) >= max {
			if _, more := g.Next(); more {
				return NewSlice(g.Name(), evs),
					fmt.Errorf("%w: kept %d", ErrTruncated, len(evs))
			}
			break
		}
	}
	return NewSlice(g.Name(), evs), nil
}

func (k Kind) String() string {
	switch k {
	case Access:
		return "access"
	case Alloc:
		return "alloc"
	case Free:
		return "free"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}
