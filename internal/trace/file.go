// Trace serialization: traces can be written to and replayed from a
// compact binary stream, so expensive generator runs can be captured
// once and re-simulated under many configurations (or exchanged between
// machines — the format is fixed-endian).

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"vdirect/internal/addr"
)

// File format: a magic header, a length-prefixed name, an event count,
// then packed events. All integers little-endian.
var fileMagic = [8]byte{'v', 'd', 't', 'r', 'a', 'c', 'e', '1'}

// ErrBadTraceFile reports a corrupt or foreign stream.
var ErrBadTraceFile = errors.New("trace: not a vdirect trace stream")

const (
	flagWrite = 1 << 0
)

// WriteTo serializes the slice to w.
func (s *Slice) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}
	if err := count(bw.Write(fileMagic[:])); err != nil {
		return written, err
	}
	name := []byte(s.name)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(name)))
	if err := count(bw.Write(hdr[:])); err != nil {
		return written, err
	}
	if err := count(bw.Write(name)); err != nil {
		return written, err
	}
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], uint64(len(s.evs)))
	if err := count(bw.Write(n8[:])); err != nil {
		return written, err
	}
	// Event record: kind+flags byte, VA (8B), Size (8B only for
	// alloc/free).
	var rec [17]byte
	for _, ev := range s.evs {
		b := byte(ev.Kind) << 1
		if ev.Write {
			b |= flagWrite << 4
		}
		rec[0] = b
		binary.LittleEndian.PutUint64(rec[1:9], uint64(ev.VA))
		n := 9
		if ev.Kind != Access {
			binary.LittleEndian.PutUint64(rec[9:17], ev.Size)
			n = 17
		}
		if err := count(bw.Write(rec[:n])); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Slice, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTraceFile, err)
	}
	if magic != fileMagic {
		return nil, ErrBadTraceFile
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	nameLen := binary.LittleEndian.Uint32(hdr[:])
	if nameLen > 4096 {
		return nil, fmt.Errorf("%w: implausible name length %d", ErrBadTraceFile, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var n8 [8]byte
	if _, err := io.ReadFull(br, n8[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(n8[:])
	const maxEvents = 1 << 32
	if count > maxEvents {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrBadTraceFile, count)
	}
	evs := make([]Event, 0, count)
	var rec [16]byte
	for i := uint64(0); i < count; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		kind := Kind(b >> 1 & 0x7)
		if kind > Free {
			return nil, fmt.Errorf("%w: bad event kind %d", ErrBadTraceFile, kind)
		}
		ev := Event{Kind: kind, Write: b&(flagWrite<<4) != 0}
		if _, err := io.ReadFull(br, rec[:8]); err != nil {
			return nil, err
		}
		ev.VA = addr.GVA(binary.LittleEndian.Uint64(rec[:8]))
		if kind != Access {
			if _, err := io.ReadFull(br, rec[:8]); err != nil {
				return nil, err
			}
			ev.Size = binary.LittleEndian.Uint64(rec[:8])
		}
		evs = append(evs, ev)
	}
	return NewSlice(string(name), evs), nil
}
