package trace

import (
	"bytes"
	"strings"
	"testing"

	"vdirect/internal/addr"
)

func TestTraceFileRoundTrip(t *testing.T) {
	evs := []Event{
		{Kind: Access, VA: 0x40001234},
		{Kind: Access, VA: 0x40005678, Write: true},
		{Kind: Alloc, VA: 0x20000000, Size: 64 << 10},
		{Kind: Access, VA: 0x20000100, Write: true},
		{Kind: Free, VA: 0x20000000, Size: 64 << 10},
	}
	orig := NewSlice("demo", evs)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "demo" || got.Len() != len(evs) {
		t.Fatalf("meta: %q %d", got.Name(), got.Len())
	}
	for i := range evs {
		ev, ok := got.Next()
		if !ok || ev != evs[i] {
			t.Fatalf("event %d: %+v != %+v", i, ev, evs[i])
		}
	}
	if got.WorkingSet() != orig.WorkingSet() {
		t.Errorf("working set %v != %v", got.WorkingSet(), orig.WorkingSet())
	}
}

func TestTraceFileLargeRoundTrip(t *testing.T) {
	r := NewRand(3)
	evs := make([]Event, 50000)
	for i := range evs {
		evs[i] = Event{Kind: Access, VA: addr.GVA(r.Uint64n(1 << 40)), Write: r.Uint64n(2) == 0}
	}
	orig := NewSlice("big", evs)
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Access events pack to 9 bytes + small header.
	if n > int64(len(evs))*9+64 {
		t.Errorf("encoding too large: %d bytes", n)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(evs) {
		t.Fatalf("len %d", got.Len())
	}
	for i := 0; i < len(evs); i++ {
		ev, _ := got.Next()
		if ev != evs[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"short",
		"notmagic" + strings.Repeat("x", 64),
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c[:min(8, len(c))])
		}
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	NewSlice("x", []Event{{Kind: Access, VA: 1}}).WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
	// Implausible name length.
	bad := append([]byte{}, buf.Bytes()[:8]...)
	bad = append(bad, 0xff, 0xff, 0xff, 0xff)
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("huge name accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
