package physmem

import (
	"testing"

	"vdirect/internal/trace"
)

func BenchmarkAllocFree(b *testing.B) {
	m := New(Config{Name: "b", Size: 1 << 30})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			b.Fatal(err)
		}
		m.FreeFrame(f)
	}
}

func BenchmarkAllocDense(b *testing.B) {
	m := New(Config{Name: "b", Size: 8 << 30})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AllocFrame(); err != nil {
			b.StopTimer()
			m = New(Config{Name: "b", Size: 8 << 30})
			b.StartTimer()
		}
	}
}

func BenchmarkCompactFragmented(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := New(Config{Name: "b", Size: 256 << 20})
		r := trace.NewRand(uint64(i))
		m.FragmentRandomly(0.5, r.Uint64n)
		b.StartTimer()
		m.Compact()
	}
}
