// Package physmem models a physical memory of 4KB frames. Both the host
// machine memory and each VM's guest physical memory are instances of
// Memory. It supplies everything the paper's software stack needs from
// the physical layer:
//
//   - frame allocation and freeing (guest OS / VMM allocators),
//   - boot-time contiguous reservation (§VI.A),
//   - fragmentation injection for the §IV studies,
//   - memory compaction (Linux's compaction daemon, §IV/§VI.C),
//   - a bad-page list feeding the escape filter (§V),
//   - the x86-64 I/O gap that splits low memory (§IV).
package physmem

import (
	"errors"
	"fmt"
	"math/bits"

	"vdirect/internal/addr"
)

// Errors returned by allocation operations.
var (
	ErrOutOfMemory   = errors.New("physmem: out of memory")
	ErrNoContiguous  = errors.New("physmem: no contiguous run large enough")
	ErrNotAllocated  = errors.New("physmem: frame not allocated")
	ErrBadFrame      = errors.New("physmem: frame is on the bad-page list")
	ErrOutOfRange    = errors.New("physmem: frame out of range")
	ErrDoubleAlloc   = errors.New("physmem: frame already allocated")
	ErrGapViolation  = errors.New("physmem: range intersects the I/O gap")
	ErrAlreadyOnline = errors.New("physmem: range already online")
)

const frameShift = addr.PageShift4K

// Config controls construction of a Memory.
type Config struct {
	// Name labels the memory in errors and dumps ("host", "guest0"...).
	Name string
	// Size is the total byte span of the physical address space.
	Size uint64
	// IOGap carves the x86-64 I/O gap (3-4GB) out of usable memory, as
	// real chipsets do. Only meaningful when Size > 3GB.
	IOGap bool
}

// Memory is a physical memory frame map. It is not safe for concurrent
// use; the simulator is single-threaded per experiment.
type Memory struct {
	name     string
	frames   uint64   // total frames spanned (including gap)
	alloc    []uint64 // allocated bitmap, 1 = in use
	offline  []uint64 // offline bitmap (I/O gap, unplugged, ballooned)
	bad      []uint64 // bad-page bitmap
	numAlloc uint64
	numOff   uint64
	ioGap    bool
	// hint is the word index where the next availability search starts;
	// it keeps dense allocation O(1) amortized. Invariant: no available
	// frame exists below word hint.
	hint int

	// Moves accumulates relocations performed by Compact so the owner
	// (VMM or guest OS) can repair its mappings.
	moves []Move

	// Owner accounting (optional, see TrackOwners): every allocated
	// frame carries the owner tag that was current when it was
	// allocated, and ownerCount holds the per-owner allocated-frame
	// totals. The consolidated-host driver uses it to attribute every
	// host frame to the guest whose operation took it.
	owners     []OwnerID
	ownerCount map[OwnerID]uint64
	curOwner   OwnerID
}

// OwnerID tags the owner of an allocated frame when owner tracking is
// enabled. OwnerNone (0) is the anonymous/host owner.
type OwnerID uint16

// OwnerNone is the default owner tag: frames allocated outside any
// owner scope (or before TrackOwners) belong to it.
const OwnerNone OwnerID = 0

// Move records one frame relocation performed by compaction.
type Move struct{ Old, New uint64 }

// New creates a Memory per the config.
func New(cfg Config) *Memory {
	if cfg.Size == 0 || cfg.Size%addr.PageSize4K != 0 {
		panic(fmt.Sprintf("physmem: size %#x not a positive multiple of 4K", cfg.Size))
	}
	frames := cfg.Size >> frameShift
	words := (frames + 63) / 64
	m := &Memory{
		name:    cfg.Name,
		frames:  frames,
		alloc:   make([]uint64, words),
		offline: make([]uint64, words),
		bad:     make([]uint64, words),
		ioGap:   cfg.IOGap && cfg.Size > addr.IOGapStart,
	}
	if m.ioGap {
		start := addr.IOGapStart >> frameShift
		end := addr.IOGapEnd >> frameShift
		if end > frames {
			end = frames
		}
		for f := start; f < end; f++ {
			m.setBit(m.offline, f)
			m.numOff++
		}
	}
	return m
}

// Name returns the memory's label.
func (m *Memory) Name() string { return m.name }

// Frames returns the total number of frames spanned (gap included).
func (m *Memory) Frames() uint64 { return m.frames }

// Size returns the byte span of the address space.
func (m *Memory) Size() uint64 { return m.frames << frameShift }

// UsableFrames returns frames that are online (not gap/unplugged).
func (m *Memory) UsableFrames() uint64 { return m.frames - m.numOff }

// AllocatedFrames returns the number of frames currently in use.
func (m *Memory) AllocatedFrames() uint64 { return m.numAlloc }

// FreeFrames returns frames that are online, not allocated, not bad.
func (m *Memory) FreeFrames() uint64 {
	var n uint64
	for w := range m.alloc {
		unavailable := m.alloc[w] | m.offline[w] | m.bad[w]
		n += uint64(bits.OnesCount64(^unavailable))
	}
	// The last word may have phantom bits past the end.
	if rem := m.frames % 64; rem != 0 {
		w := len(m.alloc) - 1
		unavailable := m.alloc[w] | m.offline[w] | m.bad[w]
		phantom := ^unavailable >> rem
		n -= uint64(bits.OnesCount64(phantom))
	}
	return n
}

// TrackOwners enables per-frame owner accounting. Frames already
// allocated are attributed to OwnerNone. Idempotent.
func (m *Memory) TrackOwners() {
	if m.owners != nil {
		return
	}
	m.owners = make([]OwnerID, m.frames)
	m.ownerCount = map[OwnerID]uint64{}
	if m.numAlloc > 0 {
		m.ownerCount[OwnerNone] = m.numAlloc
	}
}

// TrackingOwners reports whether owner accounting is enabled.
func (m *Memory) TrackingOwners() bool { return m.owners != nil }

// SetAllocOwner sets the owner tag stamped onto subsequently allocated
// frames and returns the previous tag, so callers can scope an owner
// around an operation:
//
//	prev := mem.SetAllocOwner(id)
//	defer mem.SetAllocOwner(prev)
func (m *Memory) SetAllocOwner(o OwnerID) OwnerID {
	prev := m.curOwner
	m.curOwner = o
	return prev
}

// AllocOwner returns the owner tag currently being stamped.
func (m *Memory) AllocOwner() OwnerID { return m.curOwner }

// FrameOwner returns the owner of an allocated frame. The second
// result is false when tracking is off or the frame is not allocated.
func (m *Memory) FrameOwner(f uint64) (OwnerID, bool) {
	if m.owners == nil || !m.IsAllocated(f) {
		return OwnerNone, false
	}
	return m.owners[f], true
}

// OwnerFrames returns the number of allocated frames stamped with the
// owner (0 when tracking is off).
func (m *Memory) OwnerFrames(o OwnerID) uint64 {
	if m.ownerCount == nil {
		return 0
	}
	return m.ownerCount[o]
}

// stamp records ownership of newly allocated frame f.
func (m *Memory) stamp(f uint64) {
	if m.owners == nil {
		return
	}
	m.owners[f] = m.curOwner
	m.ownerCount[m.curOwner]++
}

// stampRange records ownership of the newly allocated frames
// [start, start+n).
func (m *Memory) stampRange(start, n uint64) {
	if m.owners == nil {
		return
	}
	for f := start; f < start+n; f++ {
		m.owners[f] = m.curOwner
	}
	m.ownerCount[m.curOwner] += n
}

// unstamp clears ownership of frame f as it is freed.
func (m *Memory) unstamp(f uint64) {
	if m.owners == nil {
		return
	}
	o := m.owners[f]
	m.owners[f] = OwnerNone
	if c := m.ownerCount[o]; c <= 1 {
		delete(m.ownerCount, o)
	} else {
		m.ownerCount[o] = c - 1
	}
}

// CheckOwnerAccounting verifies the owner books against the frame
// bitmaps: the per-owner counts must sum exactly to the allocated-frame
// total, and a full per-frame rescan must reproduce each owner's count.
// It returns nil when tracking is off (nothing to check).
func (m *Memory) CheckOwnerAccounting() error {
	if m.owners == nil {
		return nil
	}
	var sum uint64
	for _, c := range m.ownerCount {
		sum += c
	}
	if sum != m.numAlloc {
		return fmt.Errorf("physmem %s: owner counts sum to %d, %d frames allocated",
			m.name, sum, m.numAlloc)
	}
	rescan := map[OwnerID]uint64{}
	for f := uint64(0); f < m.frames; f++ {
		if m.bit(m.alloc, f) {
			rescan[m.owners[f]]++
		}
	}
	if len(rescan) != len(m.ownerCount) {
		return fmt.Errorf("physmem %s: rescan found %d owners, books say %d",
			m.name, len(rescan), len(m.ownerCount))
	}
	for o, c := range rescan {
		if m.ownerCount[o] != c {
			return fmt.Errorf("physmem %s: owner %d has %d stamped frames, books say %d",
				m.name, o, c, m.ownerCount[o])
		}
	}
	return nil
}

// Owners returns the owner tags with at least one allocated frame, in
// ascending order (deterministic regardless of map state).
func (m *Memory) Owners() []OwnerID {
	if m.ownerCount == nil {
		return nil
	}
	out := make([]OwnerID, 0, len(m.ownerCount))
	for o := range m.ownerCount {
		out = append(out, o)
	}
	for i := 1; i < len(out); i++ { // insertion sort: owner sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (m *Memory) setBit(bm []uint64, f uint64)   { bm[f/64] |= 1 << (f % 64) }
func (m *Memory) clrBit(bm []uint64, f uint64)   { bm[f/64] &^= 1 << (f % 64) }
func (m *Memory) bit(bm []uint64, f uint64) bool { return bm[f/64]&(1<<(f%64)) != 0 }

// available reports whether frame f can be handed out.
func (m *Memory) available(f uint64) bool {
	return f < m.frames &&
		!m.bit(m.alloc, f) && !m.bit(m.offline, f) && !m.bit(m.bad, f)
}

// IsAllocated reports whether the frame is currently in use.
func (m *Memory) IsAllocated(f uint64) bool {
	return f < m.frames && m.bit(m.alloc, f)
}

// IsOffline reports whether the frame is offline (gap or unplugged).
func (m *Memory) IsOffline(f uint64) bool {
	return f < m.frames && m.bit(m.offline, f)
}

// IsBad reports whether the frame is on the bad-page list.
func (m *Memory) IsBad(f uint64) bool {
	return f < m.frames && m.bit(m.bad, f)
}

// AllocFrame allocates the lowest-numbered available frame.
func (m *Memory) AllocFrame() (uint64, error) {
	for w := m.hint; w < len(m.alloc); w++ {
		avail := ^(m.alloc[w] | m.offline[w] | m.bad[w])
		if avail == 0 {
			if w == m.hint {
				m.hint = w + 1
			}
			continue
		}
		f := uint64(w)*64 + uint64(bits.TrailingZeros64(avail))
		if f >= m.frames {
			break
		}
		m.setBit(m.alloc, f)
		m.numAlloc++
		m.stamp(f)
		return f, nil
	}
	return 0, ErrOutOfMemory
}

// lowerHint moves the search hint down after a frame becomes available.
func (m *Memory) lowerHint(f uint64) {
	if w := int(f / 64); w < m.hint {
		m.hint = w
	}
}

// AllocFrameAt allocates the specific frame, failing if unavailable.
func (m *Memory) AllocFrameAt(f uint64) error {
	if f >= m.frames {
		return ErrOutOfRange
	}
	if m.bit(m.alloc, f) {
		return ErrDoubleAlloc
	}
	if m.bit(m.bad, f) {
		return ErrBadFrame
	}
	if m.bit(m.offline, f) {
		return ErrGapViolation
	}
	m.setBit(m.alloc, f)
	m.numAlloc++
	m.stamp(f)
	return nil
}

// FreeFrame releases an allocated frame.
func (m *Memory) FreeFrame(f uint64) error {
	if f >= m.frames {
		return ErrOutOfRange
	}
	if !m.bit(m.alloc, f) {
		return ErrNotAllocated
	}
	m.unstamp(f)
	m.clrBit(m.alloc, f)
	m.numAlloc--
	m.lowerHint(f)
	return nil
}

// AllocRun allocates the lowest-numbered run of available frames, at
// most max frames long, and returns its first frame and length (>= 1).
// It is exactly equivalent to n calls of AllocContiguous(1, 1) for the
// n frames it returns — a single-frame allocation always takes the
// lowest available frame, and every frame of the run is by construction
// lower than any frame a later call could pick — but it walks the
// bitmaps once instead of once per frame. Chunked VM backing uses it
// to place tens of thousands of 4K chunks without O(chunks) scans.
func (m *Memory) AllocRun(max uint64) (uint64, uint64, error) {
	if max == 0 {
		return 0, 0, ErrNoContiguous
	}
	for m.hint < len(m.alloc) && ^(m.alloc[m.hint]|m.offline[m.hint]|m.bad[m.hint]) == 0 {
		m.hint++
	}
	start := uint64(m.hint) * 64
	for start < m.frames {
		w, bit := start/64, start%64
		avail := ^(m.alloc[w] | m.offline[w] | m.bad[w]) >> bit
		if avail == 0 {
			start = (w + 1) * 64
			continue
		}
		start += uint64(bits.TrailingZeros64(avail))
		run := m.freeRunLen(start, max)
		m.markAllocated(start, run)
		m.numAlloc += run
		m.stampRange(start, run)
		return start, run, nil
	}
	return 0, 0, ErrNoContiguous
}

// AllocContiguous allocates n contiguous available frames whose first
// frame is aligned to alignFrames (a power of two, >= 1). It returns the
// first frame number. This is the primitive behind boot-time segment
// reservation (§VI.A) and hotplugged region backing.
func (m *Memory) AllocContiguous(n, alignFrames uint64) (uint64, error) {
	if n == 0 {
		return 0, ErrNoContiguous
	}
	if alignFrames == 0 {
		alignFrames = 1
	}
	// Advance the hint past fully-unavailable words first. Repeated
	// reservations (chunked VM backing fills memory front to back) then
	// stay O(words touched) amortized instead of rescanning the dense
	// allocated prefix on every call. Only whole words with no available
	// frame are skipped, so no candidate start frame is ever passed over.
	for m.hint < len(m.alloc) && ^(m.alloc[m.hint]|m.offline[m.hint]|m.bad[m.hint]) == 0 {
		m.hint++
	}
	start := uint64(m.hint) * 64
	for {
		start = addr.AlignUp(start, alignFrames)
		if start+n > m.frames {
			break
		}
		// Jump word-wise to the next available frame before probing a
		// run: a partially-allocated word would otherwise be crawled one
		// frame per freeRunLen call, which dominates dense front-to-back
		// fills like chunked VM backing (one call per 4K chunk).
		w, bit := start/64, start%64
		avail := ^(m.alloc[w] | m.offline[w] | m.bad[w]) >> bit
		if avail == 0 {
			start = (w + 1) * 64
			continue
		}
		if tz := uint64(bits.TrailingZeros64(avail)); tz != 0 {
			start += tz
			continue // realign before probing the run
		}
		run := m.freeRunLen(start, n)
		if run >= n {
			m.markAllocated(start, n)
			m.numAlloc += n
			m.stampRange(start, n)
			return start, nil
		}
		// Skip past the blocking frame.
		start += run + 1
	}
	return 0, ErrNoContiguous
}

// markAllocated sets [start, start+n) in the alloc bitmap word-wise.
func (m *Memory) markAllocated(start, n uint64) {
	for f := start; f < start+n; {
		w, bit := f/64, f%64
		span := 64 - bit
		if rem := start + n - f; rem < span {
			span = rem
		}
		m.alloc[w] |= (^uint64(0) >> (64 - span)) << bit
		f += span
	}
}

// freeRunLen counts available frames starting at start, up to max. It
// scans word-wise: a run of available frames shows up as consecutive set
// bits in the complement of alloc|offline|bad.
func (m *Memory) freeRunLen(start, max uint64) uint64 {
	if start >= m.frames {
		return 0
	}
	if lim := m.frames - start; max > lim {
		max = lim
	}
	var run uint64
	for run < max {
		f := start + run
		w, bit := f/64, f%64
		avail := ^(m.alloc[w] | m.offline[w] | m.bad[w]) >> bit
		// Consecutive available frames from f = trailing one-bits of avail.
		c := uint64(bits.TrailingZeros64(^avail))
		if c == 0 {
			break
		}
		run += c
		if c < 64-bit {
			break
		}
	}
	if run > max {
		run = max
	}
	return run
}

// LargestFreeRun returns the start and length (in frames) of the longest
// run of available frames.
func (m *Memory) LargestFreeRun() (start, length uint64) {
	var bestStart, bestLen, curStart, curLen uint64
	inRun := false
	for f := uint64(0); f < m.frames; f++ {
		if m.available(f) {
			if !inRun {
				curStart, curLen, inRun = f, 0, true
			}
			curLen++
			if curLen > bestLen {
				bestStart, bestLen = curStart, curLen
			}
		} else {
			inRun = false
		}
	}
	return bestStart, bestLen
}

// Reserve marks the byte range as allocated in one shot, for boot-time
// reservation. The range must be 4K-aligned and fully available.
func (m *Memory) Reserve(r addr.Range) error {
	if !addr.IsAligned(r.Start, addr.Page4K) || !addr.IsAligned(r.Size, addr.Page4K) {
		return fmt.Errorf("physmem: reserve %v: not 4K aligned", r)
	}
	first := r.Start >> frameShift
	n := r.Size >> frameShift
	if first+n > m.frames {
		return ErrOutOfRange
	}
	for f := first; f < first+n; f++ {
		if !m.available(f) {
			return fmt.Errorf("physmem: reserve %v: frame %#x unavailable", r, f)
		}
	}
	for f := first; f < first+n; f++ {
		m.setBit(m.alloc, f)
	}
	m.numAlloc += n
	m.stampRange(first, n)
	return nil
}

// MarkBad places a frame on the bad-page list (§V). An allocated frame
// may be marked bad — that is precisely the situation the escape filter
// handles — so this never fails for in-range frames.
func (m *Memory) MarkBad(f uint64) error {
	if f >= m.frames {
		return ErrOutOfRange
	}
	m.setBit(m.bad, f)
	return nil
}

// BadFrames returns all frames on the bad-page list, ascending.
func (m *Memory) BadFrames() []uint64 {
	var out []uint64
	for f := uint64(0); f < m.frames; f++ {
		if m.bit(m.bad, f) {
			out = append(out, f)
		}
	}
	return out
}

// Offline takes the byte range out of service (memory hot-unplug). The
// frames must not be allocated. Used for I/O-gap reclamation (§IV).
func (m *Memory) Offline(r addr.Range) error {
	first, n, err := m.frameSpan(r)
	if err != nil {
		return err
	}
	for f := first; f < first+n; f++ {
		if m.bit(m.alloc, f) {
			return fmt.Errorf("physmem: offline %v: frame %#x allocated", r, f)
		}
	}
	for f := first; f < first+n; f++ {
		if !m.bit(m.offline, f) {
			m.setBit(m.offline, f)
			m.numOff++
		}
	}
	return nil
}

// Online brings an offline byte range into service (memory hotplug add).
func (m *Memory) Online(r addr.Range) error {
	first, n, err := m.frameSpan(r)
	if err != nil {
		return err
	}
	for f := first; f < first+n; f++ {
		if !m.bit(m.offline, f) {
			return ErrAlreadyOnline
		}
	}
	for f := first; f < first+n; f++ {
		m.clrBit(m.offline, f)
		m.numOff--
	}
	m.lowerHint(first)
	return nil
}

func (m *Memory) frameSpan(r addr.Range) (first, n uint64, err error) {
	if !addr.IsAligned(r.Start, addr.Page4K) || !addr.IsAligned(r.Size, addr.Page4K) {
		return 0, 0, fmt.Errorf("physmem: range %v not 4K aligned", r)
	}
	first = r.Start >> frameShift
	n = r.Size >> frameShift
	if first+n > m.frames {
		return 0, 0, ErrOutOfRange
	}
	return first, n, nil
}

// Grow extends the physical address space by size bytes of offline
// memory and returns the new range. The caller brings it online with
// Online — this models extending a KVM memory slot (§VI.C).
func (m *Memory) Grow(size uint64) (addr.Range, error) {
	if size == 0 || size%addr.PageSize4K != 0 {
		return addr.Range{}, fmt.Errorf("physmem: grow size %#x not a multiple of 4K", size)
	}
	r := addr.Range{Start: m.frames << frameShift, Size: size}
	n := size >> frameShift
	m.frames += n
	words := (m.frames + 63) / 64
	for uint64(len(m.alloc)) < words {
		m.alloc = append(m.alloc, 0)
		m.offline = append(m.offline, 0)
		m.bad = append(m.bad, 0)
	}
	if m.owners != nil {
		m.owners = append(m.owners, make([]OwnerID, n)...)
	}
	first := r.Start >> frameShift
	for f := first; f < first+n; f++ {
		m.setBit(m.offline, f)
		m.numOff++
	}
	return r, nil
}

// FragmentRandomly allocates approximately frac of the currently free
// frames at random positions, simulating a long-running system whose
// free memory is scattered. Returns the frames taken, so tests can free
// them again. Deterministic under the caller-provided next function
// (e.g. trace.Rand.Uint64n).
func (m *Memory) FragmentRandomly(frac float64, next func(n uint64) uint64) []uint64 {
	if frac <= 0 {
		return nil
	}
	var free []uint64
	for f := uint64(0); f < m.frames; f++ {
		if m.available(f) {
			free = append(free, f)
		}
	}
	take := uint64(float64(len(free)) * frac)
	var taken []uint64
	for i := uint64(0); i < take; i++ {
		j := next(uint64(len(free)))
		f := free[j]
		free[j] = free[len(free)-1]
		free = free[:len(free)-1]
		m.setBit(m.alloc, f)
		m.numAlloc++
		m.stamp(f)
		taken = append(taken, f)
	}
	return taken
}

// Compact relocates allocated frames toward the low end of memory until
// the largest free run cannot be improved, modeling Linux's memory
// compaction daemon. It returns the moves performed; the caller must
// repair any translations that referenced the old frames.
//
// Frames marked bad or offline are never used as destinations and are
// never moved (a bad frame's data is gone; an offline frame has none).
func (m *Memory) Compact() []Move {
	m.moves = m.moves[:0]
	// Two-pointer sweep: dst scans for available holes from the bottom,
	// src scans for allocated frames from the top.
	dst, src := uint64(0), m.frames
	for {
		for dst < m.frames && !m.available(dst) {
			dst++
		}
		for src > 0 && !m.bit(m.alloc, src-1) {
			src--
		}
		if src == 0 || dst >= src-1 {
			break
		}
		src--
		// Move frame src -> dst.
		m.clrBit(m.alloc, src)
		m.setBit(m.alloc, dst)
		if m.owners != nil { // ownership travels with the data
			m.owners[dst] = m.owners[src]
			m.owners[src] = OwnerNone
		}
		m.moves = append(m.moves, Move{Old: src, New: dst})
	}
	return m.moves
}

// FragReport summarizes free-space fragmentation at a point in time.
type FragReport struct {
	FreeFrames  uint64  // frames available for allocation
	FreeRuns    uint64  // maximal runs of available frames
	LargestRun  uint64  // length of the longest run, in frames
	FragIndex   float64 // 1 - LargestRun/FreeFrames (0 = one run, ->1 = shattered)
	MeanRunLen  float64 // FreeFrames / FreeRuns
	TotalFrames uint64  // address-space span, gap included
}

// FragStats scans the bitmaps and reports free-space fragmentation.
// This is the host fragmentation curve's raw material: as consolidation
// density rises, FreeFrames shrinks and FragIndex climbs toward 1,
// and direct-segment creation fails once LargestRun drops below the
// segment size.
func (m *Memory) FragStats() FragReport {
	var r FragReport
	r.TotalFrames = m.frames
	var curLen uint64
	for f := uint64(0); f < m.frames; f++ {
		if m.available(f) {
			curLen++
			continue
		}
		if curLen > 0 {
			r.FreeRuns++
			r.FreeFrames += curLen
			if curLen > r.LargestRun {
				r.LargestRun = curLen
			}
			curLen = 0
		}
	}
	if curLen > 0 {
		r.FreeRuns++
		r.FreeFrames += curLen
		if curLen > r.LargestRun {
			r.LargestRun = curLen
		}
	}
	if r.FreeFrames > 0 {
		r.FragIndex = 1 - float64(r.LargestRun)/float64(r.FreeFrames)
		r.MeanRunLen = float64(r.FreeFrames) / float64(r.FreeRuns)
	}
	return r
}

// ProbeContiguous counts how many additional n-frame aligned contiguous
// allocations would currently succeed, up to max probes (0 = unlimited).
// It is non-perturbing: the probes are trial allocations that are all
// freed before returning, and because allocation is deterministic
// lowest-fit, the bitmap and the hint invariant ("no available frame
// below word hint") are exactly restored. The host study uses it to
// measure how many more direct segments the host could still create.
func (m *Memory) ProbeContiguous(n, alignFrames, max uint64) uint64 {
	if n == 0 {
		return 0
	}
	var starts []uint64
	for max == 0 || uint64(len(starts)) < max {
		start, err := m.AllocContiguous(n, alignFrames)
		if err != nil {
			break
		}
		starts = append(starts, start)
	}
	for _, start := range starts {
		for f := start; f < start+n; f++ {
			m.unstamp(f)
			m.clrBit(m.alloc, f)
		}
		m.numAlloc -= n
		m.lowerHint(start)
	}
	return uint64(len(starts))
}

// FrameToAddr converts a frame number to its byte address.
func FrameToAddr(f uint64) uint64 { return f << frameShift }

// AddrToFrame converts a byte address to its frame number.
func AddrToFrame(a uint64) uint64 { return a >> frameShift }
