package physmem

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/trace"
)

func TestOwnerAccountingBasic(t *testing.T) {
	m := New(Config{Name: "t", Size: 1 << 20}) // 256 frames
	pre, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	m.TrackOwners()
	if got := m.OwnerFrames(OwnerNone); got != 1 {
		t.Fatalf("pre-tracking frame attributed to OwnerNone: got %d want 1", got)
	}
	if o, ok := m.FrameOwner(pre); !ok || o != OwnerNone {
		t.Fatalf("FrameOwner(pre) = %d,%v want OwnerNone,true", o, ok)
	}

	prev := m.SetAllocOwner(7)
	if prev != OwnerNone {
		t.Fatalf("SetAllocOwner returned %d want OwnerNone", prev)
	}
	f1, _ := m.AllocFrame()
	start, err := m.AllocContiguous(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.OwnerFrames(7); got != 9 {
		t.Fatalf("owner 7 frames = %d want 9", got)
	}
	m.SetAllocOwner(3)
	if err := m.Reserve(addr.Range{Start: 128 << 12, Size: 4 << 12}); err != nil {
		t.Fatal(err)
	}
	if got := m.OwnerFrames(3); got != 4 {
		t.Fatalf("owner 3 frames = %d want 4", got)
	}
	if err := m.CheckOwnerAccounting(); err != nil {
		t.Fatal(err)
	}
	if got := m.Owners(); len(got) != 3 || got[0] != OwnerNone || got[1] != 3 || got[2] != 7 {
		t.Fatalf("Owners() = %v want [0 3 7]", got)
	}

	if err := m.FreeFrame(f1); err != nil {
		t.Fatal(err)
	}
	for f := start; f < start+8; f++ {
		if err := m.FreeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.OwnerFrames(7); got != 0 {
		t.Fatalf("owner 7 frames after free = %d want 0", got)
	}
	if err := m.CheckOwnerAccounting(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerAccountingUntracked(t *testing.T) {
	m := New(Config{Name: "t", Size: 1 << 20})
	if m.TrackingOwners() {
		t.Fatal("tracking on by default")
	}
	f, _ := m.AllocFrame()
	if o, ok := m.FrameOwner(f); ok || o != OwnerNone {
		t.Fatalf("FrameOwner untracked = %d,%v want OwnerNone,false", o, ok)
	}
	if m.OwnerFrames(OwnerNone) != 0 {
		t.Fatal("OwnerFrames nonzero while untracked")
	}
	if m.Owners() != nil {
		t.Fatal("Owners non-nil while untracked")
	}
	if err := m.CheckOwnerAccounting(); err != nil {
		t.Fatalf("CheckOwnerAccounting untracked: %v", err)
	}
}

// TestOwnerAccountingOpSequence drives a random op sequence (alloc,
// free, contiguous, run, fragment, compact, grow+online, probe) under
// rotating owners and checks the books against a full rescan after
// every step.
func TestOwnerAccountingOpSequence(t *testing.T) {
	m := New(Config{Name: "seq", Size: 4 << 20}) // 1024 frames
	m.TrackOwners()
	rng := trace.NewRand(0xfeedface)
	var live []uint64
	for step := 0; step < 400; step++ {
		m.SetAllocOwner(OwnerID(rng.Uint64n(5)))
		switch rng.Uint64n(8) {
		case 0, 1: // alloc
			if f, err := m.AllocFrame(); err == nil {
				live = append(live, f)
			}
		case 2: // free
			if len(live) > 0 {
				i := rng.Uint64n(uint64(len(live)))
				if err := m.FreeFrame(live[i]); err != nil {
					t.Fatalf("step %d: free: %v", step, err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		case 3: // contiguous
			n := rng.Uint64n(16) + 1
			if start, err := m.AllocContiguous(n, 1); err == nil {
				for f := start; f < start+n; f++ {
					live = append(live, f)
				}
			}
		case 4: // run
			if start, n, err := m.AllocRun(rng.Uint64n(16) + 1); err == nil {
				for f := start; f < start+n; f++ {
					live = append(live, f)
				}
			}
		case 5: // fragment
			live = append(live, m.FragmentRandomly(0.05, rng.Uint64n)...)
		case 6: // compact: repair our frame list like a real owner would
			moves := m.Compact()
			remap := map[uint64]uint64{}
			for _, mv := range moves {
				remap[mv.Old] = mv.New
			}
			for i, f := range live {
				if nf, ok := remap[f]; ok {
					live[i] = nf
				}
			}
		case 7: // probe must not perturb the books
			m.ProbeContiguous(rng.Uint64n(32)+1, 1, 4)
		}
		if err := m.CheckOwnerAccounting(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if uint64(len(live)) != m.AllocatedFrames() {
		t.Fatalf("live list %d != allocated %d", len(live), m.AllocatedFrames())
	}
}

func TestOwnerSurvivesGrowAndCompact(t *testing.T) {
	m := New(Config{Name: "g", Size: 1 << 20})
	m.TrackOwners()
	m.SetAllocOwner(2)
	// Allocate high frames, free low ones, then compact: owner stamps
	// must travel with the moves.
	var frames []uint64
	for i := 0; i < 32; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	for i := 0; i < 16; i++ {
		if err := m.FreeFrame(frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	moves := m.Compact()
	if len(moves) == 0 {
		t.Fatal("expected compaction moves")
	}
	for _, mv := range moves {
		if o, ok := m.FrameOwner(mv.New); !ok || o != 2 {
			t.Fatalf("moved frame %#x owner = %d,%v want 2,true", mv.New, o, ok)
		}
	}
	if err := m.CheckOwnerAccounting(); err != nil {
		t.Fatal(err)
	}

	r, err := m.Grow(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Online(r); err != nil {
		t.Fatal(err)
	}
	m.SetAllocOwner(9)
	if err := m.AllocFrameAt(r.Start >> frameShift); err != nil {
		t.Fatal(err)
	}
	if got := m.OwnerFrames(9); got != 1 {
		t.Fatalf("owner 9 frames = %d want 1", got)
	}
	if err := m.CheckOwnerAccounting(); err != nil {
		t.Fatal(err)
	}
}

func TestFragStats(t *testing.T) {
	m := New(Config{Name: "f", Size: 1 << 20}) // 256 frames
	r := m.FragStats()
	if r.FreeFrames != 256 || r.FreeRuns != 1 || r.LargestRun != 256 || r.FragIndex != 0 {
		t.Fatalf("pristine FragStats = %+v", r)
	}
	// Allocate frames 64..127, splitting free space into two runs of
	// 64 and 128 frames.
	for f := uint64(64); f < 128; f++ {
		if err := m.AllocFrameAt(f); err != nil {
			t.Fatal(err)
		}
	}
	r = m.FragStats()
	if r.FreeFrames != 192 || r.FreeRuns != 2 || r.LargestRun != 128 {
		t.Fatalf("split FragStats = %+v", r)
	}
	want := 1 - 128.0/192.0
	if diff := r.FragIndex - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("FragIndex = %v want %v", r.FragIndex, want)
	}
	if r.MeanRunLen != 96 {
		t.Fatalf("MeanRunLen = %v want 96", r.MeanRunLen)
	}
}

func TestProbeContiguousNonPerturbing(t *testing.T) {
	m := New(Config{Name: "p", Size: 1 << 20}) // 256 frames
	m.TrackOwners()
	m.SetAllocOwner(4)
	// Fragment: allocate every other 16-frame block.
	for f := uint64(0); f < 256; f += 32 {
		for g := f; g < f+16; g++ {
			if err := m.AllocFrameAt(g); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := m.FragStats()
	alloc := m.AllocatedFrames()

	if got := m.ProbeContiguous(16, 1, 0); got != 8 {
		t.Fatalf("ProbeContiguous(16) = %d want 8", got)
	}
	if got := m.ProbeContiguous(17, 1, 0); got != 0 {
		t.Fatalf("ProbeContiguous(17) = %d want 0", got)
	}
	if got := m.ProbeContiguous(16, 1, 3); got != 3 {
		t.Fatalf("ProbeContiguous(16, max 3) = %d want 3", got)
	}

	if m.AllocatedFrames() != alloc {
		t.Fatalf("probe perturbed alloc count: %d -> %d", alloc, m.AllocatedFrames())
	}
	if after := m.FragStats(); after != before {
		t.Fatalf("probe perturbed frag state: %+v -> %+v", before, after)
	}
	if err := m.CheckOwnerAccounting(); err != nil {
		t.Fatal(err)
	}
	// The hint invariant must still hold: next alloc takes the lowest
	// available frame.
	if f, err := m.AllocFrame(); err != nil || f != 16 {
		t.Fatalf("post-probe AllocFrame = %d,%v want 16,nil", f, err)
	}
}
