package physmem

import (
	"testing"
	"testing/quick"

	"vdirect/internal/addr"
	"vdirect/internal/trace"
)

func newMem(t *testing.T, sizeMB uint64, gap bool) *Memory {
	t.Helper()
	return New(Config{Name: "test", Size: sizeMB << 20, IOGap: gap})
}

func TestNewRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unaligned size did not panic")
		}
	}()
	New(Config{Size: 4097})
}

func TestAllocFreeSingle(t *testing.T) {
	m := newMem(t, 1, false) // 256 frames
	f, err := m.AllocFrame()
	if err != nil || f != 0 {
		t.Fatalf("first alloc = %d, %v", f, err)
	}
	f2, _ := m.AllocFrame()
	if f2 != 1 {
		t.Fatalf("second alloc = %d, want 1", f2)
	}
	if m.AllocatedFrames() != 2 {
		t.Errorf("AllocatedFrames = %d", m.AllocatedFrames())
	}
	if err := m.FreeFrame(0); err != nil {
		t.Fatal(err)
	}
	if err := m.FreeFrame(0); err != ErrNotAllocated {
		t.Errorf("double free err = %v", err)
	}
	f3, _ := m.AllocFrame()
	if f3 != 0 {
		t.Errorf("freed frame not reused: got %d", f3)
	}
	if err := m.FreeFrame(9999); err != ErrOutOfRange {
		t.Errorf("out of range free err = %v", err)
	}
}

func TestExhaustion(t *testing.T) {
	m := New(Config{Size: 3 * addr.PageSize4K})
	for i := 0; i < 3; i++ {
		if _, err := m.AllocFrame(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := m.AllocFrame(); err != ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
	if m.FreeFrames() != 0 {
		t.Errorf("FreeFrames = %d", m.FreeFrames())
	}
}

func TestAllocFrameAt(t *testing.T) {
	m := newMem(t, 1, false)
	if err := m.AllocFrameAt(5); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocFrameAt(5); err != ErrDoubleAlloc {
		t.Errorf("double AllocFrameAt err = %v", err)
	}
	m.MarkBad(7)
	if err := m.AllocFrameAt(7); err != ErrBadFrame {
		t.Errorf("bad frame err = %v", err)
	}
	if err := m.AllocFrameAt(1 << 30); err != ErrOutOfRange {
		t.Errorf("range err = %v", err)
	}
}

func TestIOGapCarvedOut(t *testing.T) {
	m := New(Config{Name: "host", Size: 5 << 30, IOGap: true})
	gapFrames := addr.IOGapSize >> 12
	if m.UsableFrames() != m.Frames()-gapFrames {
		t.Errorf("usable = %d, want %d", m.UsableFrames(), m.Frames()-gapFrames)
	}
	gapFrame := addr.IOGapStart >> 12
	if !m.IsOffline(gapFrame) {
		t.Error("gap frame not offline")
	}
	if err := m.AllocFrameAt(gapFrame); err != ErrGapViolation {
		t.Errorf("alloc in gap err = %v", err)
	}
	// The gap splits free memory: 3GB below, 1GB above. The largest run
	// is the 3GB region starting at 0 — exactly the fragmentation the
	// paper's I/O-gap reclamation removes.
	start, length := m.LargestFreeRun()
	if start != 0 {
		t.Errorf("largest run starts at %#x, want 0", FrameToAddr(start))
	}
	if length != (3<<30)>>12 {
		t.Errorf("largest run = %d frames, want %d", length, (3<<30)>>12)
	}
	// No single run can cover all usable memory while the gap exists.
	if length == m.UsableFrames() {
		t.Error("gap did not split free memory")
	}
}

func TestAllocContiguousAndAlignment(t *testing.T) {
	m := newMem(t, 4, false) // 1024 frames
	// Punch a hole pattern: allocate frames 0..9, free 3..5.
	for i := 0; i < 10; i++ {
		m.AllocFrame()
	}
	m.FreeFrame(3)
	m.FreeFrame(4)
	m.FreeFrame(5)
	f, err := m.AllocContiguous(3, 1)
	if err != nil || f != 3 {
		t.Fatalf("contig(3) = %d, %v; want 3", f, err)
	}
	// 512-frame-aligned request must skip to frame 512.
	f, err = m.AllocContiguous(10, 512)
	if err != nil || f != 512 {
		t.Fatalf("aligned contig = %d, %v; want 512", f, err)
	}
	// Too-large request fails.
	if _, err := m.AllocContiguous(2000, 1); err != ErrNoContiguous {
		t.Errorf("oversize err = %v", err)
	}
	if _, err := m.AllocContiguous(0, 1); err != ErrNoContiguous {
		t.Errorf("zero err = %v", err)
	}
}

func TestReserve(t *testing.T) {
	m := newMem(t, 4, false)
	r := addr.Range{Start: 1 << 20, Size: 1 << 20}
	if err := m.Reserve(r); err != nil {
		t.Fatal(err)
	}
	if m.AllocatedFrames() != 256 {
		t.Errorf("allocated = %d", m.AllocatedFrames())
	}
	if err := m.Reserve(r); err == nil {
		t.Error("double reserve succeeded")
	}
	if err := m.Reserve(addr.Range{Start: 1, Size: 4096}); err == nil {
		t.Error("unaligned reserve succeeded")
	}
	if err := m.Reserve(addr.Range{Start: 1 << 30, Size: 4096}); err != ErrOutOfRange {
		t.Errorf("oob reserve err = %v", err)
	}
}

func TestBadPages(t *testing.T) {
	m := newMem(t, 1, false)
	if err := m.MarkBad(10); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkBad(20); err != nil {
		t.Fatal(err)
	}
	bad := m.BadFrames()
	if len(bad) != 2 || bad[0] != 10 || bad[1] != 20 {
		t.Errorf("BadFrames = %v", bad)
	}
	// Bad frames are skipped by the allocator.
	for i := 0; i < 30; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f == 10 || f == 20 {
			t.Fatalf("allocator handed out bad frame %d", f)
		}
	}
	if err := m.MarkBad(1 << 30); err != ErrOutOfRange {
		t.Errorf("oob MarkBad err = %v", err)
	}
}

func TestOfflineOnline(t *testing.T) {
	m := newMem(t, 1, false)
	r := addr.Range{Start: 0x10000, Size: 0x10000} // frames 16..31
	if err := m.Offline(r); err != nil {
		t.Fatal(err)
	}
	if !m.IsOffline(16) || !m.IsOffline(31) {
		t.Error("frames not offline")
	}
	if m.UsableFrames() != 256-16 {
		t.Errorf("usable = %d", m.UsableFrames())
	}
	if err := m.AllocFrameAt(16); err != ErrGapViolation {
		t.Errorf("alloc offline err = %v", err)
	}
	if err := m.Online(r); err != nil {
		t.Fatal(err)
	}
	if m.IsOffline(16) {
		t.Error("frame still offline after Online")
	}
	if err := m.Online(r); err != ErrAlreadyOnline {
		t.Errorf("double online err = %v", err)
	}
	// Offline of an allocated frame must fail.
	m.AllocFrameAt(16)
	if err := m.Offline(r); err == nil {
		t.Error("offline of allocated frame succeeded")
	}
}

func TestGrow(t *testing.T) {
	m := newMem(t, 1, false)
	oldFrames := m.Frames()
	r, err := m.Grow(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != oldFrames<<12 || r.Size != 1<<20 {
		t.Errorf("grown range = %v", r)
	}
	if m.Frames() != oldFrames+256 {
		t.Errorf("frames = %d", m.Frames())
	}
	// Grown memory starts offline.
	if !m.IsOffline(oldFrames) {
		t.Error("grown memory not offline")
	}
	if err := m.Online(r); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocFrameAt(oldFrames); err != nil {
		t.Errorf("alloc in grown region: %v", err)
	}
	if _, err := m.Grow(100); err == nil {
		t.Error("unaligned grow succeeded")
	}
}

func TestFragmentRandomly(t *testing.T) {
	m := newMem(t, 4, false)
	r := trace.NewRand(99)
	taken := m.FragmentRandomly(0.5, r.Uint64n)
	if len(taken) != 512 {
		t.Fatalf("fragmented %d frames, want 512", len(taken))
	}
	if m.AllocatedFrames() != 512 {
		t.Errorf("allocated = %d", m.AllocatedFrames())
	}
	// Fragmentation should break long runs: largest run well below 512.
	_, length := m.LargestFreeRun()
	if length > 200 {
		t.Errorf("largest free run after fragmentation = %d, suspiciously long", length)
	}
	if got := m.FragmentRandomly(0, r.Uint64n); got != nil {
		t.Error("frac=0 should take nothing")
	}
}

func TestCompact(t *testing.T) {
	m := newMem(t, 4, false)
	r := trace.NewRand(7)
	m.FragmentRandomly(0.5, r.Uint64n)
	before := m.AllocatedFrames()
	moves := m.Compact()
	if m.AllocatedFrames() != before {
		t.Errorf("compaction changed allocation count %d -> %d", before, m.AllocatedFrames())
	}
	if len(moves) == 0 {
		t.Fatal("no moves performed on fragmented memory")
	}
	// After compaction allocated memory is one dense prefix.
	for f := uint64(0); f < before; f++ {
		if !m.IsAllocated(f) {
			t.Fatalf("hole at frame %d after compaction", f)
		}
	}
	start, length := m.LargestFreeRun()
	if start != before || length != m.Frames()-before {
		t.Errorf("free run = (%d,%d), want (%d,%d)", start, length, before, m.Frames()-before)
	}
	// Idempotent: second compaction does nothing.
	if moves := m.Compact(); len(moves) != 0 {
		t.Errorf("second compaction moved %d frames", len(moves))
	}
}

func TestCompactAvoidsBadFrames(t *testing.T) {
	m := newMem(t, 1, false)
	m.MarkBad(0)
	m.MarkBad(1)
	if err := m.AllocFrameAt(100); err != nil {
		t.Fatal(err)
	}
	moves := m.Compact()
	if len(moves) != 1 || moves[0].New != 2 {
		t.Errorf("moves = %v, want single move to frame 2", moves)
	}
}

func TestCompactMovesAreConsistent(t *testing.T) {
	// Property: replaying moves over a shadow map preserves the set size
	// and every destination was free before the move.
	f := func(seed uint64) bool {
		m := New(Config{Name: "prop", Size: 2 << 20})
		r := trace.NewRand(seed)
		taken := m.FragmentRandomly(0.4, r.Uint64n)
		owned := make(map[uint64]bool, len(taken))
		for _, f := range taken {
			owned[f] = true
		}
		for _, mv := range m.Compact() {
			if !owned[mv.Old] || owned[mv.New] {
				return false
			}
			delete(owned, mv.Old)
			owned[mv.New] = true
		}
		return uint64(len(owned)) == m.AllocatedFrames()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFreeFramesPhantomBits(t *testing.T) {
	// A memory whose frame count is not a multiple of 64 must not count
	// phantom bits in the final word.
	m := New(Config{Size: 70 * addr.PageSize4K})
	if m.FreeFrames() != 70 {
		t.Errorf("FreeFrames = %d, want 70", m.FreeFrames())
	}
	for i := 0; i < 70; i++ {
		if _, err := m.AllocFrame(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if m.FreeFrames() != 0 {
		t.Errorf("FreeFrames after exhaustion = %d", m.FreeFrames())
	}
}

func TestFrameAddrConversion(t *testing.T) {
	if FrameToAddr(3) != 0x3000 || AddrToFrame(0x3fff) != 3 {
		t.Error("frame/addr conversion wrong")
	}
}
