package replay_test

import (
	"hash/fnv"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/replay"
	"vdirect/internal/trace"
)

// perEventSlice embeds the Generator interface, so its method set omits
// NextBlock and the engine falls back to the per-event Next shim.
type perEventSlice struct{ trace.Generator }

// fuzzDigest replays g and hashes every event the hooks observe, in
// order. quanta supplies the Step limit per iteration (nil means one
// Run call); block routes accesses through the batch AccessBlock hook
// instead of the per-event Access hook. The returned serviced total
// must equal Counts().Accesses.
func fuzzDigest(t *testing.T, g trace.Generator, cfg replay.Config, quanta func() int, block bool) (uint64, replay.Counts, int, int) {
	t.Helper()
	h := fnv.New64a()
	var b [26]byte
	obs := func(ev trace.Event) error {
		b[0] = byte(ev.Kind)
		if ev.Write {
			b[1] = 1
		} else {
			b[1] = 0
		}
		for i := 0; i < 8; i++ {
			b[2+i] = byte(uint64(ev.VA) >> (8 * i))
			b[10+i] = byte(ev.Size >> (8 * i))
		}
		h.Write(b[:])
		return nil
	}
	warmups := 0
	hooks := replay.Hooks{Access: obs, Alloc: obs, Free: obs, Warmup: func() { warmups++ }}
	if block {
		hooks.AccessBlock = func(evs []trace.Event) (int, error) {
			for _, ev := range evs {
				obs(ev)
			}
			return len(evs), nil
		}
	}
	eng := replay.New(g, hooks, cfg)
	serviced := 0
	if quanta == nil {
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		serviced = int(eng.Counts().Accesses)
	} else {
		for {
			n, more, err := eng.Step(quanta())
			if err != nil {
				t.Fatal(err)
			}
			serviced += n
			if !more {
				break
			}
		}
	}
	return h.Sum64(), eng.Counts(), serviced, warmups
}

// FuzzEngineStep decodes an arbitrary event trace, a warmup boundary, a
// block size and a stream of scheduling quanta, then replays the same
// trace six ways — block-streaming Run, block-streaming under random
// Step quanta, per-event shim Run, per-event shim stepped, and both Run
// and stepped variants again through the batch AccessBlock hook — and
// requires the observed event stream and all counters to be
// byte-identical. The parallel scheduler's determinism guarantee
// (identical counters at any -j) reduces to exactly this property.
func FuzzEngineStep(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 2, 3, 1, 4, 5, 6, 2, 7, 8, 9})
	f.Add([]byte{2, 3, 0, 1, 2, 0, 0, 1, 2, 1, 3, 0, 128, 2, 3, 0, 128, 0, 9, 9, 9})
	f.Add([]byte{4, 200, 3, 10, 20, 30, 3, 10, 20, 31, 0, 0, 0, 0, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 1<<12 {
			return
		}
		blockSizes := []int{0, 1, 2, 7, 64}
		cfg := replay.Config{
			BlockSize:      blockSizes[int(data[0])%len(blockSizes)],
			WarmupAccesses: uint64(data[1]),
		}
		body := data[2:]
		var evs []trace.Event
		for i := 0; i+3 < len(body); i += 4 {
			ev := trace.Event{VA: addr.GVA((uint64(body[i+1]) << 12) | uint64(body[i+2])<<4)}
			switch body[i] % 4 {
			case 0, 1:
				ev.Kind = trace.Access
				ev.Write = body[i+3]&1 == 1
			case 2:
				ev.Kind = trace.Alloc
				ev.Size = (uint64(body[i+3])%16 + 1) << 12
			case 3:
				ev.Kind = trace.Free
				ev.Size = (uint64(body[i+3])%16 + 1) << 12
			}
			evs = append(evs, ev)
		}
		s := trace.NewSlice("fuzz", evs)

		// Quanta come from the same bytes, so a given input always
		// schedules the same way; 0 occasionally drains the remainder.
		qpos := 0
		quanta := func() int {
			q := int(data[qpos%len(data)] % 9)
			qpos++
			return q
		}

		type run struct {
			digest   uint64
			counts   replay.Counts
			serviced int
			warmups  int
		}
		var runs [6]run
		runs[0].digest, runs[0].counts, runs[0].serviced, runs[0].warmups =
			fuzzDigest(t, s, cfg, nil, false)
		s.Reset()
		runs[1].digest, runs[1].counts, runs[1].serviced, runs[1].warmups =
			fuzzDigest(t, s, cfg, quanta, false)
		runs[2].digest, runs[2].counts, runs[2].serviced, runs[2].warmups =
			fuzzDigest(t, perEventSlice{trace.NewSlice("fuzz", evs)}, cfg, nil, false)
		qpos = 0
		runs[3].digest, runs[3].counts, runs[3].serviced, runs[3].warmups =
			fuzzDigest(t, perEventSlice{trace.NewSlice("fuzz", evs)}, cfg, quanta, false)
		runs[4].digest, runs[4].counts, runs[4].serviced, runs[4].warmups =
			fuzzDigest(t, trace.NewSlice("fuzz", evs), cfg, nil, true)
		qpos = 0
		runs[5].digest, runs[5].counts, runs[5].serviced, runs[5].warmups =
			fuzzDigest(t, trace.NewSlice("fuzz", evs), cfg, quanta, true)
		for i := 1; i < len(runs); i++ {
			if runs[i] != runs[0] {
				t.Fatalf("replay path %d diverged from block Run:\n%+v\n%+v", i, runs[i], runs[0])
			}
		}

		// Counter identities against ground truth from the trace itself.
		c := runs[0].counts
		if c.Events != uint64(s.Len()) {
			t.Fatalf("consumed %d events, trace has %d", c.Events, s.Len())
		}
		if c.Accesses != s.AccessCount() {
			t.Fatalf("serviced %d accesses, trace has %d", c.Accesses, s.AccessCount())
		}
		if uint64(runs[0].serviced) != c.Accesses {
			t.Fatalf("Step serviced %d, counts say %d", runs[0].serviced, c.Accesses)
		}
		wantMeasured := uint64(0)
		if c.Accesses > cfg.WarmupAccesses {
			wantMeasured = c.Accesses - cfg.WarmupAccesses
		}
		if c.Measured != wantMeasured {
			t.Fatalf("measured %d accesses, want %d (of %d past warmup %d)",
				c.Measured, wantMeasured, c.Accesses, cfg.WarmupAccesses)
		}
		wantWarmups := 0
		if cfg.WarmupAccesses == 0 || c.Accesses >= cfg.WarmupAccesses {
			wantWarmups = 1
		}
		if runs[0].warmups != wantWarmups {
			t.Fatalf("warmup hook fired %d times, want %d", runs[0].warmups, wantWarmups)
		}
	})
}
