package replay

import (
	"errors"
	"fmt"
	"testing"

	"vdirect/internal/trace"
)

// blockObserver is an AccessBlock hook that records every event and the
// run lengths the engine hands it, always completing the whole run.
type blockObserver struct {
	events []trace.Event
	runs   []int
}

func (o *blockObserver) hook(evs []trace.Event) (int, error) {
	o.events = append(o.events, evs...)
	o.runs = append(o.runs, len(evs))
	return len(evs), nil
}

// TestEngineAccessBlockMatchesPerEvent replays the same trace through
// the batch hook and the per-event hook and demands the identical event
// stream and counters — the engine-level face of the golden equivalence
// the MMU tests pin at the TranslateBlock level.
func TestEngineAccessBlockMatchesPerEvent(t *testing.T) {
	evs := script(40)

	var perEvent []trace.Event
	obs := func(ev trace.Event) error { perEvent = append(perEvent, ev); return nil }
	ref := New(trace.NewSlice("s", evs), Hooks{Access: obs, Alloc: obs, Free: obs},
		Config{BlockSize: 7, WarmupAccesses: 11})
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	var bo blockObserver
	other := func(ev trace.Event) error { bo.events = append(bo.events, ev); return nil }
	blk := New(trace.NewSlice("s", evs), Hooks{AccessBlock: bo.hook, Alloc: other, Free: other},
		Config{BlockSize: 7, WarmupAccesses: 11})
	if err := blk.Run(); err != nil {
		t.Fatal(err)
	}

	if len(bo.events) != len(perEvent) {
		t.Fatalf("block path observed %d events, per-event %d", len(bo.events), len(perEvent))
	}
	for i := range perEvent {
		if bo.events[i] != perEvent[i] {
			t.Fatalf("event %d: block %+v, per-event %+v", i, bo.events[i], perEvent[i])
		}
	}
	if ref.Counts() != blk.Counts() {
		t.Errorf("counts diverge: per-event %+v, block %+v", ref.Counts(), blk.Counts())
	}
	// Batching must actually batch: with alloc/free noise every 4
	// accesses the runs are length 4 (modulo block-refill and warmup
	// cuts), never all singletons.
	if len(bo.runs) >= int(blk.Counts().Accesses) {
		t.Errorf("%d hook calls for %d accesses — batch path degenerated to per-event",
			len(bo.runs), blk.Counts().Accesses)
	}
}

// TestEngineAccessBlockWarmupCut pins the documented contract that a
// hook never sees a run spanning the warmup boundary, so MMU stats
// resets in Warmup can't split a batch's accounting.
func TestEngineAccessBlockWarmupCut(t *testing.T) {
	// One long run of 30 accesses; warmup at 13 falls mid-run.
	var evs []trace.Event
	for i := 0; i < 30; i++ {
		evs = append(evs, trace.Event{Kind: trace.Access, VA: 0x1000})
	}
	var before []uint64 // accesses serviced before each hook call
	var warmupAt uint64 = 13
	var total uint64
	var firedAt uint64
	e := New(trace.NewSlice("s", evs), Hooks{
		AccessBlock: func(evs []trace.Event) (int, error) {
			before = append(before, total)
			total += uint64(len(evs))
			return len(evs), nil
		},
		Warmup: func() { firedAt = total },
	}, Config{WarmupAccesses: warmupAt, BlockSize: 64})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, b := range before {
		end := total
		if i+1 < len(before) {
			end = before[i+1]
		}
		if b < warmupAt && end > warmupAt {
			t.Errorf("hook call %d spans warmup boundary: [%d, %d) across %d", i, b, end, warmupAt)
		}
	}
	if firedAt != warmupAt {
		t.Errorf("warmup fired after %d accesses, want %d", firedAt, warmupAt)
	}
	if c := e.Counts(); c.Accesses != 30 || c.Measured != 30-warmupAt {
		t.Errorf("counts = %+v", c)
	}
}

// TestEngineAccessBlockStepQuantum pins that the Step limit cuts runs:
// the multiprogramming quantum stays exact under the batch hook.
func TestEngineAccessBlockStepQuantum(t *testing.T) {
	var bo blockObserver
	e := New(trace.NewSlice("s", script(20)), Hooks{AccessBlock: bo.hook}, Config{BlockSize: 64})
	var steps []int
	for {
		n, more, err := e.Step(6)
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			steps = append(steps, n)
		}
		if !more {
			break
		}
	}
	if want := []int{6, 6, 6, 2}; fmt.Sprint(steps) != fmt.Sprint(want) {
		t.Errorf("quantum steps = %v, want %v", steps, want)
	}
	for i, n := range bo.runs {
		if n > 6 {
			t.Errorf("hook call %d got a run of %d, exceeding the quantum of 6", i, n)
		}
	}
	if c := e.Counts(); c.Accesses != 20 {
		t.Errorf("counts = %+v", c)
	}
}

// TestEngineAccessBlockErrorConsumed pins fault semantics: on a hook
// error the events [0, done) count as serviced, the failing event is
// consumed, and a subsequent Step resumes immediately after it —
// mirroring how a failing Access is consumed on the per-event path.
func TestEngineAccessBlockErrorConsumed(t *testing.T) {
	boom := errors.New("boom")
	evs := script(12) // 12 accesses + 3 alloc/free pairs = 18 events
	calls := 0
	var resumed []trace.Event
	e := New(trace.NewSlice("s", evs), Hooks{
		AccessBlock: func(run []trace.Event) (int, error) {
			calls++
			if calls == 1 {
				return 2, boom // fail on the 3rd access of the first run
			}
			resumed = append(resumed, run...)
			return len(run), nil
		},
	}, Config{BlockSize: 64})

	n, more, err := e.Step(0)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 2 || !more {
		t.Fatalf("Step = (%d, %v), want (2, true)", n, more)
	}
	// 2 serviced + 1 failing event consumed.
	if c := e.Counts(); c.Events != 3 || c.Accesses != 2 {
		t.Fatalf("counts after fault = %+v", c)
	}

	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The resumed stream starts at the 4th access (index 3 in script
	// order): the failing 3rd access was consumed, not retried.
	if len(resumed) == 0 || resumed[0] != evs[3] {
		t.Fatalf("resume started at %+v, want %+v", resumed[0], evs[3])
	}
	if c := e.Counts(); c.Events != uint64(len(evs)) || c.Accesses != 11 {
		t.Errorf("final counts = %+v, want %d events / 11 accesses", c, len(evs))
	}
}
