// Replay-throughput benchmarks: the block streaming path versus the
// per-event Next shim, as events/sec. Two levels: the bare engine with
// a minimal hook (isolates the interface-dispatch savings) and a full
// experiment cell (shows the win with the MMU model in the loop).
// EXPERIMENTS.md records the committed numbers.

package replay_test

import (
	"testing"

	"vdirect/internal/experiments"
	"vdirect/internal/replay"
	"vdirect/internal/telemetry"
	"vdirect/internal/telemetry/walkprof"
	"vdirect/internal/trace"
	"vdirect/internal/workload"
)

// benchWorkload is a fixed trace reused across iterations (Reset
// between runs), sized so the buffer refill cost is well exercised.
func benchWorkload(b *testing.B) workload.Workload {
	b.Helper()
	return workload.New("gups", workload.Config{Seed: 1, MemoryMB: 64, Ops: 400000})
}

func runEngine(b *testing.B, g trace.Generator) {
	b.Helper()
	var sink, events uint64
	hook := func(ev trace.Event) error {
		sink += uint64(ev.VA)
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		eng := replay.New(g, replay.Hooks{Access: hook, Alloc: hook, Free: hook}, replay.Config{})
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		events += eng.Counts().Events
	}
	b.StopTimer()
	_ = sink
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineBlock streams through NextBlock — the hot path every
// experiment loop now drives.
func BenchmarkEngineBlock(b *testing.B) {
	runEngine(b, benchWorkload(b))
}

// BenchmarkEnginePerEvent forces the Next compatibility shim: one
// interface call per event, the shape of the four pre-refactor loops.
func BenchmarkEnginePerEvent(b *testing.B) {
	runEngine(b, perEventWorkload{benchWorkload(b)})
}

func runCell(b *testing.B, mk func() workload.Workload) {
	b.Helper()
	spec, err := experiments.ParseConfig("4K+4K")
	if err != nil {
		b.Fatal(err)
	}
	spec.Workload = "gups"
	spec.WL = workload.Config{Seed: 1, MemoryMB: 64, Ops: 200000}
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := mk()
		res, err := experiments.RunWorkload(spec, w)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Stats.Accesses
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkCellBlock is one full simulation cell (gups under the 2D
// walk) on the block path.
func BenchmarkCellBlock(b *testing.B) {
	spec := workload.Config{Seed: 1, MemoryMB: 64, Ops: 200000}
	runCell(b, func() workload.Workload { return workload.New("gups", spec) })
}

// BenchmarkCellPerEvent is the same cell through the Next shim.
func BenchmarkCellPerEvent(b *testing.B) {
	spec := workload.Config{Seed: 1, MemoryMB: 64, Ops: 200000}
	runCell(b, func() workload.Workload { return perEventWorkload{workload.New("gups", spec)} })
}

// The telemetry overhead pair: the same bare-engine workload with
// telemetry inactive (the default — the engine's meter pointer stays
// nil, so the only cost is one nil check per ~4K-event block) and with
// a run active (one atomic add per block). Enabled must stay within 2%
// of disabled; EXPERIMENTS.md records the committed numbers.
func BenchmarkTelemetryOverheadOff(b *testing.B) {
	if telemetry.Active() {
		b.Fatal("telemetry unexpectedly active")
	}
	runEngine(b, benchWorkload(b))
}

func BenchmarkTelemetryOverheadOn(b *testing.B) {
	run := telemetry.StartRun("bench", nil, false)
	defer run.Stop()
	runEngine(b, benchWorkload(b))
}

// The same comparison with a full simulation cell in the loop: with
// telemetry on, every page walk feeds the cell's WalkProbe shards and
// each completed cell merges them into the shared registry.
func BenchmarkTelemetryCellOff(b *testing.B) {
	if telemetry.Active() {
		b.Fatal("telemetry unexpectedly active")
	}
	spec := workload.Config{Seed: 1, MemoryMB: 64, Ops: 200000}
	runCell(b, func() workload.Workload { return workload.New("gups", spec) })
}

func BenchmarkTelemetryCellOn(b *testing.B) {
	run := telemetry.StartRun("bench", nil, false)
	defer run.Stop()
	spec := workload.Config{Seed: 1, MemoryMB: 64, Ops: 200000}
	runCell(b, func() workload.Workload { return workload.New("gups", spec) })
}

// The walk-sampling pair: the same full cell with sampling off (the
// default — a nil sampler pointer, one nil check per TLB miss) and
// with 1-in-64 stride sampling recording per-walk samples. Sampled
// must stay within 2% of unsampled; benchgate.sh enforces the pair
// like the rest of the telemetry overhead suite.
func BenchmarkTelemetryOverheadSampledOff(b *testing.B) {
	if walkprof.Enabled() != nil {
		b.Fatal("walk sampling unexpectedly active")
	}
	spec := workload.Config{Seed: 1, MemoryMB: 64, Ops: 200000}
	runCell(b, func() workload.Workload { return workload.New("gups", spec) })
}

func BenchmarkTelemetryOverheadSampledOn(b *testing.B) {
	p := walkprof.Enable(walkprof.DefaultPeriod)
	defer p.Stop()
	spec := workload.Config{Seed: 1, MemoryMB: 64, Ops: 200000}
	runCell(b, func() workload.Workload { return workload.New("gups", spec) })
}
