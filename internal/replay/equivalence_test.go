// Golden equivalence: the block streaming path must be byte-identical
// to the per-event Next shim — the determinism guarantee the parallel
// scheduler relies on (identical counters at any -j) has to survive
// the replay refactor. scripts/check.sh runs this suite under -race
// before the full tests.

package replay_test

import (
	"hash/fnv"
	"reflect"
	"testing"

	"vdirect/internal/experiments"
	"vdirect/internal/replay"
	"vdirect/internal/trace"
	"vdirect/internal/workload"
)

// perEventWorkload embeds the Workload interface, so its method set
// omits NextBlock: the engine falls back to the per-event Next shim.
type perEventWorkload struct{ workload.Workload }

func TestEquivalenceResultStats(t *testing.T) {
	// Every workload under the modes with distinct replay behaviour:
	// native paging, the full 2D walk, and both proposal fast paths.
	configs := []string{"4K", "4K+4K", "DD", "4K+VD"}
	for _, name := range workload.Names() {
		for _, label := range configs {
			spec, err := experiments.ParseConfig(label)
			if err != nil {
				t.Fatal(err)
			}
			spec.Workload = name
			spec.WL = workload.Config{Seed: 5, MemoryMB: 24, Ops: 30000}

			w := workload.New(name, spec.WL)
			if _, ok := trace.Generator(w).(trace.BlockGenerator); !ok {
				t.Fatalf("%s: workload lost the block fast path", name)
			}
			block, err := experiments.RunWorkload(spec, w)
			if err != nil {
				t.Fatalf("%s/%s block path: %v", name, label, err)
			}
			shim, err := experiments.RunWorkload(spec, perEventWorkload{workload.New(name, spec.WL)})
			if err != nil {
				t.Fatalf("%s/%s per-event path: %v", name, label, err)
			}
			if !reflect.DeepEqual(block, shim) {
				t.Errorf("%s/%s: block and per-event results diverge:\nblock: %+v\nshim:  %+v",
					name, label, block, shim)
			}
		}
	}
}

// eventDigest replays g through eng-owned hooks and digests every event
// the hooks observe, in order.
func eventDigest(t *testing.T, g trace.Generator, quantum int) (uint64, replay.Counts) {
	t.Helper()
	h := fnv.New64a()
	var b [26]byte
	obs := func(ev trace.Event) error {
		b[0] = byte(ev.Kind)
		if ev.Write {
			b[1] = 1
		} else {
			b[1] = 0
		}
		for i := 0; i < 8; i++ {
			b[2+i] = byte(uint64(ev.VA) >> (8 * i))
			b[10+i] = byte(ev.Size >> (8 * i))
		}
		h.Write(b[:])
		return nil
	}
	eng := replay.New(g, replay.Hooks{Access: obs, Alloc: obs, Free: obs},
		replay.Config{WarmupAccesses: 1000})
	if quantum <= 0 {
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	} else {
		for {
			_, more, err := eng.Step(quantum)
			if err != nil {
				t.Fatal(err)
			}
			if !more {
				break
			}
		}
	}
	return h.Sum64(), eng.Counts()
}

func TestEquivalenceEventStream(t *testing.T) {
	cfg := workload.Config{Seed: 11, MemoryMB: 16, Ops: 20000}
	for _, name := range workload.Names() {
		blockSum, blockCounts := eventDigest(t, workload.New(name, cfg), 0)
		shimSum, shimCounts := eventDigest(t, perEventWorkload{workload.New(name, cfg)}, 0)
		if blockSum != shimSum || blockCounts != shimCounts {
			t.Errorf("%s: block vs per-event stream diverge: %x/%+v vs %x/%+v",
				name, blockSum, blockCounts, shimSum, shimCounts)
		}
		// Quantum-stepped replay (the multiprogramming study's driving
		// pattern) must see the same stream as a straight drain.
		qSum, qCounts := eventDigest(t, workload.New(name, cfg), 777)
		if qSum != blockSum || qCounts != blockCounts {
			t.Errorf("%s: quantum-stepped stream diverges: %x/%+v vs %x/%+v",
				name, qSum, qCounts, blockSum, blockCounts)
		}
	}
}
