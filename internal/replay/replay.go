// Package replay owns the trace-replay loop every experiment drives:
// it streams a workload's events through caller-supplied hooks, with
// warmup accounting, in blocks rather than one interface call per
// event. Before this engine existed the loop was duplicated — with
// subtly different warmup-reset, fault-service and alloc/free handling
// — in the figure runner, the shadow-paging study, the
// multiprogramming study, and the tracestat tool; all four are now
// thin hook configurations of this one loop.
//
// Hot-path design: the engine fills a reusable buffer of BlockSize
// events per trace.BlockGenerator call (one interface dispatch per
// ~4K events instead of one per event) and then iterates a plain
// slice. Generators that only implement trace.Generator still work
// through the per-event shim in trace.FillBlock — the golden
// equivalence tests replay both paths and demand identical results.
package replay

import (
	"vdirect/internal/telemetry"
	"vdirect/internal/trace"
)

// DefaultBlockSize is the events-per-refill the engine uses unless
// configured otherwise. 4096 events × 24 bytes ≈ 96KiB: large enough
// to amortize the refill dispatch to noise, small enough that the
// buffer stays cache-resident while the MMU model's tables compete
// for the same cache.
const DefaultBlockSize = 4096

// Hooks are the engine's extension points. Nil hooks are skipped, so
// a study that ignores Alloc events (as most do) simply leaves Alloc
// nil; an observation-only consumer like tracestat sets just Access
// and Alloc. A hook returning an error aborts the replay immediately
// with the cursor positioned after the failing event.
type Hooks struct {
	// Access services one data reference — typically an MMU translate
	// with demand-paging retry. ev.Kind is always trace.Access.
	Access func(ev trace.Event) error
	// AccessBlock, when non-nil, takes precedence over Access and
	// services a run of consecutive Access events in one call — the
	// batch entry into MMU.TranslateBlock, eliminating one hook dispatch
	// per event. It returns how many events completed; on error, done
	// names the failing event's index and events [0, done) counted as
	// serviced. The engine cuts runs at the warmup boundary and the Step
	// limit, so a hook never sees a run spanning either. The failing
	// event is consumed, exactly as a failing Access is.
	AccessBlock func(evs []trace.Event) (done int, err error)
	// Alloc observes an mmap/brk event (pages fault in on first touch,
	// so most consumers leave this nil).
	Alloc func(ev trace.Event) error
	// Free handles an unmap event — typically guest-PT unmap plus TLB
	// invalidation. Nil means unmaps are ignored, as the
	// multiprogramming study's original loop did.
	Free func(ev trace.Event) error
	// Warmup fires exactly once at the measurement boundary: after the
	// WarmupAccesses-th access has been serviced, or before the first
	// event when WarmupAccesses is 0 (a warmup fraction that rounds to
	// zero measures the whole trace). Consumers reset statistics here.
	Warmup func()
}

// Config sizes the engine.
type Config struct {
	// BlockSize is the events-per-refill; 0 means DefaultBlockSize.
	BlockSize int
	// WarmupAccesses is the number of serviced accesses before the
	// Warmup hook fires; accesses after it count as measured.
	WarmupAccesses uint64
}

// Counts reports what a replay processed.
type Counts struct {
	// Events is every trace event consumed, of any kind.
	Events uint64
	// Accesses is the number of serviced Access events.
	Accesses uint64
	// Measured is the accesses after the warmup boundary (all of them
	// when WarmupAccesses is 0).
	Measured uint64
}

// Engine drives one generator through one set of hooks. It is single-
// goroutine state, like the simulation stack it feeds; concurrent
// cells each build their own engine (see internal/sched).
type Engine struct {
	g   trace.Generator
	h   Hooks
	buf []trace.Event
	pos int // next unconsumed event in buf
	n   int // valid events in buf

	warmupAt  uint64
	started   bool
	exhausted bool
	counts    Counts

	// meter streams the engine's event count into the telemetry
	// registry ("replay.events"), one atomic add per refilled block —
	// never per event. nil when no telemetry run is active, which costs
	// the hot path nothing beyond this nil check per ~4K events.
	meter *telemetry.Counter
}

// New builds an engine over g. The generator should be freshly Reset;
// the engine consumes it from its current cursor.
func New(g trace.Generator, h Hooks, cfg Config) *Engine {
	bs := cfg.BlockSize
	if bs <= 0 {
		bs = DefaultBlockSize
	}
	e := &Engine{
		g:        g,
		h:        h,
		buf:      make([]trace.Event, bs),
		warmupAt: cfg.WarmupAccesses,
	}
	if telemetry.Active() {
		e.meter = telemetry.Default().Counter("replay.events")
	}
	return e
}

// Counts reports progress so far; valid mid-replay (between Steps) and
// after Run.
func (e *Engine) Counts() Counts { return e.counts }

// Run drains the remainder of the trace through the hooks.
func (e *Engine) Run() error {
	_, _, err := e.Step(0)
	return err
}

// Step services up to limit Access events (every remaining event when
// limit <= 0) and returns the number serviced plus whether the trace
// has more events. Non-access events encountered along the way are
// processed but do not count toward the limit — this is the
// multiprogramming study's scheduling quantum, measured in accesses
// exactly as its hand-rolled loop measured it.
func (e *Engine) Step(limit int) (serviced int, more bool, err error) {
	if !e.started {
		e.started = true
		if e.warmupAt == 0 && e.h.Warmup != nil {
			e.h.Warmup()
		}
	}
	for limit <= 0 || serviced < limit {
		if e.pos >= e.n && !e.refill() {
			return serviced, false, nil
		}
		// Iterate the buffered block as a plain slice: no interface
		// dispatch, and the bounds check hoists out of the common case.
		block := e.buf[e.pos:e.n]
		for i := 0; i < len(block); {
			ev := block[i]
			if ev.Kind == trace.Access && e.h.AccessBlock != nil {
				// Batch path: hand the maximal run of consecutive Access
				// events — cut at the warmup boundary and the Step limit
				// so per-access bookkeeping stays hook-free.
				j := i + 1
				for j < len(block) && block[j].Kind == trace.Access {
					j++
				}
				n := j - i
				if e.counts.Accesses < e.warmupAt {
					if room := e.warmupAt - e.counts.Accesses; uint64(n) > room {
						n = int(room)
					}
				}
				if limit > 0 {
					if room := limit - serviced; n > room {
						n = room
					}
				}
				measured := e.counts.Accesses >= e.warmupAt
				done, err := e.h.AccessBlock(block[i : i+n])
				e.counts.Events += uint64(done)
				e.counts.Accesses += uint64(done)
				serviced += done
				if measured {
					e.counts.Measured += uint64(done)
				}
				if err != nil {
					e.counts.Events++ // the failing event is consumed
					e.pos += i + done + 1
					return serviced, true, err
				}
				if done > 0 && e.counts.Accesses == e.warmupAt && e.h.Warmup != nil {
					e.h.Warmup()
				}
				i += done
				if limit > 0 && serviced >= limit {
					e.pos += i
					return serviced, true, nil
				}
				continue
			}
			e.counts.Events++
			switch ev.Kind {
			case trace.Access:
				if e.h.Access != nil {
					if err := e.h.Access(ev); err != nil {
						e.pos += i + 1
						return serviced, true, err
					}
				}
				e.counts.Accesses++
				serviced++
				if e.counts.Accesses == e.warmupAt && e.h.Warmup != nil {
					e.h.Warmup()
				}
				if e.counts.Accesses > e.warmupAt {
					e.counts.Measured++
				}
				if limit > 0 && serviced >= limit {
					e.pos += i + 1
					return serviced, true, nil
				}
			case trace.Alloc:
				if e.h.Alloc != nil {
					if err := e.h.Alloc(ev); err != nil {
						e.pos += i + 1
						return serviced, true, err
					}
				}
			case trace.Free:
				if e.h.Free != nil {
					if err := e.h.Free(ev); err != nil {
						e.pos += i + 1
						return serviced, true, err
					}
				}
			}
			i++
		}
		e.pos = e.n
	}
	return serviced, true, nil
}

// refill pulls the next block from the generator; false means the
// trace is exhausted.
func (e *Engine) refill() bool {
	if e.exhausted {
		return false
	}
	e.n = trace.FillBlock(e.g, e.buf)
	e.pos = 0
	if e.n == 0 {
		e.exhausted = true
		return false
	}
	if e.meter != nil {
		e.meter.Add(uint64(e.n))
	}
	return true
}
