package replay

import (
	"errors"
	"fmt"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/trace"
)

// script builds a small mixed-kind trace: a alternating accesses with
// an alloc/free pair every 4 accesses.
func script(accesses int) []trace.Event {
	var evs []trace.Event
	for i := 0; i < accesses; i++ {
		evs = append(evs, trace.Event{Kind: trace.Access, VA: addr.GVA(0x1000 + i*64)})
		if (i+1)%4 == 0 {
			evs = append(evs,
				trace.Event{Kind: trace.Alloc, VA: 0x9000, Size: 4096},
				trace.Event{Kind: trace.Free, VA: 0x9000, Size: 4096})
		}
	}
	return evs
}

// perEventOnly hides NextBlock so the engine takes the Next shim path.
type perEventOnly struct{ trace.Generator }

func TestEngineCountsAndOrder(t *testing.T) {
	evs := script(20)
	for _, tc := range []struct {
		name string
		gen  func() trace.Generator
	}{
		{"block", func() trace.Generator { return trace.NewSlice("s", evs) }},
		{"per-event", func() trace.Generator { return perEventOnly{trace.NewSlice("s", evs)} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var got []trace.Event
			obs := func(ev trace.Event) error { got = append(got, ev); return nil }
			e := New(tc.gen(), Hooks{Access: obs, Alloc: obs, Free: obs}, Config{BlockSize: 7})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(evs) {
				t.Fatalf("observed %d events, want %d", len(got), len(evs))
			}
			for i := range evs {
				if got[i] != evs[i] {
					t.Fatalf("event %d: got %+v want %+v", i, got[i], evs[i])
				}
			}
			c := e.Counts()
			if c.Events != uint64(len(evs)) || c.Accesses != 20 || c.Measured != 20 {
				t.Errorf("counts = %+v", c)
			}
		})
	}
}

func TestEngineWarmupBoundary(t *testing.T) {
	evs := script(10)
	var atWarmup uint64
	var seen uint64
	e := New(trace.NewSlice("s", evs), Hooks{
		Access: func(trace.Event) error { seen++; return nil },
		Warmup: func() { atWarmup = seen },
	}, Config{WarmupAccesses: 4, BlockSize: 3})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Warmup fires after the 4th access is serviced, like the hand-
	// rolled loops' seen == warmupAt reset.
	if atWarmup != 4 {
		t.Errorf("warmup fired after %d accesses, want 4", atWarmup)
	}
	if c := e.Counts(); c.Accesses != 10 || c.Measured != 6 {
		t.Errorf("counts = %+v, want 10 accesses / 6 measured", c)
	}
}

func TestEngineZeroWarmupFiresUpfront(t *testing.T) {
	var fired bool
	var before uint64
	e := New(trace.NewSlice("s", script(5)), Hooks{
		Access: func(trace.Event) error { before++; return nil },
		Warmup: func() {
			fired = true
			if before != 0 {
				t.Errorf("warmup fired after %d accesses, want 0", before)
			}
		},
	}, Config{})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("warmup never fired")
	}
	if c := e.Counts(); c.Measured != 5 {
		t.Errorf("measured = %d, want all 5", c.Measured)
	}
}

func TestEngineStepQuantum(t *testing.T) {
	// 20 accesses with alloc/free noise, quantum 6: steps of 6,6,6,2.
	e := New(trace.NewSlice("s", script(20)), Hooks{
		Access: func(trace.Event) error { return nil },
	}, Config{BlockSize: 4})
	var steps []int
	for {
		n, more, err := e.Step(6)
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			steps = append(steps, n)
		}
		if !more {
			break
		}
	}
	want := []int{6, 6, 6, 2}
	if fmt.Sprint(steps) != fmt.Sprint(want) {
		t.Errorf("quantum steps = %v, want %v", steps, want)
	}
	if c := e.Counts(); c.Accesses != 20 || c.Events != uint64(len(script(20))) {
		t.Errorf("counts = %+v", c)
	}
}

func TestEngineHookErrorStops(t *testing.T) {
	boom := errors.New("boom")
	var serviced int
	e := New(trace.NewSlice("s", script(10)), Hooks{
		Access: func(trace.Event) error {
			serviced++
			if serviced == 3 {
				return boom
			}
			return nil
		},
	}, Config{BlockSize: 2})
	if err := e.Run(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if serviced != 3 {
		t.Errorf("hook ran %d times after error, want 3", serviced)
	}
}

func TestEngineEmptyTrace(t *testing.T) {
	fired := false
	e := New(trace.NewSlice("s", nil), Hooks{Warmup: func() { fired = true }}, Config{})
	n, more, err := e.Step(5)
	if err != nil || n != 0 || more {
		t.Errorf("Step on empty = (%d, %v, %v)", n, more, err)
	}
	if !fired {
		t.Error("zero-warmup hook should fire even on an empty trace")
	}
}
