package pagetable

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/physmem"
)

func benchTable(b *testing.B, pages uint64) *Table {
	b.Helper()
	mem := physmem.New(physmem.Config{Name: "b", Size: 1 << 30})
	t, err := New(mem)
	if err != nil {
		b.Fatal(err)
	}
	for p := uint64(0); p < pages; p++ {
		if err := t.Map(p<<12, p<<12, addr.Page4K); err != nil {
			b.Fatal(err)
		}
	}
	return t
}

func BenchmarkWalk4K(b *testing.B) {
	t := benchTable(b, 4096)
	var refs []Ref
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, refs, _ = t.Walk(uint64(i%4096)<<12, refs[:0])
	}
}

func BenchmarkTranslate(b *testing.B) {
	t := benchTable(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Translate(uint64(i%4096) << 12)
	}
}

func BenchmarkMapUnmap(b *testing.B) {
	mem := physmem.New(physmem.Config{Name: "b", Size: 1 << 30})
	t, err := New(mem)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := uint64(i%65536) << 12
		if err := t.Map(va, va, addr.Page4K); err != nil {
			b.Fatal(err)
		}
		if err := t.Unmap(va, addr.Page4K); err != nil {
			b.Fatal(err)
		}
	}
}
