// Package pagetable implements the x86-64 4-level radix page table
// (PML4 → PDPT → PD → PT) used for both dimensions of translation:
// per-process guest page tables (gVA→gPA) and per-VM nested page tables
// (gPA→hPA).
//
// Table pages are allocated from the owning physical memory, so every
// page-table node has a real physical address. That matters: in a 2D
// walk, each reference the walker makes to a guest page table is itself
// a guest physical address that must be translated through the nested
// dimension — the "multiplication" of Figure 2.
package pagetable

import (
	"errors"
	"fmt"

	"vdirect/internal/addr"
)

// Allocator supplies frames for page-table pages; *physmem.Memory
// satisfies it.
type Allocator interface {
	AllocFrame() (uint64, error)
	FreeFrame(f uint64) error
}

// Errors returned by mapping operations.
var (
	ErrMisaligned    = errors.New("pagetable: address not aligned to page size")
	ErrOverlap       = errors.New("pagetable: mapping overlaps an existing mapping")
	ErrNotMapped     = errors.New("pagetable: address not mapped")
	ErrSizeClash     = errors.New("pagetable: unmap size differs from mapping size")
	ErrNotPromotable = errors.New("pagetable: region not promotable")
)

// Each page-table entry is one packed uint64, laid out like a real PTE:
// flag bits low, frame high. The accessed and dirty bits mirror the
// x86-64 A/D bits: the walker sets accessed on every traversed entry;
// software (or a write-aware caller) sets dirty on leaves. For a leaf,
// the frame field is the mapped physical page's base address shifted
// right by 12 (so 2M leaves hold a 512-aligned value); for an interior
// entry, it is the frame of the next-level table.
//
// Packing matters for simulator speed: a node's 512 words are exactly a
// 4KB table page, so the walker's read-modify-write of an entry touches
// one host cache line where the old 24-byte struct layout touched up to
// two — and page-table-heavy setup clears a third of the memory.
const (
	peP     = 1 << 0 // present
	peL     = 1 << 1 // leaf
	peA     = 1 << 2 // accessed
	peD     = 1 << 3 // dirty
	peShift = 4      // frame field, bits 63:4
)

type node struct {
	frame uint64 // physical frame holding this table page
	used  int    // number of present entries, for table reclamation
	words [addr.EntriesPerTable]uint64
	// kids holds child-node pointers for interior entries, allocated on
	// the first child: leaf-only tables (the vast majority) carry none.
	kids []*node
}

// setChild installs an interior entry pointing at child.
func (n *node) setChild(idx uint, child *node) {
	if n.kids == nil {
		n.kids = make([]*node, addr.EntriesPerTable)
	}
	n.words[idx] = peP | child.frame<<peShift
	n.kids[idx] = child
	n.used++
}

// wcEntry is one walk-cache slot: a host-side shortcut for Walk, keyed
// by a 2M-aligned va prefix whose path down to a PT (level-3) node has
// been descended before. Because the three interior PTE addresses are a
// pure function of the prefix, a cached walk re-emits them verbatim and
// reads only the PT entry — one load instead of four dependent chases.
// This is simulator-host state only: the modeled references, accessed
// bits on leaves, translations, and costs are identical either way.
type wcEntry struct {
	tag  uint64                  // va>>21, tagged valid by gen != 0 match
	gen  uint64                  // table generation the entry was filled under
	pt   *node                   // the PT node covering the prefix
	refs [addr.Levels - 1]uint64 // interior PTE addresses, levels 0..2
}

const (
	wcSlots = 256 // direct-mapped; covers 512MB of 4K-mapped va
	wcMask  = wcSlots - 1
)

// Table is one 4-level page table rooted at a CR3-like frame.
type Table struct {
	alloc      Allocator
	root       *node
	tablePages uint64 // page-table pages currently allocated
	mappings   uint64 // live leaf mappings

	// gen invalidates the walk cache wholesale: operations that can free
	// a table page (Unmap, Promote2M, Destroy) bump it, since a cached
	// *node must never outlive its page. Map and Remap only add or edit
	// entry words that cached walks re-read live, so they leave gen
	// alone.
	gen uint64
	wc  [wcSlots]wcEntry
}

// New creates an empty table, allocating its root page.
func New(alloc Allocator) (*Table, error) {
	// gen starts at 1 so the zero-valued walk-cache entries never match.
	t := &Table{alloc: alloc, gen: 1}
	root, err := t.newNode()
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func (t *Table) newNode() (*node, error) {
	f, err := t.alloc.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("pagetable: allocating table page: %w", err)
	}
	t.tablePages++
	return &node{frame: f}, nil
}

// Root returns the physical frame of the root (CR3 equivalent).
func (t *Table) Root() uint64 { return t.root.frame }

// TablePages returns the number of physical pages the table occupies.
func (t *Table) TablePages() uint64 { return t.tablePages }

// Mappings returns the number of live leaf mappings.
func (t *Table) Mappings() uint64 { return t.mappings }

// leafLevel returns the level at which a page of size s terminates.
func leafLevel(s addr.PageSize) int {
	switch s {
	case addr.Page4K:
		return addr.LvlPT
	case addr.Page2M:
		return addr.LvlPD
	case addr.Page1G:
		return addr.LvlPDPT
	}
	panic("pagetable: invalid page size")
}

// Map installs a translation va → pa of the given page size. Both
// addresses must be size-aligned. Mapping over an existing translation
// (of any size) fails with ErrOverlap.
func (t *Table) Map(va, pa uint64, s addr.PageSize) error {
	if !addr.IsAligned(va, s) || !addr.IsAligned(pa, s) {
		return ErrMisaligned
	}
	target := leafLevel(s)
	n := t.root
	for lvl := 0; lvl < target; lvl++ {
		idx := addr.Index(va, lvl)
		w := n.words[idx]
		if w&(peP|peL) == peP|peL {
			return ErrOverlap // a larger page already covers this va
		}
		if w&peP == 0 {
			child, err := t.newNode()
			if err != nil {
				return err
			}
			n.setChild(idx, child)
		}
		n = n.kids[idx]
	}
	idx := addr.Index(va, target)
	if n.words[idx]&peP != 0 {
		return ErrOverlap // smaller or equal mapping already present
	}
	n.words[idx] = peP | peL | (pa>>addr.PageShift4K)<<peShift
	n.used++
	t.mappings++
	return nil
}

// MapRange4K installs n consecutive 4K translations va+i·4K → pa+i·4K,
// equivalent to n Map calls in ascending order — same overlap checks,
// same table-page allocation order — but descending once per 2M span
// instead of once per page. It returns how many pages were mapped
// before any error, so callers can account for (or roll back) a
// partially installed run.
func (t *Table) MapRange4K(va, pa uint64, n uint64) (uint64, error) {
	if !addr.IsAligned(va, addr.Page4K) || !addr.IsAligned(pa, addr.Page4K) {
		return 0, ErrMisaligned
	}
	var done uint64
	for done < n {
		// Descend to the PT covering va, allocating interior tables
		// exactly as Map would.
		nd := t.root
		for lvl := 0; lvl < addr.LvlPT; lvl++ {
			idx := addr.Index(va, lvl)
			w := nd.words[idx]
			if w&(peP|peL) == peP|peL {
				return done, ErrOverlap
			}
			if w&peP == 0 {
				child, err := t.newNode()
				if err != nil {
					return done, err
				}
				nd.setChild(idx, child)
			}
			nd = nd.kids[idx]
		}
		// Fill leaf entries until the PT ends or the run is exhausted.
		idx := addr.Index(va, addr.LvlPT)
		for idx < addr.EntriesPerTable && done < n {
			if nd.words[idx]&peP != 0 {
				return done, ErrOverlap
			}
			nd.words[idx] = peP | peL | (pa>>addr.PageShift4K)<<peShift
			nd.used++
			t.mappings++
			idx++
			done++
			va += addr.PageSize4K
			pa += addr.PageSize4K
		}
	}
	return done, nil
}

// Unmap removes the translation for va, which must be mapped with
// exactly page size s. Empty intermediate tables are reclaimed.
func (t *Table) Unmap(va uint64, s addr.PageSize) error {
	if !addr.IsAligned(va, s) {
		return ErrMisaligned
	}
	target := leafLevel(s)
	var path [addr.Levels]*node
	n := t.root
	for lvl := 0; lvl < target; lvl++ {
		path[lvl] = n
		idx := addr.Index(va, lvl)
		w := n.words[idx]
		if w&peP == 0 {
			return ErrNotMapped
		}
		if w&peL != 0 {
			return ErrSizeClash
		}
		n = n.kids[idx]
	}
	path[target] = n
	idx := addr.Index(va, target)
	w := n.words[idx]
	if w&peP == 0 {
		return ErrNotMapped
	}
	if w&peL == 0 {
		return ErrSizeClash
	}
	n.words[idx] = 0
	n.used--
	t.mappings--
	// Reclaim empty tables bottom-up (never the root).
	for lvl := target; lvl > 0; lvl-- {
		cur := path[lvl]
		if cur.used > 0 {
			break
		}
		parent := path[lvl-1]
		pidx := addr.Index(va, lvl-1)
		parent.words[pidx] = 0
		parent.kids[pidx] = nil
		parent.used--
		if err := t.alloc.FreeFrame(cur.frame); err != nil {
			return fmt.Errorf("pagetable: reclaiming table page: %w", err)
		}
		t.tablePages--
		t.gen++ // a table page was freed; cached node pointers may dangle
	}
	return nil
}

// Ref is one page-walk memory reference: the physical address of the
// PTE the walker read, and the level it belongs to.
type Ref struct {
	Addr  uint64
	Level int
}

// Walk translates va, recording each memory reference in refs (appended
// to the provided buffer to avoid per-walk allocation). On success it
// returns the physical address, the mapping's page size, and refs.
// A translation failure returns ok=false with the references performed
// before the walk aborted — real walkers touch memory before faulting.
func (t *Table) Walk(va uint64, refs []Ref) (pa uint64, s addr.PageSize, out []Ref, ok bool) {
	return t.WalkFrom(va, 0, refs)
}

// WalkFrom is Walk with a paging-structure-cache skip applied at the
// source: the descent still reads (and accessed-marks) every level, but
// references for levels below skip are not emitted — except the walk's
// final reference (the leaf, or the faulting level), which is always
// emitted, so the result equals Walk's refs[min(skip, len(refs)-1):]
// exactly without materializing the skipped prefix.
func (t *Table) WalkFrom(va uint64, skip int, refs []Ref) (pa uint64, s addr.PageSize, out []Ref, ok bool) {
	// Walk-cache fast path: a previous walk of this 2M prefix reached a
	// PT node. Its three interior PTE addresses are a pure function of
	// the prefix, so only the PT entry itself is read live. The entry
	// word is re-read on every walk, so concurrent Map/Remap edits are
	// observed; only page-freeing operations invalidate (via gen).
	e := &t.wc[va>>21&wcMask]
	if e.tag == va>>21 && e.gen == t.gen {
		n := e.pt
		idx := va >> addr.PageShift4K & (addr.EntriesPerTable - 1)
		if skip > addr.LvlPT {
			skip = addr.LvlPT
		}
		for lvl := skip; lvl < addr.LvlPT; lvl++ {
			refs = append(refs, Ref{Addr: e.refs[lvl], Level: lvl})
		}
		refs = append(refs, Ref{Addr: n.frame<<addr.PageShift4K + idx*8, Level: addr.LvlPT})
		w := n.words[idx]
		if w&peP == 0 {
			return 0, 0, refs, false
		}
		if w&peA == 0 {
			n.words[idx] = w | peA
		}
		return w>>peShift<<addr.PageShift4K + va&(addr.PageSize4K-1),
			addr.Page4K, refs, true
	}

	n := t.root
	// frame tracks the current table page without re-reading the node
	// header: after the root it comes from the parent's entry word, so
	// each level touches exactly one host cache line of table state.
	frame := n.frame
	shift := uint(addr.PageShift4K + 9*(addr.Levels-1))
	// interior collects the skipped levels' PTE addresses anyway — the
	// walk cache needs all three on a 4K-leaf fill regardless of skip.
	var interior [addr.Levels - 1]uint64
	for lvl := 0; lvl < addr.Levels; lvl++ {
		idx := va >> shift & (addr.EntriesPerTable - 1)
		shift -= 9
		a := frame<<addr.PageShift4K + idx*8
		if lvl < addr.Levels-1 {
			interior[lvl] = a
		}
		if lvl >= skip {
			refs = append(refs, Ref{Addr: a, Level: lvl})
		}
		w := n.words[idx]
		if w&peP == 0 {
			if lvl < skip {
				refs = append(refs, Ref{Addr: a, Level: lvl})
			}
			return 0, 0, refs, false
		}
		if w&peA == 0 {
			// Store only when the bit actually flips: re-walked entries
			// (the common case) then leave the node line clean instead of
			// forcing a write-back per walk.
			n.words[idx] = w | peA
		}
		if w&peL != 0 {
			switch lvl {
			case addr.LvlPDPT:
				s = addr.Page1G
			case addr.LvlPD:
				s = addr.Page2M
			case addr.LvlPT:
				s = addr.Page4K
			default:
				panic("pagetable: leaf at PML4 level")
			}
			if lvl < skip {
				refs = append(refs, Ref{Addr: a, Level: lvl})
			}
			base := w >> peShift << addr.PageShift4K
			if lvl == addr.LvlPT {
				// Remember the path for subsequent walks in this 2M span.
				// Only 4K-leaf paths are cached: they are the only ones
				// whose interior shape the fast path can assume.
				*e = wcEntry{tag: va >> 21, gen: t.gen, pt: n}
				e.refs = interior
			}
			return base + addr.Offset(va, s), s, refs, true
		}
		frame = w >> peShift
		n = n.kids[idx]
	}
	panic("pagetable: walk fell off the tree")
}

// WalkFast attempts the walk-cache fast path only: if the 2M prefix's
// PT node is cached, current, and holds a present leaf for va, it
// performs the cached walk — emitting references for levels ≥ skipOf()
// plus the leaf — and returns fast=true. Otherwise it touches nothing
// and returns fast=false for the caller to fall back to Walk.
//
// skipOf runs only once success is guaranteed, so a skip source that
// must not be probed on walks that fault (the nested PWC, whose LRU
// state a fault-path probe would perturb) can be deferred into it: a
// fast walk cannot fault, making probe-before-emit observationally
// identical to probe-after-walk.
func (t *Table) WalkFast(va uint64, skipOf func() int, refs []Ref) (pa uint64, s addr.PageSize, out []Ref, fast bool) {
	e := &t.wc[va>>21&wcMask]
	if e.tag != va>>21 || e.gen != t.gen {
		return 0, 0, refs, false
	}
	n := e.pt
	idx := va >> addr.PageShift4K & (addr.EntriesPerTable - 1)
	w := n.words[idx]
	if w&peP == 0 {
		return 0, 0, refs, false
	}
	skip := skipOf()
	if skip > addr.LvlPT {
		skip = addr.LvlPT
	}
	for lvl := skip; lvl < addr.LvlPT; lvl++ {
		refs = append(refs, Ref{Addr: e.refs[lvl], Level: lvl})
	}
	refs = append(refs, Ref{Addr: n.frame<<addr.PageShift4K + idx*8, Level: addr.LvlPT})
	if w&peA == 0 {
		n.words[idx] = w | peA
	}
	return w>>peShift<<addr.PageShift4K + va&(addr.PageSize4K-1),
		addr.Page4K, refs, true
}

// FastProbe is a handle to a confirmed 4K-leaf walk-cache path,
// returned by Probe4K and consumed by Emit. It exists so a caller can
// interpose modeled side effects (a PWC skip probe, which must not run
// on walks that fall back to the general path) between confirming the
// fast path and emitting its references, without re-reading the walk
// cache and table node a second time.
type FastProbe struct {
	e   *wcEntry
	nd  *node
	idx uint64
	w   uint64
}

// Probe4K checks whether the walk-cache fast path holds a present 4K
// leaf for va: the 2M prefix's PT node is cached, current, and the
// entry is present. It touches no modeled state. The returned handle is
// only valid until the next table mutation.
func (t *Table) Probe4K(va uint64) (FastProbe, bool) {
	e := &t.wc[va>>21&wcMask]
	if e.tag != va>>21 || e.gen != t.gen {
		return FastProbe{}, false
	}
	nd := e.pt
	idx := va >> addr.PageShift4K & (addr.EntriesPerTable - 1)
	w := nd.words[idx]
	if w&peP == 0 {
		return FastProbe{}, false
	}
	return FastProbe{e: e, nd: nd, idx: idx, w: w}, true
}

// Emit completes the fast walk the handle confirmed: reference
// addresses for levels [skip, LvlPT] in walk order (fixed array, no
// slice traffic), the leaf accessed-bit store-on-flip, and the
// translated physical address — identical modeled behaviour to
// WalkFast with the same skip.
func (f FastProbe) Emit(va uint64, skip int) (pa uint64, refs [addr.Levels]uint64, n int) {
	if skip > addr.LvlPT {
		skip = addr.LvlPT
	}
	for lvl := skip; lvl < addr.LvlPT; lvl++ {
		refs[n] = f.e.refs[lvl]
		n++
	}
	refs[n] = f.nd.frame<<addr.PageShift4K + f.idx*8
	n++
	if f.w&peA == 0 {
		f.nd.words[f.idx] = f.w | peA
	}
	return f.w>>peShift<<addr.PageShift4K + va&(addr.PageSize4K-1), refs, n
}

// Translate is Walk without reference recording, for software paths
// (fault handlers, page sharing scans) that don't model hardware cost.
func (t *Table) Translate(va uint64) (pa uint64, s addr.PageSize, ok bool) {
	n := t.root
	for lvl := 0; lvl < addr.Levels; lvl++ {
		idx := addr.Index(va, lvl)
		w := n.words[idx]
		if w&peP == 0 {
			return 0, 0, false
		}
		if w&peL != 0 {
			switch lvl {
			case addr.LvlPDPT:
				s = addr.Page1G
			case addr.LvlPD:
				s = addr.Page2M
			default:
				s = addr.Page4K
			}
			return w>>peShift<<addr.PageShift4K + addr.Offset(va, s), s, true
		}
		n = n.kids[idx]
	}
	return 0, 0, false
}

// Promote2M replaces 512 4K mappings covering the 2M-aligned region at
// va with a single 2M mapping, provided all 512 exist and their frames
// are physically contiguous and 2M-aligned — the transparent-huge-page
// promotion rule (§VIII, THP configuration).
func (t *Table) Promote2M(va uint64) error {
	if !addr.IsAligned(va, addr.Page2M) {
		return ErrMisaligned
	}
	// Locate the PT covering the region.
	n := t.root
	for lvl := 0; lvl < addr.LvlPT; lvl++ {
		idx := addr.Index(va, lvl)
		w := n.words[idx]
		if w&peP == 0 || w&peL != 0 {
			return ErrNotPromotable
		}
		n = n.kids[idx]
	}
	baseFrame := n.words[0] >> peShift
	if n.words[0]&(peP|peL) != peP|peL || baseFrame%512 != 0 {
		return ErrNotPromotable
	}
	for i := 1; i < addr.EntriesPerTable; i++ {
		w := n.words[i]
		if w&(peP|peL) != peP|peL || w>>peShift != baseFrame+uint64(i) {
			return ErrNotPromotable
		}
	}
	// Install the 2M leaf in the PD and free the PT page.
	pd := t.root
	for lvl := 0; lvl < addr.LvlPD; lvl++ {
		pd = pd.kids[addr.Index(va, lvl)]
	}
	pdi := addr.Index(va, addr.LvlPD)
	pd.words[pdi] = peP | peL | baseFrame<<peShift
	pd.kids[pdi] = nil
	if err := t.alloc.FreeFrame(n.frame); err != nil {
		return fmt.Errorf("pagetable: freeing promoted PT: %w", err)
	}
	t.tablePages--
	t.mappings -= addr.EntriesPerTable - 1
	t.gen++ // the PT page was freed; drop any cached path through it
	return nil
}

// Remap changes the physical target of an existing leaf mapping without
// altering its size — how compaction move notifications and escape-
// filter remapping are applied.
func (t *Table) Remap(va, newPA uint64) error {
	n := t.root
	for lvl := 0; lvl < addr.Levels; lvl++ {
		idx := addr.Index(va, lvl)
		w := n.words[idx]
		if w&peP == 0 {
			return ErrNotMapped
		}
		if w&peL != 0 {
			var s addr.PageSize
			switch lvl {
			case addr.LvlPDPT:
				s = addr.Page1G
			case addr.LvlPD:
				s = addr.Page2M
			default:
				s = addr.Page4K
			}
			if !addr.IsAligned(newPA, s) {
				return ErrMisaligned
			}
			n.words[idx] = w&(peP|peL|peA|peD) | (newPA>>addr.PageShift4K)<<peShift
			return nil
		}
		n = n.kids[idx]
	}
	return ErrNotMapped
}

// MarkDirty sets the dirty bit on the leaf mapping covering va, as a
// write through the translation would. Returns ErrNotMapped when no
// mapping covers va.
func (t *Table) MarkDirty(va uint64) error {
	n := t.root
	for lvl := 0; lvl < addr.Levels; lvl++ {
		idx := addr.Index(va, lvl)
		w := n.words[idx]
		if w&peP == 0 {
			return ErrNotMapped
		}
		if w&peL != 0 {
			n.words[idx] = w | peD | peA
			return nil
		}
		n = n.kids[idx]
	}
	return ErrNotMapped
}

// HarvestDirty calls fn for every dirty leaf mapping and clears its
// dirty bit — the scan a pre-copy live migration performs per pass.
// It returns the number of dirty pages found.
func (t *Table) HarvestDirty(fn func(va uint64, s addr.PageSize)) int {
	return t.harvest(t.root, 0, 0, fn)
}

func (t *Table) harvest(n *node, lvl int, vaBase uint64, fn func(va uint64, s addr.PageSize)) int {
	shift := uint(addr.PageShift4K + 9*(addr.Levels-1-lvl))
	found := 0
	for i := 0; i < addr.EntriesPerTable; i++ {
		w := n.words[i]
		if w&peP == 0 {
			continue
		}
		va := vaBase | uint64(i)<<shift
		if w&peL != 0 {
			if w&peD != 0 {
				n.words[i] = w &^ peD
				var s addr.PageSize
				switch lvl {
				case addr.LvlPDPT:
					s = addr.Page1G
				case addr.LvlPD:
					s = addr.Page2M
				default:
					s = addr.Page4K
				}
				fn(va, s)
				found++
			}
			continue
		}
		found += t.harvest(n.kids[i], lvl+1, va, fn)
	}
	return found
}

// Accessed reports whether the leaf covering va has its accessed bit
// set (and clears it when clear is true), supporting working-set
// sampling.
func (t *Table) Accessed(va uint64, clear bool) (bool, error) {
	n := t.root
	for lvl := 0; lvl < addr.Levels; lvl++ {
		idx := addr.Index(va, lvl)
		w := n.words[idx]
		if w&peP == 0 {
			return false, ErrNotMapped
		}
		if w&peL != 0 {
			was := w&peA != 0
			if clear {
				n.words[idx] = w &^ peA
			}
			return was, nil
		}
		n = n.kids[idx]
	}
	return false, ErrNotMapped
}

// VisitLeaves calls fn for every leaf mapping in ascending va order.
// Returning false from fn stops the visit.
func (t *Table) VisitLeaves(fn func(va, pa uint64, s addr.PageSize) bool) {
	t.visit(t.root, 0, 0, fn)
}

func (t *Table) visit(n *node, lvl int, vaBase uint64, fn func(va, pa uint64, s addr.PageSize) bool) bool {
	shift := uint(addr.PageShift4K + 9*(addr.Levels-1-lvl))
	for i := 0; i < addr.EntriesPerTable; i++ {
		w := n.words[i]
		if w&peP == 0 {
			continue
		}
		va := vaBase | uint64(i)<<shift
		if w&peL != 0 {
			var s addr.PageSize
			switch lvl {
			case addr.LvlPDPT:
				s = addr.Page1G
			case addr.LvlPD:
				s = addr.Page2M
			default:
				s = addr.Page4K
			}
			if !fn(va, w>>peShift<<addr.PageShift4K, s) {
				return false
			}
			continue
		}
		if !t.visit(n.kids[i], lvl+1, va, fn) {
			return false
		}
	}
	return true
}

// Destroy releases every page-table page back to the allocator. The
// table must not be used afterwards.
func (t *Table) Destroy() error {
	if err := t.destroy(t.root, 0); err != nil {
		return err
	}
	t.root = nil
	t.gen++
	return nil
}

func (t *Table) destroy(n *node, lvl int) error {
	for i, w := range n.words {
		if w&(peP|peL) == peP {
			if err := t.destroy(n.kids[i], lvl+1); err != nil {
				return err
			}
		}
	}
	if err := t.alloc.FreeFrame(n.frame); err != nil {
		return err
	}
	t.tablePages--
	return nil
}
