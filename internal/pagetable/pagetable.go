// Package pagetable implements the x86-64 4-level radix page table
// (PML4 → PDPT → PD → PT) used for both dimensions of translation:
// per-process guest page tables (gVA→gPA) and per-VM nested page tables
// (gPA→hPA).
//
// Table pages are allocated from the owning physical memory, so every
// page-table node has a real physical address. That matters: in a 2D
// walk, each reference the walker makes to a guest page table is itself
// a guest physical address that must be translated through the nested
// dimension — the "multiplication" of Figure 2.
package pagetable

import (
	"errors"
	"fmt"

	"vdirect/internal/addr"
)

// Allocator supplies frames for page-table pages; *physmem.Memory
// satisfies it.
type Allocator interface {
	AllocFrame() (uint64, error)
	FreeFrame(f uint64) error
}

// Errors returned by mapping operations.
var (
	ErrMisaligned    = errors.New("pagetable: address not aligned to page size")
	ErrOverlap       = errors.New("pagetable: mapping overlaps an existing mapping")
	ErrNotMapped     = errors.New("pagetable: address not mapped")
	ErrSizeClash     = errors.New("pagetable: unmap size differs from mapping size")
	ErrNotPromotable = errors.New("pagetable: region not promotable")
)

type entry struct {
	present bool
	leaf    bool
	// accessed and dirty mirror the x86-64 A/D bits: the walker sets
	// accessed on every traversed entry; software (or a write-aware
	// caller) sets dirty on leaves.
	accessed bool
	dirty    bool
	// For a leaf, frameBase is the mapped physical page's base address
	// shifted right by 12 (so 2M leaves hold a 512-aligned value). For
	// an interior entry, it is the frame of the next-level table.
	frameBase uint64
	child     *node // interior only
}

type node struct {
	frame   uint64 // physical frame holding this table page
	entries [addr.EntriesPerTable]entry
	used    int // number of present entries, for table reclamation
}

// Table is one 4-level page table rooted at a CR3-like frame.
type Table struct {
	alloc      Allocator
	root       *node
	tablePages uint64 // page-table pages currently allocated
	mappings   uint64 // live leaf mappings
}

// New creates an empty table, allocating its root page.
func New(alloc Allocator) (*Table, error) {
	t := &Table{alloc: alloc}
	root, err := t.newNode()
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func (t *Table) newNode() (*node, error) {
	f, err := t.alloc.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("pagetable: allocating table page: %w", err)
	}
	t.tablePages++
	return &node{frame: f}, nil
}

// Root returns the physical frame of the root (CR3 equivalent).
func (t *Table) Root() uint64 { return t.root.frame }

// TablePages returns the number of physical pages the table occupies.
func (t *Table) TablePages() uint64 { return t.tablePages }

// Mappings returns the number of live leaf mappings.
func (t *Table) Mappings() uint64 { return t.mappings }

// leafLevel returns the level at which a page of size s terminates.
func leafLevel(s addr.PageSize) int {
	switch s {
	case addr.Page4K:
		return addr.LvlPT
	case addr.Page2M:
		return addr.LvlPD
	case addr.Page1G:
		return addr.LvlPDPT
	}
	panic("pagetable: invalid page size")
}

// Map installs a translation va → pa of the given page size. Both
// addresses must be size-aligned. Mapping over an existing translation
// (of any size) fails with ErrOverlap.
func (t *Table) Map(va, pa uint64, s addr.PageSize) error {
	if !addr.IsAligned(va, s) || !addr.IsAligned(pa, s) {
		return ErrMisaligned
	}
	target := leafLevel(s)
	n := t.root
	for lvl := 0; lvl < target; lvl++ {
		e := &n.entries[addr.Index(va, lvl)]
		if e.present && e.leaf {
			return ErrOverlap // a larger page already covers this va
		}
		if !e.present {
			child, err := t.newNode()
			if err != nil {
				return err
			}
			*e = entry{present: true, frameBase: child.frame, child: child}
			n.used++
		}
		n = e.child
	}
	e := &n.entries[addr.Index(va, target)]
	if e.present {
		return ErrOverlap // smaller or equal mapping already present
	}
	*e = entry{present: true, leaf: true, frameBase: pa >> addr.PageShift4K}
	n.used++
	t.mappings++
	return nil
}

// Unmap removes the translation for va, which must be mapped with
// exactly page size s. Empty intermediate tables are reclaimed.
func (t *Table) Unmap(va uint64, s addr.PageSize) error {
	if !addr.IsAligned(va, s) {
		return ErrMisaligned
	}
	target := leafLevel(s)
	var path [addr.Levels]*node
	n := t.root
	for lvl := 0; lvl < target; lvl++ {
		path[lvl] = n
		e := &n.entries[addr.Index(va, lvl)]
		if !e.present {
			return ErrNotMapped
		}
		if e.leaf {
			return ErrSizeClash
		}
		n = e.child
	}
	path[target] = n
	e := &n.entries[addr.Index(va, target)]
	if !e.present {
		return ErrNotMapped
	}
	if !e.leaf {
		return ErrSizeClash
	}
	*e = entry{}
	n.used--
	t.mappings--
	// Reclaim empty tables bottom-up (never the root).
	for lvl := target; lvl > 0; lvl-- {
		cur := path[lvl]
		if cur.used > 0 {
			break
		}
		parent := path[lvl-1]
		pe := &parent.entries[addr.Index(va, lvl-1)]
		*pe = entry{}
		parent.used--
		if err := t.alloc.FreeFrame(cur.frame); err != nil {
			return fmt.Errorf("pagetable: reclaiming table page: %w", err)
		}
		t.tablePages--
	}
	return nil
}

// Ref is one page-walk memory reference: the physical address of the
// PTE the walker read, and the level it belongs to.
type Ref struct {
	Addr  uint64
	Level int
}

// Walk translates va, recording each memory reference in refs (appended
// to the provided buffer to avoid per-walk allocation). On success it
// returns the physical address, the mapping's page size, and refs.
// A translation failure returns ok=false with the references performed
// before the walk aborted — real walkers touch memory before faulting.
func (t *Table) Walk(va uint64, refs []Ref) (pa uint64, s addr.PageSize, out []Ref, ok bool) {
	n := t.root
	for lvl := 0; lvl < addr.Levels; lvl++ {
		idx := addr.Index(va, lvl)
		refs = append(refs, Ref{Addr: n.frame<<addr.PageShift4K + uint64(idx)*8, Level: lvl})
		e := &n.entries[idx]
		if !e.present {
			return 0, 0, refs, false
		}
		e.accessed = true
		if e.leaf {
			switch lvl {
			case addr.LvlPDPT:
				s = addr.Page1G
			case addr.LvlPD:
				s = addr.Page2M
			case addr.LvlPT:
				s = addr.Page4K
			default:
				panic("pagetable: leaf at PML4 level")
			}
			base := e.frameBase << addr.PageShift4K
			return base + addr.Offset(va, s), s, refs, true
		}
		n = e.child
	}
	panic("pagetable: walk fell off the tree")
}

// Translate is Walk without reference recording, for software paths
// (fault handlers, page sharing scans) that don't model hardware cost.
func (t *Table) Translate(va uint64) (pa uint64, s addr.PageSize, ok bool) {
	n := t.root
	for lvl := 0; lvl < addr.Levels; lvl++ {
		e := &n.entries[addr.Index(va, lvl)]
		if !e.present {
			return 0, 0, false
		}
		if e.leaf {
			switch lvl {
			case addr.LvlPDPT:
				s = addr.Page1G
			case addr.LvlPD:
				s = addr.Page2M
			default:
				s = addr.Page4K
			}
			return e.frameBase<<addr.PageShift4K + addr.Offset(va, s), s, true
		}
		n = e.child
	}
	return 0, 0, false
}

// Promote2M replaces 512 4K mappings covering the 2M-aligned region at
// va with a single 2M mapping, provided all 512 exist and their frames
// are physically contiguous and 2M-aligned — the transparent-huge-page
// promotion rule (§VIII, THP configuration).
func (t *Table) Promote2M(va uint64) error {
	if !addr.IsAligned(va, addr.Page2M) {
		return ErrMisaligned
	}
	// Locate the PT covering the region.
	n := t.root
	for lvl := 0; lvl < addr.LvlPT; lvl++ {
		e := &n.entries[addr.Index(va, lvl)]
		if !e.present || e.leaf {
			return ErrNotPromotable
		}
		n = e.child
	}
	base := n.entries[0]
	if !base.present || !base.leaf || base.frameBase%512 != 0 {
		return ErrNotPromotable
	}
	for i := 1; i < addr.EntriesPerTable; i++ {
		e := n.entries[i]
		if !e.present || !e.leaf || e.frameBase != base.frameBase+uint64(i) {
			return ErrNotPromotable
		}
	}
	// Install the 2M leaf in the PD and free the PT page.
	pd := t.root
	for lvl := 0; lvl < addr.LvlPD; lvl++ {
		pd = pd.entries[addr.Index(va, lvl)].child
	}
	pde := &pd.entries[addr.Index(va, addr.LvlPD)]
	*pde = entry{present: true, leaf: true, frameBase: base.frameBase}
	if err := t.alloc.FreeFrame(n.frame); err != nil {
		return fmt.Errorf("pagetable: freeing promoted PT: %w", err)
	}
	t.tablePages--
	t.mappings -= addr.EntriesPerTable - 1
	return nil
}

// Remap changes the physical target of an existing leaf mapping without
// altering its size — how compaction move notifications and escape-
// filter remapping are applied.
func (t *Table) Remap(va, newPA uint64) error {
	n := t.root
	for lvl := 0; lvl < addr.Levels; lvl++ {
		e := &n.entries[addr.Index(va, lvl)]
		if !e.present {
			return ErrNotMapped
		}
		if e.leaf {
			var s addr.PageSize
			switch lvl {
			case addr.LvlPDPT:
				s = addr.Page1G
			case addr.LvlPD:
				s = addr.Page2M
			default:
				s = addr.Page4K
			}
			if !addr.IsAligned(newPA, s) {
				return ErrMisaligned
			}
			e.frameBase = newPA >> addr.PageShift4K
			return nil
		}
		n = e.child
	}
	return ErrNotMapped
}

// MarkDirty sets the dirty bit on the leaf mapping covering va, as a
// write through the translation would. Returns ErrNotMapped when no
// mapping covers va.
func (t *Table) MarkDirty(va uint64) error {
	n := t.root
	for lvl := 0; lvl < addr.Levels; lvl++ {
		e := &n.entries[addr.Index(va, lvl)]
		if !e.present {
			return ErrNotMapped
		}
		if e.leaf {
			e.dirty = true
			e.accessed = true
			return nil
		}
		n = e.child
	}
	return ErrNotMapped
}

// HarvestDirty calls fn for every dirty leaf mapping and clears its
// dirty bit — the scan a pre-copy live migration performs per pass.
// It returns the number of dirty pages found.
func (t *Table) HarvestDirty(fn func(va uint64, s addr.PageSize)) int {
	return t.harvest(t.root, 0, 0, fn)
}

func (t *Table) harvest(n *node, lvl int, vaBase uint64, fn func(va uint64, s addr.PageSize)) int {
	shift := uint(addr.PageShift4K + 9*(addr.Levels-1-lvl))
	found := 0
	for i := 0; i < addr.EntriesPerTable; i++ {
		e := &n.entries[i]
		if !e.present {
			continue
		}
		va := vaBase | uint64(i)<<shift
		if e.leaf {
			if e.dirty {
				e.dirty = false
				var s addr.PageSize
				switch lvl {
				case addr.LvlPDPT:
					s = addr.Page1G
				case addr.LvlPD:
					s = addr.Page2M
				default:
					s = addr.Page4K
				}
				fn(va, s)
				found++
			}
			continue
		}
		found += t.harvest(e.child, lvl+1, va, fn)
	}
	return found
}

// Accessed reports whether the leaf covering va has its accessed bit
// set (and clears it when clear is true), supporting working-set
// sampling.
func (t *Table) Accessed(va uint64, clear bool) (bool, error) {
	n := t.root
	for lvl := 0; lvl < addr.Levels; lvl++ {
		e := &n.entries[addr.Index(va, lvl)]
		if !e.present {
			return false, ErrNotMapped
		}
		if e.leaf {
			was := e.accessed
			if clear {
				e.accessed = false
			}
			return was, nil
		}
		n = e.child
	}
	return false, ErrNotMapped
}

// VisitLeaves calls fn for every leaf mapping in ascending va order.
// Returning false from fn stops the visit.
func (t *Table) VisitLeaves(fn func(va, pa uint64, s addr.PageSize) bool) {
	t.visit(t.root, 0, 0, fn)
}

func (t *Table) visit(n *node, lvl int, vaBase uint64, fn func(va, pa uint64, s addr.PageSize) bool) bool {
	shift := uint(addr.PageShift4K + 9*(addr.Levels-1-lvl))
	for i := 0; i < addr.EntriesPerTable; i++ {
		e := &n.entries[i]
		if !e.present {
			continue
		}
		va := vaBase | uint64(i)<<shift
		if e.leaf {
			var s addr.PageSize
			switch lvl {
			case addr.LvlPDPT:
				s = addr.Page1G
			case addr.LvlPD:
				s = addr.Page2M
			default:
				s = addr.Page4K
			}
			if !fn(va, e.frameBase<<addr.PageShift4K, s) {
				return false
			}
			continue
		}
		if !t.visit(e.child, lvl+1, va, fn) {
			return false
		}
	}
	return true
}

// Destroy releases every page-table page back to the allocator. The
// table must not be used afterwards.
func (t *Table) Destroy() error {
	if err := t.destroy(t.root, 0); err != nil {
		return err
	}
	t.root = nil
	return nil
}

func (t *Table) destroy(n *node, lvl int) error {
	for i := range n.entries {
		e := &n.entries[i]
		if e.present && !e.leaf {
			if err := t.destroy(e.child, lvl+1); err != nil {
				return err
			}
		}
	}
	if err := t.alloc.FreeFrame(n.frame); err != nil {
		return err
	}
	t.tablePages--
	return nil
}
