package pagetable

import (
	"testing"
	"testing/quick"

	"vdirect/internal/addr"
	"vdirect/internal/physmem"
	"vdirect/internal/trace"
)

func newTable(t *testing.T) (*Table, *physmem.Memory) {
	t.Helper()
	mem := physmem.New(physmem.Config{Name: "pt", Size: 64 << 20})
	tbl, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, mem
}

func TestMapWalk4K(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Map(0x7f0000001000, 0x2000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	pa, s, refs, ok := tbl.Walk(0x7f0000001234, nil)
	if !ok {
		t.Fatal("walk failed")
	}
	if pa != 0x2234 {
		t.Errorf("pa = %#x, want 0x2234", pa)
	}
	if s != addr.Page4K {
		t.Errorf("size = %v", s)
	}
	if len(refs) != 4 {
		t.Errorf("4K walk made %d references, want 4", len(refs))
	}
	for i, r := range refs {
		if r.Level != i {
			t.Errorf("ref %d at level %d", i, r.Level)
		}
	}
}

func TestWalkReferenceAddressesAreDistinctTablePages(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Map(0x1000, 0x5000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	_, _, refs, ok := tbl.Walk(0x1000, nil)
	if !ok || len(refs) != 4 {
		t.Fatal("walk shape wrong")
	}
	pages := map[uint64]bool{}
	for _, r := range refs {
		pages[r.Addr>>12] = true
	}
	if len(pages) != 4 {
		t.Errorf("walk touched %d distinct table pages, want 4", len(pages))
	}
	if refs[0].Addr>>12 != tbl.Root() {
		t.Error("first reference is not in the root table")
	}
}

func TestMapWalk2M1G(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Map(0x40000000, 0x80000000, addr.Page1G); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(0x200000, 0x600000, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	pa, s, refs, ok := tbl.Walk(0x40000000+12345, nil)
	if !ok || pa != 0x80000000+12345 || s != addr.Page1G {
		t.Errorf("1G walk: pa=%#x s=%v ok=%v", pa, s, ok)
	}
	if len(refs) != 2 {
		t.Errorf("1G walk made %d refs, want 2", len(refs))
	}
	pa, s, refs, ok = tbl.Walk(0x200000+999, nil)
	if !ok || pa != 0x600000+999 || s != addr.Page2M {
		t.Errorf("2M walk: pa=%#x s=%v ok=%v", pa, s, ok)
	}
	if len(refs) != 3 {
		t.Errorf("2M walk made %d refs, want 3", len(refs))
	}
}

func TestMisalignedMap(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Map(0x1234, 0x2000, addr.Page4K); err != ErrMisaligned {
		t.Errorf("misaligned va err = %v", err)
	}
	if err := tbl.Map(0x1000, 0x2100, addr.Page4K); err != ErrMisaligned {
		t.Errorf("misaligned pa err = %v", err)
	}
	if err := tbl.Map(0x1000, 0x200000, addr.Page2M); err != ErrMisaligned {
		t.Errorf("misaligned 2M va err = %v", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Map(0x200000, 0x400000, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	// Same va again.
	if err := tbl.Map(0x200000, 0x800000, addr.Page2M); err != ErrOverlap {
		t.Errorf("dup 2M err = %v", err)
	}
	// 4K inside an existing 2M.
	if err := tbl.Map(0x201000, 0x1000, addr.Page4K); err != ErrOverlap {
		t.Errorf("4K under 2M err = %v", err)
	}
	// 2M over existing 4K.
	if err := tbl.Map(0x400000+0x1000, 0x1000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(0x400000, 0xa00000, addr.Page2M); err != ErrOverlap {
		t.Errorf("2M over 4K err = %v", err)
	}
}

func TestWalkMissRecordsPartialRefs(t *testing.T) {
	tbl, _ := newTable(t)
	_, _, refs, ok := tbl.Walk(0xdead000, nil)
	if ok {
		t.Fatal("walk of unmapped va succeeded")
	}
	if len(refs) != 1 {
		t.Errorf("unmapped walk made %d refs, want 1 (root miss)", len(refs))
	}
	// Map a sibling so intermediate levels exist, then walk a miss that
	// shares upper levels.
	if err := tbl.Map(0x1000, 0x1000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	_, _, refs, ok = tbl.Walk(0x3000, nil)
	if ok || len(refs) != 4 {
		t.Errorf("near-miss walk: ok=%v refs=%d, want 4 refs then fault", ok, len(refs))
	}
}

func TestUnmapAndReclaim(t *testing.T) {
	tbl, _ := newTable(t)
	base := tbl.TablePages()
	if err := tbl.Map(0x1000, 0x1000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if tbl.TablePages() != base+3 {
		t.Errorf("table pages after map = %d, want %d", tbl.TablePages(), base+3)
	}
	if err := tbl.Unmap(0x1000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if tbl.TablePages() != base {
		t.Errorf("table pages after unmap = %d, want %d (reclaimed)", tbl.TablePages(), base)
	}
	if tbl.Mappings() != 0 {
		t.Errorf("mappings = %d", tbl.Mappings())
	}
	if err := tbl.Unmap(0x1000, addr.Page4K); err != ErrNotMapped {
		t.Errorf("double unmap err = %v", err)
	}
}

func TestUnmapSizeClash(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Map(0x200000, 0x400000, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Unmap(0x200000, addr.Page4K); err != ErrSizeClash {
		t.Errorf("unmap 4K of 2M err = %v", err)
	}
	if err := tbl.Map(0x1000, 0x1000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Unmap(0x0, addr.Page2M); err != ErrSizeClash {
		t.Errorf("unmap 2M of 4K err = %v", err)
	}
}

func TestSharedIntermediateNotReclaimed(t *testing.T) {
	tbl, _ := newTable(t)
	// Two 4K pages share PML4/PDPT/PD/PT.
	tbl.Map(0x1000, 0x1000, addr.Page4K)
	tbl.Map(0x2000, 0x2000, addr.Page4K)
	pages := tbl.TablePages()
	if err := tbl.Unmap(0x1000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if tbl.TablePages() != pages {
		t.Error("shared tables reclaimed while sibling mapping lives")
	}
	if _, _, ok := tbl.Translate(0x2fff); !ok {
		t.Error("sibling mapping lost")
	}
}

func TestTranslateMatchesWalk(t *testing.T) {
	tbl, _ := newTable(t)
	r := trace.NewRand(5)
	type m struct{ va, pa uint64 }
	var ms []m
	for i := 0; i < 200; i++ {
		va := (r.Uint64n(1<<30) &^ 0xfff)
		pa := (r.Uint64n(1<<26) &^ 0xfff)
		if err := tbl.Map(va, pa, addr.Page4K); err == nil {
			ms = append(ms, m{va, pa})
		}
	}
	for _, x := range ms {
		p1, s1, ok1 := tbl.Translate(x.va + 7)
		p2, s2, _, ok2 := tbl.Walk(x.va+7, nil)
		if !ok1 || !ok2 || p1 != p2 || s1 != s2 {
			t.Fatalf("Translate/Walk disagree at %#x", x.va)
		}
		if p1 != x.pa+7 {
			t.Fatalf("wrong translation %#x -> %#x, want %#x", x.va, p1, x.pa)
		}
	}
}

func TestPromote2M(t *testing.T) {
	tbl, _ := newTable(t)
	// 512 contiguous, 2M-aligned 4K mappings.
	vaBase, paBase := uint64(0x40000000), uint64(0x10000000)
	for i := uint64(0); i < 512; i++ {
		if err := tbl.Map(vaBase+i*4096, paBase+i*4096, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	pagesBefore := tbl.TablePages()
	if err := tbl.Promote2M(vaBase); err != nil {
		t.Fatal(err)
	}
	if tbl.TablePages() != pagesBefore-1 {
		t.Error("PT page not reclaimed by promotion")
	}
	pa, s, ok := tbl.Translate(vaBase + 0x12345)
	if !ok || s != addr.Page2M || pa != paBase+0x12345 {
		t.Errorf("post-promotion: pa=%#x s=%v ok=%v", pa, s, ok)
	}
	if tbl.Mappings() != 1 {
		t.Errorf("mappings = %d, want 1", tbl.Mappings())
	}
}

func TestPromote2MRejectsNonContiguous(t *testing.T) {
	tbl, _ := newTable(t)
	vaBase := uint64(0x40000000)
	for i := uint64(0); i < 512; i++ {
		pa := uint64(0x10000000) + i*4096
		if i == 100 {
			pa = 0x30000000 // break contiguity
		}
		if err := tbl.Map(vaBase+i*4096, pa, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Promote2M(vaBase); err != ErrNotPromotable {
		t.Errorf("err = %v, want ErrNotPromotable", err)
	}
	// Partially-populated region is also not promotable.
	tbl2, _ := newTable(t)
	tbl2.Map(vaBase, 0x10000000, addr.Page4K)
	if err := tbl2.Promote2M(vaBase); err != ErrNotPromotable {
		t.Errorf("sparse err = %v", err)
	}
	// Misaligned base physical address.
	tbl3, _ := newTable(t)
	for i := uint64(0); i < 512; i++ {
		tbl3.Map(vaBase+i*4096, 0x10001000+i*4096, addr.Page4K)
	}
	if err := tbl3.Promote2M(vaBase); err != ErrNotPromotable {
		t.Errorf("misaligned frames err = %v", err)
	}
	if err := tbl3.Promote2M(vaBase + 0x1000); err != ErrMisaligned {
		t.Errorf("misaligned va err = %v", err)
	}
}

func TestRemap(t *testing.T) {
	tbl, _ := newTable(t)
	tbl.Map(0x1000, 0x2000, addr.Page4K)
	if err := tbl.Remap(0x1000, 0x9000); err != nil {
		t.Fatal(err)
	}
	pa, _, ok := tbl.Translate(0x1abc)
	if !ok || pa != 0x9abc {
		t.Errorf("after remap pa = %#x", pa)
	}
	if err := tbl.Remap(0x5000, 0x9000); err != ErrNotMapped {
		t.Errorf("remap unmapped err = %v", err)
	}
	tbl.Map(0x200000, 0x400000, addr.Page2M)
	if err := tbl.Remap(0x200000, 0x401000); err != ErrMisaligned {
		t.Errorf("remap misaligned err = %v", err)
	}
}

func TestVisitLeaves(t *testing.T) {
	tbl, _ := newTable(t)
	tbl.Map(0x1000, 0xa000, addr.Page4K)
	tbl.Map(0x200000, 0x400000, addr.Page2M)
	tbl.Map(0x40000000, 0x80000000, addr.Page1G)
	var got []uint64
	tbl.VisitLeaves(func(va, pa uint64, s addr.PageSize) bool {
		got = append(got, va)
		return true
	})
	if len(got) != 3 || got[0] != 0x1000 || got[1] != 0x200000 || got[2] != 0x40000000 {
		t.Errorf("VisitLeaves order = %#v", got)
	}
	// Early stop.
	count := 0
	tbl.VisitLeaves(func(va, pa uint64, s addr.PageSize) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestDestroyReturnsAllFrames(t *testing.T) {
	mem := physmem.New(physmem.Config{Name: "pt", Size: 64 << 20})
	tbl, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	r := trace.NewRand(3)
	for i := 0; i < 300; i++ {
		va := r.Uint64n(1<<40) &^ 0xfff
		tbl.Map(va, uint64(i)<<12, addr.Page4K)
	}
	if err := tbl.Destroy(); err != nil {
		t.Fatal(err)
	}
	if mem.AllocatedFrames() != 0 {
		t.Errorf("leaked %d frames", mem.AllocatedFrames())
	}
}

func TestMapUnmapProperty(t *testing.T) {
	// Property: map then unmap of random disjoint pages leaves the table
	// with only the root allocated and no translations.
	f := func(seed uint64) bool {
		mem := physmem.New(physmem.Config{Name: "prop", Size: 64 << 20})
		tbl, err := New(mem)
		if err != nil {
			return false
		}
		r := trace.NewRand(seed)
		seen := map[uint64]bool{}
		var vas []uint64
		for i := 0; i < 64; i++ {
			va := r.Uint64n(1<<35) &^ 0xfff
			if seen[va] {
				continue
			}
			seen[va] = true
			if tbl.Map(va, uint64(i)<<12, addr.Page4K) != nil {
				return false
			}
			vas = append(vas, va)
		}
		for _, va := range vas {
			if tbl.Unmap(va, addr.Page4K) != nil {
				return false
			}
		}
		return tbl.TablePages() == 1 && tbl.Mappings() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorExhaustionSurfaces(t *testing.T) {
	mem := physmem.New(physmem.Config{Name: "tiny", Size: 2 * addr.PageSize4K})
	tbl, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	// Root took 1 frame; mapping needs 3 more intermediate pages.
	if err := tbl.Map(0x1000, 0x1000, addr.Page4K); err == nil {
		t.Error("map with exhausted allocator succeeded")
	}
}
