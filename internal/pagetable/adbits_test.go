package pagetable

import (
	"testing"

	"vdirect/internal/addr"
)

func TestAccessedBitSetByWalk(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Map(0x1000, 0x2000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	was, err := tbl.Accessed(0x1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if was {
		t.Error("fresh mapping already accessed")
	}
	if _, _, _, ok := tbl.Walk(0x1234, nil); !ok {
		t.Fatal("walk failed")
	}
	was, _ = tbl.Accessed(0x1000, true)
	if !was {
		t.Error("walk did not set accessed")
	}
	// Clear-on-read semantics.
	was, _ = tbl.Accessed(0x1000, false)
	if was {
		t.Error("accessed bit not cleared")
	}
	// Translate (the software path) does not set accessed.
	tbl.Translate(0x1234)
	if was, _ := tbl.Accessed(0x1000, false); was {
		t.Error("Translate set accessed")
	}
	if _, err := tbl.Accessed(0x999000, false); err != ErrNotMapped {
		t.Errorf("unmapped accessed err = %v", err)
	}
}

func TestDirtyBitsAndHarvest(t *testing.T) {
	tbl, _ := newTable(t)
	for i := uint64(0); i < 8; i++ {
		if err := tbl.Map(0x10000+i*4096, 0x20000+i*4096, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.MarkDirty(0x10123); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MarkDirty(0x13fff); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MarkDirty(0x999000); err != ErrNotMapped {
		t.Errorf("dirty unmapped err = %v", err)
	}
	var dirty []uint64
	n := tbl.HarvestDirty(func(va uint64, s addr.PageSize) {
		dirty = append(dirty, va)
		if s != addr.Page4K {
			t.Errorf("size = %v", s)
		}
	})
	if n != 2 || len(dirty) != 2 || dirty[0] != 0x10000 || dirty[1] != 0x13000 {
		t.Errorf("harvest = %v (n=%d)", dirty, n)
	}
	// Harvest clears: second pass finds nothing.
	if n := tbl.HarvestDirty(func(uint64, addr.PageSize) {}); n != 0 {
		t.Errorf("second harvest found %d", n)
	}
}

func TestDirtyOn2MLeaf(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Map(0x200000, 0x400000, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MarkDirty(0x2abcde); err != nil {
		t.Fatal(err)
	}
	got := 0
	tbl.HarvestDirty(func(va uint64, s addr.PageSize) {
		if va != 0x200000 || s != addr.Page2M {
			t.Errorf("harvested %#x %v", va, s)
		}
		got++
	})
	if got != 1 {
		t.Errorf("harvested %d", got)
	}
}
