package pagetable

import (
	"testing"
	"testing/quick"

	"vdirect/internal/addr"
	"vdirect/internal/physmem"
	"vdirect/internal/trace"
)

// TestTableMatchesMapModel drives random Map/Unmap/Remap sequences at
// mixed page sizes against a plain map reference model: after every
// operation, translations, mapping counts, and frame accounting must
// agree. This is the page table's end-to-end contract.
func TestTableMatchesMapModel(t *testing.T) {
	type mapping struct {
		pa   uint64
		size addr.PageSize
	}
	f := func(seed uint64) bool {
		rng := trace.NewRand(seed)
		mem := physmem.New(physmem.Config{Name: "model", Size: 256 << 20})
		tbl, err := New(mem)
		if err != nil {
			return false
		}
		model := map[uint64]mapping{} // keyed by aligned va

		sizes := []addr.PageSize{addr.Page4K, addr.Page4K, addr.Page2M} // 4K-biased
		covered := func(va uint64) (uint64, mapping, bool) {
			for base, m := range model {
				if va >= base && va < base+m.size.Bytes() {
					return base, m, true
				}
			}
			return 0, mapping{}, false
		}

		for op := 0; op < 300; op++ {
			s := sizes[rng.Intn(len(sizes))]
			va := addr.AlignDown(rng.Uint64n(1<<32), s.Bytes())
			switch rng.Uint64n(10) {
			case 0, 1, 2, 3, 4: // Map
				pa := addr.AlignDown(rng.Uint64n(1<<30), s.Bytes())
				err := tbl.Map(va, pa, s)
				_, _, overl := covered(va)
				if !overl {
					// Also check the new mapping wouldn't cover an
					// existing smaller one.
					for base := range model {
						if base >= va && base < va+s.Bytes() {
							overl = true
							break
						}
					}
				}
				if overl {
					if err == nil {
						t.Logf("seed %d: overlapping map at %#x accepted", seed, va)
						return false
					}
				} else if err != nil {
					t.Logf("seed %d: clean map at %#x rejected: %v", seed, va, err)
					return false
				} else {
					model[va] = mapping{pa: pa, size: s}
				}
			case 5, 6: // Unmap
				m, exact := model[va]
				err := tbl.Unmap(va, s)
				if exact && m.size == s {
					if err != nil {
						t.Logf("seed %d: unmap of live %#x failed: %v", seed, va, err)
						return false
					}
					delete(model, va)
				} else if err == nil {
					t.Logf("seed %d: bogus unmap at %#x succeeded", seed, va)
					return false
				}
			case 7: // Remap
				newPA := addr.AlignDown(rng.Uint64n(1<<30), s.Bytes())
				base, m, ok := covered(va)
				err := tbl.Remap(va, newPA)
				if ok && addr.IsAligned(newPA, m.size) {
					if err != nil {
						t.Logf("seed %d: remap of live %#x failed: %v", seed, va, err)
						return false
					}
					m.pa = newPA
					model[base] = m
				}
				// Misaligned or unmapped remaps may fail; state unchanged
				// either way for the model when err != nil.
			default: // Translate probe
				base, m, ok := covered(va)
				pa, size, got := tbl.Translate(va)
				if got != ok {
					t.Logf("seed %d: presence mismatch at %#x", seed, va)
					return false
				}
				if ok && (size != m.size || pa != m.pa+(va-base)) {
					t.Logf("seed %d: translation mismatch at %#x", seed, va)
					return false
				}
			}
			if tbl.Mappings() != uint64(len(model)) {
				t.Logf("seed %d: mapping count %d != model %d", seed, tbl.Mappings(), len(model))
				return false
			}
		}
		// Drain: unmapping everything returns the table to one root page.
		for va, m := range model {
			if err := tbl.Unmap(va, m.size); err != nil {
				return false
			}
		}
		return tbl.TablePages() == 1 && tbl.Mappings() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
