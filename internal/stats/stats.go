// Package stats provides the event counters and summary statistics the
// evaluation harness uses: per-event counters (replacing the paper's
// perf-counter + BadgerTrap measurements), geometric means for the
// cross-workload summaries, and 95% confidence intervals for the escape
// filter study (Figure 13, 30 random trials per point).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a named set of monotonically increasing event counts.
// The zero value is ready to use.
type Counters struct {
	m map[string]uint64
}

// Add increases the named counter by n.
func (c *Counters) Add(name string, n uint64) {
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[name] += n
}

// Inc increases the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of the named counter (zero if never touched).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every counter.
func (c *Counters) Reset() { c.m = nil }

// Merge adds every counter from o into c.
func (c *Counters) Merge(o *Counters) {
	for n, v := range o.m {
		c.Add(n, v)
	}
}

// Snapshot returns an independent copy of the counters as a plain map
// (nil when no counter was ever touched). The telemetry registry uses
// it as its counter-snapshot representation.
func (c *Counters) Snapshot() map[string]uint64 {
	if c.m == nil {
		return nil
	}
	out := make(map[string]uint64, len(c.m))
	for n, v := range c.m {
		out[n] = v
	}
	return out
}

func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&b, "%s=%d ", n, c.m[n])
	}
	return strings.TrimSpace(b.String())
}

// GeoMean returns the geometric mean of xs. It returns 0 for an empty
// slice and panics on non-positive inputs, which indicate a harness bug.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean of xs, using the normal approximation the paper's Figure 13
// error bars rely on (n = 30 trials, where t ≈ z).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}

// Summary bundles mean and 95% CI half-width for one experiment point.
type Summary struct {
	Mean float64
	CI   float64
	N    int
}

// Summarize computes a Summary over the samples.
func Summarize(xs []float64) Summary {
	return Summary{Mean: Mean(xs), CI: CI95(xs), N: len(xs)}
}

func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean, s.CI, s.N)
}

// Table renders experiment rows in the fixed-width textual format the
// paperbench tool emits, so figure data reads like the paper's bars.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with the verb given per
// column; float64 uses %v semantics via fmt.Sprint.
func (t *Table) AddRowf(cells ...interface{}) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.2f", v)
		default:
			s[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(s...)
}

// NumRows returns the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the table as aligned text.
func (t *Table) Render() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, cell := range r {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (header included).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Ratio safely divides a by b, returning 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Percent formats a fraction as a percentage string with one decimal.
func Percent(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
