package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounters(t *testing.T) {
	var c Counters
	if c.Get("x") != 0 {
		t.Error("untouched counter not zero")
	}
	c.Inc("x")
	c.Add("x", 4)
	c.Add("y", 2)
	if c.Get("x") != 5 || c.Get("y") != 2 {
		t.Errorf("got x=%d y=%d", c.Get("x"), c.Get("y"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
	if s := c.String(); s != "x=5 y=2" {
		t.Errorf("String = %q", s)
	}
	var d Counters
	d.Add("x", 1)
	d.Add("z", 7)
	c.Merge(&d)
	if c.Get("x") != 6 || c.Get("z") != 7 {
		t.Errorf("after merge x=%d z=%d", c.Get("x"), c.Get("z"))
	}
	c.Reset()
	if c.Get("x") != 0 || len(c.Names()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestCountersSnapshot(t *testing.T) {
	var c Counters
	if s := c.Snapshot(); s != nil {
		t.Errorf("snapshot of untouched counters = %v, want nil", s)
	}
	c.Add("x", 3)
	s := c.Snapshot()
	if len(s) != 1 || s["x"] != 3 {
		t.Fatalf("snapshot = %v", s)
	}
	// The copy is independent in both directions.
	c.Add("x", 1)
	if s["x"] != 3 {
		t.Error("snapshot tracked later Add")
	}
	s["y"] = 9
	if c.Get("y") != 0 {
		t.Error("mutating the snapshot leaked into the counters")
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var c, d Counters
	d.Add("x", 2)
	c.Merge(&d)
	if c.Get("x") != 2 {
		t.Errorf("merge into zero-value Counters: x=%d", c.Get("x"))
	}
	var e Counters
	c.Merge(&e) // merging an untouched set is a no-op
	if c.Get("x") != 2 {
		t.Error("merging empty set changed values")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %g", g)
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %g, want 4", g)
	}
	if g := GeoMean([]float64{3, 3, 3}); math.Abs(g-3) > 1e-12 {
		t.Errorf("GeoMean(3,3,3) = %g, want 3", g)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean with 0 did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(seed []uint16) bool {
		if len(seed) == 0 {
			return true
		}
		xs := make([]float64, len(seed))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, s := range seed {
			xs[i] = float64(s) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDevCI(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", m)
	}
	// Sample stddev of the classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if s := StdDev(xs); math.Abs(s-want) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", s, want)
	}
	ci := CI95(xs)
	wantCI := 1.96 * want / math.Sqrt(8)
	if math.Abs(ci-wantCI) > 1e-12 {
		t.Errorf("CI95 = %g, want %g", ci, wantCI)
	}
	if StdDev([]float64{1}) != 0 || CI95([]float64{1}) != 0 {
		t.Error("single sample should have zero spread")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || math.Abs(s.Mean-2) > 1e-12 {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("Summary.String = %q", s.String())
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI != 0 {
		t.Errorf("Summarize(nil) = %+v", s)
	}
	if s := Summarize([]float64{5}); s.N != 1 || s.Mean != 5 || s.CI != 0 {
		t.Errorf("Summarize(single) = %+v", s)
	}
	if CI95(nil) != 0 {
		t.Error("CI95(nil) != 0")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "workload", "overhead")
	tb.AddRow("graph500", "28.0%")
	tb.AddRowf("gups", 105.5)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	out := tb.Render()
	for _, want := range []string{"== Demo ==", "workload", "graph500", "105.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "workload,overhead\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "graph500,28.0%") {
		t.Errorf("CSV row missing: %q", csv)
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1")                // short row pads
	tb.AddRow("1", "2", "3", "4") // long row truncates
	out := tb.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[1] != "1,," {
		t.Errorf("padded row = %q", lines[1])
	}
	if lines[2] != "1,2,3" {
		t.Errorf("truncated row = %q", lines[2])
	}
}

func TestRatioPercent(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero should be 0")
	}
	if Percent(0.285) != "28.5%" {
		t.Errorf("Percent = %q", Percent(0.285))
	}
}
