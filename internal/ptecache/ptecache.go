// Package ptecache models the cost of the memory references a page walk
// performs. Real walkers read PTEs through the data-cache hierarchy
// ("PTEs are cached in data caches", §X); the dominant term in walk
// latency is whether each reference hits cache or goes to DRAM.
//
// The model is a single physically-indexed set-associative cache of
// 64-byte lines standing in for the L2/L3 levels that matter to PTE
// reuse, with fixed hit and miss latencies. Eight 8-byte PTEs share a
// line, so walks over dense address regions amortize fills — which is
// why sequential workloads walk cheaply and GUPS walks at DRAM speed.
package ptecache

import "fmt"

// Config sets the cache geometry and latencies.
type Config struct {
	// Lines is the total number of 64-byte lines (power of two).
	Lines int
	// Ways is the associativity.
	Ways int
	// HitCycles is charged for a reference that hits the cache.
	HitCycles uint64
	// MissCycles is charged for a reference that goes to DRAM.
	MissCycles uint64
}

// Default approximates a server-class cache hierarchy for PTE traffic:
// 32K lines of 64B (2 MB of PTE-reachable cache), 8-way, ~18-cycle hit
// (an L2/L3 blend) and ~170-cycle DRAM access.
var Default = Config{
	Lines:      32768,
	Ways:       8,
	HitCycles:  18,
	MissCycles: 170,
}

const lineShift = 6 // 64-byte lines

// tagValid marks a live line in its packed tag word. Line addresses are
// phys>>6 ≤ 2^58, so the address and the valid bit never collide and a
// probe is one word compare per way — the tag words of an 8-way set
// share a single 64-byte cache line of the simulator's own memory,
// where the old struct-per-line layout spread them over three.
const tagValid = 1 << 63

// Cache is the PTE cost model. Not safe for concurrent use.
type Cache struct {
	cfg  Config
	sets int
	// Structure-of-arrays line storage, sets*ways, row-major: packed
	// valid|lineAddr tag words, with LRU stamps touched only on hit or
	// fill.
	tags []uint64
	lrus []uint64
	// mask indexes power-of-two set counts without division (all shipped
	// geometries are powers of two); the modulo path is a fallback.
	mask   uint64
	pow2   bool
	clock  uint64
	refs   uint64
	misses uint64
}

// New builds a cache from the config.
func New(cfg Config) *Cache {
	if cfg.Lines <= 0 || cfg.Ways <= 0 || cfg.Lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("ptecache: bad geometry %d/%d", cfg.Lines, cfg.Ways))
	}
	sets := cfg.Lines / cfg.Ways
	return &Cache{
		cfg:  cfg,
		sets: sets,
		tags: make([]uint64, cfg.Lines),
		lrus: make([]uint64, cfg.Lines),
		mask: uint64(sets - 1),
		pow2: sets&(sets-1) == 0,
	}
}

// Access charges one PTE read at the physical address and returns its
// cost in cycles.
func (c *Cache) Access(phys uint64) uint64 {
	c.refs++
	c.clock++
	lineAddr := phys >> lineShift
	var set int
	if c.pow2 {
		set = int(lineAddr & c.mask)
	} else {
		set = int(lineAddr) % c.sets
		if set < 0 {
			set = -set
		}
	}
	key := tagValid | lineAddr
	b := set * c.cfg.Ways
	end := b + c.cfg.Ways
	// Hit scan first, victim selection only on a confirmed miss: the
	// common hit touches nothing but the set's tag words. (A hit can sit
	// after an invalid way, so the hit scan must cover every way before
	// a miss is declared.) The full-capacity subslice lets the range
	// loop run without per-way bounds checks — this is the innermost
	// loop of every simulated page walk.
	tags := c.tags[b:end:end]
	for j, t := range tags {
		if t == key {
			c.lrus[b+j] = c.clock
			return c.cfg.HitCycles
		}
	}
	c.misses++
	// Victim choice matches the old layout exactly: first invalid way
	// in scan order, else the minimum-LRU way.
	victim := 0
	lrus := c.lrus[b:end:end]
	vLRU := lrus[0]
	for j, t := range tags {
		if t&tagValid == 0 {
			victim = j
			break
		}
		if l := lrus[j]; l < vLRU {
			victim, vLRU = j, l
		}
	}
	tags[victim] = key
	lrus[victim] = c.clock
	return c.cfg.MissCycles
}

// Stats returns lifetime references and misses.
func (c *Cache) Stats() (refs, misses uint64) { return c.refs, c.misses }

// Flush invalidates all lines.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
	}
}
