// Package ptecache models the cost of the memory references a page walk
// performs. Real walkers read PTEs through the data-cache hierarchy
// ("PTEs are cached in data caches", §X); the dominant term in walk
// latency is whether each reference hits cache or goes to DRAM.
//
// The model is a single physically-indexed set-associative cache of
// 64-byte lines standing in for the L2/L3 levels that matter to PTE
// reuse, with fixed hit and miss latencies. Eight 8-byte PTEs share a
// line, so walks over dense address regions amortize fills — which is
// why sequential workloads walk cheaply and GUPS walks at DRAM speed.
package ptecache

import "fmt"

// Config sets the cache geometry and latencies.
type Config struct {
	// Lines is the total number of 64-byte lines (power of two).
	Lines int
	// Ways is the associativity.
	Ways int
	// HitCycles is charged for a reference that hits the cache.
	HitCycles uint64
	// MissCycles is charged for a reference that goes to DRAM.
	MissCycles uint64
}

// Default approximates a server-class cache hierarchy for PTE traffic:
// 32K lines of 64B (2 MB of PTE-reachable cache), 8-way, ~18-cycle hit
// (an L2/L3 blend) and ~170-cycle DRAM access.
var Default = Config{
	Lines:      32768,
	Ways:       8,
	HitCycles:  18,
	MissCycles: 170,
}

const lineShift = 6 // 64-byte lines

// tagValid marks a live line in its packed tag word. Line addresses are
// phys>>6 ≤ 2^58, so the address and the valid bit never collide and a
// probe is one word compare per way — the tag words of an 8-way set
// share a single 64-byte cache line of the simulator's own memory,
// where the old struct-per-line layout spread them over three.
const tagValid = 1 << 63

// Cache is the PTE cost model. Not safe for concurrent use.
type Cache struct {
	cfg  Config
	sets int
	// Line storage interleaved per way: slot 2i holds way i's packed
	// valid|lineAddr tag word, slot 2i+1 its LRU stamp. A way's tag and
	// stamp share a host cache line, so the hint-hit fast path — one
	// tag compare, one stamp store — touches a single line where
	// separate tag/LRU arrays touched two.
	slots []uint64
	// hint remembers each set's last hit (or fill) way. Page walks
	// re-reference the same handful of PTE lines, so checking that way
	// first resolves most probes in one compare instead of a scan. The
	// hint is a pure accelerator: a stale hint just falls back to the
	// full scan, so outcomes, counters and LRU state are bit-identical
	// to the hint-free probe.
	hint []uint8
	// mask indexes power-of-two set counts without division (all shipped
	// geometries are powers of two); the modulo path is a fallback.
	mask   uint64
	pow2   bool
	clock  uint64
	refs   uint64
	misses uint64
}

// New builds a cache from the config.
func New(cfg Config) *Cache {
	if cfg.Lines <= 0 || cfg.Ways <= 0 || cfg.Lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("ptecache: bad geometry %d/%d", cfg.Lines, cfg.Ways))
	}
	sets := cfg.Lines / cfg.Ways
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		slots: make([]uint64, cfg.Lines*2),
		hint:  make([]uint8, sets),
		mask:  uint64(sets - 1),
		pow2:  sets&(sets-1) == 0,
	}
}

// Access charges one PTE read at the physical address and returns its
// cost in cycles.
func (c *Cache) Access(phys uint64) uint64 {
	c.refs++
	c.clock++
	lineAddr := phys >> lineShift
	var set int
	if c.pow2 {
		set = int(lineAddr & c.mask)
	} else {
		set = int(lineAddr) % c.sets
		if set < 0 {
			set = -set
		}
	}
	key := tagValid | lineAddr
	b := set * c.cfg.Ways * 2
	end := b + c.cfg.Ways*2
	// Last-hit-way hint first: walks re-touch the same PTE lines, so
	// this one compare resolves most probes, and the way's adjacent
	// tag/stamp pair keeps it to one line of traffic. Outcome-identical
	// to the scan below — it merely finds the same hit sooner.
	if h := int(c.hint[set]); h < c.cfg.Ways && c.slots[b+2*h] == key {
		c.slots[b+2*h+1] = c.clock
		return c.cfg.HitCycles
	}
	// Hit scan first, victim selection only on a confirmed miss. (A hit
	// can sit after an invalid way, so the hit scan must cover every way
	// before a miss is declared.) The full-capacity subslice lets the
	// loops run without per-way bounds checks — this is the innermost
	// loop of every simulated page walk.
	ws := c.slots[b:end:end]
	for j := 0; j < c.cfg.Ways; j++ {
		if ws[2*j] == key {
			c.hint[set] = uint8(j)
			ws[2*j+1] = c.clock
			return c.cfg.HitCycles
		}
	}
	c.misses++
	// Victim choice matches the old layout exactly: first invalid way
	// in scan order, else the minimum-LRU way.
	victim := 0
	vLRU := ws[1]
	for j := 0; j < c.cfg.Ways; j++ {
		if ws[2*j]&tagValid == 0 {
			victim = j
			break
		}
		if l := ws[2*j+1]; l < vLRU {
			victim, vLRU = j, l
		}
	}
	ws[2*victim] = key
	ws[2*victim+1] = c.clock
	c.hint[set] = uint8(victim)
	return c.cfg.MissCycles
}

// Stats returns lifetime references and misses.
func (c *Cache) Stats() (refs, misses uint64) { return c.refs, c.misses }

// Flush invalidates all lines.
func (c *Cache) Flush() {
	for i := 0; i < len(c.slots); i += 2 {
		c.slots[i] = 0
	}
}
