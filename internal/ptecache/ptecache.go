// Package ptecache models the cost of the memory references a page walk
// performs. Real walkers read PTEs through the data-cache hierarchy
// ("PTEs are cached in data caches", §X); the dominant term in walk
// latency is whether each reference hits cache or goes to DRAM.
//
// The model is a single physically-indexed set-associative cache of
// 64-byte lines standing in for the L2/L3 levels that matter to PTE
// reuse, with fixed hit and miss latencies. Eight 8-byte PTEs share a
// line, so walks over dense address regions amortize fills — which is
// why sequential workloads walk cheaply and GUPS walks at DRAM speed.
package ptecache

import "fmt"

// Config sets the cache geometry and latencies.
type Config struct {
	// Lines is the total number of 64-byte lines (power of two).
	Lines int
	// Ways is the associativity.
	Ways int
	// HitCycles is charged for a reference that hits the cache.
	HitCycles uint64
	// MissCycles is charged for a reference that goes to DRAM.
	MissCycles uint64
}

// Default approximates a server-class cache hierarchy for PTE traffic:
// 32K lines of 64B (2 MB of PTE-reachable cache), 8-way, ~18-cycle hit
// (an L2/L3 blend) and ~170-cycle DRAM access.
var Default = Config{
	Lines:      32768,
	Ways:       8,
	HitCycles:  18,
	MissCycles: 170,
}

const lineShift = 6 // 64-byte lines

type line struct {
	valid bool
	tag   uint64
	lru   uint64
}

// Cache is the PTE cost model. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	sets  int
	lines []line
	// mask indexes power-of-two set counts without division (all shipped
	// geometries are powers of two); the modulo path is a fallback.
	mask   uint64
	pow2   bool
	clock  uint64
	refs   uint64
	misses uint64
}

// New builds a cache from the config.
func New(cfg Config) *Cache {
	if cfg.Lines <= 0 || cfg.Ways <= 0 || cfg.Lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("ptecache: bad geometry %d/%d", cfg.Lines, cfg.Ways))
	}
	sets := cfg.Lines / cfg.Ways
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		lines: make([]line, cfg.Lines),
		mask:  uint64(sets - 1),
		pow2:  sets&(sets-1) == 0,
	}
}

// Access charges one PTE read at the physical address and returns its
// cost in cycles.
func (c *Cache) Access(phys uint64) uint64 {
	c.refs++
	c.clock++
	lineAddr := phys >> lineShift
	var set int
	if c.pow2 {
		set = int(lineAddr & c.mask)
	} else {
		set = int(lineAddr) % c.sets
		if set < 0 {
			set = -set
		}
	}
	ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
	victim := 0
	for i := range ways {
		w := &ways[i]
		if w.valid && w.tag == lineAddr {
			w.lru = c.clock
			return c.cfg.HitCycles
		}
		if !ways[victim].valid {
			continue
		}
		if !w.valid || w.lru < ways[victim].lru {
			victim = i
		}
	}
	c.misses++
	ways[victim] = line{valid: true, tag: lineAddr, lru: c.clock}
	return c.cfg.MissCycles
}

// Stats returns lifetime references and misses.
func (c *Cache) Stats() (refs, misses uint64) { return c.refs, c.misses }

// Flush invalidates all lines.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i].valid = false
	}
}
