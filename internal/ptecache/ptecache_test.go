package ptecache

import (
	"testing"

	"vdirect/internal/trace"
)

func TestHitMissCosts(t *testing.T) {
	c := New(Config{Lines: 16, Ways: 2, HitCycles: 10, MissCycles: 100})
	if cost := c.Access(0x1000); cost != 100 {
		t.Errorf("cold access cost = %d, want 100", cost)
	}
	if cost := c.Access(0x1000); cost != 10 {
		t.Errorf("warm access cost = %d, want 10", cost)
	}
	// Same 64B line: different PTE, same line → hit.
	if cost := c.Access(0x1008); cost != 10 {
		t.Errorf("same-line access cost = %d, want 10", cost)
	}
	// Next line misses.
	if cost := c.Access(0x1040); cost != 100 {
		t.Errorf("next-line access cost = %d, want 100", cost)
	}
	refs, misses := c.Stats()
	if refs != 4 || misses != 2 {
		t.Errorf("stats = %d refs, %d misses", refs, misses)
	}
}

func TestEvictionUnderConflict(t *testing.T) {
	// 4 sets x 2 ways. Lines 0, 4, 8 (i.e. addresses 0, 0x100, 0x200) all
	// land in set 0.
	c := New(Config{Lines: 8, Ways: 2, HitCycles: 1, MissCycles: 10})
	c.Access(0x000)
	c.Access(0x100)
	c.Access(0x000) // refresh line 0
	c.Access(0x200) // evicts line at 0x100 (LRU)
	if cost := c.Access(0x000); cost != 1 {
		t.Error("MRU line evicted")
	}
	if cost := c.Access(0x100); cost != 10 {
		t.Error("LRU line survived")
	}
}

func TestFlush(t *testing.T) {
	c := New(Default)
	c.Access(0x5000)
	c.Flush()
	if cost := c.Access(0x5000); cost != Default.MissCycles {
		t.Error("flush did not invalidate")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{Lines: 7, Ways: 2})
}

func TestDenseVsRandomMissRates(t *testing.T) {
	// Streaming PTE reads (dense walk) must enjoy a far lower miss rate
	// than random reads over a large span — the effect that separates
	// sequential workloads from GUPS.
	dense := New(Default)
	for a := uint64(0); a < 1<<20; a += 8 {
		dense.Access(a)
	}
	_, denseMisses := dense.Stats()
	denseRefs := uint64(1<<20) / 8

	random := New(Default)
	r := trace.NewRand(1)
	for i := uint64(0); i < denseRefs; i++ {
		random.Access(r.Uint64n(1 << 34))
	}
	_, randMisses := random.Stats()

	denseRate := float64(denseMisses) / float64(denseRefs)
	randRate := float64(randMisses) / float64(denseRefs)
	if denseRate > 0.2 {
		t.Errorf("dense miss rate = %.3f, want ~1/8", denseRate)
	}
	if randRate < 0.9 {
		t.Errorf("random miss rate = %.3f, want ~1", randRate)
	}
}
