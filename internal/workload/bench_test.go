package workload

import "testing"

// BenchmarkGenerate measures trace-construction cost per workload.
func BenchmarkGenerate(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := New(name, Config{Seed: uint64(i) + 1, MemoryMB: 64, Ops: 100000})
				if w.WorkingSet().Empty() {
					b.Fatal("empty working set")
				}
			}
		})
	}
}
