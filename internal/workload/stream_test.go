package workload

import (
	"testing"

	"vdirect/internal/trace"
)

// eagerGUPS is the pre-streaming GUPS construction, kept verbatim as
// the reference: the streaming generator must emit a bit-identical
// event sequence or every downstream golden result shifts.
func eagerGUPS(cfg Config) Workload {
	cfg = cfg.withDefaults()
	tableBytes := uint64(cfg.MemoryMB) << 20
	elems := tableBytes / 8
	b := newBuilder(cfg)
	b.stackEvery = 256
	for !b.full() {
		idx := b.rng.Uint64n(elems)
		va := PrimaryBase + idx*8
		if !b.read(va) {
			break
		}
		b.write(va)
	}
	return b.finish("gups", BigMemory, 56, primarySpan(tableBytes))
}

// TestGUPSStreamMatchesBuilder holds the streaming generator and the
// eager builder together event-for-event, across configs chosen to hit
// the edge cases of the access-budget state machine (op counts on and
// off the 256-access stack-sprinkle boundary, odd counts that end the
// trace between the read and write halves of an update).
func TestGUPSStreamMatchesBuilder(t *testing.T) {
	configs := []Config{
		{Seed: 1, MemoryMB: 64, Ops: 200000},
		{Seed: 1, MemoryMB: 64, Ops: 400000},
		{Seed: 7, MemoryMB: 8, Ops: 256},
		{Seed: 7, MemoryMB: 8, Ops: 257},
		{Seed: 9, MemoryMB: 16, Ops: 511},
		{Seed: 9, MemoryMB: 16, Ops: 512},
		{Seed: 3, MemoryMB: 32, Ops: 1},
		{Seed: 3, MemoryMB: 32, Ops: 2},
		{Seed: 5, MemoryMB: 1, Ops: 10000},
	}
	for _, cfg := range configs {
		want := eagerGUPS(cfg)
		got := New("gups", cfg)
		if _, ok := got.(*gupsStream); !ok {
			t.Fatalf("gups %+v: not the streaming generator (%T)", cfg, got)
		}
		comparePerEvent(t, cfg, want, got)
		if w, g := want.AccessCount(), got.AccessCount(); w != g {
			t.Errorf("gups %+v: AccessCount %d, reference %d", cfg, g, w)
		}
		if w, g := want.WorkingSet(), got.WorkingSet(); w != g {
			t.Errorf("gups %+v: WorkingSet %v, reference %v", cfg, g, w)
		}
		if w, g := want.PrimaryRegion(), got.PrimaryRegion(); w != g {
			t.Errorf("gups %+v: PrimaryRegion %v, reference %v", cfg, g, w)
		}
		// Second pass after Reset must replay identically, and the block
		// path must agree with the per-event path at awkward block sizes.
		want.Reset()
		got.Reset()
		compareBlocks(t, cfg, want, got, 3)
		want.Reset()
		got.Reset()
		compareBlocks(t, cfg, want, got, 4096)
	}
}

func comparePerEvent(t *testing.T, cfg Config, want, got Workload) {
	t.Helper()
	for i := 0; ; i++ {
		we, wok := want.Next()
		ge, gok := got.Next()
		if wok != gok {
			t.Fatalf("gups %+v event %d: ok=%v, reference %v", cfg, i, gok, wok)
		}
		if !wok {
			return
		}
		if we != ge {
			t.Fatalf("gups %+v event %d: %+v, reference %+v", cfg, i, ge, we)
		}
	}
}

// compareBlocks streams got through NextBlock with the given block
// size and checks the concatenation against want's per-event stream.
func compareBlocks(t *testing.T, cfg Config, want, got Workload, block int) {
	t.Helper()
	bg, ok := got.(trace.BlockGenerator)
	if !ok {
		t.Fatalf("gups %+v: streaming generator is not a BlockGenerator", cfg)
	}
	buf := make([]trace.Event, block)
	i := 0
	for {
		n := bg.NextBlock(buf)
		if n == 0 {
			break
		}
		for _, ge := range buf[:n] {
			we, wok := want.Next()
			if !wok {
				t.Fatalf("gups %+v block=%d: block path emitted extra event %d (%+v)", cfg, block, i, ge)
			}
			if we != ge {
				t.Fatalf("gups %+v block=%d event %d: %+v, reference %+v", cfg, block, i, ge, we)
			}
			i++
		}
	}
	if _, wok := want.Next(); wok {
		t.Fatalf("gups %+v block=%d: block path ended early at event %d", cfg, block, i)
	}
}
