// Package workload implements the paper's evaluation workloads (Table
// V) as algorithmic trace generators. Each generator executes the real
// access pattern of its namesake — BFS over an RMAT graph for graph500,
// Zipf-skewed hash probing for memcached, sparse matrix-vector products
// for NPB:CG, 3D stencil sweeps for cactusADM/GemsFDTD, pointer chasing
// for mcf, and so on — over synthetic data scaled so that the ratio of
// working set to TLB reach sits in the paper's regime.
//
// What matters to the evaluation is each workload's memory locality and
// allocation churn, not its numerical output; the generators reproduce
// the former faithfully and skip the latter.
package workload

import (
	"fmt"
	"sort"

	"vdirect/internal/addr"
	"vdirect/internal/trace"
)

// Class partitions workloads the way the paper's Table III does.
type Class uint8

// Workload classes.
const (
	BigMemory Class = iota
	Compute
)

func (c Class) String() string {
	if c == BigMemory {
		return "big-memory"
	}
	return "compute"
}

// Address-space layout every workload shares. The primary region holds
// the big data structures a direct segment would map; the stack and
// churn arenas live outside it and always use paging, as the paper's
// primary-region abstraction prescribes.
const (
	StackBase   = 0x1000_0000 // small always-paged region (stack, globals)
	StackSize   = 2 << 20
	ChurnBase   = 0x2000_0000 // allocation-churn arena (heap)
	ChurnSpan   = 0x1000_0000 // 256MB of address space to cycle through
	PrimaryBase = 0x4000_0000 // 1GB-aligned primary region base
)

// Config sizes a workload.
type Config struct {
	// Seed drives all randomness; identical configs produce identical
	// traces.
	Seed uint64
	// MemoryMB is the approximate working-set size in MiB.
	MemoryMB int
	// Ops is the approximate number of data accesses to emit.
	Ops int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MemoryMB == 0 {
		c.MemoryMB = 64
	}
	if c.Ops == 0 {
		c.Ops = 400000
	}
	return c
}

// Workload is a Table V workload: a trace generator plus the metadata
// the evaluation needs.
type Workload interface {
	trace.Generator
	// AccessCount reports how many Access events the full trace emits,
	// known analytically (generators build their event stream eagerly)
	// so the harness can place the warmup boundary without replaying
	// the whole trace once just to count it.
	AccessCount() uint64
	// Class reports big-memory vs compute (Table III / Figures 11-12).
	Class() Class
	// BaseCPI is the workload's cycles-per-access excluding address
	// translation, the T_ideal denominator of the overhead metric.
	BaseCPI() float64
	// PrimaryRegion is the virtual range a guest direct segment should
	// map for this workload.
	PrimaryRegion() addr.Range
	// StaticRegions are all virtual ranges the trace may touch outside
	// dynamic allocations: the primary region, stack, and churn arena.
	StaticRegions() []addr.Range
}

// Names lists all workloads in the order the paper's figures use.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return order[names[i]] < order[names[j]] })
	return names
}

// BigMemoryNames returns the Figure 11 workloads.
func BigMemoryNames() []string { return []string{"graph500", "memcached", "npb:cg", "gups"} }

// ComputeNames returns the Figure 12 workloads.
func ComputeNames() []string {
	return []string{"cactusadm", "gemsfdtd", "mcf", "omnetpp", "canneal", "streamcluster"}
}

type factory func(Config) Workload

var registry = map[string]factory{}
var order = map[string]int{}

func register(name string, f factory) {
	registry[name] = f
	order[name] = len(order)
}

// New builds the named workload; it panics on unknown names, which are
// harness bugs.
func New(name string, cfg Config) Workload {
	f, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown workload %q", name))
	}
	return f(cfg.withDefaults())
}

// Exists reports whether a workload name is registered.
func Exists(name string) bool {
	_, ok := registry[name]
	return ok
}

// base carries the state all generators share: an eagerly built event
// slice plus metadata. Eager construction keeps Next allocation-free
// and makes Reset trivial, at the cost of holding the trace in memory.
// Embedding *trace.Slice also makes every workload a
// trace.BlockGenerator, so the replay engine streams events in blocks
// rather than one interface call per event.
type base struct {
	*trace.Slice
	class   Class
	cpi     float64
	primary addr.Range
}

// Every workload streams in blocks; the replay hot path relies on it.
var _ trace.BlockGenerator = (*base)(nil)

func (b *base) Class() Class              { return b.class }
func (b *base) BaseCPI() float64          { return b.cpi }
func (b *base) PrimaryRegion() addr.Range { return b.primary }

func (b *base) StaticRegions() []addr.Range {
	return []addr.Range{
		b.primary,
		{Start: StackBase, Size: StackSize},
		{Start: ChurnBase, Size: ChurnSpan},
	}
}

// builder accumulates events up to the configured op budget.
type builder struct {
	evs      []trace.Event
	accesses int
	limit    int
	rng      *trace.Rand
	// stackEvery sprinkles a stack access every n data accesses, so a
	// small fraction of the trace always lies outside the primary
	// region (function calls, locals).
	stackEvery int
	stackPos   uint64
}

func newBuilder(cfg Config) *builder {
	return &builder{
		evs:        make([]trace.Event, 0, cfg.Ops+cfg.Ops/64+16),
		limit:      cfg.Ops,
		rng:        trace.NewRand(cfg.Seed),
		stackEvery: 64,
	}
}

// full reports whether the op budget is exhausted.
func (b *builder) full() bool { return b.accesses >= b.limit }

// access emits one data access; returns false when the budget is done.
func (b *builder) access(va uint64, write bool) bool {
	if b.full() {
		return false
	}
	b.evs = append(b.evs, trace.Event{Kind: trace.Access, VA: addr.GVA(va), Write: write})
	b.accesses++
	if b.stackEvery > 0 && b.accesses%b.stackEvery == 0 {
		// Stack accesses walk a few hot pages.
		b.stackPos = (b.stackPos + 8) % (16 << 10)
		b.evs = append(b.evs, trace.Event{
			Kind:  trace.Access,
			VA:    addr.GVA(StackBase + b.stackPos),
			Write: b.rng.Uint64n(2) == 0,
		})
		b.accesses++
	}
	return !b.full()
}

// read and write are convenience wrappers.
func (b *builder) read(va uint64) bool  { return b.access(va, false) }
func (b *builder) write(va uint64) bool { return b.access(va, true) }

// allocEvent emits an allocation of size bytes at va.
func (b *builder) allocEvent(va, size uint64) {
	b.evs = append(b.evs, trace.Event{Kind: trace.Alloc, VA: addr.GVA(va), Size: size})
}

// freeEvent emits a deallocation.
func (b *builder) freeEvent(va, size uint64) {
	b.evs = append(b.evs, trace.Event{Kind: trace.Free, VA: addr.GVA(va), Size: size})
}

// churner cycles allocations through the churn arena: allocEvery data
// accesses, allocate chunkSize bytes, touch each page once, and free
// the previous chunk. It models malloc/munmap traffic that dirties the
// guest page table — the §IX.D shadow-paging differentiator.
type churner struct {
	b          *builder
	allocEvery int // in data accesses
	chunk      uint64
	next       uint64 // arena cursor
	prevVA     uint64
	prevSize   uint64
	lastAlloc  int
}

func newChurner(b *builder, allocEvery int, chunk uint64) *churner {
	return &churner{b: b, allocEvery: allocEvery, chunk: chunk}
}

// tick is called once per logical operation; every allocEvery data
// accesses it performs an allocate-touch-free cycle.
func (c *churner) tick() {
	if c.allocEvery <= 0 || c.b.accesses-c.lastAlloc < c.allocEvery {
		return
	}
	c.lastAlloc = c.b.accesses
	va := ChurnBase + c.next
	if c.next+c.chunk > ChurnSpan {
		c.next = 0
		va = ChurnBase
	}
	c.next += c.chunk
	c.b.allocEvent(va, c.chunk)
	for off := uint64(0); off < c.chunk; off += addr.PageSize4K {
		if !c.b.write(va + off) {
			break
		}
	}
	if c.prevSize > 0 {
		c.b.freeEvent(c.prevVA, c.prevSize)
	}
	c.prevVA, c.prevSize = va, c.chunk
}

// finish builds the base from accumulated events.
func (b *builder) finish(name string, class Class, cpi float64, primary addr.Range) *base {
	return &base{
		Slice:   trace.NewSlice(name, b.evs),
		class:   class,
		cpi:     cpi,
		primary: primary,
	}
}

// primarySpan returns a primary region of the given byte size.
func primarySpan(bytes uint64) addr.Range {
	return addr.Range{Start: PrimaryBase, Size: addr.AlignUp(bytes, addr.PageSize2M)}
}
