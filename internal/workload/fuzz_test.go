package workload

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/trace"
)

// FuzzGeneratorContracts decodes five bytes into a workload name and a
// bounded Config, builds the generator, and pins the contracts the
// experiment harness leans on: the analytic AccessCount matches what a
// replay emits (warmup boundaries are placed from it without a counting
// pass), the access budget is respected to within 2%, every access
// falls inside a declared static region or a live dynamic allocation,
// the primary region is where the layout promises, and — because the
// replay engine streams blocks — the block path replays the exact event
// sequence the per-event path produced.
func FuzzGeneratorContracts(f *testing.F) {
	f.Add([]byte{0, 1, 8, 0x10, 0x00})
	f.Add([]byte{3, 7, 1, 0x02, 0x00})
	f.Add([]byte{9, 255, 31, 0x4e, 0x20})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		names := Names()
		name := names[int(data[0])%len(names)]
		cfg := Config{
			Seed:     uint64(data[1]),
			MemoryMB: 1 + int(data[2])%32,
			Ops:      500 + int(uint64(data[3])<<8|uint64(data[4]))%20000,
		}
		cfg = cfg.withDefaults()
		w := New(name, cfg)

		pr := w.PrimaryRegion()
		if pr.Empty() || pr.Start != PrimaryBase {
			t.Fatalf("%s %+v: primary region %+v", name, cfg, pr)
		}
		regions := w.StaticRegions()
		primaryDeclared := false
		for _, r := range regions {
			if r == pr {
				primaryDeclared = true
			}
		}
		if !primaryDeclared {
			t.Fatalf("%s %+v: primary region missing from StaticRegions", name, cfg)
		}

		// Per-event pass: count, and check containment against static
		// regions plus the live dynamic allocations.
		live := map[addr.Range]bool{}
		inAny := func(va uint64) bool {
			for _, r := range regions {
				if r.Contains(va) {
					return true
				}
			}
			for r := range live {
				if r.Contains(va) {
					return true
				}
			}
			return false
		}
		var events []trace.Event
		var accesses uint64
		for {
			ev, ok := w.Next()
			if !ok {
				break
			}
			events = append(events, ev)
			switch ev.Kind {
			case trace.Alloc:
				live[addr.Range{Start: uint64(ev.VA), Size: ev.Size}] = true
			case trace.Free:
				delete(live, addr.Range{Start: uint64(ev.VA), Size: ev.Size})
			case trace.Access:
				accesses++
				if !inAny(uint64(ev.VA)) {
					t.Fatalf("%s %+v: access %#x outside all regions", name, cfg, ev.VA)
				}
			}
		}
		if got := w.AccessCount(); got != accesses {
			t.Fatalf("%s %+v: AccessCount() = %d, replay emitted %d", name, cfg, got, accesses)
		}
		if accesses < uint64(cfg.Ops) || accesses > uint64(cfg.Ops)+uint64(cfg.Ops)/50 {
			t.Fatalf("%s %+v: %d accesses for budget %d", name, cfg, accesses, cfg.Ops)
		}

		// Block pass after Reset: the block-streaming path must replay
		// the identical sequence (an odd buffer size forces refills that
		// straddle whatever internal structure the generator has).
		w.Reset()
		if got := w.AccessCount(); got != accesses {
			t.Fatalf("%s %+v: AccessCount() after Reset = %d, want %d", name, cfg, got, accesses)
		}
		buf := make([]trace.Event, 97)
		pos := 0
		for {
			n := trace.FillBlock(w, buf)
			if n == 0 {
				break
			}
			for _, ev := range buf[:n] {
				if pos >= len(events) {
					t.Fatalf("%s %+v: block replay emitted more than %d events", name, cfg, len(events))
				}
				if ev != events[pos] {
					t.Fatalf("%s %+v: event %d differs between block and per-event replay: %+v vs %+v",
						name, cfg, pos, ev, events[pos])
				}
				pos++
			}
		}
		if pos != len(events) {
			t.Fatalf("%s %+v: block replay emitted %d events, per-event replay %d", name, cfg, pos, len(events))
		}
	})
}
