// The big-memory workloads of Table V: graph500, memcached, NPB:CG and
// the GUPS micro-benchmark. These are the Figure 11 workloads; the
// paper runs them with 60-75GB datasets, which scale here to tens of
// megabytes with the TLB-reach ratio preserved.

package workload

import (
	"vdirect/internal/addr"
	"vdirect/internal/trace"
)

func init() {
	register("graph500", newGraph500)
	register("memcached", newMemcached)
	register("npb:cg", newNPBCG)
	register("gups", newGUPS)
	register("tlbstress", newTLBStress)
}

// newTLBStress is the microbenchmark the paper uses to confirm the
// TLB-miss inflation mechanism (§IX.A): uniform random 4K-page touches
// over a working set ~1.5× the L2 TLB's reach. Natively the L2 almost
// copes; virtualized, nested entries share the structure and push the
// guest hit rate off the capacity cliff, inflating misses by the
// 1.3-1.6× band the paper reports. MemoryMB is ignored — the footprint
// must track the TLB geometry, not the dataset.
func newTLBStress(cfg Config) Workload {
	const pages = 768 // 1.5 × 512-entry L2 reach at 4K
	b := newBuilder(cfg)
	b.stackEvery = 0 // pure page stress
	for !b.full() {
		p := b.rng.Uint64n(pages)
		if !b.read(PrimaryBase + p<<12 + b.rng.Uint64n(512)*8) {
			break
		}
	}
	return b.finish("tlbstress", BigMemory, 20, primarySpan(pages<<12))
}

// newGUPS builds the HPCC RandomAccess micro-benchmark: read-modify-
// write updates at uniformly random 8-byte elements of a giant table.
// Every access is effectively a TLB miss — the worst case for paging
// and the best case for direct segments.
//
// GUPS is the throughput benchmark workload and the one whose trace is
// rebuilt most often, so unlike the Table V workloads it streams: the
// trace is generated block-by-block straight into the replay engine's
// buffer instead of being materialized as a multi-megabyte event slice
// per cell. The event sequence is bit-identical to what the eager
// builder emits (TestGUPSStreamMatchesBuilder holds the two together);
// the per-access state machine below mirrors builder.access with
// stackEvery=256.
func newGUPS(cfg Config) Workload {
	tableBytes := uint64(cfg.MemoryMB) << 20
	g := &gupsStream{
		seed:    cfg.Seed,
		elems:   tableBytes / 8,
		limit:   cfg.Ops,
		primary: primarySpan(tableBytes),
		count:   gupsAccessCount(cfg.Ops),
	}
	g.Reset()
	return g
}

// gupsStream is a lazy GUPS trace generator. It carries the same
// cursor state the eager builder evolves (PRNG, access counter, stack
// cursor) and re-derives events on demand; Reset rewinds by reseeding.
type gupsStream struct {
	seed    uint64
	elems   uint64
	limit   int
	primary addr.Range
	count   uint64

	// Cursor state, mirroring builder.access.
	rng      *trace.Rand
	accesses int
	stackPos uint64
	done     bool
	// One read-modify-write op emits up to four events (read, write,
	// and a stack sprinkle after either); a block boundary can split an
	// op, so undelivered events wait here.
	pending [4]trace.Event
	pi, pn  int

	// Tight working-set bounds depend on the random draws, so they are
	// computed by a one-off scan on first use (tests only — the cell
	// path never asks).
	ws     addr.Range
	wsDone bool
}

var _ trace.BlockGenerator = (*gupsStream)(nil)

// gupsAccessCount replays the access-counter evolution of the builder
// loop without touching the PRNG: stack sprinkles land after every
// 256th access regardless of the random values, so the final count is
// pure arithmetic.
func gupsAccessCount(limit int) uint64 {
	acc := 0
	for acc < limit {
		acc++ // read
		if acc%256 == 0 {
			acc++ // stack sprinkle
		}
		if acc >= limit {
			break // builder.read returned false: the write is skipped
		}
		acc++ // write
		if acc%256 == 0 {
			acc++
		}
	}
	return uint64(acc)
}

// stepInto runs one loop iteration of the builder, writing events at
// dst[n:] (dst must have room for a worst-case op of four events), and
// flags completion. It reproduces the eager loop's control flow: stop
// at the top when the budget is spent, and skip the write half when
// the read half exhausts it.
func (g *gupsStream) stepInto(dst []trace.Event, n int) int {
	if g.accesses >= g.limit {
		g.done = true
		return n
	}
	idx := g.rng.Uint64n(g.elems)
	va := PrimaryBase + idx*8
	n = g.emitInto(dst, n, va, false)
	if g.accesses >= g.limit {
		g.done = true
		return n
	}
	n = g.emitInto(dst, n, va, true) // the update half of read-modify-write
	if g.accesses >= g.limit {
		g.done = true
	}
	return n
}

// emitInto appends one data access plus its possible stack sprinkle,
// exactly as builder.access does with stackEvery=256.
func (g *gupsStream) emitInto(dst []trace.Event, n int, va uint64, write bool) int {
	dst[n] = trace.Event{Kind: trace.Access, VA: addr.GVA(va), Write: write}
	n++
	g.accesses++
	if g.accesses%256 == 0 {
		g.stackPos = (g.stackPos + 8) % (16 << 10)
		dst[n] = trace.Event{
			Kind:  trace.Access,
			VA:    addr.GVA(StackBase + g.stackPos),
			Write: g.rng.Uint64n(2) == 0,
		}
		n++
		g.accesses++
	}
	return n
}

func (g *gupsStream) Name() string { return "gups" }

func (g *gupsStream) Next() (trace.Event, bool) {
	if g.pi >= g.pn {
		if g.done {
			return trace.Event{}, false
		}
		g.pi = 0
		g.pn = g.stepInto(g.pending[:], 0)
		if g.pn == 0 {
			return trace.Event{}, false
		}
	}
	ev := g.pending[g.pi]
	g.pi++
	return ev, true
}

// NextBlock drains pending events and then generates ops directly into
// the caller's buffer until it has no room for a worst-case op (four
// events) or the trace ends.
func (g *gupsStream) NextBlock(buf []trace.Event) int {
	n := 0
	for g.pi < g.pn && n < len(buf) {
		buf[n] = g.pending[g.pi]
		g.pi++
		n++
	}
	if g.pi >= g.pn {
		g.pi, g.pn = 0, 0
		for !g.done {
			if len(buf)-n < len(g.pending) {
				// Not enough head room for a full op: stage one op in
				// pending and spill what fits.
				g.pn = g.stepInto(g.pending[:], 0)
				for g.pi < g.pn && n < len(buf) {
					buf[n] = g.pending[g.pi]
					g.pi++
					n++
				}
				if n == len(buf) {
					break
				}
				g.pi, g.pn = 0, 0
				continue
			}
			n = g.stepInto(buf, n)
		}
	}
	return n
}

func (g *gupsStream) Reset() {
	g.rng = trace.NewRand(g.seed)
	g.accesses = 0
	g.stackPos = 0
	g.done = false
	g.pi, g.pn = 0, 0
}

// WorkingSet scans a throwaway cursor for the tight bounds NewSlice
// would have computed. Only tests ask; the result is cached.
func (g *gupsStream) WorkingSet() addr.Range {
	if !g.wsDone {
		scan := &gupsStream{seed: g.seed, elems: g.elems, limit: g.limit}
		scan.Reset()
		lo, hi := uint64(1)<<63, uint64(0)
		any := false
		for {
			ev, ok := scan.Next()
			if !ok {
				break
			}
			any = true
			v := uint64(ev.VA)
			if v < lo {
				lo = v
			}
			if v+1 > hi {
				hi = v + 1
			}
		}
		if any {
			g.ws = addr.Range{Start: lo, Size: hi - lo}
		}
		g.wsDone = true
	}
	return g.ws
}

func (g *gupsStream) AccessCount() uint64       { return g.count }
func (g *gupsStream) Class() Class              { return BigMemory }
func (g *gupsStream) BaseCPI() float64          { return 56 }
func (g *gupsStream) PrimaryRegion() addr.Range { return g.primary }

func (g *gupsStream) StaticRegions() []addr.Range {
	return []addr.Range{
		g.primary,
		{Start: StackBase, Size: StackSize},
		{Start: ChurnBase, Size: ChurnSpan},
	}
}

// newGraph500 builds graph generation + BFS, the graph500 kernel. The
// graph is RMAT-like: power-law degrees with uniformly scattered
// neighbours. The trace interleaves the characteristic patterns:
// sequential scans of per-vertex edge lists and random probes of the
// visited/parent array.
func newGraph500(cfg Config) Workload {
	// Memory splits ~1/8 vertex arrays, ~7/8 edge list, as edgefactor-16
	// graphs do.
	budget := uint64(cfg.MemoryMB) << 20
	vertices := budget / 8 / 16 // 8B per parent entry; 16 edges per vertex avg
	if vertices < 1024 {
		vertices = 1024
	}
	edges := vertices * 16

	// Layout inside the primary region.
	parentBase := uint64(PrimaryBase)    // vertices * 8
	rowBase := parentBase + vertices*8   // vertices+1 * 8
	edgeBase := rowBase + (vertices+1)*8 // edges * 8
	totalBytes := edgeBase + edges*8 - PrimaryBase

	b := newBuilder(cfg)
	rng := b.rng

	// Vertex properties are derived by hashing, not materialized: the
	// degree distribution is power-law-ish (doubling with geometrically
	// decreasing probability, RMAT style) and each vertex's edge list
	// starts at a hash-scattered position in the edge array, as CSR
	// layouts built from scrambled vertex IDs do.
	mix := func(x uint64) uint64 {
		x ^= x >> 33
		x *= 0xFF51AFD7ED558CCD
		x ^= x >> 33
		x *= 0xC4CEB9FE1A85EC53
		return x ^ (x >> 33)
	}
	degreeOf := func(h uint64) uint64 {
		d := uint64(4)
		for d < 64 && h&3 == 0 { // P(double) = 1/4 per level
			d *= 2
			h >>= 2
		}
		return d
	}

	// BFS simulation: process frontier vertices in effectively random
	// order. For each: read its rowPtr words, scan its edge list
	// sequentially from its scattered start, and probe parent[] for
	// each (random) neighbour; unvisited neighbours get a parent write.
	probes := uint64(0)
	for !b.full() {
		u := rng.Uint64n(vertices)
		if !b.read(rowBase + u*8) {
			break
		}
		b.read(rowBase + (u+1)*8)
		h := mix(u)
		start := h % edges
		for e, d := uint64(0), degreeOf(h); e < d; e++ {
			if !b.read(edgeBase + ((start+e)%edges)*8) {
				break
			}
			v := mix(h+e) % vertices // neighbour is scattered (RMAT)
			if !b.read(parentBase + v*8) {
				break
			}
			// Early in BFS most probes find unvisited vertices (write);
			// later almost none do.
			probes++
			if probes%3 != 0 {
				b.write(parentBase + v*8)
			}
		}
	}
	return b.finish("graph500", BigMemory, 96, primarySpan(totalBytes))
}

// newMemcached builds the key-value cache pattern: Zipf-skewed GETs
// (hash a key, probe the bucket array, chase to the item, read the
// value spanning a few lines) with a small fraction of SETs, plus slab
// allocation churn — the behaviour that makes memcached the worst case
// for shadow paging (§IX.D).
func newMemcached(cfg Config) Workload {
	budget := uint64(cfg.MemoryMB) << 20
	// ~1/8 bucket array, 7/8 item arena; 512B per item slot.
	buckets := budget / 8 / 8
	if buckets < 1024 {
		buckets = 1024
	}
	const itemSize = 512
	items := (budget - buckets*8) / itemSize
	bucketBase := uint64(PrimaryBase)
	itemBase := bucketBase + buckets*8
	totalBytes := buckets*8 + items*itemSize

	b := newBuilder(cfg)
	zipf := trace.NewZipf(b.rng, items, 0.99)
	churn := newChurner(b, 3600, 64<<10) // slab allocations
	for !b.full() {
		rank := zipf.Rank()
		// Key popularity by rank; bucket is a hash of the key, so
		// scramble the rank to scatter hot keys across buckets.
		hash := rank * 0x9E3779B97F4A7C15
		if !b.read(bucketBase + (hash%buckets)*8) {
			break
		}
		itemVA := itemBase + (rank%items)*itemSize
		b.read(itemVA)       // item header
		b.read(itemVA + 64)  // key compare
		b.read(itemVA + 256) // value
		if b.rng.Uint64n(10) == 0 {
			b.write(itemVA + 256) // SET
		}
		churn.tick()
	}
	return b.finish("memcached", BigMemory, 98, primarySpan(totalBytes))
}

// newNPBCG builds the NAS CG kernel: conjugate gradient iterations
// dominated by sparse matrix-vector products — sequential row/column
// index scans with gathers of x[col] at banded-random columns.
func newNPBCG(cfg Config) Workload {
	budget := uint64(cfg.MemoryMB) << 20
	// Matrix ~ 3/4 of memory (8B value + 4B index per nonzero, rounded
	// to 16B), vectors the rest.
	nnz := budget * 3 / 4 / 16
	rows := nnz / 12 // ~12 nonzeros per row
	if rows < 512 {
		rows = 512
	}
	valBase := uint64(PrimaryBase)
	colBase := valBase + nnz*8
	xBase := colBase + nnz*8
	totalBytes := nnz*16 + rows*8*3 // values+cols, x, p, q vectors

	b := newBuilder(cfg)
	var cursor uint64
	for !b.full() {
		// One row of A·x.
		row := cursor % rows
		cursor++
		perRow := nnz / rows
		start := row * perRow
		var acc uint64
		for k := uint64(0); k < perRow; k++ {
			if !b.read(valBase + (start+k)*8) {
				break
			}
			b.read(colBase + (start+k)*8)
			// Banded-random column: near the diagonal, with occasional
			// long-range entries — CG's locality signature.
			var col uint64
			if b.rng.Uint64n(8) == 0 {
				col = b.rng.Uint64n(rows)
			} else {
				lo := int64(row) - 2048 + int64(b.rng.Uint64n(4096))
				if lo < 0 {
					lo = 0
				}
				col = uint64(lo) % rows
			}
			b.read(xBase + col*8)
			acc += col
		}
		b.write(xBase + rows*8 + row*8) // q[row] = acc (q vector after x)
		_ = acc
	}
	return b.finish("npb:cg", BigMemory, 5.0, primarySpan(totalBytes))
}
