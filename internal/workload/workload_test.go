package workload

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/trace"
)

func smallCfg(seed uint64) Config {
	return Config{Seed: seed, MemoryMB: 8, Ops: 20000}
}

func TestRegistryComplete(t *testing.T) {
	want := map[string]Class{
		"graph500": BigMemory, "memcached": BigMemory, "npb:cg": BigMemory, "gups": BigMemory,
		"tlbstress": BigMemory,
		"cactusadm": Compute, "gemsfdtd": Compute, "mcf": Compute,
		"omnetpp": Compute, "canneal": Compute, "streamcluster": Compute,
	}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for n, class := range want {
		if !Exists(n) {
			t.Errorf("workload %q missing", n)
			continue
		}
		w := New(n, smallCfg(1))
		if w.Class() != class {
			t.Errorf("%s class = %v, want %v", n, w.Class(), class)
		}
		if w.Name() != n {
			t.Errorf("%s Name() = %q", n, w.Name())
		}
		if w.BaseCPI() <= 0 {
			t.Errorf("%s BaseCPI = %g", n, w.BaseCPI())
		}
	}
	if len(BigMemoryNames()) != 4 || len(ComputeNames()) != 6 {
		t.Error("figure name lists wrong")
	}
	for _, n := range append(BigMemoryNames(), ComputeNames()...) {
		if !Exists(n) {
			t.Errorf("figure list references unknown workload %q", n)
		}
	}
}

func TestUnknownWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown workload")
		}
	}()
	New("doom", smallCfg(1))
}

func TestDeterminism(t *testing.T) {
	for _, n := range Names() {
		a, errA := trace.Collect(New(n, smallCfg(7)), 0)
		b, errB := trace.Collect(New(n, smallCfg(7)), 0)
		if errA != nil || errB != nil {
			t.Fatalf("%s: Collect errors %v, %v", n, errA, errB)
		}
		if a.Len() != b.Len() {
			t.Errorf("%s: lengths differ %d vs %d", n, a.Len(), b.Len())
			continue
		}
		for {
			ea, oka := a.Next()
			eb, okb := b.Next()
			if oka != okb {
				t.Errorf("%s: streams desynchronized", n)
				break
			}
			if !oka {
				break
			}
			if ea != eb {
				t.Errorf("%s: events differ: %+v vs %+v", n, ea, eb)
				break
			}
		}
		c, err := trace.Collect(New(n, smallCfg(8)), 0)
		if err != nil {
			t.Fatalf("%s: Collect: %v", n, err)
		}
		if c.Len() == a.Len() {
			// Same length is plausible; compare a prefix for difference.
			a.Reset()
			same := true
			for i := 0; i < 100; i++ {
				ea, _ := a.Next()
				ec, ok := c.Next()
				if !ok || ea != ec {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%s: different seeds gave identical traces", n)
			}
		}
	}
}

func TestOpsBudgetRespected(t *testing.T) {
	for _, n := range Names() {
		cfg := smallCfg(3)
		w := New(n, cfg)
		accesses := 0
		for {
			ev, ok := w.Next()
			if !ok {
				break
			}
			if ev.Kind == trace.Access {
				accesses++
			}
		}
		// Budget is approximate (generators may finish an inner loop)
		// but must be within 2%.
		if accesses < cfg.Ops || accesses > cfg.Ops+cfg.Ops/50 {
			t.Errorf("%s: %d accesses for budget %d", n, accesses, cfg.Ops)
		}
	}
}

func TestAddressesWithinDeclaredRegions(t *testing.T) {
	for _, n := range Names() {
		w := New(n, smallCfg(5))
		regions := w.StaticRegions()
		// Dynamic churn allocations extend the churn arena; collect
		// live allocs.
		live := map[addr.Range]bool{}
		inAny := func(va uint64) bool {
			for _, r := range regions {
				if r.Contains(va) {
					return true
				}
			}
			for r := range live {
				if r.Contains(va) {
					return true
				}
			}
			return false
		}
		for {
			ev, ok := w.Next()
			if !ok {
				break
			}
			switch ev.Kind {
			case trace.Alloc:
				live[addr.Range{Start: uint64(ev.VA), Size: ev.Size}] = true
			case trace.Free:
				delete(live, addr.Range{Start: uint64(ev.VA), Size: ev.Size})
			case trace.Access:
				if !inAny(uint64(ev.VA)) {
					t.Errorf("%s: access %#x outside all regions", n, ev.VA)
					return
				}
			}
		}
	}
}

func TestPrimaryRegionHoldsMostAccesses(t *testing.T) {
	// Direct segments only pay off if the primary region captures the
	// bulk of the traffic; the paper's F_DS is near 1 for big-memory
	// workloads.
	for _, n := range Names() {
		w := New(n, smallCfg(9))
		pr := w.PrimaryRegion()
		if pr.Empty() {
			t.Errorf("%s: empty primary region", n)
			continue
		}
		if pr.Start != PrimaryBase {
			t.Errorf("%s: primary region at %#x", n, pr.Start)
		}
		var in, total float64
		for {
			ev, ok := w.Next()
			if !ok {
				break
			}
			if ev.Kind != trace.Access {
				continue
			}
			total++
			if pr.Contains(uint64(ev.VA)) {
				in++
			}
		}
		if frac := in / total; frac < 0.90 {
			t.Errorf("%s: only %.1f%% of accesses in primary region", n, frac*100)
		}
	}
}

func TestChurnWorkloadsEmitAllocs(t *testing.T) {
	churny := map[string]bool{"memcached": true, "omnetpp": true, "gemsfdtd": true, "canneal": true}
	for _, n := range Names() {
		ops := 200000
		if n == "gemsfdtd" {
			ops = 600000 // its Fourier churn is rare (every ~240k accesses)
		}
		w := New(n, Config{Seed: 2, MemoryMB: 8, Ops: ops})
		allocs := 0
		for {
			ev, ok := w.Next()
			if !ok {
				break
			}
			if ev.Kind == trace.Alloc {
				allocs++
			}
		}
		if churny[n] && allocs == 0 {
			t.Errorf("%s: expected allocation churn, got none", n)
		}
		if !churny[n] && allocs > 0 {
			t.Errorf("%s: unexpected churn (%d allocs)", n, allocs)
		}
	}
}

func TestLocalityOrdering(t *testing.T) {
	// Sanity on relative locality: unique 4K pages touched per access
	// should be highest for gups (uniform random) and much lower for
	// streamcluster (streaming with hot centers).
	uniqueRate := func(name string) float64 {
		w := New(name, Config{Seed: 4, MemoryMB: 32, Ops: 50000})
		pages := map[uint64]bool{}
		n := 0
		for {
			ev, ok := w.Next()
			if !ok {
				break
			}
			if ev.Kind != trace.Access {
				continue
			}
			pages[uint64(ev.VA)>>12] = true
			n++
		}
		return float64(len(pages)) / float64(n)
	}
	gups := uniqueRate("gups")
	stream := uniqueRate("streamcluster")
	mcf := uniqueRate("mcf")
	if gups <= stream {
		t.Errorf("gups unique-page rate %.4f <= streamcluster %.4f", gups, stream)
	}
	if mcf <= stream {
		t.Errorf("mcf unique-page rate %.4f <= streamcluster %.4f", mcf, stream)
	}
}

func TestResetReplays(t *testing.T) {
	w := New("graph500", smallCfg(6))
	first, _ := w.Next()
	for i := 0; i < 100; i++ {
		w.Next()
	}
	w.Reset()
	again, ok := w.Next()
	if !ok || first != again {
		t.Error("Reset did not rewind to the first event")
	}
}

func TestWorkingSetMatchesConfig(t *testing.T) {
	for _, n := range Names() {
		w := New(n, Config{Seed: 1, MemoryMB: 16, Ops: 30000})
		ws := w.PrimaryRegion().Size
		// Primary region should be within [1/4, 4x] of the requested
		// memory (layout overheads vary by workload).
		if ws < 4<<20 || ws > 64<<20 {
			t.Errorf("%s: primary region %d MB for 16MB config", n, ws>>20)
		}
	}
}
