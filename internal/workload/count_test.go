package workload

import (
	"testing"

	"vdirect/internal/trace"
)

// TestAccessCountMatchesReplay pins the analytic access count — which
// the experiment harness uses to place warmup boundaries without a
// counting replay — to what a replay actually emits.
func TestAccessCountMatchesReplay(t *testing.T) {
	for _, name := range Names() {
		w := New(name, Config{Seed: 3, MemoryMB: 16, Ops: 20000})
		var replayed uint64
		for {
			ev, ok := w.Next()
			if !ok {
				break
			}
			if ev.Kind == trace.Access {
				replayed++
			}
		}
		if got := w.AccessCount(); got != replayed {
			t.Errorf("%s: AccessCount() = %d, replay emitted %d", name, got, replayed)
		}
		// The count must not depend on the read cursor.
		w.Reset()
		if got := w.AccessCount(); got != replayed {
			t.Errorf("%s: AccessCount() after Reset = %d, want %d", name, got, replayed)
		}
	}
}
