// The compute workloads of Table V: four SPEC CPU2006 programs
// (cactusADM, GemsFDTD, mcf, omnetpp) and two PARSEC 3.0 programs
// (canneal, streamcluster). These are the Figure 12 workloads.

package workload

func init() {
	register("cactusadm", newCactusADM)
	register("gemsfdtd", newGemsFDTD)
	register("mcf", newMCF)
	register("omnetpp", newOmnetpp)
	register("canneal", newCanneal)
	register("streamcluster", newStreamcluster)
}

// newCactusADM models the BSSN numerical-relativity kernel: a 3D
// stencil sweep over a cubic grid. Each point reads neighbours at ±1 in
// all three dimensions; the k±1 neighbours are a full plane away, so
// every inner-loop iteration touches three widely separated pages —
// the access pattern behind cactusADM's notoriously high TLB miss rate.
func newCactusADM(cfg Config) Workload {
	budget := uint64(cfg.MemoryMB) << 20
	// Cube of float64: n^3 * 8 * 2 arrays (in and out).
	n := uint64(1)
	for (n+1)*(n+1)*(n+1)*16 <= budget {
		n++
	}
	gridBytes := n * n * n * 8
	inBase := uint64(PrimaryBase)
	outBase := inBase + gridBytes
	plane := n * n * 8
	rowB := n * 8

	b := newBuilder(cfg)
	// Different seeds start the sweep at different phases, modeling
	// different checkpoint restarts of the same simulation.
	var i, j, k uint64 = 1, 1 + b.rng.Uint64n(n-2), 1 + b.rng.Uint64n(n-2)
	var points uint64
	for !b.full() {
		center := inBase + k*plane + j*rowB + i*8
		if !b.read(center) {
			break
		}
		b.read(center - 8)     // i-1 (same line usually)
		b.read(center + 8)     // i+1
		b.read(center - rowB)  // j-1
		b.read(center + rowB)  // j+1
		b.read(center - plane) // k-1: a plane away
		b.read(center + plane) // k+1
		b.write(outBase + k*plane + j*rowB + i*8)
		points++
		// Carpet AMR: periodically exchange with another refinement box
		// at an unrelated grid position (prolongation/restriction) —
		// the scattered traffic behind cactusADM's high TLB miss rate.
		if points%64 == 0 {
			b.read(inBase + b.rng.Uint64n(gridBytes/8)*8)
			b.write(outBase + b.rng.Uint64n(gridBytes/8)*8)
		}
		i++
		if i >= n-1 {
			i = 1
			j++
			if j >= n-1 {
				j = 1
				k++
				if k >= n-1 {
					k = 1
				}
			}
		}
	}
	return b.finish("cactusadm", Compute, 1.6, primarySpan(2*gridBytes))
}

// newGemsFDTD models the finite-difference time-domain solver: six
// field arrays (Ex,Ey,Ez,Hx,Hy,Hz) swept in separate passes per
// timestep, each pass reading two other fields at plane offsets. The
// multi-array sweeps give GemsFDTD a larger TLB footprint than a single
// stencil, and its Fourier output phases allocate transient buffers.
func newGemsFDTD(cfg Config) Workload {
	budget := uint64(cfg.MemoryMB) << 20
	n := uint64(1)
	for (n+1)*(n+1)*(n+1)*8*6 <= budget {
		n++
	}
	field := n * n * n * 8
	plane := n * n * 8
	// Field spacing models allocator slack: an odd number of 2M pages
	// between arrays (so sweep fronts spread across 2M-TLB sets) plus a
	// small 4K-odd stagger (so they also spread across 4K-TLB sets).
	// Power-of-two strides would alias all six fronts into one set of
	// each structure — a layout real allocators do not produce.
	stridePages := (field + (2 << 20) - 1) / (2 << 20)
	if stridePages%2 == 0 {
		stridePages++
	}
	stride := stridePages * (2 << 20)
	bases := make([]uint64, 6)
	for f := range bases {
		bases[f] = PrimaryBase + uint64(f)*(stride+17*4096)
	}

	b := newBuilder(cfg)
	churn := newChurner(b, 410000, 16<<10) // transient Fourier buffers
	idx := b.rng.Uint64n(field / 8)        // seed-dependent timestep phase
	for !b.full() {
		for f := 0; f < 6 && !b.full(); f++ {
			// Update field f from two neighbours (E from H and vice
			// versa), sequential within the field, plane-offset reads.
			off := (idx * 8) % (field - plane - 8)
			if !b.write(bases[f] + off) {
				break
			}
			b.read(bases[(f+1)%6] + off)
			b.read(bases[(f+2)%6] + off + plane)
			churn.tick()
		}
		// Near-to-far-field transform: gather scattered field samples
		// on the Huygens surface — pages far from the sweep front.
		if idx%128 == 0 {
			b.read(bases[b.rng.Intn(6)] + b.rng.Uint64n(field/8)*8)
		}
		idx++
	}
	return b.finish("gemsfdtd", Compute, 0.55, primarySpan(6*(stride+2<<20)))
}

// newMCF models the network-simplex solver: pointer chasing through
// node and arc structures laid out in allocation order but traversed in
// network order — long dependent chains of scattered reads, SPEC's
// classic TLB tormentor.
func newMCF(cfg Config) Workload {
	budget := uint64(cfg.MemoryMB) << 20
	const nodeSize = 128 // mcf node struct is ~120B
	nodes := budget / nodeSize
	if nodes < 1024 {
		nodes = 1024
	}
	nodeBase := uint64(PrimaryBase)

	b := newBuilder(cfg)
	// A single long permutation cycle: visiting order is random but
	// deterministic, like tree-walking a scrambled network.
	cur := uint64(0)
	stride := nodes/2 + 1 // odd-ish stride co-prime walk
	for stride%2 == 0 || nodes%stride == 0 {
		stride++
	}
	for !b.full() {
		va := nodeBase + cur*nodeSize
		if !b.read(va) { // node header (cost, potential)
			break
		}
		b.read(va + 64) // arc pointers in the second line
		if b.rng.Uint64n(4) == 0 {
			b.write(va + 64) // basis update
		}
		// Chase to the "next" node.
		if b.rng.Uint64n(8) == 0 {
			cur = b.rng.Uint64n(nodes) // re-root at a random subtree
		} else {
			cur = (cur + stride) % nodes
		}
	}
	return b.finish("mcf", Compute, 12, primarySpan(nodes*nodeSize))
}

// newOmnetpp models the discrete-event network simulator: a binary
// heap of pending events (array-backed, top-heavy access), message
// structs scattered across the heap, and steady allocation/free of
// messages — the churn that hurts shadow paging (§IX.D).
func newOmnetpp(cfg Config) Workload {
	budget := uint64(cfg.MemoryMB) << 20
	const msgSize = 256
	msgs := budget * 3 / 4 / msgSize
	heapSlots := budget / 4 / 8
	if msgs < 1024 {
		msgs = 1024
	}
	heapBase := uint64(PrimaryBase)
	msgBase := heapBase + heapSlots*8

	b := newBuilder(cfg)
	churn := newChurner(b, 4200, 16<<10)
	for !b.full() {
		// Pop min: touch the heap root and a log-depth path.
		slot := uint64(1)
		for slot < heapSlots {
			if !b.read(heapBase + slot*8) {
				break
			}
			child := slot*2 + b.rng.Uint64n(2)
			if child >= heapSlots || b.rng.Uint64n(4) == 0 {
				break
			}
			slot = child
		}
		// Handle the event's message: scattered struct access.
		mv := msgBase + b.rng.Uint64n(msgs)*msgSize
		b.read(mv)
		b.write(mv + 64)
		// Schedule a follow-up: heap insert path.
		b.write(heapBase + b.rng.Uint64n(heapSlots)*8)
		churn.tick()
	}
	return b.finish("omnetpp", Compute, 78, primarySpan(heapSlots*8+msgs*msgSize))
}

// newCanneal models the simulated-annealing netlist router: pick two
// random elements of a huge element array, read their net lists, and
// swap — uniformly random reads and writes over the full footprint.
func newCanneal(cfg Config) Workload {
	budget := uint64(cfg.MemoryMB) << 20
	const elemSize = 64
	elems := budget / elemSize
	if elems < 1024 {
		elems = 1024
	}
	elemBase := uint64(PrimaryBase)

	b := newBuilder(cfg)
	churn := newChurner(b, 6100, 32<<10)
	for !b.full() {
		a := elemBase + b.rng.Uint64n(elems)*elemSize
		c := elemBase + b.rng.Uint64n(elems)*elemSize
		if !b.read(a) {
			break
		}
		b.read(c)
		// Evaluate the swap: read a neighbour of each.
		b.read(elemBase + b.rng.Uint64n(elems)*elemSize)
		if b.rng.Uint64n(2) == 0 { // accepted swap
			b.write(a)
			b.write(c)
		}
		churn.tick()
	}
	return b.finish("canneal", Compute, 135, primarySpan(elems*elemSize))
}

// newStreamcluster models the online clustering kernel: stream through
// the point array sequentially and compare each point against a small
// resident set of cluster centers — the TLB-friendliest workload here,
// included as the low-overhead control.
func newStreamcluster(cfg Config) Workload {
	budget := uint64(cfg.MemoryMB) << 20
	const dims = 16 // 16 float64 coordinates per point
	pointSize := uint64(dims * 8)
	points := budget / pointSize
	if points < 1024 {
		points = 1024
	}
	const centers = 32
	pointBase := uint64(PrimaryBase)
	centerBase := pointBase + points*pointSize
	assignBase := centerBase + centers*pointSize

	b := newBuilder(cfg)
	var p uint64
	for !b.full() {
		va := pointBase + (p%points)*pointSize
		// Read the whole point (two cache lines of it).
		if !b.read(va) {
			break
		}
		b.read(va + 64)
		// Compare against a few centers (hot, cache/TLB resident).
		for c := 0; c < 4; c++ {
			b.read(centerBase + b.rng.Uint64n(centers)*pointSize)
		}
		b.write(assignBase + (p%points)*8)
		p++
	}
	total := points*pointSize + centers*pointSize + points*8
	return b.finish("streamcluster", Compute, 2.9, primarySpan(total))
}
