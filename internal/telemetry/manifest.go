// The run manifest: one JSON document per invocation recording what ran
// and how — tool, arguments, config, build info, host, wall clock,
// per-cell/section timings, and the final metric snapshot. Written next
// to the results so a recorded number can always be traced back to the
// exact binary and settings that produced it.

package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// BuildInfo is the binary's identity, read from the Go build metadata
// stamped at link time (runtime/debug.ReadBuildInfo).
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

// Build reads the running binary's build info. Fields absent from the
// build metadata (e.g. VCS stamps in a plain `go test`) are empty.
func Build() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Path = info.Main.Path
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// VersionString renders the build info as the one-line output of a
// -version flag.
func VersionString(tool string) string {
	b := Build()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s", tool, b.GoVersion)
	if b.Path != "" {
		fmt.Fprintf(&sb, " (%s)", b.Path)
	}
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&sb, " rev %s", rev)
		if b.Modified {
			sb.WriteString("+dirty")
		}
	}
	return sb.String()
}

// HostInfo describes the machine the run executed on.
type HostInfo struct {
	OS   string `json:"os"`
	Arch string `json:"arch"`
	CPUs int    `json:"cpus"`
}

// ManifestSchemaVersion is the manifest schema this package writes and
// understands. History: v1 was the unversioned PR 3 shape (implicitly
// version 0 on disk); v2 adds schema_version itself and the
// interpolated p50/p95/p99 fields on histogram snapshots.
const ManifestSchemaVersion = 2

// Manifest is the serialized run record.
type Manifest struct {
	SchemaVersion int               `json:"schema_version"`
	Tool          string            `json:"tool"`
	Args          []string          `json:"args"`
	Config        map[string]string `json:"config,omitempty"`
	Build         BuildInfo         `json:"build"`
	Host          HostInfo          `json:"host"`
	Start         time.Time         `json:"start"`
	DurationMS    float64           `json:"duration_ms"`
	Error         string            `json:"error,omitempty"`
	Timings       []Timing          `json:"timings,omitempty"`
	Metrics       Snapshot          `json:"metrics"`
}

// Manifest assembles the run record as of now. runErr, when non-nil, is
// recorded so a manifest from a failed run says so.
func (r *Run) Manifest(runErr error) Manifest {
	m := Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Tool:          r.Tool,
		Args:          os.Args[1:],
		Config:        r.Config,
		Build:         Build(),
		Host: HostInfo{
			OS:   runtime.GOOS,
			Arch: runtime.GOARCH,
			CPUs: runtime.NumCPU(),
		},
		Start:      r.StartTime,
		DurationMS: time.Since(r.StartTime).Seconds() * 1e3,
		Timings:    r.Timings(),
		Metrics:    Default().Snapshot(),
	}
	if runErr != nil {
		m.Error = runErr.Error()
	}
	return m
}

// WriteManifest writes the manifest as indented JSON.
func (r *Run) WriteManifest(path string, runErr error) error {
	data, err := json.MarshalIndent(r.Manifest(runErr), "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encoding manifest: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("telemetry: writing manifest: %w", err)
	}
	return nil
}

// ReadManifest loads and validates a manifest written by WriteManifest.
// Unknown schema versions are rejected, not guessed at: a v0 document
// (pre-versioning, no schema_version field) and any future version both
// fail with an error naming the versions involved, so tooling never
// silently misreads a shape it predates or postdates.
func ReadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("telemetry: reading manifest: %w", err)
	}
	return ParseManifest(data)
}

// ParseManifest decodes and version-checks manifest JSON.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("telemetry: decoding manifest: %w", err)
	}
	if m.SchemaVersion != ManifestSchemaVersion {
		return Manifest{}, fmt.Errorf("telemetry: manifest has schema_version %d; this reader understands %d",
			m.SchemaVersion, ManifestSchemaVersion)
	}
	return m, nil
}
