package telemetry

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Add(40)
	c.Inc()
	c.Inc()
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("events") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("walk.refs")
	// 0 → bucket 0; 1 → [1,1]; 2,3 → [2,3]; 4..7 → [4,7]; 24 → [16,31].
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 24} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hv := s.Histograms["walk.refs"]
	if hv.Count != 7 || hv.Sum != 41 || hv.Max != 24 {
		t.Fatalf("count/sum/max = %d/%d/%d, want 7/41/24", hv.Count, hv.Sum, hv.Max)
	}
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},
		{Lo: 1, Hi: 1, Count: 1},
		{Lo: 2, Hi: 3, Count: 2},
		{Lo: 4, Hi: 7, Count: 2},
		{Lo: 16, Hi: 31, Count: 1},
	}
	if len(hv.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", hv.Buckets, want)
	}
	for i, b := range hv.Buckets {
		if b != want[i] {
			t.Errorf("bucket[%d] = %+v, want %+v", i, b, want[i])
		}
	}
	if m := hv.Mean(); math.Abs(m-41.0/7) > 1e-9 {
		t.Errorf("mean = %g", m)
	}
	// p50: the 4th of 7 samples lands in [2,3] → upper bound 3.
	if q := hv.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %d, want 3", q)
	}
	// p99: bucketed bound 31 exceeds the exact max → capped at 24.
	if q := hv.Quantile(0.99); q != 24 {
		t.Errorf("p99 = %d, want 24 (capped at max)", q)
	}
}

func TestHistogramTopBucketDoesNotOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("huge")
	h.Observe(math.MaxUint64)
	hv := r.Snapshot().Histograms["huge"]
	if len(hv.Buckets) != 1 {
		t.Fatalf("buckets = %+v", hv.Buckets)
	}
	b := hv.Buckets[0]
	if b.Lo != 1<<63 || b.Hi != math.MaxUint64 {
		t.Errorf("top bucket = [%d, %d]", b.Lo, b.Hi)
	}
	if q := hv.Quantile(1); q != math.MaxUint64 {
		t.Errorf("p100 = %d", q)
	}
}

func TestLocalMergeMatchesDirectObserve(t *testing.T) {
	r := NewRegistry()
	direct := r.Histogram("direct")
	merged := r.Histogram("merged")
	var shards [4]Local
	for i := range shards {
		for v := uint64(0); v < 100; v++ {
			sample := v * uint64(i+1)
			direct.Observe(sample)
			shards[i].Observe(sample)
		}
	}
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(l *Local) {
			defer wg.Done()
			merged.Merge(l)
		}(&shards[i])
	}
	wg.Wait()
	s := r.Snapshot()
	d, m := s.Histograms["direct"], s.Histograms["merged"]
	if d.Count != m.Count || d.Sum != m.Sum || d.Max != m.Max {
		t.Fatalf("direct %+v != merged %+v", d, m)
	}
	if len(d.Buckets) != len(m.Buckets) {
		t.Fatalf("bucket sets differ: %+v vs %+v", d.Buckets, m.Buckets)
	}
	for i := range d.Buckets {
		if d.Buckets[i] != m.Buckets[i] {
			t.Errorf("bucket[%d]: %+v vs %+v", i, d.Buckets[i], m.Buckets[i])
		}
	}
}

func TestWalkProbeReset(t *testing.T) {
	var p WalkProbe
	p.Refs.Observe(5)
	p.Cycles.Observe(100)
	p.Reset()
	if p.Refs.Count() != 0 || p.Cycles.Count() != 0 {
		t.Error("probe not zeroed by Reset")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Reset()
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Errorf("counters survive Reset: %v", s.Counters)
	}
}

func TestRunLifecycleAndInertSpan(t *testing.T) {
	if Active() {
		t.Fatal("telemetry active before StartRun")
	}
	// A span with no run is inert: End must not panic or record.
	StartSpan("cell", "orphan").End()

	run := StartRun("test", map[string]string{"k": "v"}, true)
	if !Active() || Current() != run {
		t.Fatal("run not active after StartRun")
	}
	sp := StartSpan("cell", "c1")
	sp.End()
	StartSpan("replay", "phase").End() // traced but not a manifest timing
	if got := run.Tracer().Len(); got != 2 {
		t.Errorf("tracer has %d events, want 2", got)
	}
	timings := run.Timings()
	if len(timings) != 1 || timings[0].Name != "c1" || timings[0].Cat != "cell" {
		t.Errorf("timings = %+v", timings)
	}
	run.Stop()
	if Active() {
		t.Fatal("still active after Stop")
	}
	run.Stop() // idempotent
}

func TestStartRunResetsDefaultRegistry(t *testing.T) {
	Default().Counter("leftover").Add(9)
	run := StartRun("test", nil, false)
	defer run.Stop()
	if s := Default().Snapshot(); len(s.Counters) != 0 {
		t.Errorf("default registry not reset: %v", s.Counters)
	}
}

func TestTracerWriteFile(t *testing.T) {
	run := StartRun("test", nil, true)
	defer run.Stop()
	StartSpan("cell", "work").End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := run.Tracer().WriteFile(path, "test"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			TID  uint64  `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %+v", doc.TraceEvents)
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Name != "process_name" {
		t.Errorf("missing process_name metadata event: %+v", doc.TraceEvents[0])
	}
	ev := doc.TraceEvents[1]
	if ev.Name != "work" || ev.Ph != "X" || ev.TID == 0 {
		t.Errorf("span event = %+v", ev)
	}
}

func TestManifestRecordsErrorAndMetrics(t *testing.T) {
	run := StartRun("test", map[string]string{"scale": "small"}, false)
	defer run.Stop()
	Default().Counter("replay.events").Add(1000)
	StartSpan("section", "figure1").End()
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := run.WriteManifest(path, os.ErrDeadlineExceeded); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Tool != "test" || m.Config["scale"] != "small" {
		t.Errorf("tool/config = %q/%v", m.Tool, m.Config)
	}
	if m.Error == "" {
		t.Error("failed run's manifest has no error")
	}
	if m.Build.GoVersion == "" || m.Host.CPUs <= 0 {
		t.Errorf("build/host not stamped: %+v %+v", m.Build, m.Host)
	}
	if m.Metrics.Counters["replay.events"] != 1000 {
		t.Errorf("metrics snapshot = %v", m.Metrics.Counters)
	}
	if len(m.Timings) != 1 || m.Timings[0].Name != "figure1" {
		t.Errorf("timings = %+v", m.Timings)
	}
}

func TestProgressAggregation(t *testing.T) {
	var got [][2]int
	p := NewProgress(func(done, total int) { got = append(got, [2]int{done, total}) })
	p.Expect(2)
	p.Finish()
	p.Finish()
	if d, tot := p.Snapshot(); d != 2 || tot != 2 {
		t.Errorf("snapshot = %d/%d", d, tot)
	}
	want := [][2]int{{0, 2}, {1, 2}, {2, 2}}
	if len(got) != len(want) {
		t.Fatalf("callbacks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("callback[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Nil Progress: all methods are no-ops.
	var nilP *Progress
	nilP.Expect(1)
	nilP.Finish()
	if d, tot := nilP.Snapshot(); d != 0 || tot != 0 {
		t.Error("nil Progress reported counts")
	}
}

func TestProgressPublishesGauges(t *testing.T) {
	run := StartRun("test", nil, false)
	defer run.Stop()
	p := NewProgress(nil)
	p.Expect(5)
	p.Finish()
	s := Default().Snapshot()
	if s.Gauges["sched.cells.total"] != 5 || s.Gauges["sched.cells.done"] != 1 {
		t.Errorf("gauges = %v", s.Gauges)
	}
}

func TestVersionString(t *testing.T) {
	v := VersionString("mytool")
	if !strings.HasPrefix(v, "mytool go1.") {
		t.Errorf("version = %q", v)
	}
}

func TestFlagsSessionLifecycle(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		Trace:    filepath.Join(dir, "t.json"),
		Manifest: filepath.Join(dir, "m.json"),
	}
	if !f.Enabled() {
		t.Fatal("flags with paths not Enabled")
	}
	sess, err := f.Start("test", map[string]string{"a": "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !Active() {
		t.Fatal("session start did not activate telemetry")
	}
	StartSpan("cell", "c").End()
	if err := sess.Close(nil); err != nil {
		t.Fatal(err)
	}
	if Active() {
		t.Error("telemetry still active after Close")
	}
	for _, p := range []string{f.Trace, f.Manifest} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s not written: %v", p, err)
		}
	}
}

func TestInertSessionIsSafe(t *testing.T) {
	var f Flags
	if f.Enabled() {
		t.Fatal("zero Flags Enabled")
	}
	sess, err := f.Start("test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if Active() {
		t.Fatal("inert session activated telemetry")
	}
	if sess.Run() != nil {
		t.Error("inert session has a run")
	}
	if err := sess.Close(nil); err != nil {
		t.Error(err)
	}
	var nilSess *Session
	if err := nilSess.Close(nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramTableRendering(t *testing.T) {
	r := NewRegistry()
	r.Histogram("b.metric").Observe(4)
	r.Histogram("a.metric").Observe(2)
	out := r.Snapshot().HistogramTable("hists").Render()
	ia, ib := strings.Index(out, "a.metric"), strings.Index(out, "b.metric")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("rows missing or unsorted:\n%s", out)
	}
}
