package walkprof

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vdirect/internal/addr"
)

// feed drives a sampler with a synthetic miss stream derived from i, so
// identical calls produce identical streams.
func feed(s *Sampler, n int) {
	for i := 0; i < n; i++ {
		s.Miss("Base", uint64(i)>>2, addr.Page4K, ClassWalkNeither, 24, uint64(100+i%7), 0)
	}
}

func TestSamplerStrideDeterminism(t *testing.T) {
	p := &Profile{period: 8, streams: make(map[CellKey][][]Sample)}
	a := p.Sampler("cell", 0, 12345)
	b := p.Sampler("cell", 0, 12345)
	feed(a, 1000)
	feed(b, 1000)
	if !reflect.DeepEqual(a.Samples(), b.Samples()) {
		t.Fatal("same seed + same miss stream produced different samples")
	}
	// 1000 misses at period 8 with phase 12345%8+1=2: first sample at
	// miss 2, then every 8th → 1 + (1000-2)/8 = 125.
	if got := a.Len(); got != 125 {
		t.Fatalf("sample count = %d, want 125", got)
	}
	// A different seed shifts the phase but keeps the count within one.
	c := p.Sampler("cell", 0, 7)
	feed(c, 1000)
	if diff := a.Len() - c.Len(); diff < -1 || diff > 1 {
		t.Fatalf("phase shift changed sample count by %d", diff)
	}
	if reflect.DeepEqual(a.Samples(), c.Samples()) {
		t.Fatal("different seeds produced identical sample streams (phase not applied)")
	}
}

func TestSamplerResetRewindsPhase(t *testing.T) {
	p := &Profile{period: 8, streams: make(map[CellKey][][]Sample)}
	a := p.Sampler("cell", 0, 3)
	feed(a, 500) // warmup traffic
	a.Reset()
	feed(a, 1000)
	b := p.Sampler("cell", 0, 3)
	feed(b, 1000)
	if !reflect.DeepEqual(a.Samples(), b.Samples()) {
		t.Fatal("Reset did not rewind the stride to its seeded phase")
	}
}

func TestEnableLifecycle(t *testing.T) {
	if Enabled() != nil {
		t.Fatal("profile active before Enable")
	}
	p := Enable(0)
	if p.Period() != DefaultPeriod {
		t.Fatalf("period = %d, want DefaultPeriod %d", p.Period(), DefaultPeriod)
	}
	if Enabled() != p {
		t.Fatal("Enabled() did not return the installed profile")
	}
	p2 := Enable(16)
	if Enabled() != p2 {
		t.Fatal("Enable did not replace the active profile")
	}
	p.Stop() // stale handle must not deactivate the newer profile
	if Enabled() != p2 {
		t.Fatal("stale Stop deactivated the newer profile")
	}
	p2.Stop()
	if Enabled() != nil {
		t.Fatal("Stop did not deactivate the profile")
	}
	p2.Stop() // idempotent
}

func TestSnapshotCanonicalOrder(t *testing.T) {
	// Commit the same two cells in two different orders; Dumps must match.
	build := func(order []int) Dump {
		p := Enable(4)
		defer p.Stop()
		samplers := []*Sampler{
			p.Sampler("b/cell", 0, 1),
			p.Sampler("a/cell", 1, 2),
			p.Sampler("a/cell", 0, 3),
		}
		for i, s := range samplers {
			feed(s, 100+10*i)
		}
		for _, i := range order {
			p.Commit(samplers[i])
		}
		return p.Snapshot()
	}
	d1 := build([]int{0, 1, 2})
	d2 := build([]int{2, 0, 1})
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("Snapshot depends on commit order")
	}
	wantCells := []CellKey{{"a/cell", 0}, {"a/cell", 1}, {"b/cell", 0}}
	for i, c := range d1.Cells {
		if (CellKey{c.Cell, c.Tenant}) != wantCells[i] {
			t.Fatalf("cell %d = %s/%d, want %v", i, c.Cell, c.Tenant, wantCells[i])
		}
	}
}

func TestSnapshotDuplicateStreamsSorted(t *testing.T) {
	// Two distinct streams under one key must concatenate in
	// content-sorted order regardless of commit order.
	build := func(swap bool) Dump {
		p := Enable(2)
		defer p.Stop()
		a := p.Sampler("cell", 0, 0)
		b := p.Sampler("cell", 0, 0)
		feed(a, 10)
		for i := 100; i < 110; i++ { // different content
			b.Miss("DS", uint64(i), addr.Page2M, ClassWalk1D, 4, 40, 1)
		}
		if swap {
			p.Commit(b)
			p.Commit(a)
		} else {
			p.Commit(a)
			p.Commit(b)
		}
		return p.Snapshot()
	}
	if !reflect.DeepEqual(build(false), build(true)) {
		t.Fatal("duplicate-key streams not canonically ordered")
	}
}

func TestQuantileExact(t *testing.T) {
	var q Quantile
	// 1..100, each once: nearest-rank percentiles are exact values.
	for i := uint64(1); i <= 100; i++ {
		q.Add(i)
	}
	for _, tc := range []struct {
		p    float64
		want uint64
	}{{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 100}, {0.0, 1}} {
		if got := q.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if q.Max() != 100 {
		t.Errorf("Max = %d, want 100", q.Max())
	}
	var empty Quantile
	if empty.Percentile(0.5) != 0 || empty.Count() != 0 {
		t.Error("empty quantile not zero")
	}
}

func TestMissClassRoundtrip(t *testing.T) {
	for _, c := range MissClasses() {
		got, ok := ParseMissClass(c.String())
		if !ok || got != c {
			t.Errorf("ParseMissClass(%q) = %v,%v", c.String(), got, ok)
		}
	}
	if _, ok := ParseMissClass("bogus"); ok {
		t.Error("ParseMissClass accepted bogus class")
	}
	if MissClass(200).String() != "unknown" {
		t.Error("out-of-range class did not stringify as unknown")
	}
}

func TestFileRoundtrip(t *testing.T) {
	p := Enable(16)
	defer p.Stop()
	s := p.Sampler("gups/4K+4K", 0, 42)
	feed(s, 5000)
	s2 := p.Sampler("seq/2M+2M", 3, 7)
	for i := 0; i < 300; i++ {
		s2.Miss("VMD", uint64(i)<<9, addr.Page2M, ClassWalkVMMOnly, 12, 60, 3)
	}
	p.Commit(s)
	p.Commit(s2)
	d := p.Snapshot()

	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatal("file roundtrip changed the dump")
	}

	// Byte determinism: re-encoding yields identical bytes.
	var buf2 bytes.Buffer
	if err := Write(&buf2, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Write is not byte-deterministic")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"wrong format":   `{"format":"other","schema_version":1,"period":64}` + "\n",
		"future version": `{"format":"vdirect-walkprof","schema_version":99,"period":64}` + "\n",
		"zero period":    `{"format":"vdirect-walkprof","schema_version":1,"period":0}` + "\n",
		"bad class": `{"format":"vdirect-walkprof","schema_version":1,"period":64}` + "\n" +
			`{"cell":"c","tenant":0,"scheme":"Base","class":"nope","vpn":1,"size":"4K","refs":1,"cycles":1,"asid":0}` + "\n",
		"bad size": `{"format":"vdirect-walkprof","schema_version":1,"period":64}` + "\n" +
			`{"cell":"c","tenant":0,"scheme":"Base","class":"walk-1d","vpn":1,"size":"8K","refs":1,"cycles":1,"asid":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted invalid input", name)
		}
	}
}

func testDump() Dump {
	p := Enable(8)
	defer p.Stop()
	a := p.Sampler("gups/4K+4K", 0, 1)
	for i := 0; i < 2000; i++ {
		cls := ClassWalkNeither
		if i%5 == 0 {
			cls = ClassL2Hit
		}
		a.Miss("Base", uint64(i*977)%(1<<20), addr.Page4K, cls, 24, uint64(50+i%40), 0)
	}
	b := p.Sampler("gups/4K+4K", 1, 2)
	for i := 0; i < 800; i++ {
		b.Miss("Dual", uint64(i), addr.Page4K, ClassZeroD, 0, 1, 2)
	}
	p.Commit(a)
	p.Commit(b)
	return p.Snapshot()
}

func TestAttributionMatchesSamples(t *testing.T) {
	d := testDump()
	schemes, cells := Attribution(d)
	var total uint64
	for _, a := range schemes {
		total += a.Samples
		if a.EstRefs(d.Period) != a.Refs*d.Period {
			t.Error("EstRefs not period-scaled")
		}
	}
	if int(total) != d.NumSamples() {
		t.Fatalf("scheme attribution covers %d samples, dump has %d", total, d.NumSamples())
	}
	var cellTotal uint64
	for _, c := range cells {
		cellTotal += c.Samples
	}
	if int(cellTotal) != d.NumSamples() {
		t.Fatalf("cell attribution covers %d samples, dump has %d", cellTotal, d.NumSamples())
	}
}

func TestTopPagesBounded(t *testing.T) {
	d := testDump()
	top := TopPages(d, 5)
	if len(top) != 5 {
		t.Fatalf("TopPages(5) returned %d rows", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Cycles > top[i-1].Cycles {
			t.Fatal("TopPages not sorted by cycles desc")
		}
	}
}

func TestRegionLabels(t *testing.T) {
	if RegionBucket(0) != 0 {
		t.Fatal("VPN 0 bucket")
	}
	if got := RegionLabel(0); got != "[0,4K)" {
		t.Errorf("bucket 0 label = %q", got)
	}
	if got := RegionLabel(RegionBucket(1)); got != "[4K,8K)" {
		t.Errorf("bucket for VPN 1 label = %q", got)
	}
	// VPN 2^18 = 1G boundary: bucket 19 covers [512M,1G).
	if got := RegionLabel(RegionBucket(1 << 18)); got != "[1G,2G)" {
		t.Errorf("VPN 2^18 label = %q", got)
	}
}

func TestReportAndCollapsedDeterministic(t *testing.T) {
	d := testDump()
	r1, r2 := Report(d, 10), Report(d, 10)
	if r1 != r2 {
		t.Fatal("Report not deterministic")
	}
	for _, want := range []string{"per-scheme cost attribution", "hot pages", "heatmap", "percentiles"} {
		if !strings.Contains(r1, want) {
			t.Errorf("Report missing %q section", want)
		}
	}
	c := Collapsed(d)
	if c != Collapsed(d) {
		t.Fatal("Collapsed not deterministic")
	}
	if !strings.Contains(c, "gups/4K+4K;Base;") {
		t.Errorf("Collapsed missing expected frame prefix:\n%s", c)
	}
	if !strings.Contains(c, "gups/4K+4K#1;Dual;zero-d;") {
		t.Errorf("Collapsed missing tenant-tagged frame:\n%s", c)
	}
	for _, line := range strings.Split(strings.TrimSpace(c), "\n") {
		if !strings.Contains(line, " ") || strings.Count(line, ";") != 3 {
			t.Errorf("malformed folded line %q", line)
		}
	}
}

func TestSummarize(t *testing.T) {
	d := testDump()
	s := Summarize(d)
	if s.Samples != d.NumSamples() || s.Cells != len(d.Cells) || s.Period != d.Period {
		t.Fatalf("Summary totals wrong: %+v", s)
	}
	if len(s.Schemes) == 0 || len(s.Quantiles) == 0 {
		t.Fatal("Summary missing scheme/quantile rows")
	}
}
