// The sample-file format: JSON lines, one header object followed by
// one object per sample, cells in canonical Dump order. The format is
// versioned and every reader rejects versions it does not understand —
// a sample file is an artifact other tools (cmd/walkprof, CI scripts)
// consume long after the writing binary is gone.

package walkprof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"vdirect/internal/addr"
)

// SchemaVersion is the sample-file (and Dump) schema this package
// writes and understands. Bump it when the record shape changes.
const SchemaVersion = 1

// FileFormat names the format in the header line.
const FileFormat = "vdirect-walkprof"

type fileHeader struct {
	Format        string `json:"format"`
	SchemaVersion int    `json:"schema_version"`
	Period        uint64 `json:"period"`
}

type fileRecord struct {
	Cell   string `json:"cell"`
	Tenant int    `json:"tenant"`
	Scheme string `json:"scheme"`
	Class  string `json:"class"`
	VPN    uint64 `json:"vpn"`
	Size   string `json:"size"`
	Refs   uint64 `json:"refs"`
	Cycles uint64 `json:"cycles"`
	ASID   uint16 `json:"asid"`
}

// Write encodes the dump to w: the header line, then one JSON line per
// sample. Output is byte-deterministic (struct field order is fixed and
// the dump is already canonically ordered).
func Write(w io.Writer, d Dump) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(fileHeader{Format: FileFormat, SchemaVersion: SchemaVersion, Period: d.Period}); err != nil {
		return fmt.Errorf("walkprof: encoding header: %w", err)
	}
	for _, c := range d.Cells {
		for _, s := range c.Samples {
			rec := fileRecord{
				Cell:   c.Cell,
				Tenant: c.Tenant,
				Scheme: s.Scheme,
				Class:  s.Class.String(),
				VPN:    s.VPN,
				Size:   s.Size.String(),
				Refs:   s.Refs,
				Cycles: s.Cycles,
				ASID:   s.ASID,
			}
			if err := enc.Encode(rec); err != nil {
				return fmt.Errorf("walkprof: encoding sample: %w", err)
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes the dump to path.
func WriteFile(path string, d Dump) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("walkprof: %w", err)
	}
	if err := Write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes a sample file. Unknown formats and schema versions are
// rejected, not guessed at.
func Read(r io.Reader) (Dump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Dump{}, fmt.Errorf("walkprof: reading header: %w", err)
		}
		return Dump{}, fmt.Errorf("walkprof: empty sample file")
	}
	var h fileHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return Dump{}, fmt.Errorf("walkprof: decoding header: %w", err)
	}
	if h.Format != FileFormat {
		return Dump{}, fmt.Errorf("walkprof: not a %s file (format %q)", FileFormat, h.Format)
	}
	if h.SchemaVersion != SchemaVersion {
		return Dump{}, fmt.Errorf("walkprof: sample file has schema_version %d; this reader understands %d",
			h.SchemaVersion, SchemaVersion)
	}
	if h.Period < 1 {
		return Dump{}, fmt.Errorf("walkprof: sample file has invalid period %d", h.Period)
	}
	d := Dump{SchemaVersion: h.SchemaVersion, Period: h.Period}
	var cur *CellDump
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec fileRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return Dump{}, fmt.Errorf("walkprof: line %d: %w", line, err)
		}
		class, ok := ParseMissClass(rec.Class)
		if !ok {
			return Dump{}, fmt.Errorf("walkprof: line %d: unknown miss class %q", line, rec.Class)
		}
		size, ok := parsePageSize(rec.Size)
		if !ok {
			return Dump{}, fmt.Errorf("walkprof: line %d: unknown page size %q", line, rec.Size)
		}
		if cur == nil || cur.Cell != rec.Cell || cur.Tenant != rec.Tenant {
			d.Cells = append(d.Cells, CellDump{Cell: rec.Cell, Tenant: rec.Tenant})
			cur = &d.Cells[len(d.Cells)-1]
		}
		cur.Samples = append(cur.Samples, Sample{
			VPN:    rec.VPN,
			Size:   size,
			Class:  class,
			Scheme: rec.Scheme,
			Refs:   rec.Refs,
			Cycles: rec.Cycles,
			ASID:   rec.ASID,
		})
	}
	if err := sc.Err(); err != nil {
		return Dump{}, fmt.Errorf("walkprof: reading samples: %w", err)
	}
	return d, nil
}

// ReadFile reads a sample file from path.
func ReadFile(path string) (Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return Dump{}, fmt.Errorf("walkprof: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func parsePageSize(s string) (addr.PageSize, bool) {
	switch s {
	case "4K":
		return addr.Page4K, true
	case "2M":
		return addr.Page2M, true
	case "1G":
		return addr.Page1G, true
	}
	return 0, false
}
