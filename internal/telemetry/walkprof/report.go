// Aggregation and rendering over a sample Dump: the address-space
// heatmap (log2-bucketed VPN regions × miss class × scheme), an exact
// quantile sketch for walk cycles, top-N hot-page tables, per-cell and
// per-scheme cost attribution, and a collapsed-stack file for standard
// flamegraph tooling. Every aggregate scales sampled sums by the
// period, so the estimates are directly comparable to the MMU's own
// counters (within sampling error). All output orders are canonical —
// renderings of the same Dump are byte-identical everywhere.

package walkprof

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"vdirect/internal/addr"
	"vdirect/internal/stats"
)

// RegionBucket maps a 4K VPN to its log2 address-region bucket: bucket
// 0 is VPN 0 (the first 4K of address space), bucket k ≥ 1 covers VPNs
// [2^(k-1), 2^k).
func RegionBucket(vpn uint64) int { return bits.Len64(vpn) }

// RegionLabel renders a bucket as its virtual address range.
func RegionLabel(bucket int) string {
	if bucket == 0 {
		return "[0,4K)"
	}
	lo := uint64(1) << (bucket - 1) << addr.PageShift4K
	if bucket >= 52 {
		// Above the canonical address width; print raw to avoid overflow.
		return fmt.Sprintf("[2^%d,2^%d)", bucket-1+addr.PageShift4K, bucket+addr.PageShift4K)
	}
	hi := uint64(1) << bucket << addr.PageShift4K
	return fmt.Sprintf("[%s,%s)", humanBytes(lo), humanBytes(hi))
}

func humanBytes(b uint64) string {
	switch {
	case b >= 1<<40 && b%(1<<40) == 0:
		return fmt.Sprintf("%dT", b>>40)
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dG", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dK", b>>10)
	}
	return fmt.Sprint(b)
}

// HeatCell is one occupied heatmap cell: an address region under one
// scheme and miss class, with sampled and period-scaled totals.
type HeatCell struct {
	Scheme  string
	Class   MissClass
	Bucket  int
	Samples uint64
	Refs    uint64 // sampled sum (scale by Period for the estimate)
	Cycles  uint64
}

// Heatmap aggregates the dump into scheme × class × region cells,
// sorted by scheme, class, bucket.
func Heatmap(d Dump) []HeatCell {
	type key struct {
		scheme string
		class  MissClass
		bucket int
	}
	agg := make(map[key]*HeatCell)
	for _, c := range d.Cells {
		for _, s := range c.Samples {
			k := key{s.Scheme, s.Class, RegionBucket(s.VPN)}
			h := agg[k]
			if h == nil {
				h = &HeatCell{Scheme: k.scheme, Class: k.class, Bucket: k.bucket}
				agg[k] = h
			}
			h.Samples++
			h.Refs += s.Refs
			h.Cycles += s.Cycles
		}
	}
	out := make([]HeatCell, 0, len(agg))
	for _, h := range agg {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Bucket < out[j].Bucket
	})
	return out
}

// HeatmapTable renders the heatmap with period-scaled estimates.
func HeatmapTable(d Dump) *stats.Table {
	t := stats.NewTable("walkprof — address-space heatmap (scheme × miss class × log2 VPN region)",
		"scheme", "class", "region", "samples", "est refs", "est cycles")
	for _, h := range Heatmap(d) {
		t.AddRow(h.Scheme, h.Class.String(), RegionLabel(h.Bucket),
			fmt.Sprint(h.Samples), fmt.Sprint(h.Refs*d.Period), fmt.Sprint(h.Cycles*d.Period))
	}
	return t
}

// Quantile is an exact quantile sketch over discrete values: a value →
// count map, so percentiles are computed from the true distribution
// rather than interpolated buckets. Walk cycle costs are small
// integers with heavy repetition, which keeps the map tiny.
type Quantile struct {
	counts map[uint64]uint64
	n      uint64
}

// Add records one observation.
func (q *Quantile) Add(v uint64) {
	if q.counts == nil {
		q.counts = make(map[uint64]uint64)
	}
	q.counts[v]++
	q.n++
}

// Count returns the number of observations.
func (q *Quantile) Count() uint64 { return q.n }

// Percentile returns the exact nearest-rank p-quantile (p in [0,1]).
func (q *Quantile) Percentile(p float64) uint64 {
	if q.n == 0 {
		return 0
	}
	rank := uint64(p * float64(q.n))
	if rank < 1 {
		rank = 1
	}
	if rank > q.n {
		rank = q.n
	}
	vals := make([]uint64, 0, len(q.counts))
	for v := range q.counts {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var cum uint64
	for _, v := range vals {
		cum += q.counts[v]
		if cum >= rank {
			return v
		}
	}
	return vals[len(vals)-1]
}

// Max returns the largest observed value.
func (q *Quantile) Max() uint64 {
	var m uint64
	for v := range q.counts {
		if v > m {
			m = v
		}
	}
	return m
}

// SchemeQuantileRow summarizes one scheme's sampled walk-cycle
// distribution with exact percentiles.
type SchemeQuantileRow struct {
	Scheme  string `json:"scheme"`
	Samples uint64 `json:"samples"`
	P50     uint64 `json:"p50"`
	P90     uint64 `json:"p90"`
	P99     uint64 `json:"p99"`
	Max     uint64 `json:"max"`
}

// CycleQuantiles computes exact per-scheme cycle percentiles from the
// sampled misses.
func CycleQuantiles(d Dump) []SchemeQuantileRow {
	qs := make(map[string]*Quantile)
	for _, c := range d.Cells {
		for _, s := range c.Samples {
			q := qs[s.Scheme]
			if q == nil {
				q = &Quantile{}
				qs[s.Scheme] = q
			}
			q.Add(s.Cycles)
		}
	}
	names := make([]string, 0, len(qs))
	for n := range qs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]SchemeQuantileRow, 0, len(names))
	for _, n := range names {
		q := qs[n]
		out = append(out, SchemeQuantileRow{
			Scheme:  n,
			Samples: q.Count(),
			P50:     q.Percentile(0.50),
			P90:     q.Percentile(0.90),
			P99:     q.Percentile(0.99),
			Max:     q.Max(),
		})
	}
	return out
}

// QuantileTable renders the per-scheme exact cycle percentiles.
func QuantileTable(d Dump) *stats.Table {
	t := stats.NewTable("walkprof — exact miss-cost percentiles (cycles per sampled miss)",
		"scheme", "samples", "p50", "p90", "p99", "max")
	for _, r := range CycleQuantiles(d) {
		t.AddRow(r.Scheme, fmt.Sprint(r.Samples), fmt.Sprint(r.P50),
			fmt.Sprint(r.P90), fmt.Sprint(r.P99), fmt.Sprint(r.Max))
	}
	return t
}

// PageStat aggregates samples for one virtual page in one cell.
type PageStat struct {
	Cell    string
	Tenant  int
	Scheme  string
	VPN     uint64
	Samples uint64
	Refs    uint64
	Cycles  uint64
}

// TopPages returns the n hottest pages by sampled cycle cost,
// deterministically tie-broken by cell, tenant, then VPN.
func TopPages(d Dump, n int) []PageStat {
	type key struct {
		cell   string
		tenant int
		scheme string
		vpn    uint64
	}
	agg := make(map[key]*PageStat)
	for _, c := range d.Cells {
		for _, s := range c.Samples {
			k := key{c.Cell, c.Tenant, s.Scheme, s.VPN}
			p := agg[k]
			if p == nil {
				p = &PageStat{Cell: c.Cell, Tenant: c.Tenant, Scheme: s.Scheme, VPN: s.VPN}
				agg[k] = p
			}
			p.Samples++
			p.Refs += s.Refs
			p.Cycles += s.Cycles
		}
	}
	out := make([]PageStat, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].VPN < out[j].VPN
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopPagesTable renders the hot-page list with period-scaled estimates.
func TopPagesTable(d Dump, n int) *stats.Table {
	t := stats.NewTable(fmt.Sprintf("walkprof — top %d hot pages by sampled miss cost", n),
		"cell", "tenant", "scheme", "vpn", "samples", "est refs", "est cycles")
	for _, p := range TopPages(d, n) {
		t.AddRow(p.Cell, fmt.Sprint(p.Tenant), p.Scheme, fmt.Sprintf("%#x", p.VPN),
			fmt.Sprint(p.Samples), fmt.Sprint(p.Refs*d.Period), fmt.Sprint(p.Cycles*d.Period))
	}
	return t
}

// SchemeAttribution is the per-scheme cost attribution: sampled sums
// plus their period-scaled estimates of the scheme's true totals.
type SchemeAttribution struct {
	Scheme  string `json:"scheme"`
	Samples uint64 `json:"samples"`
	Refs    uint64 `json:"refs"`
	Cycles  uint64 `json:"cycles"`
}

// EstRefs returns the period-scaled estimate of total walk references.
func (a SchemeAttribution) EstRefs(period uint64) uint64 { return a.Refs * period }

// EstCycles returns the period-scaled estimate of total walk cycles.
func (a SchemeAttribution) EstCycles(period uint64) uint64 { return a.Cycles * period }

// CellAttribution is the per-cell/tenant view of the same attribution.
type CellAttribution struct {
	Cell    string
	Tenant  int
	Samples uint64
	Refs    uint64
	Cycles  uint64
}

// Attribution aggregates the dump by scheme and by cell/tenant.
func Attribution(d Dump) ([]SchemeAttribution, []CellAttribution) {
	bySch := make(map[string]*SchemeAttribution)
	var cells []CellAttribution
	for _, c := range d.Cells {
		ca := CellAttribution{Cell: c.Cell, Tenant: c.Tenant}
		for _, s := range c.Samples {
			a := bySch[s.Scheme]
			if a == nil {
				a = &SchemeAttribution{Scheme: s.Scheme}
				bySch[s.Scheme] = a
			}
			a.Samples++
			a.Refs += s.Refs
			a.Cycles += s.Cycles
			ca.Samples++
			ca.Refs += s.Refs
			ca.Cycles += s.Cycles
		}
		cells = append(cells, ca)
	}
	names := make([]string, 0, len(bySch))
	for n := range bySch {
		names = append(names, n)
	}
	sort.Strings(names)
	schemes := make([]SchemeAttribution, 0, len(names))
	for _, n := range names {
		schemes = append(schemes, *bySch[n])
	}
	return schemes, cells
}

// AttributionTables renders the per-scheme and per-cell attribution.
func AttributionTables(d Dump) (scheme, cell *stats.Table) {
	schemes, cells := Attribution(d)
	scheme = stats.NewTable("walkprof — per-scheme cost attribution (period-scaled estimates)",
		"scheme", "samples", "est refs", "est cycles")
	for _, a := range schemes {
		scheme.AddRow(a.Scheme, fmt.Sprint(a.Samples),
			fmt.Sprint(a.EstRefs(d.Period)), fmt.Sprint(a.EstCycles(d.Period)))
	}
	cell = stats.NewTable("walkprof — per-cell / per-tenant cost attribution",
		"cell", "tenant", "samples", "est refs", "est cycles")
	for _, a := range cells {
		cell.AddRow(a.Cell, fmt.Sprint(a.Tenant), fmt.Sprint(a.Samples),
			fmt.Sprint(a.Refs*d.Period), fmt.Sprint(a.Cycles*d.Period))
	}
	return scheme, cell
}

// ClassCell is one cell/tenant's sampled cost under one §VII miss
// class. For whole-host consolidation cells the tenant index is the
// guest index, so this is the per-guest miss-class attribution: which
// guests are paying for walks, which resolve in segments, and which
// escape-forced 2D walks the host's services induced.
type ClassCell struct {
	Cell    string
	Tenant  int
	Class   MissClass
	Samples uint64
	Refs    uint64
	Cycles  uint64
}

// ClassAttribution aggregates the dump by cell/tenant × miss class,
// sorted by cell, tenant, class.
func ClassAttribution(d Dump) []ClassCell {
	type key struct {
		cell   string
		tenant int
		class  MissClass
	}
	agg := make(map[key]*ClassCell)
	for _, c := range d.Cells {
		for _, s := range c.Samples {
			k := key{c.Cell, c.Tenant, s.Class}
			a := agg[k]
			if a == nil {
				a = &ClassCell{Cell: k.cell, Tenant: k.tenant, Class: k.class}
				agg[k] = a
			}
			a.Samples++
			a.Refs += s.Refs
			a.Cycles += s.Cycles
		}
	}
	out := make([]ClassCell, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// ClassTable renders the per-cell/tenant miss-class attribution with
// period-scaled estimates.
func ClassTable(d Dump) *stats.Table {
	t := stats.NewTable("walkprof — per-cell / per-tenant miss-class attribution (§VII taxonomy)",
		"cell", "tenant", "class", "samples", "est refs", "est cycles")
	for _, a := range ClassAttribution(d) {
		t.AddRow(a.Cell, fmt.Sprint(a.Tenant), a.Class.String(),
			fmt.Sprint(a.Samples), fmt.Sprint(a.Refs*d.Period), fmt.Sprint(a.Cycles*d.Period))
	}
	return t
}

// Collapsed renders the dump as collapsed-stack ("folded") lines —
// `cell;scheme;class;region value` — consumable by standard flamegraph
// tooling (flamegraph.pl, inferno, speedscope). The weight is the
// period-scaled cycle estimate, so frame widths read as cycles.
func Collapsed(d Dump) string {
	type key struct {
		cell   string
		tenant int
		scheme string
		class  MissClass
		bucket int
	}
	agg := make(map[key]uint64)
	for _, c := range d.Cells {
		for _, s := range c.Samples {
			agg[key{c.Cell, c.Tenant, s.Scheme, s.Class, RegionBucket(s.VPN)}] += s.Cycles
		}
	}
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		switch {
		case a.cell != b.cell:
			return a.cell < b.cell
		case a.tenant != b.tenant:
			return a.tenant < b.tenant
		case a.scheme != b.scheme:
			return a.scheme < b.scheme
		case a.class != b.class:
			return a.class < b.class
		default:
			return a.bucket < b.bucket
		}
	})
	var b strings.Builder
	for _, k := range keys {
		name := k.cell
		if k.tenant != 0 {
			name = fmt.Sprintf("%s#%d", k.cell, k.tenant)
		}
		fmt.Fprintf(&b, "%s;%s;%s;%s %d\n",
			name, k.scheme, k.class, RegionLabel(k.bucket), agg[k]*d.Period)
	}
	return b.String()
}

// Report renders the full walkprof analysis: summary line, per-scheme
// and per-cell attribution, the per-cell §VII miss-class breakdown,
// exact percentiles, top-N pages, and the heatmap. Both cmd/walkprof and paperbench's walkprof section print
// exactly this.
func Report(d Dump, topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "walkprof: %d samples across %d cells, period 1-in-%d (schema v%d)\n\n",
		d.NumSamples(), len(d.Cells), d.Period, d.SchemaVersion)
	schemeT, cellT := AttributionTables(d)
	b.WriteString(schemeT.Render())
	b.WriteString("\n")
	b.WriteString(cellT.Render())
	b.WriteString("\n")
	b.WriteString(ClassTable(d).Render())
	b.WriteString("\n")
	b.WriteString(QuantileTable(d).Render())
	b.WriteString("\n")
	b.WriteString(TopPagesTable(d, topN).Render())
	b.WriteString("\n")
	b.WriteString(HeatmapTable(d).Render())
	return b.String()
}

// Summary is the JSON-friendly aggregate the live endpoint serves.
type Summary struct {
	SchemaVersion int                 `json:"schema_version"`
	Period        uint64              `json:"period"`
	Cells         int                 `json:"cells"`
	Samples       int                 `json:"samples"`
	Schemes       []SchemeAttribution `json:"schemes,omitempty"`
	Quantiles     []SchemeQuantileRow `json:"quantiles,omitempty"`
}

// Summarize builds the endpoint summary from a dump.
func Summarize(d Dump) Summary {
	schemes, _ := Attribution(d)
	return Summary{
		SchemaVersion: d.SchemaVersion,
		Period:        d.Period,
		Cells:         len(d.Cells),
		Samples:       d.NumSamples(),
		Schemes:       schemes,
		Quantiles:     CycleQuantiles(d),
	}
}
