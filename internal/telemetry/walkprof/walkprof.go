// Package walkprof is the harness's walk-level attribution layer — the
// simulated analogue of the paper's BadgerTrap instrumentation (§VII).
// Where internal/telemetry reports aggregate counters (how many cycles
// each scheme spends on TLB-miss handling), walkprof records *which*
// misses cost what: a deterministic 1-in-N sample of individual L1-miss
// resolutions, each tagged with the 4K virtual page, the resulting
// translation's page size, the active scheme, the miss class of the
// §VII taxonomy, the walk's memory-reference and cycle cost, and the
// address-space/tenant identity.
//
// Sampling is stride-based and owned by the simulation cell: the
// sampler is a plain countdown decremented on the (already slow) miss
// path, with no time, no math/rand, and no shared state — the same
// discipline as telemetry's Local histogram shards. A cell's sample
// stream is therefore a pure function of that cell's access stream and
// seed, so output is byte-identical at any scheduler parallelism or
// shard count, and a disabled profiler costs the MMU exactly one nil
// check per miss.
//
// Lifecycle mirrors telemetry: Enable installs a process-wide Profile,
// cells attach per-cell Samplers and commit them once at completion,
// and Snapshot produces a deterministic Dump that the aggregators
// (heatmap, exact quantiles, top pages, attribution — see report.go)
// and the sample-file writer consume.
package walkprof

import (
	"sort"
	"sync"
	"sync/atomic"

	"vdirect/internal/addr"
)

// MissClass classifies how one L1 TLB miss resolved, following the
// paper's §VII BadgerTrap taxonomy: segment-resolved misses (the 0D
// fast paths), L2 TLB hits, and page walks split by which segment
// covered the address — the Table I F_DD / F_VD / F_GD fractions.
type MissClass uint8

// The miss classes. Walk classes carry the Table I segment-coverage
// split; 1D walks (unvirtualized paging, where coverage does not
// apply) have their own class.
const (
	// ClassZeroD: resolved purely by segment registers — Dual Direct's
	// combined check or Direct Segment's single check. Zero references.
	ClassZeroD MissClass = iota
	// ClassL2Hit: resolved by the shared second-level TLB.
	ClassL2Hit
	// ClassWalk1D: a native (unvirtualized) page walk.
	ClassWalk1D
	// ClassWalkBoth: a 2D walk whose address both segments covered
	// (F_DD) — possible when a filter escape forced the walk.
	ClassWalkBoth
	// ClassWalkVMMOnly: a 2D walk with only the VMM segment covering
	// the final gPA (F_VD).
	ClassWalkVMMOnly
	// ClassWalkGuestOnly: a 2D walk with only the guest segment
	// covering the gVA (F_GD).
	ClassWalkGuestOnly
	// ClassWalkNeither: a 2D walk with no segment coverage — the full
	// nested-paging miss.
	ClassWalkNeither

	numClasses
)

var classNames = [numClasses]string{
	ClassZeroD:         "zero-d",
	ClassL2Hit:         "l2-hit",
	ClassWalk1D:        "walk-1d",
	ClassWalkBoth:      "walk-both",
	ClassWalkVMMOnly:   "walk-vmm-only",
	ClassWalkGuestOnly: "walk-guest-only",
	ClassWalkNeither:   "walk-neither",
}

func (c MissClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// ParseMissClass is the inverse of String, used by the sample-file
// reader.
func ParseMissClass(s string) (MissClass, bool) {
	for i, n := range classNames {
		if n == s {
			return MissClass(i), true
		}
	}
	return 0, false
}

// MissClasses returns every class in declaration order.
func MissClasses() []MissClass {
	out := make([]MissClass, numClasses)
	for i := range out {
		out[i] = MissClass(i)
	}
	return out
}

// Sample is one recorded L1-miss resolution.
type Sample struct {
	// VPN is the accessed 4K virtual page number (gVA >> 12) — the
	// granularity BadgerTrap attributes misses at, independent of the
	// mapping's page size.
	VPN uint64
	// Size is the resulting translation's effective page size (the
	// smaller of the two dimensions' leaves); 4K for segment and L2
	// resolutions.
	Size addr.PageSize
	// Class is the §VII miss class.
	Class MissClass
	// Scheme is the active translation scheme's registry name.
	Scheme string
	// Refs and Cycles are this miss's page-table memory references and
	// charged cycles — exact per-miss deltas of the MMU's own counters.
	Refs   uint64
	Cycles uint64
	// ASID is the address space the miss occurred in (0 when the cell
	// never context-switches).
	ASID uint16
}

// Sampler records every period-th miss of one simulation cell. It is
// single-goroutine state owned by the cell, exactly like a telemetry
// Local shard: plain decrements on the miss path, merged into the
// shared Profile once, at cell completion.
type Sampler struct {
	period    uint64
	countdown uint64
	start     uint64 // countdown's initial value, restored by Reset
	cell      string
	tenant    int
	samples   []Sample
}

// Tick offers one resolved L1 miss to the stride and reports whether
// this miss is the period-th one to record. It is the entire hot-path
// cost of an enabled sampler — a decrement and a branch, small enough
// to inline — so callers build Record's arguments only for the 1-in-N
// sampled misses. The stride is deterministic — no clock, no RNG — so
// the sample stream is a pure function of the cell's miss stream and
// the sampler's seed.
func (s *Sampler) Tick() bool {
	s.countdown--
	if s.countdown != 0 {
		return false
	}
	s.countdown = s.period
	return true
}

// Refund re-arms the fire the last Tick consumed, for callers that
// tick before the walk and then see it fault: the fault stays out of
// the sample stream, and the next offered miss records instead of the
// scheduled sample being silently absorbed.
func (s *Sampler) Refund() { s.countdown = 1 }

// Record stores the sampled miss Tick selected.
func (s *Sampler) Record(scheme string, vpn uint64, size addr.PageSize, class MissClass, refs, cycles uint64, asid uint16) {
	s.samples = append(s.samples, Sample{
		VPN:    vpn,
		Size:   size,
		Class:  class,
		Scheme: scheme,
		Refs:   refs,
		Cycles: cycles,
		ASID:   asid,
	})
}

// Miss is Tick + Record in one call, for callers whose argument setup
// is already cheap (tests, synthetic feeds).
func (s *Sampler) Miss(scheme string, vpn uint64, size addr.PageSize, class MissClass, refs, cycles uint64, asid uint16) {
	if s.Tick() {
		s.Record(scheme, vpn, size, class, refs, cycles, asid)
	}
}

// Reset discards recorded samples and rewinds the stride to its seeded
// phase — the warmup boundary does this so samples describe exactly the
// measured interval, mirroring the MMU counter reset.
func (s *Sampler) Reset() {
	s.samples = s.samples[:0]
	s.countdown = s.start
}

// Len returns the number of samples recorded so far.
func (s *Sampler) Len() int { return len(s.samples) }

// Samples exposes the recorded stream (read-only by convention).
func (s *Sampler) Samples() []Sample { return s.samples }

// CellKey identifies one sample stream: a simulation cell (typically
// "workload/config") and, for multi-tenant studies, the tenant index.
type CellKey struct {
	Cell   string
	Tenant int
}

// Profile is an active walk-sampling run: the sampling period plus the
// committed streams of every completed cell. One Profile is installed
// process-wide by Enable, like telemetry's current run.
type Profile struct {
	period uint64

	mu sync.Mutex
	// streams holds every committed stream per cell key. A key can
	// legitimately receive more than one stream (report sections may
	// simulate the same workload/config cell); streams under one key are
	// sorted canonically at snapshot time so the Dump never depends on
	// completion order.
	streams map[CellKey][][]Sample
}

// DefaultPeriod is the sampling period used when a caller enables
// sampling without choosing one (1-in-64, comfortably inside the <2%
// telemetry overhead budget on the gups cell).
const DefaultPeriod = 64

var active atomic.Pointer[Profile]

// Enable installs a process-wide profile sampling one in period misses
// (period < 1 selects DefaultPeriod) and returns it. It replaces any
// previously active profile.
func Enable(period uint64) *Profile {
	if period < 1 {
		period = DefaultPeriod
	}
	p := &Profile{period: period, streams: make(map[CellKey][][]Sample)}
	active.Store(p)
	return p
}

// Enabled returns the active profile, nil when sampling is off. Cells
// check it once at setup time, never per event.
func Enabled() *Profile { return active.Load() }

// Stop deactivates the profile; committed data remains readable through
// the *Profile handle. Safe to call more than once.
func (p *Profile) Stop() { active.CompareAndSwap(p, nil) }

// Period returns the sampling period N (one sample per N misses).
func (p *Profile) Period() uint64 { return p.period }

// Sampler builds the per-cell sampler for one simulation cell. seed
// phases the stride (countdown starts at seed mod period + 1) so
// co-scheduled cells don't sample in lockstep; it must derive from the
// cell's spec alone to keep output machine-independent.
func (p *Profile) Sampler(cell string, tenant int, seed uint64) *Sampler {
	start := seed%p.period + 1
	return &Sampler{
		period:    p.period,
		countdown: start,
		start:     start,
		cell:      cell,
		tenant:    tenant,
	}
}

// Commit folds a completed cell's stream into the profile — the single
// point where sampling touches shared state, one lock acquisition per
// cell. The sampler stays usable (its samples are copied).
func (p *Profile) Commit(s *Sampler) {
	if s == nil || p == nil {
		return
	}
	stream := append([]Sample(nil), s.samples...)
	key := CellKey{Cell: s.cell, Tenant: s.tenant}
	p.mu.Lock()
	p.streams[key] = append(p.streams[key], stream)
	p.mu.Unlock()
}

// CellDump is one cell's committed samples, streams concatenated in
// canonical order.
type CellDump struct {
	Cell    string
	Tenant  int
	Samples []Sample
}

// Dump is a deterministic point-in-time reading of a profile: cells
// sorted by name then tenant, and multiple streams per cell ordered
// canonically (by content), so two runs that simulated the same cells
// produce identical Dumps regardless of completion order.
type Dump struct {
	SchemaVersion int
	Period        uint64
	Cells         []CellDump
}

// NumSamples counts every sample in the dump.
func (d Dump) NumSamples() int {
	n := 0
	for _, c := range d.Cells {
		n += len(c.Samples)
	}
	return n
}

// Snapshot assembles the profile's committed streams into a Dump.
func (p *Profile) Snapshot() Dump {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]CellKey, 0, len(p.streams))
	for k := range p.streams {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Cell != keys[j].Cell {
			return keys[i].Cell < keys[j].Cell
		}
		return keys[i].Tenant < keys[j].Tenant
	})
	d := Dump{SchemaVersion: SchemaVersion, Period: p.period}
	for _, k := range keys {
		streams := p.streams[k]
		if len(streams) > 1 {
			// Canonical stream order: identical specs produce identical
			// streams (order is then irrelevant); differing streams sort by
			// content, making the concatenation completion-order-free.
			streams = append([][]Sample(nil), streams...)
			sort.Slice(streams, func(i, j int) bool { return lessStream(streams[i], streams[j]) })
		}
		var all []Sample
		for _, st := range streams {
			all = append(all, st...)
		}
		d.Cells = append(d.Cells, CellDump{Cell: k.Cell, Tenant: k.Tenant, Samples: all})
	}
	return d
}

// lessStream orders sample streams lexicographically by field.
func lessStream(a, b []Sample) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			x, y := a[i], b[i]
			switch {
			case x.VPN != y.VPN:
				return x.VPN < y.VPN
			case x.Cycles != y.Cycles:
				return x.Cycles < y.Cycles
			case x.Refs != y.Refs:
				return x.Refs < y.Refs
			case x.Class != y.Class:
				return x.Class < y.Class
			case x.Scheme != y.Scheme:
				return x.Scheme < y.Scheme
			case x.Size != y.Size:
				return x.Size < y.Size
			default:
				return x.ASID < y.ASID
			}
		}
	}
	return len(a) < len(b)
}
