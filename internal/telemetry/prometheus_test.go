package telemetry

import (
	"path/filepath"
	"strings"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/telemetry/walkprof"
)

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("replay.events").Add(42)
	r.Gauge("cells.running").Set(-3)
	h := r.Histogram("walk.refs.Base Virtualized")
	for i := 0; i < 10; i++ {
		h.Observe(24)
	}
	out := r.Snapshot().PrometheusText()
	for _, want := range []string{
		"# TYPE vdirect_replay_events counter",
		"vdirect_replay_events 42",
		"# TYPE vdirect_cells_running gauge",
		"vdirect_cells_running -3",
		"# TYPE vdirect_walk_refs_Base_Virtualized summary",
		`vdirect_walk_refs_Base_Virtualized{quantile="0.5"}`,
		"vdirect_walk_refs_Base_Virtualized_sum 240",
		"vdirect_walk_refs_Base_Virtualized_count 10",
		"vdirect_walk_refs_Base_Virtualized_max 24",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if out != r.Snapshot().PrometheusText() {
		t.Error("PrometheusText not deterministic")
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"walk.refs.Dual Direct": "vdirect_walk_refs_Dual_Direct",
		"a-b/c":                 "vdirect_a_b_c",
		"x9":                    "vdirect_x9",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSessionSamplingLifecycle checks that the sampling flags drive the
// walkprof profile: Start enables it (with -samples implying the
// default period), Close writes the sample file and deactivates it.
func TestSessionSamplingLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "samples.jsonl")
	f := Flags{SamplesOut: path}
	if period, on := f.Sampling(); !on || period != walkprof.DefaultPeriod {
		t.Fatalf("Sampling() = %d,%v", period, on)
	}
	s, err := f.Start("test-tool", nil)
	if err != nil {
		t.Fatal(err)
	}
	p := walkprof.Enabled()
	if p == nil || p.Period() != walkprof.DefaultPeriod {
		t.Fatal("Start did not enable walkprof at the default period")
	}
	// Simulate one committed cell so the file has content.
	smp := p.Sampler("cell", 0, 0)
	for i := 0; i < 200; i++ {
		smp.Miss("Base", uint64(i), addr.Page4K, walkprof.ClassWalkNeither, 24, 100, 0)
	}
	p.Commit(smp)
	if err := s.Close(nil); err != nil {
		t.Fatal(err)
	}
	if walkprof.Enabled() != nil {
		t.Error("Close left walkprof enabled")
	}
	d, err := walkprof.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSamples() == 0 || d.Period != walkprof.DefaultPeriod {
		t.Errorf("sample file dump = %d samples, period %d", d.NumSamples(), d.Period)
	}

	// An explicit period wins over the implied default.
	f2 := Flags{Sample: 16}
	s2, err := f2.Start("test-tool", nil)
	if err != nil {
		t.Fatal(err)
	}
	if p2 := walkprof.Enabled(); p2 == nil || p2.Period() != 16 {
		t.Fatal("explicit -sample period not honored")
	}
	if err := s2.Close(nil); err != nil {
		t.Fatal(err)
	}
}
