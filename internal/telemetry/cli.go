// Shared CLI wiring: every cmd binary exposes the same observability
// flags (-trace, -manifest, -metrics, -version) through Flags, starts a
// Session after flag parsing, and closes it on exit — including error
// exits, so a failed run still flushes its trace and writes a manifest
// recording the failure.

package telemetry

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Flags bundles the observability flags common to the cmd binaries.
type Flags struct {
	Trace    string
	Manifest string
	Metrics  string
	Version  bool
	// Force starts a telemetry run even when no flag asked for one;
	// binaries set it for options whose output depends on telemetry
	// being live (e.g. paperbench -histograms).
	Force bool
}

// Register installs the flags on fs (flag.CommandLine in the binaries).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace-event JSON file of scheduler cells, report sections and replay phases (open in chrome://tracing or ui.perfetto.dev)")
	fs.StringVar(&f.Manifest, "manifest", "", "write a run-manifest JSON file (config, build info, per-cell timings, metric snapshot) to this path")
	fs.StringVar(&f.Metrics, "metrics", "", "serve live expvar metrics over HTTP on this address (e.g. :8080; see /debug/vars) for long runs")
	fs.BoolVar(&f.Version, "version", false, "print build information and exit")
}

// Enabled reports whether any flag requested telemetry.
func (f Flags) Enabled() bool {
	return f.Force || f.Trace != "" || f.Manifest != "" || f.Metrics != ""
}

// Session is one binary's telemetry lifetime. An inert Session (no
// telemetry requested) is valid: Close does nothing.
type Session struct {
	run   *Run
	flags Flags
}

// Start activates telemetry when any flag asked for it and returns the
// session to Close at exit. config is stamped into the manifest.
func (f Flags) Start(tool string, config map[string]string) (*Session, error) {
	if !f.Enabled() {
		return &Session{}, nil
	}
	r := StartRun(tool, config, f.Trace != "")
	if f.Metrics != "" {
		addr, err := serveMetrics(f.Metrics)
		if err != nil {
			r.Stop()
			return nil, err
		}
		fmt.Printf("%s: serving metrics on http://%s/debug/vars\n", tool, addr)
	}
	return &Session{run: r, flags: f}, nil
}

// Run returns the session's run, nil for an inert session.
func (s *Session) Run() *Run {
	if s == nil {
		return nil
	}
	return s.run
}

// Close flushes the trace file and manifest (recording runErr, if any)
// and deactivates the run. Safe on nil and inert sessions.
func (s *Session) Close(runErr error) error {
	if s == nil || s.run == nil {
		return nil
	}
	defer s.run.Stop()
	var first error
	if s.flags.Trace != "" && s.run.tracer != nil {
		if err := s.run.tracer.WriteFile(s.flags.Trace, s.run.Tool); err != nil {
			first = err
		}
	}
	if s.flags.Manifest != "" {
		if err := s.run.WriteManifest(s.flags.Manifest, runErr); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var expvarOnce sync.Once

// serveMetrics publishes the active run under the expvar key "vdirect"
// and serves the standard /debug/vars endpoint on addr. The listener
// lives for the rest of the process — monitoring outlives any one run.
func serveMetrics(addr string) (string, error) {
	expvarOnce.Do(func() {
		expvar.Publish("vdirect", expvar.Func(func() any {
			r := current.Load()
			if r == nil {
				return nil
			}
			return struct {
				Tool     string   `json:"tool"`
				UptimeMS float64  `json:"uptime_ms"`
				Metrics  Snapshot `json:"metrics"`
			}{r.Tool, time.Since(r.StartTime).Seconds() * 1e3, Default().Snapshot()}
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	// expvar registers /debug/vars on the default mux at init.
	go http.Serve(ln, nil) //nolint:errcheck // best-effort monitoring endpoint
	return ln.Addr().String(), nil
}
