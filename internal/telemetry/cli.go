// Shared CLI wiring: every cmd binary exposes the same observability
// flags (-trace, -manifest, -metrics, -listen, -sample, -samples,
// -version) through Flags, starts a Session after flag parsing, and
// closes it on exit — including error exits, so a failed run still
// flushes its trace, manifest, and sample file recording the failure.

package telemetry

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -listen
	"sync"
	"time"

	"vdirect/internal/telemetry/walkprof"
)

// Flags bundles the observability flags common to the cmd binaries.
type Flags struct {
	Trace    string
	Manifest string
	Metrics  string
	// Listen serves the full observability endpoint (Prometheus
	// /metrics, JSON /snapshot and /walkprof, net/http/pprof, expvar).
	Listen string
	// Sample enables walkprof sampling at one sample per N L1 misses;
	// SamplesOut writes the collected samples (implies Sample at the
	// default period when Sample is unset).
	Sample     uint64
	SamplesOut string
	Version    bool
	// Force starts a telemetry run even when no flag asked for one;
	// binaries set it for options whose output depends on telemetry
	// being live (e.g. paperbench -histograms).
	Force bool
}

// Register installs the flags on fs (flag.CommandLine in the binaries).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace-event JSON file of scheduler cells, report sections and replay phases (open in chrome://tracing or ui.perfetto.dev)")
	fs.StringVar(&f.Manifest, "manifest", "", "write a run-manifest JSON file (config, build info, per-cell timings, metric snapshot) to this path")
	fs.StringVar(&f.Metrics, "metrics", "", "serve live expvar metrics over HTTP on this address (e.g. :8080; see /debug/vars) for long runs")
	fs.StringVar(&f.Listen, "listen", "", "serve the live observability endpoint on this address: Prometheus text on /metrics, JSON on /snapshot and /walkprof, net/http/pprof and expvar under /debug/")
	fs.Uint64Var(&f.Sample, "sample", 0, "sample one in N resolved TLB misses into the walk profile (walkprof); 0 disables sampling")
	fs.StringVar(&f.SamplesOut, "samples", "", "write collected walk samples (JSON lines) to this path at exit; implies -sample 64 when -sample is unset")
	fs.BoolVar(&f.Version, "version", false, "print build information and exit")
}

// Enabled reports whether any flag requested a telemetry run. Sampling
// flags are deliberately absent: walkprof has its own lifecycle and
// does not need the metrics registry to be live.
func (f Flags) Enabled() bool {
	return f.Force || f.Trace != "" || f.Manifest != "" || f.Metrics != "" || f.Listen != ""
}

// Sampling reports whether the flags request walkprof sampling, and at
// what period.
func (f Flags) Sampling() (period uint64, on bool) {
	if f.Sample > 0 {
		return f.Sample, true
	}
	if f.SamplesOut != "" {
		return walkprof.DefaultPeriod, true
	}
	return 0, false
}

// Session is one binary's telemetry lifetime. An inert Session (no
// telemetry requested) is valid: Close does nothing.
type Session struct {
	run     *Run
	flags   Flags
	profile *walkprof.Profile
}

// Start activates telemetry when any flag asked for it and returns the
// session to Close at exit. config is stamped into the manifest.
func (f Flags) Start(tool string, config map[string]string) (*Session, error) {
	s := &Session{flags: f}
	if period, on := f.Sampling(); on {
		s.profile = walkprof.Enable(period)
	}
	if !f.Enabled() {
		return s, nil
	}
	s.run = StartRun(tool, config, f.Trace != "")
	if f.Metrics != "" {
		addr, err := serveMetrics(f.Metrics)
		if err != nil {
			s.close()
			return nil, err
		}
		fmt.Printf("%s: serving metrics on http://%s/debug/vars\n", tool, addr)
	}
	if f.Listen != "" {
		addr, err := serveObservability(f.Listen)
		if err != nil {
			s.close()
			return nil, err
		}
		fmt.Printf("%s: serving observability on http://%s (/metrics, /snapshot, /walkprof, /debug/pprof/, /debug/vars)\n", tool, addr)
	}
	return s, nil
}

// close deactivates the run and profile without flushing files — the
// Start error path.
func (s *Session) close() {
	if s.run != nil {
		s.run.Stop()
	}
	if s.profile != nil {
		s.profile.Stop()
	}
}

// Run returns the session's run, nil for an inert session.
func (s *Session) Run() *Run {
	if s == nil {
		return nil
	}
	return s.run
}

// Close flushes the trace file, manifest (recording runErr, if any) and
// walk-sample file, then deactivates the run and profile. Safe on nil
// and inert sessions.
func (s *Session) Close(runErr error) error {
	if s == nil {
		return nil
	}
	defer s.close()
	var first error
	if s.profile != nil && s.flags.SamplesOut != "" {
		if err := walkprof.WriteFile(s.flags.SamplesOut, s.profile.Snapshot()); err != nil {
			first = err
		}
	}
	if s.run == nil {
		return first
	}
	if s.flags.Trace != "" && s.run.tracer != nil {
		if err := s.run.tracer.WriteFile(s.flags.Trace, s.run.Tool); err != nil && first == nil {
			first = err
		}
	}
	if s.flags.Manifest != "" {
		if err := s.run.WriteManifest(s.flags.Manifest, runErr); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var expvarOnce sync.Once

// serveMetrics publishes the active run under the expvar key "vdirect"
// and serves the standard /debug/vars endpoint on addr. The listener
// lives for the rest of the process — monitoring outlives any one run.
func serveMetrics(addr string) (string, error) {
	expvarOnce.Do(func() {
		expvar.Publish("vdirect", expvar.Func(func() any {
			r := current.Load()
			if r == nil {
				return nil
			}
			return struct {
				Tool     string   `json:"tool"`
				UptimeMS float64  `json:"uptime_ms"`
				Metrics  Snapshot `json:"metrics"`
			}{r.Tool, time.Since(r.StartTime).Seconds() * 1e3, Default().Snapshot()}
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	// expvar registers /debug/vars on the default mux at init.
	go http.Serve(ln, nil) //nolint:errcheck // best-effort monitoring endpoint
	return ln.Addr().String(), nil
}

var obsOnce sync.Once

// serveObservability serves the full observability surface on addr via
// the default mux: Prometheus text on /metrics, the registry snapshot
// as JSON on /snapshot, the live walkprof summary on /walkprof, plus
// the net/http/pprof and expvar handlers the imports registered under
// /debug/. Like serveMetrics, the listener lives for the rest of the
// process.
func serveObservability(addr string) (string, error) {
	obsOnce.Do(func() {
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			fmt.Fprint(w, Default().Snapshot().PrometheusText())
		})
		http.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(Default().Snapshot()) //nolint:errcheck // best-effort endpoint
		})
		http.HandleFunc("/walkprof", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			p := walkprof.Enabled()
			if p == nil {
				http.Error(w, `{"error":"walk sampling not enabled; run with -sample or -samples"}`, http.StatusNotFound)
				return
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(walkprof.Summarize(p.Snapshot())) //nolint:errcheck // best-effort endpoint
		})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: observability listener: %w", err)
	}
	go http.Serve(ln, nil) //nolint:errcheck // best-effort monitoring endpoint
	return ln.Addr().String(), nil
}
