// Prometheus text exposition for the registry, served by the -listen
// observability endpoint (cli.go). Hand-rolled on purpose: the format
// is a few lines per instrument and the repo takes no dependencies.

package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// promName sanitizes a registry metric name into the Prometheus
// namespace: dots and other non-identifier characters become
// underscores, and everything is prefixed "vdirect_".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("vdirect_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PrometheusText renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as-is, histograms as
// summaries with interpolated quantiles plus _sum/_count/_max series.
// Output is sorted by metric name, so identical snapshots render
// byte-identically.
func (s Snapshot) PrometheusText() string {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n])
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
		for _, q := range []struct {
			label string
			v     float64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			fmt.Fprintf(&b, "%s{quantile=%q} %g\n", pn, q.label, q.v)
		}
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n%s_max %d\n", pn, h.Sum, pn, h.Count, pn, h.Max)
	}
	return b.String()
}
