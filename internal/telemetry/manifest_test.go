package telemetry

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestManifestGoldenRead pins the v2 manifest shape: the checked-in
// golden document must parse, version-check, and surface its fields.
func TestManifestGoldenRead(t *testing.T) {
	m, err := ReadManifest(filepath.Join("testdata", "manifest_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.SchemaVersion != ManifestSchemaVersion {
		t.Errorf("schema_version = %d, want %d", m.SchemaVersion, ManifestSchemaVersion)
	}
	if m.Tool != "paperbench" || len(m.Args) != 4 {
		t.Errorf("tool/args = %q/%v", m.Tool, m.Args)
	}
	if m.Metrics.Counters["replay.events"] != 1000000 {
		t.Errorf("counters = %v", m.Metrics.Counters)
	}
	h, ok := m.Metrics.Histograms["walk.refs.Base Virtualized"]
	if !ok || h.Count != 4096 || h.P50 == 0 {
		t.Errorf("histogram snapshot = %+v (ok=%v)", h, ok)
	}
	if len(m.Timings) != 1 || m.Timings[0].Cat != "cell" {
		t.Errorf("timings = %+v", m.Timings)
	}
}

// TestManifestRejectsUnknownVersions covers the two failure shapes: a
// pre-versioning document (schema_version absent → 0) and a document
// from a future writer.
func TestManifestRejectsUnknownVersions(t *testing.T) {
	v0 := []byte(`{"tool":"paperbench","args":[],"build":{"go_version":"go1.22.0"},` +
		`"host":{"os":"linux","arch":"amd64","cpus":1},"start":"2026-08-08T12:00:00Z",` +
		`"duration_ms":1,"metrics":{}}`)
	if _, err := ParseManifest(v0); err == nil {
		t.Error("pre-versioning manifest accepted")
	} else if !strings.Contains(err.Error(), "schema_version 0") {
		t.Errorf("v0 error does not name the version: %v", err)
	}
	future := []byte(`{"schema_version":99,"tool":"paperbench"}`)
	if _, err := ParseManifest(future); err == nil {
		t.Error("future manifest accepted")
	}
	if _, err := ParseManifest([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadManifest(filepath.Join("testdata", "does-not-exist.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestManifestWriteReadRoundtrip checks a freshly written manifest is
// readable by ReadManifest — writer and reader agree on the version.
func TestManifestWriteReadRoundtrip(t *testing.T) {
	r := StartRun("test-tool", map[string]string{"k": "v"}, false)
	Default().Counter("x").Add(3)
	Default().Histogram("h").Observe(10)
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := r.WriteManifest(path, nil); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "test-tool" || m.SchemaVersion != ManifestSchemaVersion {
		t.Errorf("roundtrip manifest = tool %q version %d", m.Tool, m.SchemaVersion)
	}
	if m.Metrics.Counters["x"] != 3 {
		t.Errorf("counters = %v", m.Metrics.Counters)
	}
	if h := m.Metrics.Histograms["h"]; h.P50 == 0 {
		t.Errorf("histogram p50 not serialized: %+v", h)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"schema_version": 2`) {
		t.Error("written manifest lacks schema_version field")
	}
}

// TestPercentileInterpolation checks the interpolated accessors against
// hand-computed values and their documented bounds.
func TestPercentileInterpolation(t *testing.T) {
	var h Histogram
	// 100 samples of 10 (bucket [8,15]) and 100 of 100 (bucket [64,127]).
	for i := 0; i < 100; i++ {
		h.Observe(10)
		h.Observe(100)
	}
	snapReg := NewRegistry()
	snapReg.Histogram("h").Merge(localFrom(&h))
	v := snapReg.Snapshot().Histograms["h"]

	// p50 lands at the top of the first bucket's occupied span; the
	// interpolated value must stay within [8,15].
	if p := v.Percentile(0.50); p < 8 || p > 15 {
		t.Errorf("p50 = %v, want within [8,15]", p)
	}
	// p95 lands in the second bucket, clamped at the exact max 100.
	if p := v.Percentile(0.95); p < 64 || p > 100 {
		t.Errorf("p95 = %v, want within [64,100]", p)
	}
	if p := v.Percentile(1.0); p != 100 {
		t.Errorf("p100 = %v, want exact max 100", p)
	}
	if v.P50 != v.Percentile(0.50) || v.P95 != v.Percentile(0.95) || v.P99 != v.Percentile(0.99) {
		t.Error("snapshot P50/P95/P99 fields disagree with Percentile")
	}
	// Monotonic in q.
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		p := v.Percentile(q)
		if p+1e-9 < prev {
			t.Fatalf("Percentile not monotonic at q=%v: %v < %v", q, p, prev)
		}
		prev = p
	}
	if (HistValue{}).Percentile(0.5) != 0 {
		t.Error("empty histogram percentile != 0")
	}
	// Single-value histograms interpolate to that value's bucket, capped
	// at the max.
	one := NewRegistry()
	one.Histogram("o").Observe(7)
	ov := one.Snapshot().Histograms["o"]
	if p := ov.Percentile(0.5); p < 4 || p > 7 {
		t.Errorf("single-value p50 = %v, want within [4,7]", p)
	}
	if math.IsNaN(ov.Percentile(0.99)) {
		t.Error("NaN percentile")
	}
}

// localFrom converts a directly-observed histogram into a Local shard
// so tests can Merge it into a fresh registry histogram.
func localFrom(h *Histogram) *Local {
	var l Local
	for i := 0; i < numBuckets; i++ {
		l.counts[i] = h.counts[i].Load()
	}
	l.n = h.n.Load()
	l.sum = h.sum.Load()
	l.m = h.m.Load()
	return &l
}
