// The metrics registry: named atomic counters, gauges, and log-bucketed
// histograms. Registration (name → instrument lookup) takes a mutex;
// recording never does — instruments are plain atomics, and callers on
// hot paths cache the instrument pointer at setup time. Histogram
// observation on the replay/walk hot path goes through Local shards
// (non-atomic, owned by one goroutine) merged into the shared Histogram
// once at collection.

package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"vdirect/internal/stats"
)

// Counter is a monotonically increasing atomic event count.
type Counter struct{ v atomic.Uint64 }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// numBuckets covers every bits.Len64 outcome: bucket 0 holds the value
// 0, bucket i (i ≥ 1) holds values in [2^(i-1), 2^i - 1].
const numBuckets = 65

// Local is a single-goroutine histogram shard: plain increments, no
// atomics, no locks — the form the replay/walk hot path can afford. A
// simulation cell owns its Locals and merges them into a shared
// Histogram exactly once, at cell completion.
type Local struct {
	counts    [numBuckets]uint64
	n, sum, m uint64 // m is the max observed value
}

// Observe records one sample.
func (l *Local) Observe(v uint64) {
	l.counts[bits.Len64(v)]++
	l.n++
	l.sum += v
	if v > l.m {
		l.m = v
	}
}

// Count returns the number of samples observed.
func (l *Local) Count() uint64 { return l.n }

// Reset zeroes the shard (the warmup boundary does this).
func (l *Local) Reset() { *l = Local{} }

// WalkProbe pairs the per-walk histograms the MMU feeds: page-table
// memory references per walk and cycles per TLB-miss handling episode.
// It is cell-local state, merged per translation mode at collection.
type WalkProbe struct {
	Refs   Local
	Cycles Local
}

// Reset zeroes both shards.
func (p *WalkProbe) Reset() {
	p.Refs.Reset()
	p.Cycles.Reset()
}

// Histogram is the registry's shared log2-bucketed histogram. Merging a
// Local performs at most one atomic add per touched bucket, so cells
// completing concurrently never block each other.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	n, sum atomic.Uint64
	m      atomic.Uint64
}

// Observe records one sample directly (for values produced off the hot
// path; hot paths should Observe into a Local and Merge).
func (h *Histogram) Observe(v uint64) {
	h.counts[bits.Len64(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	h.updateMax(v)
}

// Merge folds a Local shard into the histogram.
func (h *Histogram) Merge(l *Local) {
	for i, c := range l.counts {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	if l.n != 0 {
		h.n.Add(l.n)
		h.sum.Add(l.sum)
		h.updateMax(l.m)
	}
}

func (h *Histogram) updateMax(v uint64) {
	for {
		cur := h.m.Load()
		if v <= cur || h.m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of samples merged or observed.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Registry is a name-indexed set of instruments. The zero value is not
// usable; call NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.Reset()
	return r
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every instrumented package
// records into. StartRun resets it, so a manifest's metric snapshot
// covers exactly one invocation.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset discards every instrument. Pointers handed out earlier keep
// working but no longer appear in snapshots.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
}

// Bucket is one occupied histogram bucket covering values [Lo, Hi].
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistValue is a point-in-time histogram reading. P50/P95/P99 are the
// interpolated percentile estimates (Percentile), precomputed so
// manifest readers and scrapers get them without reimplementing the
// bucket math.
type HistValue struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	P50     float64  `json:"p50,omitempty"`
	P95     float64  `json:"p95,omitempty"`
	P99     float64  `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the exact sample mean (sum and count are tracked
// exactly; only the distribution is bucketed).
func (h HistValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile: the top of the
// bucket the q·Count-th sample falls in, capped at the exact max.
func (h HistValue) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= target {
			if b.Hi > h.Max {
				return h.Max
			}
			return b.Hi
		}
	}
	return h.Max
}

// Percentile returns an interpolated estimate of the q-quantile
// (q in [0,1]): the rank is located in its log2 bucket and the value
// interpolated linearly across the bucket's span, clamped to the exact
// observed max. Unlike Quantile's upper bound, the estimate moves
// smoothly with the rank, which is what dashboards and manifests want;
// the true value is still somewhere within the same bucket.
func (h HistValue) Percentile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		if float64(cum)+float64(b.Count) >= target {
			frac := (target - float64(cum)) / float64(b.Count)
			lo, hi := float64(b.Lo), float64(b.Hi)
			if b.Hi > h.Max || b.Hi < b.Lo { // cap at max; Hi wraps in the top bucket
				hi = float64(h.Max)
			}
			if hi < lo {
				hi = lo
			}
			v := lo + frac*(hi-lo)
			if v > float64(h.Max) {
				v = float64(h.Max)
			}
			return v
		}
		cum += b.Count
	}
	return float64(h.Max)
}

// Snapshot is a consistent-enough point-in-time reading of a registry:
// each instrument is read atomically (the set is not frozen, which is
// fine for monotonic counters and end-of-run collection).
type Snapshot struct {
	Counters   map[string]uint64    `json:"counters,omitempty"`
	Gauges     map[string]int64     `json:"gauges,omitempty"`
	Histograms map[string]HistValue `json:"histograms,omitempty"`
}

// Snapshot reads every instrument. Counter values are accumulated
// through a stats.Counters so the registry and the simulator's flat
// counters share one snapshot representation.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var c stats.Counters
	for name, ctr := range r.counters {
		c.Add(name, ctr.Load())
	}
	s := Snapshot{
		Counters:   c.Snapshot(),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistValue, len(r.hists)),
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		hv := HistValue{Count: h.n.Load(), Sum: h.sum.Load(), Max: h.m.Load()}
		for i := 0; i < numBuckets; i++ {
			n := h.counts[i].Load()
			if n == 0 {
				continue
			}
			lo, hi := uint64(0), uint64(0)
			if i > 0 {
				lo = 1 << (i - 1)
				hi = lo<<1 - 1 // wraps to MaxUint64 at i == 64
			}
			hv.Buckets = append(hv.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
		hv.P50 = hv.Percentile(0.50)
		hv.P95 = hv.Percentile(0.95)
		hv.P99 = hv.Percentile(0.99)
		s.Histograms[name] = hv
	}
	return s
}

// HistogramTable renders every histogram in the snapshot as one table
// row (sorted by name, so the rendering is deterministic): count, exact
// mean and max, and log2-bucket upper bounds for p50/p90/p99.
func (s Snapshot) HistogramTable(title string) *stats.Table {
	t := stats.NewTable(title, "metric", "count", "mean", "p50", "p90", "p99", "max")
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		t.AddRow(n, fmt.Sprint(h.Count), fmt.Sprintf("%.2f", h.Mean()),
			fmt.Sprint(h.Quantile(0.50)), fmt.Sprint(h.Quantile(0.90)),
			fmt.Sprint(h.Quantile(0.99)), fmt.Sprint(h.Max))
	}
	return t
}
