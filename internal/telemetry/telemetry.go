// Package telemetry is the harness's process-wide observability layer:
// a lock-free metrics registry (atomic counters, gauges, and
// log-bucketed histograms with single-goroutine local shards merged at
// collection), span tracing exportable as Chrome trace-event JSON
// (chrome://tracing / Perfetto), and a per-invocation run manifest
// recording how a run executed — config, build info, per-cell timings,
// and a final metric snapshot.
//
// Everything is off by default and costs nothing when off: the hot
// paths (the replay loop at ~200M events/sec, the MMU walk machinery)
// test one cached nil pointer and do no work unless a run is active.
// When active, hot-path recording is batched (one atomic add per
// 4096-event replay block) or thread-local (non-atomic Local histograms
// owned by one simulation cell, merged into the shared registry once at
// cell completion), so enabling telemetry perturbs neither results —
// simulation output stays byte-identical — nor throughput (<2%,
// enforced by BenchmarkTelemetryOverhead* in internal/replay).
//
// Lifecycle: a binary calls StartRun (usually via Flags.Start), the
// instrumented packages record through the package-level entry points
// (StartSpan, Default registry), and the binary writes the trace file
// and manifest at exit (Session.Close). With no active run, StartSpan
// returns an inert Span and Active() reports false.
package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// current is the active run; nil means telemetry is off.
var current atomic.Pointer[Run]

// Active reports whether a telemetry run is in progress. Hot-path
// wiring checks it once at setup time (e.g. when an engine or probe is
// built), not per event.
func Active() bool { return current.Load() != nil }

// Current returns the active run, or nil.
func Current() *Run { return current.Load() }

// Run is one observed process invocation: the identity and config of
// the run, the registry collecting its metrics, the optional tracer,
// and the accumulated span timings the manifest reports.
type Run struct {
	Tool      string
	StartTime time.Time
	Config    map[string]string

	tracer *Tracer

	mu      sync.Mutex
	timings []Timing
}

// Timing is one completed cell or section span, relative to run start.
type Timing struct {
	Cat     string  `json:"cat"`
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// StartRun activates telemetry: the default registry is reset for this
// invocation, and spans/metrics record until Stop. config is stamped
// into the manifest verbatim; tracing additionally collects every span
// as a Chrome trace event.
func StartRun(tool string, config map[string]string, tracing bool) *Run {
	r := &Run{Tool: tool, StartTime: time.Now(), Config: config}
	if tracing {
		r.tracer = newTracer(r.StartTime)
	}
	Default().Reset()
	current.Store(r)
	return r
}

// Stop deactivates the run; subsequent spans and hot-path meters become
// no-ops. Safe to call more than once.
func (r *Run) Stop() { current.CompareAndSwap(r, nil) }

// Tracer returns the run's tracer, nil when tracing was not requested.
func (r *Run) Tracer() *Tracer { return r.tracer }

// Timings returns a copy of the cell/section timings recorded so far.
func (r *Run) Timings() []Timing {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Timing(nil), r.timings...)
}

// Span is one timed region. The zero Span (no active run) is inert.
type Span struct {
	r     *Run
	cat   string
	name  string
	tid   uint64
	start time.Time
}

// StartSpan opens a span under the active run; with no run it returns
// an inert Span whose End is a no-op. Spans of category "cell" and
// "section" additionally land in the run manifest's timing list.
func StartSpan(cat, name string) Span {
	r := current.Load()
	if r == nil {
		return Span{}
	}
	return Span{r: r, cat: cat, name: name, tid: goid(), start: time.Now()}
}

// End closes the span, recording it into the tracer (if tracing) and,
// for cell/section spans, the manifest timing list.
func (s Span) End() {
	if s.r == nil {
		return
	}
	end := time.Now()
	if s.cat == "cell" || s.cat == "section" {
		s.r.mu.Lock()
		s.r.timings = append(s.r.timings, Timing{
			Cat:     s.cat,
			Name:    s.name,
			StartMS: s.start.Sub(s.r.StartTime).Seconds() * 1e3,
			DurMS:   end.Sub(s.start).Seconds() * 1e3,
		})
		s.r.mu.Unlock()
	}
	if t := s.r.tracer; t != nil {
		t.add(s.cat, s.name, s.tid, s.start, end)
	}
}

// goid parses the current goroutine's id from its stack header
// ("goroutine N [...]"). Spans use it as the trace-event thread id so
// nested spans stack on one Perfetto row per worker goroutine; the cost
// (a few µs) is paid once per span, never per event.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Progress aggregates cell completion across every scheduler pool
// sharing it: total grows as pools register cells, done as cells
// complete. The callback is serialized under the progress lock. It
// replaces the scheduler's old ad-hoc Tracker and, while a run is
// active, mirrors its state into the registry gauges
// "sched.cells.done"/"sched.cells.total" so a long run's expvar
// endpoint shows live progress.
type Progress struct {
	mu          sync.Mutex
	done, total int
	callback    func(done, total int)
}

// NewProgress builds a Progress invoking callback (may be nil) on every
// change.
func NewProgress(callback func(done, total int)) *Progress {
	return &Progress{callback: callback}
}

// Expect registers n upcoming cells. Safe on a nil Progress.
func (p *Progress) Expect(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += n
	p.publish()
	p.mu.Unlock()
}

// Finish records one completed cell. Safe on a nil Progress.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.publish()
	p.mu.Unlock()
}

// Snapshot returns the current done/total counts. Safe on nil.
func (p *Progress) Snapshot() (done, total int) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done, p.total
}

// publish runs under p.mu.
func (p *Progress) publish() {
	if p.callback != nil {
		p.callback(p.done, p.total)
	}
	if Active() {
		Default().Gauge("sched.cells.done").Set(int64(p.done))
		Default().Gauge("sched.cells.total").Set(int64(p.total))
	}
}
