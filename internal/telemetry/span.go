// Span tracing: completed spans accumulate as Chrome trace-event
// records ("ph":"X" complete events, microsecond timestamps) and are
// written as one JSON document loadable by chrome://tracing and
// Perfetto. The thread id is the recording goroutine's id, so each
// scheduler worker renders as one row and nested spans (cell → replay
// phases) stack naturally.

package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// traceEvent is one Chrome trace-event record.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer collects completed spans for one run.
type Tracer struct {
	t0  time.Time
	pid int

	mu     sync.Mutex
	events []traceEvent
}

func newTracer(t0 time.Time) *Tracer {
	return &Tracer{t0: t0, pid: os.Getpid()}
}

// add appends one complete event; called from Span.End on any
// goroutine.
func (t *Tracer) add(cat, name string, tid uint64, start, end time.Time) {
	ev := traceEvent{
		Name: name,
		Cat:  cat,
		Ph:   "X",
		TS:   float64(start.Sub(t.t0).Nanoseconds()) / 1e3,
		Dur:  float64(end.Sub(start).Nanoseconds()) / 1e3,
		PID:  t.pid,
		TID:  tid,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of spans recorded so far.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteFile writes the trace as a JSON object with a "traceEvents"
// array — the format chrome://tracing and ui.perfetto.dev load
// directly. tool names the process in the viewer.
func (t *Tracer) WriteFile(path, tool string) error {
	t.mu.Lock()
	events := make([]traceEvent, 0, len(t.events)+1)
	events = append(events, traceEvent{
		Name: "process_name",
		Ph:   "M",
		PID:  t.pid,
		Args: map[string]any{"name": tool},
	})
	events = append(events, t.events...)
	t.mu.Unlock()

	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("telemetry: encoding trace: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: writing trace: %w", err)
	}
	return nil
}
