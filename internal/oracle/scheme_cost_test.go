package oracle

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/mmu"
)

// TestSchemeCostsMatchOracle pins every registered MMU scheme's
// closed-form cost table (Scheme.WalkCost) against the oracle's
// independently derived mode table (ExpectWalk / ExpectWalkFlat) over
// the whole input space: every guest and nested leaf size, and every
// coverage combination the scheme's register requirements admit. The
// two forms are written in different packages from different framings
// — the schemes from the walker's perspective, the oracle from the
// paper's Figure 5 — so a transcription slip in either cost model
// breaks this test even before the harness measures a real walk.
func TestSchemeCostsMatchOracle(t *testing.T) {
	sizes := []addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G}
	for _, s := range mmu.Schemes() {
		req := s.Requirements()
		gSeg := req.GuestSegment || req.FlattenedNested
		vSeg := req.VMMSegment || req.FlattenedNested
		for _, gsize := range sizes {
			for _, nsize := range sizes {
				for _, gc := range coverStates(gSeg) {
					for _, vc := range coverStates(vSeg) {
						for _, ge := range enableStates(req, gSeg) {
							for _, ve := range enableStates(req, vSeg) {
								checkSchemeCostEntry(t, s, gsize, nsize, gc && ge, vc && ve, ge, ve)
							}
						}
					}
				}
			}
		}
	}
}

// coverStates enumerates a dimension's coverage values: only uncovered
// when no segment can be programmed, both otherwise.
func coverStates(segPossible bool) []bool {
	if !segPossible {
		return []bool{false}
	}
	return []bool{false, true}
}

// enableStates enumerates a dimension's register-enable values. The
// paper schemes' registers are fixed by their identity; only FlatNested
// composes with any segment setup.
func enableStates(req mmu.Requirements, segPossible bool) []bool {
	if !segPossible {
		return []bool{false}
	}
	if req.FlattenedNested {
		return []bool{false, true}
	}
	return []bool{true}
}

func checkSchemeCostEntry(t *testing.T, s mmu.Scheme, gsize, nsize addr.PageSize, gc, vc, ge, ve bool) {
	t.Helper()
	in := mmu.CostInput{
		GuestLevels:     Levels(gsize),
		NestedLevels:    Levels(nsize),
		GuestCovered:    gc,
		VMMCovered:      vc,
		GuestSegEnabled: ge,
		VMMSegEnabled:   ve,
	}
	got := s.WalkCost(in)

	p := Prediction{GuestSize: gsize, GuestCovered: gc, VMMCovered: vc}
	var want WalkCost
	switch {
	case ge && gc && (!s.Virtualized() || (ve && vc)):
		// Every dimension a segment can flatten is covered: the 0D (or
		// native covered) fast path absorbs the miss with one check.
		want = WalkCost{Checks: 1}
	case s.Requirements().FlattenedNested:
		want = ExpectWalkFlat(p, ge, ve, Levels(nsize))
	default:
		want = ExpectWalk(p, ge, ve, s.Virtualized(), Levels(nsize))
	}
	if got.Refs != want.Refs || got.Checks != want.Checks {
		t.Errorf("%s: gsize=%v nsize=%v covered(g=%v,v=%v) enabled(g=%v,v=%v): scheme says (refs %d, checks %d), oracle says (%d, %d)",
			s.Name(), gsize, nsize, gc, vc, ge, ve, got.Refs, got.Checks, want.Refs, want.Checks)
	}
}
