// Package oracle is the deliberately simple reference implementation of
// the translation stack that the differential checker and fuzz harness
// compare the production mmu/tlb/ptecache/segment/escape/vmm stack
// against.
//
// Design rules, in tension with everything else in this repo:
//
//   - No caching. Every Translate recomputes from flat per-page maps.
//   - No concurrency, no shared state, no reused buffers.
//   - No reuse of production translation code. Segment semantics are
//     three integer comparisons; page tables are Go maps keyed by 4K
//     page number; escape filters are exact sets (the Bloom filter's
//     false positives are a cost artifact, not an architectural one —
//     see Harness for how the differential checker accounts for them).
//
// The oracle also encodes the paper's mode table as a closed form
// (ExpectWalk): Base Virtualized walks cost gL·(nL+1)+nL references
// (24 for 4K+4K), VMM/Guest Direct cost 4 (1D), Dual Direct costs 0
// (0D), with the base-bound check counts of Table IV (Δ_VD = 5,
// Δ_GD = 1). In a strict configuration — paging-structure caches and
// nested TLB disabled, equal PTE-cache hit/miss cost — the production
// MMU must reproduce these numbers exactly, per walk, on every
// randomized input.
package oracle

import (
	"fmt"

	"vdirect/internal/addr"
)

// Mapping is one reference page mapping at 4K grain: the target page
// number and the leaf size of the mapping that produced it (a 2M leaf
// contributes 512 consecutive Mappings that all report Page2M).
type Mapping struct {
	Target uint64 // target page number (gPA page for guest, hPA page for nested)
	Size   addr.PageSize
}

// Segment is the oracle's independent model of one BASE/LIMIT/OFFSET
// register set. It deliberately re-states the three comparisons rather
// than importing segment.Registers' methods, so a bug there cannot
// propagate here.
type Segment struct {
	Base, Limit, Offset uint64
}

// Enabled reports whether the register set covers any address.
func (s Segment) Enabled() bool { return s.Limit > s.Base }

// Covers reports the base-bound check BASE <= a < LIMIT.
func (s Segment) Covers(a uint64) bool { return a >= s.Base && a < s.Limit }

// Translate applies target = a + OFFSET (mod 2^64).
func (s Segment) Translate(a uint64) uint64 { return a + s.Offset }

// Model is the full reference translation state: two flat page maps,
// two segment register sets, two exact escape sets, and the
// virtualization switch. All mutation is explicit; Translate is pure.
type Model struct {
	// Virtualized selects two-level translation; when false the guest
	// dimension's output is the final physical address.
	Virtualized bool
	// GuestSeg maps gVA→gPA (or VA→PA native); VMMSeg maps gPA→hPA.
	GuestSeg, VMMSeg Segment
	// Guest holds gVA-page → Mapping(gPA page); Nested holds
	// gPA-page → Mapping(hPA page).
	Guest, Nested map[uint64]Mapping
	// EscapedGuest and EscapedVMM are the exact sets of escaped pages
	// (keyed by source page number of the respective dimension). A
	// covered page in the set takes the paging path of its dimension.
	EscapedGuest, EscapedVMM map[uint64]bool
}

// NewModel builds an empty reference model.
func NewModel() *Model {
	return &Model{
		Guest:        make(map[uint64]Mapping),
		Nested:       make(map[uint64]Mapping),
		EscapedGuest: make(map[uint64]bool),
		EscapedVMM:   make(map[uint64]bool),
	}
}

// MapGuest installs a guest-dimension mapping of the given page size:
// every 4K page of the leaf is entered into the flat map.
func (m *Model) MapGuest(va, gpa uint64, s addr.PageSize) {
	pages := s.Bytes() >> addr.PageShift4K
	vp, gp := va>>addr.PageShift4K, gpa>>addr.PageShift4K
	for i := uint64(0); i < pages; i++ {
		m.Guest[vp+i] = Mapping{Target: gp + i, Size: s}
	}
}

// UnmapGuest removes the guest mapping covering va (all 4K pages of
// its leaf size).
func (m *Model) UnmapGuest(va uint64, s addr.PageSize) {
	pages := s.Bytes() >> addr.PageShift4K
	vp := va >> addr.PageShift4K
	for i := uint64(0); i < pages; i++ {
		delete(m.Guest, vp+i)
	}
}

// MapNested installs a nested-dimension mapping at 4K grain.
func (m *Model) MapNested(gpa, hpa uint64, s addr.PageSize) {
	pages := s.Bytes() >> addr.PageShift4K
	gp, hp := gpa>>addr.PageShift4K, hpa>>addr.PageShift4K
	for i := uint64(0); i < pages; i++ {
		m.Nested[gp+i] = Mapping{Target: hp + i, Size: s}
	}
}

// UnmapNested removes the nested mapping for one 4K gPA page.
func (m *Model) UnmapNested(gpa uint64) {
	delete(m.Nested, gpa>>addr.PageShift4K)
}

// FaultKind mirrors the two translation dimensions that can fault.
type FaultKind uint8

// Fault dimensions, matching mmu.FaultGuest / mmu.FaultNested.
const (
	FaultNone FaultKind = iota
	FaultGuest
	FaultNested
)

// Prediction is the oracle's verdict for one access.
type Prediction struct {
	// HPA is the final physical address (valid when Fault == FaultNone).
	HPA uint64
	// Fault is the predicted fault dimension; Addr is the faulting gVA
	// (FaultGuest) or gPA (FaultNested).
	Fault FaultKind
	Addr  uint64

	// GuestCovered / VMMCovered report whether the access resolved its
	// dimension through a segment (covered, enabled, and not escaped).
	GuestCovered bool
	VMMCovered   bool
	// GuestSize is the leaf size of the guest mapping used (Page4K when
	// the guest segment translated the address).
	GuestSize addr.PageSize
}

// Translate runs one access through the reference model.
func (m *Model) Translate(va uint64) Prediction {
	p := Prediction{GuestSize: addr.Page4K}

	// Guest dimension: segment first (enabled, covered, not escaped),
	// else the flat map.
	var gpa uint64
	if m.GuestSeg.Enabled() && m.GuestSeg.Covers(va) && !m.EscapedGuest[va>>addr.PageShift4K] {
		gpa = m.GuestSeg.Translate(va)
		p.GuestCovered = true
	} else {
		mp, ok := m.Guest[va>>addr.PageShift4K]
		if !ok {
			p.Fault, p.Addr = FaultGuest, va
			return p
		}
		gpa = mp.Target<<addr.PageShift4K + va&addr.Page4K.Mask()
		p.GuestSize = mp.Size
	}
	if !m.Virtualized {
		p.HPA = gpa
		return p
	}

	// Nested dimension: VMM segment, else the flat map.
	hpa, fault := m.TranslateNested(gpa)
	if fault {
		p.Fault, p.Addr = FaultNested, gpa
		return p
	}
	p.HPA = hpa
	p.VMMCovered = m.VMMSeg.Enabled() && m.VMMSeg.Covers(gpa) && !m.EscapedVMM[gpa>>addr.PageShift4K]
	return p
}

// TranslateNested resolves one gPA through the reference nested
// dimension (segment first, then the flat map).
func (m *Model) TranslateNested(gpa uint64) (hpa uint64, fault bool) {
	if m.VMMSeg.Enabled() && m.VMMSeg.Covers(gpa) && !m.EscapedVMM[gpa>>addr.PageShift4K] {
		return m.VMMSeg.Translate(gpa), false
	}
	mp, ok := m.Nested[gpa>>addr.PageShift4K]
	if !ok {
		return 0, true
	}
	return mp.Target<<addr.PageShift4K + gpa&addr.Page4K.Mask(), false
}

// Levels returns the number of page-walk levels (memory references) a
// successful walk of a mapping with leaf size s performs: 4K → 4,
// 2M → 3, 1G → 2.
func Levels(s addr.PageSize) uint64 {
	switch s {
	case addr.Page4K:
		return 4
	case addr.Page2M:
		return 3
	case addr.Page1G:
		return 2
	}
	panic(fmt.Sprintf("oracle: invalid page size %d", s))
}

// WalkCost is the closed-form cost of one page-walk invocation in a
// strict configuration (paging-structure caches and nested TLB
// disabled, every escape filter clean).
type WalkCost struct {
	// Refs is the number of page-table memory references.
	Refs uint64
	// Checks is the number of base-bound checks charged.
	Checks uint64
}

// Cycles converts the cost to cycles given a uniform PTE-reference
// cost and the per-check cost Δ.
func (c WalkCost) Cycles(refCycles, checkCycles uint64) uint64 {
	return c.Refs*refCycles + c.Checks*checkCycles
}

// ExpectWalk is the paper's mode table as a closed form: the exact
// reference and check counts of one page-walk state-machine invocation,
// given the oracle's view of the access. nestedLevels is the walk depth
// of the nested dimension's mappings (4 for 4K nested pages).
//
// It assumes a strict configuration and that, when the VMM segment is
// enabled, it covers every guest physical address the walk touches
// (the §VI.A whole-guest contiguous reservation) — which the harness
// guarantees by construction. It must not be called for accesses the
// Dual Direct 0D fast path absorbs (both dimensions covered): those
// never invoke the walk machine.
func ExpectWalk(p Prediction, guestSegEnabled, vmmSegEnabled, virtualized bool, nestedLevels uint64) WalkCost {
	var c WalkCost
	if !virtualized {
		// Native / Direct Segment: a walk only happens when the segment
		// did not translate the address, and the segment check is charged
		// only on the covered fast path — so an invoked walk costs
		// exactly the guest levels.
		c.Refs = Levels(p.GuestSize)
		return c
	}
	// Figure 5(b): the guest base-bound check is charged once per walk
	// whenever the guest segment is enabled.
	if guestSegEnabled {
		c.Checks++
	}
	guestRefs := uint64(0)
	if !p.GuestCovered {
		guestRefs = Levels(p.GuestSize)
	}
	// Each guest page-table reference is a gPA resolved through the
	// nested dimension first, then the final gPA is resolved: that is
	// guestRefs+1 nested translations. With the VMM segment enabled and
	// covering (strict harness invariant), each costs one check and
	// zero references; otherwise each is a full nested walk.
	nested := guestRefs + 1
	if vmmSegEnabled {
		c.Checks += nested
	} else {
		c.Refs += nested * nestedLevels
	}
	c.Refs += guestRefs
	return c
}

// ExpectWalkFlat is ExpectWalk for the flattened-nested-walk scheme
// (mmu.ModeFlatNested): each interior guest level (gL4–gL2) costs one
// flat-table reference instead of a nested translation of the table's
// gPA plus the entry read, so only the deepest guest reference — the
// gL1 entry, present for 4K guest leaves only — and the final gPA still
// cross the nested dimension. The 24-reference 4K-on-4K walk collapses
// to 12. Same strict-harness assumptions as ExpectWalk; never called
// for native operation, where the flag is latent.
func ExpectWalkFlat(p Prediction, guestSegEnabled, vmmSegEnabled bool, nestedLevels uint64) WalkCost {
	var c WalkCost
	if guestSegEnabled {
		c.Checks++
	}
	if p.GuestCovered {
		// Guest dimension flattened by the segment: one nested
		// translation of the final gPA, exactly as the base 2D form.
		if vmmSegEnabled {
			c.Checks++
		} else {
			c.Refs += nestedLevels
		}
		return c
	}
	deep := uint64(0)
	if p.GuestSize == addr.Page4K {
		deep = 1
	}
	c.Refs += Levels(p.GuestSize) // flat interior refs, plus the gL1 entry read
	nested := deep + 1            // gL1 reference (if any) + the final gPA
	if vmmSegEnabled {
		c.Checks += nested
	} else {
		c.Refs += nested * nestedLevels
	}
	return c
}
