// The differential checker: one reference Model and two production
// MMUs (a strict geometry with exact closed-form cost assertions, and a
// tiny-cache geometry that maximizes TLB/PTE-cache pressure) driven in
// lockstep over the same guest process, VM and page tables by an
// encoded operation stream. Every access is translated through both
// MMUs and compared against the oracle; every mutation (map, unmap,
// segment resize, mode switch, bad-page escape, ballooning, migration)
// is applied to both worlds.
//
// The fuzz targets feed this harness raw bytes; deterministic tests
// feed it hand-built op streams. Because both MMUs must match the same
// cache-free oracle, the harness simultaneously proves the metamorphic
// property that cache geometry never changes a translation.

package oracle

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/guestos"
	"vdirect/internal/mmu"
	"vdirect/internal/ptecache"
	"vdirect/internal/segment"
	"vdirect/internal/tlb"
	"vdirect/internal/vmm"
)

// Harness geometry. Sizes are small so a fuzz iteration builds the
// full production stack in well under a millisecond of simulated
// setup, while still spanning multiple PML4/PDPT/PD indices.
const (
	guestSize = 16 << 20 // guest physical memory (4K/2M nested harness)
	hostSize  = 40 << 20 // host physical memory (4K/2M nested harness)

	// PrimBase is the primary region (guest-segment candidate): 256
	// 4K pages backed by a contiguous guest physical run.
	PrimBase  = 0x4000_0000
	primPages = 256
	// PagedBase is a conventionally paged region of 512 4K pages.
	PagedBase  = 0x5000_0000
	pagedPages = 512
	// HugeBase is a 2M-aligned region with two 2M mapping slots.
	HugeBase  = 0x6000_0000
	hugeSlots = 2

	// refCycles is the uniform PTE-reference cost of the strict MMU
	// (hit == miss), making walk cycles exactly predictable.
	refCycles = 10
)

// strictConfig is the geometry the closed-form cost model predicts
// exactly: no paging-structure caches, no nested TLB, and a PTE cache
// whose hit and miss cost the same.
func strictConfig() mmu.Config {
	return mmu.Config{
		DisablePWC:       true,
		DisableNestedTLB: true,
		PTECache: ptecache.Config{
			Lines: 512, Ways: 4,
			HitCycles: refCycles, MissCycles: refCycles,
		},
	}
}

// pressureConfig shrinks every cache to a handful of entries so the
// fuzzer constantly exercises eviction, refill and invalidation paths.
func pressureConfig() mmu.Config {
	return mmu.Config{
		L1: tlb.Geometry{
			Entries4K: 8, Ways4K: 4,
			Entries2M: 4, Ways2M: 4,
			Entries1G: 4, Ways1G: 4,
		},
		L2Entries: 16, L2Ways: 4,
		PTECache: ptecache.Config{Lines: 64, Ways: 4, HitCycles: 18, MissCycles: 170},
	}
}

// procState parks one guest process's half of both worlds while the
// other process runs: the production process handle plus the oracle's
// per-address-space maps. The ASID equals the process index, so tagged
// context switches can leave the parked process's TLB entries resident.
type procState struct {
	proc     *guestos.Process
	guest    map[uint64]Mapping
	escaped  map[uint64]bool
	primGPA  uint64
	segPages uint64
}

// Harness owns one differential scenario.
type Harness struct {
	model  *Model
	host   *vmm.Host
	vm     *vmm.VM
	kernel *guestos.Kernel
	proc   *guestos.Process

	// procs holds both guest processes' parked state; cur indexes the
	// one whose fields are live in proc/primGPA/guestSegPages and in
	// the model's guest-dimension maps.
	procs [2]procState
	cur   int

	// mmus[0] is the strict geometry, mmus[1] the pressure geometry.
	mmus [2]*mmu.MMU

	vmmRegs segment.Registers // full-guest VMM segment registers
	primGPA uint64            // gPA backing PrimBase

	// Nested-dimension geometry: the page size backing gPA→hPA, its
	// walk depth (4/3/2 for 4K/2M/1G — the 24-, 19- and 14-ref rows of
	// the mode table), and the physical sizes, which grow for 1G so the
	// guest spans at least one whole nested leaf.
	nestedSize   addr.PageSize
	nestedLevels uint64
	guestBytes   uint64
	hostBytes    uint64

	virtualized   bool
	guestSegPages uint64 // current guest-segment span in pages (0 = off)

	// OS-side PCID bookkeeping for opContextSwitch. curAsid shadows the
	// MMUs' ASID register (untagged switches leave it unchanged, so the
	// harness must know where inserts are landing); asidOwner[a] is the
	// process whose translations may live under tag a (-1 = none). A
	// tagged switch that would reuse a slot last populated by the OTHER
	// process must INVPCID it first — exactly the hazard a real OS
	// avoids when it mixes non-PCID and PCID switching (Linux's
	// choose_new_asid does the same slot-generation check).
	curAsid   uint16
	asidOwner [2]int8
	vmmSegOn  bool
	flat      bool // flattened nested walks (latent while unvirtualized)

	// filtersClean is true until the first escape-filter insertion;
	// while true, the Bloom filters provably produce no positives and
	// the strict MMU must match the closed-form cost model exactly.
	filtersClean bool

	accesses []uint64 // every access VA, for the monotonicity check
	ops      int
}

// NewHarness builds the production stack (host, VM with contiguous
// backing, guest kernel, process with a segment-backed primary region)
// and the mirroring oracle, starting in Dual Direct mode with 4K
// nested pages.
func NewHarness() (*Harness, error) {
	return NewHarnessNested(addr.Page4K)
}

// NewHarnessNested is NewHarness with the VM backed at the given
// nested page size, so the shallower 2D-walk rows of the mode table
// (19 refs for 2M nested, 14 for 1G) run under the same differential
// checks as the 4K default.
func NewHarnessNested(nested addr.PageSize) (*Harness, error) {
	h := &Harness{
		model:        NewModel(),
		virtualized:  true,
		vmmSegOn:     true,
		filtersClean: true,
		nestedSize:   nested,
		nestedLevels: Levels(nested),
		guestBytes:   guestSize,
		hostBytes:    hostSize,
		// Process 0 boots under the MMUs' reset ASID 0; tag 1 is clean.
		asidOwner: [2]int8{0, -1},
	}
	if nested == addr.Page1G {
		// The guest must span one whole 1G leaf; the host needs that
		// backing run plus a second 1G-aligned run so one whole-leaf
		// migration (opEscapeVMM) can succeed, plus page-table slack.
		h.guestBytes = 1 << 30
		h.hostBytes = 3<<30 + 64<<20
	}
	h.host = vmm.NewHost(h.hostBytes)
	vm, err := h.host.CreateVM(vmm.VMConfig{
		Name:              "oracle-fuzz",
		MemorySize:        h.guestBytes,
		NestedPageSize:    nested,
		ContiguousBacking: true,
	})
	if err != nil {
		return nil, fmt.Errorf("oracle: creating VM: %w", err)
	}
	h.vm = vm
	h.kernel = guestos.NewKernel(vm.GuestMem, vm)
	proc, err := h.kernel.CreateProcess("fuzz")
	if err != nil {
		return nil, err
	}
	h.proc = proc
	if err := proc.CreatePrimaryRegionAt(addr.Range{Start: PrimBase, Size: primPages << addr.PageShift4K}); err != nil {
		return nil, fmt.Errorf("oracle: primary region: %w", err)
	}
	if err := proc.MMapAt(addr.Range{Start: PagedBase, Size: pagedPages << addr.PageShift4K}); err != nil {
		return nil, err
	}
	if err := proc.MMapAt(addr.Range{Start: HugeBase, Size: hugeSlots << addr.PageShift2M}); err != nil {
		return nil, err
	}
	// A second guest process, symmetric with the first: its own primary
	// region (distinct gPA backing, so its segment translates
	// differently), its own demand-paged regions, its own page table.
	// ASIDs equal process indices; process 0 matches the MMUs' reset
	// ASID so single-process op streams behave exactly as before.
	procB, err := h.kernel.CreateProcess("fuzz-b")
	if err != nil {
		return nil, err
	}
	if err := procB.CreatePrimaryRegionAt(addr.Range{Start: PrimBase, Size: primPages << addr.PageShift4K}); err != nil {
		return nil, fmt.Errorf("oracle: primary region B: %w", err)
	}
	if err := procB.MMapAt(addr.Range{Start: PagedBase, Size: pagedPages << addr.PageShift4K}); err != nil {
		return nil, err
	}
	if err := procB.MMapAt(addr.Range{Start: HugeBase, Size: hugeSlots << addr.PageShift2M}); err != nil {
		return nil, err
	}
	h.procs[1] = procState{
		proc:     procB,
		guest:    make(map[uint64]Mapping),
		escaped:  make(map[uint64]bool),
		primGPA:  procB.Seg.Translate(PrimBase),
		segPages: primPages,
	}

	h.vmmRegs, err = vm.TryEnableVMMSegment()
	if err != nil {
		return nil, fmt.Errorf("oracle: VMM segment: %w", err)
	}
	h.primGPA = proc.Seg.Translate(PrimBase)
	h.guestSegPages = primPages

	h.mmus[0] = mmu.New(strictConfig())
	h.mmus[1] = mmu.New(pressureConfig())
	for _, m := range h.mmus {
		m.SetGuestPageTable(proc.PT)
		m.SetNestedPageTable(vm.NPT)
		m.SetGuestSegment(proc.Seg)
		m.SetVMMSegment(h.vmmRegs)
		// Engage the miss memo and its cross-check: whenever an op
		// stream steers a stack into the fused-eligible configuration
		// (unsegmented nested paging — the pressure geometry once both
		// segments are off), every replayed miss is verified against the
		// recorded outcome, so an invalidation gap in the memo's epoch
		// scheme panics the fuzz target instead of hiding.
		m.SetMemoCheck(true)
	}

	// Mirror architectural state into the oracle. The nested map is
	// snapshotted from the NPT's software view once at build time; from
	// here on the two worlds evolve only through harness operations.
	h.model.Virtualized = true
	h.model.GuestSeg = Segment{Base: proc.Seg.Base, Limit: proc.Seg.Limit, Offset: proc.Seg.Offset}
	h.model.VMMSeg = Segment{Base: h.vmmRegs.Base, Limit: h.vmmRegs.Limit, Offset: h.vmmRegs.Offset}
	vm.NPT.VisitLeaves(func(gpa, hpa uint64, s addr.PageSize) bool {
		h.model.MapNested(gpa, hpa, s)
		return true
	})
	return h, nil
}

// Model exposes the reference model (tests poke it for assertions).
func (h *Harness) Model() *Model { return h.model }

// Accesses returns every access VA the run performed, in order.
func (h *Harness) Accesses() []uint64 { return h.accesses }

// MMUStats snapshots both production MMUs' counters (strict geometry
// first) so determinism tests can compare whole runs.
func (h *Harness) MMUStats() [2]mmu.Stats {
	return [2]mmu.Stats{h.mmus[0].Stats(), h.mmus[1].Stats()}
}

// opReader decodes the fuzzer's byte stream; reads past the end yield
// zero so truncated inputs stay valid.
type opReader struct {
	data []byte
	pos  int
}

func (r *opReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *opReader) done() bool { return r.pos >= len(r.data) }

// NestedSizeFromFlags decodes bits 1-2 of an op stream's flag byte
// into the nested page size the harness should be built with: 4K by
// default, 2M or 1G when the fuzzer sets the bits. The remaining two-
// bit value wraps to 4K so every byte decodes to a valid geometry.
func NestedSizeFromFlags(flags byte) addr.PageSize {
	switch (flags >> 1) & 3 {
	case 1:
		return addr.Page2M
	case 2:
		return addr.Page1G
	default:
		return addr.Page4K
	}
}

// HarnessForInput builds the harness an encoded op stream asks for:
// the flag byte (byte 0) both configures the build — bits 1-2 select
// the nested page size, bit 3 starts the stack with flattened nested
// walks — and directs the run (bit 0, see Run).
func HarnessForInput(data []byte) (*Harness, error) {
	var flags byte
	if len(data) > 0 {
		flags = data[0]
	}
	h, err := NewHarnessNested(NestedSizeFromFlags(flags))
	if err != nil {
		return nil, err
	}
	if flags&flagFlat != 0 {
		h.setFlat(true)
	}
	return h, nil
}

// Run decodes and executes the whole op stream, then checks the
// end-of-run statistics identities. The first byte is a flag byte:
// bit 0 additionally replays the run's accesses through three fresh
// single-mode stacks and checks the mode-table monotonicity invariant
// (bits 1-2 select the nested page size, consumed by HarnessForInput
// at build time, not here).
func (h *Harness) Run(data []byte) error {
	r := &opReader{data: data}
	flags := r.next()
	for !r.done() {
		if err := h.step(r); err != nil {
			return fmt.Errorf("op %d: %w", h.ops, err)
		}
		h.ops++
	}
	if err := h.CheckStats(); err != nil {
		return err
	}
	if flags&1 != 0 && len(h.accesses) > 0 {
		vas := h.accesses
		if len(vas) > 512 {
			vas = vas[:512]
		}
		return CheckModeMonotonicity(vas)
	}
	return nil
}

// step executes one operation. Op bytes dispatch through a weighted
// 256-entry table (the op* range-start constants in seeds.go) rather
// than a uniform mod: just under half the byte space goes to accesses
// — the comparison itself — and the rest is deliberately skewed toward
// segment resizes and the two mode toggles, the transitions where walk
// dimensionality changes and a stale-TLB or mis-charged-cost bug has
// the most places to hide.
func (h *Harness) step(r *opReader) error {
	op := r.next()
	switch {
	case op < opMap: // 120/256: access
		return h.access(h.decodeVA(r.next(), r.next()))
	case op < opUnmap: // 16/256: map
		return h.opMap(r.next(), r.next())
	case op < opResize: // 16/256: unmap
		return h.opUnmap(r.next(), r.next())
	case op < opToggleVMM: // 24/256: guest-segment resize
		return h.opResizeGuestSegment(r.next())
	case op < opToggleVirt: // 24/256: VMM-segment toggle
		h.opToggleVMMSegment()
	case op < opEscGuest: // 24/256: virtualization toggle
		h.opToggleVirtualized()
	case op < opSub: // 16/256: guest-page escape
		return h.opEscapeGuest(r.next())
	default: // 16/256: sub-op
		b := r.next()
		switch b % 7 {
		case subEscVMM:
			return h.opEscapeVMM(r.next(), r.next())
		case subBalloon:
			return h.opBalloon()
		case subFlush:
			for _, m := range h.mmus {
				m.FlushTLBs()
			}
		case subSwitch:
			h.opContextSwitch(r.next())
		case subFlushASID:
			// Flush one address space's cached translations (INVPCID):
			// pure cache surgery, so the oracle model is untouched — the
			// differential check proves it never changes a translation.
			asid := uint16(r.next()) % 2
			for _, m := range h.mmus {
				m.FlushASID(asid)
			}
			// The slot is only truly empty if it isn't the live tag: the
			// running process repopulates its own slot on the very next
			// insert, so its ownership must survive the flush or a later
			// tagged switch would adopt those entries without flushing.
			if asid == h.curAsid {
				h.asidOwner[asid] = int8(h.cur)
			} else {
				h.asidOwner[asid] = -1
			}
		case subToggleFlat:
			// Flip the flattened-nested-walk flag. Flattening is a
			// walk-cost mechanism, never a translation change, so the
			// oracle model is untouched: the differential check proves
			// the flat walker resolves and faults exactly as the base 2D
			// walk, while checkCost holds it to the flattened closed form.
			h.setFlat(!h.flat)
		case subInvlPage:
			// INVLPG of an arbitrary page: pure cache surgery (the
			// mapping itself is untouched, so surviving entries stay
			// valid and the oracle model needs no update). Exercises
			// per-page invalidation against the last-page cache and the
			// miss memo's epoch — a page whose memo entry survived an
			// INVLPG stale would trip the memoCheck cross-check on its
			// next recorded replay.
			va := addr.PageBase(h.decodeVA(r.next(), r.next()), addr.Page4K)
			for _, m := range h.mmus {
				m.InvalidatePage(va, addr.Page4K)
			}
		}
	}
	return nil
}

// opContextSwitch swaps the live guest process. Bit 0 of the operand
// picks the mechanism: tagged (ASID/PCID retag, both processes'
// entries stay resident under distinct tags) or untagged (the 2014-era
// full flush). Both worlds swap their per-address-space state; machine-
// wide state (virtualization, VMM segment, nested maps, filters) stays.
func (h *Harness) opContextSwitch(b byte) {
	// Park the live process's half of both worlds...
	h.procs[h.cur] = procState{
		proc:     h.proc,
		guest:    h.model.Guest,
		escaped:  h.model.EscapedGuest,
		primGPA:  h.primGPA,
		segPages: h.guestSegPages,
	}
	// ...and wake the other's.
	h.cur = 1 - h.cur
	st := h.procs[h.cur]
	h.proc = st.proc
	h.model.Guest = st.guest
	h.model.EscapedGuest = st.escaped
	h.primGPA = st.primGPA
	h.guestSegPages = st.segPages

	regs := segment.NewRegisters(PrimBase, h.primGPA, h.guestSegPages<<addr.PageShift4K)
	if tagged := b&1 != 0; tagged {
		next := uint16(h.cur)
		// Reusing a PCID slot the other process's translations still
		// occupy (an untagged timeslice inserts under whatever ASID the
		// register held) would hand those translations to the incoming
		// process; flush the slot first, as an OS mixing non-PCID and
		// PCID switching must.
		if o := h.asidOwner[next]; o != int8(h.cur) && o != -1 {
			for _, m := range h.mmus {
				m.FlushASID(next)
			}
		}
		for _, m := range h.mmus {
			m.ContextSwitchASID(h.proc.PT, regs, next)
		}
		h.curAsid = next
		h.asidOwner[next] = int8(h.cur)
	} else {
		for _, m := range h.mmus {
			m.ContextSwitch(h.proc.PT, regs)
		}
		// The full flush emptied every slot; the incoming process's
		// inserts land under the unchanged ASID register.
		h.asidOwner = [2]int8{-1, -1}
		h.asidOwner[h.curAsid] = int8(h.cur)
	}
	h.model.GuestSeg = Segment{Base: regs.Base, Limit: regs.Limit, Offset: regs.Offset}
}

// setFlat switches both production MMUs between the base and flattened
// nested walkers. The flush mirrors the other mode transitions so cost
// checks always see cold TLBs after a switch; the oracle model has no
// flat notion at all — identical translations are the whole point.
func (h *Harness) setFlat(on bool) {
	h.flat = on
	for _, m := range h.mmus {
		m.SetFlatNested(on)
		m.FlushTLBs()
	}
}

// decodeVA maps two operand bytes onto an address in one of the three
// regions, with a sub-page offset so offset arithmetic is exercised.
// Half the primary-region selectors aim within ±16 pages of the live
// guest-segment limit: the covered↔uncovered boundary is where the 0D
// fast path, the walker and demand paging hand off to each other.
func (h *Harness) decodeVA(b1, b2 byte) uint64 {
	off := ((uint64(b1)>>2)*64 + uint64(b2)) & 0xfff
	switch b1 & 3 {
	case 0:
		return PrimBase + uint64(b2)%primPages<<addr.PageShift4K + off
	case 1:
		p := (h.guestSegPages + primPages - 16 + uint64(b2)%33) % primPages
		return PrimBase + p<<addr.PageShift4K + off
	case 2:
		idx := (uint64(b1)>>2<<8 | uint64(b2)) % pagedPages
		return PagedBase + idx<<addr.PageShift4K + off
	default:
		idx := (uint64(b1)>>2<<8 | uint64(b2)) % (hugeSlots << 9)
		return HugeBase + idx<<addr.PageShift4K + off
	}
}

func (h *Harness) inRegion(va uint64) bool {
	switch {
	case va >= PrimBase && va < PrimBase+primPages<<addr.PageShift4K:
		return true
	case va >= PagedBase && va < PagedBase+pagedPages<<addr.PageShift4K:
		return true
	case va >= HugeBase && va < HugeBase+uint64(hugeSlots)<<addr.PageShift2M:
		return true
	}
	return false
}

// access translates va through both MMUs and compares each against the
// oracle, servicing agreed demand-paging faults and §V false-positive
// faults the way the guest OS would.
func (h *Harness) access(va uint64) error {
	h.accesses = append(h.accesses, va)
	for i, m := range h.mmus {
		if err := h.accessOne(m, i == 0, va); err != nil {
			return fmt.Errorf("mmu[%d] va %#x: %w", i, va, err)
		}
	}
	return nil
}

func (h *Harness) accessOne(m *mmu.MMU, strict bool, va uint64) error {
	for attempt := 0; attempt < 3; attempt++ {
		want := h.model.Translate(va)
		st0 := m.Stats()
		res, fault := m.Translate(va)
		if fault != nil {
			if fault.Kind == mmu.FaultNested {
				if want.Fault == FaultNested && want.Addr == fault.Addr {
					return nil // agreed nested fault: nothing to service
				}
				return fmt.Errorf("nested fault at gPA %#x, oracle predicts %v", fault.Addr, want)
			}
			switch {
			case want.Fault == FaultGuest:
				if fault.Addr != want.Addr {
					return fmt.Errorf("guest fault at %#x, oracle predicts fault at %#x", fault.Addr, want.Addr)
				}
				if !h.inRegion(va) {
					return nil // agreed fault outside any region
				}
				if err := h.demandPage(va); err != nil {
					return nil // agreed fault, no frames left to service it
				}
				continue
			case want.GuestCovered:
				// §V false positive: production must only have taken the
				// paging path because the filter reported the page, and the
				// OS contract is to install the identity PTE and retry.
				if !m.GuestEscapeFilter().MayContain(va >> addr.PageShift4K) {
					return fmt.Errorf("guest fault at %#x inside covered segment without a filter hit", fault.Addr)
				}
				if _, ok := h.model.Guest[va>>addr.PageShift4K]; ok {
					return fmt.Errorf("guest fault at %#x but the page is mapped", fault.Addr)
				}
				if err := h.mapFalsePositive(va); err != nil {
					return err
				}
				continue
			default:
				return fmt.Errorf("unexpected guest fault at %#x (oracle: HPA %#x)", fault.Addr, want.HPA)
			}
		}
		if want.Fault != FaultNone {
			return fmt.Errorf("translated to %#x where oracle predicts a fault (kind %d at %#x)",
				res.HPA, want.Fault, want.Addr)
		}
		if res.HPA != want.HPA {
			return fmt.Errorf("translated to %#x, oracle says %#x (covered guest=%v vmm=%v)",
				res.HPA, want.HPA, want.GuestCovered, want.VMMCovered)
		}
		if strict && h.filtersClean {
			if err := h.checkCost(m, st0, res, want); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("still faulting after service")
}

// demandPage services an agreed guest fault with a fresh frame, in both
// worlds. An allocation failure is reported to the caller (the access
// then stands as an agreed fault).
func (h *Harness) demandPage(va uint64) error {
	f, err := h.kernel.Mem.AllocFrame()
	if err != nil {
		return err
	}
	page := addr.PageBase(va, addr.Page4K)
	gpa := f << addr.PageShift4K
	if err := h.proc.PT.Map(page, gpa, addr.Page4K); err != nil {
		return fmt.Errorf("demand paging %#x: %v", page, err)
	}
	h.model.MapGuest(page, gpa, addr.Page4K)
	return nil
}

// mapFalsePositive installs the identity PTE the VMM owes a
// falsely-escaped page (§V: mappings must exist for filter hits whether
// true or false), so the paging path reproduces the segment's result.
func (h *Harness) mapFalsePositive(va uint64) error {
	page := addr.PageBase(va, addr.Page4K)
	gpa := addr.PageBase(h.model.GuestSeg.Translate(va), addr.Page4K)
	if err := h.proc.PT.Map(page, gpa, addr.Page4K); err != nil {
		return fmt.Errorf("false-positive mapping %#x: %v", page, err)
	}
	h.model.MapGuest(page, gpa, addr.Page4K)
	return nil
}

// checkCost holds the strict MMU to the closed-form mode table: exact
// reference, check and cycle counts per resolution class. Valid only
// while every escape filter is clean.
func (h *Harness) checkCost(m *mmu.MMU, st0 mmu.Stats, res mmu.Result, want Prediction) error {
	st1 := m.Stats()
	walks := st1.Walks - st0.Walks
	refs := st1.WalkMemRefs - st0.WalkMemRefs
	checks := st1.SegmentChecks - st0.SegmentChecks
	switch {
	case res.L1Hit:
		if res.Cycles != 0 || walks != 0 || refs != 0 {
			return fmt.Errorf("L1 hit with cost (cycles %d, walks %d, refs %d)", res.Cycles, walks, refs)
		}
	case res.ZeroD:
		wantCovered := want.GuestCovered && (!h.virtualized || want.VMMCovered)
		if !wantCovered {
			return fmt.Errorf("0D translation where oracle says coverage guest=%v vmm=%v",
				want.GuestCovered, want.VMMCovered)
		}
		if walks != 0 || refs != 0 || checks != 1 || res.Cycles != 1 {
			return fmt.Errorf("0D cost (walks %d, refs %d, checks %d, cycles %d), want (0,0,1,1)",
				walks, refs, checks, res.Cycles)
		}
	case res.L2Hit:
		if walks != 0 || refs != 0 || res.Cycles != 0 {
			return fmt.Errorf("L2 hit with cost (walks %d, refs %d, cycles %d)", walks, refs, res.Cycles)
		}
	default:
		if walks != 1 {
			return fmt.Errorf("translation resolved without L1/L2/0D but %d walks", walks)
		}
		// An access covered by both enabled segments must have been
		// absorbed by the 0D fast path, never the walker.
		if h.virtualized && h.guestSegPages > 0 && h.vmmSegOn && want.GuestCovered && want.VMMCovered {
			return fmt.Errorf("dual-covered access reached the page walker")
		}
		var wc WalkCost
		if h.flat && h.virtualized {
			wc = ExpectWalkFlat(want, h.guestSegPages > 0, h.vmmSegOn, h.nestedLevels)
		} else {
			wc = ExpectWalk(want, h.guestSegPages > 0, h.vmmSegOn, h.virtualized, h.nestedLevels)
		}
		wantCycles := wc.Cycles(refCycles, 1)
		if refs != wc.Refs || checks != wc.Checks || res.Cycles != wantCycles {
			return fmt.Errorf("walk cost (refs %d, checks %d, cycles %d), mode table says (%d, %d, %d)",
				refs, checks, res.Cycles, wc.Refs, wc.Checks, wantCycles)
		}
	}
	return nil
}

// opMap installs a new mapping: a 4K page in the paged region, or (high
// bit of b1) a whole 2M mapping in the huge region.
func (h *Harness) opMap(b1, b2 byte) error {
	if b1&0x80 != 0 {
		slot := uint64(b2) % hugeSlots
		va := uint64(HugeBase) + slot<<addr.PageShift2M
		// A 2M mapping needs the whole slot empty (demand-paged 4K
		// entries may have landed anywhere inside it).
		for p := uint64(0); p < 512; p++ {
			if _, ok := h.model.Guest[va>>addr.PageShift4K+p]; ok {
				return nil
			}
		}
		first, err := h.kernel.Mem.AllocContiguous(512, 512)
		if err != nil {
			return nil // fragmented: legal no-op
		}
		gpa := first << addr.PageShift4K
		if err := h.proc.PT.Map(va, gpa, addr.Page2M); err != nil {
			return fmt.Errorf("mapping 2M at %#x: %v", va, err)
		}
		h.model.MapGuest(va, gpa, addr.Page2M)
		return nil
	}
	idx := (uint64(b1)<<8 | uint64(b2)) % pagedPages
	va := uint64(PagedBase) + idx<<addr.PageShift4K
	if _, ok := h.model.Guest[va>>addr.PageShift4K]; ok {
		return nil
	}
	return h.demandPage(va)
}

// opUnmap removes a paged-region page or a huge-region mapping,
// invalidating both MMUs as the OS would.
func (h *Harness) opUnmap(b1, b2 byte) error {
	var va uint64
	if b1&0x80 != 0 {
		va = uint64(HugeBase) + uint64(b2)%hugeSlots<<addr.PageShift2M
	} else {
		va = uint64(PagedBase) + (uint64(b1)<<8|uint64(b2))%pagedPages<<addr.PageShift4K
	}
	mp, ok := h.model.Guest[va>>addr.PageShift4K]
	if !ok {
		return nil
	}
	base := addr.PageBase(va, mp.Size)
	if err := h.proc.PT.Unmap(base, mp.Size); err != nil {
		return fmt.Errorf("unmapping %#x: %v", base, err)
	}
	for i := uint64(0); i < mp.Size.Bytes()>>addr.PageShift4K; i++ {
		if err := h.kernel.Mem.FreeFrame(mp.Target + i); err != nil {
			return fmt.Errorf("freeing frame %d: %v", mp.Target+i, err)
		}
	}
	for _, m := range h.mmus {
		m.InvalidatePage(base, mp.Size)
	}
	h.model.UnmapGuest(base, mp.Size)
	return nil
}

// opResizeGuestSegment reprograms LIMIT_G to cover b mod (primPages+1)
// pages (0 disables the segment). Growing re-covers demand-paged PTEs,
// which the OS must tear down; escaped pages keep their remappings.
func (h *Harness) opResizeGuestSegment(b byte) error {
	newPages := uint64(b) % (primPages + 1)
	old := h.guestSegPages
	if newPages > old {
		for p := old; p < newPages; p++ {
			va := uint64(PrimBase) + p<<addr.PageShift4K
			vp := va >> addr.PageShift4K
			mp, ok := h.model.Guest[vp]
			if !ok || h.model.EscapedGuest[vp] {
				continue
			}
			if err := h.proc.PT.Unmap(va, addr.Page4K); err != nil {
				return fmt.Errorf("cleaning re-covered page %#x: %v", va, err)
			}
			if err := h.kernel.Mem.FreeFrame(mp.Target); err != nil {
				return err
			}
			h.model.UnmapGuest(va, addr.Page4K)
		}
	}
	h.guestSegPages = newPages
	regs := segment.NewRegisters(PrimBase, h.primGPA, newPages<<addr.PageShift4K)
	for _, m := range h.mmus {
		m.SetGuestSegment(regs)
		m.FlushTLBs()
	}
	h.model.GuestSeg = Segment{Base: regs.Base, Limit: regs.Limit, Offset: regs.Offset}
	return nil
}

// opToggleVMMSegment enables or disables BASE_V/LIMIT_V/OFFSET_V,
// switching between Dual/Guest Direct (and VMM Direct/Base) behaviour.
func (h *Harness) opToggleVMMSegment() {
	h.vmmSegOn = !h.vmmSegOn
	regs := segment.Disabled()
	if h.vmmSegOn {
		regs = h.vmmRegs
	}
	for _, m := range h.mmus {
		m.SetVMMSegment(regs)
		m.FlushTLBs()
	}
	h.model.VMMSeg = Segment{Base: regs.Base, Limit: regs.Limit, Offset: regs.Offset}
}

// opToggleVirtualized switches between two-level and native
// translation, as a VM teardown/boot would.
func (h *Harness) opToggleVirtualized() {
	h.virtualized = !h.virtualized
	for _, m := range h.mmus {
		if h.virtualized {
			m.SetNestedPageTable(h.vm.NPT)
		} else {
			m.SetNestedPageTable(nil)
		}
		m.FlushTLBs()
	}
	h.model.Virtualized = h.virtualized
}

// opEscapeGuest escapes one primary-region page from the guest segment
// (a bad guest page): filter insert on both MMUs, remap through paging
// to a fresh frame, INVLPG. The top selector values aim within ±8
// pages of the live segment limit, so escapes land where a resize can
// immediately flip them between covered and uncovered.
func (h *Harness) opEscapeGuest(b byte) error {
	page := uint64(b) % primPages
	if b >= 0xF0 {
		page = (h.guestSegPages + primPages + uint64(b) - 0xF8) % primPages
	}
	va := uint64(PrimBase) + page<<addr.PageShift4K
	vp := va >> addr.PageShift4K
	if h.model.EscapedGuest[vp] {
		return nil
	}
	f, err := h.kernel.Mem.AllocFrame()
	if err != nil {
		return nil // no healthy frame available: legal no-op
	}
	gpa := f << addr.PageShift4K
	if _, mapped := h.model.Guest[vp]; mapped {
		if err := h.proc.PT.Remap(va, gpa); err != nil {
			return fmt.Errorf("remapping escaped page %#x: %v", va, err)
		}
	} else if err := h.proc.PT.Map(va, gpa, addr.Page4K); err != nil {
		return fmt.Errorf("mapping escaped page %#x: %v", va, err)
	}
	for _, m := range h.mmus {
		m.GuestEscapeFilter().Insert(vp)
		m.InvalidatePage(va, addr.Page4K)
	}
	h.model.MapGuest(va, gpa, addr.Page4K)
	h.model.EscapedGuest[vp] = true
	h.filtersClean = false
	return nil
}

// opEscapeVMM escapes one guest physical page from the VMM segment (a
// bad host page) and migrates its backing to a fresh host frame. With
// huge nested pages the whole containing leaf migrates — the VMM
// cannot split a 2M/1G nested mapping — but only the selected page is
// escaped, exactly as a single hard-faulted host page would be; the
// segment keeps translating the leaf's healthy pages, so both worlds
// stay linear for them and nested for the escaped one.
func (h *Harness) opEscapeVMM(b1, b2 byte) error {
	gp := (uint64(b1)<<8 | uint64(b2)) % (h.guestBytes >> addr.PageShift4K)
	gpa := gp << addr.PageShift4K
	if _, ok := h.model.Nested[gp]; !ok {
		return nil // ballooned away: nothing to migrate
	}
	gbase := addr.PageBase(gpa, h.nestedSize)
	leafFrames := h.nestedSize.Bytes() >> addr.PageShift4K
	first, err := h.host.Mem.AllocContiguous(leafFrames, leafFrames)
	if err != nil {
		return nil
	}
	hpa := first << addr.PageShift4K
	if err := h.vm.NPT.Remap(gbase, hpa); err != nil {
		return fmt.Errorf("migrating gPA %#x: %v", gbase, err)
	}
	for _, m := range h.mmus {
		m.VMMEscapeFilter().Insert(gp)
		m.InvalidateNested()
	}
	h.model.MapNested(gbase, hpa, h.nestedSize)
	h.model.EscapedVMM[gp] = true
	h.filtersClean = false
	return nil
}

// opBalloon pins one free guest frame and hands it to the VMM, which
// unmaps its nested backing; the page is escaped from the VMM segment
// so the segment cannot resurrect the reclaimed frame.
func (h *Harness) opBalloon() error {
	if h.nestedSize != addr.Page4K {
		return nil // Balloon requires 4K nested pages (ErrBadNestedSize)
	}
	f, err := h.kernel.Mem.AllocFrame()
	if err != nil {
		return nil // guest memory exhausted: legal no-op
	}
	if err := h.vm.Balloon([]uint64{f}); err != nil {
		return fmt.Errorf("ballooning frame %d: %v", f, err)
	}
	for _, m := range h.mmus {
		m.VMMEscapeFilter().Insert(f)
		m.InvalidateNested()
	}
	h.model.UnmapNested(f << addr.PageShift4K)
	h.model.EscapedVMM[f] = true
	h.filtersClean = false
	return nil
}

// CheckStats verifies the end-of-run counter identities every MMU must
// satisfy: each access is exactly one of L1 hit / L1 miss, and each L1
// miss resolves as exactly one of 0D, L2 hit, or page walk.
func (h *Harness) CheckStats() error {
	for i, m := range h.mmus {
		st := m.Stats()
		if st.Accesses != st.L1Hits+st.L1Misses {
			return fmt.Errorf("mmu[%d]: %d accesses != %d L1 hits + %d L1 misses",
				i, st.Accesses, st.L1Hits, st.L1Misses)
		}
		if st.L1Misses != st.ZeroDWalks+st.L2Hits+st.Walks {
			return fmt.Errorf("mmu[%d]: %d L1 misses != %d 0D + %d L2 hits + %d walks",
				i, st.L1Misses, st.ZeroDWalks, st.L2Hits, st.Walks)
		}
		if st.EscapeTaken > st.EscapeProbes {
			return fmt.Errorf("mmu[%d]: escape taken %d > probes %d", i, st.EscapeTaken, st.EscapeProbes)
		}
		if st.GuestFaults+st.NestedFaults > st.Walks {
			return fmt.Errorf("mmu[%d]: more faults than walks", i)
		}
	}
	return nil
}
