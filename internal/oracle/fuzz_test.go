package oracle

import "testing"

// FuzzTranslationDiff is the main differential fuzz target: the input
// bytes are decoded into a workload of accesses and state mutations
// (paging churn, segment resize, mode switches, bad-page escapes,
// ballooning, migration, TLB flushes) applied simultaneously to the
// production mmu/tlb/ptecache/segment/escape/vmm stack — under two
// cache geometries — and to the flat reference model. The flag byte's
// nested-size bits pick the VM's backing granularity (4K/2M/1G), so
// all three 2D-walk depths are fuzzed. Any translation mismatch,
// unexpected fault, cost-model violation in the strict configuration,
// statistics-identity breach, or (flag bit 0) mode monotonicity
// violation crashes the target.
//
// Run a bounded smoke with
//
//	go test -fuzz=FuzzTranslationDiff -fuzztime=30s -fuzzminimizetime=10x ./internal/oracle
//
// or an open-ended campaign by omitting -fuzztime. The minimize budget
// matters: one exec costs milliseconds (a full NewHarness plus two MMU
// stacks per access), so the default 60-second minimization of every
// new interesting input would dominate a short run.
func FuzzTranslationDiff(f *testing.F) {
	for _, seed := range Seeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Bound per-input work: longer streams only repeat states, and
		// minimization cost scales with input length.
		if len(data) > 1<<12 {
			return
		}
		h, err := HarnessForInput(data)
		if err != nil {
			t.Fatalf("building harness: %v", err)
		}
		if err := h.Run(data); err != nil {
			t.Fatal(err)
		}
	})
}
