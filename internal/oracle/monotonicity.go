// The paper's dimensional ordering as an executable invariant: on the
// same access trace over the same memory layout, Dual Direct (0D) never
// references more page-table memory than VMM Direct (1D), which never
// references more than Base Virtualized (2D). With the strict
// configuration (no paging-structure caches, no nested TLB) this holds
// pointwise per access, because the three pipelines keep identical L1
// contents and the L2's LRU sets satisfy the filtered-stream inclusion
// property. The checker also asserts the stronger promise behind the
// whole design: switching modes changes cost, never addresses.

package oracle

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/mmu"
	"vdirect/internal/pagetable"
	"vdirect/internal/physmem"
	"vdirect/internal/segment"
)

const (
	monoGuestSize = 16 << 20
	monoHostSize  = 32 << 20
	// primMonoGPA is the fixed gPA backing of the primary region in the
	// monotonicity stacks; other touched pages are assigned sequential
	// gPAs from seqMonoGPA.
	primMonoGPA = 0x10_0000
	seqMonoGPA  = 0x20_0000
)

var monoModes = [3]string{"base-virtualized", "vmm-direct", "dual-direct"}

// CheckModeMonotonicity replays vas through three fresh single-mode
// stacks — Base Virtualized, VMM Direct, Dual Direct — built over an
// identical physical layout, and asserts per access that the final
// physical address is mode-independent and that page-table references
// obey dual ≤ vmm ≤ base. Pages inside the harness primary region are
// segment-backed in Dual Direct and identically page-mapped in the
// other two modes; everything else is paged everywhere.
func CheckModeMonotonicity(vas []uint64) error {
	gpaOf := make(map[uint64]uint64)
	var pages []uint64
	seq := uint64(seqMonoGPA)
	for _, va := range vas {
		if va >= 1<<48 {
			return fmt.Errorf("oracle: va %#x beyond canonical range", va)
		}
		p := addr.PageBase(va, addr.Page4K)
		if _, ok := gpaOf[p]; ok {
			continue
		}
		if p >= PrimBase && p < PrimBase+primPages<<addr.PageShift4K {
			gpaOf[p] = primMonoGPA + (p - PrimBase)
		} else {
			gpaOf[p] = seq
			seq += addr.PageSize4K
		}
		pages = append(pages, p)
	}
	if seq > monoGuestSize {
		return fmt.Errorf("oracle: %d distinct pages exceed the monotonicity stack's memory", len(pages))
	}

	var stacks [3]*mmu.MMU
	for i := range stacks {
		m, err := buildMonoStack(i, pages, gpaOf)
		if err != nil {
			return fmt.Errorf("oracle: building %s stack: %w", monoModes[i], err)
		}
		stacks[i] = m
	}

	for _, va := range vas {
		var hpas, refs [3]uint64
		for i, m := range stacks {
			r0 := m.Stats().WalkMemRefs
			res, fault := m.Translate(va)
			if fault != nil {
				return fmt.Errorf("oracle: %s: fault kind %d at %#x for va %#x",
					monoModes[i], fault.Kind, fault.Addr, va)
			}
			hpas[i], refs[i] = res.HPA, m.Stats().WalkMemRefs-r0
		}
		if hpas[0] != hpas[1] || hpas[1] != hpas[2] {
			return fmt.Errorf("oracle: va %#x: mode changes the address: base %#x, vmm-direct %#x, dual %#x",
				va, hpas[0], hpas[1], hpas[2])
		}
		if refs[2] > refs[1] || refs[1] > refs[0] {
			return fmt.Errorf("oracle: va %#x: refs not monotone: base %d, vmm-direct %d, dual %d",
				va, refs[0], refs[1], refs[2])
		}
	}
	return nil
}

// buildMonoStack assembles one single-mode strict stack: mode 0 is Base
// Virtualized, 1 is VMM Direct, 2 is Dual Direct.
func buildMonoStack(mode int, pages []uint64, gpaOf map[uint64]uint64) (*mmu.MMU, error) {
	guestMem := physmem.New(physmem.Config{Name: "mono-guest", Size: monoGuestSize})
	// Keep page-table node frames clear of the fixed leaf assignments.
	if err := guestMem.Reserve(addr.Range{Start: primMonoGPA, Size: monoGuestSize - primMonoGPA}); err != nil {
		return nil, err
	}
	hostMem := physmem.New(physmem.Config{Name: "mono-host", Size: monoHostSize})
	firstFrame, err := hostMem.AllocContiguous(monoGuestSize>>addr.PageShift4K, 1)
	if err != nil {
		return nil, err
	}
	hostBase := physmem.FrameToAddr(firstFrame)

	npt, err := pagetable.New(hostMem)
	if err != nil {
		return nil, err
	}
	for gpa := uint64(0); gpa < monoGuestSize; gpa += addr.PageSize4K {
		if err := npt.Map(gpa, hostBase+gpa, addr.Page4K); err != nil {
			return nil, err
		}
	}
	gpt, err := pagetable.New(guestMem)
	if err != nil {
		return nil, err
	}
	dual := mode == 2
	for _, p := range pages {
		if dual && p >= PrimBase && p < PrimBase+primPages<<addr.PageShift4K {
			continue // segment-backed in Dual Direct
		}
		if err := gpt.Map(p, gpaOf[p], addr.Page4K); err != nil {
			return nil, err
		}
	}

	m := mmu.New(strictConfig())
	m.SetGuestPageTable(gpt)
	m.SetNestedPageTable(npt)
	if mode >= 1 {
		m.SetVMMSegment(segment.NewRegisters(0, hostBase, monoGuestSize))
	}
	if dual {
		m.SetGuestSegment(segment.NewRegisters(PrimBase, primMonoGPA, primPages<<addr.PageShift4K))
	}
	return m, nil
}
