// Structured seed inputs for the differential fuzz harness. These are
// shared between the fuzz target (as f.Add seeds), the deterministic
// regression tests (every seed must pass in plain `go test`), and the
// checked-in corpus under testdata/fuzz. Together they cover every
// opcode and every mode transition, so a translation bug anywhere in
// the stack is caught by the seed corpus alone, before any fuzzing.

package oracle

// Op stream encoding (see Harness.step): byte 0 is a flag byte (bit 0
// appends the mode-monotonicity replay), then op bytes dispatched
// mod 13: 0-5 access(b1,b2), 6 map(b1,b2), 7 unmap(b1,b2), 8 resize(b),
// 9 toggle VMM segment, 10 toggle virtualization, 11 escape guest
// page(b), 12 sub-op(b): escape VMM page / balloon / flush.
const (
	opAccess      = 0
	opMap         = 6
	opUnmap       = 7
	opResize      = 8
	opToggleVMM   = 9
	opToggleVirt  = 10
	opEscGuest    = 11
	opSub         = 12
	subEscVMM     = 0
	subBalloon    = 1
	subFlush      = 2
	flagMonotone  = 1
	flagPlainOnly = 0
)

// Seeds returns the structured seed corpus.
func Seeds() [][]byte {
	return [][]byte{
		seedAccessSweep(),
		seedPagingChurn(),
		seedModeChurn(),
		seedEscapeStorm(),
		seedHugePages(),
	}
}

// seedAccessSweep touches all three regions in Dual Direct steady
// state and replays the trace through the monotonicity checker.
func seedAccessSweep() []byte {
	b := []byte{flagMonotone}
	for i := 0; i < 96; i++ {
		b = append(b, opAccess, byte(i), byte(i*7))
	}
	return b
}

// seedPagingChurn maps, touches, unmaps and resizes, interleaved with
// primary-region accesses that demand-page when the segment shrinks.
func seedPagingChurn() []byte {
	b := []byte{flagPlainOnly}
	for i := 0; i < 24; i++ {
		b = append(b,
			opMap, byte(i), byte(i*3),
			opAccess, 2, byte(i*5),
			opResize, byte(i*11),
			opAccess, 0, byte(i*13),
			opUnmap, byte(i), byte(i*3),
			opSub, subFlush,
		)
	}
	return b
}

// seedModeChurn walks the machine through every register combination:
// Dual Direct → Guest Direct → Direct Segment (native) → Base
// Virtualized → VMM Direct and back, touching memory at each stop.
func seedModeChurn() []byte {
	b := []byte{flagPlainOnly}
	touch := func(k int) {
		for i := 0; i < 12; i++ {
			b = append(b, opAccess, byte(i), byte(i*9+k))
		}
	}
	touch(0)
	b = append(b, opToggleVMM) // Guest Direct
	touch(1)
	b = append(b, opToggleVirt) // native Direct Segment
	touch(2)
	b = append(b, opResize, 0) // native paging
	touch(3)
	b = append(b, opToggleVirt) // Base Virtualized
	touch(4)
	b = append(b, opToggleVMM) // VMM Direct
	touch(5)
	b = append(b, opResize, 255) // back toward Dual Direct
	touch(6)
	return b
}

// seedEscapeStorm dirties both escape filters (bad guest pages, bad
// host pages, ballooning) and keeps touching the affected regions.
func seedEscapeStorm() []byte {
	b := []byte{flagPlainOnly}
	for i := 0; i < 16; i++ {
		b = append(b,
			opEscGuest, byte(i*17),
			opAccess, 0, byte(i*17),
			opSub, subEscVMM, byte(i), byte(i*29),
			opAccess, 1, byte(i*31),
			opSub, subBalloon,
			opAccess, 2, byte(i*37),
		)
	}
	return b
}

// seedHugePages maps and unmaps the 2M slots around accesses, in both
// virtualized and native translation.
func seedHugePages() []byte {
	b := []byte{flagMonotone}
	for i := 0; i < 8; i++ {
		b = append(b,
			opMap, 0x80, byte(i),
			opAccess, 3, byte(i*41),
			opAccess, 7, byte(i*43),
			opToggleVirt,
			opAccess, 3, byte(i*47),
			opToggleVirt,
			opUnmap, 0x80, byte(i),
		)
	}
	return b
}
