// Structured seed inputs for the differential fuzz harness. These are
// shared between the fuzz target (as f.Add seeds), the deterministic
// regression tests (every seed must pass in plain `go test`), and the
// checked-in corpus under testdata/fuzz. Together they cover every
// opcode and every mode transition, so a translation bug anywhere in
// the stack is caught by the seed corpus alone, before any fuzzing.

package oracle

// Op stream encoding (see Harness.step): byte 0 is a flag byte — bit 0
// appends the mode-monotonicity replay, bits 1-2 select the nested
// page size (0 → 4K, 1 → 2M, 2 → 1G), bit 3 starts the stack with
// flattened nested walks — then op bytes dispatched through a weighted
// 256-entry table. Each op* constant below is the first byte of its
// range; the range widths bias the fuzzer toward accesses (120/256)
// and mode-changing mutations (resize and the two toggles get 24/256
// each) over plain paging churn (16/256 each): access(b1,b2),
// map(b1,b2), unmap(b1,b2), resize(b), toggle VMM segment, toggle
// virtualization, escape guest page(b), sub-op(b): escape VMM page /
// balloon / flush / context switch / ASID flush / flat-walk toggle /
// single-page invalidate(b1,b2).
const (
	opAccess     = 0   // 0-119
	opMap        = 120 // 120-135
	opUnmap      = 136 // 136-151
	opResize     = 152 // 152-175
	opToggleVMM  = 176 // 176-199
	opToggleVirt = 200 // 200-223
	opEscGuest   = 224 // 224-239
	opSub        = 240 // 240-255

	subEscVMM     = 0
	subBalloon    = 1
	subFlush      = 2
	subSwitch     = 3 // context switch; operand bit 0 = ASID-tagged
	subFlushASID  = 4 // INVPCID of operand%2
	subToggleFlat = 5 // flip flattened nested walks
	subInvlPage   = 6 // INVLPG of a decoded VA (b1,b2)

	flagPlainOnly = 0
	flagMonotone  = 1
	flagNested2M  = 2
	flagNested1G  = 4
	flagFlat      = 8
)

// namedSeed pairs a seed stream with its testdata/fuzz corpus file
// name; TestSeedCorpusInSync keeps the two byte-identical.
type namedSeed struct {
	name string
	data []byte
}

func namedSeeds() []namedSeed {
	return []namedSeed{
		{"seed-access-sweep", seedAccessSweep()},
		{"seed-paging-churn", seedPagingChurn()},
		{"seed-mode-churn", seedModeChurn()},
		{"seed-escape-storm", seedEscapeStorm()},
		{"seed-huge-pages", seedHugePages()},
		{"seed-nested-2m", seedNestedHuge(flagMonotone | flagNested2M)},
		{"seed-nested-1g", seedNestedHuge(flagNested1G)},
		{"seed-multi-process", seedMultiProcess()},
		{"seed-memo-churn", seedMemoChurn()},
		{"seed-flat-nested", seedFlatNested()},
	}
}

// Seeds returns the structured seed corpus.
func Seeds() [][]byte {
	ns := namedSeeds()
	out := make([][]byte, len(ns))
	for i, s := range ns {
		out[i] = s.data
	}
	return out
}

// seedAccessSweep touches all three regions in Dual Direct steady
// state and replays the trace through the monotonicity checker.
func seedAccessSweep() []byte {
	b := []byte{flagMonotone}
	for i := 0; i < 96; i++ {
		b = append(b, opAccess, byte(i), byte(i*7))
	}
	return b
}

// seedPagingChurn maps, touches, unmaps and resizes, interleaved with
// primary-region accesses that demand-page when the segment shrinks.
func seedPagingChurn() []byte {
	b := []byte{flagPlainOnly}
	for i := 0; i < 24; i++ {
		b = append(b,
			opMap, byte(i), byte(i*3),
			opAccess, 2, byte(i*5),
			opResize, byte(i*11),
			opAccess, 0, byte(i*13),
			opUnmap, byte(i), byte(i*3),
			opSub, subFlush,
		)
	}
	return b
}

// seedModeChurn walks the machine through every register combination:
// Dual Direct → Guest Direct → Direct Segment (native) → Base
// Virtualized → VMM Direct and back, touching memory at each stop.
func seedModeChurn() []byte {
	b := []byte{flagPlainOnly}
	touch := func(k int) {
		for i := 0; i < 12; i++ {
			b = append(b, opAccess, byte(i), byte(i*9+k))
		}
	}
	touch(0)
	b = append(b, opToggleVMM) // Guest Direct
	touch(1)
	b = append(b, opToggleVirt) // native Direct Segment
	touch(2)
	b = append(b, opResize, 0) // native paging
	touch(3)
	b = append(b, opToggleVirt) // Base Virtualized
	touch(4)
	b = append(b, opToggleVMM) // VMM Direct
	touch(5)
	b = append(b, opResize, 255) // back toward Dual Direct
	touch(6)
	return b
}

// seedEscapeStorm dirties both escape filters (bad guest pages, bad
// host pages, ballooning) and keeps touching the affected regions.
func seedEscapeStorm() []byte {
	b := []byte{flagPlainOnly}
	for i := 0; i < 16; i++ {
		b = append(b,
			opEscGuest, byte(i*17),
			opAccess, 0, byte(i*17),
			opSub, subEscVMM, byte(i), byte(i*29),
			opAccess, 1, byte(i*31),
			opSub, subBalloon,
			opAccess, 2, byte(i*37),
		)
	}
	return b
}

// seedNestedHuge exercises a harness backed by 2M or 1G nested pages
// (the flag byte picks which): paging churn, whole-leaf migration and
// VMM-segment toggles under a 3- or 2-level nested dimension, so the
// 19-ref and 14-ref 2D-walk rows of the mode table run through the
// same differential checks as the 24-ref default.
func seedNestedHuge(flag byte) []byte {
	b := []byte{flag}
	for i := 0; i < 12; i++ {
		b = append(b,
			opAccess, byte(i), byte(i*7),
			opMap, byte(i), byte(i*3),
			opAccess, 2, byte(i*5),
			opSub, subEscVMM, byte(i), byte(i*29),
			opAccess, 0, byte(i*13),
			opToggleVMM,
			opAccess, 1, byte(i*11),
			opToggleVMM,
			opUnmap, byte(i), byte(i*3),
		)
	}
	return b
}

// seedMultiProcess time-slices both guest processes, alternating tagged
// (ASID retag) and untagged (full flush) context switches. Each slice
// demand-pages, touches all three regions, resizes its own segment and
// flushes one ASID, so per-address-space TLB tagging, retagging and
// INVPCID all run under the differential check — a stale cross-ASID
// entry anywhere in the hierarchy translates through the wrong
// process's mappings and trips the oracle comparison.
func seedMultiProcess() []byte {
	b := []byte{flagPlainOnly}
	for i := 0; i < 16; i++ {
		b = append(b,
			opAccess, 2, byte(i*13), // paged region: per-process demand paging
			opAccess, 0, byte(i*7), // primary region: per-process segment
			opMap, byte(i), byte(i*5),
			opSub, subSwitch, byte(i), // tagged on odd i, flush on even
			opAccess, 2, byte(i*13), // same selectors, other address space
			opAccess, 1, byte(i*11),
			opResize, byte(i*23),
			opSub, subFlushASID, byte(i),
			opAccess, 3, byte(i*17),
			opSub, subSwitch, byte(i+1),
		)
	}
	return b
}

// seedFlatNested runs the flattened-nested-walk scheme through the
// differential checks. Built flat (flag bit 3), it pages, resizes the
// guest segment and toggles the VMM segment so flat walks run covered,
// uncovered and on 2M guest leaves; flips virtualization so the flag
// goes latent and returns; and flips the flag itself mid-stream so the
// base and flat walkers alternate over identical state. The whole trace
// also replays through the monotonicity checker.
func seedFlatNested() []byte {
	b := []byte{flagMonotone | flagFlat}
	for i := 0; i < 16; i++ {
		b = append(b,
			opAccess, byte(i), byte(i*7),
			opMap, byte(i), byte(i*3),
			opAccess, 2, byte(i*5),
			opResize, byte(i*11),
			opAccess, 0, byte(i*13),
			opToggleVMM,
			opAccess, 1, byte(i*11),
			opToggleVMM,
			opMap, 0x80, byte(i),
			opAccess, 3, byte(i*41),
			opToggleVirt,
			opAccess, 0, byte(i*19),
			opToggleVirt,
			opSub, subToggleFlat,
			opAccess, 2, byte(i*17),
			opSub, subToggleFlat,
		)
	}
	return b
}

// seedMemoChurn drives the fused-eligible configuration (unsegmented
// nested paging) through every miss-memo invalidation source while
// re-touching a small page set hot enough to keep recorded entries
// live: full flushes, INVPCID, tagged and untagged context switches,
// single-page INVLPG of the hot pages, segment re-enable/disable and
// flat-walk flips. The harness runs with SetMemoCheck on, so a memo
// entry surviving any of these operations stale is a panic, not a
// silent wrong record.
func seedMemoChurn() []byte {
	b := []byte{flagPlainOnly}
	// Drop both segments: VMM toggle off, guest segment resized to zero
	// pages. From here the pressure stack's misses take the fused path
	// and the memo records/verifies each one.
	b = append(b, opToggleVMM, opResize, 0)
	touch := func(k int) {
		for i := 0; i < 6; i++ {
			b = append(b, opAccess, 2, byte(16+(k+i)%12)) // hot paged-region set
		}
	}
	touch(0)
	for i := 0; i < 10; i++ {
		b = append(b,
			opMap, byte(i), byte(16+i),
		)
		touch(i)
		b = append(b, opSub, subInvlPage, 2, byte(16+i)) // INVLPG a hot page
		touch(i + 1)
		b = append(b, opSub, subFlush)
		touch(i + 2)
		b = append(b, opSub, subFlushASID, byte(i))
		touch(i + 3)
		b = append(b, opSub, subSwitch, byte(i)) // tagged on odd i
		b = append(b, opResize, 0)               // new process: drop its segment too
		touch(i + 4)
		b = append(b, opSub, subSwitch, byte(i+1))
		touch(i + 5)
		b = append(b,
			opResize, 64, // re-cover: gate off, memo cold
			opAccess, 0, byte(i*7),
			opResize, 0, // uncover: gate back on
		)
		touch(i + 6)
		b = append(b, opSub, subToggleFlat) // flat: gate off
		touch(i + 7)
		b = append(b, opSub, subToggleFlat) // back: gate on, epoch moved
		touch(i + 8)
	}
	return b
}

// seedHugePages maps and unmaps the 2M slots around accesses, in both
// virtualized and native translation.
func seedHugePages() []byte {
	b := []byte{flagMonotone}
	for i := 0; i < 8; i++ {
		b = append(b,
			opMap, 0x80, byte(i),
			opAccess, 3, byte(i*41),
			opAccess, 7, byte(i*43),
			opToggleVirt,
			opAccess, 3, byte(i*47),
			opToggleVirt,
			opUnmap, 0x80, byte(i),
		)
	}
	return b
}
