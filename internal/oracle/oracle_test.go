package oracle

import (
	"reflect"
	"testing"

	"vdirect/internal/addr"
)

// TestExpectWalkModeTable pins the closed form to the paper's mode
// table: 24 references for a Base Virtualized 2D walk, 4 for the 1D
// modes with their Δ_VD=5 / Δ_GD=1 check counts, and the native walk
// depths per page size.
func TestExpectWalkModeTable(t *testing.T) {
	walked := Prediction{GuestSize: addr.Page4K}
	covered := Prediction{GuestSize: addr.Page4K, GuestCovered: true}
	cases := []struct {
		name                   string
		p                      Prediction
		guestSeg, vmmSeg, virt bool
		wantRefs, wantChecks   uint64
	}{
		{"base-virtualized-2D", walked, false, false, true, 24, 0},
		{"vmm-direct-1D", walked, false, true, true, 4, 5},
		{"guest-direct-1D", covered, true, false, true, 4, 1},
		{"guest-direct-uncovered", walked, true, false, true, 24, 1},
		{"native-4K", walked, false, false, false, 4, 0},
		{"native-2M", Prediction{GuestSize: addr.Page2M}, false, false, false, 3, 0},
		{"base-2M-guest", Prediction{GuestSize: addr.Page2M}, false, false, true, 19, 0},
		{"vmm-direct-2M-guest", Prediction{GuestSize: addr.Page2M}, false, true, true, 3, 4},
	}
	for _, c := range cases {
		wc := ExpectWalk(c.p, c.guestSeg, c.vmmSeg, c.virt, 4)
		if wc.Refs != c.wantRefs || wc.Checks != c.wantChecks {
			t.Errorf("%s: got refs %d checks %d, want %d/%d", c.name, wc.Refs, wc.Checks, c.wantRefs, c.wantChecks)
		}
		if got := wc.Cycles(10, 1); got != c.wantRefs*10+c.wantChecks {
			t.Errorf("%s: cycles %d", c.name, got)
		}
	}
}

// TestModelTranslate checks the reference model's segment-vs-paging
// priority, escape semantics and fault reporting in isolation.
func TestModelTranslate(t *testing.T) {
	m := NewModel()
	m.Virtualized = true
	m.GuestSeg = Segment{Base: 0x1000, Limit: 0x3000, Offset: 0x10_0000 - 0x1000}
	m.VMMSeg = Segment{Base: 0, Limit: 1 << 24, Offset: 1 << 30}

	// Covered va: segment in both dimensions.
	p := m.Translate(0x1234)
	if p.Fault != FaultNone || p.HPA != 0x10_0234+1<<30 || !p.GuestCovered || !p.VMMCovered {
		t.Fatalf("covered: %+v", p)
	}
	// Uncovered, unmapped: guest fault at the va.
	if p = m.Translate(0x5000); p.Fault != FaultGuest || p.Addr != 0x5000 {
		t.Fatalf("unmapped: %+v", p)
	}
	// Uncovered but mapped: paging path, then VMM segment.
	m.MapGuest(0x5000, 0x20_0000, addr.Page4K)
	if p = m.Translate(0x5678); p.Fault != FaultNone || p.HPA != 0x20_0678+1<<30 {
		t.Fatalf("mapped: %+v", p)
	}
	// Escaped guest page inside the covered range takes paging (and
	// faults when there is no mapping).
	m.EscapedGuest[0x1000>>addr.PageShift4K] = true
	if p = m.Translate(0x1010); p.Fault != FaultGuest || p.Addr != 0x1010 {
		t.Fatalf("escaped guest: %+v", p)
	}
	// Escaped VMM page takes the nested map.
	m.EscapedVMM[0x20_0000>>addr.PageShift4K] = true
	m.MapNested(0x20_0000, 0x7000_0000, addr.Page4K)
	if p = m.Translate(0x5678); p.Fault != FaultNone || p.HPA != 0x7000_0678 || p.VMMCovered {
		t.Fatalf("escaped vmm: %+v", p)
	}
	// Escaped VMM page with no nested mapping: nested fault at the gPA.
	m.UnmapNested(0x20_0000)
	if p = m.Translate(0x5678); p.Fault != FaultNested || p.Addr != 0x20_0678 {
		t.Fatalf("ballooned: %+v", p)
	}
	// Native translation stops at the guest dimension.
	m.Virtualized = false
	if p = m.Translate(0x1234); p.Fault != FaultGuest {
		t.Fatalf("native escaped: %+v", p)
	}
	if p = m.Translate(0x2234); p.Fault != FaultNone || p.HPA != 0x10_1234 {
		t.Fatalf("native covered: %+v", p)
	}
	// 2M mappings expand to every interior 4K page.
	m.MapGuest(0x20_0000, 0x40_0000, addr.Page2M)
	if p = m.Translate(0x2F_F000); p.Fault != FaultNone || p.HPA != 0x4F_F000 || p.GuestSize != addr.Page2M {
		t.Fatalf("2M interior: %+v", p)
	}
}

// TestLevels pins the walk depth per leaf size.
func TestLevels(t *testing.T) {
	for s, want := range map[addr.PageSize]uint64{addr.Page4K: 4, addr.Page2M: 3, addr.Page1G: 2} {
		if got := Levels(s); got != want {
			t.Errorf("Levels(%v) = %d, want %d", s, got, want)
		}
	}
}

// TestHarnessSeeds runs every structured seed through the full
// differential harness: any translation or cost divergence between the
// production stack and the oracle fails here, in plain `go test`,
// before any fuzzing.
func TestHarnessSeeds(t *testing.T) {
	for i, seed := range Seeds() {
		h, err := HarnessForInput(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if err := h.Run(seed); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if len(h.Accesses()) == 0 {
			t.Fatalf("seed %d performed no accesses", i)
		}
	}
}

// TestHarnessDeterministic replays one op stream through two fresh
// harnesses and requires identical end-to-end MMU counters: the whole
// differential stack must be a pure function of the input bytes.
func TestHarnessDeterministic(t *testing.T) {
	var snaps [2][2]interface{}
	for round := 0; round < 2; round++ {
		h, err := NewHarness()
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range Seeds() {
			if err := h.Run(seed[1:]); err != nil { // strip flag bytes, one long run
				t.Fatal(err)
			}
		}
		st := h.MMUStats()
		snaps[round][0], snaps[round][1] = st[0], st[1]
	}
	if !reflect.DeepEqual(snaps[0], snaps[1]) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", snaps[0], snaps[1])
	}
}

// TestCheckModeMonotonicity exercises the three-stack replay on a
// fixed trace with locality, repeats and all three regions.
func TestCheckModeMonotonicity(t *testing.T) {
	var vas []uint64
	for i := 0; i < 200; i++ {
		vas = append(vas,
			PrimBase+uint64(i%97)<<addr.PageShift4K+uint64(i*13)%4096,
			PagedBase+uint64(i%31)<<addr.PageShift4K,
			HugeBase+uint64(i%candidatePages)<<addr.PageShift4K,
		)
	}
	if err := CheckModeMonotonicity(vas); err != nil {
		t.Fatal(err)
	}
}

const candidatePages = 64

// TestCheckModeMonotonicityRejectsNonCanonical guards the checker's
// own input validation.
func TestCheckModeMonotonicityRejectsNonCanonical(t *testing.T) {
	if err := CheckModeMonotonicity([]uint64{1 << 50}); err == nil {
		t.Fatal("expected an error for a non-canonical address")
	}
}
