package oracle

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateCorpus = flag.Bool("update-corpus", false,
	"rewrite the checked-in testdata/fuzz seed corpus from Seeds()")

// TestSeedCorpusInSync pins the checked-in fuzz corpus to the seed
// builders: each seed-* file under testdata/fuzz/FuzzTranslationDiff
// must hold exactly the bytes the corresponding builder produces, in
// the standard `go test fuzz v1` encoding. When the op-stream encoding
// changes, regenerate with
//
//	go test ./internal/oracle -run TestSeedCorpusInSync -update-corpus
func TestSeedCorpusInSync(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzTranslationDiff")
	for _, s := range namedSeeds() {
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s.data)
		path := filepath.Join(dir, s.name)
		if *updateCorpus {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update-corpus)", s.name, err)
		}
		if string(got) != want {
			t.Errorf("%s: corpus file out of sync with its seed builder (regenerate with -update-corpus)", s.name)
		}
	}
}
