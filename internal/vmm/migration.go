// Live migration: the service Table II cites as the reason Guest Direct
// keeps nested page tables in the VMM ("using nested page tables in the
// VMM to facilitate services like live migration"). A VM whose memory
// is mapped by a VMM segment cannot be live-migrated page-wise; one
// using nested paging can, via iterative pre-copy.

package vmm

import (
	"errors"
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/pagetable"
	"vdirect/internal/physmem"
)

// ErrSegmentPinned is returned when live migration is attempted while a
// VMM segment maps the guest (Table II: VMM swapping/migration limited).
var ErrSegmentPinned = errors.New("vmm: VMM segment active; disable it before live migration")

// ErrSharedBacking is returned when live migration is attempted while
// the VM participates in content-based page sharing: releasing the
// source backing would free copy-on-write frames other VMs still map.
// Real VMMs break sharing before migrating; this model requires the
// caller to do the same.
var ErrSharedBacking = errors.New("vmm: VM has copy-on-write shared pages; break sharing before live migration")

// MigrationReport summarizes one live migration.
type MigrationReport struct {
	// PassPages[i] is the number of pages copied in pre-copy pass i.
	PassPages []uint64
	// DowntimePages were copied during the final stop-and-copy.
	DowntimePages uint64
	// TotalCopied counts all page copies, including recopies.
	TotalCopied uint64
}

// Passes returns the number of pre-copy iterations performed.
func (r MigrationReport) Passes() int { return len(r.PassPages) }

// MarkDirty records a guest store to gpa in the nested page table's
// dirty bits, feeding live-migration dirty tracking.
func (vm *VM) MarkDirty(gpa uint64) error {
	return vm.NPT.MarkDirty(gpa)
}

// HarvestDirtyGPAs scans and clears the nested table's dirty bits,
// returning the dirtied guest physical pages.
func (vm *VM) HarvestDirtyGPAs() []uint64 {
	var out []uint64
	vm.NPT.HarvestDirty(func(gpa uint64, _ addr.PageSize) {
		out = append(out, gpa)
	})
	return out
}

// Migrate live-migrates vm to dst using iterative pre-copy: pass 0
// copies every mapped page; each later pass copies the pages dirtied
// while the previous pass ran, reported by the dirtied callback (pass
// index → dirtied gPAs). A nil callback uses the nested page table's
// hardware dirty bits (MarkDirty/HarvestDirtyGPAs). Pre-copy stops when
// the dirty set is at most stopThreshold pages (or after maxPasses),
// and the remainder is copied with the VM paused. The migrated VM is
// returned registered on dst.
//
// Only 4K-nested VMs without an active VMM segment can migrate: a VMM
// segment pins the whole guest to one host range (Table II).
func (h *Host) Migrate(vm *VM, dst *Host, dirtied func(pass int) []uint64,
	stopThreshold uint64, maxPasses int) (*VM, MigrationReport, error) {
	var rep MigrationReport
	if vm.VMMSegment().Enabled() {
		return nil, rep, ErrSegmentPinned
	}
	if vm.cfg.NestedPageSize != addr.Page4K {
		return nil, rep, ErrBadNestedSize
	}
	if len(vm.sharedFrames) > 0 {
		return nil, rep, ErrSharedBacking
	}
	if maxPasses <= 0 {
		maxPasses = 8
	}
	if dirtied == nil {
		dirtied = func(int) []uint64 { return vm.HarvestDirtyGPAs() }
	}

	// Build the destination VM shell: same guest physical layout, fresh
	// nested page table on dst.
	newVM := &VM{
		Name:         vm.Name,
		host:         dst,
		GuestMem:     vm.GuestMem, // guest physical state moves wholesale
		cfg:          vm.cfg,
		content:      vm.content,
		sharedFrames: make(map[uint64]bool),
	}
	npt, err := pagetable.New(dst.Mem)
	if err != nil {
		return nil, rep, err
	}
	newVM.NPT = npt
	newVM.buildSlots()
	dst.acquireOwnerID(newVM)

	// abort releases everything the half-built destination VM holds —
	// copied frames, owner registrations, nested-table pages — so a
	// failed migration (destination OOM mid-copy is routine on a dense
	// host) leaks nothing and leaves both hosts' accounting exact.
	abort := func() {
		newVM.releaseAll()
		dst.releaseOwnerID(newVM)
	}

	copyPage := func(gpa uint64) error {
		if _, _, ok := vm.NPT.Translate(gpa); !ok {
			return nil // unbacked (ballooned/unplugged): nothing to copy
		}
		if _, _, ok := newVM.NPT.Translate(gpa); ok {
			rep.TotalCopied++ // recopy of a dirtied page, in place
			return nil
		}
		f, err := dst.Mem.AllocFrame()
		if err != nil {
			return fmt.Errorf("vmm: migration destination frame: %w", err)
		}
		hpa := physmem.FrameToAddr(f)
		if err := newVM.NPT.Map(gpa, hpa, addr.Page4K); err != nil {
			return err
		}
		newVM.registerBacking(gpa, hpa, addr.PageSize4K)
		rep.TotalCopied++
		return nil
	}

	// Pass 0: everything currently mapped.
	var first []uint64
	vm.NPT.VisitLeaves(func(gpa, hpa uint64, s addr.PageSize) bool {
		first = append(first, gpa)
		return true
	})
	work := first
	for pass := 0; ; pass++ {
		for _, gpa := range work {
			if err := copyPage(gpa); err != nil {
				abort()
				return nil, rep, err
			}
		}
		rep.PassPages = append(rep.PassPages, uint64(len(work)))
		var next []uint64
		if dirtied != nil {
			next = dirtied(pass)
		}
		if uint64(len(next)) <= stopThreshold || pass+1 >= maxPasses {
			// Stop-and-copy: the VM pauses while the final dirty set
			// transfers.
			for _, gpa := range next {
				if err := copyPage(gpa); err != nil {
					abort()
					return nil, rep, err
				}
			}
			rep.DowntimePages = uint64(len(next))
			break
		}
		work = next
	}

	// Release the source backing and hand the VM over.
	for _, gpa := range first {
		hpa, _, ok := vm.NPT.Translate(gpa)
		if !ok {
			continue
		}
		vm.unregisterBacking(hpa, addr.PageSize4K)
		if err := h.Mem.FreeFrame(physmem.AddrToFrame(hpa)); err != nil {
			abort()
			return nil, rep, err
		}
	}
	// The source nested table's pages would otherwise leak in the source
	// host's memory: the VM object is dropped but its table pages stay
	// allocated.
	if err := vm.NPT.Destroy(); err != nil {
		return nil, rep, err
	}
	dst.vms = append(dst.vms, newVM)
	h.removeVM(vm)
	if dst.cb.Migrated != nil {
		dst.cb.Migrated(newVM, rep)
	}
	return newVM, rep, nil
}

func (h *Host) removeVM(vm *VM) {
	h.releaseOwnerID(vm)
	for i, v := range h.vms {
		if v == vm {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			return
		}
	}
}
