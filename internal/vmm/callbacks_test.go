// The host-layer seam: callback notifications, the frame-owner query,
// VM teardown, page retirement, and machine-level memory growth — the
// operations internal/host builds its accounting on.

package vmm

import (
	"errors"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/physmem"
)

// shareTwoVMs builds two VMs with one identical page each and runs a
// sharing pass, returning the host and both VMs (b's page now maps
// a's canonical frame copy-on-write).
func shareTwoVMs(t *testing.T) (*Host, *VM, *VM) {
	t.Helper()
	h := NewHost(64 << 20)
	a, err := h.CreateVM(VMConfig{Name: "a", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.CreateVM(VMConfig{Name: "b", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPageContent(1<<12, 0xFEED)
	b.SetPageContent(2<<12, 0xFEED)
	rep, err := h.ScanAndShare([]*VM{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SharedPages != 1 || rep.SavedFrames != 1 {
		t.Fatalf("sharing report = %+v, want 1 shared page saving 1 frame", rep)
	}
	return h, a, b
}

// TestCallbacksFireOnMemoryOps drives every backing-changing operation
// once and checks its callback fires with the right VM, on the
// operation's goroutine, after the VMM's own bookkeeping.
func TestCallbacksFireOnMemoryOps(t *testing.T) {
	h := NewHost(64 << 20)
	vm, err := h.CreateVM(VMConfig{Name: "vm", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	h.SetCallbacks(Callbacks{
		Ballooned: func(v *VM, gpa uint64) {
			if v != vm {
				t.Errorf("Ballooned fired for VM %q", v.cfg.Name)
			}
			// Bookkeeping first: the backing must already be gone.
			if _, _, ok := v.NPT.Translate(gpa); ok {
				t.Errorf("Ballooned fired with gPA %#x still backed", gpa)
			}
			counts["balloon"]++
		},
		Hotplugged: func(v *VM, r addr.Range) {
			if r.Size == 0 {
				t.Error("Hotplugged fired with an empty range")
			}
			counts["hotplug"]++
		},
		Unplugged: func(v *VM, gpa uint64) { counts["unplug"]++ },
	})

	r, err := vm.HotplugAdd(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Balloon([]uint64{r.Start >> addr.PageShift4K}); err != nil {
		t.Fatal(err)
	}
	if err := vm.HotplugRemove(addr.Range{Start: r.Start + addr.PageSize4K, Size: addr.PageSize4K}); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"balloon": 1, "hotplug": 1, "unplug": 1}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s callback fired %d times, want %d", k, counts[k], n)
		}
	}
}

// TestCallbacksFireOnSharingOps checks the Shared and CoWBroken
// notifications: one per remapped duplicate (not the canonical copy),
// one per private-copy break.
func TestCallbacksFireOnSharingOps(t *testing.T) {
	h := NewHost(64 << 20)
	a, err := h.CreateVM(VMConfig{Name: "a", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.CreateVM(VMConfig{Name: "b", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	var shared, cow []uint64
	h.SetCallbacks(Callbacks{
		Shared:    func(v *VM, gpa uint64) { shared = append(shared, gpa) },
		CoWBroken: func(v *VM, gpa uint64) { cow = append(cow, gpa) },
	})
	a.SetPageContent(1<<12, 0xFEED)
	b.SetPageContent(2<<12, 0xFEED)
	if got := b.PageContent(2 << 12); got != 0xFEED {
		t.Fatalf("PageContent = %#x, want 0xFEED", got)
	}
	if _, err := h.ScanAndShare([]*VM{a, b}); err != nil {
		t.Fatal(err)
	}
	if len(shared) != 1 || shared[0] != 2<<12 {
		t.Fatalf("Shared fired for %#x, want exactly the duplicate gPA 0x2000", shared)
	}
	broke, err := b.WriteFault(2 << 12)
	if err != nil {
		t.Fatal(err)
	}
	if !broke || len(cow) != 1 || cow[0] != 2<<12 {
		t.Fatalf("CoWBroken: broke=%v fired for %#x, want the faulting gPA 0x2000", broke, cow)
	}
}

// TestOwnerVM checks the frame-owner query the host layer's accounting
// cross-check is built on: backed frames name their VM and gPA, free
// and out-of-range frames do not.
func TestOwnerVM(t *testing.T) {
	h := NewHost(16 << 20)
	vm, err := h.CreateVM(VMConfig{Name: "vm", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	hpa, _, ok := vm.NPT.Translate(addr.PageSize4K)
	if !ok {
		t.Fatal("gPA 0x1000 unbacked")
	}
	owner, gpa, ok := h.OwnerVM(physmem.AddrToFrame(hpa))
	if !ok || owner != vm || gpa != addr.PageSize4K {
		t.Fatalf("OwnerVM = (%v, %#x, %v), want (vm, 0x1000, true)", owner, gpa, ok)
	}
	if _, _, ok := h.OwnerVM(1 << 40); ok {
		t.Error("out-of-range frame reported an owner")
	}
	if err := vm.Balloon([]uint64{1}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := h.OwnerVM(physmem.AddrToFrame(hpa)); ok {
		t.Error("ballooned-out frame still reports an owner")
	}
}

// TestDestroyVM checks teardown frees every frame the VM held —
// backing and nested-table pages both — and that a VM entangled in
// copy-on-write sharing refuses to die.
func TestDestroyVM(t *testing.T) {
	h := NewHost(16 << 20)
	freeBefore := h.Mem.FreeFrames()
	vm, err := h.CreateVM(VMConfig{Name: "vm", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyVM(vm); err != nil {
		t.Fatal(err)
	}
	if got := h.Mem.FreeFrames(); got != freeBefore {
		t.Errorf("free frames after destroy = %d, want %d", got, freeBefore)
	}
	if len(h.VMs()) != 0 {
		t.Errorf("%d VMs registered after destroy", len(h.VMs()))
	}

	_, a, _ := shareTwoVMs(t)
	if err := a.host.DestroyVM(a); !errors.Is(err, ErrSharedBacking) {
		t.Errorf("destroying a sharing VM: err = %v, want ErrSharedBacking", err)
	}
}

// TestRetirePage checks hard-fault retirement: the page moves to a
// healthy replacement frame, unbacked pages are rejected, and shared
// frames must break sharing first.
func TestRetirePage(t *testing.T) {
	h := NewHost(16 << 20)
	vm, err := h.CreateVM(VMConfig{Name: "vm", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	oldHPA, _, _ := vm.NPT.Translate(0)
	newHPA, err := vm.RetirePage(0)
	if err != nil {
		t.Fatal(err)
	}
	if newHPA == oldHPA {
		t.Error("retirement kept the failing frame")
	}
	if hpa, _, ok := vm.NPT.Translate(0); !ok || hpa != newHPA {
		t.Errorf("gPA 0 maps %#x, want the replacement %#x", hpa, newHPA)
	}
	if owner, gpa, ok := h.OwnerVM(physmem.AddrToFrame(newHPA)); !ok || owner != vm || gpa != 0 {
		t.Error("replacement frame not registered to the VM")
	}

	if _, err := vm.RetirePage(uint64(4<<20) + addr.PageSize4K); err == nil {
		t.Error("retiring an unbacked gPA succeeded")
	}

	_, a, _ := shareTwoVMs(t)
	if _, err := a.RetirePage(1 << 12); err == nil {
		t.Error("retiring a shared frame succeeded")
	}
}

// TestGrowMem checks machine-level DIMM hotplug extends the
// frame-owner registry with the memory: frames in the grown range can
// back guests and report their owner.
func TestGrowMem(t *testing.T) {
	h := NewHost(8 << 20)
	vm, err := h.CreateVM(VMConfig{Name: "vm", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	oldFrames := h.Mem.Frames()
	r, err := h.GrowMem(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem.Online(r); err != nil {
		t.Fatal(err)
	}
	// Consume enough frames that the hotplug backing must reach the
	// grown range.
	if _, err := vm.HotplugAdd(6 << 20); err != nil {
		t.Fatal(err)
	}
	var sawGrown bool
	for f := oldFrames; f < h.Mem.Frames(); f++ {
		if owner, _, ok := h.OwnerVM(f); ok && owner == vm {
			sawGrown = true
			break
		}
	}
	if !sawGrown {
		t.Error("no grown frame backs the VM (owner registry not extended?)")
	}
}

// TestMigrateRejectsSharedBacking: live migration while the VM holds
// copy-on-write shared frames would free frames other VMs still map.
func TestMigrateRejectsSharedBacking(t *testing.T) {
	h, a, _ := shareTwoVMs(t)
	dst := NewHost(64 << 20)
	if _, _, err := h.Migrate(a, dst, nil, 0, 4); !errors.Is(err, ErrSharedBacking) {
		t.Fatalf("err = %v, want ErrSharedBacking", err)
	}
}

// TestMigrateAbortRestoresDestination starves the destination host so
// the pre-copy runs out of frames mid-stream: the migration must fail,
// release everything the half-built destination VM held, and leave the
// source VM untouched and runnable.
func TestMigrateAbortRestoresDestination(t *testing.T) {
	src := NewHost(64 << 20)
	dst := NewHost(8 << 20) // too small for a 16MB guest
	vm, err := src.CreateVM(VMConfig{Name: "vm", MemorySize: 16 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	var migrated int
	dst.SetCallbacks(Callbacks{Migrated: func(*VM, MigrationReport) { migrated++ }})
	dstFree := dst.Mem.FreeFrames()
	srcFree := src.Mem.FreeFrames()
	if _, _, err := src.Migrate(vm, dst, nil, 0, 4); err == nil {
		t.Fatal("migration onto a starved destination succeeded")
	}
	if migrated != 0 {
		t.Error("Migrated callback fired for an aborted migration")
	}
	if got := dst.Mem.FreeFrames(); got != dstFree {
		t.Errorf("destination free frames = %d, want %d (aborted copy leaked)", got, dstFree)
	}
	if got := src.Mem.FreeFrames(); got != srcFree {
		t.Errorf("source free frames = %d, want %d", got, srcFree)
	}
	if len(src.VMs()) != 1 || len(dst.VMs()) != 0 {
		t.Errorf("VM registries after abort: src=%d dst=%d, want 1/0", len(src.VMs()), len(dst.VMs()))
	}
	if _, _, ok := vm.NPT.Translate(0); !ok {
		t.Error("source VM lost its backing after the aborted migration")
	}
}

// TestMigrateFiresMigratedCallback: a successful migration notifies
// the destination host's layer with the registered VM.
func TestMigrateFiresMigratedCallback(t *testing.T) {
	src := NewHost(32 << 20)
	dst := NewHost(32 << 20)
	vm, err := src.CreateVM(VMConfig{Name: "vm", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	var got *VM
	dst.SetCallbacks(Callbacks{Migrated: func(v *VM, rep MigrationReport) { got = v }})
	moved, _, err := src.Migrate(vm, dst, nil, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != moved {
		t.Error("Migrated callback did not receive the destination VM")
	}
}

// TestCreateVMRollsBackOnHostOOM starves the host below the guest size
// for each backing strategy: creation must fail and leak nothing.
func TestCreateVMRollsBackOnHostOOM(t *testing.T) {
	cases := []struct {
		name string
		cfg  VMConfig
	}{
		{"chunked-4k", VMConfig{NestedPageSize: addr.Page4K}},
		{"chunked-2m", VMConfig{NestedPageSize: addr.Page2M}},
		{"contiguous", VMConfig{NestedPageSize: addr.Page4K, ContiguousBacking: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHost(2 << 20)
			freeBefore := h.Mem.FreeFrames()
			c.cfg.Name = "vm"
			c.cfg.MemorySize = 8 << 20
			vm, err := h.CreateVM(c.cfg)
			if err == nil {
				t.Fatal("CreateVM succeeded on a host smaller than the guest")
			}
			if c.cfg.ContiguousBacking && !errors.Is(err, ErrHostFragmented) {
				t.Errorf("err = %v, want ErrHostFragmented", err)
			}
			if vm != nil {
				t.Error("failed CreateVM returned a VM")
			}
			if got := h.Mem.FreeFrames(); got != freeBefore {
				t.Errorf("free frames = %d, want %d (failed creation leaked)", got, freeBefore)
			}
			if len(h.VMs()) != 0 {
				t.Errorf("%d VMs registered after failed creation", len(h.VMs()))
			}
		})
	}
}

// TestHotplugAddRollsBackOnHostOOM fills the host, then hotplugs more
// than remains: the partial backing must roll back completely.
func TestHotplugAddRollsBackOnHostOOM(t *testing.T) {
	h := NewHost(8 << 20)
	vm, err := h.CreateVM(VMConfig{Name: "vm", MemorySize: 6 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := h.Mem.FreeFrames()
	guestBefore := vm.GuestMem.Size()
	if _, err := vm.HotplugAdd(4 << 20); err == nil {
		t.Fatal("hotplug beyond host capacity succeeded")
	}
	if got := h.Mem.FreeFrames(); got != freeBefore {
		t.Errorf("free frames = %d, want %d (failed hotplug leaked)", got, freeBefore)
	}
	// The grown guest range stays offline; no backing may remain in it.
	for gpa := guestBefore; gpa < vm.GuestMem.Size(); gpa += addr.PageSize4K {
		if _, _, ok := vm.NPT.Translate(gpa); ok {
			t.Fatalf("gPA %#x still backed after failed hotplug", gpa)
		}
	}
}

// TestSavedFraction covers the §IX.E metric including its empty-scan
// guard.
func TestSavedFraction(t *testing.T) {
	if f := (SharingReport{}).SavedFraction(); f != 0 {
		t.Errorf("empty report fraction = %v, want 0", f)
	}
	rep := SharingReport{SavedFrames: 1, TotalFrames: 4}
	if f := rep.SavedFraction(); f != 0.25 {
		t.Errorf("fraction = %v, want 0.25", f)
	}
}
