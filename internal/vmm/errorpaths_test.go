package vmm

import (
	"errors"
	"strings"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/pagetable"
)

// exhaustHost allocates every remaining host frame so the next
// allocation of any kind must fail.
func exhaustHost(t *testing.T, h *Host) {
	t.Helper()
	for {
		if _, err := h.Mem.AllocFrame(); err != nil {
			return
		}
	}
}

// TestHotplugAddRollsBackOnExhaustion pins the rollback contract: when
// the host runs out of frames partway through backing a hotplugged
// range, the frames already installed are unmapped and freed — a failed
// hotplug must not leak host memory or leave a half-backed range.
func TestHotplugAddRollsBackOnExhaustion(t *testing.T) {
	// 24MB host, 16MB guest: a few MB of slack remain, far less than the
	// 32MB request, so the backing loop fails mid-range.
	h, vm := newHostVM(t, 24, 16, VMConfig{})
	freeBefore := h.Mem.FreeFrames()
	tableBefore := vm.NPT.TablePages()
	grownBefore := vm.GuestMem.Size()

	if _, err := vm.HotplugAdd(32 << 20); err == nil {
		t.Fatal("HotplugAdd succeeded with insufficient host memory")
	}

	tableGrowth := vm.NPT.TablePages() - tableBefore
	if got := h.Mem.FreeFrames() + tableGrowth; got != freeBefore {
		t.Errorf("rollback leaked host frames: %d free (+%d table pages), want %d",
			h.Mem.FreeFrames(), tableGrowth, freeBefore)
	}
	// Nothing in the attempted range may still translate.
	for gpa := grownBefore; gpa < vm.GuestMem.Size(); gpa += addr.PageSize4K {
		if _, _, ok := vm.NPT.Translate(gpa); ok {
			t.Fatalf("gPA %#x still backed after rollback", gpa)
		}
	}
	// The VM remains fully functional over its original memory.
	for gpa := uint64(0); gpa < grownBefore; gpa += 1 << 20 {
		if _, _, ok := vm.NPT.Translate(gpa); !ok {
			t.Fatalf("original gPA %#x lost during rollback", gpa)
		}
	}
}

// TestBalloonUnbackedFrame pins that ballooning a frame whose backing
// is already gone reports ErrNoBacking instead of corrupting state.
func TestBalloonUnbackedFrame(t *testing.T) {
	h, vm := newHostVM(t, 64, 16, VMConfig{})
	if err := vm.Balloon([]uint64{5}); err != nil {
		t.Fatal(err)
	}
	free := h.Mem.FreeFrames()
	if err := vm.Balloon([]uint64{5}); !errors.Is(err, ErrNoBacking) {
		t.Fatalf("double balloon: err = %v, want ErrNoBacking", err)
	}
	if h.Mem.FreeFrames() != free {
		t.Error("failed balloon changed host free frames")
	}
}

// TestHotplugRemoveUnbackedIsNoop covers the already-unbacked skip: a
// second remove of the same range must succeed without freeing anything
// twice.
func TestHotplugRemoveUnbackedIsNoop(t *testing.T) {
	h, vm := newHostVM(t, 64, 16, VMConfig{})
	r, err := vm.HotplugAdd(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.HotplugRemove(r); err != nil {
		t.Fatal(err)
	}
	free := h.Mem.FreeFrames()
	if err := vm.HotplugRemove(r); err != nil {
		t.Fatalf("idempotent remove: %v", err)
	}
	if h.Mem.FreeFrames() != free {
		t.Error("second remove double-freed host frames")
	}
}

// TestShadowSyncUnbackedGPA covers the shadow-paging glue error: the
// guest table resolves the gVA but the gPA has no nested backing (e.g.
// the VMM swapped it out), so the sync must fail rather than install a
// dangling shadow entry.
func TestShadowSyncUnbackedGPA(t *testing.T) {
	_, vm := newHostVM(t, 64, 16, VMConfig{})
	sh, err := vm.NewShadowContext()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := pagetable.New(vm.host.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// gPA 1GB is far outside the 16MB VM: never backed in the nPT.
	if err := pt.Map(0x4000, 1<<30, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	err = sh.SyncPage(pt, 0x4123)
	if err == nil || !strings.Contains(err.Error(), "not backed") {
		t.Fatalf("sync of unbacked gPA: err = %v", err)
	}
	if _, _, ok := sh.Shadow.Translate(0x4000); ok {
		t.Error("failed sync installed a shadow entry")
	}
}

// TestShadowSyncRepeatIsNoop covers the overlap race: a second sync of
// an already-shadowed page charges an exit but succeeds.
func TestShadowSyncRepeatIsNoop(t *testing.T) {
	_, vm := newHostVM(t, 64, 16, VMConfig{})
	sh, err := vm.NewShadowContext()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := pagetable.New(vm.host.Mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x8000, 0x20000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := sh.SyncPage(pt, 0x8000); err != nil {
		t.Fatal(err)
	}
	if err := sh.SyncPage(pt, 0x8fff); err != nil {
		t.Fatalf("repeat sync: %v", err)
	}
	if exits, _ := sh.Exits(); exits != 2 {
		t.Errorf("exits = %d, want 2 (both syncs are VM exits)", exits)
	}
}

// TestShadowHostExhausted covers the allocation failures in the glue:
// creating a shadow table, and growing one, both need host frames.
func TestShadowHostExhausted(t *testing.T) {
	h, vm := newHostVM(t, 32, 16, VMConfig{})
	sh, err := vm.NewShadowContext()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := pagetable.New(vm.host.Mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x4000, 0x10000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	exhaustHost(t, h)
	// Syncing a fresh page needs new shadow table pages: must surface
	// the allocation failure.
	if err := sh.SyncPage(pt, 0x4000); err == nil {
		t.Error("SyncPage succeeded with no host frames for shadow tables")
	}
	if _, err := vm.NewShadowContext(); err == nil {
		t.Error("NewShadowContext succeeded with no host frames")
	}
}
