// Shadow paging (§II.A, §IX.D): the software alternative to nested
// paging. The VMM composes the guest page table (gVA→gPA) with the
// nested mapping (gPA→hPA) into a shadow table (gVA→hPA) that hardware
// walks in 1D. The price is VM exits: every guest page-table update
// must be intercepted to keep the shadow coherent, which is why
// allocation-heavy workloads (memcached) lose up to 29.2% while static
// ones lose little.

package vmm

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/pagetable"
)

// DefaultExitCycles approximates one VM exit + shadow-update handler:
// hardware round trip (~1000 cycles on the evaluated generation) plus
// the software walk to recompute the mapping.
const DefaultExitCycles = 4000

// ShadowContext maintains a shadow page table for one guest process.
type ShadowContext struct {
	vm *VM
	// Shadow is the gVA→hPA table hardware walks; it lives in host
	// memory like any VMM data structure.
	Shadow *pagetable.Table
	// ExitCycles is charged per VM exit.
	ExitCycles uint64
	exits      uint64
	exitCycles uint64
}

// NewShadowContext creates an empty shadow table for a process in vm.
func (vm *VM) NewShadowContext() (*ShadowContext, error) {
	sh, err := pagetable.New(vm.host.Mem)
	if err != nil {
		return nil, fmt.Errorf("vmm: shadow table: %w", err)
	}
	return &ShadowContext{vm: vm, Shadow: sh, ExitCycles: DefaultExitCycles}, nil
}

// Exits returns the VM-exit count and total cycles charged.
func (s *ShadowContext) Exits() (count, cycles uint64) { return s.exits, s.exitCycles }

func (s *ShadowContext) exit() {
	s.exits++
	s.exitCycles += s.ExitCycles
}

// SyncPage is the shadow page-fault handler: invoked (via VM exit) when
// hardware faults on a gVA missing from the shadow table. It composes
// guest and nested translations and installs the shadow entry.
func (s *ShadowContext) SyncPage(guestPT *pagetable.Table, gva uint64) error {
	s.exit()
	page := addr.PageBase(gva, addr.Page4K)
	gpa, gsize, ok := guestPT.Translate(page)
	if !ok {
		return fmt.Errorf("vmm: shadow sync: gVA %#x not in guest table", gva)
	}
	hpa, nsize, ok := s.vm.NPT.Translate(gpa)
	if !ok {
		return fmt.Errorf("vmm: shadow sync: gPA %#x not backed", gpa)
	}
	size := gsize
	if nsize < size {
		size = nsize
	}
	base := addr.PageBase(gva, size)
	err := s.Shadow.Map(base, addr.PageBase(hpa, size), size)
	if err == pagetable.ErrOverlap {
		return nil // raced with an earlier sync of a larger page
	}
	return err
}

// InvalidatePage is called (via VM exit) when the guest modifies or
// removes a page-table entry: the stale shadow entry must go.
func (s *ShadowContext) InvalidatePage(gva uint64, size addr.PageSize) error {
	s.exit()
	err := s.Shadow.Unmap(addr.PageBase(gva, size), size)
	if err == pagetable.ErrNotMapped {
		return nil // never faulted in: nothing to do
	}
	return err
}

// GuestPTWrite is called for every guest page-table update the VMM
// traps (write-protected guest PT pages). Updates that remove or change
// translations invalidate shadow state; pure additions are lazy (the
// next fault syncs them) but still pay the trap.
func (s *ShadowContext) GuestPTWrite() {
	s.exit()
}
