package vmm

import (
	"testing"

	"vdirect/internal/addr"
)

func TestMigrateBasic(t *testing.T) {
	src := NewHost(64 << 20)
	dst := NewHost(64 << 20)
	vm, err := src.CreateVM(VMConfig{Name: "vm", MemorySize: 16 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	srcFreeBefore := src.Mem.FreeFrames()
	moved, rep, err := src.Migrate(vm, dst, nil, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	pages := uint64(16<<20) >> 12
	if rep.Passes() != 1 || rep.PassPages[0] != pages {
		t.Errorf("report = %+v, want one full pass of %d pages", rep, pages)
	}
	if rep.DowntimePages != 0 {
		t.Errorf("downtime pages = %d", rep.DowntimePages)
	}
	// Destination VM translates every guest page.
	for gpa := uint64(0); gpa < 16<<20; gpa += addr.PageSize4K {
		if _, _, ok := moved.NPT.Translate(gpa); !ok {
			t.Fatalf("gPA %#x unbacked after migration", gpa)
		}
	}
	// Source backing released.
	if src.Mem.FreeFrames() <= srcFreeBefore {
		t.Error("source frames not released")
	}
	if len(src.VMs()) != 0 || len(dst.VMs()) != 1 {
		t.Errorf("VM registries: src=%d dst=%d", len(src.VMs()), len(dst.VMs()))
	}
}

func TestMigratePreCopyPasses(t *testing.T) {
	src := NewHost(64 << 20)
	dst := NewHost(64 << 20)
	vm, err := src.CreateVM(VMConfig{Name: "vm", MemorySize: 8 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	// The guest dirties a shrinking set each pass: 100 pages, then 10,
	// then 2 — under the stop threshold of 4.
	dirtySets := [][]uint64{pageList(0x100000, 100), pageList(0x200000, 10), pageList(0x300000, 2)}
	dirtied := func(pass int) []uint64 {
		if pass < len(dirtySets) {
			return dirtySets[pass]
		}
		return nil
	}
	_, rep, err := src.Migrate(vm, dst, dirtied, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Full copy, then the 100-page set, then the 10-page set; the
	// 2-page set is under the threshold and becomes downtime.
	if rep.Passes() != 3 {
		t.Errorf("passes = %d, want 3", rep.Passes())
	}
	if rep.DowntimePages != 2 {
		t.Errorf("downtime pages = %d, want 2", rep.DowntimePages)
	}
	total := uint64(8<<20)>>12 + 100
	if rep.TotalCopied < total {
		t.Errorf("total copied = %d, want >= %d", rep.TotalCopied, total)
	}
}

func pageList(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*addr.PageSize4K
	}
	return out
}

func TestMigrateWithHardwareDirtyBits(t *testing.T) {
	// A nil dirtied callback harvests the nested table's dirty bits.
	src := NewHost(64 << 20)
	dst := NewHost(64 << 20)
	vm, err := src.CreateVM(VMConfig{Name: "vm", MemorySize: 8 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	// The guest writes three pages "while pass 0 runs".
	for _, gpa := range []uint64{0x100000, 0x200000, 0x300000} {
		if err := vm.MarkDirty(gpa); err != nil {
			t.Fatal(err)
		}
	}
	_, rep, err := src.Migrate(vm, dst, nil, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Pass 0 copies all pages, the harvest finds the 3 dirty ones which
	// exceed the 0 threshold... no: 3 > 0 so pass 1 recopies them, then
	// the second harvest is empty and downtime is 0.
	if rep.Passes() != 2 || rep.PassPages[1] != 3 {
		t.Errorf("report = %+v", rep)
	}
	if rep.DowntimePages != 0 {
		t.Errorf("downtime = %d", rep.DowntimePages)
	}
}

func TestMigrateRefusesVMMSegment(t *testing.T) {
	src := NewHost(64 << 20)
	dst := NewHost(64 << 20)
	vm, err := src.CreateVM(VMConfig{Name: "vm", MemorySize: 8 << 20,
		NestedPageSize: addr.Page4K, ContiguousBacking: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.TryEnableVMMSegment(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.Migrate(vm, dst, nil, 0, 4); err != ErrSegmentPinned {
		t.Fatalf("err = %v, want ErrSegmentPinned", err)
	}
	// Table II transition: disable the segment, then migration works.
	vm.DisableVMMSegment()
	if _, _, err := src.Migrate(vm, dst, nil, 0, 4); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateRefuses2MNested(t *testing.T) {
	src := NewHost(64 << 20)
	dst := NewHost(64 << 20)
	vm, err := src.CreateVM(VMConfig{Name: "vm", MemorySize: 8 << 20, NestedPageSize: addr.Page2M})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.Migrate(vm, dst, nil, 0, 4); err != ErrBadNestedSize {
		t.Fatalf("err = %v", err)
	}
}

func TestMigrateDestinationExhausted(t *testing.T) {
	src := NewHost(64 << 20)
	dst := NewHost(4 << 20) // too small
	vm, err := src.CreateVM(VMConfig{Name: "vm", MemorySize: 16 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.Migrate(vm, dst, nil, 0, 4); err == nil {
		t.Fatal("migration into exhausted host succeeded")
	}
}
