// Mode tradeoffs (Table II) and the dynamic mode policy for fragmented
// systems (Table III).

package vmm

import "vdirect/internal/mmu"

// Support grades how well a mode supports a memory-management service.
type Support uint8

// Support levels used by Table II.
const (
	Unrestricted Support = iota
	Limited
)

func (s Support) String() string {
	if s == Unrestricted {
		return "unrestricted"
	}
	return "limited"
}

// Capabilities reproduces one column of Table II.
type Capabilities struct {
	Mode            mmu.Mode
	WalkDims        string
	MemAccesses     int // memory accesses for most page walks
	BaseBoundChecks int
	GuestOSMods     bool
	VMMMods         bool
	AppCategory     string // "any" or "big memory"
	PageSharing     Support
	Ballooning      Support
	GuestSwapping   Support
	VMMSwapping     Support
}

// CapabilitiesOf returns the Table II column for a virtualized mode.
// It panics for unvirtualized modes, which the table does not cover.
//
// The numeric columns — walk dimensionality, memory accesses, and
// base-bound checks for "most page walks" — derive from the scheme
// registry's closed-form cost at the canonical operating point (4K
// guest page, 4-level nested tables, the scheme's segments covering),
// so they cannot drift from what the simulator charges. Only the
// qualitative service rows stay per-mode.
func CapabilitiesOf(m mmu.Mode) Capabilities {
	s, err := mmu.SchemeByName(string(m))
	if err != nil || !s.Virtualized() {
		panic("vmm: Table II covers only virtualized modes")
	}
	req := s.Requirements()
	wc := s.WalkCost(mmu.CostInput{
		GuestLevels: 4, NestedLevels: 4,
		GuestCovered: req.GuestSegment, VMMCovered: req.VMMSegment,
		GuestSegEnabled: req.GuestSegment, VMMSegEnabled: req.VMMSegment,
	})
	c := Capabilities{
		Mode:            m,
		WalkDims:        walkDims(req),
		MemAccesses:     int(wc.Refs),
		BaseBoundChecks: int(wc.Checks),
	}
	switch m {
	case mmu.ModeBaseVirtualized:
		c.AppCategory = "any"
		c.PageSharing, c.Ballooning = Unrestricted, Unrestricted
		c.GuestSwapping, c.VMMSwapping = Unrestricted, Unrestricted
	case mmu.ModeDualDirect:
		c.GuestOSMods, c.VMMMods = true, true
		c.AppCategory = "big memory"
		c.PageSharing, c.Ballooning = Limited, Limited
		c.GuestSwapping, c.VMMSwapping = Limited, Limited
	case mmu.ModeVMMDirect:
		c.VMMMods = true
		c.AppCategory = "any"
		c.PageSharing, c.Ballooning = Limited, Limited
		c.GuestSwapping, c.VMMSwapping = Unrestricted, Limited
	case mmu.ModeGuestDirect:
		c.GuestOSMods = true
		c.AppCategory = "big memory"
		c.PageSharing, c.Ballooning = Unrestricted, Unrestricted
		c.GuestSwapping, c.VMMSwapping = Limited, Unrestricted
	case mmu.ModeFlatNested:
		// Flattening is a VMM-side table transform: the guest runs
		// unmodified, and every service keeps working because the VMM
		// rebuilds flat entries on remap.
		c.VMMMods = true
		c.AppCategory = "any"
		c.PageSharing, c.Ballooning = Unrestricted, Unrestricted
		c.GuestSwapping, c.VMMSwapping = Unrestricted, Unrestricted
	default:
		panic("vmm: registered scheme " + string(m) + " has no Table II service column")
	}
	return c
}

// walkDims names the walk dimensionality a scheme's requirements imply:
// each direct segment removes one page-walk dimension, and flattening
// keeps both dimensions but collapses the cross terms.
func walkDims(req mmu.Requirements) string {
	switch {
	case req.GuestSegment && req.VMMSegment:
		return "0D"
	case req.GuestSegment || req.VMMSegment:
		return "1D"
	case req.FlattenedNested:
		return "2D-flat"
	}
	return "2D"
}

// AllCapabilities returns Table II in column order.
func AllCapabilities() []Capabilities {
	return []Capabilities{
		CapabilitiesOf(mmu.ModeBaseVirtualized),
		CapabilitiesOf(mmu.ModeDualDirect),
		CapabilitiesOf(mmu.ModeVMMDirect),
		CapabilitiesOf(mmu.ModeGuestDirect),
	}
}

// WorkloadClass partitions workloads as Table III does.
type WorkloadClass uint8

// Workload classes.
const (
	BigMemory WorkloadClass = iota
	Compute
)

func (w WorkloadClass) String() string {
	if w == BigMemory {
		return "big-memory"
	}
	return "compute"
}

// FragState describes which physical memories are fragmented.
type FragState struct {
	HostFragmented  bool
	GuestFragmented bool
}

// Plan is one row of Table III: the mode to run now, the mode reachable
// after remediation, and the techniques that get there.
type Plan struct {
	Initial    mmu.Mode
	Final      mmu.Mode
	Techniques []string
}

// PlanModes reproduces Table III: given the workload class and the
// fragmentation state, which modes are used and how the system
// transitions between them.
func PlanModes(class WorkloadClass, frag FragState) Plan {
	switch class {
	case BigMemory:
		switch {
		case frag.HostFragmented && frag.GuestFragmented:
			return Plan{
				Initial:    mmu.ModeGuestDirect,
				Final:      mmu.ModeDualDirect,
				Techniques: []string{"self-balloon", "host memory compaction"},
			}
		case frag.HostFragmented:
			return Plan{
				Initial:    mmu.ModeGuestDirect,
				Final:      mmu.ModeDualDirect,
				Techniques: []string{"host memory compaction"},
			}
		case frag.GuestFragmented:
			return Plan{
				Initial:    mmu.ModeDualDirect,
				Final:      mmu.ModeDualDirect,
				Techniques: []string{"self-balloon"},
			}
		default:
			return Plan{Initial: mmu.ModeDualDirect, Final: mmu.ModeDualDirect}
		}
	case Compute:
		switch {
		case frag.HostFragmented:
			return Plan{
				Initial:    mmu.ModeBaseVirtualized,
				Final:      mmu.ModeVMMDirect,
				Techniques: []string{"host memory compaction"},
			}
		case frag.GuestFragmented:
			// Guest fragmentation does not matter to VMM Direct: the
			// segment lives in the second dimension.
			return Plan{Initial: mmu.ModeVMMDirect, Final: mmu.ModeVMMDirect}
		default:
			return Plan{Initial: mmu.ModeVMMDirect, Final: mmu.ModeVMMDirect}
		}
	}
	panic("vmm: unknown workload class")
}
