// Mode tradeoffs (Table II) and the dynamic mode policy for fragmented
// systems (Table III).

package vmm

import "vdirect/internal/mmu"

// Support grades how well a mode supports a memory-management service.
type Support uint8

// Support levels used by Table II.
const (
	Unrestricted Support = iota
	Limited
)

func (s Support) String() string {
	if s == Unrestricted {
		return "unrestricted"
	}
	return "limited"
}

// Capabilities reproduces one column of Table II.
type Capabilities struct {
	Mode            mmu.Mode
	WalkDims        string
	MemAccesses     int // memory accesses for most page walks
	BaseBoundChecks int
	GuestOSMods     bool
	VMMMods         bool
	AppCategory     string // "any" or "big memory"
	PageSharing     Support
	Ballooning      Support
	GuestSwapping   Support
	VMMSwapping     Support
}

// CapabilitiesOf returns the Table II column for a virtualized mode.
// It panics for unvirtualized modes, which the table does not cover.
func CapabilitiesOf(m mmu.Mode) Capabilities {
	switch m {
	case mmu.ModeBaseVirtualized:
		return Capabilities{
			Mode: m, WalkDims: "2D", MemAccesses: 24, BaseBoundChecks: 0,
			AppCategory: "any",
			PageSharing: Unrestricted, Ballooning: Unrestricted,
			GuestSwapping: Unrestricted, VMMSwapping: Unrestricted,
		}
	case mmu.ModeDualDirect:
		return Capabilities{
			Mode: m, WalkDims: "0D", MemAccesses: 0, BaseBoundChecks: 1,
			GuestOSMods: true, VMMMods: true, AppCategory: "big memory",
			PageSharing: Limited, Ballooning: Limited,
			GuestSwapping: Limited, VMMSwapping: Limited,
		}
	case mmu.ModeVMMDirect:
		return Capabilities{
			Mode: m, WalkDims: "1D", MemAccesses: 4, BaseBoundChecks: 5,
			VMMMods: true, AppCategory: "any",
			PageSharing: Limited, Ballooning: Limited,
			GuestSwapping: Unrestricted, VMMSwapping: Limited,
		}
	case mmu.ModeGuestDirect:
		return Capabilities{
			Mode: m, WalkDims: "1D", MemAccesses: 4, BaseBoundChecks: 1,
			GuestOSMods: true, AppCategory: "big memory",
			PageSharing: Unrestricted, Ballooning: Unrestricted,
			GuestSwapping: Limited, VMMSwapping: Unrestricted,
		}
	}
	panic("vmm: Table II covers only virtualized modes")
}

// AllCapabilities returns Table II in column order.
func AllCapabilities() []Capabilities {
	return []Capabilities{
		CapabilitiesOf(mmu.ModeBaseVirtualized),
		CapabilitiesOf(mmu.ModeDualDirect),
		CapabilitiesOf(mmu.ModeVMMDirect),
		CapabilitiesOf(mmu.ModeGuestDirect),
	}
}

// WorkloadClass partitions workloads as Table III does.
type WorkloadClass uint8

// Workload classes.
const (
	BigMemory WorkloadClass = iota
	Compute
)

func (w WorkloadClass) String() string {
	if w == BigMemory {
		return "big-memory"
	}
	return "compute"
}

// FragState describes which physical memories are fragmented.
type FragState struct {
	HostFragmented  bool
	GuestFragmented bool
}

// Plan is one row of Table III: the mode to run now, the mode reachable
// after remediation, and the techniques that get there.
type Plan struct {
	Initial    mmu.Mode
	Final      mmu.Mode
	Techniques []string
}

// PlanModes reproduces Table III: given the workload class and the
// fragmentation state, which modes are used and how the system
// transitions between them.
func PlanModes(class WorkloadClass, frag FragState) Plan {
	switch class {
	case BigMemory:
		switch {
		case frag.HostFragmented && frag.GuestFragmented:
			return Plan{
				Initial:    mmu.ModeGuestDirect,
				Final:      mmu.ModeDualDirect,
				Techniques: []string{"self-balloon", "host memory compaction"},
			}
		case frag.HostFragmented:
			return Plan{
				Initial:    mmu.ModeGuestDirect,
				Final:      mmu.ModeDualDirect,
				Techniques: []string{"host memory compaction"},
			}
		case frag.GuestFragmented:
			return Plan{
				Initial:    mmu.ModeDualDirect,
				Final:      mmu.ModeDualDirect,
				Techniques: []string{"self-balloon"},
			}
		default:
			return Plan{Initial: mmu.ModeDualDirect, Final: mmu.ModeDualDirect}
		}
	case Compute:
		switch {
		case frag.HostFragmented:
			return Plan{
				Initial:    mmu.ModeBaseVirtualized,
				Final:      mmu.ModeVMMDirect,
				Techniques: []string{"host memory compaction"},
			}
		case frag.GuestFragmented:
			// Guest fragmentation does not matter to VMM Direct: the
			// segment lives in the second dimension.
			return Plan{Initial: mmu.ModeVMMDirect, Final: mmu.ModeVMMDirect}
		default:
			return Plan{Initial: mmu.ModeVMMDirect, Final: mmu.ModeVMMDirect}
		}
	}
	panic("vmm: unknown workload class")
}
