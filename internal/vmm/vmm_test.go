package vmm

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/guestos"
	"vdirect/internal/mmu"
	"vdirect/internal/physmem"
	"vdirect/internal/trace"
)

func newHostVM(t *testing.T, hostMB, guestMB uint64, cfg VMConfig) (*Host, *VM) {
	t.Helper()
	h := NewHost(hostMB << 20)
	cfg.MemorySize = guestMB << 20
	if cfg.Name == "" {
		cfg.Name = "vm0"
	}
	if cfg.NestedPageSize == 0 {
		cfg.NestedPageSize = addr.Page4K
	}
	vm, err := h.CreateVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, vm
}

func TestCreateVMBacksAllMemory(t *testing.T) {
	_, vm := newHostVM(t, 128, 16, VMConfig{})
	// Every guest page must translate.
	for gpa := uint64(0); gpa < vm.GuestMem.Size(); gpa += addr.PageSize4K {
		if _, _, ok := vm.NPT.Translate(gpa); !ok {
			t.Fatalf("gPA %#x unbacked", gpa)
		}
	}
	if vm.BackedFrames() != vm.GuestMem.Size()>>12 {
		t.Errorf("BackedFrames = %d", vm.BackedFrames())
	}
}

func TestCreateVM2MNestedPages(t *testing.T) {
	_, vm := newHostVM(t, 128, 16, VMConfig{NestedPageSize: addr.Page2M})
	hpa, s, ok := vm.NPT.Translate(0x300000)
	if !ok || s != addr.Page2M {
		t.Fatalf("2M nested mapping missing: %v %v", s, ok)
	}
	if hpa%addr.PageSize2M != 0x100000 {
		t.Errorf("2M mapping misaligned: %#x", hpa)
	}
}

func TestContiguousBackingAndVMMSegment(t *testing.T) {
	_, vm := newHostVM(t, 128, 16, VMConfig{ContiguousBacking: true})
	seg, err := vm.TryEnableVMMSegment()
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Enabled() || seg.Range().Size != 16<<20 {
		t.Errorf("segment = %v", seg)
	}
	// Segment translation must agree with the nested page table.
	for _, gpa := range []uint64{0, 0x12345, 0xabc000, 16<<20 - 1} {
		hpa, _, ok := vm.NPT.Translate(addr.PageBase(gpa, addr.Page4K))
		if !ok {
			t.Fatalf("gPA %#x unbacked", gpa)
		}
		if seg.Translate(addr.PageBase(gpa, addr.Page4K)) != hpa {
			t.Errorf("segment and nPT disagree at gPA %#x", gpa)
		}
	}
	vm.DisableVMMSegment()
	if vm.VMMSegment().Enabled() {
		t.Error("DisableVMMSegment left registers live")
	}
}

func TestVMMSegmentFragmentedHostFails(t *testing.T) {
	h := NewHost(64 << 20)
	r := trace.NewRand(1)
	h.Mem.FragmentRandomly(0.5, r.Uint64n)
	if _, err := h.CreateVM(VMConfig{
		Name: "vm", MemorySize: 16 << 20,
		NestedPageSize: addr.Page4K, ContiguousBacking: true,
	}); err != ErrHostFragmented {
		t.Fatalf("err = %v, want ErrHostFragmented", err)
	}
}

func TestCompactionEnablesVMMSegment(t *testing.T) {
	// Table III transition: fragmented host → chunked VM → compaction →
	// VMM segment.
	h := NewHost(128 << 20)
	r := trace.NewRand(2)
	taken := h.Mem.FragmentRandomly(0.3, r.Uint64n)
	vm, err := h.CreateVM(VMConfig{Name: "vm", MemorySize: 32 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	// Free the fragmentation pages, leaving scattered holes; the VM's
	// chunked backing is interleaved with them.
	for _, f := range taken {
		h.Mem.FreeFrame(f)
	}
	if _, err := vm.TryEnableVMMSegment(); err == nil {
		// Occasionally a large free run exists; if so the test cannot
		// exercise the compaction path. Force fragmentation harder.
		t.Skip("host accidentally had a contiguous run")
	}
	moved, err := h.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("compaction moved nothing")
	}
	seg, err := vm.TryEnableVMMSegment()
	if err != nil {
		t.Fatalf("VMM segment after compaction: %v", err)
	}
	// Verify coherence after the relocations.
	for gpa := uint64(0); gpa < vm.GuestMem.Size(); gpa += addr.PageSize4K {
		hpa, _, ok := vm.NPT.Translate(gpa)
		if !ok || seg.Translate(gpa) != hpa {
			t.Fatalf("post-compaction mismatch at gPA %#x", gpa)
		}
	}
}

func TestCompactRepairsNestedMappings(t *testing.T) {
	h := NewHost(64 << 20)
	r := trace.NewRand(3)
	taken := h.Mem.FragmentRandomly(0.4, r.Uint64n)
	vm, err := h.CreateVM(VMConfig{Name: "vm", MemorySize: 8 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot gPA → content identity via frame numbers.
	before := map[uint64]uint64{}
	vm.NPT.VisitLeaves(func(gpa, hpa uint64, s addr.PageSize) bool {
		before[gpa] = gpa // identity marker
		return true
	})
	for _, f := range taken {
		h.Mem.FreeFrame(f)
	}
	if _, err := h.Compact(); err != nil {
		t.Fatal(err)
	}
	// All gPAs still translate, and every backed frame is allocated.
	count := 0
	vm.NPT.VisitLeaves(func(gpa, hpa uint64, s addr.PageSize) bool {
		count++
		if !h.Mem.IsAllocated(physmem.AddrToFrame(hpa)) {
			t.Errorf("gPA %#x maps to unallocated frame %#x", gpa, hpa)
			return false
		}
		return true
	})
	if count != len(before) {
		t.Errorf("mappings lost: %d -> %d", len(before), count)
	}
}

func TestSlotLayout(t *testing.T) {
	// Small VM: one slot. Large VM: split at 4GB (Figure 10).
	_, small := newHostVM(t, 64, 16, VMConfig{})
	if len(small.Slots) != 1 {
		t.Errorf("small VM slots = %d", len(small.Slots))
	}
	h := NewHost(6 << 30)
	big, err := h.CreateVM(VMConfig{Name: "big", MemorySize: 5 << 30, NestedPageSize: addr.Page1G})
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Slots) != 2 {
		t.Fatalf("big VM slots = %d, want 2", len(big.Slots))
	}
	if big.Slots[1].GPA.Start != addr.IOGapEnd {
		t.Errorf("second slot starts %#x", big.Slots[1].GPA.Start)
	}
	// gPA→hVA through slots is linear per slot.
	hva1, ok1 := big.HVAForGPA(0x1000)
	hva2, ok2 := big.HVAForGPA(addr.IOGapEnd + 0x1000)
	if !ok1 || !ok2 {
		t.Fatal("HVAForGPA failed")
	}
	if hva2-hva1 != addr.IOGapEnd {
		t.Errorf("slot HVA layout wrong: %#x %#x", hva1, hva2)
	}
	if _, ok := big.HVAForGPA(6 << 30); ok {
		t.Error("out-of-range gPA resolved")
	}
}

func TestBalloonHotplugRoundTrip(t *testing.T) {
	h, vm := newHostVM(t, 128, 32, VMConfig{})
	hostFree := h.Mem.FreeFrames()
	// Balloon out 1024 scattered guest frames.
	frames := make([]uint64, 0, 1024)
	for i := uint64(0); i < 1024; i++ {
		frames = append(frames, i*7%8192)
	}
	seen := map[uint64]bool{}
	uniq := frames[:0]
	for _, f := range frames {
		if !seen[f] {
			seen[f] = true
			uniq = append(uniq, f)
		}
	}
	if err := vm.Balloon(uniq); err != nil {
		t.Fatal(err)
	}
	if h.Mem.FreeFrames() != hostFree+uint64(len(uniq)) {
		t.Errorf("host frames not reclaimed: %d -> %d", hostFree, h.Mem.FreeFrames())
	}
	// Hotplug the same amount back.
	tablePagesBefore := vm.NPT.TablePages()
	r, err := vm.HotplugAdd(uint64(len(uniq)) << 12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != 32<<20 {
		t.Errorf("hotplug range = %v", r)
	}
	// Backing frames balance exactly; the nested table may have grown
	// by a few pages to map the new region.
	tableGrowth := vm.NPT.TablePages() - tablePagesBefore
	if h.Mem.FreeFrames()+tableGrowth != hostFree {
		t.Errorf("host frames after round trip: %d (+%d table pages) != %d",
			h.Mem.FreeFrames(), tableGrowth, hostFree)
	}
	// New range fully backed.
	for gpa := r.Start; gpa < r.End(); gpa += addr.PageSize4K {
		if _, _, ok := vm.NPT.Translate(gpa); !ok {
			t.Fatalf("hotplugged gPA %#x unbacked", gpa)
		}
	}
	// Remove it again: all backing frames come back (table pages for the
	// emptied region are also reclaimed by the page table).
	freeBeforeRemove := h.Mem.FreeFrames()
	if err := vm.HotplugRemove(r); err != nil {
		t.Fatal(err)
	}
	if h.Mem.FreeFrames() < freeBeforeRemove+uint64(len(uniq)) {
		t.Error("HotplugRemove did not free host frames")
	}
}

func TestBalloonRequires4KNested(t *testing.T) {
	_, vm := newHostVM(t, 128, 16, VMConfig{NestedPageSize: addr.Page2M})
	if err := vm.Balloon([]uint64{0}); err != ErrBadNestedSize {
		t.Errorf("err = %v", err)
	}
	if _, err := vm.HotplugAdd(1 << 20); err != ErrBadNestedSize {
		t.Errorf("err = %v", err)
	}
	if err := vm.HotplugRemove(addr.Range{Size: 1 << 20}); err != ErrBadNestedSize {
		t.Errorf("err = %v", err)
	}
}

func TestVMImplementsGuestOSBackend(t *testing.T) {
	// End-to-end self-ballooning through the real VMM backend.
	h, vm := newHostVM(t, 256, 32, VMConfig{})
	_ = h
	kernel := guestos.NewKernel(vm.GuestMem, vm)
	r := trace.NewRand(5)
	kernel.Mem.FragmentRandomly(0.6, r.Uint64n)
	p, err := kernel.CreateProcess("bigmem")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreatePrimaryRegion(8 << 20); err != guestos.ErrFragmented {
		t.Fatalf("precondition: %v", err)
	}
	if _, err := kernel.SelfBalloon(8<<20, r.Uint64n); err != nil {
		t.Fatal(err)
	}
	if err := p.BackPrimaryRegion(); err != nil {
		t.Fatalf("segment after self-balloon: %v", err)
	}
	// Every gPA the new segment covers must be backed in the nPT.
	segr := p.Seg
	for gva := segr.Base; gva < segr.Limit; gva += addr.PageSize4K {
		gpa := segr.Translate(gva)
		if _, _, ok := vm.NPT.Translate(gpa); !ok {
			t.Fatalf("segment gPA %#x unbacked in nPT", gpa)
		}
	}
}

func TestPageSharingSavesDuplicates(t *testing.T) {
	h := NewHost(256 << 20)
	vmA, err := h.CreateVM(VMConfig{Name: "a", MemorySize: 8 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	vmB, err := h.CreateVM(VMConfig{Name: "b", MemorySize: 8 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	// 64 identical "OS code" pages in both VMs, rest unique.
	for i := uint64(0); i < 64; i++ {
		vmA.SetPageContent(i<<12, 0xC0DE+i)
		vmB.SetPageContent(i<<12, 0xC0DE+i)
	}
	for i := uint64(64); i < 128; i++ {
		vmA.SetPageContent(i<<12, 0xAAAA0000+i)
		vmB.SetPageContent(i<<12, 0xBBBB0000+i)
	}
	freeBefore := h.Mem.FreeFrames()
	rep, err := h.ScanAndShare([]*VM{vmA, vmB})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SavedFrames != 64 {
		t.Errorf("SavedFrames = %d, want 64", rep.SavedFrames)
	}
	if h.Mem.FreeFrames() != freeBefore+64 {
		t.Errorf("host frames not actually saved")
	}
	// Shared pages now alias the same host frame.
	hA, _, _ := vmA.NPT.Translate(0x1000)
	hB, _, _ := vmB.NPT.Translate(0x1000)
	if hA != hB {
		t.Error("duplicate pages not aliased")
	}
	if rep.SavedFraction() <= 0 {
		t.Error("SavedFraction = 0")
	}
}

func TestPageSharingSkipsSegmentCovered(t *testing.T) {
	h := NewHost(256 << 20)
	vmA, err := h.CreateVM(VMConfig{Name: "a", MemorySize: 8 << 20,
		NestedPageSize: addr.Page4K, ContiguousBacking: true})
	if err != nil {
		t.Fatal(err)
	}
	vmB, err := h.CreateVM(VMConfig{Name: "b", MemorySize: 8 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vmA.TryEnableVMMSegment(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		vmA.SetPageContent(i<<12, 0xC0DE+i)
		vmB.SetPageContent(i<<12, 0xC0DE+i)
	}
	rep, err := h.ScanAndShare([]*VM{vmA, vmB})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SavedFrames != 0 {
		t.Errorf("segment-covered pages were shared: %d", rep.SavedFrames)
	}
}

func TestCoWBreak(t *testing.T) {
	h := NewHost(256 << 20)
	vmA, _ := h.CreateVM(VMConfig{Name: "a", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	vmB, _ := h.CreateVM(VMConfig{Name: "b", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	vmA.SetPageContent(0x3000, 42)
	vmB.SetPageContent(0x5000, 42)
	if _, err := h.ScanAndShare([]*VM{vmA, vmB}); err != nil {
		t.Fatal(err)
	}
	hA, _, _ := vmA.NPT.Translate(0x3000)
	hB, _, _ := vmB.NPT.Translate(0x5000)
	if hA != hB {
		t.Fatal("pages not shared")
	}
	broke, err := vmB.WriteFault(0x5123)
	if err != nil {
		t.Fatal(err)
	}
	if !broke {
		t.Fatal("write to shared page did not break CoW")
	}
	hB2, _, _ := vmB.NPT.Translate(0x5000)
	if hB2 == hA {
		t.Error("CoW break left aliasing")
	}
	if vmB.CoWBreaks() != 1 {
		t.Errorf("CoWBreaks = %d", vmB.CoWBreaks())
	}
	// Writing a private page is free.
	broke, err = vmB.WriteFault(0x7000)
	if err != nil || broke {
		t.Errorf("private write: broke=%v err=%v", broke, err)
	}
}

func TestShadowContext(t *testing.T) {
	h, vm := newHostVM(t, 128, 16, VMConfig{})
	_ = h
	kernel := guestos.NewKernel(vm.GuestMem, vm)
	p, _ := kernel.CreateProcess("app")
	base, _ := p.MMap(1 << 20)
	if err := p.HandleFault(base); err != nil {
		t.Fatal(err)
	}
	sh, err := vm.NewShadowContext()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.SyncPage(p.PT, base+0x123); err != nil {
		t.Fatal(err)
	}
	// Shadow translation equals gPT∘nPT.
	hpaShadow, _, ok := sh.Shadow.Translate(base + 0x123)
	if !ok {
		t.Fatal("shadow entry missing")
	}
	gpa, _, _ := p.PT.Translate(base + 0x123)
	hpaDirect, _, _ := vm.NPT.Translate(gpa)
	if hpaShadow != hpaDirect {
		t.Errorf("shadow %#x != composed %#x", hpaShadow, hpaDirect)
	}
	exits, cycles := sh.Exits()
	if exits != 1 || cycles != DefaultExitCycles {
		t.Errorf("exits=%d cycles=%d", exits, cycles)
	}
	// Invalidation exits too; missing entries are fine.
	if err := sh.InvalidatePage(base, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := sh.InvalidatePage(base+0x40000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	sh.GuestPTWrite()
	exits, _ = sh.Exits()
	if exits != 4 {
		t.Errorf("exits = %d, want 4", exits)
	}
	// Sync of an unmapped gVA reports an error.
	if err := sh.SyncPage(p.PT, 0xdeadbeef000); err == nil {
		t.Error("sync of unmapped gVA succeeded")
	}
}

func TestCapabilitiesTableII(t *testing.T) {
	caps := AllCapabilities()
	if len(caps) != 4 {
		t.Fatalf("Table II has %d columns", len(caps))
	}
	checks := map[mmu.Mode]struct {
		dims   string
		refs   int
		checks int
	}{
		mmu.ModeBaseVirtualized: {"2D", 24, 0},
		mmu.ModeDualDirect:      {"0D", 0, 1},
		mmu.ModeVMMDirect:       {"1D", 4, 5},
		mmu.ModeGuestDirect:     {"1D", 4, 1},
	}
	for _, c := range caps {
		want := checks[c.Mode]
		if c.WalkDims != want.dims || c.MemAccesses != want.refs || c.BaseBoundChecks != want.checks {
			t.Errorf("%v: dims=%s refs=%d checks=%d", c.Mode, c.WalkDims, c.MemAccesses, c.BaseBoundChecks)
		}
	}
	// Spot-check the service rows.
	gd := CapabilitiesOf(mmu.ModeGuestDirect)
	if gd.PageSharing != Unrestricted || gd.VMMSwapping != Unrestricted || gd.GuestSwapping != Limited {
		t.Errorf("Guest Direct services wrong: %+v", gd)
	}
	vd := CapabilitiesOf(mmu.ModeVMMDirect)
	if vd.GuestSwapping != Unrestricted || vd.PageSharing != Limited || vd.VMMMods != true || vd.GuestOSMods {
		t.Errorf("VMM Direct services wrong: %+v", vd)
	}
	if Unrestricted.String() != "unrestricted" || Limited.String() != "limited" {
		t.Error("Support strings wrong")
	}
}

// TestCapabilitiesFlatNested covers the post-paper column: reachable by
// name, numeric cells derived from the scheme's closed-form cost, and
// absent from the paper's four-column table.
func TestCapabilitiesFlatNested(t *testing.T) {
	fn := CapabilitiesOf(mmu.ModeFlatNested)
	if fn.WalkDims != "2D-flat" || fn.MemAccesses != 12 || fn.BaseBoundChecks != 0 {
		t.Errorf("FlatNested: dims=%s refs=%d checks=%d, want 2D-flat/12/0",
			fn.WalkDims, fn.MemAccesses, fn.BaseBoundChecks)
	}
	if !fn.VMMMods || fn.GuestOSMods {
		t.Errorf("FlatNested mods wrong: %+v", fn)
	}
	if len(AllCapabilities()) != 4 {
		t.Error("AllCapabilities grew beyond the paper's four columns")
	}
}

func TestCapabilitiesPanicsForNative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for native mode")
		}
	}()
	CapabilitiesOf(mmu.ModeNative)
}

func TestPlanModesTableIII(t *testing.T) {
	cases := []struct {
		class   WorkloadClass
		frag    FragState
		initial mmu.Mode
		final   mmu.Mode
		ntech   int
	}{
		{BigMemory, FragState{HostFragmented: true}, mmu.ModeGuestDirect, mmu.ModeDualDirect, 1},
		{BigMemory, FragState{GuestFragmented: true}, mmu.ModeDualDirect, mmu.ModeDualDirect, 1},
		{BigMemory, FragState{HostFragmented: true, GuestFragmented: true}, mmu.ModeGuestDirect, mmu.ModeDualDirect, 2},
		{BigMemory, FragState{}, mmu.ModeDualDirect, mmu.ModeDualDirect, 0},
		{Compute, FragState{HostFragmented: true}, mmu.ModeBaseVirtualized, mmu.ModeVMMDirect, 1},
		{Compute, FragState{GuestFragmented: true}, mmu.ModeVMMDirect, mmu.ModeVMMDirect, 0},
		{Compute, FragState{HostFragmented: true, GuestFragmented: true}, mmu.ModeBaseVirtualized, mmu.ModeVMMDirect, 1},
		{Compute, FragState{}, mmu.ModeVMMDirect, mmu.ModeVMMDirect, 0},
	}
	for _, c := range cases {
		p := PlanModes(c.class, c.frag)
		if p.Initial != c.initial || p.Final != c.final || len(p.Techniques) != c.ntech {
			t.Errorf("%v/%+v: got %+v", c.class, c.frag, p)
		}
	}
	if BigMemory.String() != "big-memory" || Compute.String() != "compute" {
		t.Error("class strings wrong")
	}
}
