// VMM swapping (Table II): the hypervisor can reclaim host memory by
// paging guest physical pages out behind the guest's back. A gPA
// covered by a live VMM segment is pinned — the segment arithmetic
// needs its host frame in place — so VMM swapping is "limited" in Dual
// and VMM Direct modes and unrestricted otherwise.

package vmm

import (
	"errors"
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/physmem"
)

// ErrPinnedByVMMSegment is returned when VMM swapping targets pages a
// VMM segment covers.
var ErrPinnedByVMMSegment = errors.New("vmm: gPA pinned by the VMM segment")

// SwapOutGuestPages reclaims the host frames behind the given guest
// physical pages. The caller must invalidate nested MMU state. Returns
// the number of pages swapped.
func (vm *VM) SwapOutGuestPages(gpas []uint64) (int, error) {
	if vm.cfg.NestedPageSize != addr.Page4K {
		return 0, ErrBadNestedSize
	}
	if vm.swapped == nil {
		vm.swapped = make(map[uint64]struct{})
	}
	n := 0
	for _, gpa := range gpas {
		gpa = addr.PageBase(gpa, addr.Page4K)
		if vm.vmmSeg.Enabled() && vm.vmmSeg.Contains(gpa) {
			return n, fmt.Errorf("%w: gPA %#x", ErrPinnedByVMMSegment, gpa)
		}
		hpa, _, ok := vm.NPT.Translate(gpa)
		if !ok {
			continue // unbacked already
		}
		if err := vm.NPT.Unmap(gpa, addr.Page4K); err != nil {
			return n, err
		}
		vm.unregisterBacking(hpa, addr.PageSize4K)
		if err := vm.host.Mem.FreeFrame(physmem.AddrToFrame(hpa)); err != nil {
			return n, err
		}
		vm.swapped[gpa] = struct{}{}
		vm.contig = false
		n++
	}
	return n, nil
}

// HandleNestedFault services an EPT violation: if the gPA was swapped
// by the VMM, it is paged back in. Returns false when the fault is not
// swap-related (a true backing hole).
func (vm *VM) HandleNestedFault(gpa uint64) (bool, error) {
	page := addr.PageBase(gpa, addr.Page4K)
	if _, ok := vm.swapped[page]; !ok {
		return false, nil
	}
	f, err := vm.host.Mem.AllocFrame()
	if err != nil {
		return false, fmt.Errorf("vmm: VMM swap-in: %w", err)
	}
	hpa := physmem.FrameToAddr(f)
	if err := vm.NPT.Map(page, hpa, addr.Page4K); err != nil {
		return false, err
	}
	vm.registerBacking(page, hpa, addr.PageSize4K)
	delete(vm.swapped, page)
	vm.swapIns++
	return true, nil
}

// VMMSwapIns returns how many nested faults were serviced from swap.
func (vm *VM) VMMSwapIns() uint64 { return vm.swapIns }

// VMMSwappedPages returns the number of guest pages the VMM currently
// holds on swap.
func (vm *VM) VMMSwappedPages() int { return len(vm.swapped) }
