// Package vmm models the hypervisor: virtual machines with KVM-style
// memory slots (Figure 10), nested page tables, VMM direct-segment
// creation with boot-time contiguous reservation (§VI.A), host memory
// compaction (§IV), the VMM side of the self-ballooning protocol
// (§VI.C), content-based page sharing (§IX.E), shadow paging (§IX.D),
// and the Table II/III mode capability and transition policies.
package vmm

import (
	"errors"
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/pagetable"
	"vdirect/internal/physmem"
	"vdirect/internal/segment"
)

// Errors surfaced by VMM operations.
var (
	ErrHostFragmented = errors.New("vmm: host physical memory too fragmented for a VMM segment")
	ErrNoBacking      = errors.New("vmm: guest physical range not backed")
	ErrBadNestedSize  = errors.New("vmm: operation requires 4K nested pages")
)

// Host owns the machine's physical memory and its VMs.
type Host struct {
	Mem *physmem.Memory
	vms []*VM
	// owners maps each host frame to the (vm, gpa) backing it, so host
	// compaction can repair nested mappings. Indexed by frame number and
	// packed pointer-free (ownerWord) so the array — one word per host
	// frame, easily megabytes on a dense host — costs the garbage
	// collector nothing to scan. Zero means unowned (free, page-table
	// page, or VMM-internal).
	owners []uint64
	// ownerVMs resolves the VM index stored in an owner word. Slots are
	// stable for a VM's lifetime on this host and recycled through
	// freeIDs after destroy/migrate, so owner words never dangle.
	ownerVMs []*VM
	freeIDs  []int
	cb       Callbacks
}

// Callbacks notifies an embedding host layer (internal/host) of VMM
// memory operations that change which host frames back which guest
// pages, so it can keep MMU caches, escape filters, and per-guest
// accounting coherent. All fields are optional; callbacks run
// synchronously on the operation's goroutine, after the VMM's own
// bookkeeping for the page is complete.
type Callbacks struct {
	// Ballooned fires for each guest physical page whose host backing
	// was released by Balloon.
	Ballooned func(vm *VM, gpa uint64)
	// Hotplugged fires after HotplugAdd successfully backs a new guest
	// physical range.
	Hotplugged func(vm *VM, r addr.Range)
	// Unplugged fires for each guest physical page whose backing
	// HotplugRemove released.
	Unplugged func(vm *VM, gpa uint64)
	// Shared fires for each guest page remapped onto a deduplicated
	// frame by ScanAndShare (the duplicate whose private frame was
	// freed, not the canonical copy).
	Shared func(vm *VM, gpa uint64)
	// CoWBroken fires when WriteFault gives a VM a private copy.
	CoWBroken func(vm *VM, gpa uint64)
	// Migrated fires once a live migration completes, with the
	// registered destination VM.
	Migrated func(vm *VM, rep MigrationReport)
}

// SetCallbacks installs the host-layer callback seam.
func (h *Host) SetCallbacks(cb Callbacks) { h.cb = cb }

// Owner words pack (vm index, guest page frame) into one uint64:
// bit 63 valid, bits 62:40 the VM's ownerVMs index, bits 39:0 the guest
// page frame number (gpa>>12; the model's 2^52-byte address space needs
// exactly 40 frame bits).
const (
	ownerValid   = uint64(1) << 63
	ownerIDShift = 40
	ownerIDMask  = 1<<23 - 1
	ownerGPBits  = uint64(1)<<ownerIDShift - 1
)

func ownerWord(id int, gpa uint64) uint64 {
	return ownerValid | uint64(id)<<ownerIDShift | gpa>>addr.PageShift4K
}

// ownerRef decodes an owner word; the zero word decodes to (nil, 0).
func (h *Host) ownerRef(w uint64) (*VM, uint64) {
	if w == 0 {
		return nil, 0
	}
	return h.ownerVMs[w>>ownerIDShift&ownerIDMask], (w & ownerGPBits) << addr.PageShift4K
}

// acquireOwnerID registers vm in the owner-word index space.
func (h *Host) acquireOwnerID(vm *VM) {
	if n := len(h.freeIDs); n > 0 {
		vm.id = h.freeIDs[n-1]
		h.freeIDs = h.freeIDs[:n-1]
		h.ownerVMs[vm.id] = vm
		return
	}
	vm.id = len(h.ownerVMs)
	if vm.id > ownerIDMask {
		panic("vmm: VM index overflows owner word")
	}
	h.ownerVMs = append(h.ownerVMs, vm)
}

// releaseOwnerID recycles vm's slot; no owner word may reference it.
func (h *Host) releaseOwnerID(vm *VM) {
	h.ownerVMs[vm.id] = nil
	h.freeIDs = append(h.freeIDs, vm.id)
}

// NewHost creates a host machine with size bytes of physical memory.
func NewHost(size uint64) *Host {
	mem := physmem.New(physmem.Config{Name: "host", Size: size})
	return &Host{
		Mem:    mem,
		owners: make([]uint64, mem.Frames()),
	}
}

// VMs returns the host's virtual machines.
func (h *Host) VMs() []*VM { return h.vms }

// OwnerVM returns the VM whose guest page a host frame backs, and the
// guest physical address it backs. The second result is false for
// unowned frames (free, page-table pages, VMM-internal).
func (h *Host) OwnerVM(frame uint64) (*VM, uint64, bool) {
	if frame >= uint64(len(h.owners)) {
		return nil, 0, false
	}
	vm, gpa := h.ownerRef(h.owners[frame])
	return vm, gpa, vm != nil
}

// MemorySlot maps a contiguous guest physical range to host virtual
// addresses of the VMM process (Figure 10). KVM keeps two large slots:
// [0, 4GB) and [4GB, ∞).
type MemorySlot struct {
	GPA addr.Range
	// HVA is the modeled host-virtual base the slot maps to; it makes
	// the gPA→hVA→hPA chain of Figure 10 explicit.
	HVA uint64
}

// VMConfig configures a new virtual machine.
type VMConfig struct {
	Name string
	// MemorySize is the guest physical memory size.
	MemorySize uint64
	// IOGap carves the x86-64 I/O gap out of guest physical memory.
	IOGap bool
	// NestedPageSize is the page size the VMM uses for gPA→hPA
	// mappings (the second element of configurations like 4K+2M).
	NestedPageSize addr.PageSize
	// ContiguousBacking requests one contiguous host physical region
	// for the whole guest (the §VI.A boot-time reservation), the
	// precondition for a VMM segment.
	ContiguousBacking bool
}

// VM is one virtual machine.
type VM struct {
	Name     string
	host     *Host
	GuestMem *physmem.Memory
	// NPT is the nested page table (gPA→hPA), allocated in host memory.
	NPT *pagetable.Table
	// Slots are the KVM memory slots.
	Slots []MemorySlot

	cfg VMConfig
	// id is this VM's slot in host.ownerVMs while registered there.
	id int
	// vmmSeg holds the VM's BASE_V/LIMIT_V/OFFSET_V when enabled.
	vmmSeg segment.Registers
	// contig records the host base when backing is one contiguous run;
	// contigSize is how much of guest physical memory that run covers
	// (memory hotplugged after the boot-time reservation is backed by
	// scattered frames and must stay outside the VMM segment, §VI.C).
	contig     bool
	hostBase   uint64
	contigSize uint64
	// content maps a gPA page to its content hash (page-sharing model).
	content map[uint64]uint64
	// sharedFrames marks host frames mapped copy-on-write into this VM.
	sharedFrames map[uint64]bool
	cowBreaks    uint64
	// swapped tracks gPAs whose backing the VMM paged out.
	swapped map[uint64]struct{}
	swapIns uint64
}

// CreateVM builds a VM and eagerly backs all usable guest physical
// memory with host memory at the configured nested page size.
func (h *Host) CreateVM(cfg VMConfig) (*VM, error) {
	if cfg.MemorySize == 0 || cfg.MemorySize%addr.PageSize4K != 0 {
		return nil, fmt.Errorf("vmm: bad memory size %#x", cfg.MemorySize)
	}
	vm := &VM{
		Name:         cfg.Name,
		host:         h,
		GuestMem:     physmem.New(physmem.Config{Name: cfg.Name, Size: cfg.MemorySize, IOGap: cfg.IOGap}),
		cfg:          cfg,
		content:      make(map[uint64]uint64),
		sharedFrames: make(map[uint64]bool),
	}
	npt, err := pagetable.New(h.Mem)
	if err != nil {
		return nil, fmt.Errorf("vmm: creating nested page table: %w", err)
	}
	vm.NPT = npt
	h.acquireOwnerID(vm)
	if err := vm.backAll(); err != nil {
		// Roll back whatever backing was installed before the failure
		// (host OOM mid-backing is routine on a dense host), so a failed
		// CreateVM leaks no host frames or table pages.
		vm.releaseAll()
		h.releaseOwnerID(vm)
		return nil, err
	}
	vm.buildSlots()
	h.vms = append(h.vms, vm)
	return vm, nil
}

// releaseAll frees every host frame registered to the VM and destroys
// its nested page table. It is the teardown half of backAll, used to
// roll back a partially built or partially migrated VM.
func (vm *VM) releaseAll() {
	type page struct {
		gpa, hpa uint64
		size     addr.PageSize
	}
	var pages []page
	vm.NPT.VisitLeaves(func(gpa, hpa uint64, s addr.PageSize) bool {
		pages = append(pages, page{gpa, hpa, s})
		return true
	})
	for _, p := range pages {
		if vm.NPT.Unmap(p.gpa, p.size) != nil {
			continue
		}
		vm.unregisterBacking(p.hpa, p.size.Bytes())
		for off := uint64(0); off < p.size.Bytes(); off += addr.PageSize4K {
			vm.host.Mem.FreeFrame(physmem.AddrToFrame(p.hpa + off))
		}
	}
	vm.NPT.Destroy()
}

// DestroyVM tears a VM down: every host frame backing it is freed, its
// nested table destroyed, and the VM removed from the host. A VM
// participating in copy-on-write sharing cannot be destroyed (freeing
// a canonical frame would strand the other VMs mapping it); break
// sharing first.
func (h *Host) DestroyVM(vm *VM) error {
	if len(vm.sharedFrames) > 0 {
		return ErrSharedBacking
	}
	vm.releaseAll()
	h.removeVM(vm)
	return nil
}

// buildSlots creates the two KVM slots around the 4GB boundary.
func (vm *VM) buildSlots() {
	size := vm.GuestMem.Size()
	const hvaBase = 0x7f00_0000_0000 // typical mmap region of the VMM process
	if size <= addr.IOGapEnd {
		vm.Slots = []MemorySlot{{GPA: addr.Range{Start: 0, Size: size}, HVA: hvaBase}}
		return
	}
	vm.Slots = []MemorySlot{
		{GPA: addr.Range{Start: 0, Size: addr.IOGapEnd}, HVA: hvaBase},
		{GPA: addr.Range{Start: addr.IOGapEnd, Size: size - addr.IOGapEnd}, HVA: hvaBase + addr.IOGapEnd},
	}
}

// HVAForGPA resolves a guest physical address to the VMM process's
// host virtual address through the memory slots (Figure 10).
func (vm *VM) HVAForGPA(gpa uint64) (uint64, bool) {
	for _, s := range vm.Slots {
		if s.GPA.Contains(gpa) {
			return s.HVA + (gpa - s.GPA.Start), true
		}
	}
	return 0, false
}

// backAll eagerly maps every usable guest frame to host memory.
func (vm *VM) backAll() error {
	if vm.cfg.ContiguousBacking {
		return vm.backContiguous()
	}
	return vm.backChunked()
}

// backContiguous reserves one host run covering the full guest span
// (including a shadow of the I/O gap, so offsets stay uniform) and maps
// usable pages.
func (vm *VM) backContiguous() error {
	frames := vm.GuestMem.Size() >> addr.PageShift4K
	alignFrames := vm.cfg.NestedPageSize.Bytes() >> addr.PageShift4K
	first, err := vm.host.Mem.AllocContiguous(frames, alignFrames)
	if err != nil {
		return ErrHostFragmented
	}
	vm.hostBase = physmem.FrameToAddr(first)
	vm.contig = true
	vm.contigSize = vm.GuestMem.Size()
	if err := vm.mapBacking(0, vm.GuestMem.Size(), func(gpa uint64) uint64 {
		return vm.hostBase + gpa
	}); err != nil {
		// Free the run frames the nested table never mapped (the tail
		// past the failure point); the mapped prefix is released by
		// CreateVM's releaseAll rollback, which only sees mapped pages.
		for f := first; f < first+frames; f++ {
			if vm.host.owners[f] == 0 {
				vm.host.Mem.FreeFrame(f)
			}
		}
		vm.contig = false
		return err
	}
	return nil
}

// backChunked backs guest memory with independently allocated host
// chunks of the nested page size.
func (vm *VM) backChunked() error {
	chunk := vm.cfg.NestedPageSize.Bytes()
	chunkFrames := chunk >> addr.PageShift4K
	if chunkFrames == 1 {
		return vm.backChunked4K()
	}
	for gpa := uint64(0); gpa < vm.GuestMem.Size(); gpa += chunk {
		if vm.gapChunk(gpa, chunk) {
			continue
		}
		first, err := vm.host.Mem.AllocContiguous(chunkFrames, chunkFrames)
		if err != nil {
			return fmt.Errorf("vmm: backing %s at gPA %#x: %w", vm.Name, gpa, err)
		}
		hpa := physmem.FrameToAddr(first)
		if err := vm.NPT.Map(gpa, hpa, vm.cfg.NestedPageSize); err != nil {
			for f := first; f < first+chunkFrames; f++ {
				vm.host.Mem.FreeFrame(f) // unmapped chunk: releaseAll cannot see it
			}
			return err
		}
		vm.registerBacking(gpa, hpa, chunk)
	}
	return nil
}

// backChunked4K is the 4K-chunk fast path: instead of one allocator
// scan per chunk it grabs the lowest available host-frame run and
// consumes it chunk by chunk. AllocRun is frame-for-frame equivalent
// to repeated single-frame allocation, so each gPA chunk lands on the
// exact host frame the per-chunk loop would have picked.
func (vm *VM) backChunked4K() error {
	size := vm.GuestMem.Size()
	var runStart, runLeft uint64
	for gpa := uint64(0); gpa < size; {
		if vm.gapChunk(gpa, addr.PageSize4K) {
			gpa += addr.PageSize4K
			continue
		}
		// The chunks left before the next boundary a skipped chunk could
		// introduce (the I/O gap): both the allocation request and the
		// bulk map below stop there, so no frame is allocated that the
		// per-chunk loop would not have taken.
		limit := size
		if vm.cfg.IOGap && gpa < addr.IOGapStart && addr.IOGapStart < limit {
			limit = addr.IOGapStart
		}
		span := (limit - gpa) >> addr.PageShift4K
		if span == 0 {
			span = 1 // chunk straddling an unaligned boundary
		}
		if runLeft == 0 {
			first, n, err := vm.host.Mem.AllocRun(span)
			if err != nil {
				return fmt.Errorf("vmm: backing %s at gPA %#x: %w", vm.Name, gpa, err)
			}
			runStart, runLeft = first, n
		}
		if span > runLeft {
			span = runLeft
		}
		hpa := physmem.FrameToAddr(runStart)
		// One bulk install for the whole run — page-for-page identical to
		// the old per-page NPT.Map loop, including table-page allocation
		// order, but descending once per 2M span.
		mapped, err := vm.NPT.MapRange4K(gpa, hpa, span)
		vm.registerBacking(gpa, hpa, mapped<<addr.PageShift4K)
		if err != nil {
			for f := runStart + mapped; f < runStart+runLeft; f++ {
				vm.host.Mem.FreeFrame(f) // unmapped run remainder: releaseAll cannot see it
			}
			return err
		}
		gpa += span << addr.PageShift4K
		runStart += span
		runLeft -= span
	}
	return nil
}

// gapChunk reports whether the chunk lies wholly inside the I/O gap.
func (vm *VM) gapChunk(gpa, chunk uint64) bool {
	if !vm.cfg.IOGap {
		return false
	}
	return gpa >= addr.IOGapStart && gpa+chunk <= addr.IOGapEnd
}

// mapBacking installs nested mappings for [gpaStart, gpaStart+size) at
// the configured nested page size, skipping the I/O gap, using hpaFor
// to place each chunk.
func (vm *VM) mapBacking(gpaStart, size uint64, hpaFor func(gpa uint64) uint64) error {
	chunk := vm.cfg.NestedPageSize.Bytes()
	for gpa := gpaStart; gpa < gpaStart+size; gpa += chunk {
		if vm.gapChunk(gpa, chunk) {
			continue
		}
		hpa := hpaFor(gpa)
		if err := vm.NPT.Map(gpa, hpa, vm.cfg.NestedPageSize); err != nil {
			return err
		}
		vm.registerBacking(gpa, hpa, chunk)
	}
	return nil
}

func (vm *VM) registerBacking(gpa, hpa, size uint64) {
	for off := uint64(0); off < size; off += addr.PageSize4K {
		vm.host.owners[physmem.AddrToFrame(hpa+off)] = ownerWord(vm.id, gpa+off)
	}
}

func (vm *VM) unregisterBacking(hpa, size uint64) {
	for off := uint64(0); off < size; off += addr.PageSize4K {
		vm.host.owners[physmem.AddrToFrame(hpa+off)] = 0
	}
}

// VMMSegment returns the VM's segment registers (disabled if not set).
func (vm *VM) VMMSegment() segment.Registers { return vm.vmmSeg }

// TryEnableVMMSegment programs BASE_V/LIMIT_V/OFFSET_V when the VM's
// backing is one contiguous host run. Returns ErrHostFragmented when it
// is not — the caller may run host compaction and retry, the Table III
// transition.
func (vm *VM) TryEnableVMMSegment() (segment.Registers, error) {
	if vm.contig {
		// Cover only the linearly backed boot-time reservation: memory
		// hotplugged afterwards is backed by scattered frames and must
		// keep taking the nested paging path.
		vm.vmmSeg = segment.NewRegisters(0, vm.hostBase, vm.contigSize)
		return vm.vmmSeg, nil
	}
	// Attempt relocation into a single free run (the slow path after
	// host compaction has created space).
	frames := vm.GuestMem.Size() >> addr.PageShift4K
	first, err := vm.host.Mem.AllocContiguous(frames, 1)
	if err != nil {
		return segment.Registers{}, ErrHostFragmented
	}
	newBase := physmem.FrameToAddr(first)
	// Migrate every backed page to its linear position and release the
	// old backing.
	type moved struct {
		gpa, oldHPA uint64
		size        addr.PageSize
	}
	var moves []moved
	vm.NPT.VisitLeaves(func(gpa, hpa uint64, s addr.PageSize) bool {
		moves = append(moves, moved{gpa: gpa, oldHPA: hpa, size: s})
		return true
	})
	for _, mv := range moves {
		if err := vm.NPT.Remap(mv.gpa, newBase+mv.gpa); err != nil {
			return segment.Registers{}, err
		}
		vm.unregisterBacking(mv.oldHPA, mv.size.Bytes())
		for off := uint64(0); off < mv.size.Bytes(); off += addr.PageSize4K {
			if err := vm.host.Mem.FreeFrame(physmem.AddrToFrame(mv.oldHPA + off)); err != nil {
				return segment.Registers{}, err
			}
		}
		vm.registerBacking(mv.gpa, newBase+mv.gpa, mv.size.Bytes())
	}
	vm.hostBase = newBase
	vm.contig = true
	vm.contigSize = vm.GuestMem.Size()
	vm.vmmSeg = segment.NewRegisters(0, newBase, vm.GuestMem.Size())
	return vm.vmmSeg, nil
}

// DisableVMMSegment clears the registers (e.g. before VMM swapping).
func (vm *VM) DisableVMMSegment() { vm.vmmSeg = segment.Disabled() }

// Compact runs the host compaction daemon and repairs every affected
// VM's nested mappings. It returns the number of frames relocated.
// Callers must invalidate MMU nested state afterwards.
func (h *Host) Compact() (int, error) {
	moves := h.Mem.Compact()
	for _, mv := range moves {
		w := h.owners[mv.Old]
		refVM, refGPA := h.ownerRef(w)
		if refVM == nil {
			continue // page-table page or other unowned frame: its data
			// structure holds Go pointers, not addresses, so moving the
			// physical frame needs no repair in the model.
		}
		// Only 4K-backed VMs can have individual frames relocated; a
		// frame inside a 2M/1G nested mapping moving alone would split
		// the mapping. The compactor does not know mappings, so repair
		// must re-point the 4K leaf.
		if refVM.cfg.NestedPageSize != addr.Page4K {
			return 0, fmt.Errorf("vmm: compaction moved frame inside a %v nested mapping",
				refVM.cfg.NestedPageSize)
		}
		if err := refVM.NPT.Remap(refGPA, physmem.FrameToAddr(mv.New)); err != nil {
			return 0, fmt.Errorf("vmm: repairing nested mapping after compaction: %w", err)
		}
		h.owners[mv.Old] = 0
		h.owners[mv.New] = w
		if refVM.contig {
			refVM.contig = false // relocation broke linearity
		}
	}
	return len(moves), nil
}

// --- guestos.VMMBackend implementation (self-ballooning, §VI.C) ---

// Balloon receives pinned guest frames from the balloon driver and
// reclaims their host backing.
func (vm *VM) Balloon(frames []uint64) error {
	if vm.cfg.NestedPageSize != addr.Page4K {
		return ErrBadNestedSize
	}
	for _, gf := range frames {
		gpa := physmem.FrameToAddr(gf)
		hpa, _, ok := vm.NPT.Translate(gpa)
		if !ok {
			return fmt.Errorf("%w: gPA %#x", ErrNoBacking, gpa)
		}
		if err := vm.NPT.Unmap(gpa, addr.Page4K); err != nil {
			return err
		}
		vm.unregisterBacking(hpa, addr.PageSize4K)
		if err := vm.host.Mem.FreeFrame(physmem.AddrToFrame(hpa)); err != nil {
			return err
		}
		vm.contig = false
		if vm.host.cb.Ballooned != nil {
			vm.host.cb.Ballooned(vm, gpa)
		}
	}
	return nil
}

// HotplugAdd extends guest physical memory by size bytes (KVM: extends
// the high slot) and backs it with host frames; the new gPA range is
// contiguous even though its host backing need not be.
func (vm *VM) HotplugAdd(size uint64) (addr.Range, error) {
	if vm.cfg.NestedPageSize != addr.Page4K {
		return addr.Range{}, ErrBadNestedSize
	}
	r, err := vm.GuestMem.Grow(size)
	if err != nil {
		return addr.Range{}, err
	}
	for gpa := r.Start; gpa < r.End(); gpa += addr.PageSize4K {
		f, err := vm.host.Mem.AllocFrame()
		if err != nil {
			vm.rollbackHotplug(r, gpa)
			return addr.Range{}, fmt.Errorf("vmm: backing hotplug: %w", err)
		}
		hpa := physmem.FrameToAddr(f)
		if err := vm.NPT.Map(gpa, hpa, addr.Page4K); err != nil {
			vm.host.Mem.FreeFrame(f)
			vm.rollbackHotplug(r, gpa)
			return addr.Range{}, err
		}
		vm.registerBacking(gpa, hpa, addr.PageSize4K)
	}
	vm.buildSlots()
	// Extend the high slot to cover the growth (§VI.C: "We extend the
	// second KVM slot by the same amount of memory").
	if vm.host.cb.Hotplugged != nil {
		vm.host.cb.Hotplugged(vm, r)
	}
	return r, nil
}

// rollbackHotplug releases the backing installed for [r.Start, upTo)
// after a mid-loop HotplugAdd failure, so a failed hotplug leaks no
// host frames. The grown guest range stays offline (it was never
// returned to the caller, so the guest cannot online it).
func (vm *VM) rollbackHotplug(r addr.Range, upTo uint64) {
	for gpa := r.Start; gpa < upTo; gpa += addr.PageSize4K {
		hpa, _, ok := vm.NPT.Translate(gpa)
		if !ok {
			continue
		}
		if vm.NPT.Unmap(gpa, addr.Page4K) != nil {
			continue
		}
		vm.unregisterBacking(hpa, addr.PageSize4K)
		vm.host.Mem.FreeFrame(physmem.AddrToFrame(hpa))
	}
}

// RetirePage models a hard memory fault in a page of the VM's backing
// (§V): the failing host frame is marked bad and freed (the allocator
// never hands out bad frames again), a healthy replacement is
// allocated, and the nested mapping repointed at it. Returns the
// replacement hPA. For a segment-mapped guest this is the event that
// forces an escape: the caller inserts the page into the escape filter
// and invalidates nested TLB state.
func (vm *VM) RetirePage(gpa uint64) (uint64, error) {
	gpa = addr.PageBase(gpa, addr.Page4K)
	hpa, s, ok := vm.NPT.Translate(gpa)
	if !ok {
		return 0, fmt.Errorf("%w: gPA %#x", ErrNoBacking, gpa)
	}
	if s != addr.Page4K {
		return 0, ErrBadNestedSize
	}
	oldFrame := physmem.AddrToFrame(hpa)
	if vm.sharedFrames[oldFrame] {
		return 0, fmt.Errorf("vmm: retiring shared frame %d: break sharing first", oldFrame)
	}
	f, err := vm.host.Mem.AllocFrame()
	if err != nil {
		return 0, fmt.Errorf("vmm: retire replacement: %w", err)
	}
	newHPA := physmem.FrameToAddr(f)
	if err := vm.NPT.Remap(gpa, newHPA); err != nil {
		vm.host.Mem.FreeFrame(f)
		return 0, err
	}
	vm.unregisterBacking(hpa, addr.PageSize4K)
	vm.registerBacking(gpa, newHPA, addr.PageSize4K)
	if err := vm.host.Mem.MarkBad(oldFrame); err != nil {
		return 0, err
	}
	if err := vm.host.Mem.FreeFrame(oldFrame); err != nil {
		return 0, err
	}
	vm.contig = false
	return newHPA, nil
}

// HotplugRemove releases the host backing of an unplugged guest range.
func (vm *VM) HotplugRemove(r addr.Range) error {
	if vm.cfg.NestedPageSize != addr.Page4K {
		return ErrBadNestedSize
	}
	for gpa := r.Start; gpa < r.End(); gpa += addr.PageSize4K {
		hpa, _, ok := vm.NPT.Translate(gpa)
		if !ok {
			continue // already unbacked (e.g. I/O gap shadow)
		}
		if err := vm.NPT.Unmap(gpa, addr.Page4K); err != nil {
			return err
		}
		vm.unregisterBacking(hpa, addr.PageSize4K)
		if err := vm.host.Mem.FreeFrame(physmem.AddrToFrame(hpa)); err != nil {
			return err
		}
		vm.contig = false
		if vm.host.cb.Unplugged != nil {
			vm.host.cb.Unplugged(vm, gpa)
		}
	}
	return nil
}

// GrowMem extends the host's physical memory by size bytes of offline
// memory (machine-level DIMM hotplug) and the frame-owner registry with
// it. The caller onlines the returned range via h.Mem.Online.
func (h *Host) GrowMem(size uint64) (addr.Range, error) {
	r, err := h.Mem.Grow(size)
	if err != nil {
		return addr.Range{}, err
	}
	h.owners = append(h.owners, make([]uint64, size>>addr.PageShift4K)...)
	return r, nil
}

// BackedFrames returns how many host frames currently back this VM.
func (vm *VM) BackedFrames() uint64 {
	var n uint64
	want := ownerValid | uint64(vm.id)<<ownerIDShift
	for _, w := range vm.host.owners {
		if w&^ownerGPBits == want {
			n++
		}
	}
	return n
}
