// Content-based page sharing (§IX.E): the VMM scans guest memory for
// pages with identical contents, keeps one host copy, and maps the rest
// copy-on-write. Page contents are modeled by a 64-bit content hash per
// guest page; identical hashes mean identical contents.

package vmm

import (
	"fmt"
	"sort"

	"vdirect/internal/addr"
	"vdirect/internal/physmem"
)

// SetPageContent records the content hash of a guest page, the model's
// stand-in for writing data into it.
func (vm *VM) SetPageContent(gpa uint64, hash uint64) {
	vm.content[addr.PageBase(gpa, addr.Page4K)] = hash
}

// PageContent returns a page's content hash (0 = untouched/zero page).
func (vm *VM) PageContent(gpa uint64) uint64 {
	return vm.content[addr.PageBase(gpa, addr.Page4K)]
}

// SharingReport summarizes one scan-and-share pass.
type SharingReport struct {
	ScannedPages uint64
	// SharedPages is the number of guest pages now mapped to a
	// deduplicated host frame.
	SharedPages uint64
	// SavedFrames is the number of host frames reclaimed.
	SavedFrames uint64
	// TotalFrames is the number of frames scanned across all VMs.
	TotalFrames uint64
}

// SavedFraction returns the fraction of scanned memory reclaimed — the
// §IX.E metric (paper: <3% for big-memory workload pairs).
func (r SharingReport) SavedFraction() float64 {
	if r.TotalFrames == 0 {
		return 0
	}
	return float64(r.SavedFrames) / float64(r.TotalFrames)
}

// ScanAndShare performs one content-based sharing pass over the given
// VMs. VM segments preclude sharing inside their covered range (§IX.E:
// "VMM segments preclude page sharing"), so covered pages are skipped.
// Only 4K nested mappings participate.
func (h *Host) ScanAndShare(vms []*VM) (SharingReport, error) {
	var rep SharingReport
	type loc struct {
		vm  *VM
		gpa uint64
	}
	byHash := make(map[uint64][]loc)
	for _, vm := range vms {
		seg := vm.VMMSegment()
		vm.NPT.VisitLeaves(func(gpa, hpa uint64, s addr.PageSize) bool {
			if s != addr.Page4K {
				return true
			}
			rep.TotalFrames++
			if seg.Enabled() && seg.Contains(gpa) {
				return true // segment-covered: not shareable
			}
			rep.ScannedPages++
			hash, ok := vm.content[gpa]
			if !ok {
				return true // content unknown: conservatively unique
			}
			byHash[hash] = append(byHash[hash], loc{vm: vm, gpa: gpa})
			return true
		})
	}
	// Process hashes in sorted order so the sequence of frees and
	// callbacks is deterministic (the end state already is; map order
	// would leak into callback ordering and free-list history).
	hashes := make([]uint64, 0, len(byHash))
	for h := range byHash {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	for _, hash := range hashes {
		locs := byHash[hash]
		if len(locs) < 2 {
			continue
		}
		// Keep the first copy; remap the rest to it CoW.
		canonical := locs[0]
		canonHPA, _, ok := canonical.vm.NPT.Translate(canonical.gpa)
		if !ok {
			return rep, fmt.Errorf("vmm: sharing scan lost canonical page at gPA %#x", canonical.gpa)
		}
		canonical.vm.sharedFrames[physmem.AddrToFrame(canonHPA)] = true
		for _, l := range locs[1:] {
			oldHPA, _, ok := l.vm.NPT.Translate(l.gpa)
			if !ok {
				return rep, fmt.Errorf("vmm: sharing scan lost page at gPA %#x", l.gpa)
			}
			if oldHPA == canonHPA {
				continue // already shared
			}
			if err := l.vm.NPT.Remap(l.gpa, canonHPA); err != nil {
				return rep, err
			}
			l.vm.unregisterBacking(oldHPA, addr.PageSize4K)
			if err := h.Mem.FreeFrame(physmem.AddrToFrame(oldHPA)); err != nil {
				return rep, err
			}
			l.vm.sharedFrames[physmem.AddrToFrame(canonHPA)] = true
			l.vm.contig = false
			rep.SavedFrames++
			rep.SharedPages++
			if h.cb.Shared != nil {
				h.cb.Shared(l.vm, l.gpa)
			}
		}
	}
	return rep, nil
}

// WriteFault handles a guest store to gpa: if the page is mapped to a
// shared frame, the VMM breaks sharing copy-on-write by giving this VM
// a private copy. Returns true when a CoW break occurred.
func (vm *VM) WriteFault(gpa uint64) (bool, error) {
	gpa = addr.PageBase(gpa, addr.Page4K)
	hpa, s, ok := vm.NPT.Translate(gpa)
	if !ok {
		return false, fmt.Errorf("%w: gPA %#x", ErrNoBacking, gpa)
	}
	if s != addr.Page4K || !vm.sharedFrames[physmem.AddrToFrame(hpa)] {
		return false, nil
	}
	f, err := vm.host.Mem.AllocFrame()
	if err != nil {
		return false, fmt.Errorf("vmm: CoW break: %w", err)
	}
	newHPA := physmem.FrameToAddr(f)
	if err := vm.NPT.Remap(gpa, newHPA); err != nil {
		return false, err
	}
	delete(vm.sharedFrames, physmem.AddrToFrame(hpa))
	vm.registerBacking(gpa, newHPA, addr.PageSize4K)
	vm.cowBreaks++
	if vm.host.cb.CoWBroken != nil {
		vm.host.cb.CoWBroken(vm, gpa)
	}
	return true, nil
}

// CoWBreaks returns how many copy-on-write faults this VM has taken.
func (vm *VM) CoWBreaks() uint64 { return vm.cowBreaks }
