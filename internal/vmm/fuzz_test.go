package vmm

import (
	"fmt"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/physmem"
)

// FuzzHostMemoryOps drives randomized host memory-management sequences
// — ballooning, memory hotplug add/remove, host compaction, VMM
// segment enablement, multi-VM creation — and asserts the structural
// invariants the translation stack depends on: every nested page-table
// leaf targets a host frame that is actually allocated, no host frame
// backs two guest pages, the owner bookkeeping agrees with the NPTs,
// and an enabled VMM segment agrees with the nested page table on
// every covered gPA.
func FuzzHostMemoryOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 10, 1, 20, 2})
	f.Add([]byte{1, 4, 4, 0, 200, 3, 1, 15, 2, 0, 7})
	f.Add([]byte{0, 3, 2, 2, 1, 1, 1, 0, 0, 4, 4, 3, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<10 {
			return
		}
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		host := NewHost(96 << 20)
		contig := next()&1 == 0
		vms := make([]*VM, 0, 3)
		newVM := func() {
			vm, err := host.CreateVM(VMConfig{
				Name:              "fuzz",
				MemorySize:        8 << 20,
				NestedPageSize:    addr.Page4K,
				ContiguousBacking: contig,
			})
			if err != nil {
				return // host memory exhausted or fragmented: legal
			}
			vms = append(vms, vm)
		}
		newVM()
		var hotplugged []addr.Range

		for pos < len(data) {
			if len(vms) == 0 {
				break
			}
			vm := vms[int(next())%len(vms)]
			switch next() % 6 {
			case 0: // balloon a guest frame
				f := uint64(next()) % (vm.GuestMem.Size() >> addr.PageShift4K)
				_ = vm.Balloon([]uint64{f}) // already ballooned: legal error
			case 1: // hotplug add
				size := (uint64(next())%8 + 1) << 20
				if r, err := vm.HotplugAdd(size); err == nil {
					hotplugged = append(hotplugged, r)
				}
			case 2: // hotplug remove the oldest added range
				if len(hotplugged) > 0 {
					_ = vm.HotplugRemove(hotplugged[0])
					hotplugged = hotplugged[1:]
				}
			case 3: // host compaction
				if _, err := host.Compact(); err != nil {
					t.Fatalf("compact: %v", err)
				}
			case 4: // try to (re)enable the VMM segment
				seg, err := vm.TryEnableVMMSegment()
				if err != nil {
					break // fragmented: legal error
				}
				// A freshly enabled segment must agree with the nested
				// page table on every covered gPA: linear backing is the
				// whole point of the registers. (Later balloon/compact
				// relocations are allowed to diverge — the MMU's escape
				// filters cover those — so this is only asserted here.)
				for gpa := seg.Base; gpa < seg.Limit; gpa += addr.PageSize4K {
					hpa, _, ok := vm.NPT.Translate(gpa)
					if !ok {
						continue // ballooned hole: escaped at the MMU layer
					}
					if hpa != seg.Translate(gpa) {
						t.Fatalf("fresh segment says gPA %#x → %#x, NPT says %#x",
							gpa, seg.Translate(gpa), hpa)
					}
				}
			case 5:
				if len(vms) < 3 {
					newVM()
				}
			}
		}

		// Structural invariants across all VMs.
		backing := make(map[uint64]int) // host frame → owner VM index
		for i, vm := range vms {
			leaves := uint64(0)
			var bad string
			vm.NPT.VisitLeaves(func(gpa, hpa uint64, s addr.PageSize) bool {
				leaves++
				f := physmem.AddrToFrame(hpa)
				if !host.Mem.IsAllocated(f) {
					bad = fmt.Sprintf("vm %d: gPA %#x backed by unallocated host frame %d", i, gpa, f)
					return false
				}
				if owner, dup := backing[f]; dup {
					bad = fmt.Sprintf("vm %d: host frame %d double-backed (also vm %d)", i, f, owner)
					return false
				}
				backing[f] = i
				return true
			})
			if bad != "" {
				t.Fatal(bad)
			}
			if got := vm.BackedFrames(); got != leaves {
				t.Fatalf("vm %d: owner bookkeeping says %d backed frames, NPT has %d leaves", i, got, leaves)
			}
		}
	})
}
