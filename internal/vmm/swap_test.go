package vmm

import (
	"testing"
)

func TestVMMSwapRoundTrip(t *testing.T) {
	h, vm := newHostVM(t, 64, 16, VMConfig{})
	hostFree := h.Mem.FreeFrames()
	gpas := []uint64{0x10000, 0x20000, 0x30000}
	n, err := vm.SwapOutGuestPages(gpas)
	if err != nil || n != 3 {
		t.Fatalf("swap out: n=%d err=%v", n, err)
	}
	if h.Mem.FreeFrames() != hostFree+3 {
		t.Error("host frames not reclaimed")
	}
	if vm.VMMSwappedPages() != 3 {
		t.Errorf("swapped = %d", vm.VMMSwappedPages())
	}
	if _, _, ok := vm.NPT.Translate(0x10000); ok {
		t.Fatal("swapped page still mapped")
	}
	// The nested fault handler pages it back in.
	handled, err := vm.HandleNestedFault(0x10123)
	if err != nil || !handled {
		t.Fatalf("swap in: handled=%v err=%v", handled, err)
	}
	if _, _, ok := vm.NPT.Translate(0x10000); !ok {
		t.Fatal("swap-in did not remap")
	}
	if vm.VMMSwapIns() != 1 || vm.VMMSwappedPages() != 2 {
		t.Errorf("counters: ins=%d swapped=%d", vm.VMMSwapIns(), vm.VMMSwappedPages())
	}
	// A genuine hole is not swap-related.
	handled, err = vm.HandleNestedFault(vm.GuestMem.Size() + 0x1000)
	if err != nil || handled {
		t.Errorf("phantom fault: handled=%v err=%v", handled, err)
	}
	// Re-swapping an unbacked page is a no-op, not an error.
	if n, err := vm.SwapOutGuestPages([]uint64{0x20000}); err != nil || n != 0 {
		t.Errorf("re-swap: n=%d err=%v", n, err)
	}
}

func TestVMMSwapPinnedBySegment(t *testing.T) {
	// Table II: VMM swapping is limited in VMM/Dual Direct — segment-
	// covered gPAs are pinned.
	_, vm := newHostVM(t, 128, 16, VMConfig{ContiguousBacking: true})
	if _, err := vm.TryEnableVMMSegment(); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.SwapOutGuestPages([]uint64{0x10000}); err == nil {
		t.Fatal("swapped a segment-pinned page")
	}
	// Disable the segment (mode transition) and swapping works again.
	vm.DisableVMMSegment()
	if n, err := vm.SwapOutGuestPages([]uint64{0x10000}); err != nil || n != 1 {
		t.Fatalf("post-disable swap: n=%d err=%v", n, err)
	}
}
