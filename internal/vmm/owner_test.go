package vmm

import (
	"testing"

	"vdirect/internal/addr"
)

// TestOwnerIDReuse pins the owner-word index recycling: a destroyed
// VM's ID returns to the free list and the next CreateVM takes it,
// keeping the packed owner words dense instead of growing the VM table
// forever under create/destroy churn.
func TestOwnerIDReuse(t *testing.T) {
	h, vm1 := newHostVM(t, 64, 8, VMConfig{Name: "a"})
	id := vm1.id
	if h.ownerVMs[id] != vm1 {
		t.Fatalf("owner table slot %d does not hold vm1", id)
	}
	if err := h.DestroyVM(vm1); err != nil {
		t.Fatal(err)
	}
	if h.ownerVMs[id] != nil {
		t.Fatalf("destroyed VM still registered in owner slot %d", id)
	}
	cfg := VMConfig{Name: "b", MemorySize: 8 << 20, NestedPageSize: addr.Page4K}
	vm2, err := h.CreateVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vm2.id != id {
		t.Fatalf("new VM got id %d, want recycled %d", vm2.id, id)
	}
	if h.ownerVMs[id] != vm2 {
		t.Fatalf("owner table slot %d does not hold vm2", id)
	}
}

// TestCreateVMRejectsBadMemorySize: zero and non-page-multiple sizes
// fail before any host state is touched.
func TestCreateVMRejectsBadMemorySize(t *testing.T) {
	h := NewHost(64 << 20)
	for _, size := range []uint64{0, 0x1001} {
		if _, err := h.CreateVM(VMConfig{Name: "bad", MemorySize: size}); err == nil {
			t.Fatalf("CreateVM accepted memory size %#x", size)
		}
	}
	if len(h.vms) != 0 || len(h.ownerVMs) != 0 {
		t.Fatal("failed CreateVM left host state behind")
	}
}
