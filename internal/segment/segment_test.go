package segment

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDisabled(t *testing.T) {
	r := Disabled()
	if r.Enabled() {
		t.Error("Disabled() enabled")
	}
	if r.Contains(0) {
		t.Error("disabled segment contains address")
	}
	if !strings.Contains(r.String(), "disabled") {
		t.Errorf("String = %q", r.String())
	}
	// BASE == LIMIT nonzero is also disabled (§III.B nullification).
	r2 := Registers{Base: 0x1000, Limit: 0x1000, Offset: 5}
	if r2.Enabled() || r2.Contains(0x1000) {
		t.Error("BASE==LIMIT segment not disabled")
	}
}

func TestContainsBounds(t *testing.T) {
	r := NewRegisters(0x10000, 0x90000, 0x4000)
	if r.Contains(0xffff) {
		t.Error("below BASE included")
	}
	if !r.Contains(0x10000) {
		t.Error("BASE excluded")
	}
	if !r.Contains(0x13fff) {
		t.Error("LIMIT-1 excluded")
	}
	if r.Contains(0x14000) {
		t.Error("LIMIT included")
	}
}

func TestTranslateForwardAndBackward(t *testing.T) {
	// Target above source.
	r := NewRegisters(0x10000, 0x90000, 0x4000)
	if got := r.Translate(0x10123); got != 0x90123 {
		t.Errorf("forward translate = %#x", got)
	}
	// Target below source (negative offset via wraparound).
	r2 := NewRegisters(0x90000, 0x10000, 0x4000)
	if got := r2.Translate(0x90123); got != 0x10123 {
		t.Errorf("backward translate = %#x", got)
	}
}

func TestRanges(t *testing.T) {
	r := NewRegisters(0x10000, 0x90000, 0x4000)
	if rr := r.Range(); rr.Start != 0x10000 || rr.Size != 0x4000 {
		t.Errorf("Range = %v", rr)
	}
	if tr := r.TargetRange(); tr.Start != 0x90000 || tr.Size != 0x4000 {
		t.Errorf("TargetRange = %v", tr)
	}
	if !strings.Contains(r.String(), "0x10000") {
		t.Errorf("String = %q", r.String())
	}
}

func TestTranslatePreservesOffsetWithinSegment(t *testing.T) {
	f := func(srcSeed, dstSeed, sizeSeed, probeSeed uint64) bool {
		size := sizeSeed%(1<<30) + 1
		src := srcSeed % (1 << 40)
		dst := dstSeed % (1 << 40)
		r := NewRegisters(src, dst, size)
		probe := src + probeSeed%size
		if !r.Contains(probe) {
			return false
		}
		return r.Translate(probe)-dst == probe-src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVMExitSaveRestore(t *testing.T) {
	p := Pair{
		Guest: NewRegisters(0x1000, 0x2000, 0x1000),
		VMM:   NewRegisters(0x0, 0x8000000, 0x4000000),
	}
	saved := p.SaveOnVMExit()
	if p.VMM.Enabled() {
		t.Error("VMM registers live after VM exit")
	}
	if !p.Guest.Enabled() {
		t.Error("guest registers clobbered by VM exit")
	}
	p.RestoreOnVMEntry(saved)
	if !p.VMM.Enabled() || p.VMM.Offset != 0x8000000-0 {
		t.Error("VMM registers not restored")
	}
}

func TestContextSwitchSaveRestore(t *testing.T) {
	p := Pair{
		Guest: NewRegisters(0x1000, 0x2000, 0x1000),
		VMM:   NewRegisters(0x0, 0x8000000, 0x4000000),
	}
	saved := p.SaveOnContextSwitch()
	if p.Guest.Enabled() {
		t.Error("guest registers live after context switch")
	}
	if !p.VMM.Enabled() {
		t.Error("VMM registers clobbered by context switch")
	}
	p.RestoreOnContextSwitch(saved)
	if !p.Guest.Enabled() {
		t.Error("guest registers not restored")
	}
}
