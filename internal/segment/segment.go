// Package segment implements direct-segment registers (§II.B, §III).
//
// A direct segment maps a contiguous range of a source address space to
// a contiguous range of a target space with three registers:
//
//	BASE   — first source address covered
//	LIMIT  — first source address past the covered range
//	OFFSET — target = source + OFFSET for covered addresses
//
// The proposed hardware has two independent register sets: the guest
// segment (gVA→gPA, controlled by the guest OS per process) and the VMM
// segment (gPA→hPA, controlled by the VMM per VM). Setting BASE == LIMIT
// disables a set, which is how VMM Direct nullifies the guest segment
// and Guest Direct nullifies the VMM segment (§III.B, §III.C).
package segment

import (
	"fmt"

	"vdirect/internal/addr"
)

// Registers is one BASE/LIMIT/OFFSET register set. The zero value is a
// disabled segment (BASE == LIMIT == 0).
type Registers struct {
	Base   uint64
	Limit  uint64
	Offset uint64 // two's-complement addend; may represent negative deltas
}

// Disabled returns a nulled register set (BASE == LIMIT).
func Disabled() Registers { return Registers{} }

// NewRegisters builds a register set mapping [srcBase, srcBase+size) to
// [dstBase, dstBase+size).
func NewRegisters(srcBase, dstBase, size uint64) Registers {
	return Registers{
		Base:   srcBase,
		Limit:  srcBase + size,
		Offset: dstBase - srcBase, // wraps mod 2^64 for dst < src
	}
}

// Enabled reports whether the segment covers any address.
func (r Registers) Enabled() bool { return r.Limit > r.Base }

// Contains performs the hardware base-bound check BASE <= a < LIMIT.
func (r Registers) Contains(a uint64) bool { return a >= r.Base && a < r.Limit }

// Translate applies the segment: target = a + OFFSET. Callers must have
// established Contains(a); hardware does both in one cycle, and the
// simulator charges that cycle at the MMU layer.
func (r Registers) Translate(a uint64) uint64 { return a + r.Offset }

// Range returns the covered source range.
func (r Registers) Range() addr.Range {
	return addr.Range{Start: r.Base, Size: r.Limit - r.Base}
}

// TargetRange returns the covered target range.
func (r Registers) TargetRange() addr.Range {
	return addr.Range{Start: r.Base + r.Offset, Size: r.Limit - r.Base}
}

func (r Registers) String() string {
	if !r.Enabled() {
		return "segment{disabled}"
	}
	return fmt.Sprintf("segment{[%#x,%#x) +%#x}", r.Base, r.Limit, r.Offset)
}

// Pair is the full architectural state the proposal adds: guest segment
// registers (BASE_G/LIMIT_G/OFFSET_G) and VMM segment registers
// (BASE_V/LIMIT_V/OFFSET_V).
type Pair struct {
	Guest Registers // gVA → gPA
	VMM   Registers // gPA → hPA
}

// SavedState is the register state preserved across VM exits (VMM set)
// and guest context switches (guest set). §III: "On VM-exit/entry,
// hardware must save/restore registers BASE_V, LIMIT_V and OFFSET_V";
// guest registers are per-process state saved by the guest OS.
type SavedState struct {
	Guest Registers
	VMM   Registers
}

// SaveOnVMExit captures the VMM registers (the state hardware preserves
// with other VM state) and clears them for the host context.
func (p *Pair) SaveOnVMExit() SavedState {
	s := SavedState{VMM: p.VMM}
	p.VMM = Disabled()
	return s
}

// RestoreOnVMEntry reinstates VMM registers saved at VM exit.
func (p *Pair) RestoreOnVMEntry(s SavedState) { p.VMM = s.VMM }

// SaveOnContextSwitch captures the guest registers (per-process state)
// and clears them.
func (p *Pair) SaveOnContextSwitch() SavedState {
	s := SavedState{Guest: p.Guest}
	p.Guest = Disabled()
	return s
}

// RestoreOnContextSwitch reinstates guest registers for the incoming
// process.
func (p *Pair) RestoreOnContextSwitch(s SavedState) { p.Guest = s.Guest }
