package addr

import (
	"testing"
	"testing/quick"
)

func TestPageSizeBytes(t *testing.T) {
	cases := []struct {
		s     PageSize
		bytes uint64
		shift uint
		name  string
	}{
		{Page4K, 4096, 12, "4K"},
		{Page2M, 2 << 20, 21, "2M"},
		{Page1G, 1 << 30, 30, "1G"},
	}
	for _, c := range cases {
		if got := c.s.Bytes(); got != c.bytes {
			t.Errorf("%v.Bytes() = %d, want %d", c.s, got, c.bytes)
		}
		if got := c.s.Shift(); got != c.shift {
			t.Errorf("%v.Shift() = %d, want %d", c.s, got, c.shift)
		}
		if got := c.s.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", c.s, got, c.name)
		}
		if got := c.s.Mask(); got != c.bytes-1 {
			t.Errorf("%v.Mask() = %#x, want %#x", c.s, got, c.bytes-1)
		}
	}
}

func TestInvalidPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes() on invalid PageSize did not panic")
		}
	}()
	_ = PageSize(9).Bytes()
}

func TestIndexDecomposition(t *testing.T) {
	// 0x0000_7fff_ffff_f000 has every index = 511.
	v := uint64(VirtualSpan - PageSize4K)
	for lvl := 0; lvl < Levels; lvl++ {
		if got := Index(v, lvl); got != 511 {
			t.Errorf("Index(top, %s) = %d, want 511", LevelName(lvl), got)
		}
	}
	if got := Index(0, LvlPML4); got != 0 {
		t.Errorf("Index(0, PML4) = %d, want 0", got)
	}
	// A single 4K page step changes only the PT index.
	a, b := uint64(0x12345000), uint64(0x12346000)
	if Index(a, LvlPT)+1 != Index(b, LvlPT) {
		t.Errorf("PT index did not advance by one page: %d vs %d",
			Index(a, LvlPT), Index(b, LvlPT))
	}
	for _, lvl := range []int{LvlPML4, LvlPDPT, LvlPD} {
		if Index(a, lvl) != Index(b, lvl) {
			t.Errorf("%s index changed across adjacent pages", LevelName(lvl))
		}
	}
}

func TestIndexReconstruction(t *testing.T) {
	// Recomposing the four indices plus offset must reproduce the address.
	f := func(raw uint64) bool {
		v := raw % VirtualSpan
		var rebuilt uint64
		for lvl := 0; lvl < Levels; lvl++ {
			shift := PageShift4K + 9*(Levels-1-lvl)
			rebuilt |= uint64(Index(v, lvl)) << shift
		}
		rebuilt |= Offset(v, Page4K)
		return rebuilt == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevelNames(t *testing.T) {
	want := []string{"PML4", "PDPT", "PD", "PT"}
	for i, w := range want {
		if got := LevelName(i); got != w {
			t.Errorf("LevelName(%d) = %q, want %q", i, got, w)
		}
	}
	if got := LevelName(7); got != "L7" {
		t.Errorf("LevelName(7) = %q, want L7", got)
	}
}

func TestAlignmentHelpers(t *testing.T) {
	if PageBase(0x12345678, Page4K) != 0x12345000 {
		t.Error("PageBase 4K wrong")
	}
	if PageBase(0x12345678, Page2M) != 0x12200000 {
		t.Error("PageBase 2M wrong")
	}
	if PageNumber(0x12345678, Page4K) != 0x12345 {
		t.Error("PageNumber wrong")
	}
	if Offset(0x12345678, Page4K) != 0x678 {
		t.Error("Offset wrong")
	}
	if !IsAligned(0x200000, Page2M) || IsAligned(0x201000, Page2M) {
		t.Error("IsAligned 2M wrong")
	}
	if AlignUp(5, 4) != 8 || AlignUp(8, 4) != 8 {
		t.Error("AlignUp wrong")
	}
	if AlignDown(5, 4) != 4 || AlignDown(8, 4) != 8 {
		t.Error("AlignDown wrong")
	}
}

func TestAlignProperties(t *testing.T) {
	f := func(v uint64, shiftSeed uint8) bool {
		shift := uint(shiftSeed % 31)
		align := uint64(1) << shift
		v %= 1 << 40
		up, down := AlignUp(v, align), AlignDown(v, align)
		return down <= v && v <= up &&
			up-down < align+align &&
			up%align == 0 && down%align == 0 &&
			up-v < align && v-down < align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIOGap(t *testing.T) {
	if InIOGap(IOGapStart - 1) {
		t.Error("address below gap reported inside")
	}
	if !InIOGap(IOGapStart) || !InIOGap(IOGapEnd-1) {
		t.Error("gap boundary handling wrong")
	}
	if InIOGap(IOGapEnd) {
		t.Error("address above gap reported inside")
	}
	if IOGapSize != 1<<30 {
		t.Errorf("IOGapSize = %d, want 1GB", IOGapSize)
	}
}

func TestRange(t *testing.T) {
	r := Range{Start: 0x1000, Size: 0x2000}
	if r.End() != 0x3000 {
		t.Errorf("End = %#x", r.End())
	}
	if !r.Contains(0x1000) || !r.Contains(0x2fff) {
		t.Error("Contains rejects member")
	}
	if r.Contains(0xfff) || r.Contains(0x3000) {
		t.Error("Contains accepts non-member")
	}
	if r.Empty() {
		t.Error("non-empty range reported empty")
	}
	if !(Range{}).Empty() {
		t.Error("zero range not empty")
	}
	if r.Pages(Page4K) != 2 {
		t.Errorf("Pages = %d, want 2", r.Pages(Page4K))
	}
	if r.String() != "[0x1000, 0x3000)" {
		t.Errorf("String = %q", r.String())
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := Range{Start: 100, Size: 50}
	cases := []struct {
		b    Range
		want bool
	}{
		{Range{Start: 0, Size: 100}, false},  // abuts below
		{Range{Start: 150, Size: 10}, false}, // abuts above
		{Range{Start: 0, Size: 101}, true},
		{Range{Start: 149, Size: 10}, true},
		{Range{Start: 110, Size: 5}, true}, // contained
		{Range{Start: 90, Size: 80}, true}, // containing
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", a, c.b)
		}
	}
}
