// Package addr defines the address types and x86-64 page geometry used
// throughout the simulator.
//
// Three distinct address spaces appear in virtualized translation:
//
//	gVA — guest virtual address   (what a guest application issues)
//	gPA — guest physical address  (what the guest OS believes is RAM)
//	hPA — host physical address   (actual machine RAM)
//
// The types are distinct so that the compiler rejects accidental mixing
// of dimensions, which is exactly the class of bug a 2D page-walk
// simulator is prone to.
package addr

import "fmt"

// GVA is a guest virtual address.
type GVA uint64

// GPA is a guest physical address.
type GPA uint64

// HPA is a host physical address.
type HPA uint64

// VA and PA are used by the unvirtualized (native) translation path.
// Native runs treat the guest virtual space as the process virtual space
// and the guest physical space as machine memory, so they alias GVA/GPA.
type (
	VA = GVA
	PA = GPA
)

// Page sizes supported by x86-64.
const (
	PageShift4K = 12
	PageShift2M = 21
	PageShift1G = 30

	PageSize4K uint64 = 1 << PageShift4K
	PageSize2M uint64 = 1 << PageShift2M
	PageSize1G uint64 = 1 << PageShift1G
)

// PageSize identifies one of the three x86-64 page sizes.
type PageSize uint8

// Supported page sizes, ordered smallest to largest.
const (
	Page4K PageSize = iota
	Page2M
	Page1G
)

// Bytes returns the size of the page in bytes.
func (s PageSize) Bytes() uint64 { return 1 << s.Shift() }

// Shift returns log2 of the page size. The three sizes are 9 bits (one
// radix level) apart, so this is arithmetic, not a branch — Shift, and
// the Mask/Bytes/PageBase/Offset helpers built on it, sit on the
// per-translation hot path.
func (s PageSize) Shift() uint {
	if s > Page1G {
		panic(fmt.Sprintf("addr: invalid page size %d", s))
	}
	return PageShift4K + 9*uint(s)
}

func (s PageSize) String() string {
	switch s {
	case Page4K:
		return "4K"
	case Page2M:
		return "2M"
	case Page1G:
		return "1G"
	}
	return fmt.Sprintf("PageSize(%d)", uint8(s))
}

// Mask returns the mask selecting the in-page offset bits.
func (s PageSize) Mask() uint64 { return s.Bytes() - 1 }

// x86-64 canonical 4-level paging covers 48 bits of virtual address.
const (
	VirtualBits   = 48
	VirtualSpan   = uint64(1) << VirtualBits // 256 TB
	levelBits     = 9
	entriesPerLvl = 1 << levelBits // 512
)

// Levels of the x86-64 page table radix tree, root first.
const (
	LvlPML4 = 0 // bits 47:39
	LvlPDPT = 1 // bits 38:30
	LvlPD   = 2 // bits 29:21
	LvlPT   = 3 // bits 20:12
	Levels  = 4
)

// LevelName returns the conventional x86-64 name for a walk level.
func LevelName(level int) string {
	switch level {
	case LvlPML4:
		return "PML4"
	case LvlPDPT:
		return "PDPT"
	case LvlPD:
		return "PD"
	case LvlPT:
		return "PT"
	}
	return fmt.Sprintf("L%d", level)
}

// Index extracts the 9-bit page-table index for the given level from a
// virtual address, exactly as the x86-64 page walker does.
func Index(v uint64, level int) uint {
	shift := PageShift4K + levelBits*(Levels-1-level)
	return uint(v>>shift) & (entriesPerLvl - 1)
}

// EntriesPerTable is the number of entries in one x86-64 page table page.
const EntriesPerTable = entriesPerLvl

// PageBase returns the address rounded down to the page boundary.
func PageBase(v uint64, s PageSize) uint64 { return v &^ s.Mask() }

// PageNumber returns the page frame/page number for the address.
func PageNumber(v uint64, s PageSize) uint64 { return v >> s.Shift() }

// Offset returns the in-page offset of the address.
func Offset(v uint64, s PageSize) uint64 { return v & s.Mask() }

// IsAligned reports whether v is aligned to the page size.
func IsAligned(v uint64, s PageSize) bool { return v&s.Mask() == 0 }

// AlignUp rounds v up to the next multiple of align (a power of two).
func AlignUp(v, align uint64) uint64 { return (v + align - 1) &^ (align - 1) }

// AlignDown rounds v down to a multiple of align (a power of two).
func AlignDown(v, align uint64) uint64 { return v &^ (align - 1) }

// The x86-64 I/O gap: physical addresses in roughly the last quarter of
// the 32-bit space are reserved for memory-mapped I/O, so DRAM backing
// is split around it (§IV of the paper, "Reclaiming I/O gap memory").
const (
	IOGapStart uint64 = 3 << 30 // 3 GB
	IOGapEnd   uint64 = 4 << 30 // 4 GB
	IOGapSize         = IOGapEnd - IOGapStart
)

// InIOGap reports whether a physical address falls inside the I/O gap.
func InIOGap(p uint64) bool { return p >= IOGapStart && p < IOGapEnd }

// Range is a half-open address range [Start, Start+Size).
type Range struct {
	Start uint64
	Size  uint64
}

// End returns the first address past the range.
func (r Range) End() uint64 { return r.Start + r.Size }

// Contains reports whether v lies inside the range.
func (r Range) Contains(v uint64) bool { return v >= r.Start && v < r.End() }

// Overlaps reports whether two ranges share any address.
func (r Range) Overlaps(o Range) bool {
	return r.Start < o.End() && o.Start < r.End()
}

// Empty reports whether the range has zero size.
func (r Range) Empty() bool { return r.Size == 0 }

func (r Range) String() string {
	return fmt.Sprintf("[%#x, %#x)", r.Start, r.End())
}

// Pages returns how many pages of size s the range spans, assuming the
// range is aligned; callers validate alignment separately.
func (r Range) Pages(s PageSize) uint64 { return r.Size >> s.Shift() }
