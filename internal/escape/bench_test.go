package escape

import "testing"

func BenchmarkInsert(b *testing.B) {
	f := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
	}
}

func BenchmarkMayContainMiss(b *testing.B) {
	f := New(1)
	for i := uint64(0); i < 16; i++ {
		f.Insert(i * 7919)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(uint64(i) + 1<<40)
	}
}
