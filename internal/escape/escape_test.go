package escape

import (
	"math"
	"testing"

	"vdirect/internal/trace"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1)
	r := trace.NewRand(2)
	var members []uint64
	for i := 0; i < 16; i++ {
		pfn := r.Uint64n(1 << 36)
		f.Insert(pfn)
		members = append(members, pfn)
	}
	for _, pfn := range members {
		if !f.MayContain(pfn) {
			t.Fatalf("false negative for %#x — Bloom filters cannot do that", pfn)
		}
	}
	if f.Inserts() != 16 {
		t.Errorf("Inserts = %d", f.Inserts())
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(1)
	r := trace.NewRand(3)
	for i := 0; i < 10000; i++ {
		if f.MayContain(r.Uint64n(1 << 36)) {
			t.Fatal("empty filter claimed membership")
		}
	}
	if f.PopCount() != 0 {
		t.Error("empty filter has set bits")
	}
}

func TestFalsePositiveRateAt16BadPages(t *testing.T) {
	// The paper's claim: a 256-bit filter keeps overhead near zero with
	// 16 faulty pages. The analytic FP rate at n=16 is
	// (1-(1-1/64)^16)^4 ≈ 0.0024; measure within a loose band.
	f := New(42)
	r := trace.NewRand(43)
	members := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		pfn := r.Uint64n(1 << 30)
		f.Insert(pfn)
		members[pfn] = true
	}
	const probes = 2000000
	fp := 0
	for i := 0; i < probes; i++ {
		pfn := r.Uint64n(1 << 30)
		if members[pfn] {
			continue
		}
		if f.MayContain(pfn) {
			fp++
		}
	}
	rate := float64(fp) / probes
	analytic := f.FalsePositiveEstimate()
	if rate > 0.02 {
		t.Errorf("FP rate = %.5f, far above paper's near-zero claim", rate)
	}
	if math.Abs(rate-analytic) > 0.01 {
		t.Errorf("measured %.5f vs analytic %.5f disagree", rate, analytic)
	}
}

func TestFalsePositiveEstimateMonotone(t *testing.T) {
	f := New(5)
	prev := f.FalsePositiveEstimate()
	if prev != 0 {
		t.Errorf("empty filter FP estimate = %g", prev)
	}
	r := trace.NewRand(6)
	for i := 0; i < 32; i++ {
		f.Insert(r.Uint64n(1 << 36))
		cur := f.FalsePositiveEstimate()
		if cur < prev {
			t.Fatalf("FP estimate decreased at n=%d", i+1)
		}
		prev = cur
	}
}

func TestClear(t *testing.T) {
	f := New(7)
	f.Insert(12345)
	f.Clear()
	if f.MayContain(12345) {
		t.Error("Clear left membership")
	}
	if f.Inserts() != 0 || f.PopCount() != 0 {
		t.Error("Clear left state")
	}
}

func TestBitsSaveRestore(t *testing.T) {
	f := New(8)
	f.Insert(1)
	f.Insert(99)
	bits := f.Bits()
	g := New(8) // same seed → same hash matrices
	g.LoadBits(bits)
	if !g.MayContain(1) || !g.MayContain(99) {
		t.Error("restored filter lost members")
	}
	// Different seed → different matrices → restored bits are garbage
	// for that hardware instance; just confirm no panic and determinism.
	h := New(9)
	h.LoadBits(bits)
	_ = h.MayContain(1)
}

func bitsEqual(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for h := range a {
		if len(a[h]) != len(b[h]) {
			return false
		}
		for w := range a[h] {
			if a[h][w] != b[h][w] {
				return false
			}
		}
	}
	return true
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a, b := New(77), New(77)
	a.Insert(4242)
	b.Insert(4242)
	if !bitsEqual(a.Bits(), b.Bits()) {
		t.Error("same seed produced different filters")
	}
	c := New(78)
	c.Insert(4242)
	if bitsEqual(a.Bits(), c.Bits()) {
		t.Error("different seeds produced identical filters (suspicious)")
	}
}

func TestSizedFilters(t *testing.T) {
	// A bigger filter must have a lower (or equal) FP rate at the same
	// load; a tiny one saturates.
	load := 16
	rate := func(bits int) float64 {
		f := NewSized(bits, 4, 9)
		r := trace.NewRand(10)
		members := map[uint64]bool{}
		for i := 0; i < load; i++ {
			pfn := r.Uint64n(1 << 30)
			f.Insert(pfn)
			members[pfn] = true
		}
		fp := 0
		const probes = 100000
		for i := 0; i < probes; i++ {
			pfn := r.Uint64n(1 << 30)
			if !members[pfn] && f.MayContain(pfn) {
				fp++
			}
		}
		return float64(fp) / probes
	}
	small, std, big := rate(64), rate(256), rate(1024)
	if !(big <= std && std <= small) {
		t.Errorf("FP rates not monotone in size: 64b=%.4f 256b=%.4f 1024b=%.4f", small, std, big)
	}
	if std > 0.02 {
		t.Errorf("256-bit FP rate %.4f too high", std)
	}
}

func TestNewSizedRejectsBadGeometry(t *testing.T) {
	for _, c := range []struct{ bits, hashes int }{{0, 4}, {256, 0}, {255, 4}, {96, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSized(%d,%d) did not panic", c.bits, c.hashes)
				}
			}()
			NewSized(c.bits, c.hashes, 1)
		}()
	}
}

func TestLoadBitsGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on geometry mismatch")
		}
	}()
	a := New(1)
	b := NewSized(512, 4, 1)
	b.LoadBits(a.Bits())
}

func TestPopCountBounded(t *testing.T) {
	f := New(11)
	r := trace.NewRand(12)
	for i := 0; i < 16; i++ {
		f.Insert(r.Uint64n(1 << 36))
	}
	// 16 inserts x 4 banks sets at most 64 bits.
	if pc := f.PopCount(); pc > 64 || pc < 4 {
		t.Errorf("PopCount = %d, want in [4, 64]", pc)
	}
}
