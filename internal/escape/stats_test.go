package escape

import (
	"math"
	"testing"

	"vdirect/internal/trace"
)

// TestFalsePositiveRateMatchesEstimate measures the 256-bit filter's
// empirical false-positive rate against the analytic partitioned-Bloom
// bound that FalsePositiveEstimate reports (and that the Figure 13
// study trusts). For each insert count, distinct random page sets are
// inserted into filters with distinct H3 matrices and a large stream
// of never-inserted frames is probed; the aggregate positive rate must
// sit within a 6-sigma binomial envelope of the analytic estimate.
// Every seed is fixed, so the test is deterministic.
func TestFalsePositiveRateMatchesEstimate(t *testing.T) {
	const (
		seedsPerCount = 6
		probesPerSeed = 100_000
		maxPFN        = uint64(1) << 30
	)
	for _, inserts := range []int{4, 8, 16, 32, 64} {
		var want float64
		positives, probes := 0, 0
		for seed := uint64(1); seed <= seedsPerCount; seed++ {
			f := New(seed)
			r := trace.NewRand(seed * 7919)
			member := make(map[uint64]bool, inserts)
			for len(member) < inserts {
				pfn := r.Uint64n(maxPFN)
				if !member[pfn] {
					member[pfn] = true
					f.Insert(pfn)
				}
			}
			want = f.FalsePositiveEstimate() // same for every seed at this count
			for i := 0; i < probesPerSeed; i++ {
				pfn := r.Uint64n(maxPFN)
				if member[pfn] {
					continue
				}
				probes++
				if f.MayContain(pfn) {
					positives++
				}
			}
		}
		got := float64(positives) / float64(probes)
		sigma := math.Sqrt(want * (1 - want) / float64(probes))
		// The analytic formula assumes ideal independent hashing; H3 is
		// linear over GF(2), which makes its collisions slightly
		// structured and its measured rate land a few percent *under*
		// the ideal curve. The estimate is therefore asserted as an
		// upper envelope: never exceeded (beyond sampling noise), never
		// undershot by more than 2x.
		if got > want+6*sigma+1e-4 {
			t.Errorf("%d inserts: measured FP rate %.5f exceeds analytic bound %.5f (+6σ=%.5f)",
				inserts, got, want, 6*sigma)
		}
		if got < want/2-6*sigma-1e-4 {
			t.Errorf("%d inserts: measured FP rate %.5f implausibly below analytic %.5f",
				inserts, got, want)
		}
	}
}

// TestFalsePositiveEstimateShape pins the envelope's endpoints beyond
// the existing monotonicity test: a clean filter never hits (the
// strict-cost harness in internal/oracle relies on exactly this to
// assert closed-form walk costs before any escape), and the estimate
// saturates near 1 once inserts swamp the 256 bits.
func TestFalsePositiveEstimateShape(t *testing.T) {
	f := New(1)
	for i := 0; i < 64; i++ {
		if f.MayContain(uint64(1_000_000 + i)) {
			t.Fatalf("clean filter reports pfn %d present", 1_000_000+i)
		}
	}
	for n := 1; n <= 512; n++ {
		f.Insert(uint64(n))
	}
	if est := f.FalsePositiveEstimate(); est < 0.99 {
		t.Fatalf("estimate after 512 inserts is %v, want near 1", est)
	}
}
