// Package escape implements the escape filter (§V): a small hardware
// Bloom filter that lets individual pages inside a direct segment
// "escape" segment translation and fall back to conventional paging.
// The OS/VMM uses it to remap faulty physical pages (and, optionally,
// guard pages) without giving up the segment.
//
// The design follows the paper: a 256-bit parallel Bloom filter with
// four H3 hash functions (per Sanchez et al., "Implementing Signatures
// for Transactional Memory"). "Parallel" means partitioned: the 256
// bits are split into four 64-bit banks and each hash function indexes
// its own bank, so one probe reads all four banks concurrently.
//
// False positives are benign for correctness — a falsely-escaped page
// just takes the paging path, so the VMM must install PTEs for filter
// hits whether true or false (§V) — but they cost performance, which is
// exactly what Figure 13 quantifies.
package escape

import "vdirect/internal/trace"

// Geometry of the paper's filter.
const (
	FilterBits = 256
	NumHashes  = 4
	bankBits   = FilterBits / NumHashes // 64 bits per bank
	inputBits  = 40                     // page-frame numbers up to 2^40 (4K frames of a 2^52 space)
)

// Filter is a partitioned Bloom filter; the paper's instance is 256
// bits with 4 H3 hash functions. It is part of per-context state:
// Bits/LoadBits serialize it for save/restore with the segment
// registers (§V: "The filter is part of the context state").
type Filter struct {
	// banks[h] holds bank h's bits, packed in uint64 words.
	banks [][]uint64
	// rows: for each hash function and each input bit, a bank index —
	// the H3 construction (XOR of rows selected by set input bits).
	rows     [][inputBits]uint16
	bankBits uint
	inserts  int
	gen      uint64
}

// New creates the paper's 256-bit 4-hash filter; its H3 matrices derive
// deterministically from seed, so hardware instances are reproducible.
func New(seed uint64) *Filter { return NewSized(FilterBits, NumHashes, seed) }

// NewSized creates a filter of totalBits partitioned over hashes banks
// (totalBits/hashes must be a power of two), for sizing studies.
func NewSized(totalBits, hashes int, seed uint64) *Filter {
	if hashes <= 0 || totalBits <= 0 || totalBits%hashes != 0 {
		panic("escape: bad filter geometry")
	}
	per := uint(totalBits / hashes)
	if per&(per-1) != 0 || per > 1<<16 {
		panic("escape: bank size must be a power of two <= 65536")
	}
	f := &Filter{
		banks:    make([][]uint64, hashes),
		rows:     make([][inputBits]uint16, hashes),
		bankBits: per,
	}
	words := (per + 63) / 64
	r := trace.NewRand(seed ^ 0xE5CA9EF117E4)
	for h := 0; h < hashes; h++ {
		f.banks[h] = make([]uint64, words)
		for b := 0; b < inputBits; b++ {
			f.rows[h][b] = uint16(r.Uint64n(uint64(per)))
		}
	}
	return f
}

// hash computes the H3 hash for function h over the page frame number.
func (f *Filter) hash(h int, pfn uint64) uint {
	var out uint16
	for b := 0; b < inputBits; b++ {
		if pfn&(1<<uint(b)) != 0 {
			out ^= f.rows[h][b]
		}
	}
	return uint(out)
}

// Insert marks a page frame number as escaped.
func (f *Filter) Insert(pfn uint64) {
	for h := range f.banks {
		bit := f.hash(h, pfn)
		f.banks[h][bit/64] |= 1 << (bit % 64)
	}
	f.inserts++
	f.gen++
}

// MayContain is the hardware probe: true means the page must take the
// paging path (true member or false positive).
func (f *Filter) MayContain(pfn uint64) bool {
	for h := range f.banks {
		bit := f.hash(h, pfn)
		if f.banks[h][bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the filter.
func (f *Filter) Clear() {
	for h := range f.banks {
		for w := range f.banks[h] {
			f.banks[h][w] = 0
		}
	}
	f.inserts = 0
	f.gen++
}

// Inserts returns how many pages have been inserted.
func (f *Filter) Inserts() int { return f.inserts }

// Gen returns a monotonic mutation counter: any operation that can
// change a future MayContain answer (Insert, Clear, LoadBits) bumps
// it. Consumers that cache decisions derived from filter probes (the
// MMU's miss memo) compare generations to detect mutation.
func (f *Filter) Gen() uint64 { return f.gen }

// Bits serializes the filter contents (context save).
func (f *Filter) Bits() [][]uint64 {
	out := make([][]uint64, len(f.banks))
	for h, bank := range f.banks {
		out[h] = append([]uint64(nil), bank...)
	}
	return out
}

// LoadBits restores filter contents (context restore) into a filter of
// identical geometry. The insert count is not architectural and resets
// to zero.
func (f *Filter) LoadBits(b [][]uint64) {
	if len(b) != len(f.banks) {
		panic("escape: LoadBits geometry mismatch")
	}
	for h := range b {
		if len(b[h]) != len(f.banks[h]) {
			panic("escape: LoadBits geometry mismatch")
		}
		copy(f.banks[h], b[h])
	}
	f.inserts = 0
	f.gen++
}

// PopCount returns the number of set bits, a coarse fullness metric.
func (f *Filter) PopCount() int {
	n := 0
	for _, bank := range f.banks {
		for _, w := range bank {
			for ; w != 0; w &= w - 1 {
				n++
			}
		}
	}
	return n
}

// FalsePositiveEstimate returns the analytic false-positive probability
// for a partitioned Bloom filter with f.inserts insertions: each bank
// has P(bit set) = 1-(1-1/bankBits)^n, and a false positive needs every
// bank to hit.
func (f *Filter) FalsePositiveEstimate() float64 {
	bankP := 1.0
	for i := 0; i < f.inserts; i++ {
		bankP *= 1 - 1.0/float64(f.bankBits)
	}
	perBank := 1 - bankP
	p := 1.0
	for range f.banks {
		p *= perBank
	}
	return p
}
