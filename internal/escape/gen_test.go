package escape

import "testing"

// TestGenTracksMutations pins the mutation counter the MMU's miss memo
// keys on: every operation that can change a future MayContain answer
// bumps Gen, and read-only operations leave it alone.
func TestGenTracksMutations(t *testing.T) {
	f := New(7)
	g0 := f.Gen()
	f.MayContain(5)
	_ = f.Bits()
	_ = f.PopCount()
	if f.Gen() != g0 {
		t.Fatal("read-only operations bumped Gen")
	}
	f.Insert(5)
	g1 := f.Gen()
	if g1 <= g0 {
		t.Fatalf("Insert did not bump Gen: %d -> %d", g0, g1)
	}
	f.Clear()
	g2 := f.Gen()
	if g2 <= g1 {
		t.Fatalf("Clear did not bump Gen: %d -> %d", g1, g2)
	}
	f.LoadBits(New(7).Bits())
	if f.Gen() <= g2 {
		t.Fatalf("LoadBits did not bump Gen: %d -> %d", g2, f.Gen())
	}
}

// TestLoadBitsRejectsBankMismatch: the outer geometry check is not
// enough — a bank of the wrong width must also panic rather than
// silently truncate the copy.
func TestLoadBitsRejectsBankMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LoadBits accepted a short bank")
		}
	}()
	f := New(7)
	b := f.Bits()
	b[0] = b[0][:len(b[0])-1]
	f.LoadBits(b)
}
