package tlb

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/trace"
)

func BenchmarkSetAssocLookupHit(b *testing.B) {
	c := NewSetAssoc("b", 512, 4)
	for i := uint64(0); i < 512; i++ {
		c.Insert(Entry{Kind: KindGuest, VPN: i, PPN: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(KindGuest, uint64(i)&511)
	}
}

func BenchmarkSetAssocLookupMiss(b *testing.B) {
	c := NewSetAssoc("b", 512, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(KindGuest, uint64(i))
	}
}

func BenchmarkSetAssocInsert(b *testing.B) {
	c := NewSetAssoc("b", 512, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(Entry{Kind: KindGuest, VPN: uint64(i), PPN: uint64(i)})
	}
}

func BenchmarkL1MultiSizeLookup(b *testing.B) {
	l1 := NewL1(SandyBridgeL1)
	r := trace.NewRand(1)
	for i := 0; i < 64; i++ {
		l1.Insert(r.Uint64n(1<<30)&^0xfff, uint64(i)<<12, addr.Page4K)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Lookup(uint64(i) << 12)
	}
}

func BenchmarkPWCSkipLevel(b *testing.B) {
	p := NewPWC()
	p.FillFrom(0x7f0000000000, 0, addr.LvlPT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SkipLevel(0x7f0000000000 + uint64(i)<<12)
	}
}
