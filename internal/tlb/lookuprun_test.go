package tlb

import (
	"testing"

	"vdirect/internal/addr"
)

// The batched-probe contract: LookupRun must be probe-for-probe
// identical to sequential Lookup calls — same hit results, same
// counter and clock evolution, same LRU movement (observed through
// subsequent eviction behaviour) — including the charged miss that
// terminates a short run. The tests drive a batched cache and a
// per-probe mirror through identical op sequences and compare
// everything observable after every step.

// mirrorLookupRun is the per-probe reference: sequential Lookups with
// LookupRun's stop-at-first-miss contract.
func mirrorLookupRun(c *SetAssoc, vpns, ppns []uint64) int {
	for i, vpn := range vpns {
		ppn, hit := c.Lookup(KindGuest, vpn)
		if !hit {
			return i
		}
		ppns[i] = ppn
	}
	return len(vpns)
}

// checkSame compares every exported observable of the two caches.
func checkSame(t *testing.T, step string, batched, mirror *SetAssoc) {
	t.Helper()
	bl, bh := batched.Stats()
	ml, mh := mirror.Stats()
	if bl != ml || bh != mh {
		t.Fatalf("%s: stats diverge: batched %d/%d, mirror %d/%d", step, bl, bh, ml, mh)
	}
	if batched.clock != mirror.clock {
		t.Fatalf("%s: clock diverges: %d vs %d", step, batched.clock, mirror.clock)
	}
	if batched.Occupancy() != mirror.Occupancy() {
		t.Fatalf("%s: occupancy diverges: %d vs %d", step, batched.Occupancy(), mirror.Occupancy())
	}
	for i := range batched.slots {
		if batched.slots[i] != mirror.slots[i] {
			t.Fatalf("%s: slot %d diverges: %#x vs %#x", step, i, batched.slots[i], mirror.slots[i])
		}
	}
}

// runBoth drives the same probe run through both caches and checks the
// return values, filled ppns, and full post-run state match.
func runBoth(t *testing.T, step string, batched, mirror *SetAssoc, vpns []uint64) int {
	t.Helper()
	bp := make([]uint64, len(vpns))
	mp := make([]uint64, len(vpns))
	bn := batched.LookupRun(vpns, bp)
	mn := mirrorLookupRun(mirror, vpns, mp)
	if bn != mn {
		t.Fatalf("%s: hit counts diverge: batched %d, mirror %d", step, bn, mn)
	}
	for i := 0; i < bn; i++ {
		if bp[i] != mp[i] {
			t.Fatalf("%s: ppn %d diverges: %#x vs %#x", step, i, bp[i], mp[i])
		}
	}
	checkSame(t, step, batched, mirror)
	return bn
}

// TestLookupRunMatchesSequentialLookup is the lockstep differential
// over the shipped 4-way geometry: multi-chunk full-hit runs (the
// pipelined path spans more than one probeRun chunk), runs cut by a
// miss at every position within a chunk, ASID-tagged entries, and
// LRU-evolution checks via post-run conflict inserts.
func TestLookupRunMatchesSequentialLookup(t *testing.T) {
	batched := NewSetAssoc("b", 64, 4)
	mirror := NewSetAssoc("m", 64, 4)

	// Empty-structure probe: one charged early miss, no scan.
	if n := runBoth(t, "empty", batched, mirror, []uint64{5, 6, 7}); n != 0 {
		t.Fatalf("empty structure returned %d hits", n)
	}

	// Fill 20 consecutive VPNs (one per set, then wrapping) and probe
	// them all in one 20-probe run: exercises multiple 8-wide chunks
	// with a partial tail chunk.
	for vpn := uint64(0); vpn < 20; vpn++ {
		batched.Insert(Entry{Kind: KindGuest, VPN: vpn, PPN: 100 + vpn})
		mirror.Insert(Entry{Kind: KindGuest, VPN: vpn, PPN: 100 + vpn})
	}
	vpns := make([]uint64, 20)
	for i := range vpns {
		vpns[i] = uint64(i)
	}
	if n := runBoth(t, "full-hit", batched, mirror, vpns); n != 20 {
		t.Fatalf("full-hit run returned %d of 20", n)
	}

	// A miss at every chunk position: probe [0..k-1, unmapped, k..],
	// so the charged terminating miss lands at each lane of the
	// 8-wide chunk at least once.
	for k := 0; k < 10; k++ {
		seq := make([]uint64, 0, 12)
		seq = append(seq, vpns[:k]...)
		seq = append(seq, 40) // never inserted
		seq = append(seq, vpns[k:10]...)
		if n := runBoth(t, "mid-miss", batched, mirror, seq); n != k {
			t.Fatalf("miss at %d returned %d hits", k, n)
		}
	}

	// Out-of-range VPN: a guaranteed miss by construction, charged like
	// any other probe.
	if n := runBoth(t, "vpnmax", batched, mirror, []uint64{0, 1, vpnMax + 2}); n != 2 {
		t.Fatalf("vpnMax probe returned %d hits", n)
	}

	// ASID tagging: entries inserted under ASID 1 must not hit a run
	// probed under ASID 0 and vice versa.
	for _, c := range []*SetAssoc{batched, mirror} {
		c.SetASID(1)
		c.Insert(Entry{Kind: KindGuest, VPN: 300, PPN: 42})
	}
	runBoth(t, "asid1", batched, mirror, []uint64{300, 0})
	for _, c := range []*SetAssoc{batched, mirror} {
		c.SetASID(0)
	}
	if n := runBoth(t, "asid0", batched, mirror, []uint64{300}); n != 0 {
		t.Fatalf("ASID-1 entry hit under ASID 0")
	}

	// LRU evolution: batched hits must refresh recency exactly as
	// sequential hits do. Probe a conflict set in a fixed order, then
	// insert a conflicting entry on both sides; the victim choice (and
	// so the whole slot image) only matches if every LRU stamp did.
	set0 := []uint64{0, 16, 32, 48} // 16 sets: all land in set 0
	for _, vpn := range set0[1:] {
		batched.Insert(Entry{Kind: KindGuest, VPN: vpn, PPN: 200 + vpn})
		mirror.Insert(Entry{Kind: KindGuest, VPN: vpn, PPN: 200 + vpn})
	}
	runBoth(t, "conflict-touch", batched, mirror, []uint64{32, 0, 48, 16})
	batched.Insert(Entry{Kind: KindGuest, VPN: 64, PPN: 9})
	mirror.Insert(Entry{Kind: KindGuest, VPN: 64, PPN: 9})
	checkSame(t, "post-evict", batched, mirror)
}

// TestLookupRunFallbackGeometry pins the non-4-way fallback: per-probe
// semantics on a 2-way cache, including the terminating miss charge.
func TestLookupRunFallbackGeometry(t *testing.T) {
	batched := NewSetAssoc("b", 8, 2)
	mirror := NewSetAssoc("m", 8, 2)
	for vpn := uint64(0); vpn < 6; vpn++ {
		batched.Insert(Entry{Kind: KindGuest, VPN: vpn, PPN: 50 + vpn})
		mirror.Insert(Entry{Kind: KindGuest, VPN: vpn, PPN: 50 + vpn})
	}
	if n := runBoth(t, "fallback-hit", batched, mirror, []uint64{0, 1, 2, 3, 4, 5}); n != 6 {
		t.Fatalf("fallback full-hit run returned %d of 6", n)
	}
	if n := runBoth(t, "fallback-miss", batched, mirror, []uint64{0, 99, 1}); n != 1 {
		t.Fatalf("fallback miss run returned %d hits", n)
	}
}

// TestL1BatchedProbeAccounting pins the L1 decomposition TranslateBlock
// relies on: while Only4K holds, Lookup4KRun + MissLarge must evolve
// all three structures' counters exactly as per-event L1.Lookup calls,
// and Only4K must flip the moment a large entry lands.
func TestL1BatchedProbeAccounting(t *testing.T) {
	batched := NewL1(SandyBridgeL1)
	mirror := NewL1(SandyBridgeL1)
	if !batched.Only4K() {
		t.Fatal("fresh L1 reports large entries")
	}
	for p := uint64(0); p < 8; p++ {
		batched.Insert(p<<12, (100+p)<<12, addr.Page4K)
		mirror.Insert(p<<12, (100+p)<<12, addr.Page4K)
	}

	// Per-event reference: L1.Lookup on hits and on one miss.
	vas := []uint64{0 << 12, 3 << 12, 7 << 12, 9 << 12} // last is unmapped
	var mirrorHits int
	for _, va := range vas {
		if _, _, hit := mirror.Lookup(va); hit {
			mirrorHits++
		}
	}

	// Batched: the 4K run stops at the miss, which then charges the
	// empty 2M/1G structures via MissLarge — exactly one decomposed
	// L1.Lookup.
	vpns := make([]uint64, len(vas))
	for i, va := range vas {
		vpns[i] = va >> 12
	}
	ppns := make([]uint64, len(vas))
	n := batched.Lookup4KRun(vpns, ppns)
	if n != mirrorHits {
		t.Fatalf("batched hits %d, per-event hits %d", n, mirrorHits)
	}
	batched.MissLarge()

	for i, pair := range [][2]*SetAssoc{
		{batched.by4K, mirror.by4K},
		{batched.by2M, mirror.by2M},
		{batched.by1G, mirror.by1G},
	} {
		bl, bh := pair[0].Stats()
		ml, mh := pair[1].Stats()
		if bl != ml || bh != mh {
			t.Fatalf("structure %d stats diverge: batched %d/%d, mirror %d/%d", i, bl, bh, ml, mh)
		}
		if pair[0].clock != pair[1].clock {
			t.Fatalf("structure %d clock diverges: %d vs %d", i, pair[0].clock, pair[1].clock)
		}
	}

	// Hit PPNs surface the same translations Lookup returns.
	for i := 0; i < n; i++ {
		pa, size, hit := mirror.Lookup(vas[i])
		if !hit || size != addr.Page4K {
			t.Fatalf("mirror lost entry %d", i)
		}
		if want := pa >> 12; ppns[i] != want {
			t.Fatalf("ppn %d = %#x, want %#x", i, ppns[i], want)
		}
	}

	// Large inserts break the decomposition's precondition per size.
	batched.Insert(1<<21, 5<<21, addr.Page2M)
	if batched.Only4K() {
		t.Error("Only4K still true with a 2M entry resident")
	}
	batched.Flush()
	if !batched.Only4K() {
		t.Error("Only4K false after full flush")
	}
	batched.Insert(1<<30, 3<<30, addr.Page1G)
	if batched.Only4K() {
		t.Error("Only4K still true with a 1G entry resident")
	}

	// structFor's full size mapping (Insert shortcuts the 4K case, so
	// pin it directly).
	if batched.structFor(addr.Page4K) != batched.by4K ||
		batched.structFor(addr.Page2M) != batched.by2M ||
		batched.structFor(addr.Page1G) != batched.by1G {
		t.Error("structFor size mapping wrong")
	}
}
