package tlb

import (
	"testing"

	"vdirect/internal/addr"
)

// TestSetAssocNonPow2Geometry exercises the modulo indexing fallback:
// every shipped geometry is a power of two, but the structure must stay
// correct for exotic set counts (here 3 sets x 2 ways).
func TestSetAssocNonPow2Geometry(t *testing.T) {
	c := NewSetAssoc("t", 6, 2)
	if c.pow2 {
		t.Fatal("3 sets misclassified as power of two")
	}
	// VPNs 0..8 spread over sets vpn%3; round-trip them all.
	for vpn := uint64(0); vpn < 9; vpn++ {
		c.Insert(Entry{Kind: KindGuest, VPN: vpn, PPN: 100 + vpn})
	}
	// Each set holds 2 ways, 3 VPNs competed per set, so the first
	// insert per set was evicted and the later two survive.
	for vpn := uint64(0); vpn < 9; vpn++ {
		ppn, hit := c.Lookup(KindGuest, vpn)
		if vpn < 3 {
			if hit {
				t.Errorf("VPN %d: LRU entry survived in non-pow2 set", vpn)
			}
			continue
		}
		if !hit || ppn != 100+vpn {
			t.Errorf("VPN %d: lookup = %d, %v", vpn, ppn, hit)
		}
	}
	if c.Evictions() != 3 {
		t.Errorf("evictions = %d, want 3", c.Evictions())
	}
}

// TestSetAssocASIDTagging pins the PCID model: guest entries hit only
// under the ASID they were inserted with, nested entries are ASID-blind,
// and FlushASID removes exactly one address space's guest entries.
func TestSetAssocASIDTagging(t *testing.T) {
	// 4 ways so the two ASID-tagged guest copies and the nested entry
	// can coexist in VPN 1's set without capacity evictions.
	c := NewSetAssoc("t", 8, 4)
	c.Insert(Entry{Kind: KindGuest, VPN: 1, PPN: 10})
	c.Insert(Entry{Kind: KindNested, VPN: 1, PPN: 20})

	c.SetASID(7)
	if _, hit := c.Lookup(KindGuest, 1); hit {
		t.Error("guest entry from ASID 0 hit under ASID 7")
	}
	if ppn, hit := c.Lookup(KindNested, 1); !hit || ppn != 20 {
		t.Errorf("nested entry must be ASID-blind: %d, %v", ppn, hit)
	}
	c.Insert(Entry{Kind: KindGuest, VPN: 1, PPN: 17})
	if ppn, hit := c.Lookup(KindGuest, 1); !hit || ppn != 17 {
		t.Errorf("ASID 7 entry: %d, %v", ppn, hit)
	}

	// Returning to ASID 0 revives its entry — both tagged copies coexist.
	c.SetASID(0)
	if ppn, hit := c.Lookup(KindGuest, 1); !hit || ppn != 10 {
		t.Errorf("ASID 0 entry after switch back: %d, %v", ppn, hit)
	}

	// FlushASID(7) is surgical: ASID 0 guest and nested entries survive.
	c.FlushASID(7)
	c.SetASID(7)
	if _, hit := c.Lookup(KindGuest, 1); hit {
		t.Error("FlushASID(7) left ASID 7 entry")
	}
	c.SetASID(0)
	if _, hit := c.Lookup(KindGuest, 1); !hit {
		t.Error("FlushASID(7) dropped ASID 0 entry")
	}
	if _, hit := c.Lookup(KindNested, 1); !hit {
		t.Error("FlushASID(7) dropped nested entry")
	}
}

// TestL1ASIDAndInvalidate covers the L1 wrappers: SetASID fans out to
// all three size structures, and Invalidate drops the entry for a VA at
// whichever page size cached it.
func TestL1ASIDAndInvalidate(t *testing.T) {
	l1 := NewL1(SandyBridgeL1)
	l1.Insert(0x1000, 0x201000, addr.Page4K)
	l1.Insert(3<<addr.PageShift2M, 5<<addr.PageShift2M, addr.Page2M)
	l1.Insert(2<<addr.PageShift1G, 3<<addr.PageShift1G, addr.Page1G)

	l1.SetASID(9)
	for _, va := range []uint64{0x1000, 3 << addr.PageShift2M, 2 << addr.PageShift1G} {
		if _, _, hit := l1.Lookup(va); hit {
			t.Errorf("va %#x hit under foreign ASID", va)
		}
	}
	l1.SetASID(0)
	for _, va := range []uint64{0x1000, 3 << addr.PageShift2M, 2 << addr.PageShift1G} {
		if _, _, hit := l1.Lookup(va); !hit {
			t.Errorf("va %#x lost after ASID round trip", va)
		}
	}

	// INVLPG hits every size structure; the 2M entry must go even though
	// the VA passed in is not 2M-aligned.
	l1.Invalidate(3<<addr.PageShift2M + 0x2345)
	if _, _, hit := l1.Lookup(3 << addr.PageShift2M); hit {
		t.Error("2M entry survived Invalidate")
	}
	if _, _, hit := l1.Lookup(0x1000); !hit {
		t.Error("unrelated 4K entry dropped by Invalidate")
	}
	if _, _, hit := l1.Lookup(2 << addr.PageShift1G); !hit {
		t.Error("unrelated 1G entry dropped by Invalidate")
	}

	// FlushASID fans out to every size structure too.
	l1.FlushASID(0)
	for _, va := range []uint64{0x1000, 2 << addr.PageShift1G} {
		if _, _, hit := l1.Lookup(va); hit {
			t.Errorf("va %#x survived FlushASID", va)
		}
	}
}

// TestL2FlushASIDInvalidate covers the L2 wrappers the MMU's context-
// switch and INVLPG paths call.
func TestL2FlushASIDInvalidate(t *testing.T) {
	l2 := NewL2(512, 4)
	l2.InsertGuest(0x4000, 0x804000)
	l2.InsertGuest(0x5000, 0x805000)
	l2.InsertNested(0x9000, 0x709000)

	l2.InvalidateGuest(0x4000)
	if _, hit := l2.LookupGuest(0x4000); hit {
		t.Error("guest entry survived InvalidateGuest")
	}
	if _, hit := l2.LookupGuest(0x5000); !hit {
		t.Error("unrelated guest entry dropped")
	}

	l2.SetASID(3)
	if _, hit := l2.LookupGuest(0x5000); hit {
		t.Error("guest entry hit under foreign ASID")
	}
	if hpa, hit := l2.LookupNested(0x9000); !hit || hpa != 0x709000 {
		t.Errorf("nested entry must be ASID-blind: %#x, %v", hpa, hit)
	}
	l2.SetASID(0)

	// FlushASID is surgical: the current address space's guest entries
	// go, per-VM nested entries survive.
	l2.FlushASID(0)
	if _, hit := l2.LookupGuest(0x5000); hit {
		t.Error("guest entry survived FlushASID")
	}
	if _, hit := l2.LookupNested(0x9000); !hit {
		t.Error("nested entry dropped by FlushASID")
	}

	l2.Flush()
	if l2.Occupancy() != 0 {
		t.Errorf("occupancy after Flush = %d", l2.Occupancy())
	}
}

// TestPWCSetASID pins that paging-structure caches are per-process
// state: cached structure pointers must not leak across a PCID switch.
func TestPWCSetASID(t *testing.T) {
	p := NewPWC()
	va := uint64(0x40000000)
	p.FillFrom(va, addr.LvlPML4, addr.LvlPT)
	if p.SkipLevel(va) != 3 {
		t.Fatalf("skip = %d after full fill", p.SkipLevel(va))
	}
	p.SetASID(5)
	if got := p.SkipLevel(va); got != 0 {
		t.Errorf("skip = %d under foreign ASID, want 0", got)
	}
	p.SetASID(0)
	if got := p.SkipLevel(va); got != 3 {
		t.Errorf("skip = %d after ASID round trip, want 3", got)
	}
	p.FlushASID(0)
	if got := p.SkipLevel(va); got != 0 {
		t.Errorf("skip = %d after FlushASID, want 0", got)
	}
}
