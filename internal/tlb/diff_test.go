package tlb

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/trace"
)

// refWay is one way of the reference model: the pre-SoA struct layout
// with explicit fields, written as plainly as possible so its behaviour
// is auditable by eye. The differential test drives it in lockstep with
// SetAssoc and requires identical results, hit/eviction/occupancy
// accounting and replacement decisions — the packed tag words must be a
// pure representation change.
type refWay struct {
	valid bool
	kind  EntryKind
	asid  uint16
	vpn   uint64
	ppn   uint64
	lru   uint64
}

type refSetAssoc struct {
	sets, ways int
	ents       []refWay
	clock      uint64
	lookups    uint64
	hits       uint64
	evictions  uint64
	occupied   int
	curASID    uint16
}

func newRef(entries, ways int) *refSetAssoc {
	return &refSetAssoc{sets: entries / ways, ways: ways, ents: make([]refWay, entries)}
}

func (r *refSetAssoc) base(vpn uint64) int {
	s := int(vpn) % r.sets
	if s < 0 {
		s = -s
	}
	return s * r.ways
}

// match is the hit rule the tag word encodes: valid, same kind, same
// vpn, and — for guest entries only — the ASID it was inserted under.
func (r *refSetAssoc) match(w refWay, kind EntryKind, vpn uint64) bool {
	if !w.valid || w.kind != kind || w.vpn != vpn {
		return false
	}
	return kind == KindNested || w.asid == r.curASID
}

func (r *refSetAssoc) lookup(kind EntryKind, vpn uint64) (uint64, bool) {
	r.lookups++
	r.clock++
	if vpn >= vpnMax {
		return 0, false // no tag word can hold it, so no entry can exist
	}
	b := r.base(vpn)
	for j := b; j < b+r.ways; j++ {
		if r.match(r.ents[j], kind, vpn) {
			r.ents[j].lru = r.clock
			r.hits++
			return r.ents[j].ppn, true
		}
	}
	return 0, false
}

func (r *refSetAssoc) insert(e Entry) {
	r.clock++
	b := r.base(e.VPN)
	// Victim: refresh-match or first invalid way, whichever comes first
	// in way order; else the LRU way.
	victim, vLRU := b, r.ents[b].lru
	for j := b; j < b+r.ways; j++ {
		w := r.ents[j]
		if r.match(w, e.Kind, e.VPN) || !w.valid {
			victim = j
			break
		}
		if w.lru < vLRU {
			victim, vLRU = j, w.lru
		}
	}
	w := &r.ents[victim]
	if !w.valid {
		r.occupied++
	} else if !r.match(*w, e.Kind, e.VPN) {
		r.evictions++
	}
	asid := r.curASID
	if e.Kind == KindNested {
		asid = 0
	}
	*w = refWay{valid: true, kind: e.Kind, asid: asid, vpn: e.VPN, ppn: e.PPN, lru: r.clock}
}

func (r *refSetAssoc) flush() {
	for i := range r.ents {
		r.ents[i].valid = false
	}
	r.occupied = 0
}

func (r *refSetAssoc) flushKind(kind EntryKind) {
	for i := range r.ents {
		if r.ents[i].valid && r.ents[i].kind == kind {
			r.ents[i].valid = false
			r.occupied--
		}
	}
}

func (r *refSetAssoc) flushASID(a uint16) {
	for i := range r.ents {
		w := r.ents[i]
		if w.valid && w.kind == KindGuest && w.asid == a {
			r.ents[i].valid = false
			r.occupied--
		}
	}
}

// invalidatePage matches every address space, like INVLPG.
func (r *refSetAssoc) invalidatePage(kind EntryKind, vpn uint64) {
	if vpn >= vpnMax {
		return
	}
	b := r.base(vpn)
	for j := b; j < b+r.ways; j++ {
		w := r.ents[j]
		if w.valid && w.kind == kind && w.vpn == vpn {
			r.ents[j].valid = false
			r.occupied--
		}
	}
}

// TestSetAssocMatchesReference drives SetAssoc and the reference model
// through long randomized op streams over several geometries — 4-way
// (the unrolled path), non-4-way (the generic loop), and a non-power-
// of-two set count (the modulo indexing fallback) — comparing every
// lookup result and every counter after every operation.
func TestSetAssocMatchesReference(t *testing.T) {
	geometries := []struct {
		name          string
		entries, ways int
	}{
		{"4way-pow2", 32, 4},
		{"4way-1set", 4, 4},
		{"2way", 16, 2},
		{"3way-nonpow2-sets", 21, 3}, // 7 sets: modulo fallback
		{"fully-assoc", 8, 8},
	}
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			c := NewSetAssoc(g.name, g.entries, g.ways)
			r := newRef(g.entries, g.ways)
			rng := trace.NewRand(uint64(g.entries)*31 + uint64(g.ways))

			peakOcc := 0
			check := func(op string, step int) {
				t.Helper()
				if r.occupied > peakOcc {
					peakOcc = r.occupied
				}
				lg, hg := c.Stats()
				if lg != r.lookups || hg != r.hits {
					t.Fatalf("step %d %s: stats (lookups %d, hits %d), reference (%d, %d)",
						step, op, lg, hg, r.lookups, r.hits)
				}
				if c.Evictions() != r.evictions {
					t.Fatalf("step %d %s: evictions %d, reference %d", step, op, c.Evictions(), r.evictions)
				}
				if c.Occupancy() != r.occupied {
					t.Fatalf("step %d %s: occupancy %d, reference %d", step, op, c.Occupancy(), r.occupied)
				}
			}

			// A small vpn universe forces constant set conflict; a sliver
			// of huge vpns exercises the vpnMax miss rule. Three ASIDs and
			// both kinds mix in every set.
			randVPN := func() uint64 {
				if rng.Uint64n(40) == 0 {
					return vpnMax + rng.Uint64n(1<<10) // beyond the tag field
				}
				return rng.Uint64n(uint64(g.entries) * 3)
			}
			kinds := []EntryKind{KindGuest, KindGuest, KindGuest, KindNested}
			for step := 0; step < 20000; step++ {
				switch rng.Uint64n(20) {
				case 0:
					c.Flush()
					r.flush()
					check("flush", step)
				case 1:
					k := kinds[rng.Uint64n(4)]
					c.FlushKind(k)
					r.flushKind(k)
					check("flushkind", step)
				case 2:
					a := uint16(rng.Uint64n(3))
					c.SetASID(a)
					r.curASID = a
				case 3:
					a := uint16(rng.Uint64n(3))
					c.FlushASID(a)
					r.flushASID(a)
					check("flushasid", step)
				case 4:
					k, vpn := kinds[rng.Uint64n(4)], randVPN()
					c.InvalidatePage(k, vpn)
					r.invalidatePage(k, vpn)
					check("invalidate", step)
				case 5, 6, 7, 8, 9:
					k, vpn := kinds[rng.Uint64n(4)], randVPN()
					if vpn >= vpnMax {
						vpn = rng.Uint64n(uint64(g.entries) * 3)
					}
					e := Entry{Kind: k, VPN: vpn, PPN: rng.Uint64(), Size: addr.Page4K}
					c.Insert(e)
					r.insert(e)
					check("insert", step)
				default:
					k, vpn := kinds[rng.Uint64n(4)], randVPN()
					p1, h1 := c.Lookup(k, vpn)
					p2, h2 := r.lookup(k, vpn)
					if h1 != h2 || p1 != p2 {
						t.Fatalf("step %d: Lookup(%v, %#x) = (%#x, %v), reference (%#x, %v)",
							step, k, vpn, p1, h1, p2, h2)
					}
					check("lookup", step)
				}
			}
			// Periodic flushes keep the cache from pinning at 100%, but a
			// run that never got half full would not be testing conflicts.
			if peakOcc < g.entries/2 {
				t.Fatalf("randomized run barely populated the cache: peak occupancy %d of %d", peakOcc, g.entries)
			}
		})
	}
}

// TestInsertRejectsOversizedVPN pins the 46-bit tag-field contract:
// inserting a VPN that cannot be represented must panic rather than
// silently alias another page.
func TestInsertRejectsOversizedVPN(t *testing.T) {
	c := NewSetAssoc("oversize", 8, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert of VPN ≥ 2^46 did not panic")
		}
	}()
	c.Insert(Entry{Kind: KindGuest, VPN: vpnMax, PPN: 1, Size: addr.Page4K})
}
