package tlb

import (
	"testing"
	"testing/quick"

	"vdirect/internal/addr"
	"vdirect/internal/trace"
)

func TestSetAssocBasic(t *testing.T) {
	c := NewSetAssoc("t", 8, 2)
	if _, hit := c.Lookup(KindGuest, 5); hit {
		t.Error("empty cache hit")
	}
	c.Insert(Entry{Kind: KindGuest, VPN: 5, PPN: 50})
	if ppn, hit := c.Lookup(KindGuest, 5); !hit || ppn != 50 {
		t.Errorf("lookup = %d, %v", ppn, hit)
	}
	// Same VPN, different kind must miss.
	if _, hit := c.Lookup(KindNested, 5); hit {
		t.Error("kind confusion")
	}
	lu, h := c.Stats()
	if lu != 3 || h != 1 {
		t.Errorf("stats = %d lookups, %d hits", lu, h)
	}
}

func TestSetAssocReplaceInPlace(t *testing.T) {
	c := NewSetAssoc("t", 4, 2)
	c.Insert(Entry{Kind: KindGuest, VPN: 2, PPN: 10})
	c.Insert(Entry{Kind: KindGuest, VPN: 2, PPN: 20})
	if ppn, hit := c.Lookup(KindGuest, 2); !hit || ppn != 20 {
		t.Errorf("replace in place failed: %d, %v", ppn, hit)
	}
	if c.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1 (no duplicate)", c.Occupancy())
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	// 2 sets x 2 ways; VPNs 0,2,4 share set 0.
	c := NewSetAssoc("t", 4, 2)
	c.Insert(Entry{Kind: KindGuest, VPN: 0, PPN: 100})
	c.Insert(Entry{Kind: KindGuest, VPN: 2, PPN: 102})
	c.Lookup(KindGuest, 0) // make VPN 0 MRU
	c.Insert(Entry{Kind: KindGuest, VPN: 4, PPN: 104})
	if _, hit := c.Lookup(KindGuest, 2); hit {
		t.Error("LRU entry survived eviction")
	}
	if _, hit := c.Lookup(KindGuest, 0); !hit {
		t.Error("MRU entry evicted")
	}
	if _, hit := c.Lookup(KindGuest, 4); !hit {
		t.Error("inserted entry missing")
	}
}

func TestSetAssocEvictionCount(t *testing.T) {
	// 2 sets x 2 ways; VPNs 0,2,4 share set 0.
	c := NewSetAssoc("t", 4, 2)
	c.Insert(Entry{Kind: KindGuest, VPN: 0, PPN: 100})
	c.Insert(Entry{Kind: KindGuest, VPN: 2, PPN: 102})
	if c.Evictions() != 0 {
		t.Errorf("evictions after fills = %d, want 0", c.Evictions())
	}
	// Refreshing an existing key in place is not an eviction.
	c.Insert(Entry{Kind: KindGuest, VPN: 0, PPN: 200})
	if c.Evictions() != 0 {
		t.Errorf("in-place refresh counted as eviction: %d", c.Evictions())
	}
	// Displacing a valid entry of a different key is.
	c.Insert(Entry{Kind: KindGuest, VPN: 4, PPN: 104})
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions())
	}
	// Nested and guest entries sharing a set: cross-kind displacement
	// still counts — that is the capacity-erosion signal.
	c.Insert(Entry{Kind: KindNested, VPN: 0, PPN: 300})
	if c.Evictions() != 2 {
		t.Errorf("evictions = %d, want 2", c.Evictions())
	}
}

func TestL2EvictionsExposed(t *testing.T) {
	l2 := NewL2(4, 2)
	for p := uint64(0); p < 6; p++ {
		l2.InsertGuest((2*p)<<addr.PageShift4K, p<<addr.PageShift4K) // even VPNs share set 0
	}
	if l2.Evictions() == 0 {
		t.Error("overfilled L2 reported no evictions")
	}
}

func TestSetAssocFlushAndInvalidate(t *testing.T) {
	c := NewSetAssoc("t", 8, 2)
	c.Insert(Entry{Kind: KindGuest, VPN: 1, PPN: 1})
	c.Insert(Entry{Kind: KindNested, VPN: 2, PPN: 2})
	c.FlushKind(KindNested)
	if _, hit := c.Lookup(KindNested, 2); hit {
		t.Error("FlushKind missed nested entry")
	}
	if _, hit := c.Lookup(KindGuest, 1); !hit {
		t.Error("FlushKind hit guest entry")
	}
	c.InvalidatePage(KindGuest, 1)
	if _, hit := c.Lookup(KindGuest, 1); hit {
		t.Error("InvalidatePage missed")
	}
	c.Insert(Entry{Kind: KindGuest, VPN: 3, PPN: 3})
	c.Flush()
	if c.Occupancy() != 0 {
		t.Error("Flush left entries")
	}
}

func TestSetAssocBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	NewSetAssoc("bad", 5, 2)
}

func TestL1MultiSizeParallelLookup(t *testing.T) {
	l1 := NewL1(SandyBridgeL1)
	l1.Insert(0x1000, 0xa000, addr.Page4K)
	l1.Insert(0x200000, 0x600000, addr.Page2M)
	l1.Insert(0x40000000, 0x80000000, addr.Page1G)

	pa, s, hit := l1.Lookup(0x1abc)
	if !hit || pa != 0xaabc || s != addr.Page4K {
		t.Errorf("4K lookup = %#x %v %v", pa, s, hit)
	}
	pa, s, hit = l1.Lookup(0x2abcde)
	if !hit || pa != 0x6abcde || s != addr.Page2M {
		t.Errorf("2M lookup = %#x %v %v", pa, s, hit)
	}
	pa, s, hit = l1.Lookup(0x40000000 + 0x123456)
	if !hit || pa != 0x80123456 || s != addr.Page1G {
		t.Errorf("1G lookup = %#x %v %v", pa, s, hit)
	}
	if _, _, hit := l1.Lookup(0x99999000); hit {
		t.Error("phantom hit")
	}
	l1.Flush()
	if _, _, hit := l1.Lookup(0x1abc); hit {
		t.Error("flush did not clear L1")
	}
}

func TestL1Capacity4K(t *testing.T) {
	l1 := NewL1(SandyBridgeL1)
	// Insert 65 distinct 4K pages that all map to different sets; with
	// 64 entries some must be evicted.
	for i := uint64(0); i < 65; i++ {
		l1.Insert(i<<12, i<<12, addr.Page4K)
	}
	hits := 0
	for i := uint64(0); i < 65; i++ {
		if _, _, hit := l1.Lookup(i << 12); hit {
			hits++
		}
	}
	if hits > 64 {
		t.Errorf("capacity exceeded: %d hits", hits)
	}
	if hits < 60 {
		t.Errorf("too few survivors: %d", hits)
	}
}

func TestL2SharedNestedCapacityErosion(t *testing.T) {
	// The key §IX.A mechanism: nested entries consume L2 capacity.
	l2 := NewL2(512, 4)
	// Fill with 512 guest entries (full occupancy).
	for i := uint64(0); i < 512; i++ {
		l2.InsertGuest(i<<12, i<<12)
	}
	if l2.Occupancy() != 512 {
		t.Fatalf("occupancy = %d", l2.Occupancy())
	}
	guestHitsBefore := 0
	for i := uint64(0); i < 512; i++ {
		if _, hit := l2.LookupGuest(i << 12); hit {
			guestHitsBefore++
		}
	}
	// Insert 256 nested entries; they must evict guest entries.
	for i := uint64(0); i < 256; i++ {
		l2.InsertNested(0x80000000+i<<12, i<<12)
	}
	guestHitsAfter := 0
	for i := uint64(0); i < 512; i++ {
		if _, hit := l2.LookupGuest(i << 12); hit {
			guestHitsAfter++
		}
	}
	if guestHitsAfter >= guestHitsBefore {
		t.Errorf("nested entries did not erode guest capacity: %d -> %d",
			guestHitsBefore, guestHitsAfter)
	}
	_, _, nested := l2.Stats()
	if nested != 256 {
		t.Errorf("nestedInserts = %d", nested)
	}
}

func TestL2NestedLookupOffsetPreserved(t *testing.T) {
	l2 := NewL2(512, 4)
	l2.InsertNested(0x5000, 0x9000)
	hpa, hit := l2.LookupNested(0x5123)
	if !hit || hpa != 0x9123 {
		t.Errorf("nested lookup = %#x %v", hpa, hit)
	}
	l2.FlushNested()
	if _, hit := l2.LookupNested(0x5123); hit {
		t.Error("FlushNested missed")
	}
}

func TestPWCSkipLevels(t *testing.T) {
	p := NewPWC()
	va := uint64(0x7f1234567000)
	if skip := p.SkipLevel(va); skip != 0 {
		t.Errorf("cold PWC skip = %d", skip)
	}
	// A full 4-level walk fills all three caches.
	p.FillFrom(va, 0, addr.LvlPT)
	if skip := p.SkipLevel(va); skip != 3 {
		t.Errorf("warm PWC skip = %d, want 3", skip)
	}
	// A va sharing only the 1G region gets skip=2.
	sibling2M := va + addr.PageSize2M
	if skip := p.SkipLevel(sibling2M); skip != 2 {
		t.Errorf("2M sibling skip = %d, want 2", skip)
	}
	// A va sharing only the PML4 entry gets skip=1.
	sibling1G := va + addr.PageSize1G
	if skip := p.SkipLevel(sibling1G); skip != 1 {
		t.Errorf("1G sibling skip = %d, want 1", skip)
	}
	p.Flush()
	if skip := p.SkipLevel(va); skip != 0 {
		t.Errorf("flushed PWC skip = %d", skip)
	}
}

func TestPWCPartialFill(t *testing.T) {
	p := NewPWC()
	va := uint64(0x40000000)
	// A 2M-leaf walk (ends at PD) fills PML4E and PDPTE only.
	p.FillFrom(va, 0, addr.LvlPD)
	if skip := p.SkipLevel(va); skip != 2 {
		t.Errorf("skip = %d, want 2", skip)
	}
}

func TestLookupInsertRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := trace.NewRand(seed)
		c := NewSetAssoc("prop", 64, 4)
		// Whatever we just inserted must be immediately findable.
		for i := 0; i < 200; i++ {
			vpn := r.Uint64n(1 << 20)
			c.Insert(Entry{Kind: KindGuest, VPN: vpn, PPN: vpn * 2})
			if ppn, hit := c.Lookup(KindGuest, vpn); !hit || ppn != vpn*2 {
				return false
			}
		}
		return c.Occupancy() <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEntryKindString(t *testing.T) {
	if KindGuest.String() != "guest" || KindNested.String() != "nested" {
		t.Error("kind strings wrong")
	}
}
