// Package tlb models the translation-caching hardware of the evaluated
// machine (Table VI of the paper):
//
//	L1 DTLB:  4KB 64-entry 4-way | 2MB 32-entry 4-way | 1GB 4-entry full
//	L2 TLB:   4KB 512-entry 4-way, shared by guest and nested entries
//	          ("EPT TLB/NTLB: shares the TLB (no separate structure)")
//	PWC:      paging-structure caches for PML4E/PDPTE/PDE entries
//
// The shared L2 is load-bearing for the reproduction: because nested
// (gPA→hPA) entries occupy the same 512 sets as guest (gVA→hPA) entries,
// virtualization shrinks the effective TLB and inflates miss counts by
// the 1.29-1.62× the paper measures (§IX.A).
package tlb

import (
	"fmt"

	"vdirect/internal/addr"
)

// EntryKind distinguishes the translation classes sharing the L2 TLB.
type EntryKind uint8

const (
	// KindGuest entries map gVA pages to hPA frames (or VA→PA native).
	KindGuest EntryKind = iota
	// KindNested entries map gPA pages to hPA frames, created while
	// walking the nested dimension.
	KindNested
)

func (k EntryKind) String() string {
	if k == KindGuest {
		return "guest"
	}
	return "nested"
}

// Entry is one cached translation.
type Entry struct {
	Kind EntryKind
	VPN  uint64 // source page number
	PPN  uint64 // target page number
	Size addr.PageSize
}

type slot struct {
	valid bool
	kind  EntryKind
	asid  uint16
	vpn   uint64
	ppn   uint64
	size  addr.PageSize
	lru   uint64
}

// SetAssoc is a generic set-associative translation cache with LRU
// replacement. Entries are keyed by (kind, vpn).
type SetAssoc struct {
	name  string
	sets  int
	ways  int
	slots []slot // sets*ways, row-major
	// mask indexes power-of-two set counts without division; every
	// shipped geometry (Table VI and the PWC sizes) is a power of two,
	// so the modulo fallback exists only for exotic test geometries.
	mask    uint64
	pow2    bool
	clock   uint64
	lookups uint64
	hits    uint64
	// evictions counts inserts that displaced a different valid entry
	// (refreshing an entry in place is not an eviction).
	evictions uint64
	// curASID tags guest entries with the running process's address-
	// space identifier (PCID). Guest entries only hit under the ASID
	// they were inserted with; nested entries are per-VM and ASID-blind.
	// The default ASID 0 reproduces untagged (flush-on-switch) TLBs.
	curASID uint16
}

// NewSetAssoc creates a cache of entries total entries organized as
// entries/ways sets. entries must be a multiple of ways.
func NewSetAssoc(name string, entries, ways int) *SetAssoc {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("tlb: bad geometry %d entries / %d ways", entries, ways))
	}
	sets := entries / ways
	return &SetAssoc{
		name:  name,
		sets:  sets,
		ways:  ways,
		slots: make([]slot, entries),
		mask:  uint64(sets - 1),
		pow2:  sets&(sets-1) == 0,
	}
}

func (c *SetAssoc) set(vpn uint64) []slot {
	var s int
	if c.pow2 {
		s = int(vpn & c.mask)
	} else {
		s = int(vpn) % c.sets
		if s < 0 {
			s = -s
		}
	}
	return c.slots[s*c.ways : (s+1)*c.ways]
}

// Lookup searches for (kind, vpn); on a hit it refreshes LRU state and
// returns the target page number.
func (c *SetAssoc) Lookup(kind EntryKind, vpn uint64) (ppn uint64, hit bool) {
	c.lookups++
	c.clock++
	set := c.set(vpn)
	for i := range set {
		s := &set[i]
		if s.valid && s.kind == kind && s.vpn == vpn &&
			(kind == KindNested || s.asid == c.curASID) {
			s.lru = c.clock
			c.hits++
			return s.ppn, true
		}
	}
	return 0, false
}

// SetASID changes the address-space identifier tagging guest entries.
func (c *SetAssoc) SetASID(a uint16) { c.curASID = a }

// FlushASID invalidates the guest entries of one address space.
func (c *SetAssoc) FlushASID(a uint16) {
	for i := range c.slots {
		if c.slots[i].kind == KindGuest && c.slots[i].asid == a {
			c.slots[i].valid = false
		}
	}
}

// Insert installs an entry, evicting the LRU way of its set if needed.
func (c *SetAssoc) Insert(e Entry) {
	c.clock++
	set := c.set(e.VPN)
	victim := 0
	for i := range set {
		s := &set[i]
		if s.valid && s.kind == e.Kind && s.vpn == e.VPN &&
			(e.Kind == KindNested || s.asid == c.curASID) {
			victim = i // refresh in place
			break
		}
		if !s.valid {
			victim = i
			break
		}
		if s.lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid && !(v.kind == e.Kind && v.vpn == e.VPN &&
		(e.Kind == KindNested || v.asid == c.curASID)) {
		c.evictions++
	}
	*v = slot{valid: true, kind: e.Kind, asid: c.curASID, vpn: e.VPN, ppn: e.PPN, size: e.Size, lru: c.clock}
}

// Flush invalidates every entry.
func (c *SetAssoc) Flush() {
	for i := range c.slots {
		c.slots[i].valid = false
	}
}

// FlushKind invalidates entries of one kind (e.g. nested entries on a
// nested-page-table change).
func (c *SetAssoc) FlushKind(kind EntryKind) {
	for i := range c.slots {
		if c.slots[i].kind == kind {
			c.slots[i].valid = false
		}
	}
}

// InvalidatePage removes a specific translation, as INVLPG would.
func (c *SetAssoc) InvalidatePage(kind EntryKind, vpn uint64) {
	set := c.set(vpn)
	for i := range set {
		s := &set[i]
		if s.valid && s.kind == kind && s.vpn == vpn {
			s.valid = false
		}
	}
}

// Stats returns lifetime lookups and hits.
func (c *SetAssoc) Stats() (lookups, hits uint64) { return c.lookups, c.hits }

// Evictions returns how many valid entries have been displaced by
// inserts (capacity/conflict replacements, not in-place refreshes).
func (c *SetAssoc) Evictions() uint64 { return c.evictions }

// Occupancy returns the number of valid entries (tests and the energy
// discussion use it).
func (c *SetAssoc) Occupancy() int {
	n := 0
	for i := range c.slots {
		if c.slots[i].valid {
			n++
		}
	}
	return n
}

// Geometry describes one TLB level's configuration, per page size.
type Geometry struct {
	Entries4K, Ways4K int
	Entries2M, Ways2M int
	Entries1G, Ways1G int
}

// SandyBridgeL1 is the evaluated machine's L1 DTLB (Table VI).
var SandyBridgeL1 = Geometry{
	Entries4K: 64, Ways4K: 4,
	Entries2M: 32, Ways2M: 4,
	Entries1G: 4, Ways1G: 4,
}

// L1 is the first-level data TLB: separate structures per page size,
// looked up in parallel. It holds only complete gVA→hPA translations.
type L1 struct {
	by4K, by2M, by1G *SetAssoc
}

// NewL1 builds an L1 TLB with the given geometry.
func NewL1(g Geometry) *L1 {
	return &L1{
		by4K: NewSetAssoc("L1-4K", g.Entries4K, g.Ways4K),
		by2M: NewSetAssoc("L1-2M", g.Entries2M, g.Ways2M),
		by1G: NewSetAssoc("L1-1G", g.Entries1G, g.Ways1G),
	}
}

func (l *L1) structFor(s addr.PageSize) *SetAssoc {
	switch s {
	case addr.Page4K:
		return l.by4K
	case addr.Page2M:
		return l.by2M
	default:
		return l.by1G
	}
}

// Lookup probes all three size structures in parallel, as hardware does.
// The probes are unrolled — this is the hottest lookup in the simulator
// and must not allocate or dispatch per size.
func (l *L1) Lookup(va uint64) (pa uint64, size addr.PageSize, hit bool) {
	if ppn, ok := l.by4K.Lookup(KindGuest, va>>addr.PageShift4K); ok {
		return ppn<<addr.PageShift4K + va&(addr.PageSize4K-1), addr.Page4K, true
	}
	if ppn, ok := l.by2M.Lookup(KindGuest, va>>addr.PageShift2M); ok {
		return ppn<<addr.PageShift2M + va&(addr.PageSize2M-1), addr.Page2M, true
	}
	if ppn, ok := l.by1G.Lookup(KindGuest, va>>addr.PageShift1G); ok {
		return ppn<<addr.PageShift1G + va&(addr.PageSize1G-1), addr.Page1G, true
	}
	return 0, 0, false
}

// Insert caches a completed translation at its page size.
func (l *L1) Insert(va, pa uint64, s addr.PageSize) {
	l.structFor(s).Insert(Entry{
		Kind: KindGuest,
		VPN:  addr.PageNumber(va, s),
		PPN:  addr.PageNumber(pa, s),
		Size: s,
	})
}

// Flush empties the L1 (guest context switch without PCID).
func (l *L1) Flush() {
	l.by4K.Flush()
	l.by2M.Flush()
	l.by1G.Flush()
}

// SetASID switches the L1's current address-space identifier.
func (l *L1) SetASID(a uint16) {
	l.by4K.SetASID(a)
	l.by2M.SetASID(a)
	l.by1G.SetASID(a)
}

// Invalidate drops any entry translating va, at every page size, as
// INVLPG does.
func (l *L1) Invalidate(va uint64) {
	for _, s := range []addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G} {
		l.structFor(s).InvalidatePage(KindGuest, addr.PageNumber(va, s))
	}
}

// L2 is the unified second-level TLB. Per Table VI it holds 4K guest
// entries; the same physical structure also holds nested (gPA→hPA)
// entries when virtualized, which is what erodes guest capacity.
// Guest 2M/1G translations bypass the L2 (Sandy Bridge behaviour).
type L2 struct {
	c *SetAssoc
	// nestedInserts counts nested entries installed, for the capacity-
	// pollution analysis.
	nestedInserts uint64
}

// NewL2 builds the shared second-level TLB.
func NewL2(entries, ways int) *L2 {
	return &L2{c: NewSetAssoc("L2", entries, ways)}
}

// LookupGuest probes for a guest 4K translation.
func (l *L2) LookupGuest(va uint64) (pa uint64, hit bool) {
	vpn := addr.PageNumber(va, addr.Page4K)
	ppn, ok := l.c.Lookup(KindGuest, vpn)
	if !ok {
		return 0, false
	}
	return ppn<<addr.PageShift4K + addr.Offset(va, addr.Page4K), true
}

// InsertGuest caches a guest 4K translation.
func (l *L2) InsertGuest(va, pa uint64) {
	l.c.Insert(Entry{Kind: KindGuest, VPN: va >> addr.PageShift4K, PPN: pa >> addr.PageShift4K, Size: addr.Page4K})
}

// LookupNested probes for a nested gPA→hPA translation at 4K grain.
func (l *L2) LookupNested(gpa uint64) (hpa uint64, hit bool) {
	ppn, ok := l.c.Lookup(KindNested, gpa>>addr.PageShift4K)
	if !ok {
		return 0, false
	}
	return ppn<<addr.PageShift4K + (gpa & (addr.PageSize4K - 1)), true
}

// InsertNested caches a nested translation in the shared structure.
func (l *L2) InsertNested(gpa, hpa uint64) {
	l.nestedInserts++
	l.c.Insert(Entry{Kind: KindNested, VPN: gpa >> addr.PageShift4K, PPN: hpa >> addr.PageShift4K, Size: addr.Page4K})
}

// Flush empties the L2.
func (l *L2) Flush() { l.c.Flush() }

// SetASID switches the L2's current address-space identifier.
func (l *L2) SetASID(a uint16) { l.c.SetASID(a) }

// InvalidateGuest drops the guest 4K entry for va, if present.
func (l *L2) InvalidateGuest(va uint64) {
	l.c.InvalidatePage(KindGuest, va>>addr.PageShift4K)
}

// FlushNested drops only nested entries (nested PT modification).
func (l *L2) FlushNested() { l.c.FlushKind(KindNested) }

// Stats returns lookups, hits and nested insertions.
func (l *L2) Stats() (lookups, hits, nestedInserts uint64) {
	lu, h := l.c.Stats()
	return lu, h, l.nestedInserts
}

// Occupancy returns valid entries in the shared structure.
func (l *L2) Occupancy() int { return l.c.Occupancy() }

// Evictions returns how many valid entries the shared structure has
// displaced — the §IX.A capacity-erosion pressure, directly observable.
func (l *L2) Evictions() uint64 { return l.c.Evictions() }

// PWC is the set of paging-structure caches (MMU caches) that let the
// walker skip upper levels: separate small fully-associative caches for
// PML4E, PDPTE and PDE entries, tagged by the virtual-address prefix.
// Sizes follow Intel-like paging-structure caches.
type PWC struct {
	pml4e *SetAssoc // tag: va bits 47:39
	pdpte *SetAssoc // tag: va bits 47:30
	pde   *SetAssoc // tag: va bits 47:21
}

// NewPWC builds paging-structure caches of conventional sizes.
func NewPWC() *PWC {
	return &PWC{
		pml4e: NewSetAssoc("PWC-PML4E", 2, 2),
		pdpte: NewSetAssoc("PWC-PDPTE", 4, 4),
		pde:   NewSetAssoc("PWC-PDE", 32, 4),
	}
}

// SkipLevel returns how many upper levels of a walk for va can be
// skipped (0 = none, 3 = start directly at the PT level) given cached
// paging structures. Deeper caches are preferred, as in hardware.
func (p *PWC) SkipLevel(va uint64) int {
	if _, ok := p.pde.Lookup(KindGuest, va>>addr.PageShift2M); ok {
		return 3
	}
	if _, ok := p.pdpte.Lookup(KindGuest, va>>addr.PageShift1G); ok {
		return 2
	}
	if _, ok := p.pml4e.Lookup(KindGuest, va>>(addr.PageShift1G+9)); ok {
		return 1
	}
	return 0
}

// FillFrom records the paging structures traversed by a completed walk
// that started at level startLvl and ended at endLvl (leaf level).
func (p *PWC) FillFrom(va uint64, startLvl, endLvl int) {
	for lvl := startLvl; lvl < endLvl; lvl++ {
		switch lvl {
		case addr.LvlPML4:
			p.pml4e.Insert(Entry{Kind: KindGuest, VPN: va >> (addr.PageShift1G + 9)})
		case addr.LvlPDPT:
			p.pdpte.Insert(Entry{Kind: KindGuest, VPN: va >> addr.PageShift1G})
		case addr.LvlPD:
			p.pde.Insert(Entry{Kind: KindGuest, VPN: va >> addr.PageShift2M})
		}
	}
}

// SetASID switches the paging-structure caches' address space: cached
// structure pointers are per-process state just like TLB entries.
func (p *PWC) SetASID(a uint16) {
	p.pml4e.SetASID(a)
	p.pdpte.SetASID(a)
	p.pde.SetASID(a)
}

// Flush empties all three caches.
func (p *PWC) Flush() {
	p.pml4e.Flush()
	p.pdpte.Flush()
	p.pde.Flush()
}
