// Package tlb models the translation-caching hardware of the evaluated
// machine (Table VI of the paper):
//
//	L1 DTLB:  4KB 64-entry 4-way | 2MB 32-entry 4-way | 1GB 4-entry full
//	L2 TLB:   4KB 512-entry 4-way, shared by guest and nested entries
//	          ("EPT TLB/NTLB: shares the TLB (no separate structure)")
//	PWC:      paging-structure caches for PML4E/PDPTE/PDE entries
//
// The shared L2 is load-bearing for the reproduction: because nested
// (gPA→hPA) entries occupy the same 512 sets as guest (gVA→hPA) entries,
// virtualization shrinks the effective TLB and inflates miss counts by
// the 1.29-1.62× the paper measures (§IX.A).
package tlb

import (
	"fmt"

	"vdirect/internal/addr"
)

// EntryKind distinguishes the translation classes sharing the L2 TLB.
type EntryKind uint8

const (
	// KindGuest entries map gVA pages to hPA frames (or VA→PA native).
	KindGuest EntryKind = iota
	// KindNested entries map gPA pages to hPA frames, created while
	// walking the nested dimension.
	KindNested
)

func (k EntryKind) String() string {
	if k == KindGuest {
		return "guest"
	}
	return "nested"
}

// Entry is one cached translation.
type Entry struct {
	Kind EntryKind
	VPN  uint64 // source page number
	PPN  uint64 // target page number
	Size addr.PageSize
}

// Tag-word layout. Each way's (valid, kind, asid, vpn) is packed into
// one uint64 so a set probe is ≤ways word compares against a
// precomputed key — the set's tag words share a cache line, where the
// old struct-per-way layout spread a 4-way set over three, and the
// ASID comparison costs no extra load or branch because it is part of
// the word.
//
//	bit 63      valid
//	bit 62      kind (0 guest, 1 nested)
//	bits 61:46  asid (guest entries; zero for ASID-blind nested entries)
//	bits 45:0   vpn
//
// VPNs are page numbers — va>>shift with shift ≥ 12 everywhere in the
// simulator — so 48-bit canonical virtual addresses and any guest-
// physical address below 2^58 fit the 46-bit field with room to spare;
// vpnMax enforces the contract (Insert panics, probes of out-of-range
// VPNs miss by construction because no tag can hold them).
//
// A guest entry hits only when the probe key carries the same ASID it
// was inserted under, so two address spaces' translations of the same
// vpn coexist in one set as distinct tag words. PPNs and LRU stamps
// live in parallel arrays, touched only on hit, insert or victim
// search.
const (
	tagValid  = 1 << 63
	tagKind   = 1 << 62
	asidShift = 46
	asidMask  = uint64(0xFFFF) << asidShift
	vpnMax    = 1 << asidShift // first VPN that no longer fits the tag word
)

// key builds the packed probe word for (kind, vpn) under the cache's
// current ASID. Nested entries are per-VM, not per-process, so their
// keys leave the ASID field zero and context switches do not mask them.
func (c *SetAssoc) key(kind EntryKind, vpn uint64) uint64 {
	if kind == KindNested {
		return tagValid | tagKind | vpn
	}
	return tagValid | uint64(c.curASID)<<asidShift | vpn
}

// plainKey builds the ASID-agnostic (kind, vpn) word used with asidMask
// stripped off a stored tag, for operations that match every address
// space (INVLPG-style shootdowns).
func plainKey(kind EntryKind, vpn uint64) uint64 {
	return tagValid | uint64(kind)<<62 | vpn
}

// SetAssoc is a generic set-associative translation cache with LRU
// replacement. Entries are keyed by (kind, vpn).
type SetAssoc struct {
	name string
	sets int
	ways int
	// Entry storage, interleaved per set: each set owns a block of
	// 3*ways words laid out [tags×ways][ppns×ways][lrus×ways], so one
	// probe touches at most two host cache lines (the tag words plus
	// the hit way's ppn/lru words sit within one 96-byte block for the
	// shipped 4-way geometries) where separate tag/ppn/lru arrays
	// spread a hit over three.
	slots []uint64
	// mask indexes power-of-two set counts without division; every
	// shipped geometry (Table VI and the PWC sizes) is a power of two,
	// so the modulo fallback exists only for exotic test geometries.
	mask    uint64
	pow2    bool
	clock   uint64
	lookups uint64
	hits    uint64
	// evictions counts inserts that displaced a different valid entry
	// (refreshing an entry in place is not an eviction).
	evictions uint64
	// occupied tracks valid entries so empty-structure probes (e.g. the
	// L1 2M/1G TLBs of a 4K-only run) skip the set scan. The lookup and
	// clock counters still advance on the skipped probe, so state
	// evolution is exactly that of a scan that found nothing.
	occupied int
	// curASID tags guest entries with the running process's address-
	// space identifier (PCID). Guest entries only hit under the ASID
	// they were inserted with; nested entries are per-VM and ASID-blind.
	// The default ASID 0 reproduces untagged (flush-on-switch) TLBs.
	curASID uint16
}

// NewSetAssoc creates a cache of entries total entries organized as
// entries/ways sets. entries must be a multiple of ways.
func NewSetAssoc(name string, entries, ways int) *SetAssoc {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("tlb: bad geometry %d entries / %d ways", entries, ways))
	}
	sets := entries / ways
	return &SetAssoc{
		name:  name,
		sets:  sets,
		ways:  ways,
		slots: make([]uint64, entries*3),
		mask:  uint64(sets - 1),
		pow2:  sets&(sets-1) == 0,
	}
}

// base returns the first slot index of vpn's set block (3*ways words:
// tags, then ppns, then lrus).
func (c *SetAssoc) base(vpn uint64) int {
	if c.pow2 {
		return int(vpn&c.mask) * (c.ways * 3)
	}
	return int(vpn%uint64(c.sets)) * (c.ways * 3)
}

// Lookup searches for (kind, vpn); on a hit it refreshes LRU state and
// returns the target page number.
func (c *SetAssoc) Lookup(kind EntryKind, vpn uint64) (ppn uint64, hit bool) {
	c.lookups++
	c.clock++
	if c.occupied == 0 || vpn >= vpnMax {
		// Nothing cached (or no tag word can hold the vpn): miss without
		// scanning the set.
		return 0, false
	}
	k := c.key(kind, vpn)
	b := c.base(vpn)
	// Unrolled 4-way probe: every shipped TLB/PWC geometry except the
	// 2-way PML4E cache is 4-way (Table VI). The key carries the ASID,
	// so a foreign address space's entry for the same vpn is just a
	// non-matching word — the probe is four pure compares.
	if c.ways == 4 {
		t := c.slots[b : b+12 : b+12]
		j := -1
		if t[0] == k {
			j = 0
		} else if t[1] == k {
			j = 1
		} else if t[2] == k {
			j = 2
		} else if t[3] == k {
			j = 3
		}
		if j < 0 {
			return 0, false
		}
		t[8+j] = c.clock
		c.hits++
		return t[4+j], true
	}
	for j := 0; j < c.ways; j++ {
		if c.slots[b+j] == k {
			c.slots[b+2*c.ways+j] = c.clock
			c.hits++
			return c.slots[b+c.ways+j], true
		}
	}
	return 0, false
}

// probeRun is the batched-probe chunk size: set indices and packed tag
// keys are precomputed for runs of this many probes before any tag
// word is compared, so the loads overlap instead of serializing behind
// each probe's hit/miss branch.
const probeRun = 8

// LookupRun probes a run of guest-kind VPNs in order under the current
// ASID, filling ppns[k] with the k-th probe's target on a hit, and
// stops at the first miss. It returns the number of leading hits.
// Counter and LRU evolution is exactly per-probe Lookup's — including
// the first missing probe when the return value is < len(vpns), whose
// lookup/clock charge has then already been taken, so the caller must
// not re-probe that VPN. Geometries other than the shipped 4-way fall
// back to per-probe Lookup (identical semantics, no pipelining).
func (c *SetAssoc) LookupRun(vpns, ppns []uint64) int {
	if c.ways != 4 {
		for i, vpn := range vpns {
			ppn, hit := c.Lookup(KindGuest, vpn)
			if !hit {
				return i
			}
			ppns[i] = ppn
		}
		return len(vpns)
	}
	n := 0
	for n < len(vpns) {
		run := len(vpns) - n
		if run > probeRun {
			run = probeRun
		}
		var keys [probeRun]uint64
		var bases [probeRun]int32
		var first [probeRun]uint64
		chunk := vpns[n : n+run]
		if c.occupied == 0 {
			// Empty structure: the first probe misses without a scan,
			// charging its counters exactly as Lookup's early-miss does.
			c.lookups++
			c.clock++
			return n
		}
		for i, vpn := range chunk {
			k := tagValid | uint64(c.curASID)<<asidShift | vpn
			if vpn >= vpnMax {
				k = 0 // no stored tag can match: a guaranteed miss
			}
			b := c.base(vpn)
			keys[i] = k
			bases[i] = int32(b)
			first[i] = c.slots[b] // overlap the runs' tag-line loads
		}
		for i := 0; i < run; i++ {
			c.lookups++
			c.clock++
			k := keys[i]
			if k == 0 {
				return n // out-of-range VPN: missed by construction
			}
			b := int(bases[i])
			t := c.slots[b : b+12 : b+12]
			j := -1
			if first[i] == k {
				j = 0
			} else if t[1] == k {
				j = 1
			} else if t[2] == k {
				j = 2
			} else if t[3] == k {
				j = 3
			}
			if j < 0 {
				return n
			}
			t[8+j] = c.clock
			c.hits++
			ppns[n] = t[4+j]
			n++
		}
	}
	return n
}

// SetASID changes the address-space identifier tagging guest entries.
func (c *SetAssoc) SetASID(a uint16) { c.curASID = a }

// FlushASID invalidates the guest entries of one address space.
func (c *SetAssoc) FlushASID(a uint16) {
	want := uint64(tagValid) | uint64(a)<<asidShift
	stride := c.ways * 3
	for b := 0; b < len(c.slots); b += stride {
		for j := 0; j < c.ways; j++ {
			if c.slots[b+j]&(tagValid|tagKind|asidMask) == want {
				c.slots[b+j] = 0
				c.occupied--
			}
		}
	}
}

// Insert installs an entry, evicting the LRU way of its set if needed.
func (c *SetAssoc) Insert(e Entry) {
	c.insert(e.Kind, e.VPN, e.PPN)
}

// insert is the lean form of Insert used on the translation hot path:
// same semantics, no Entry struct to build and copy at the call site.
func (c *SetAssoc) insert(kind EntryKind, vpn, ppn uint64) {
	c.clock++
	if vpn >= vpnMax {
		panic(fmt.Sprintf("tlb: %s: VPN %#x exceeds the 46-bit tag-word field", c.name, vpn))
	}
	k := c.key(kind, vpn)
	b := c.base(vpn)
	// One interleaved scan, not match-then-victim passes: the victim is
	// the refresh-match or the first invalid way, whichever appears
	// first in way order, else the LRU way — an invalid way before a
	// matching one wins, exactly as the struct-layout code behaved.
	// A way's scan test is match-or-invalid in one condition: an invalid
	// tag word can never equal k (k carries the valid bit), so the two
	// cannot both hold and the first way satisfying either wins, exactly
	// as the generic loop's paired break conditions do.
	if c.ways == 4 {
		// Unrolled like Lookup: the LRU words load only when no way
		// matched or was free. Way indices stay relative (masked to the
		// subslice length) so every store below is bounds-check free.
		t := c.slots[b : b+12 : b+12]
		v := 0
		switch {
		case t[0] == k || t[0]&tagValid == 0:
		case t[1] == k || t[1]&tagValid == 0:
			v = 1
		case t[2] == k || t[2]&tagValid == 0:
			v = 2
		case t[3] == k || t[3]&tagValid == 0:
			v = 3
		default:
			vLRU := t[8]
			if t[9] < vLRU {
				v, vLRU = 1, t[9]
			}
			if t[10] < vLRU {
				v, vLRU = 2, t[10]
			}
			if t[11] < vLRU {
				v = 3
			}
		}
		v &= 3
		old := t[v]
		if old&tagValid == 0 {
			c.occupied++
		} else if old != k {
			c.evictions++
		}
		t[v] = k
		t[4+v] = ppn
		t[8+v] = c.clock
		return
	}
	victim := 0
	{
		vLRU := c.slots[b+2*c.ways]
		for j := 0; j < c.ways; j++ {
			t := c.slots[b+j]
			if t == k {
				victim = j // refresh in place
				break
			}
			if t&tagValid == 0 {
				victim = j
				break
			}
			if l := c.slots[b+2*c.ways+j]; l < vLRU {
				victim, vLRU = j, l
			}
		}
	}
	if t := c.slots[b+victim]; t&tagValid == 0 {
		c.occupied++
	} else if t != k {
		c.evictions++
	}
	c.slots[b+victim] = k
	c.slots[b+c.ways+victim] = ppn
	c.slots[b+2*c.ways+victim] = c.clock
}

// Flush invalidates every entry.
func (c *SetAssoc) Flush() {
	stride := c.ways * 3
	for b := 0; b < len(c.slots); b += stride {
		for j := 0; j < c.ways; j++ {
			c.slots[b+j] = 0
		}
	}
	c.occupied = 0
}

// FlushKind invalidates entries of one kind (e.g. nested entries on a
// nested-page-table change).
func (c *SetAssoc) FlushKind(kind EntryKind) {
	want := tagValid | uint64(kind)<<62
	stride := c.ways * 3
	for b := 0; b < len(c.slots); b += stride {
		for j := 0; j < c.ways; j++ {
			if c.slots[b+j]&(tagValid|tagKind) == want {
				c.slots[b+j] = 0
				c.occupied--
			}
		}
	}
}

// InvalidatePage removes a specific translation, as INVLPG would. It
// matches every ASID's entry for the page: a shootdown must not leave
// another address space's stale translation behind.
func (c *SetAssoc) InvalidatePage(kind EntryKind, vpn uint64) {
	if c.occupied == 0 || vpn >= vpnMax {
		return
	}
	k := plainKey(kind, vpn)
	b := c.base(vpn)
	for j := 0; j < c.ways; j++ {
		if c.slots[b+j]&^asidMask == k {
			c.slots[b+j] = 0
			c.occupied--
		}
	}
}

// Stats returns lifetime lookups and hits.
func (c *SetAssoc) Stats() (lookups, hits uint64) { return c.lookups, c.hits }

// Evictions returns how many valid entries have been displaced by
// inserts (capacity/conflict replacements, not in-place refreshes).
func (c *SetAssoc) Evictions() uint64 { return c.evictions }

// Occupancy returns the number of valid entries (tests and the energy
// discussion use it).
func (c *SetAssoc) Occupancy() int { return c.occupied }

// Geometry describes one TLB level's configuration, per page size.
type Geometry struct {
	Entries4K, Ways4K int
	Entries2M, Ways2M int
	Entries1G, Ways1G int
}

// SandyBridgeL1 is the evaluated machine's L1 DTLB (Table VI).
var SandyBridgeL1 = Geometry{
	Entries4K: 64, Ways4K: 4,
	Entries2M: 32, Ways2M: 4,
	Entries1G: 4, Ways1G: 4,
}

// L1 is the first-level data TLB: separate structures per page size,
// looked up in parallel. It holds only complete gVA→hPA translations.
type L1 struct {
	by4K, by2M, by1G *SetAssoc
}

// NewL1 builds an L1 TLB with the given geometry.
func NewL1(g Geometry) *L1 {
	return &L1{
		by4K: NewSetAssoc("L1-4K", g.Entries4K, g.Ways4K),
		by2M: NewSetAssoc("L1-2M", g.Entries2M, g.Ways2M),
		by1G: NewSetAssoc("L1-1G", g.Entries1G, g.Ways1G),
	}
}

func (l *L1) structFor(s addr.PageSize) *SetAssoc {
	switch s {
	case addr.Page4K:
		return l.by4K
	case addr.Page2M:
		return l.by2M
	default:
		return l.by1G
	}
}

// Lookup probes all three size structures in parallel, as hardware does.
// The probes are unrolled — this is the hottest lookup in the simulator
// and must not allocate or dispatch per size.
func (l *L1) Lookup(va uint64) (pa uint64, size addr.PageSize, hit bool) {
	if ppn, ok := l.by4K.Lookup(KindGuest, va>>addr.PageShift4K); ok {
		return ppn<<addr.PageShift4K + va&(addr.PageSize4K-1), addr.Page4K, true
	}
	// The 2M and 1G structures sit permanently empty for 4K-only
	// workloads; their empty-structure miss (bump lookups and clock,
	// scan nothing) is inlined here to save two calls per probe —
	// bit-identical counter behaviour to SetAssoc.Lookup's own
	// occupied==0 early-miss path.
	if c := l.by2M; c.occupied == 0 {
		c.lookups++
		c.clock++
	} else if ppn, ok := c.Lookup(KindGuest, va>>addr.PageShift2M); ok {
		return ppn<<addr.PageShift2M + va&(addr.PageSize2M-1), addr.Page2M, true
	}
	if c := l.by1G; c.occupied == 0 {
		c.lookups++
		c.clock++
	} else if ppn, ok := c.Lookup(KindGuest, va>>addr.PageShift1G); ok {
		return ppn<<addr.PageShift1G + va&(addr.PageSize1G-1), addr.Page1G, true
	}
	return 0, 0, false
}

// Only4K reports whether the 2M and 1G structures are empty, meaning a
// probe decomposes into a 4K probe plus two empty-structure charges
// (see MissLarge) and the batched 4K run path is exact.
func (l *L1) Only4K() bool { return l.by2M.occupied == 0 && l.by1G.occupied == 0 }

// Lookup4KRun batch-probes the 4K structure for a run of 4K VPNs under
// the current ASID; see SetAssoc.LookupRun for the stop-at-first-miss
// contract. Valid only while Only4K() holds — a 4K hit never touches
// the 2M/1G structures, so a run of 4K hits is probe-for-probe
// identical to per-event Lookup calls.
func (l *L1) Lookup4KRun(vpns, ppns []uint64) int { return l.by4K.LookupRun(vpns, ppns) }

// MissLarge charges the empty 2M and 1G structures' probes for one
// event whose batched 4K probe missed — the same bump-and-scan-nothing
// accounting Lookup inlines, in the same probe order. Caller must have
// checked Only4K.
func (l *L1) MissLarge() {
	l.by2M.lookups++
	l.by2M.clock++
	l.by1G.lookups++
	l.by1G.clock++
}

// Insert caches a completed translation at its page size.
func (l *L1) Insert(va, pa uint64, s addr.PageSize) {
	if s == addr.Page4K {
		// The dominant insert of every 4K-grain workload, lean: no
		// struct-size switch, no Entry value to build and copy.
		l.by4K.insert(KindGuest, va>>addr.PageShift4K, pa>>addr.PageShift4K)
		return
	}
	l.structFor(s).insert(KindGuest, addr.PageNumber(va, s), addr.PageNumber(pa, s))
}

// Flush empties the L1 (guest context switch without PCID).
func (l *L1) Flush() {
	l.by4K.Flush()
	l.by2M.Flush()
	l.by1G.Flush()
}

// SetASID switches the L1's current address-space identifier.
func (l *L1) SetASID(a uint16) {
	l.by4K.SetASID(a)
	l.by2M.SetASID(a)
	l.by1G.SetASID(a)
}

// FlushASID drops one address space's entries at every page size, as a
// targeted PCID shootdown (INVPCID single-context) would.
func (l *L1) FlushASID(a uint16) {
	l.by4K.FlushASID(a)
	l.by2M.FlushASID(a)
	l.by1G.FlushASID(a)
}

// Invalidate drops any entry translating va, at every page size, as
// INVLPG does. The three probes are unrolled like Lookup's — building a
// []addr.PageSize literal here allocated on every unmap-heavy replay.
func (l *L1) Invalidate(va uint64) {
	l.by4K.InvalidatePage(KindGuest, va>>addr.PageShift4K)
	l.by2M.InvalidatePage(KindGuest, va>>addr.PageShift2M)
	l.by1G.InvalidatePage(KindGuest, va>>addr.PageShift1G)
}

// L2 is the unified second-level TLB. Per Table VI it holds 4K guest
// entries; the same physical structure also holds nested (gPA→hPA)
// entries when virtualized, which is what erodes guest capacity.
// Guest 2M/1G translations bypass the L2 (Sandy Bridge behaviour).
type L2 struct {
	c *SetAssoc
	// nestedInserts counts nested entries installed, for the capacity-
	// pollution analysis.
	nestedInserts uint64
}

// NewL2 builds the shared second-level TLB.
func NewL2(entries, ways int) *L2 {
	return &L2{c: NewSetAssoc("L2", entries, ways)}
}

// LookupGuest probes for a guest 4K translation.
func (l *L2) LookupGuest(va uint64) (pa uint64, hit bool) {
	ppn, ok := l.c.Lookup(KindGuest, va>>addr.PageShift4K)
	if !ok {
		return 0, false
	}
	return ppn<<addr.PageShift4K + va&(addr.PageSize4K-1), true
}

// InsertGuest caches a guest 4K translation.
func (l *L2) InsertGuest(va, pa uint64) {
	l.c.insert(KindGuest, va>>addr.PageShift4K, pa>>addr.PageShift4K)
}

// LookupNested probes for a nested gPA→hPA translation at 4K grain.
func (l *L2) LookupNested(gpa uint64) (hpa uint64, hit bool) {
	ppn, ok := l.c.Lookup(KindNested, gpa>>addr.PageShift4K)
	if !ok {
		return 0, false
	}
	return ppn<<addr.PageShift4K + (gpa & (addr.PageSize4K - 1)), true
}

// InsertNested caches a nested translation in the shared structure.
func (l *L2) InsertNested(gpa, hpa uint64) {
	l.nestedInserts++
	l.c.insert(KindNested, gpa>>addr.PageShift4K, hpa>>addr.PageShift4K)
}

// Flush empties the L2.
func (l *L2) Flush() { l.c.Flush() }

// SetASID switches the L2's current address-space identifier.
func (l *L2) SetASID(a uint16) { l.c.SetASID(a) }

// FlushASID drops one address space's guest entries; nested entries are
// per-VM and survive, exactly as on a PCID shootdown.
func (l *L2) FlushASID(a uint16) { l.c.FlushASID(a) }

// InvalidateGuest drops the guest 4K entry for va, if present.
func (l *L2) InvalidateGuest(va uint64) {
	l.c.InvalidatePage(KindGuest, va>>addr.PageShift4K)
}

// FlushNested drops only nested entries (nested PT modification).
func (l *L2) FlushNested() { l.c.FlushKind(KindNested) }

// Stats returns lookups, hits and nested insertions.
func (l *L2) Stats() (lookups, hits, nestedInserts uint64) {
	lu, h := l.c.Stats()
	return lu, h, l.nestedInserts
}

// Occupancy returns valid entries in the shared structure.
func (l *L2) Occupancy() int { return l.c.Occupancy() }

// Evictions returns how many valid entries the shared structure has
// displaced — the §IX.A capacity-erosion pressure, directly observable.
func (l *L2) Evictions() uint64 { return l.c.Evictions() }

// PWC is the set of paging-structure caches (MMU caches) that let the
// walker skip upper levels: separate small fully-associative caches for
// PML4E, PDPTE and PDE entries, tagged by the virtual-address prefix.
// Sizes follow Intel-like paging-structure caches.
type PWC struct {
	pml4e *SetAssoc // tag: va bits 47:39
	pdpte *SetAssoc // tag: va bits 47:30
	pde   *SetAssoc // tag: va bits 47:21
}

// NewPWC builds paging-structure caches of conventional sizes.
func NewPWC() *PWC {
	return &PWC{
		pml4e: NewSetAssoc("PWC-PML4E", 2, 2),
		pdpte: NewSetAssoc("PWC-PDPTE", 4, 4),
		pde:   NewSetAssoc("PWC-PDE", 32, 4),
	}
}

// SkipLevel returns how many upper levels of a walk for va can be
// skipped (0 = none, 3 = start directly at the PT level) given cached
// paging structures. Deeper caches are preferred, as in hardware.
func (p *PWC) SkipLevel(va uint64) int {
	if _, ok := p.pde.Lookup(KindGuest, va>>addr.PageShift2M); ok {
		return 3
	}
	if _, ok := p.pdpte.Lookup(KindGuest, va>>addr.PageShift1G); ok {
		return 2
	}
	if _, ok := p.pml4e.Lookup(KindGuest, va>>(addr.PageShift1G+9)); ok {
		return 1
	}
	return 0
}

// FillFrom records the paging structures traversed by a completed walk
// that started at level startLvl and ended at endLvl (leaf level).
func (p *PWC) FillFrom(va uint64, startLvl, endLvl int) {
	for lvl := startLvl; lvl < endLvl; lvl++ {
		switch lvl {
		case addr.LvlPML4:
			p.pml4e.Insert(Entry{Kind: KindGuest, VPN: va >> (addr.PageShift1G + 9)})
		case addr.LvlPDPT:
			p.pdpte.Insert(Entry{Kind: KindGuest, VPN: va >> addr.PageShift1G})
		case addr.LvlPD:
			p.pde.Insert(Entry{Kind: KindGuest, VPN: va >> addr.PageShift2M})
		}
	}
}

// SetASID switches the paging-structure caches' address space: cached
// structure pointers are per-process state just like TLB entries.
func (p *PWC) SetASID(a uint16) {
	p.pml4e.SetASID(a)
	p.pdpte.SetASID(a)
	p.pde.SetASID(a)
}

// FlushASID drops one address space's cached structure pointers.
func (p *PWC) FlushASID(a uint16) {
	p.pml4e.FlushASID(a)
	p.pdpte.FlushASID(a)
	p.pde.FlushASID(a)
}

// Flush empties all three caches.
func (p *PWC) Flush() {
	p.pml4e.Flush()
	p.pdpte.Flush()
	p.pde.Flush()
}
