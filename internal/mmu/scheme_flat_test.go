package mmu

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/segment"
)

func TestWalkReferenceCountsFlatNested(t *testing.T) {
	// Flattened nested tables: gL4–gL2 lookups cost one flat-table
	// reference each, so the cold 4K-on-4K walk drops from 24
	// references to 3 (flat) + 5 (gL1 nested + read) + 4 (final gPA).
	e := newEnv(t, 16, coldConfig())
	e.m.SetFlatNested(true)
	e.mapGuest(t, 0x400000, 0x800000, 4)
	if e.m.Mode() != ModeFlatNested {
		t.Fatalf("mode = %v", e.m.Mode())
	}
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	st := e.m.Stats()
	if st.WalkMemRefs != 12 {
		t.Errorf("flat 2D walk made %d references, want 12", st.WalkMemRefs)
	}
	if res.HPA != e.hostBase+0x800123 {
		t.Errorf("hPA = %#x, want %#x", res.HPA, e.hostBase+0x800123)
	}
	if st.SegmentChecks != 0 {
		t.Errorf("no segments, but %d checks", st.SegmentChecks)
	}
}

func TestFlatNested2MGuestLeaf(t *testing.T) {
	// A 2M guest leaf terminates at gL2, a flattened level: 3 flat
	// references plus the final gPA's nested walk (4) = 7, versus 19
	// for the base 2D walk.
	e := newEnv(t, 16, coldConfig())
	e.m.SetFlatNested(true)
	if err := e.gPT.Map(0x400000, 0x800000, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	if _, fault := e.m.Translate(0x400123); fault != nil {
		t.Fatal(fault)
	}
	if st := e.m.Stats(); st.WalkMemRefs != 7 {
		t.Errorf("flat 2M-guest walk made %d references, want 7", st.WalkMemRefs)
	}
}

func TestFlatNestedWithVMMSegment(t *testing.T) {
	// FlatNested composes with the VMM segment: the two remaining
	// nested translations (gL1 ref and final gPA) become checks,
	// leaving 4 references (3 flat + the gL1 entry read) and 2 checks.
	e := newEnv(t, 16, coldConfig())
	e.m.SetFlatNested(true)
	e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, e.guestSize))
	e.mapGuest(t, 0x400000, 0x800000, 4)
	if e.m.Mode() != ModeFlatNested {
		t.Fatalf("mode = %v", e.m.Mode())
	}
	if _, fault := e.m.Translate(0x400123); fault != nil {
		t.Fatal(fault)
	}
	st := e.m.Stats()
	if st.WalkMemRefs != 4 || st.SegmentChecks != 2 {
		t.Errorf("refs = %d, checks = %d; want 4, 2", st.WalkMemRefs, st.SegmentChecks)
	}
}

func TestFlatNestedDualFastPath(t *testing.T) {
	// With both segments covering, the flag changes nothing: the 0D
	// fast path absorbs the miss exactly as Dual Direct.
	e := newEnv(t, 16, coldConfig())
	e.m.SetFlatNested(true)
	e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x800000, 2<<20))
	e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, e.guestSize))
	if e.m.Mode() != ModeFlatNested {
		t.Fatalf("mode = %v", e.m.Mode())
	}
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	st := e.m.Stats()
	if !res.ZeroD || st.WalkMemRefs != 0 || st.SegmentChecks != 1 || st.ZeroDWalks != 1 {
		t.Errorf("0D path not taken: res = %+v, stats = %+v", res, st)
	}
	if res.HPA != e.hostBase+0x800123 {
		t.Errorf("hPA = %#x", res.HPA)
	}
}

func TestFlatNestedMatchesBaseTranslations(t *testing.T) {
	// The flat walker changes walk cost, never results: identical
	// access streams through a base and a flat stack produce identical
	// hPAs and identical fault addresses, with strictly fewer
	// references on the flat side.
	base := newEnv(t, 16, coldConfig())
	flat := newEnv(t, 16, coldConfig())
	flat.m.SetFlatNested(true)
	for _, e := range []*env{base, flat} {
		e.mapGuest(t, 0x400000, 0x800000, 8)
		// Balloon out one data page: final-gPA nested faults.
		if err := e.nPT.Unmap(0x804000, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	vas := []uint64{
		0x400123, 0x401456, 0x400789, 0x407000,
		0x404321, // ballooned: FaultNested at gPA 0x804321
		0x500000, // unmapped: FaultGuest
		0x402000, 0x400123,
	}
	for _, va := range vas {
		rb, fb := base.m.Translate(va)
		rf, ff := flat.m.Translate(va)
		if (fb == nil) != (ff == nil) {
			t.Fatalf("va %#x: base fault %v, flat fault %v", va, fb, ff)
		}
		if fb != nil {
			if fb.Kind != ff.Kind || fb.Addr != ff.Addr {
				t.Fatalf("va %#x: base fault %+v, flat fault %+v", va, fb, ff)
			}
			continue
		}
		if rb.HPA != rf.HPA {
			t.Fatalf("va %#x: base hPA %#x, flat hPA %#x", va, rb.HPA, rf.HPA)
		}
	}
	sb, sf := base.m.Stats(), flat.m.Stats()
	if sf.WalkMemRefs >= sb.WalkMemRefs {
		t.Errorf("flat made %d refs, base %d — flattening saved nothing", sf.WalkMemRefs, sb.WalkMemRefs)
	}
	if sb.GuestFaults != sf.GuestFaults || sb.NestedFaults != sf.NestedFaults {
		t.Errorf("fault counts diverge: base %+v, flat %+v", sb, sf)
	}
}

func TestFlatNestedLatentWhenNative(t *testing.T) {
	// The flag is latent outside virtualized operation and takes
	// effect when nested translation returns.
	e := newEnv(t, 16, coldConfig())
	e.m.SetFlatNested(true)
	e.m.SetNestedPageTable(nil)
	if e.m.Mode() != ModeNative {
		t.Fatalf("mode = %v, want Native while unvirtualized", e.m.Mode())
	}
	e.m.SetNestedPageTable(e.nPT)
	if e.m.Mode() != ModeFlatNested {
		t.Fatalf("mode = %v, want FlatNested after re-enabling", e.m.Mode())
	}
	e.m.SetFlatNested(false)
	if e.m.Mode() != ModeBaseVirtualized {
		t.Fatalf("mode = %v, want BaseVirtualized after clearing", e.m.Mode())
	}
}
