package mmu

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/segment"
	"vdirect/internal/telemetry/walkprof"
)

// Edge paths of the batched block loop and the fused miss path: large-
// page handover, pure last-page tails, mid-walk nested faults, the
// memo oracle's invalidation and verification machinery, and the
// per-scheme L2-hit fast exits.

// TestTranslateBlockLargePageHandover drives a native cell whose guest
// table mixes 4K and 2M leaves through TranslateBlock and checks it
// against per-event Translate on a twin: the first 2M insert must hand
// the rest of the block to the per-event loop, and a later block must
// skip the batched path entirely (large entries already resident).
func TestTranslateBlockLargePageHandover(t *testing.T) {
	build := func() *env {
		e := newEnv(t, 16, Config{})
		e.m.SetNestedPageTable(nil) // native
		e.mapGuest(t, 0x400000, 0x800000, 2)
		if err := e.gPT.Map(0x40000000, 0x1000000, addr.Page2M); err != nil {
			t.Fatal(err)
		}
		return e
	}
	blk, per := build(), build()

	vas := []uint64{
		0x400010, 0x400020, // 4K page: batched miss, then last-page hit
		0x40000008,             // 2M page: walk inserts large entry, handover
		0x40003000, 0x40003008, // same 2M entry, new 4K page: L1 hit + last-page
		0x401000, // second 4K page: per-event miss after handover
		0x900000, // unmapped: fault inside the per-event loop
		0x900010, // resumes after service
		0x400018, // back on the first page
	}
	evs := accessEvents(vas)
	outBlk := make([]Result, len(evs))

	// Per-event reference, with the same demand-fault service.
	outPer := make([]Result, len(evs))
	for i, va := range vas {
		for {
			res, fault := per.m.Translate(va)
			if fault == nil {
				outPer[i] = res
				break
			}
			if fault.Kind != FaultGuest {
				t.Fatalf("per-event: unexpected fault %v", fault)
			}
			if err := per.gPT.Map(fault.Addr&^(addr.PageSize4K-1), 0xC00000, addr.Page4K); err != nil {
				t.Fatal(err)
			}
			per.m.bumpEpoch()
		}
	}

	for i := 0; i < len(evs); {
		n, fault := blk.m.TranslateBlock(evs[i:], outBlk[i:])
		i += n
		if fault == nil {
			continue
		}
		if fault.Kind != FaultGuest {
			t.Fatalf("block: unexpected fault %v", fault)
		}
		if err := blk.gPT.Map(fault.Addr&^(addr.PageSize4K-1), 0xC00000, addr.Page4K); err != nil {
			t.Fatal(err)
		}
		blk.m.bumpEpoch()
	}
	for i := range outBlk {
		if outBlk[i].HPA != outPer[i].HPA || outBlk[i].L1Hit != outPer[i].L1Hit {
			t.Fatalf("event %d: block %+v, per-event %+v", i, outBlk[i], outPer[i])
		}
	}
	if bs, ps := blk.m.Stats(), per.m.Stats(); bs != ps {
		t.Fatalf("stats diverge:\nblock:     %+v\nper-event: %+v", bs, ps)
	}

	// A fresh block with the 2M entry still resident must take the
	// per-event loop from event zero and agree with the reference again.
	vas2 := []uint64{0x400010, 0x40000100, 0x40000108}
	evs2 := accessEvents(vas2)
	out2 := make([]Result, len(evs2))
	if n, fault := blk.m.TranslateBlock(evs2, out2); n != len(evs2) || fault != nil {
		t.Fatalf("resident-large block: n=%d fault=%v", n, fault)
	}
	for i, va := range vas2 {
		res, fault := per.m.Translate(va)
		if fault != nil {
			t.Fatal(fault)
		}
		if out2[i].HPA != res.HPA || out2[i].L1Hit != res.L1Hit {
			t.Fatalf("resident-large event %d: block %+v, per-event %+v", i, out2[i], res)
		}
	}
	if bs, ps := blk.m.Stats(), per.m.Stats(); bs != ps {
		t.Fatalf("resident-large stats diverge:\nblock:     %+v\nper-event: %+v", bs, ps)
	}
}

// TestTranslateBlockLastPageTail: a block whose every event lands on
// the page the previous block ended on gathers zero probes and must
// resolve entirely on the last-page cache.
func TestTranslateBlockLastPageTail(t *testing.T) {
	e := newEnv(t, 16, Config{})
	e.mapGuest(t, 0x400000, 0x800000, 1)

	out1 := make([]Result, 1)
	if n, fault := e.m.TranslateBlock(accessEvents([]uint64{0x400000}), out1); n != 1 || fault != nil {
		t.Fatalf("warmup block: n=%d fault=%v", n, fault)
	}
	st0 := e.m.Stats()

	vas := []uint64{0x400008, 0x400010, 0x400018}
	out := make([]Result, len(vas))
	if n, fault := e.m.TranslateBlock(accessEvents(vas), out); n != len(vas) || fault != nil {
		t.Fatalf("tail block: n=%d fault=%v", n, fault)
	}
	for i, va := range vas {
		want := out1[0].HPA&^(addr.PageSize4K-1) + va&(addr.PageSize4K-1)
		if out[i].HPA != want || !out[i].L1Hit {
			t.Fatalf("tail event %d: got %+v, want hPA %#x L1Hit", i, out[i], want)
		}
	}
	st := e.m.Stats()
	if st.Accesses != st0.Accesses+3 || st.L1Hits != st0.L1Hits+3 {
		t.Fatalf("tail block stats: %+v (before %+v)", st, st0)
	}
}

// TestSchemeL2HitFastExit evicts a page from the 64-entry L1 while the
// 512-entry L2 still holds it and checks the miss path resolves on the
// L2 probe in both unvirtualized schemes.
func TestSchemeL2HitFastExit(t *testing.T) {
	for _, mode := range []Mode{ModeNative, ModeDirectSegment} {
		t.Run(string(mode), func(t *testing.T) {
			e := newEnv(t, 16, Config{})
			e.m.SetNestedPageTable(nil)
			if mode == ModeDirectSegment {
				// Segment covers a range far from the probed pages, so
				// every access below exercises the walk/L2 path.
				e.m.SetGuestSegment(segment.NewRegisters(0x10000000, 0x20000000, 2<<20))
			}
			if e.m.Mode() != mode {
				t.Fatalf("mode = %v, want %v", e.m.Mode(), mode)
			}
			e.mapGuest(t, 0x400000, 0x800000, 96)
			for p := uint64(0); p < 96; p++ {
				if _, fault := e.m.Translate(0x400000 + p<<12); fault != nil {
					t.Fatal(fault)
				}
			}
			res, fault := e.m.Translate(0x400000)
			if fault != nil {
				t.Fatal(fault)
			}
			if !res.L2Hit || res.L1Hit {
				t.Fatalf("refill access resolved as %+v, want L2 hit", res)
			}
			if res.HPA != 0x800000 {
				t.Fatalf("hPA = %#x, want 0x800000", res.HPA)
			}
		})
	}
}

// TestSampledWalkFaultRefund: a period-1 sampler must refund the tick
// of a faulting walk (no sample recorded) and record successful walks,
// in the 1D and flattened walk wrappers.
func TestSampledWalkFaultRefund(t *testing.T) {
	t.Run("walk1D", func(t *testing.T) {
		e := newEnv(t, 16, Config{})
		e.m.SetNestedPageTable(nil)
		s := sampleEverything(e.m)
		e.mapGuest(t, 0x400000, 0x800000, 1)
		if _, fault := e.m.Translate(0x900000); fault == nil {
			t.Fatal("unmapped access did not fault")
		}
		if s.Len() != 0 {
			t.Fatalf("faulting walk recorded %d samples", s.Len())
		}
		if _, fault := e.m.Translate(0x400000); fault != nil {
			t.Fatal(fault)
		}
		if s.Len() != 1 || s.Samples()[0].Class != walkprof.ClassWalk1D {
			t.Fatalf("samples after successful walk: %+v", s.Samples())
		}
	})
	t.Run("walkFlat", func(t *testing.T) {
		e := newEnv(t, 16, Config{})
		e.m.SetFlatNested(true)
		s := sampleEverything(e.m)
		e.mapGuest(t, 0x400000, 0x800000, 1)
		if _, fault := e.m.Translate(0x400000); fault != nil {
			t.Fatal(fault)
		}
		if s.Len() != 1 {
			t.Fatalf("samples after successful flat walk: %+v", s.Samples())
		}
		if _, fault := e.m.Translate(0x900000); fault == nil {
			t.Fatal("unmapped access did not fault")
		}
		if s.Len() != 1 {
			t.Fatalf("faulting flat walk recorded a sample: %+v", s.Samples())
		}
	})
}

// TestFusedWalkNestedFaults drives the two nested-fault exits of the
// fused miss path: the final gPA missing from the nested table, and a
// guest-table reference whose nested mapping the VMM pulled.
func TestFusedWalkNestedFaults(t *testing.T) {
	t.Run("final-gpa", func(t *testing.T) {
		e := newEnv(t, 16, Config{})
		// gPA beyond the nested-mapped backing: the guest walk succeeds,
		// the final nested translation faults.
		if err := e.gPT.Map(0x700000, 0x2000000, addr.Page4K); err != nil {
			t.Fatal(err)
		}
		_, fault := e.m.Translate(0x700008)
		if fault == nil || fault.Kind != FaultNested || fault.Addr != 0x2000008 {
			t.Fatalf("fault = %v, want nested at 0x2000008", fault)
		}
		if st := e.m.Stats(); st.NestedFaults != 1 {
			t.Fatalf("NestedFaults = %d, want 1", st.NestedFaults)
		}
	})
	t.Run("table-ref", func(t *testing.T) {
		e := newEnv(t, 16, Config{})
		e.mapGuest(t, 0x400000, 0x800000, 2)
		if _, fault := e.m.Translate(0x400000); fault != nil {
			t.Fatal(fault)
		}
		// Pull the nested mapping under the guest PT-level node, then
		// invalidate nested state as a real VMM unmap would. The walk
		// cache precheck still succeeds (the guest table is intact), so
		// the fault surfaces inside the fast-path reference loop.
		_, _, refs, ok := e.gPT.Walk(0x401000, nil)
		if !ok || len(refs) == 0 {
			t.Fatal("guest walk failed")
		}
		node := refs[len(refs)-1].Addr &^ (addr.PageSize4K - 1)
		if err := e.nPT.Unmap(node, addr.Page4K); err != nil {
			t.Fatal(err)
		}
		e.m.InvalidateNested()
		_, fault := e.m.Translate(0x401000)
		if fault == nil || fault.Kind != FaultNested {
			t.Fatalf("fault = %v, want nested at the PT node", fault)
		}
		if fault.Addr&^(addr.PageSize4K-1) != node {
			t.Fatalf("fault addr %#x not in unmapped node page %#x", fault.Addr, node)
		}
	})
	t.Run("table-ref-general", func(t *testing.T) {
		// Same unmapped-node fault through the general (sampled) path:
		// walkGuestTableSkip's nested loop and nestedWalk2D's fault exit.
		e := newEnv(t, 16, Config{})
		e.mapGuest(t, 0x400000, 0x800000, 2)
		if _, fault := e.m.Translate(0x400000); fault != nil {
			t.Fatal(fault)
		}
		_, _, refs, ok := e.gPT.Walk(0x401000, nil)
		if !ok || len(refs) == 0 {
			t.Fatal("guest walk failed")
		}
		node := refs[len(refs)-1].Addr &^ (addr.PageSize4K - 1)
		if err := e.nPT.Unmap(node, addr.Page4K); err != nil {
			t.Fatal(err)
		}
		e.m.InvalidateNested()
		s := sampleEverything(e.m) // sampler disables the fused gate
		_, fault := e.m.Translate(0x401000)
		if fault == nil || fault.Kind != FaultNested {
			t.Fatalf("fault = %v, want nested", fault)
		}
		if s.Len() != 0 {
			t.Fatalf("faulting 2D walk recorded %d samples", s.Len())
		}
	})
}

// TestNestedWalkSkipClamp: a nested 2M leaf walked while the nested
// PDE cache covers its block yields a skip level (3) past the walk's
// last reference (index 2) — the clamp must charge exactly the leaf.
// Exercised on both the fused path and the general (sampled) path.
func TestNestedWalkSkipClamp(t *testing.T) {
	e := newEnv(t, 16, Config{})
	// Prime the nested PDE cache for the 2M block at gPA 0x800000 with
	// an ordinary 4K nested walk.
	e.mapGuest(t, 0x400000, 0x800000, 1)
	if _, fault := e.m.Translate(0x400000); fault != nil {
		t.Fatal(fault)
	}
	// VMM repacks the block as one 2M nested page. The nested PWC is
	// deliberately left warm: its stale skip hint must be clamped, not
	// trusted.
	for off := uint64(0); off < addr.PageSize2M; off += addr.PageSize4K {
		if err := e.nPT.Unmap(0x800000+off, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.nPT.Map(0x800000, 0x40000000, addr.Page2M); err != nil {
		t.Fatal(err)
	}

	// Fused path: a fresh gVA whose gPA sits in the repacked block.
	if err := e.gPT.Map(0x402000, 0x801000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	res, fault := e.m.Translate(0x402008)
	if fault != nil {
		t.Fatal(fault)
	}
	if want := uint64(0x40000000 + 0x1008); res.HPA != want {
		t.Fatalf("fused 2M-block hPA = %#x, want %#x", res.HPA, want)
	}

	// General path: another page in the block with a sampler attached.
	if err := e.gPT.Map(0x404000, 0x802000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	sampleEverything(e.m)
	res, fault = e.m.Translate(0x404010)
	if fault != nil {
		t.Fatal(fault)
	}
	if want := uint64(0x40000000 + 0x2010); res.HPA != want {
		t.Fatalf("general 2M-block hPA = %#x, want %#x", res.HPA, want)
	}
}

// TestMemoEscapeGenDrift: a direct escape-filter mutation (the OS/VMM
// writes filters without an MMU call) must age out the whole memo on
// the next probe — the drifted generation forces a miss even for a
// page recorded in the same epoch regime.
func TestMemoEscapeGenDrift(t *testing.T) {
	e := newEnv(t, 16, Config{})
	e.m.SetMemoCheck(true)
	e.mapGuest(t, 0x400000, 0x800000, 1)
	if _, fault := e.m.Translate(0x400000); fault != nil {
		t.Fatal(fault)
	}
	if hits, misses := e.m.MemoStats(); hits != 0 || misses != 1 {
		t.Fatalf("after first miss: memo %d/%d", hits, misses)
	}
	e.m.GuestEscapeFilter().Insert(0x123)
	e.m.FlushTLBs()
	if _, fault := e.m.Translate(0x400000); fault != nil {
		t.Fatal(fault)
	}
	if hits, misses := e.m.MemoStats(); hits != 0 || misses != 2 {
		t.Fatalf("after drifted probe: memo %d/%d, want 0/2", hits, misses)
	}
	if g := e.m.escV.Gen() + e.m.escG.Gen(); e.m.memoEscGen != g {
		t.Fatalf("memoEscGen %d not resynced to %d", e.m.memoEscGen, g)
	}
}

// TestMemoVerifyPanics pins the oracle's two divergence checks: a
// replayed frame differing from the recorded one, and a recorded miss
// class that the fused gate could never have produced.
func TestMemoVerifyPanics(t *testing.T) {
	mustPanic := func(t *testing.T, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("memoVerify did not panic")
			}
		}()
		f()
	}
	m := New(Config{})
	t.Run("hpa-mismatch", func(t *testing.T) {
		e := &memoEntry{hpa: 0x1000, aux: memoAux(5, 2, walkprof.ClassWalkNeither)}
		mustPanic(t, func() { m.memoVerify(e, 0xABC000, 0x2000) })
	})
	t.Run("class-mismatch", func(t *testing.T) {
		e := &memoEntry{hpa: 0x1000, aux: memoAux(5, 2, walkprof.ClassWalk1D)}
		mustPanic(t, func() { m.memoVerify(e, 0xABC000, 0x1008) })
	})
}
