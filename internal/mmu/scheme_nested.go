package mmu

// nested2DScheme is the shared miss path of the virtualized schemes
// that resolve through the 2D walk machine: probe the L2, then walk.
// Which dimensions the walk flattens is decided inside nestedWalk2D by
// the segment registers, exactly as Figure 5(b)'s hardware does — the
// embedding schemes differ in identity (name, cost table,
// requirements), not in miss-path code.
type nested2DScheme struct{}

func (nested2DScheme) Virtualized() bool { return true }

func (nested2DScheme) TranslateMiss(m *MMU, gva uint64) (Result, *Fault) {
	var cycles uint64
	if res, hit := m.probeL2(gva, &cycles); hit {
		return res, nil
	}
	return m.walk2D(gva, cycles)
}

// baseVirtualizedScheme is the unmodified 2D baseline: no segments,
// gL·(nL+1)+nL references per walk (24 for 4K-on-4K).
type baseVirtualizedScheme struct{ nested2DScheme }

func (baseVirtualizedScheme) Name() Mode { return ModeBaseVirtualized }

func (baseVirtualizedScheme) Keys() KeyTemplate {
	return KeyTemplate{GuestASIDTagged: true, NestedShared: true}
}

func (baseVirtualizedScheme) Requirements() Requirements {
	return Requirements{Virtualized: true}
}

func (baseVirtualizedScheme) WalkCost(in CostInput) WalkCost {
	return cost2D(in, false, false)
}

// vmmDirectScheme flattens the nested dimension with the VMM segment:
// guest walks become 1D (4 references, Δ_VD = 5 checks).
type vmmDirectScheme struct{ nested2DScheme }

func (vmmDirectScheme) Name() Mode { return ModeVMMDirect }

func (vmmDirectScheme) Keys() KeyTemplate {
	return KeyTemplate{GuestASIDTagged: true, NestedShared: true}
}

func (vmmDirectScheme) Requirements() Requirements {
	return Requirements{Virtualized: true, VMMSegment: true, ContiguousBacking: true}
}

func (vmmDirectScheme) WalkCost(in CostInput) WalkCost {
	return cost2D(in, false, true)
}

// guestDirectScheme flattens the guest dimension with the guest
// segment: covered gVAs resolve to gPA by arithmetic, leaving one
// nested walk (4 references, Δ_GD = 1 check).
type guestDirectScheme struct{ nested2DScheme }

func (guestDirectScheme) Name() Mode { return ModeGuestDirect }

func (guestDirectScheme) Keys() KeyTemplate {
	return KeyTemplate{GuestASIDTagged: true, NestedShared: true}
}

func (guestDirectScheme) Requirements() Requirements {
	return Requirements{Virtualized: true, GuestSegment: true}
}

func (guestDirectScheme) WalkCost(in CostInput) WalkCost {
	return cost2D(in, true, false)
}

// dualDirectScheme flattens both dimensions: an address covered by
// both segments resolves in zero references and one (combined)
// base-bound check — the 0D path.
type dualDirectScheme struct{ nested2DScheme }

func (dualDirectScheme) Name() Mode { return ModeDualDirect }

func (dualDirectScheme) Keys() KeyTemplate {
	return KeyTemplate{GuestASIDTagged: true, NestedShared: true}
}

func (dualDirectScheme) Requirements() Requirements {
	return Requirements{
		Virtualized:       true,
		GuestSegment:      true,
		VMMSegment:        true,
		ContiguousBacking: true,
	}
}

func (dualDirectScheme) WalkCost(in CostInput) WalkCost {
	if in.GuestCovered && in.VMMCovered {
		// The 0D fast path: Table II counts the two checks performed
		// together as one.
		return WalkCost{Checks: 1}
	}
	return cost2D(in, true, true)
}

func (dualDirectScheme) TranslateMiss(m *MMU, gva uint64) (Result, *Fault) {
	var cycles uint64
	if res, ok := m.dualFastPath(gva, &cycles); ok {
		return res, nil
	}
	if res, hit := m.probeL2(gva, &cycles); hit {
		return res, nil
	}
	return m.walk2D(gva, cycles)
}
