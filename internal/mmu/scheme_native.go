package mmu

import (
	"vdirect/internal/addr"
	"vdirect/internal/telemetry/walkprof"
)

// nativeScheme is unvirtualized 1D paging: no segments, up to
// GuestLevels references per walk.
type nativeScheme struct{}

func (nativeScheme) Name() Mode        { return ModeNative }
func (nativeScheme) Virtualized() bool { return false }

func (nativeScheme) Keys() KeyTemplate { return KeyTemplate{GuestASIDTagged: true} }

func (nativeScheme) Requirements() Requirements { return Requirements{} }

func (nativeScheme) WalkCost(in CostInput) WalkCost {
	return WalkCost{Refs: in.GuestLevels}
}

func (nativeScheme) TranslateMiss(m *MMU, gva uint64) (Result, *Fault) {
	var cycles uint64
	if res, hit := m.probeL2(gva, &cycles); hit {
		return res, nil
	}
	return m.walk1D(gva, cycles)
}

// directSegmentScheme is the unvirtualized direct segment (§III): a
// covered VA resolves by offset arithmetic in one base-bound check;
// uncovered (or escaped) addresses walk natively.
type directSegmentScheme struct{}

func (directSegmentScheme) Name() Mode        { return ModeDirectSegment }
func (directSegmentScheme) Virtualized() bool { return false }

func (directSegmentScheme) Keys() KeyTemplate { return KeyTemplate{GuestASIDTagged: true} }

func (directSegmentScheme) Requirements() Requirements {
	return Requirements{GuestSegment: true, ContiguousBacking: true}
}

func (directSegmentScheme) WalkCost(in CostInput) WalkCost {
	if in.GuestCovered {
		return WalkCost{Checks: 1}
	}
	// The segment check is charged only on the covered fast path, so an
	// invoked walk costs exactly the guest levels.
	return WalkCost{Refs: in.GuestLevels}
}

func (directSegmentScheme) TranslateMiss(m *MMU, gva uint64) (Result, *Fault) {
	var cycles uint64
	if res, hit := m.probeL2(gva, &cycles); hit {
		return res, nil
	}
	// Segment calculation in parallel with the L2 lookup; covered
	// addresses skip the walk (§III.D).
	if m.segs.Guest.Enabled() && m.segs.Guest.Contains(gva) && !m.escapeGuest(gva) {
		cycles += m.cfg.SegmentCheckCycles
		m.stats.SegmentChecks++
		m.stats.ZeroDWalks++
		m.stats.GuestSegHits++
		m.stats.WalkCycles += cycles
		pa := m.segs.Guest.Translate(gva)
		m.l1.Insert(gva, pa, addr.Page4K)
		m.l2.InsertGuest(gva, pa)
		if m.sampler != nil && m.sampler.Tick() {
			m.sampler.Record(string(m.scheme.Name()), gva>>addr.PageShift4K,
				addr.Page4K, walkprof.ClassZeroD, 0, cycles, m.asid)
		}
		return Result{HPA: pa, Cycles: cycles, ZeroD: true}, nil
	}
	return m.walk1D(gva, cycles)
}
