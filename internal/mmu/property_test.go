package mmu

import (
	"testing"
	"testing/quick"

	"vdirect/internal/addr"
	"vdirect/internal/segment"
	"vdirect/internal/trace"
)

// reference computes the architecturally correct translation by
// composing segments and page tables directly, with no caching.
func reference(e *env, gva uint64) (uint64, bool) {
	var gpa uint64
	guestSeg := e.m.GuestSegment()
	if guestSeg.Enabled() && guestSeg.Contains(gva) &&
		!e.m.GuestEscapeFilter().MayContain(gva>>addr.PageShift4K) {
		gpa = guestSeg.Translate(gva)
	} else {
		pa, _, ok := e.gPT.Translate(gva)
		if !ok {
			return 0, false
		}
		gpa = pa
	}
	vmmSeg := e.m.VMMSegment()
	if vmmSeg.Enabled() && vmmSeg.Contains(gpa) &&
		!e.m.VMMEscapeFilter().MayContain(gpa>>addr.PageShift4K) {
		return vmmSeg.Translate(gpa), true
	}
	hpa, _, ok := e.nPT.Translate(gpa)
	return hpa, ok
}

// TestTranslateMatchesReferenceProperty drives randomized register
// configurations, mappings, escapes and access sequences through the
// fully cached MMU and checks every result against the reference. This
// is the invariant that matters most: no cache in the hierarchy may
// ever yield a translation the architecture wouldn't.
func TestTranslateMatchesReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := trace.NewRand(seed)
		e, err := buildEnv(16, Config{})
		if err != nil {
			return false
		}
		// Random guest mappings in [0x400000, 0x400000+4MB).
		const span = 4 << 20
		for i := 0; i < 64; i++ {
			gva := 0x400000 + (rng.Uint64n(span) &^ 0xfff)
			gpa := 0x800000 + (rng.Uint64n(4<<20) &^ 0xfff)
			e.gPT.Map(gva, gpa, addr.Page4K) // overlaps fine: first wins
		}
		// Randomly enable segments over sub-ranges.
		if rng.Uint64n(2) == 0 {
			base := uint64(0x400000) + (rng.Uint64n(span/2) &^ 0xfff)
			size := (rng.Uint64n(span/2) &^ 0xfff) + 0x1000
			e.m.SetGuestSegment(segment.NewRegisters(base, 0xc00000, size))
		}
		if rng.Uint64n(2) == 0 {
			size := (rng.Uint64n(e.guestSize/2) &^ 0xfff) + 0x1000
			e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, size))
		}
		// Random escapes.
		for i := 0; i < int(rng.Uint64n(4)); i++ {
			e.m.VMMEscapeFilter().Insert(rng.Uint64n(e.guestSize >> 12))
		}
		for i := 0; i < int(rng.Uint64n(3)); i++ {
			e.m.GuestEscapeFilter().Insert((0x400000 + rng.Uint64n(span)) >> 12)
		}
		// Access sequence with heavy page reuse so caches fill and hit.
		for i := 0; i < 3000; i++ {
			gva := 0x400000 + rng.Uint64n(span)
			if rng.Uint64n(4) != 0 {
				gva = 0x400000 + (rng.Uint64n(64) << 12) + rng.Uint64n(4096)
			}
			want, wantOK := reference(e, gva)
			res, fault := e.m.Translate(gva)
			if wantOK != (fault == nil) {
				t.Logf("seed %d: gva %#x fault mismatch (want ok=%v, fault=%v)", seed, gva, wantOK, fault)
				return false
			}
			if wantOK && res.HPA != want {
				t.Logf("seed %d: gva %#x => %#x, reference %#x", seed, gva, res.HPA, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestTranslateStableUnderCachePressure replays one address repeatedly
// between floods of conflicting traffic; the translation must never
// change even as every cache level churns.
func TestTranslateStableUnderCachePressure(t *testing.T) {
	e, err := buildEnv(16, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 2048; p++ {
		if err := e.gPT.Map(0x400000+p<<12, 0x800000+p<<12, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	target := uint64(0x400000 + 0x123)
	first, fault := e.m.Translate(target)
	if fault != nil {
		t.Fatal(fault)
	}
	rng := trace.NewRand(9)
	for round := 0; round < 50; round++ {
		for i := 0; i < 700; i++ {
			if _, fault := e.m.Translate(0x400000 + (rng.Uint64n(2048) << 12)); fault != nil {
				t.Fatal(fault)
			}
		}
		got, fault := e.m.Translate(target)
		if fault != nil {
			t.Fatal(fault)
		}
		if got.HPA != first.HPA {
			t.Fatalf("round %d: translation drifted %#x -> %#x", round, first.HPA, got.HPA)
		}
	}
}
