package mmu

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/pagetable"
	"vdirect/internal/segment"
)

// TestASIDIsolation verifies tagged entries never leak across address
// spaces: two processes mapping the same gVA to different frames must
// each see their own translation, with no intervening flushes.
func TestASIDIsolation(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	e.mapGuest(t, 0x400000, 0x800000, 1)
	gpt2, err := pagetable.New(e.guestMem)
	if err != nil {
		t.Fatal(err)
	}
	if err := gpt2.Map(0x400000, 0xc00000, addr.Page4K); err != nil {
		t.Fatal(err)
	}

	e.m.ContextSwitchASID(e.gPT, segment.Disabled(), 1)
	r1, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	e.m.ContextSwitchASID(gpt2, segment.Disabled(), 2)
	r2, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	if r2.L1Hit {
		t.Fatal("process 2 hit on process 1's entry")
	}
	if r1.HPA == r2.HPA {
		t.Fatal("ASID confusion: both processes translated identically")
	}
	// Switching back, process 1's entry is still warm — the PCID win.
	e.m.ContextSwitchASID(e.gPT, segment.Disabled(), 1)
	r3, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	if !r3.L1Hit {
		t.Error("process 1's entries were lost despite ASID tagging")
	}
	if r3.HPA != r1.HPA {
		t.Errorf("translation changed: %#x vs %#x", r3.HPA, r1.HPA)
	}
}

// TestASIDVsFlushCost quantifies the benefit: with untagged switches
// every timeslice re-walks; with ASIDs only the first does.
func TestASIDVsFlushCost(t *testing.T) {
	run := func(tagged bool) uint64 {
		e := newEnv(t, 16, coldConfig())
		e.mapGuest(t, 0x400000, 0x800000, 8)
		gpt2, err := pagetable.New(e.guestMem)
		if err != nil {
			t.Fatal(err)
		}
		for p := uint64(0); p < 8; p++ {
			if err := gpt2.Map(0x600000+p<<12, 0xa00000+p<<12, addr.Page4K); err != nil {
				t.Fatal(err)
			}
		}
		touch := func(base uint64) {
			for p := uint64(0); p < 8; p++ {
				if _, fault := e.m.Translate(base + p<<12); fault != nil {
					t.Fatal(fault)
				}
			}
		}
		for slice := 0; slice < 10; slice++ {
			if tagged {
				e.m.ContextSwitchASID(e.gPT, segment.Disabled(), 1)
			} else {
				e.m.ContextSwitch(e.gPT, segment.Disabled())
			}
			touch(0x400000)
			if tagged {
				e.m.ContextSwitchASID(gpt2, segment.Disabled(), 2)
			} else {
				e.m.ContextSwitch(gpt2, segment.Disabled())
			}
			touch(0x600000)
		}
		return e.m.Stats().Walks
	}
	flushWalks := run(false)
	taggedWalks := run(true)
	if taggedWalks >= flushWalks {
		t.Errorf("tagged walks %d >= flush walks %d", taggedWalks, flushWalks)
	}
	// With 16 pages total and no capacity pressure, tagged switching
	// should walk each page roughly once.
	if taggedWalks > 20 {
		t.Errorf("tagged walks = %d, want ~16", taggedWalks)
	}
	if flushWalks < 150 {
		t.Errorf("flush walks = %d, want ~160 (8 pages × 20 timeslices)", flushWalks)
	}
}
