package mmu

import (
	"strings"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/segment"
	"vdirect/internal/telemetry"
)

// TestWalkProbeObservesEveryWalker installs the telemetry walk probe on
// each walker wrapper (1D, 2D, flat) and checks every walk is observed
// with reference deltas matching the MMU's own counters.
func TestWalkProbeObservesEveryWalker(t *testing.T) {
	cases := []struct {
		name     string
		wire     func(e *env)
		wantRefs uint64
	}{
		{"native-1D", func(e *env) { e.m.SetNestedPageTable(nil) }, 4},
		{"base-2D", func(e *env) {}, 24},
		{"flat", func(e *env) {
			e.m.SetFlatNested(true)
			if !e.m.FlatNested() {
				t.Fatal("FlatNested() false after SetFlatNested(true)")
			}
		}, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t, 16, coldConfig())
			e.mapGuest(t, 0x400000, 0x800000, 4)
			tc.wire(e)
			probe := &telemetry.WalkProbe{}
			e.m.SetWalkProbe(probe)
			if _, fault := e.m.Translate(0x400123); fault != nil {
				t.Fatal(fault)
			}
			if probe.Refs.Count() != 1 || probe.Cycles.Count() != 1 {
				t.Fatalf("probe observed %d/%d walks, want 1/1",
					probe.Refs.Count(), probe.Cycles.Count())
			}
			if got := e.m.Stats().WalkMemRefs; got != tc.wantRefs {
				t.Errorf("walk made %d refs, want %d", got, tc.wantRefs)
			}
		})
	}
}

// TestFlatWalkWithCaches runs the flat walker on default hardware (PWC
// and nested TLB on): repeated walks through one table must get cheaper
// as the PWC fills, and translation must stay correct.
func TestFlatWalkWithCaches(t *testing.T) {
	e := newEnv(t, 16, Config{})
	e.mapGuest(t, 0x400000, 0x800000, 16)
	e.m.SetFlatNested(true)
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	if res.HPA != e.hostBase+0x800123 {
		t.Errorf("hPA = %#x, want %#x", res.HPA, e.hostBase+0x800123)
	}
	cold := e.m.Stats().WalkMemRefs
	// A sibling page in the same gL1 table: the PWC skips the flattened
	// interior levels, so the second walk references strictly less.
	if _, fault := e.m.Translate(0x401123); fault != nil {
		t.Fatal(fault)
	}
	warm := e.m.Stats().WalkMemRefs - cold
	if warm >= cold {
		t.Errorf("warm flat walk made %d refs, cold made %d — PWC not used", warm, cold)
	}
}

// TestFlatWalkFaultsWhereBaseWould pins the fault contract: a guest
// table page the nested dimension no longer maps faults the flat walk
// with the same nested-fault address the base 2D walk reports, both for
// flattened interior levels and for the gL1 entry read.
func TestFlatWalkFaultsWhereBaseWould(t *testing.T) {
	for _, lvl := range []struct {
		name     string
		interior bool
	}{{"interior-flattened", true}, {"gL1-nested", false}} {
		t.Run(lvl.name, func(t *testing.T) {
			e := newEnv(t, 16, coldConfig())
			e.mapGuest(t, 0x400000, 0x800000, 4)
			// Locate the guest table pages the walk references.
			refs, _ := func() ([]uint64, bool) {
				pa, _, rr, ok := e.gPT.WalkFrom(0x400123, 0, nil)
				_ = pa
				var addrs []uint64
				for _, r := range rr {
					if (r.Level < addr.LvlPT) == lvl.interior {
						addrs = append(addrs, r.Addr)
					}
				}
				return addrs, ok
			}()
			if len(refs) == 0 {
				t.Fatal("walk recorded no references at the target levels")
			}
			tablePage := refs[0] &^ (addr.PageSize4K - 1)
			if err := e.nPT.Unmap(tablePage, addr.Page4K); err != nil {
				t.Fatal(err)
			}
			e.m.SetFlatNested(true)
			e.m.FlushTLBs()
			_, fault := e.m.Translate(0x400123)
			if fault == nil || fault.Kind != FaultNested {
				t.Fatalf("fault = %v, want nested fault", fault)
			}
			if !strings.Contains(fault.Error(), "nested") {
				t.Errorf("fault.Error() = %q, want nested wording", fault.Error())
			}
		})
	}
}

// TestFlatComposesWithGuestSegment drives the flat walker with guest
// segment registers programmed: covered accesses take the segment fast
// path, escaped pages fall back to the flattened walk, and the scheme
// stays FlatNested throughout.
func TestFlatComposesWithGuestSegment(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x800000, 2<<20))
	e.m.SetFlatNested(true)
	if e.m.Mode() != ModeFlatNested {
		t.Fatalf("mode = %v, want FlatNested", e.m.Mode())
	}
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	if res.HPA != e.hostBase+0x800123 {
		t.Errorf("covered hPA = %#x, want %#x", res.HPA, e.hostBase+0x800123)
	}
	st := e.m.Stats()
	if st.GuestSegHits != 1 || st.SegmentChecks == 0 {
		t.Errorf("segment fast path not taken: %+v", st)
	}
	if st.WalkMemRefs != 4 {
		t.Errorf("covered access made %d refs, want 4 (nested only)", st.WalkMemRefs)
	}

	// A page escaped through the guest filter walks flat instead.
	escVA := uint64(0x400000 + addr.PageSize4K)
	e.mapGuest(t, escVA, 0x900000, 1)
	e.m.GuestEscapeFilter().Insert(escVA >> addr.PageShift4K)
	e.m.FlushTLBs()
	before := e.m.Stats().WalkMemRefs
	if _, fault := e.m.Translate(escVA | 0x123); fault != nil {
		t.Fatal(fault)
	}
	st = e.m.Stats()
	if st.EscapeTaken == 0 {
		t.Error("escape filter did not fire")
	}
	if st.WalkMemRefs-before != 12 {
		t.Errorf("escaped access made %d refs, want the full flat 12", st.WalkMemRefs-before)
	}
}

// TestFlatWalkCostSegmentForms pins the flat scheme's closed-form cost
// in every segment composition, including forms no fixed-register
// scheme reaches (the identity-pinned six have their registers implied
// by their names; FlatNested composes freely).
func TestFlatWalkCostSegmentForms(t *testing.T) {
	s, err := SchemeByName("FlatNested")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		in   CostInput
		want WalkCost
	}{
		{"uncovered", CostInput{GuestLevels: 4, NestedLevels: 4}, WalkCost{Refs: 12}},
		{"2M-guest", CostInput{GuestLevels: 3, NestedLevels: 4}, WalkCost{Refs: 7}},
		{"dual-covered", CostInput{GuestLevels: 4, NestedLevels: 4,
			GuestCovered: true, VMMCovered: true,
			GuestSegEnabled: true, VMMSegEnabled: true}, WalkCost{Checks: 1}},
		{"guest-covered-no-vmm", CostInput{GuestLevels: 4, NestedLevels: 4,
			GuestCovered: true, GuestSegEnabled: true}, WalkCost{Refs: 4, Checks: 1}},
		{"guest-covered-vmm-on", CostInput{GuestLevels: 4, NestedLevels: 4,
			GuestCovered: true, GuestSegEnabled: true, VMMSegEnabled: true},
			WalkCost{Checks: 2}},
		{"uncovered-vmm-on", CostInput{GuestLevels: 4, NestedLevels: 4,
			VMMSegEnabled: true}, WalkCost{Refs: 4, Checks: 2}},
	}
	for _, tc := range cases {
		if got := s.WalkCost(tc.in); got != tc.want {
			t.Errorf("%s: WalkCost = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestFlatTranslateMissL2Hit evicts a composite entry from the L1 by
// touching many pages and checks the flat scheme's miss path resolves
// it from the shared L2 without walking again.
func TestFlatTranslateMissL2Hit(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	const pages = 256
	e.mapGuest(t, 0x400000, 0x800000, pages)
	e.m.SetFlatNested(true)
	for p := uint64(0); p < pages; p++ {
		if _, fault := e.m.Translate(0x400000 + p*addr.PageSize4K); fault != nil {
			t.Fatal(fault)
		}
	}
	walks := e.m.Stats().Walks
	if _, fault := e.m.Translate(0x400000); fault != nil {
		t.Fatal(fault)
	}
	st := e.m.Stats()
	if st.L2Hits == 0 {
		t.Error("re-translation after L1 eviction did not hit the L2")
	}
	if st.Walks != walks {
		t.Errorf("re-translation walked (%d → %d walks), want L2 resolution", walks, st.Walks)
	}
}
