package mmu

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/ptecache"
	"vdirect/internal/segment"
	"vdirect/internal/trace"
)

func benchTranslate(b *testing.B, setup func(e *env) error) {
	b.Helper()
	e, err := buildEnv(64, Config{PTECache: ptecache.Default})
	if err != nil {
		b.Fatal(err)
	}
	if err := setup(e); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var va uint64
	for i := 0; i < b.N; i++ {
		va = (va + 4096*17) % (16 << 20)
		if _, fault := e.m.Translate(0x400000 + va); fault != nil {
			b.Fatal(fault)
		}
	}
}

// BenchmarkTranslate2D is the host cost of simulating a base
// virtualized translation.
func BenchmarkTranslate2D(b *testing.B) {
	benchTranslate(b, func(e *env) error {
		for p := uint64(0); p < (16<<20)/4096; p++ {
			if err := e.gPT.Map(0x400000+p<<12, 0x800000+p<<12, addr.Page4K); err != nil {
				return err
			}
		}
		return nil
	})
}

// BenchmarkTranslateDualDirect is the host cost of the 0D fast path.
func BenchmarkTranslateDualDirect(b *testing.B) {
	benchTranslate(b, func(e *env) error {
		e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x800000, 16<<20))
		e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, e.guestSize))
		return nil
	})
}

// BenchmarkTranslateBlock is the batch entry point under a TLB-
// friendly access pattern — the replay engine's steady state. The
// -benchmem numbers are part of the hot-path contract: the loop must
// stay at 0 allocs/op once the walk buffers have warmed.
func BenchmarkTranslateBlock(b *testing.B) {
	e, err := buildEnv(64, Config{PTECache: ptecache.Default})
	if err != nil {
		b.Fatal(err)
	}
	for p := uint64(0); p < (16<<20)/4096; p++ {
		if err := e.gPT.Map(0x400000+p<<12, 0x800000+p<<12, addr.Page4K); err != nil {
			b.Fatal(err)
		}
	}
	// One block of locality-heavy accesses, reused every iteration.
	evs := make([]trace.Event, 4096)
	var va uint64
	for i := range evs {
		if i%4 != 0 {
			va = (va + 64) % (16 << 20) // same-page runs with strided reuse
		} else {
			va = (va + 4096*17) % (16 << 20)
		}
		evs[i] = trace.Event{Kind: trace.Access, VA: addr.GVA(0x400000 + va)}
	}
	out := make([]Result, len(evs))
	if _, fault := e.m.TranslateBlock(evs, out); fault != nil {
		b.Fatal(fault) // warm the TLBs and walk buffers
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, fault := e.m.TranslateBlock(evs, out); fault != nil {
			b.Fatal(fault)
		}
	}
	b.SetBytes(int64(len(evs)))
}

// BenchmarkTranslateNative is the host cost of a 1D translation.
func BenchmarkTranslateNative(b *testing.B) {
	benchTranslate(b, func(e *env) error {
		e.m.SetNestedPageTable(nil)
		for p := uint64(0); p < (16<<20)/4096; p++ {
			if err := e.gPT.Map(0x400000+p<<12, 0x800000+p<<12, addr.Page4K); err != nil {
				return err
			}
		}
		return nil
	})
}
