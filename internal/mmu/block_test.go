package mmu

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/segment"
	"vdirect/internal/trace"
)

// accessEvents wraps a VA sequence as Access trace events.
func accessEvents(vas []uint64) []trace.Event {
	evs := make([]trace.Event, len(vas))
	for i, va := range vas {
		evs[i] = trace.Event{Kind: trace.Access, VA: addr.GVA(va)}
	}
	return evs
}

// blockTestVAs builds a sequence with same-page repeats (last-page-cache
// hits), cross-page locality (L1 hits), cold pages (walks), and pages
// that are initially unmapped (faults mid-block).
func blockTestVAs(mappedPages, holeEvery int) []uint64 {
	var vas []uint64
	for i := 0; i < 400; i++ {
		p := uint64(i % mappedPages)
		vas = append(vas,
			0x400000+p<<12+uint64(i)%4096,
			0x400000+p<<12+uint64(i*7)%4096, // same page: last-page hit
			0x400000+uint64((i*13)%mappedPages)<<12,
		)
		if holeEvery > 0 && i%holeEvery == 0 {
			vas = append(vas, 0x900000+uint64(i/holeEvery)<<12) // unmapped
		}
	}
	return vas
}

// runPerEvent drives vas through Translate one at a time, servicing
// guest faults by mapping the page, exactly as the replay drivers do.
func runPerEvent(t *testing.T, e *env, vas []uint64) []Result {
	t.Helper()
	out := make([]Result, 0, len(vas))
	for _, va := range vas {
		for attempt := 0; ; attempt++ {
			res, fault := e.m.Translate(va)
			if fault == nil {
				out = append(out, res)
				break
			}
			if attempt >= 2 {
				t.Fatalf("va %#x still faulting", va)
			}
			serviceFault(t, e, fault)
		}
	}
	return out
}

// serviceFault demand-maps the faulting page at a gPA derived from the
// VA, so both the per-event and block runs service identically.
func serviceFault(t *testing.T, e *env, fault *Fault) {
	t.Helper()
	if fault.Kind != FaultGuest {
		t.Fatalf("unexpected nested fault at %#x", fault.Addr)
	}
	page := addr.PageBase(fault.Addr, addr.Page4K)
	gpa := 0x200000 + (page>>12)%0x400<<12 // deterministic, collision-free for the test VAs
	if err := e.gPT.Map(page, gpa, addr.Page4K); err != nil {
		t.Fatalf("servicing fault at %#x: %v", page, err)
	}
}

// runBlock drives vas through TranslateBlock with the same fault
// protocol, resuming from the faulting index.
func runBlock(t *testing.T, e *env, vas []uint64, out []Result) int {
	t.Helper()
	evs := accessEvents(vas)
	done := 0
	for done < len(evs) {
		var sub []Result
		if out != nil {
			sub = out[done:]
		}
		n, fault := e.m.TranslateBlock(evs[done:], sub)
		done += n
		if fault == nil {
			break
		}
		serviceFault(t, e, fault)
	}
	return done
}

// TestTranslateBlockMatchesPerEvent drives the same trace — with
// same-page repeats, TLB-hit locality, cold walks and mid-block demand-
// paging faults — through per-event Translate on one stack and
// TranslateBlock on an identical one, and requires identical end-to-end
// statistics and identical per-access results. This is the contract the
// replay engine's batch hook depends on: batching must be invisible in
// every counter.
func TestTranslateBlockMatchesPerEvent(t *testing.T) {
	for _, cfg := range []struct {
		name string
		c    Config
	}{
		{"default", Config{}},
		{"cold", coldConfig()},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			vas := blockTestVAs(24, 17)

			ePer := newEnv(t, 16, cfg.c)
			ePer.mapGuest(t, 0x400000, 0x800000, 24)
			perResults := runPerEvent(t, ePer, vas)

			eBlk := newEnv(t, 16, cfg.c)
			eBlk.mapGuest(t, 0x400000, 0x800000, 24)
			blkResults := make([]Result, len(vas))
			done := runBlock(t, eBlk, vas, blkResults)

			if done != len(vas) {
				t.Fatalf("block run completed %d of %d events", done, len(vas))
			}
			if ePer.m.Stats() != eBlk.m.Stats() {
				t.Errorf("stats diverge:\nper-event: %+v\nblock:     %+v", ePer.m.Stats(), eBlk.m.Stats())
			}
			for i := range perResults {
				if perResults[i] != blkResults[i] {
					t.Fatalf("result %d diverges: per-event %+v, block %+v", i, perResults[i], blkResults[i])
				}
			}
		})
	}
}

// TestTranslateBlockNilOut pins that a nil out buffer is legal (the
// figure runner's path) and translates identically to a buffered run.
func TestTranslateBlockNilOut(t *testing.T) {
	vas := blockTestVAs(8, 0)
	a := newEnv(t, 16, Config{})
	a.mapGuest(t, 0x400000, 0x800000, 8)
	runBlock(t, a, vas, nil)

	b := newEnv(t, 16, Config{})
	b.mapGuest(t, 0x400000, 0x800000, 8)
	runBlock(t, b, vas, make([]Result, len(vas)))

	if a.m.Stats() != b.m.Stats() {
		t.Errorf("nil-out stats diverge from buffered run:\n%+v\n%+v", a.m.Stats(), b.m.Stats())
	}
}

// TestTranslateBlockFaultIndex pins the fault contract: the return
// value names the faulting event, events before it are fully counted,
// the faulting access itself is counted (as per-event Translate counts
// it), and the run resumes cleanly from that index after service.
func TestTranslateBlockFaultIndex(t *testing.T) {
	e := newEnv(t, 16, Config{})
	e.mapGuest(t, 0x400000, 0x800000, 4)
	vas := []uint64{0x400100, 0x401200, 0x402300, 0x700000, 0x403400}
	evs := accessEvents(vas)

	n, fault := e.m.TranslateBlock(evs, nil)
	if fault == nil || n != 3 {
		t.Fatalf("TranslateBlock = (%d, %v), want (3, guest fault)", n, fault)
	}
	if fault.Kind != FaultGuest || fault.Addr != 0x700000 {
		t.Fatalf("fault = %+v", fault)
	}
	st := e.m.Stats()
	// Three completed accesses plus the faulting one, exactly like four
	// per-event Translate calls.
	if st.Accesses != 4 || st.GuestFaults != 1 {
		t.Errorf("stats after fault: %+v", st)
	}

	serviceFault(t, e, fault)
	n, fault = e.m.TranslateBlock(evs[3:], nil)
	if fault != nil || n != 2 {
		t.Fatalf("resume = (%d, %v), want (2, nil)", n, fault)
	}
	if st := e.m.Stats(); st.Accesses != 6 {
		t.Errorf("accesses after resume = %d, want 6", st.Accesses)
	}
}

// TestTranslateBlockEmpty pins the trivial boundary.
func TestTranslateBlockEmpty(t *testing.T) {
	e := newEnv(t, 16, Config{})
	if n, fault := e.m.TranslateBlock(nil, nil); n != 0 || fault != nil {
		t.Fatalf("TranslateBlock(nil) = (%d, %v)", n, fault)
	}
	if st := e.m.Stats(); st.Accesses != 0 {
		t.Errorf("empty block counted accesses: %+v", st)
	}
}

// TestLastPageCacheDropsOnMutation guards the one-entry last-page
// cache: every operation that can change what a VA translates to must
// drop it, or a repeat access would short-circuit to a stale hPA
// without consulting the (correctly invalidated) TLBs. Each case
// mutates the mapping under a just-translated page and requires the
// next access to re-walk and see the new backing.
func TestLastPageCacheDropsOnMutation(t *testing.T) {
	const va = 0x400123
	page := addr.PageBase(va, addr.Page4K)

	remap := func(t *testing.T, e *env, gpa uint64) {
		t.Helper()
		if err := e.gPT.Remap(page, gpa); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name string
		// mutate changes page's backing to gpa and performs the
		// corresponding hardware invalidation.
		mutate func(t *testing.T, e *env, gpa uint64)
	}{
		{"InvalidatePage", func(t *testing.T, e *env, gpa uint64) {
			remap(t, e, gpa)
			e.m.InvalidatePage(va, addr.Page4K)
		}},
		{"FlushTLBs", func(t *testing.T, e *env, gpa uint64) {
			remap(t, e, gpa)
			e.m.FlushTLBs()
		}},
		{"InvalidateNested", func(t *testing.T, e *env, gpa uint64) {
			remap(t, e, gpa)
			e.m.InvalidateNested()
		}},
		{"ContextSwitch", func(t *testing.T, e *env, gpa uint64) {
			remap(t, e, gpa)
			e.m.ContextSwitch(e.gPT, segment.Disabled())
		}},
		{"ContextSwitchASID", func(t *testing.T, e *env, gpa uint64) {
			remap(t, e, gpa)
			// A fresh ASID retags the TLBs; the last-page cache has no
			// tag, so it must drop or it would leak across processes.
			e.m.ContextSwitchASID(e.gPT, segment.Disabled(), 7)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := newEnv(t, 16, Config{})
			e.mapGuest(t, page, 0x800000, 1)
			// Two accesses: the second is served by the last-page cache.
			if _, fault := e.m.Translate(va); fault != nil {
				t.Fatal(fault)
			}
			if _, fault := e.m.Translate(va); fault != nil {
				t.Fatal(fault)
			}
			st := e.m.Stats()
			if st.L1Hits != 1 || st.Walks != 1 {
				t.Fatalf("warm-up stats: %+v", st)
			}

			c.mutate(t, e, 0x900000)
			res, fault := e.m.Translate(va)
			if fault != nil {
				t.Fatal(fault)
			}
			want := e.hostBase + 0x900000 + (va - page)
			if res.HPA != want {
				t.Errorf("post-mutation hPA = %#x, want %#x (stale last-page entry?)", res.HPA, want)
			}
			if st := e.m.Stats(); st.Walks != 2 {
				t.Errorf("post-mutation walks = %d, want 2 (access served from a stale cache)", st.Walks)
			}
		})
	}
}

// TestLastPageCacheDropsOnBlockFault pins the restore path: a fault
// mid-block must leave the last-page cache exactly as the completed
// prefix left it — in particular it must not leak the pre-block state
// forward after the prefix inserted newer translations.
func TestLastPageCacheDropsOnBlockFault(t *testing.T) {
	e := newEnv(t, 16, Config{})
	e.mapGuest(t, 0x400000, 0x800000, 2)
	evs := accessEvents([]uint64{0x400000, 0x401000, 0x700000})
	n, fault := e.m.TranslateBlock(evs, nil)
	if fault == nil || n != 2 {
		t.Fatalf("TranslateBlock = (%d, %v)", n, fault)
	}
	// The last successful translation was 0x401000; a repeat access must
	// be an L1 hit on it with the correct backing.
	res, fault2 := e.m.Translate(0x401080)
	if fault2 != nil {
		t.Fatal(fault2)
	}
	if want := e.hostBase + 0x801080; res.HPA != want || !res.L1Hit {
		t.Errorf("post-fault repeat = %+v, want L1 hit at %#x", res, want)
	}
}

// TestL2SharedStatsAccessors covers the §IX.A accessors the telemetry
// harness exports.
func TestL2SharedStatsAccessors(t *testing.T) {
	e := newEnv(t, 16, Config{})
	e.mapGuest(t, 0x400000, 0x800000, 4)
	for p := uint64(0); p < 4; p++ {
		if _, fault := e.m.Translate(0x400000 + p<<12); fault != nil {
			t.Fatal(fault)
		}
	}
	lookups, hits, nestedInserts := e.m.L2NestedStats()
	if lookups == 0 {
		t.Error("no shared-L2 lookups recorded")
	}
	if hits > lookups {
		t.Errorf("L2 hits %d > lookups %d", hits, lookups)
	}
	if nestedInserts == 0 {
		t.Error("2D walks inserted no nested entries")
	}
	if ev := e.m.L2Evictions(); ev != 0 {
		t.Errorf("4 translations evicted %d entries from a 512-entry L2", ev)
	}
}
