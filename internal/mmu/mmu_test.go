package mmu

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/pagetable"
	"vdirect/internal/physmem"
	"vdirect/internal/ptecache"
	"vdirect/internal/segment"
)

// env wires a guest physical space, a host physical space, identity-plus-
// offset nested mappings, and an MMU — a miniature VM.
type env struct {
	hostMem, guestMem *physmem.Memory
	gPT, nPT          *pagetable.Table
	m                 *MMU
	hostBase          uint64 // hPA where gPA 0 lands
	guestSize         uint64
}

// buildEnv builds a VM with guestMB of guest physical memory fully
// mapped by the nested page table at a fixed host offset.
func buildEnv(guestMB uint64, cfg Config) (*env, error) {
	e := &env{
		hostMem:   physmem.New(physmem.Config{Name: "host", Size: (guestMB * 4) << 20}),
		guestMem:  physmem.New(physmem.Config{Name: "guest", Size: guestMB << 20}),
		guestSize: guestMB << 20,
	}
	var err error
	e.nPT, err = pagetable.New(e.hostMem)
	if err != nil {
		return nil, err
	}
	// Back all guest physical memory with a contiguous host region.
	frames := e.guestSize >> 12
	first, err := e.hostMem.AllocContiguous(frames, 1)
	if err != nil {
		return nil, err
	}
	e.hostBase = first << 12
	for p := uint64(0); p < frames; p++ {
		if err := e.nPT.Map(p<<12, e.hostBase+p<<12, addr.Page4K); err != nil {
			return nil, err
		}
	}
	e.gPT, err = pagetable.New(e.guestMem)
	if err != nil {
		return nil, err
	}
	e.m = New(cfg)
	e.m.SetGuestPageTable(e.gPT)
	e.m.SetNestedPageTable(e.nPT)
	return e, nil
}

// newEnv is the testing.T wrapper around buildEnv.
func newEnv(t *testing.T, guestMB uint64, cfg Config) *env {
	t.Helper()
	e, err := buildEnv(guestMB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// mapGuest maps gVA→gPA 4K pages for n pages starting at the bases.
func (e *env) mapGuest(t *testing.T, gva, gpa uint64, n uint64) {
	t.Helper()
	for p := uint64(0); p < n; p++ {
		if err := e.gPT.Map(gva+p<<12, gpa+p<<12, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
}

// coldConfig disables all walk caches so reference counts are maximal.
func coldConfig() Config {
	return Config{
		DisablePWC:       true,
		DisableNestedTLB: true,
		PTECache:         ptecache.Config{Lines: 8, Ways: 1, HitCycles: 10, MissCycles: 100},
	}
}

func TestWalkReferenceCounts2D(t *testing.T) {
	// The headline number: a cold virtualized 4K+4K walk performs 24
	// page-table references (Figure 2).
	e := newEnv(t, 16, coldConfig())
	e.mapGuest(t, 0x400000, 0x800000, 4)
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	st := e.m.Stats()
	if st.WalkMemRefs != 24 {
		t.Errorf("2D walk made %d references, want 24", st.WalkMemRefs)
	}
	if res.HPA != e.hostBase+0x800123 {
		t.Errorf("hPA = %#x, want %#x", res.HPA, e.hostBase+0x800123)
	}
	if e.m.Mode() != ModeBaseVirtualized {
		t.Errorf("mode = %v", e.m.Mode())
	}
	if st.SegmentChecks != 0 {
		t.Errorf("base virtualized made %d segment checks, want 0", st.SegmentChecks)
	}
}

func TestWalkReferenceCountsNative(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	e.m.SetNestedPageTable(nil) // native
	e.mapGuest(t, 0x400000, 0x800000, 4)
	if e.m.Mode() != ModeNative {
		t.Fatalf("mode = %v", e.m.Mode())
	}
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	st := e.m.Stats()
	if st.WalkMemRefs != 4 {
		t.Errorf("native walk made %d references, want 4", st.WalkMemRefs)
	}
	if res.HPA != 0x800123 {
		t.Errorf("PA = %#x", res.HPA)
	}
}

func TestWalkReferenceCountsVMMDirect(t *testing.T) {
	// VMM Direct: 4 memory accesses and 5 base-bound checks (§III.B).
	e := newEnv(t, 16, coldConfig())
	e.mapGuest(t, 0x400000, 0x800000, 4)
	e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, e.guestSize))
	if e.m.Mode() != ModeVMMDirect {
		t.Fatalf("mode = %v", e.m.Mode())
	}
	_, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	st := e.m.Stats()
	if st.WalkMemRefs != 4 {
		t.Errorf("VMM Direct walk made %d references, want 4", st.WalkMemRefs)
	}
	if st.SegmentChecks != 5 {
		t.Errorf("VMM Direct made %d checks, want 5", st.SegmentChecks)
	}
	if st.MissVMMOnly != 1 {
		t.Errorf("classification: MissVMMOnly = %d", st.MissVMMOnly)
	}
}

func TestWalkReferenceCountsGuestDirect(t *testing.T) {
	// Guest Direct: 4 memory accesses and 1 calculation (§III.C).
	e := newEnv(t, 16, coldConfig())
	// Guest segment: gVA [0x400000, +2MB) → gPA 0x800000.
	e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x800000, 2<<20))
	if e.m.Mode() != ModeGuestDirect {
		t.Fatalf("mode = %v", e.m.Mode())
	}
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	st := e.m.Stats()
	if st.WalkMemRefs != 4 {
		t.Errorf("Guest Direct walk made %d references, want 4 (nested only)", st.WalkMemRefs)
	}
	if st.SegmentChecks != 1 {
		t.Errorf("Guest Direct made %d checks, want 1", st.SegmentChecks)
	}
	if res.HPA != e.hostBase+0x800123 {
		t.Errorf("hPA = %#x", res.HPA)
	}
	if st.MissGuestOnly != 1 {
		t.Errorf("classification: MissGuestOnly = %d", st.MissGuestOnly)
	}
}

func TestWalkReferenceCountsDualDirect(t *testing.T) {
	// Dual Direct: zero references, one combined check (Table II).
	e := newEnv(t, 16, coldConfig())
	e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x800000, 2<<20))
	e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, e.guestSize))
	if e.m.Mode() != ModeDualDirect {
		t.Fatalf("mode = %v", e.m.Mode())
	}
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	st := e.m.Stats()
	if st.WalkMemRefs != 0 {
		t.Errorf("Dual Direct made %d references, want 0", st.WalkMemRefs)
	}
	if st.SegmentChecks != 1 {
		t.Errorf("Dual Direct made %d checks, want 1", st.SegmentChecks)
	}
	if !res.ZeroD {
		t.Error("not flagged as 0D")
	}
	if st.ZeroDWalks != 1 || st.MissBoth != 1 {
		t.Errorf("stats: %+v", st)
	}
	if res.HPA != e.hostBase+0x800123 {
		t.Errorf("hPA = %#x", res.HPA)
	}
}

func TestWalkReferenceCountsDirectSegmentNative(t *testing.T) {
	// Unvirtualized Direct Segment: 1 calculation, 0 references (§III.D).
	e := newEnv(t, 16, coldConfig())
	e.m.SetNestedPageTable(nil)
	e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x800000, 2<<20))
	if e.m.Mode() != ModeDirectSegment {
		t.Fatalf("mode = %v", e.m.Mode())
	}
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	st := e.m.Stats()
	if st.WalkMemRefs != 0 || st.SegmentChecks != 1 {
		t.Errorf("refs=%d checks=%d, want 0/1", st.WalkMemRefs, st.SegmentChecks)
	}
	if res.HPA != 0x800123 {
		t.Errorf("PA = %#x", res.HPA)
	}
}

func TestL1HitBypassesEverything(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	e.mapGuest(t, 0x400000, 0x800000, 1)
	if _, fault := e.m.Translate(0x400123); fault != nil {
		t.Fatal(fault)
	}
	before := e.m.Stats()
	res, fault := e.m.Translate(0x400456)
	if fault != nil {
		t.Fatal(fault)
	}
	if !res.L1Hit || res.Cycles != 0 {
		t.Errorf("second access: L1Hit=%v cycles=%d", res.L1Hit, res.Cycles)
	}
	after := e.m.Stats()
	if after.WalkMemRefs != before.WalkMemRefs {
		t.Error("L1 hit performed walk references")
	}
	if after.L1Hits != before.L1Hits+1 {
		t.Error("L1 hit not counted")
	}
}

func TestL2HitPath(t *testing.T) {
	e := newEnv(t, 16, Config{PTECache: ptecache.Default})
	e.mapGuest(t, 0x400000, 0x800000, 128)
	// Touch 128 pages: far beyond L1 4K capacity (64) but within L2
	// (512). Re-touching the first page should hit L2, not walk.
	for p := uint64(0); p < 128; p++ {
		if _, fault := e.m.Translate(0x400000 + p<<12); fault != nil {
			t.Fatal(fault)
		}
	}
	before := e.m.Stats()
	res, fault := e.m.Translate(0x400000)
	if fault != nil {
		t.Fatal(fault)
	}
	after := e.m.Stats()
	if !res.L2Hit {
		t.Errorf("expected L2 hit, got %+v", res)
	}
	if after.Walks != before.Walks {
		t.Error("L2 hit invoked the walker")
	}
}

func TestGuestFault(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	_, fault := e.m.Translate(0xdead0000)
	if fault == nil || fault.Kind != FaultGuest {
		t.Fatalf("fault = %v", fault)
	}
	if fault.Addr != 0xdead0000 {
		t.Errorf("fault addr = %#x", fault.Addr)
	}
	if e.m.Stats().GuestFaults != 1 {
		t.Error("guest fault not counted")
	}
	if fault.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestNestedFault(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	// Map gVA to a gPA outside nested coverage.
	badGPA := e.guestSize + 0x100000
	if err := e.gPT.Map(0x400000, badGPA, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	_, fault := e.m.Translate(0x400123)
	if fault == nil || fault.Kind != FaultNested {
		t.Fatalf("fault = %v", fault)
	}
	if fault.Addr != badGPA+0x123 {
		t.Errorf("fault addr = %#x, want %#x", fault.Addr, badGPA+0x123)
	}
	if e.m.Stats().NestedFaults != 1 {
		t.Error("nested fault not counted")
	}
}

func TestEscapeFilterForcesPagingPath(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x800000, 2<<20))
	e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, e.guestSize))
	// Escape the gPA page backing gVA 0x400000.
	escGPA := uint64(0x800000)
	e.m.VMMEscapeFilter().Insert(escGPA >> 12)
	// The VMM must provide a nested mapping for escaped pages — it
	// already exists (identity map), possibly remapped elsewhere; remap
	// to a distinct host page to prove the paging path is used.
	if err := e.nPT.Remap(escGPA, e.hostBase+0x3000000); err != nil {
		t.Fatal(err)
	}
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	if res.HPA != e.hostBase+0x3000000+0x123 {
		t.Errorf("escaped page hPA = %#x, want remapped target", res.HPA)
	}
	st := e.m.Stats()
	if st.EscapeTaken == 0 {
		t.Error("escape not taken")
	}
	if st.ZeroDWalks != 0 {
		t.Error("escaped access used 0D path")
	}
	// A non-escaped neighbour still takes the 0D path.
	e.m.ResetStats()
	if _, fault := e.m.Translate(0x400000 + 0x5000); fault != nil {
		t.Fatal(fault)
	}
	if e.m.Stats().ZeroDWalks != 1 {
		t.Error("neighbour did not use 0D path")
	}
}

func TestPWCReducesNativeWalkRefs(t *testing.T) {
	cfg := Config{PTECache: ptecache.Default}
	e := newEnv(t, 16, cfg)
	e.m.SetNestedPageTable(nil)
	e.mapGuest(t, 0x400000, 0x800000, 16)
	// First walk: cold PWC, 4 refs. Second walk to an adjacent page:
	// PDE cached, so only the leaf (PT) reference remains.
	if _, fault := e.m.Translate(0x400000); fault != nil {
		t.Fatal(fault)
	}
	refsAfterFirst := e.m.Stats().WalkMemRefs
	if refsAfterFirst != 4 {
		t.Fatalf("first walk refs = %d", refsAfterFirst)
	}
	if _, fault := e.m.Translate(0x401000); fault != nil {
		t.Fatal(fault)
	}
	refsSecond := e.m.Stats().WalkMemRefs - refsAfterFirst
	if refsSecond != 1 {
		t.Errorf("warm-PWC walk made %d refs, want 1", refsSecond)
	}
}

func TestNestedTLBReduces2DWalkRefs(t *testing.T) {
	cfg := Config{PTECache: ptecache.Default}
	e := newEnv(t, 16, cfg)
	e.mapGuest(t, 0x400000, 0x800000, 16)
	if _, fault := e.m.Translate(0x400000); fault != nil {
		t.Fatal(fault)
	}
	first := e.m.Stats().WalkMemRefs
	// Second translation of a neighbouring page reuses nested TLB
	// entries for the shared gPT pages and guest PWC for upper levels.
	if _, fault := e.m.Translate(0x401000); fault != nil {
		t.Fatal(fault)
	}
	second := e.m.Stats().WalkMemRefs - first
	if second >= first {
		t.Errorf("warm 2D walk refs = %d, not fewer than cold %d", second, first)
	}
	if e.m.Stats().NestedTLBHits == 0 {
		t.Error("nested TLB never hit")
	}
}

func TestContextSwitchFlushes(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	e.mapGuest(t, 0x400000, 0x800000, 1)
	if _, fault := e.m.Translate(0x400123); fault != nil {
		t.Fatal(fault)
	}
	// Switch to a second process whose table maps the same gVA elsewhere.
	gpt2, err := pagetable.New(e.guestMem)
	if err != nil {
		t.Fatal(err)
	}
	if err := gpt2.Map(0x400000, 0xc00000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	e.m.ContextSwitch(gpt2, segment.Disabled())
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	if res.L1Hit {
		t.Error("stale L1 entry survived context switch")
	}
	if res.HPA != e.hostBase+0xc00123 {
		t.Errorf("post-switch hPA = %#x", res.HPA)
	}
}

func TestInvalidateNested(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	e.mapGuest(t, 0x400000, 0x800000, 1)
	if _, fault := e.m.Translate(0x400123); fault != nil {
		t.Fatal(fault)
	}
	// VMM remaps the backing host page.
	if err := e.nPT.Remap(0x800000, e.hostBase+0x2000000); err != nil {
		t.Fatal(err)
	}
	e.m.InvalidateNested()
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	if res.HPA != e.hostBase+0x2000000+0x123 {
		t.Errorf("post-remap hPA = %#x", res.HPA)
	}
}

func TestCompositePageSizeIsMinimum(t *testing.T) {
	// Guest 2M mapping over nested 4K pages must cache at 4K: adjacent
	// 4K neighbours inside the 2M page but with different nested frames
	// must translate independently.
	e := newEnv(t, 16, coldConfig())
	if err := e.gPT.Map(0x200000, 0x400000, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	// Remap one 4K nested page inside the guest 2M page.
	if err := e.nPT.Remap(0x401000, e.hostBase+0x3000000); err != nil {
		t.Fatal(err)
	}
	r1, fault := e.m.Translate(0x200000) // gPA 0x400000 → identity
	if fault != nil {
		t.Fatal(fault)
	}
	r2, fault := e.m.Translate(0x201000) // gPA 0x401000 → remapped
	if fault != nil {
		t.Fatal(fault)
	}
	if r1.HPA != e.hostBase+0x400000 {
		t.Errorf("r1 = %#x", r1.HPA)
	}
	if r2.HPA != e.hostBase+0x3000000 {
		t.Errorf("r2 = %#x (2M composite entry smeared nested 4K remap)", r2.HPA)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeNative:          "Native",
		ModeDirectSegment:   "DirectSegment",
		ModeBaseVirtualized: "BaseVirtualized",
		ModeDualDirect:      "DualDirect",
		ModeVMMDirect:       "VMMDirect",
		ModeGuestDirect:     "GuestDirect",
		ModeFlatNested:      "FlatNested",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%v.String() = %q", m, m.String())
		}
		if _, err := SchemeByName(s); err != nil {
			t.Errorf("SchemeByName(%q): %v", s, err)
		}
	}
	if ModeNative.Virtualized() || !ModeDualDirect.Virtualized() || !ModeFlatNested.Virtualized() {
		t.Error("Virtualized() wrong")
	}
	// An unregistered name is just its own string and never virtualized.
	if Mode("Mode(99)").String() != "Mode(99)" || Mode("Mode(99)").Virtualized() {
		t.Error("unknown mode string")
	}
}

func TestResetStats(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	e.mapGuest(t, 0x400000, 0x800000, 1)
	e.m.Translate(0x400123)
	e.m.ResetStats()
	if st := e.m.Stats(); st.Accesses != 0 || st.WalkMemRefs != 0 {
		t.Errorf("stats after reset: %+v", st)
	}
}

func TestVMMDirectUncoveredGPAFallsBack(t *testing.T) {
	// A gPA outside the VMM segment must use nested paging (Table I
	// "Neither"/partial coverage case).
	e := newEnv(t, 16, coldConfig())
	e.mapGuest(t, 0x400000, 0x800000, 1)
	// VMM segment covers only the first 4MB of guest memory; the data
	// page at gPA 0x800000 (8MB) is outside, but gPT pages (low gPAs)
	// are inside.
	e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, 4<<20))
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	if res.HPA != e.hostBase+0x800123 {
		t.Errorf("hPA = %#x", res.HPA)
	}
	st := e.m.Stats()
	// Guest PTE references resolved via segment; the final gPA needed a
	// nested walk: 4 guest refs + 4 nested refs.
	if st.WalkMemRefs != 8 {
		t.Errorf("refs = %d, want 8", st.WalkMemRefs)
	}
	if st.MissVMMOnly != 0 || st.MissNeither != 1 {
		t.Errorf("classification: %+v", st)
	}
}

func TestCyclesAccumulate(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	e.mapGuest(t, 0x400000, 0x800000, 1)
	res, fault := e.m.Translate(0x400123)
	if fault != nil {
		t.Fatal(fault)
	}
	if res.Cycles == 0 {
		t.Error("2D walk charged zero cycles")
	}
	if e.m.Stats().WalkCycles != res.Cycles {
		t.Errorf("WalkCycles %d != result cycles %d", e.m.Stats().WalkCycles, res.Cycles)
	}
}
