// Package mmu implements the paper's proposed address-translation
// hardware: the Figure 5(a) flow chart and Figure 5(b) page-walk state
// machines, with cycle and memory-reference accounting.
//
// The hardware is mode-less in the same sense as the proposal: behaviour
// is determined entirely by which segment register sets are enabled
// (BASE < LIMIT) and whether nested translation is active. The six
// paper modes are register configurations:
//
//	Native                 !virtualized, no segments
//	Direct Segment         !virtualized, guest segment (VA→PA)
//	Base Virtualized        virtualized, no segments      (2D walk, ≤24 refs)
//	Dual Direct             virtualized, both segments    (0D walk, 0 refs)
//	VMM Direct              virtualized, VMM segment      (1D walk, ≤4 refs)
//	Guest Direct            virtualized, guest segment    (1D walk, ≤4 refs)
//
// plus the post-paper FlatNested configuration (virtualized with the
// flat-walker flag set; see scheme_flat.go). Each configuration's
// miss-path behaviour lives in a registered Scheme (see scheme.go);
// register writes re-derive the active scheme, and the translation
// path dispatches through it without switching on mode.
//
// Escape filters (§V) hang off each segment set; a covered page that
// hits the filter falls back to the paging path for that dimension.
package mmu

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/escape"
	"vdirect/internal/pagetable"
	"vdirect/internal/ptecache"
	"vdirect/internal/segment"
	"vdirect/internal/telemetry"
	"vdirect/internal/telemetry/walkprof"
	"vdirect/internal/tlb"
	"vdirect/internal/trace"
)

// Config sets the simulated hardware's geometry and latencies.
type Config struct {
	// L1 geometry; zero value selects SandyBridgeL1.
	L1 tlb.Geometry
	// L2Entries/L2Ways for the shared second-level TLB (default 512/4).
	L2Entries, L2Ways int
	// PTECache models the data-cache path of walk references.
	PTECache ptecache.Config
	// SegmentCheckCycles is Δ, the cost of one base-bound check
	// (paper's estimate: 1 cycle per check).
	SegmentCheckCycles uint64
	// L2HitCycles is charged for L2 TLB probes on the L1-miss path.
	// Default 0: the paper's metric is page-walk duration (perf's
	// WALK_DURATION counters), which starts after the L2 TLB misses;
	// probe latency is identical across configurations and cancels out
	// of the overhead comparison. Set non-zero to model it anyway.
	L2HitCycles uint64
	// NestedProbeCycles is charged per nested-TLB probe performed
	// inside a 2D walk — that latency is part of walk duration.
	// Default 7.
	NestedProbeCycles uint64
	// DisablePWC turns off the paging-structure caches (ablation).
	DisablePWC bool
	// DisableNestedTLB stops nested translations from being cached in
	// the shared L2 (ablation: isolates the capacity-erosion effect).
	DisableNestedTLB bool
	// EscapeFilterBits sizes the escape filters (default 256, the
	// paper's; must be 4 × a power of two).
	EscapeFilterBits int
}

func (c Config) withDefaults() Config {
	zero := tlb.Geometry{}
	if c.L1 == zero {
		c.L1 = tlb.SandyBridgeL1
	}
	if c.L2Entries == 0 {
		c.L2Entries, c.L2Ways = 512, 4
	}
	if c.PTECache.Lines == 0 {
		c.PTECache = ptecache.Default
	}
	if c.SegmentCheckCycles == 0 {
		c.SegmentCheckCycles = 1
	}
	if c.NestedProbeCycles == 0 {
		c.NestedProbeCycles = 7
	}
	if c.EscapeFilterBits == 0 {
		c.EscapeFilterBits = escape.FilterBits
	}
	return c
}

// FaultKind says which translation dimension faulted.
type FaultKind uint8

// Fault dimensions.
const (
	FaultGuest  FaultKind = iota // gVA not mapped by guest page table
	FaultNested                  // gPA not mapped by nested page table
)

// Fault is returned when translation cannot complete; the OS/VMM layer
// services it (demand paging) and the access is retried.
type Fault struct {
	Kind FaultKind
	// Addr is the faulting gVA (FaultGuest) or gPA (FaultNested).
	Addr uint64
}

func (f *Fault) Error() string {
	which := "guest"
	if f.Kind == FaultNested {
		which = "nested"
	}
	return fmt.Sprintf("mmu: %s page fault at %#x", which, f.Addr)
}

// Stats are the event counts the evaluation reads — the simulator's
// replacement for perf counters plus BadgerTrap (§VII).
type Stats struct {
	Accesses uint64
	L1Hits   uint64
	L1Misses uint64
	L2Hits   uint64
	L2Misses uint64

	// ZeroDWalks counts L1 misses resolved purely by segment register
	// sets (Dual Direct's two-check 0D path, and the unvirtualized
	// Direct Segment fast path). Every L1 miss resolves as exactly one
	// of ZeroDWalks, L2Hits, or Walks.
	ZeroDWalks uint64
	// Walks counts invocations of the page-walk state machine.
	Walks uint64
	// WalkMemRefs counts page-table memory references performed.
	WalkMemRefs uint64
	// WalkCycles is the total cycles charged to TLB-miss handling
	// (segment checks + walk references + L2/NTLB probe costs).
	WalkCycles uint64

	SegmentChecks   uint64
	GuestSegHits    uint64 // gVA→gPA resolved by guest segment
	VMMSegHits      uint64 // gPA→hPA resolved by VMM segment
	NestedTLBHits   uint64
	NestedTLBMisses uint64
	NestedWalks     uint64
	EscapeProbes    uint64
	EscapeTaken     uint64 // filter said "escape" (member or false positive)
	GuestFaults     uint64
	NestedFaults    uint64

	// Table I / Table IV classification of L1 misses by segment
	// coverage of the address (measured on every L1 miss, like the
	// paper's BadgerTrap classification of DTLB misses).
	MissBoth      uint64 // in guest and VMM segments (F_DD)
	MissVMMOnly   uint64 // F_VD
	MissGuestOnly uint64 // F_GD
	MissNeither   uint64
}

// MMU is one simulated translation pipeline (one hardware context).
type MMU struct {
	cfg  Config
	l1   *tlb.L1
	l2   *tlb.L2
	pwc  *tlb.PWC // guest-dimension paging-structure caches
	npwc *tlb.PWC // nested-dimension paging-structure caches
	ptc  *ptecache.Cache

	virtualized bool
	flatNested  bool
	// scheme is the active translation scheme, re-derived from the
	// register configuration on every register write (updateScheme) so
	// the translation path is one interface call, no mode switch.
	scheme Scheme
	segs   segment.Pair
	// escV escapes pages from the VMM segment (Dual/VMM Direct); escG
	// escapes pages from the guest segment (Direct Segment mode).
	escV *escape.Filter
	escG *escape.Filter

	// gPT translates the first dimension: gVA→gPA (or VA→PA native).
	gPT *pagetable.Table
	// nPT translates the second dimension: gPA→hPA. nil when native.
	nPT *pagetable.Table

	stats Stats

	// probe, when non-nil, receives per-walk memory-reference and cycle
	// deltas for telemetry histograms. It is single-goroutine state like
	// the rest of the MMU; nil (the default) keeps pageWalk at one nil
	// check of overhead.
	probe *telemetry.WalkProbe

	// sampler, when non-nil, receives a deterministic 1-in-N sample of
	// resolved L1 misses (walkprof, the simulated BadgerTrap). Like the
	// probe it lives entirely on the miss path: disabled sampling costs
	// one nil check per miss and nothing per L1 hit.
	sampler *walkprof.Sampler
	// asid is the active address-space tag stamped into samples; it
	// tracks ContextSwitchASID and stays 0 for single-process cells.
	asid uint16
	// walkClass/walkSize carry the last completed walk's miss class and
	// effective page size from classifyMiss/insertComposite out to the
	// sampling point in the walk wrappers.
	walkClass walkprof.MissClass
	walkSize  addr.PageSize

	refBuf  []pagetable.Ref // reusable guest-walk buffer
	nrefBuf []pagetable.Ref // reusable nested-walk buffer

	// One-entry last-page cache in front of the L1: the 4K page of the
	// most recent successful translation. A hit here is exactly the set
	// of accesses whose immediate predecessor touched the same 4K page —
	// the previous translation inserted (or refreshed) a covering L1
	// entry and nothing ran in between, so the real L1 would hit too and
	// the entry is already MRU in its set. Skipping the probe therefore
	// changes no stats and no replacement decision; every TLB-mutating
	// operation drops the entry.
	lastValid bool
	lastVBase uint64 // 4K-aligned gVA
	lastHBase uint64 // 4K-aligned hPA

	// Miss-outcome memo (memo.go): per-(ASID, 4K VPN) records of fully
	// resolved misses, invalidated wholesale by memoEpoch. A hit
	// licenses the fused straight-line replay of the miss path; every
	// modeled micro-op still re-executes there, so the memo can steer
	// only host-side structure, never simulated outcomes.
	memo      []memoEntry
	memoEpoch uint64
	// memoEscGen mirrors escV.Gen()+escG.Gen() as of the last epoch
	// sync; a drift detected on the miss path bumps the epoch, making
	// escape-filter mutation an invalidation source even though the
	// filters are mutated directly, not through MMU methods.
	memoEscGen uint64
	memoHits   uint64
	memoMisses uint64
	// memoCheck engages the memo: entries are recorded, probed, and
	// each fused replay's result cross-checked against the recorded
	// outcome (panic on divergence). Off by default: the exact-replay
	// doctrine means a memo hit licenses nothing skippable, so in
	// production the probe would spend a host cache line per miss to
	// learn what the replay recomputes anyway — measured at ~10% of the
	// GUPS hot path. The memo therefore runs as a differential-testing
	// oracle, not an accelerator; see DESIGN.md §5.
	memoCheck bool
}

// bumpEpoch invalidates the miss memo wholesale. Every operation that
// can change how a future miss resolves — flushes, ASID switches,
// invalidations, table/segment/scheme register writes, fault service —
// lands here; correctness does not depend on the list being complete
// (the fused replay re-reads all modeled state), only the memo's
// recorded outcomes' freshness does.
func (m *MMU) bumpEpoch() { m.memoEpoch++ }

// New builds an MMU with the given hardware configuration.
func New(cfg Config) *MMU {
	cfg = cfg.withDefaults()
	m := &MMU{
		cfg:  cfg,
		l1:   tlb.NewL1(cfg.L1),
		l2:   tlb.NewL2(cfg.L2Entries, cfg.L2Ways),
		pwc:  tlb.NewPWC(),
		npwc: tlb.NewPWC(),
		ptc:  ptecache.New(cfg.PTECache),
		escV: escape.NewSized(cfg.EscapeFilterBits, escape.NumHashes, 1),
		escG: escape.NewSized(cfg.EscapeFilterBits, escape.NumHashes, 2),
	}
	m.updateScheme()
	return m
}

// SetGuestPageTable installs the active first-dimension page table.
func (m *MMU) SetGuestPageTable(t *pagetable.Table) {
	m.gPT = t
	m.lastValid = false
	m.bumpEpoch()
}

// SetNestedPageTable installs the second-dimension table and enables
// virtualized (two-level) translation. Passing nil returns to native.
func (m *MMU) SetNestedPageTable(t *pagetable.Table) {
	m.nPT = t
	m.virtualized = t != nil
	m.lastValid = false
	m.bumpEpoch()
	m.updateScheme()
}

// SetFlatNested enables the flattened nested page table walker: while
// virtualized, the FlatNested scheme replaces the base 2D walk
// (interior guest levels cost one flat-table reference each — see
// scheme_flat.go). The flag is latent outside virtualized operation
// and composes with any segment configuration.
func (m *MMU) SetFlatNested(on bool) {
	m.flatNested = on
	m.lastValid = false
	m.bumpEpoch()
	m.updateScheme()
}

// FlatNested reports whether the flat walker flag is set.
func (m *MMU) FlatNested() bool { return m.flatNested }

// SetGuestSegment programs BASE_G/LIMIT_G/OFFSET_G.
func (m *MMU) SetGuestSegment(r segment.Registers) {
	m.segs.Guest = r
	m.lastValid = false
	m.bumpEpoch()
	m.updateScheme()
}

// SetVMMSegment programs BASE_V/LIMIT_V/OFFSET_V.
func (m *MMU) SetVMMSegment(r segment.Registers) {
	m.segs.VMM = r
	m.lastValid = false
	m.bumpEpoch()
	m.updateScheme()
}

// GuestSegment returns the current guest segment registers.
func (m *MMU) GuestSegment() segment.Registers { return m.segs.Guest }

// VMMSegment returns the current VMM segment registers.
func (m *MMU) VMMSegment() segment.Registers { return m.segs.VMM }

// VMMEscapeFilter exposes the filter guarding the VMM segment.
func (m *MMU) VMMEscapeFilter() *escape.Filter { return m.escV }

// GuestEscapeFilter exposes the filter guarding the guest segment.
func (m *MMU) GuestEscapeFilter() *escape.Filter { return m.escG }

// Mode reports the active scheme's name, derived from the current
// register configuration.
func (m *MMU) Mode() Mode { return m.scheme.Name() }

// ActiveScheme returns the scheme the register configuration selects.
func (m *MMU) ActiveScheme() Scheme { return m.scheme }

// SetWalkProbe installs (or, with nil, removes) a per-walk telemetry
// probe. The probe observes each page walk's memory-reference count and
// cycle cost as deltas of the MMU's own counters, so it cannot drift
// from the reported statistics.
func (m *MMU) SetWalkProbe(p *telemetry.WalkProbe) { m.probe = p }

// SetWalkSampler installs (or, with nil, removes) a walkprof sampler.
// Every resolved L1 miss — segment fast path, L2 hit, or completed walk
// — is offered to it with the miss's classification and exact cost
// deltas; the sampler decides (deterministically) which to record.
// Faulting walks are not offered: the access retries after service and
// the retry's resolution is what gets sampled.
func (m *MMU) SetWalkSampler(s *walkprof.Sampler) { m.sampler = s }

// Stats returns a copy of the accumulated counters.
func (m *MMU) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (after warmup).
func (m *MMU) ResetStats() { m.stats = Stats{} }

// FlushTLBs empties all translation caches, as a full CR3 write +
// nested invalidation would.
func (m *MMU) FlushTLBs() {
	m.lastValid = false
	m.bumpEpoch()
	m.l1.Flush()
	m.l2.Flush()
	m.pwc.Flush()
	m.npwc.Flush()
}

// ContextSwitch models a guest process switch: the guest page table and
// guest segment registers change; guest-visible translations flush.
func (m *MMU) ContextSwitch(gpt *pagetable.Table, guestSeg segment.Registers) {
	m.lastValid = false
	m.bumpEpoch()
	m.gPT = gpt
	m.segs.Guest = guestSeg
	m.updateScheme()
	m.l1.Flush()
	m.l2.Flush() // no PCID on the modeled machine
	m.pwc.Flush()
}

// ContextSwitchASID models a PCID-tagged process switch: instead of
// flushing, translation caches retag to the incoming process's
// address-space identifier, so its entries from earlier timeslices
// still hit. (The paper's 2014-era Linux flushed on every switch; this
// is the tagged-TLB extension.) Nested entries are per-VM and survive
// regardless.
func (m *MMU) ContextSwitchASID(gpt *pagetable.Table, guestSeg segment.Registers, asid uint16) {
	m.lastValid = false
	m.bumpEpoch()
	m.gPT = gpt
	m.segs.Guest = guestSeg
	m.updateScheme()
	m.asid = asid
	m.l1.SetASID(asid)
	m.l2.SetASID(asid)
	m.pwc.SetASID(asid)
}

// FlushASID drops one address space's translations from every guest-
// dimension cache — INVPCID of a single PCID. Nested entries are per-VM
// and survive; the current address space's last-page cache is dropped
// unconditionally (the flushed ASID may be the active one).
func (m *MMU) FlushASID(a uint16) {
	m.lastValid = false
	m.bumpEpoch()
	m.l1.FlushASID(a)
	m.l2.FlushASID(a)
	m.pwc.FlushASID(a)
}

// InvalidatePage models INVLPG after the guest OS unmaps or remaps a
// page: every composite entry covering the mapping is dropped. Because
// composite entries may be cached at 4K grain even for larger guest
// mappings, the whole mapped span is invalidated page by page.
//
// The paging-structure caches are left alone: in this simulator they
// only discount walk cost (walks always consult the real tables), so a
// stale PSC entry cannot produce a wrong translation, merely a slightly
// optimistic cost for one walk.
func (m *MMU) InvalidatePage(gva uint64, s addr.PageSize) {
	m.lastValid = false
	m.bumpEpoch()
	base := addr.PageBase(gva, s)
	for off := uint64(0); off < s.Bytes(); off += addr.PageSize4K {
		m.l1.Invalidate(base + off)
		m.l2.InvalidateGuest(base + off)
	}
}

// InvalidateNested models a nested-page-table change (VMM remap): all
// composite and nested translations derived from the nPT are stale.
func (m *MMU) InvalidateNested() {
	m.lastValid = false
	m.bumpEpoch()
	m.l1.Flush()
	m.l2.Flush()
	m.pwc.Flush()
	m.npwc.Flush()
	m.ptc.Flush()
}

// Result describes one completed translation.
type Result struct {
	HPA uint64
	// Cycles charged to TLB-miss handling for this access (0 on L1 hit).
	Cycles uint64
	// L1Hit, L2Hit, ZeroD classify how the translation resolved.
	L1Hit, L2Hit, ZeroD bool
}

// Translate runs one data access through the pipeline of Figure 5(a).
func (m *MMU) Translate(gva uint64) (Result, *Fault) {
	m.stats.Accesses++

	// Last-page cache: a repeat access to the previous 4K page is by
	// construction an L1 hit (see the field comment) and short-circuits
	// the three-structure probe.
	vbase := gva &^ (addr.PageSize4K - 1)
	if m.lastValid && vbase == m.lastVBase {
		m.stats.L1Hits++
		return Result{HPA: m.lastHBase + (gva - vbase), L1Hit: true}, nil
	}

	// L1 TLB lookup (all sizes in parallel).
	if hpa, _, hit := m.l1.Lookup(gva); hit {
		m.stats.L1Hits++
		m.lastValid, m.lastVBase, m.lastHBase = true, vbase, hpa&^(addr.PageSize4K-1)
		return Result{HPA: hpa, L1Hit: true}, nil
	}
	m.stats.L1Misses++

	res, fault := m.missResolve(gva)
	if fault != nil {
		m.bumpEpoch() // the fault will be serviced before the retry
		return Result{}, fault
	}
	m.lastValid, m.lastVBase, m.lastHBase = true, vbase, res.HPA&^(addr.PageSize4K-1)
	return res, nil
}

// TranslateBlock translates a block of access events in one call,
// writing per-event results into out when it is non-nil (out must then
// be at least len(evs) long). It returns the number of events completed;
// on a fault, that is the faulting event's index and the caller services
// the fault and resumes from there. Accesses/L1Hits accumulate in locals
// and flush at block end (or before any slow-path entry), so Stats read
// outside TranslateBlock are identical to per-event Translate calls —
// this is the tight loop behind the replay engine's AccessBlock hook.
func (m *MMU) TranslateBlock(evs []trace.Event, out []Result) (int, *Fault) {
	// The batched run path decomposes the three-structure L1 probe into
	// a 4K-run probe plus empty-structure charges, which is only exact
	// while the 2M and 1G structures are empty. Large-page workloads
	// (and any block during which a walk inserts a large entry — the
	// re-check sits in the loop) take the per-event loop instead.
	if !m.l1.Only4K() {
		return m.translateBlockFrom(evs, out, 0)
	}
	var accesses, l1Hits uint64
	lastValid, lastVBase, lastHBase := m.lastValid, m.lastVBase, m.lastHBase
	// A probe run: consecutive events predicted to miss the last-page
	// cache, probed against the L1 4K structure in one batched call.
	// Miss-heavy phases keep runs at length 1 (no gathered-but-unused
	// lookahead); each fully-hitting run doubles the next gather up to
	// the tlb probe-run width, so hit-heavy phases pipeline their tag
	// loads 8 wide.
	var vpns, ppns [8]uint64
	var idxs [8]int
	runCap := 1
	i := 0
	for i < len(evs) {
		// Gather: an event whose page equals its predecessor's resolves
		// on the last-page cache; the others queue for the batched probe.
		np := 0
		prevOK, prevBase := lastValid, lastVBase
		j := i
		for ; j < len(evs) && np < runCap; j++ {
			vbase := uint64(evs[j].VA) &^ (addr.PageSize4K - 1)
			if prevOK && vbase == prevBase {
				continue
			}
			vpns[np] = vbase >> addr.PageShift4K
			idxs[np] = j
			np++
			prevOK, prevBase = true, vbase
		}
		if np == 0 {
			// Pure last-page-cache tail.
			for k := i; k < j; k++ {
				accesses++
				l1Hits++
				if out != nil {
					gva := uint64(evs[k].VA)
					out[k] = Result{HPA: lastHBase + (gva - lastVBase), L1Hit: true}
				}
			}
			i = j
			continue
		}
		nh := m.l1.Lookup4KRun(vpns[:np], ppns[:np])
		// Events before the first missing probe (or the whole gather
		// when everything hit) completed; fill their results in order.
		end, missAt := j, -1
		if nh < np {
			end, missAt = idxs[nh], idxs[nh]
			runCap = 1
		} else if runCap < len(vpns) {
			runCap *= 2
		}
		p := 0
		for k := i; k < end; k++ {
			gva := uint64(evs[k].VA)
			vbase := gva &^ (addr.PageSize4K - 1)
			accesses++
			l1Hits++
			if p < nh && k == idxs[p] {
				lastVBase, lastHBase = vbase, ppns[p]<<addr.PageShift4K
				lastValid = true
				p++
			}
			if out != nil {
				out[k] = Result{HPA: lastHBase + (gva - vbase), L1Hit: true}
			}
		}
		i = end
		if missAt < 0 {
			continue
		}
		// The missing event: its 4K probe was already charged inside the
		// batched lookup; charge the (empty) 2M/1G probes and resolve.
		gva := uint64(evs[missAt].VA)
		vbase := gva &^ (addr.PageSize4K - 1)
		accesses++
		m.l1.MissLarge()
		m.stats.Accesses += accesses
		m.stats.L1Hits += l1Hits
		accesses, l1Hits = 0, 0
		m.stats.L1Misses++
		res, fault := m.missResolve(gva)
		if fault != nil {
			m.lastValid, m.lastVBase, m.lastHBase = lastValid, lastVBase, lastHBase
			m.bumpEpoch() // the fault will be serviced before the retry
			return missAt, fault
		}
		lastValid, lastVBase, lastHBase = true, vbase, res.HPA&^(addr.PageSize4K-1)
		if out != nil {
			out[missAt] = res
		}
		i = missAt + 1
		if !m.l1.Only4K() {
			// The walk inserted a large-page entry: finish per-event.
			m.stats.Accesses += accesses
			m.stats.L1Hits += l1Hits
			m.lastValid, m.lastVBase, m.lastHBase = lastValid, lastVBase, lastHBase
			n, f := m.translateBlockFrom(evs, out, i)
			return n, f
		}
	}
	m.stats.Accesses += accesses
	m.stats.L1Hits += l1Hits
	m.lastValid, m.lastVBase, m.lastHBase = lastValid, lastVBase, lastHBase
	return len(evs), nil
}

// translateBlockFrom is the per-event block loop, used for the whole
// block when large-page L1 entries exist (from > 0 resumes after the
// batched loop handed over mid-block). Probe-for-probe it is exactly
// per-event Translate.
func (m *MMU) translateBlockFrom(evs []trace.Event, out []Result, from int) (int, *Fault) {
	var accesses, l1Hits uint64
	lastValid, lastVBase, lastHBase := m.lastValid, m.lastVBase, m.lastHBase
	for i := from; i < len(evs); i++ {
		gva := uint64(evs[i].VA)
		accesses++
		vbase := gva &^ (addr.PageSize4K - 1)
		if lastValid && vbase == lastVBase {
			l1Hits++
			if out != nil {
				out[i] = Result{HPA: lastHBase + (gva - vbase), L1Hit: true}
			}
			continue
		}
		if hpa, _, hit := m.l1.Lookup(gva); hit {
			l1Hits++
			lastValid, lastVBase, lastHBase = true, vbase, hpa&^(addr.PageSize4K-1)
			if out != nil {
				out[i] = Result{HPA: hpa, L1Hit: true}
			}
			continue
		}
		// Slow path: flush the local counters first so the walk machinery
		// (and any telemetry probe reading counter deltas) sees exact
		// stats, exactly as per-event Translate would.
		m.stats.Accesses += accesses
		m.stats.L1Hits += l1Hits
		accesses, l1Hits = 0, 0
		m.stats.L1Misses++
		res, fault := m.missResolve(gva)
		if fault != nil {
			m.lastValid, m.lastVBase, m.lastHBase = lastValid, lastVBase, lastHBase
			m.bumpEpoch() // the fault will be serviced before the retry
			return i, fault
		}
		lastValid, lastVBase, lastHBase = true, vbase, res.HPA&^(addr.PageSize4K-1)
		if out != nil {
			out[i] = res
		}
	}
	m.stats.Accesses += accesses
	m.stats.L1Hits += l1Hits
	m.lastValid, m.lastVBase, m.lastHBase = lastValid, lastVBase, lastHBase
	return len(evs), nil
}

// translateMiss handles everything past an L1 miss by dispatching to
// the active scheme: segment fast paths, the L2 probe, and the
// scheme's walk machine.
func (m *MMU) translateMiss(gva uint64) (Result, *Fault) {
	return m.scheme.TranslateMiss(m, gva)
}

// dualFastPath is the Dual Direct 0D path, shared by the schemes whose
// register configuration can have both segment sets enabled: both
// covering the address → hPA = gVA + OFFSET_G + OFFSET_V. The two
// base-bound checks are performed together in one added cycle (Table
// II counts this as one check). Declined (uncovered or escaped)
// accesses charge nothing here beyond the filter probes.
func (m *MMU) dualFastPath(gva uint64, cycles *uint64) (Result, bool) {
	if !(m.segs.Guest.Enabled() && m.segs.VMM.Enabled() &&
		m.segs.Guest.Contains(gva) && !m.escapeGuest(gva)) {
		return Result{}, false
	}
	gpa := m.segs.Guest.Translate(gva)
	if !m.segs.VMM.Contains(gpa) || m.escapeVMM(gpa) {
		return Result{}, false
	}
	*cycles += m.cfg.SegmentCheckCycles
	m.stats.SegmentChecks++
	m.stats.ZeroDWalks++
	m.stats.GuestSegHits++
	m.stats.VMMSegHits++
	m.stats.MissBoth++
	m.stats.WalkCycles += *cycles
	hpa := m.segs.VMM.Translate(gpa)
	m.l1.Insert(gva, hpa, addr.Page4K)
	if m.sampler != nil && m.sampler.Tick() {
		m.sampler.Record(string(m.scheme.Name()), gva>>addr.PageShift4K,
			addr.Page4K, walkprof.ClassZeroD, 0, *cycles, m.asid)
	}
	return Result{HPA: hpa, Cycles: *cycles, ZeroD: true}, true
}

// probeL2 is the shared L2 TLB lookup of the miss path (guest 4K
// entries; any segment calculation proceeds in parallel, §III.D). The
// probe cost is charged hit or miss.
func (m *MMU) probeL2(gva uint64, cycles *uint64) (Result, bool) {
	if hpa, hit := m.l2.LookupGuest(gva); hit {
		m.stats.L2Hits++
		*cycles += m.cfg.L2HitCycles
		m.stats.WalkCycles += *cycles
		m.l1.Insert(gva, hpa, addr.Page4K)
		if m.sampler != nil && m.sampler.Tick() {
			m.sampler.Record(string(m.scheme.Name()), gva>>addr.PageShift4K,
				addr.Page4K, walkprof.ClassL2Hit, 0, *cycles, m.asid)
		}
		return Result{HPA: hpa, Cycles: *cycles, L2Hit: true}, true
	}
	m.stats.L2Misses++
	*cycles += m.cfg.L2HitCycles // the probe that missed
	return Result{}, false
}

// escapeVMM probes the VMM-segment escape filter for a gPA page.
func (m *MMU) escapeVMM(gpa uint64) bool {
	m.stats.EscapeProbes++
	if m.escV.MayContain(gpa >> addr.PageShift4K) {
		m.stats.EscapeTaken++
		return true
	}
	return false
}

// escapeGuest probes the guest-segment escape filter for a VA page.
func (m *MMU) escapeGuest(va uint64) bool {
	m.stats.EscapeProbes++
	if m.escG.MayContain(va >> addr.PageShift4K) {
		m.stats.EscapeTaken++
		return true
	}
	return false
}

// walk1D invokes the native 1D walk state machine, charging cycles on
// top of the cost already accumulated. The telemetry probe and walkprof
// sampler, when installed, observe each walk's reference and cycle
// deltas. The sampler ticks before the walk so the 1-in-N unsampled
// majority pays only the inlined countdown — counter snapshots and
// argument setup happen only for selected misses (a selected walk that
// faults refunds its tick to the next miss). The wrapper is duplicated
// per walker (walk1D/walk2D/walkFlat) rather than taking a function
// value, which would allocate on the hot path.
func (m *MMU) walk1D(gva uint64, cycles uint64) (Result, *Fault) {
	m.stats.Walks++
	sampled := m.sampler != nil && m.sampler.Tick()
	if m.probe == nil && !sampled {
		return m.nativeWalk(gva, cycles)
	}
	refs0, cyc0 := m.stats.WalkMemRefs, m.stats.WalkCycles
	res, fault := m.nativeWalk(gva, cycles)
	drefs, dcyc := m.stats.WalkMemRefs-refs0, m.stats.WalkCycles-cyc0
	if m.probe != nil {
		m.probe.Refs.Observe(drefs)
		m.probe.Cycles.Observe(dcyc)
	}
	if sampled {
		if fault != nil {
			m.sampler.Refund()
		} else {
			m.sampler.Record(string(m.scheme.Name()), gva>>addr.PageShift4K,
				m.walkSize, walkprof.ClassWalk1D, drefs, dcyc, m.asid)
		}
	}
	return res, fault
}

// walk2D invokes the 2D walk state machine of Figure 5(b).
func (m *MMU) walk2D(gva uint64, cycles uint64) (Result, *Fault) {
	m.stats.Walks++
	sampled := m.sampler != nil && m.sampler.Tick()
	if m.probe == nil && !sampled {
		return m.nestedWalk2D(gva, cycles)
	}
	refs0, cyc0 := m.stats.WalkMemRefs, m.stats.WalkCycles
	res, fault := m.nestedWalk2D(gva, cycles)
	drefs, dcyc := m.stats.WalkMemRefs-refs0, m.stats.WalkCycles-cyc0
	if m.probe != nil {
		m.probe.Refs.Observe(drefs)
		m.probe.Cycles.Observe(dcyc)
	}
	if sampled {
		if fault != nil {
			m.sampler.Refund()
		} else {
			m.sampler.Record(string(m.scheme.Name()), gva>>addr.PageShift4K,
				m.walkSize, m.walkClass, drefs, dcyc, m.asid)
		}
	}
	return res, fault
}

// walkFlat invokes the flattened 2D walk (scheme_flat.go).
func (m *MMU) walkFlat(gva uint64, cycles uint64) (Result, *Fault) {
	m.stats.Walks++
	sampled := m.sampler != nil && m.sampler.Tick()
	if m.probe == nil && !sampled {
		return m.flatWalk2D(gva, cycles)
	}
	refs0, cyc0 := m.stats.WalkMemRefs, m.stats.WalkCycles
	res, fault := m.flatWalk2D(gva, cycles)
	drefs, dcyc := m.stats.WalkMemRefs-refs0, m.stats.WalkCycles-cyc0
	if m.probe != nil {
		m.probe.Refs.Observe(drefs)
		m.probe.Cycles.Observe(dcyc)
	}
	if sampled {
		if fault != nil {
			m.sampler.Refund()
		} else {
			m.sampler.Record(string(m.scheme.Name()), gva>>addr.PageShift4K,
				m.walkSize, m.walkClass, drefs, dcyc, m.asid)
		}
	}
	return res, fault
}

// nativeWalk is the 1D walk: up to 4 references through the PTE cache,
// reduced by the paging-structure caches.
func (m *MMU) nativeWalk(va uint64, cycles uint64) (Result, *Fault) {
	pa, size, ok, _ := m.walkGuestTable(va, &cycles, false)
	if !ok {
		m.stats.GuestFaults++
		m.stats.WalkCycles += cycles
		return Result{}, &Fault{Kind: FaultGuest, Addr: va}
	}
	m.stats.WalkCycles += cycles
	m.insertComposite(va, pa, size, size)
	return Result{HPA: pa, Cycles: cycles}, nil
}

// walkGuestTable walks the first-dimension table, applying the guest
// PWC and, when nested (virtualized mode), translating every table
// reference (a gPA) through the nested dimension before reading it. It
// returns the leaf translation and its page size; the references
// themselves are accounted into the stats and PWC here, so no caller
// consumes them. A non-nil fault (nested dimension failed mid-walk)
// takes precedence over !ok at the caller.
func (m *MMU) walkGuestTable(va uint64, cycles *uint64, nested bool) (pa uint64, size addr.PageSize, ok bool, fault *Fault) {
	// The PWC is probed before the walk (it always was probed, success
	// or fault) so the walk can skip materializing references the
	// charging loop below would never read; WalkFrom still emits the
	// leaf (or faulting) reference, matching Walk's clamped refs[skip:].
	skip := 0
	if !m.cfg.DisablePWC {
		skip = m.pwc.SkipLevel(va)
	}
	return m.walkGuestTableSkip(va, cycles, nested, skip)
}

// walkGuestTableSkip is walkGuestTable with the PWC skip level already
// probed — the fused miss path (memo.go) interposes other work between
// the probe and the walk.
func (m *MMU) walkGuestTableSkip(va uint64, cycles *uint64, nested bool, skip int) (pa uint64, size addr.PageSize, ok bool, fault *Fault) {
	m.refBuf = m.refBuf[:0]
	pa, size, refs, ok := m.gPT.WalkFrom(va, skip, m.refBuf)
	m.refBuf = refs

	// The ref count is accumulated locally and flushed to the stats
	// struct once (including on the fault path, where only the refs
	// performed before the abort count), not read-modify-written per
	// reference.
	n := uint64(0)
	for _, ref := range refs {
		physAddr := ref.Addr
		if nested {
			hpa, _, f := m.nestedTranslate(ref.Addr, cycles)
			if f != nil {
				m.stats.WalkMemRefs += n
				return 0, 0, false, f
			}
			physAddr = hpa
		}
		n++
		*cycles += m.ptc.Access(physAddr)
	}
	m.stats.WalkMemRefs += n
	if ok && !m.cfg.DisablePWC {
		// Interior levels traversed feed the paging-structure caches.
		leafLvl := refs[len(refs)-1].Level
		m.pwc.FillFrom(va, skip, leafLvl)
	}
	return pa, size, ok, nil
}

// nestedTranslate resolves one gPA to hPA: VMM segment (with escape
// filter), then nested TLB, then a nested page-table walk.
func (m *MMU) nestedTranslate(gpa uint64, cycles *uint64) (uint64, addr.PageSize, *Fault) {
	// VMM segment check costs Δ whenever the registers are enabled —
	// the hardware performs it unconditionally (Figure 5(b)).
	if m.segs.VMM.Enabled() {
		*cycles += m.cfg.SegmentCheckCycles
		m.stats.SegmentChecks++
		if m.segs.VMM.Contains(gpa) && !m.escapeVMM(gpa) {
			m.stats.VMMSegHits++
			return m.segs.VMM.Translate(gpa), addr.Page4K, nil
		}
	}
	// Nested TLB (shared L2 structure).
	if !m.cfg.DisableNestedTLB {
		if hpa, hit := m.l2.LookupNested(gpa); hit {
			m.stats.NestedTLBHits++
			*cycles += m.cfg.NestedProbeCycles
			return hpa, addr.Page4K, nil
		}
		m.stats.NestedTLBMisses++
	}
	// Nested page-table walk: up to 4 references, reduced by the
	// nested paging-structure caches. The ref buffer is reused across
	// walks (separate from the guest-walk buffer, which is live while a
	// 2D walk translates its table references through this path).
	m.stats.NestedWalks++
	m.nrefBuf = m.nrefBuf[:0]
	var hpa uint64
	var nsize addr.PageSize
	var refs []pagetable.Ref
	var ok bool
	skip := 0
	fast := false
	if !m.cfg.DisablePWC {
		// WalkFast runs the walk-cache path and calls back for the skip
		// level only once success is guaranteed, so the nested PWC is
		// probed up front (the probe order relative to the walk is
		// unobservable — the walk never touches the PWC) and the walk
		// skips materializing references the charging loop would drop.
		// A fault, which under the old order returned before the PWC
		// probe, is impossible on the fast path; the general path below
		// keeps probe-after-walk for that case.
		hpa, nsize, refs, fast = m.nPT.WalkFast(gpa, func() int {
			skip = m.npwc.SkipLevel(gpa)
			return skip
		}, m.nrefBuf)
	}
	if fast {
		m.nrefBuf = refs
		ok = true
	} else {
		hpa, nsize, refs, ok = m.nPT.Walk(gpa, m.nrefBuf)
		m.nrefBuf = refs // keep the buffer anchored at its start
		if ok && !m.cfg.DisablePWC {
			skip = m.npwc.SkipLevel(gpa)
			if skip > len(refs)-1 {
				skip = len(refs) - 1
			}
		}
		refs = refs[skip:]
	}
	if !ok {
		m.stats.NestedFaults++
		return 0, 0, &Fault{Kind: FaultNested, Addr: gpa}
	}
	m.stats.WalkMemRefs += uint64(len(refs))
	cyc := *cycles
	for _, ref := range refs {
		cyc += m.ptc.Access(ref.Addr)
	}
	*cycles = cyc
	if !m.cfg.DisablePWC {
		m.npwc.FillFrom(gpa, skip, refs[len(refs)-1].Level)
	}
	if !m.cfg.DisableNestedTLB {
		m.l2.InsertNested(gpa&^(addr.PageSize4K-1), hpa&^(addr.PageSize4K-1))
	}
	return hpa, nsize, nil
}

// nestedWalk2D is the two-dimensional walk of Figure 2, flattened in
// one or both dimensions when segments cover the relevant ranges.
func (m *MMU) nestedWalk2D(gva uint64, cycles uint64) (Result, *Fault) {
	// The guest escape filter is the §V extension ("escape filters at
	// both levels so the guest OS can escape pages as well"): a covered
	// gVA that hits it walks the guest page table instead.
	guestCovered := m.segs.Guest.Enabled() && m.segs.Guest.Contains(gva) &&
		!m.escapeGuest(gva)
	if m.segs.Guest.Enabled() {
		// The guest base-bound check happens once per walk (Δ_GD = 1).
		cycles += m.cfg.SegmentCheckCycles
		m.stats.SegmentChecks++
	}

	var gpa uint64
	var gsize addr.PageSize
	if guestCovered {
		// First dimension flattened: gPA = gVA + OFFSET_G.
		m.stats.GuestSegHits++
		gpa = m.segs.Guest.Translate(gva)
		gsize = addr.Page4K
	} else {
		// Walk the guest page table; each reference is a gPA needing
		// nested translation first (the 5×4 of the 24-reference walk).
		pa, size, ok, fault := m.walkGuestTable(gva, &cycles, true)
		if fault != nil {
			m.stats.WalkCycles += cycles
			return Result{}, fault
		}
		if !ok {
			m.stats.GuestFaults++
			m.stats.WalkCycles += cycles
			return Result{}, &Fault{Kind: FaultGuest, Addr: gva}
		}
		gpa, gsize = pa, size
	}

	// Second dimension for the final gPA.
	vmmCovered := m.segs.VMM.Enabled() && m.segs.VMM.Contains(gpa)
	hpa, nsize, fault := m.nestedTranslate(gpa, &cycles)
	if fault != nil {
		m.stats.WalkCycles += cycles
		return Result{}, fault
	}

	m.classifyMiss(guestCovered, vmmCovered)
	m.stats.WalkCycles += cycles
	m.insertComposite(gva, hpa, gsize, nsize)
	return Result{HPA: hpa, Cycles: cycles}, nil
}

// classifyMiss updates the Table I / Table IV fraction counters and
// records the walk's class for the walkprof sampler (the §VII taxonomy
// and these counters are the same classification, so they cannot
// disagree).
func (m *MMU) classifyMiss(guestCovered, vmmCovered bool) {
	switch {
	case guestCovered && vmmCovered:
		m.stats.MissBoth++
		m.walkClass = walkprof.ClassWalkBoth
	case vmmCovered:
		m.stats.MissVMMOnly++
		m.walkClass = walkprof.ClassWalkVMMOnly
	case guestCovered:
		m.stats.MissGuestOnly++
		m.walkClass = walkprof.ClassWalkGuestOnly
	default:
		m.stats.MissNeither++
		m.walkClass = walkprof.ClassWalkNeither
	}
}

// insertComposite installs the completed gVA→hPA translation in the
// TLBs. The cacheable granularity is the smaller of the two dimensions'
// page sizes; the L2 holds only 4K entries (Table VI).
func (m *MMU) insertComposite(gva, hpa uint64, gsize, nsize addr.PageSize) {
	size := gsize
	if nsize < size {
		size = nsize
	}
	m.walkSize = size
	if size == addr.Page4K {
		base := gva &^ (addr.PageSize4K - 1)
		hbase := hpa &^ (addr.PageSize4K - 1)
		m.l1.Insert(base, hbase, addr.Page4K)
		m.l2.InsertGuest(base, hbase)
		return
	}
	m.l1.Insert(addr.PageBase(gva, size), addr.PageBase(hpa, size), size)
}

// L2NestedStats exposes shared-L2 statistics for the §IX.A analysis.
func (m *MMU) L2NestedStats() (lookups, hits, nestedInserts uint64) {
	return m.l2.Stats()
}

// L2Evictions reports how many valid entries the shared L2 TLB has
// replaced — the capacity-pressure signal behind the paper's §IX.A
// erosion numbers, exported as a telemetry counter by the harness.
func (m *MMU) L2Evictions() uint64 { return m.l2.Evictions() }
