package mmu

import "vdirect/internal/addr"

// flatNestedScheme is the first post-paper contender: flattened nested
// page tables. The VMM maintains, per guest page table, a set of
// "flat" host-resident tables that merge each interior guest level
// with its nested resolution: looking up the gL4, gL3, or gL2 entry
// for a gVA is a single host-physical reference into the flat table
// for that level, instead of a nested translation of the table's gPA
// (up to nL references) followed by the entry read. Only the gL1 entry
// — whose contents the guest rewrites at page-fault rates, too hot to
// mirror — and the final gPA still resolve through the nested
// dimension, collapsing the 24-reference 4K-on-4K walk to 12.
//
// The scheme composes with the paper's segments: enabled guest/VMM
// registers still flatten their dimension (including the 0D dual fast
// path), and the flat walker only runs for the references a segment
// did not absorb.
type flatNestedScheme struct{}

func (flatNestedScheme) Name() Mode        { return ModeFlatNested }
func (flatNestedScheme) Virtualized() bool { return true }

func (flatNestedScheme) Keys() KeyTemplate {
	return KeyTemplate{GuestASIDTagged: true, NestedShared: true}
}

func (flatNestedScheme) Requirements() Requirements {
	return Requirements{Virtualized: true, FlattenedNested: true}
}

func (flatNestedScheme) WalkCost(in CostInput) WalkCost {
	if in.GuestSegEnabled && in.VMMSegEnabled && in.GuestCovered && in.VMMCovered {
		// Both segments cover: the 0D fast path absorbs the miss.
		return WalkCost{Checks: 1}
	}
	var c WalkCost
	if in.GuestSegEnabled {
		c.Checks++
	}
	if in.GuestCovered {
		// Guest dimension flattened by the segment; one nested
		// translation of the final gPA, exactly as the base 2D form.
		if in.VMMSegEnabled {
			c.Checks++
		} else {
			c.Refs += in.NestedLevels
		}
		return c
	}
	// One flat-table reference per interior guest level; a 4K guest
	// leaf keeps its gL1 lookup in the nested dimension (2M/1G leaves
	// terminate at a flattened level).
	deep := uint64(0)
	if in.GuestLevels == 4 {
		deep = 1
	}
	c.Refs += in.GuestLevels // flat interior refs + the deep entry read
	nested := deep + 1       // gL1 ref (if any) + the final gPA
	if in.VMMSegEnabled {
		c.Checks += nested
	} else {
		c.Refs += nested * in.NestedLevels
	}
	return c
}

func (flatNestedScheme) TranslateMiss(m *MMU, gva uint64) (Result, *Fault) {
	var cycles uint64
	if res, ok := m.dualFastPath(gva, &cycles); ok {
		return res, nil
	}
	if res, hit := m.probeL2(gva, &cycles); hit {
		return res, nil
	}
	return m.walkFlat(gva, cycles)
}

// flatTableBase places the flat tables in a synthetic host-physical
// region far above modeled memory, so their references exercise the
// PTE cache without aliasing real table pages. Each level gets its own
// window; an entry's address is a pure function of (level, va prefix),
// giving flat references the same spatial locality a real merged table
// would have.
const flatTableBase = uint64(1) << 52

func flatEntryAddr(va uint64, level int) uint64 {
	shift := uint(addr.PageShift4K + 9*(addr.Levels-1-level))
	return flatTableBase | uint64(level)<<36 | va>>shift<<3
}

// flatResolves mirrors the VMM's software view of whether the nested
// dimension maps a guest table page: the flat-table entry shortcutting
// an interior level is valid exactly when the table page it covers is
// resolvable, by VMM segment arithmetic or the nested page table. This
// is VMM bookkeeping consulted at flat-table maintenance time, not
// hardware — no cycles, no references, no escape-filter probes.
func (m *MMU) flatResolves(gpa uint64) bool {
	if m.segs.VMM.Enabled() && m.segs.VMM.Contains(gpa) &&
		!m.escV.MayContain(gpa>>addr.PageShift4K) {
		return true
	}
	_, _, ok := m.nPT.Translate(gpa)
	return ok
}

// walkGuestTableFlat is walkGuestTable's flattened twin: interior
// references (gL4–gL2) cost one flat-table read each, while the gL1
// reference — and any level whose flat entry is invalid — behaves
// exactly as in the base 2D walk, so fault addresses are identical to
// walkGuestTable's.
func (m *MMU) walkGuestTableFlat(va uint64, cycles *uint64) (pa uint64, size addr.PageSize, ok bool, fault *Fault) {
	skip := 0
	if !m.cfg.DisablePWC {
		skip = m.pwc.SkipLevel(va)
	}
	m.refBuf = m.refBuf[:0]
	pa, size, refs, ok := m.gPT.WalkFrom(va, skip, m.refBuf)
	m.refBuf = refs

	n := uint64(0)
	for _, ref := range refs {
		if ref.Level < addr.LvlPT {
			// Flattened interior level: one host reference into the
			// flat table. A table page the nested dimension no longer
			// maps has no valid flat entry, and faults where the base
			// walk's nested translation of it would.
			if !m.flatResolves(ref.Addr) {
				m.stats.NestedFaults++
				m.stats.WalkMemRefs += n
				return 0, 0, false, &Fault{Kind: FaultNested, Addr: ref.Addr}
			}
			n++
			*cycles += m.ptc.Access(flatEntryAddr(va, ref.Level))
			continue
		}
		hpa, _, f := m.nestedTranslate(ref.Addr, cycles)
		if f != nil {
			m.stats.WalkMemRefs += n
			return 0, 0, false, f
		}
		n++
		*cycles += m.ptc.Access(hpa)
	}
	m.stats.WalkMemRefs += n
	if ok && !m.cfg.DisablePWC {
		leafLvl := refs[len(refs)-1].Level
		m.pwc.FillFrom(va, skip, leafLvl)
	}
	return pa, size, ok, nil
}

// flatWalk2D mirrors nestedWalk2D with the flattened guest-table
// walker: segment flattening, fault handling, miss classification, and
// TLB fills are identical, so the scheme differs from the baseline
// only in what each interior guest reference costs.
func (m *MMU) flatWalk2D(gva uint64, cycles uint64) (Result, *Fault) {
	guestCovered := m.segs.Guest.Enabled() && m.segs.Guest.Contains(gva) &&
		!m.escapeGuest(gva)
	if m.segs.Guest.Enabled() {
		cycles += m.cfg.SegmentCheckCycles
		m.stats.SegmentChecks++
	}

	var gpa uint64
	var gsize addr.PageSize
	if guestCovered {
		m.stats.GuestSegHits++
		gpa = m.segs.Guest.Translate(gva)
		gsize = addr.Page4K
	} else {
		pa, size, ok, fault := m.walkGuestTableFlat(gva, &cycles)
		if fault != nil {
			m.stats.WalkCycles += cycles
			return Result{}, fault
		}
		if !ok {
			m.stats.GuestFaults++
			m.stats.WalkCycles += cycles
			return Result{}, &Fault{Kind: FaultGuest, Addr: gva}
		}
		gpa, gsize = pa, size
	}

	vmmCovered := m.segs.VMM.Enabled() && m.segs.VMM.Contains(gpa)
	hpa, nsize, fault := m.nestedTranslate(gpa, &cycles)
	if fault != nil {
		m.stats.WalkCycles += cycles
		return Result{}, fault
	}

	m.classifyMiss(guestCovered, vmmCovered)
	m.stats.WalkCycles += cycles
	m.insertComposite(gva, hpa, gsize, nsize)
	return Result{HPA: hpa, Cycles: cycles}, nil
}
