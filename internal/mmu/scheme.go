// Translation schemes. The MMU itself is mode-less hardware — segment
// registers, page-table pointers, and the flat-walker flag determine
// behaviour — but everything past an L1 TLB miss is owned by a Scheme:
// a self-contained implementation of one translation proposal (the six
// paper modes, plus post-paper contenders such as flattened nested page
// tables). Schemes live in a registry keyed by name so the oracle,
// experiment drivers, and command binaries select them without an enum.
//
// The active scheme is re-derived only on register writes
// (updateScheme), never on the translation path, so the hot loop pays
// exactly one interface call per L1 miss and nothing per hit.
package mmu

import (
	"fmt"
	"sort"
)

// Mode names a registered translation scheme. It is the scheme's
// registry key: Mode values print, compare, and select schemes by name.
type Mode string

// The six operating modes of Figure 3, plus the post-paper flattened
// nested page table scheme.
const (
	ModeNative          Mode = "Native"
	ModeDirectSegment   Mode = "DirectSegment"
	ModeBaseVirtualized Mode = "BaseVirtualized"
	ModeDualDirect      Mode = "DualDirect"
	ModeVMMDirect       Mode = "VMMDirect"
	ModeGuestDirect     Mode = "GuestDirect"
	ModeFlatNested      Mode = "FlatNested"
)

func (m Mode) String() string { return string(m) }

// Virtualized reports whether the named scheme uses two-level
// translation. Unregistered names report false.
func (m Mode) Virtualized() bool {
	s, ok := schemes[m]
	return ok && s.Virtualized()
}

// CostInput parameterizes a scheme's closed-form walk cost: the walk
// depths of the two dimensions' mappings and which dimensions resolved
// through a segment. The segment-enabled flags matter only to schemes
// whose register configuration is not fixed by their identity
// (FlatNested composes with any segment setup); the paper schemes
// imply them.
type CostInput struct {
	// GuestLevels is the guest-dimension walk depth (4K → 4, 2M → 3,
	// 1G → 2); NestedLevels likewise for the nested dimension.
	GuestLevels  uint64
	NestedLevels uint64
	// GuestCovered / VMMCovered report segment coverage of the gVA and
	// of the final gPA respectively.
	GuestCovered bool
	VMMCovered   bool
	// GuestSegEnabled / VMMSegEnabled are the register-enable states.
	GuestSegEnabled bool
	VMMSegEnabled   bool
}

// WalkCost is a closed-form cost-table entry: the exact reference and
// base-bound-check counts of one L1-miss resolution in a strict
// configuration (paging-structure caches and nested TLB disabled,
// escape filters clean, cold TLBs). internal/oracle pins every
// registered scheme's table against its own independent closed form.
type WalkCost struct {
	Refs   uint64
	Checks uint64
}

// KeyTemplate declares how a scheme's translations are keyed in the
// TLB hierarchy — which caches must honour ASID tagging and whether
// the shared L2 carries nested (per-VM, ASID-independent) entries.
// The conformance suite holds every scheme to its template.
type KeyTemplate struct {
	// GuestASIDTagged: composite gVA→hPA entries are per-address-space
	// (survive ContextSwitchASID, die on FlushASID of their tag).
	GuestASIDTagged bool
	// NestedShared: gPA→hPA entries are per-VM and survive guest
	// process switches.
	NestedShared bool
}

// Requirements declares what the OS/VMM layers must provide before the
// scheme can be the active one: which register sets are programmed,
// whether backing must be contiguous (segment offset arithmetic), and
// whether the VMM maintains flattened nested tables. vdirect and the
// experiment builders consume this instead of switching on mode names.
type Requirements struct {
	Virtualized       bool
	GuestSegment      bool
	VMMSegment        bool
	ContiguousBacking bool
	FlattenedNested   bool
}

// Scheme is one translation proposal. Implementations are stateless
// singletons: all mutable state lives in the MMU, so one scheme value
// serves every MMU instance.
type Scheme interface {
	// Name is the registry key (and the Mode the MMU reports).
	Name() Mode
	// Virtualized reports whether the scheme translates in two levels.
	Virtualized() bool
	// TranslateMiss resolves one access past an L1 miss: segment fast
	// paths, the L2 probe, and the scheme's walk machine. It must
	// accumulate cycle cost locally and flush stats exactly once per
	// resolution (the TranslateBlock contract).
	TranslateMiss(m *MMU, gva uint64) (Result, *Fault)
	// WalkCost is the scheme's closed-form cost-table entry.
	WalkCost(in CostInput) WalkCost
	// Keys is the scheme's TLB/PWC key template.
	Keys() KeyTemplate
	// Requirements declares the register/backing setup the scheme needs.
	Requirements() Requirements
}

var schemes = make(map[Mode]Scheme)

// RegisterScheme adds a scheme to the registry. Registering two
// schemes under one name is a programming error and panics.
func RegisterScheme(s Scheme) {
	if _, dup := schemes[s.Name()]; dup {
		panic(fmt.Sprintf("mmu: duplicate registration of translation scheme %q", s.Name()))
	}
	schemes[s.Name()] = s
}

// SchemeByName looks a scheme up by its registry name.
func SchemeByName(name string) (Scheme, error) {
	s, ok := schemes[Mode(name)]
	if !ok {
		return nil, fmt.Errorf("mmu: unknown translation scheme %q (registered: %v)", name, SchemeNames())
	}
	return s, nil
}

// SchemeNames returns the registered scheme names, sorted.
func SchemeNames() []string {
	names := make([]string, 0, len(schemes))
	for m := range schemes {
		names = append(names, string(m))
	}
	sort.Strings(names)
	return names
}

// Schemes returns the registered schemes, sorted by name.
func Schemes() []Scheme {
	out := make([]Scheme, 0, len(schemes))
	for _, name := range SchemeNames() {
		out = append(out, schemes[Mode(name)])
	}
	return out
}

// The scheme singletons, also reachable through the registry. The MMU
// selects between them directly in updateScheme so the miss path never
// touches the map.
var (
	schemeNative          Scheme = nativeScheme{}
	schemeDirectSegment   Scheme = directSegmentScheme{}
	schemeBaseVirtualized Scheme = baseVirtualizedScheme{}
	schemeDualDirect      Scheme = dualDirectScheme{}
	schemeVMMDirect       Scheme = vmmDirectScheme{}
	schemeGuestDirect     Scheme = guestDirectScheme{}
	schemeFlatNested      Scheme = flatNestedScheme{}
)

func init() {
	RegisterScheme(schemeNative)
	RegisterScheme(schemeDirectSegment)
	RegisterScheme(schemeBaseVirtualized)
	RegisterScheme(schemeDualDirect)
	RegisterScheme(schemeVMMDirect)
	RegisterScheme(schemeGuestDirect)
	RegisterScheme(schemeFlatNested)
}

// updateScheme re-derives the active scheme from the current register
// configuration. It runs on register writes only — Translate and
// TranslateBlock never re-derive.
func (m *MMU) updateScheme() {
	g, v := m.segs.Guest.Enabled(), m.segs.VMM.Enabled()
	switch {
	case !m.virtualized && g:
		m.scheme = schemeDirectSegment
	case !m.virtualized:
		m.scheme = schemeNative
	case m.flatNested:
		m.scheme = schemeFlatNested
	case g && v:
		m.scheme = schemeDualDirect
	case v:
		m.scheme = schemeVMMDirect
	case g:
		m.scheme = schemeGuestDirect
	default:
		m.scheme = schemeBaseVirtualized
	}
}

// cost2D is the shared closed form for paged two-level schemes: the
// paper's mode table (ExpectWalk in internal/oracle, restated here as
// the schemes' own cost entries). When the VMM segment is enabled it
// is assumed to cover every gPA the walk touches (the §VI.A whole-guest
// contiguous reservation).
func cost2D(in CostInput, gSeg, vSeg bool) WalkCost {
	var c WalkCost
	if gSeg {
		c.Checks++
	}
	guestRefs := uint64(0)
	if !in.GuestCovered {
		guestRefs = in.GuestLevels
	}
	nested := guestRefs + 1
	if vSeg {
		c.Checks += nested
	} else {
		c.Refs += nested * in.NestedLevels
	}
	c.Refs += guestRefs
	return c
}
