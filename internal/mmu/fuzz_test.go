package mmu

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/segment"
)

// fuzzReader decodes operand bytes; reads past the end yield zero so
// truncated inputs stay valid.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// FuzzTranslateStats drives randomized register configurations,
// mappings, escapes, invalidations and access streams through a fully
// cached MMU, asserting per access that the result matches the
// cache-free reference composition, and at the end that the counter
// identities hold: every access is exactly one of L1 hit/miss, every
// L1 miss resolves as exactly one of 0D/L2 hit/walk, references stay
// within the 24-per-walk mode-table bound, and the escape filter is
// probed at least as often as it fires.
func FuzzTranslateStats(f *testing.F) {
	f.Add([]byte{0x00, 1, 0, 1, 1, 0, 2, 2, 0, 3, 4, 0, 5})
	f.Add([]byte{0x01, 2, 10, 3, 20, 0, 1, 0, 2, 4, 0, 0, 1, 5, 0, 3})
	f.Add([]byte{0x03, 0, 0, 2, 1, 3, 2, 0, 4, 1, 9, 0, 8, 5, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<13 {
			return
		}
		r := &fuzzReader{data: data}
		cfg := Config{}
		flags := r.next()
		if flags&1 != 0 {
			cfg.DisablePWC = true
		}
		if flags&2 != 0 {
			cfg.DisableNestedTLB = true
		}
		e, err := buildEnv(8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		const span = uint64(2 << 20) // touched gVA window at 0x400000
		// A paged arena and a candidate segment window share the span so
		// segment and paging translations interleave.
		for i := uint64(0); i < 64; i++ {
			gva := 0x400000 + i<<addr.PageShift4K
			gpa := 0x200000 + i<<addr.PageShift4K
			if err := e.gPT.Map(gva, gpa, addr.Page4K); err != nil {
				t.Fatal(err)
			}
		}
		for r.pos < len(r.data) {
			op := r.next()
			switch op % 8 {
			case 0, 1, 2, 3: // access
				gva := 0x400000 + (uint64(r.next())<<12|uint64(r.next()))%span
				want, wantOK := reference(e, gva)
				res, fault := e.m.Translate(gva)
				if wantOK != (fault == nil) {
					t.Fatalf("va %#x: fault=%v, reference ok=%v", gva, fault, wantOK)
				}
				if wantOK && res.HPA != want {
					t.Fatalf("va %#x: got %#x, reference %#x", gva, res.HPA, want)
				}
			case 4: // reprogram guest segment over part of the window
				pages := uint64(r.next()) % 65
				e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x600000, pages<<addr.PageShift4K))
				e.m.FlushTLBs()
				// The segment targets [0x600000,...): back it in the nested
				// dimension implicitly (buildEnv maps all guest memory).
			case 5: // reprogram VMM segment
				if r.next()&1 == 0 {
					e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, e.guestSize))
				} else {
					e.m.SetVMMSegment(segment.Disabled())
				}
				e.m.FlushTLBs()
			case 6: // escape inserts (guest and VMM filters)
				b := uint64(r.next())
				e.m.GuestEscapeFilter().Insert((0x400000 >> addr.PageShift4K) + b%512)
				e.m.VMMEscapeFilter().Insert(b % (e.guestSize >> addr.PageShift4K))
				e.m.InvalidateNested()
			case 7: // targeted invalidation
				gva := 0x400000 + (uint64(r.next())%512)<<addr.PageShift4K
				e.m.InvalidatePage(gva, addr.Page4K)
			}
		}
		st := e.m.Stats()
		if st.Accesses != st.L1Hits+st.L1Misses {
			t.Fatalf("%d accesses != %d L1 hits + %d misses", st.Accesses, st.L1Hits, st.L1Misses)
		}
		if st.L1Misses != st.ZeroDWalks+st.L2Hits+st.Walks {
			t.Fatalf("%d L1 misses != %d 0D + %d L2 + %d walks", st.L1Misses, st.ZeroDWalks, st.L2Hits, st.Walks)
		}
		if st.WalkMemRefs > st.Walks*24 {
			t.Fatalf("%d refs exceed the 24-per-walk bound over %d walks", st.WalkMemRefs, st.Walks)
		}
		if st.EscapeTaken > st.EscapeProbes {
			t.Fatalf("escape taken %d > probes %d", st.EscapeTaken, st.EscapeProbes)
		}
		if st.GuestFaults+st.NestedFaults > st.Walks {
			t.Fatalf("more faults (%d+%d) than walks (%d)", st.GuestFaults, st.NestedFaults, st.Walks)
		}
	})
}
