package mmu

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/segment"
	"vdirect/internal/telemetry/walkprof"
)

// sampleEverything attaches a period-1 sampler (seed 0 → phase 1: every
// miss records) so sample sums can be compared exactly against Stats.
func sampleEverything(m *MMU) *walkprof.Sampler {
	p := walkprof.Enable(1)
	p.Stop() // only the sampler is needed, not the global profile
	s := p.Sampler("test", 0, 0)
	m.SetWalkSampler(s)
	return s
}

// TestSamplerMatchesStatsExactly runs a miss-heavy access pattern with
// a period-1 sampler and checks that the sample stream reconstructs the
// MMU's own counters exactly: per-class miss counts, total walk refs,
// and total walk cycles attributed to walks. This is the zero-sampling-
// error case of the acceptance criterion.
func TestSamplerMatchesStatsExactly(t *testing.T) {
	e := newEnv(t, 16, Config{})
	s := sampleEverything(e.m)
	e.mapGuest(t, 0, 0, 2048)
	// Strided sweep, repeated: generates walks, L2 hits, and L1 misses
	// in realistic mixture.
	for rep := 0; rep < 3; rep++ {
		for p := uint64(0); p < 2048; p++ {
			if _, fault := e.m.Translate(p << 12); fault != nil {
				t.Fatal(fault)
			}
		}
	}
	st := e.m.Stats()
	var refs, cycles, walks, l2hits uint64
	for _, smp := range s.Samples() {
		refs += smp.Refs
		cycles += smp.Cycles
		switch smp.Class {
		case walkprof.ClassL2Hit:
			l2hits++
		case walkprof.ClassWalkNeither:
			walks++
		default:
			t.Fatalf("unexpected class %v for base virtualized", smp.Class)
		}
	}
	if walks != st.Walks {
		t.Errorf("sampled walks = %d, stats %d", walks, st.Walks)
	}
	if l2hits != st.L2Hits {
		t.Errorf("sampled L2 hits = %d, stats %d", l2hits, st.L2Hits)
	}
	if refs != st.WalkMemRefs {
		t.Errorf("sampled refs = %d, stats %d", refs, st.WalkMemRefs)
	}
	if cycles != st.WalkCycles {
		t.Errorf("sampled cycles = %d, stats %d", cycles, st.WalkCycles)
	}
	if uint64(s.Len()) != st.L1Misses {
		t.Errorf("samples = %d, L1 misses %d (every resolved miss should sample at period 1)",
			s.Len(), st.L1Misses)
	}
}

// TestSamplerZeroDAndSegmentClasses drives the dual fast path and the
// native direct-segment fast path and checks class tagging.
func TestSamplerZeroDAndSegmentClasses(t *testing.T) {
	e := newEnv(t, 16, Config{})
	s := sampleEverything(e.m)
	// Both segments cover all of guest memory: every miss is 0D.
	e.m.SetGuestSegment(segment.NewRegisters(0, 0, e.guestSize))
	e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, e.guestSize))
	if e.m.Mode() != ModeDualDirect {
		t.Fatalf("mode = %v", e.m.Mode())
	}
	for p := uint64(0); p < 512; p++ {
		if _, fault := e.m.Translate(p << 12); fault != nil {
			t.Fatal(fault)
		}
	}
	st := e.m.Stats()
	if st.ZeroDWalks == 0 {
		t.Fatal("no 0D resolutions — test drives the wrong path")
	}
	var zerod uint64
	for _, smp := range s.Samples() {
		if smp.Class == walkprof.ClassZeroD {
			zerod++
			if smp.Refs != 0 {
				t.Fatalf("0D sample with %d refs", smp.Refs)
			}
		}
	}
	if zerod != st.ZeroDWalks {
		t.Errorf("sampled 0D = %d, stats %d", zerod, st.ZeroDWalks)
	}

	// Native direct segment: same check on the unvirtualized fast path.
	e2 := newEnv(t, 16, Config{})
	s2 := sampleEverything(e2.m)
	e2.m.SetNestedPageTable(nil)
	e2.m.SetGuestSegment(segment.NewRegisters(0, 0, e2.guestSize))
	if e2.m.Mode() != ModeDirectSegment {
		t.Fatalf("mode = %v", e2.m.Mode())
	}
	for p := uint64(0); p < 256; p++ {
		if _, fault := e2.m.Translate(p << 12); fault != nil {
			t.Fatal(fault)
		}
	}
	st2 := e2.m.Stats()
	var zerod2 uint64
	for _, smp := range s2.Samples() {
		if smp.Class == walkprof.ClassZeroD {
			zerod2++
		}
	}
	if zerod2 != st2.ZeroDWalks || zerod2 == 0 {
		t.Errorf("native DS sampled 0D = %d, stats %d", zerod2, st2.ZeroDWalks)
	}
}

// TestSamplerWalk1DAndSize checks the native walk class and that the
// effective page size of the composite translation is stamped into the
// sample.
func TestSamplerWalk1DAndSize(t *testing.T) {
	e := newEnv(t, 16, coldConfig())
	s := sampleEverything(e.m)
	e.m.SetNestedPageTable(nil)
	e.mapGuest(t, 0x400000, 0x800000, 1)
	if err := e.gPT.Map(1<<21, 1<<21, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	if _, fault := e.m.Translate(0x400000); fault != nil {
		t.Fatal(fault)
	}
	if _, fault := e.m.Translate(1<<21 + 0x123); fault != nil {
		t.Fatal(fault)
	}
	smps := s.Samples()
	if len(smps) != 2 {
		t.Fatalf("got %d samples, want 2", len(smps))
	}
	if smps[0].Class != walkprof.ClassWalk1D || smps[0].Size != addr.Page4K {
		t.Errorf("4K native walk sample = %+v", smps[0])
	}
	if smps[1].Class != walkprof.ClassWalk1D || smps[1].Size != addr.Page2M {
		t.Errorf("2M native walk sample = %+v", smps[1])
	}
	if smps[1].VPN != (1<<21+0x123)>>addr.PageShift4K {
		t.Errorf("VPN = %#x", smps[1].VPN)
	}
}

// TestSamplerASIDTagging checks ContextSwitchASID stamps the new
// address space into subsequent samples.
func TestSamplerASIDTagging(t *testing.T) {
	e := newEnv(t, 16, Config{})
	s := sampleEverything(e.m)
	e.mapGuest(t, 0, 0, 4)
	e.m.ContextSwitchASID(e.gPT, e.m.GuestSegment(), 7)
	if _, fault := e.m.Translate(0); fault != nil {
		t.Fatal(fault)
	}
	if got := s.Samples()[0].ASID; got != 7 {
		t.Errorf("sample ASID = %d, want 7", got)
	}
}

// TestSamplerDoesNotPerturbStats pins the zero-cost-when-on contract
// for accounting: an attached sampler must not change any Stats field
// or translation result.
func TestSamplerDoesNotPerturbStats(t *testing.T) {
	run := func(sample bool) Stats {
		e := newEnv(t, 16, Config{})
		if sample {
			sampleEverything(e.m)
		}
		e.mapGuest(t, 0, 0, 1024)
		for rep := 0; rep < 2; rep++ {
			for p := uint64(0); p < 1024; p += 3 {
				if _, fault := e.m.Translate(p<<12 + p%4096); fault != nil {
					t.Fatal(fault)
				}
			}
		}
		return e.m.Stats()
	}
	if run(false) != run(true) {
		t.Fatal("sampler perturbed MMU statistics")
	}
}
