package mmu

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/pagetable"
	"vdirect/internal/segment"
)

// The thrash differential drives a conflict-miss-heavy workload — far
// more live pages per L1 set than the TLB has ways — through per-event
// Translate on one stack and TranslateBlock on an identical one, with
// flushes, page invalidations, and tagged context switches landing at
// the same event boundaries on both. Under eviction pressure the
// batched path's run detection, last-page restore, and memo epochs all
// get exercised on entries that keep disappearing; the contract is the
// same as TestTranslateBlockMatchesPerEvent: batching must be invisible
// in every counter, every result, and (in the sampled variant) every
// walkprof sample.

// thrashOp kinds. Access steps carry a VA; switch steps carry the
// target ASID (0 → space A's page table, 1 → space B's).
const (
	thrashAccess = iota
	thrashFlushTLBs
	thrashInvlPage
	thrashSwitch
	thrashFlushASID
)

type thrashOp struct {
	kind int
	va   uint64
	asid uint16
}

// thrashState is one MMU stack plus the second address space and the
// current demand-fault target. Both runners mutate their own state
// through applyThrashOp so the two stacks see identical sequences.
type thrashState struct {
	e      *env
	ptB    *pagetable.Table
	active *pagetable.Table
	asid   uint16
}

// thrashVAs are the conflicting VPNs. The L1 4K TLB is 64 entries /
// 4 ways = 16 sets and the shared L2 is 512 / 4 = 128 sets, so VPNs
// striding 128 collide in one set of *both* levels. Twelve pages per
// set against 4 ways guarantees steady conflict evictions all the way
// down — re-sweeps miss L1 and L2 and re-walk, which is what arms the
// memo oracle. Two set offsets keep the pressure from being purely
// one-set pathological.
func thrashVAs() []uint64 {
	var vas []uint64
	for set := uint64(0); set < 2; set++ {
		for i := uint64(0); i < 12; i++ {
			vas = append(vas, (0x400+set+i*128)<<12)
		}
	}
	return vas
}

// newThrashState builds an env plus a second guest address space over
// the same guest memory: space B maps the same conflict VAs to shifted
// gPAs and deliberately leaves the last four unmapped so switches are
// followed by demand faults mid-thrash.
func newThrashState(t *testing.T, cfg Config) *thrashState {
	t.Helper()
	e := newEnv(t, 16, cfg)
	vas := thrashVAs()
	for _, va := range vas {
		if err := e.gPT.Map(va, 0x200000+(va>>12)%0x400<<12, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	ptB, err := pagetable.New(e.guestMem)
	if err != nil {
		t.Fatal(err)
	}
	for _, va := range vas[:len(vas)-4] {
		if err := ptB.Map(va, 0x600000+(va>>12)%0x400<<12, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	return &thrashState{e: e, ptB: ptB, active: e.gPT}
}

// serviceThrashFault demand-maps into the *active* address space at a
// gPA disjoint from both pre-mapped ranges, so per-event and block runs
// service identically regardless of which space faulted.
func (s *thrashState) serviceFault(t *testing.T, fault *Fault) {
	t.Helper()
	if fault.Kind != FaultGuest {
		t.Fatalf("unexpected nested fault at %#x", fault.Addr)
	}
	page := addr.PageBase(fault.Addr, addr.Page4K)
	gpa := 0xA00000 + (page>>12)%0x400<<12
	if err := s.active.Map(page, gpa, addr.Page4K); err != nil {
		t.Fatalf("servicing fault at %#x: %v", page, err)
	}
}

// applyThrashOp performs one non-access mutation on this stack.
func (s *thrashState) applyThrashOp(op thrashOp) {
	switch op.kind {
	case thrashFlushTLBs:
		s.e.m.FlushTLBs()
	case thrashInvlPage:
		s.e.m.InvalidatePage(op.va, addr.Page4K)
	case thrashSwitch:
		pt := s.e.gPT
		if op.asid == 1 {
			pt = s.ptB
		}
		s.e.m.ContextSwitchASID(pt, segment.Disabled(), op.asid)
		s.active, s.asid = pt, op.asid
	case thrashFlushASID:
		s.e.m.FlushASID(op.asid)
	}
}

// thrashScript builds the deterministic adversarial sequence: rounds of
// conflict-set sweeps with a different mutation landing between rounds —
// full flush, INVLPG of the page just about to be re-touched, tagged
// switches between the two spaces (each space keeps its own ASID, so no
// PCID-slot reuse), and cross-ASID shootdowns of the inactive space.
func thrashScript() []thrashOp {
	vas := thrashVAs()
	var script []thrashOp
	sweep := func(rot int) {
		for i := range vas {
			va := vas[(i+rot)%len(vas)]
			script = append(script, thrashOp{kind: thrashAccess, va: va + uint64(i%4096)})
			if i%5 == 0 { // same-page repeat: last-page cache under pressure
				script = append(script, thrashOp{kind: thrashAccess, va: va + 0x40})
			}
		}
	}
	for r := 0; r < 8; r++ {
		// Two back-to-back sweeps: the second re-walks the pages the
		// first's conflict evictions threw out, inside the same memo
		// epoch — that is what gives the memo oracle hits to verify
		// before the mutation below stales everything again.
		sweep(r)
		sweep(r + 5)
		switch r % 4 {
		case 0:
			script = append(script, thrashOp{kind: thrashFlushTLBs})
		case 1:
			// Invalidate the page the next sweep touches first, then one
			// access straddling the invalidation to force an immediate
			// re-walk of a just-hot page.
			va := vas[(r+1)%len(vas)]
			script = append(script,
				thrashOp{kind: thrashAccess, va: va},
				thrashOp{kind: thrashInvlPage, va: va},
				thrashOp{kind: thrashAccess, va: va})
		case 2:
			script = append(script, thrashOp{kind: thrashSwitch, asid: 1})
		case 3:
			script = append(script,
				thrashOp{kind: thrashFlushASID, asid: 1},
				thrashOp{kind: thrashSwitch, asid: 0})
		}
	}
	// End back in space A with one final sweep so both ASIDs' entries
	// coexist in the L1/L2 at comparison time.
	script = append(script, thrashOp{kind: thrashSwitch, asid: 0})
	sweep(3)
	return script
}

// runThrashPerEvent drives the script one Translate at a time.
func runThrashPerEvent(t *testing.T, s *thrashState, script []thrashOp) []Result {
	t.Helper()
	var out []Result
	for _, op := range script {
		if op.kind != thrashAccess {
			s.applyThrashOp(op)
			continue
		}
		for attempt := 0; ; attempt++ {
			res, fault := s.e.m.Translate(op.va)
			if fault == nil {
				out = append(out, res)
				break
			}
			if attempt >= 2 {
				t.Fatalf("va %#x still faulting", op.va)
			}
			s.serviceFault(t, fault)
		}
	}
	return out
}

// runThrashBlock drives the same script through TranslateBlock,
// batching each maximal run of consecutive accesses and applying the
// intervening mutation at the same event boundary the per-event run
// saw it.
func runThrashBlock(t *testing.T, s *thrashState, script []thrashOp) []Result {
	t.Helper()
	var out []Result
	var runVAs []uint64
	flush := func() {
		if len(runVAs) == 0 {
			return
		}
		evs := accessEvents(runVAs)
		sub := make([]Result, len(evs))
		done := 0
		for done < len(evs) {
			n, fault := s.e.m.TranslateBlock(evs[done:], sub[done:])
			done += n
			if fault == nil {
				break
			}
			s.serviceFault(t, fault)
		}
		if done != len(evs) {
			t.Fatalf("block run completed %d of %d events", done, len(evs))
		}
		out = append(out, sub...)
		runVAs = runVAs[:0]
	}
	for _, op := range script {
		if op.kind == thrashAccess {
			runVAs = append(runVAs, op.va)
			continue
		}
		flush()
		s.applyThrashOp(op)
	}
	flush()
	return out
}

// TestTranslateBlockThrashDifferential is the adversarial batching
// differential. The memocheck variant additionally arms the per-page
// memo as a self-verifying oracle (SetMemoCheck), so every fused walk
// whose memoized outcome survives an epoch is cross-checked against
// the walk it just re-executed — through flushes, INVLPGs, and ASID
// churn designed to stale the memo.
func TestTranslateBlockThrashDifferential(t *testing.T) {
	for _, tc := range []struct {
		name      string
		memoCheck bool
	}{
		{"plain", false},
		{"memocheck", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			script := thrashScript()

			per := newThrashState(t, Config{})
			blk := newThrashState(t, Config{})
			if tc.memoCheck {
				per.e.m.SetMemoCheck(true)
				blk.e.m.SetMemoCheck(true)
			}

			perResults := runThrashPerEvent(t, per, script)
			blkResults := runThrashBlock(t, blk, script)

			if len(perResults) != len(blkResults) {
				t.Fatalf("result counts diverge: %d vs %d", len(perResults), len(blkResults))
			}
			for i := range perResults {
				if perResults[i] != blkResults[i] {
					t.Fatalf("result %d diverges:\nper-event %+v\nblock     %+v", i, perResults[i], blkResults[i])
				}
			}
			if per.e.m.Stats() != blk.e.m.Stats() {
				t.Errorf("stats diverge:\nper-event: %+v\nblock:     %+v", per.e.m.Stats(), blk.e.m.Stats())
			}

			// The workload must actually thrash, or the differential is
			// vacuous: with 12 live pages per 4-way set, most sweep
			// touches should miss L1 even in steady state.
			if st := per.e.m.Stats(); st.L1Misses < st.Accesses/3 {
				t.Errorf("workload not adversarial: only %d L1 misses in %d accesses", st.L1Misses, st.Accesses)
			}
			if tc.memoCheck {
				// The oracle is only meaningful if some memoized outcomes
				// survived to be verified.
				hits, misses := per.e.m.MemoStats()
				if hits == 0 {
					t.Errorf("memo oracle never hit (misses=%d); churn script defeats its own check", misses)
				}
				bh, bm := blk.e.m.MemoStats()
				if bh != hits || bm != misses {
					t.Errorf("memo traffic diverges: per-event %d/%d, block %d/%d", hits, misses, bh, bm)
				}
			}
		})
	}
}

// TestInvalidatePageCrossASID pins two deliberate asymmetries between
// INVLPG and the tagged TLBs. InvalidatePage is ASID-blind — it drops
// the page's entries under *every* tag, modeling a shootdown that must
// reach mappings the current process cannot name — and the last-page
// cache, which carries no tag at all, must drop alongside. If either
// went ASID-selective, the switch-back in step 4 would resurrect a
// stale translation through an entry the invalidation skipped.
func TestInvalidatePageCrossASID(t *testing.T) {
	const va = uint64(0x400123)
	page := addr.PageBase(va, addr.Page4K)

	e := newEnv(t, 16, Config{})
	ptB, err := pagetable.New(e.guestMem)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.gPT.Map(page, 0x200000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := ptB.Map(page, 0x300000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	translate := func(step string, wantGPA uint64) Result {
		t.Helper()
		res, fault := e.m.Translate(va)
		if fault != nil {
			t.Fatalf("%s: %v", step, fault)
		}
		if want := e.hostBase + wantGPA + (va - page); res.HPA != want {
			t.Fatalf("%s: hPA = %#x, want %#x", step, res.HPA, want)
		}
		return res
	}

	// Step 1: process A (ASID 0) warms its translation into the L1.
	e.m.ContextSwitchASID(e.gPT, segment.Disabled(), 0)
	translate("warm A", 0x200000)

	// Step 2: tagged switch to process B (ASID 1); its mapping of the
	// same VA coexists with A's in the TLB under a different tag, and
	// the last-page cache now holds B's translation.
	e.m.ContextSwitchASID(ptB, segment.Disabled(), 1)
	translate("warm B", 0x300000)
	walksBefore := e.m.Stats().Walks

	// Step 3: A's page is remapped and shot down while B is running.
	// The INVLPG lands under B's ASID yet must kill A's entry too, and
	// must drop the (untagged) last-page cache even though the cached
	// translation belongs to the *current* ASID and is still valid.
	if err := e.gPT.Remap(page, 0x500000); err != nil {
		t.Fatal(err)
	}
	e.m.InvalidatePage(va, addr.Page4K)

	// B's own next access re-walks — the blind invalidation cost it a
	// perfectly good entry — but still resolves through ptB.
	res := translate("B after shootdown", 0x300000)
	if res.L1Hit {
		t.Error("B resolved from L1 after INVLPG (last-page/L1 entry survived)")
	}
	if w := e.m.Stats().Walks; w != walksBefore+1 {
		t.Errorf("B re-walk: walks = %d, want %d", w, walksBefore+1)
	}

	// Step 4: tagged switch back to A with no flush — exactly the path
	// that would serve the stale 0x200000 entry if the shootdown had
	// been ASID-selective.
	e.m.ContextSwitchASID(e.gPT, segment.Disabled(), 0)
	translate("A after switch-back", 0x500000)
	if w := e.m.Stats().Walks; w != walksBefore+2 {
		t.Errorf("A re-walk: walks = %d, want %d (stale cross-ASID entry served?)", w, walksBefore+2)
	}

	// B's untouched entry is still live under its tag: one more tagged
	// switch must hit it without a walk, pinning that the shootdown was
	// page-targeted, not a flush in disguise.
	e.m.ContextSwitchASID(ptB, segment.Disabled(), 1)
	res = translate("B retained", 0x300000)
	if !res.L1Hit {
		t.Error("B's re-walked entry did not survive the ASID round-trip")
	}
}

// TestTranslateBlockThrashSampled repeats the thrash differential with
// period-1 walkprof samplers installed on both stacks and requires the
// two sample streams to be element-wise identical — VPN, size, class,
// refs, cycles, and ASID per miss, in order. A sampler disables the
// fused-walk gate, so this variant also pins that the *unfused* batched
// path replays exactly under eviction pressure.
func TestTranslateBlockThrashSampled(t *testing.T) {
	script := thrashScript()

	per := newThrashState(t, Config{})
	sPer := sampleEverything(per.e.m)
	blk := newThrashState(t, Config{})
	sBlk := sampleEverything(blk.e.m)

	runThrashPerEvent(t, per, script)
	runThrashBlock(t, blk, script)

	a, b := sPer.Samples(), sBlk.Samples()
	if len(a) != len(b) {
		t.Fatalf("sample counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d diverges:\nper-event %+v\nblock     %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("thrash run recorded no samples at period 1")
	}
	if per.e.m.Stats() != blk.e.m.Stats() {
		t.Errorf("stats diverge:\nper-event: %+v\nblock:     %+v", per.e.m.Stats(), blk.e.m.Stats())
	}
	// Period-1 sample count must equal the completed L1 misses — every
	// resolved miss records exactly once; a faulting access counts an
	// L1 miss but aborts before the sampler sees it.
	st := per.e.m.Stats()
	if want := st.L1Misses - st.GuestFaults - st.NestedFaults; uint64(len(a)) != want {
		t.Errorf("period-1 samples = %d, want %d (one per completed L1 miss)", len(a), want)
	}
}
